// Experiment E12 — Doacross pipelining and the loop scheduler.
//
// Two questions, one harness:
//
//  1. Do the loops the Doacross upgrade rescues from Sequential actually
//     gain from pipelined execution? For every corpus loop planned
//     Doacross: sync requirements before/after redundant-sync
//     elimination, the loop's sequential vs pipelined simulated
//     4-processor time (per-loop profiles), and the resulting speedup.
//     Correctness-shaped: the harness aborts unless at least 3 loops
//     speed up, the PlanAuditor certifies every Doacross plan, and the
//     race oracle observes zero violations — a "speedup" on an
//     uncertified plan would be racing, not pipelining.
//
//  2. Does the work-stealing scheduler earn its keep? A triangular DOALL
//     microbenchmark (iteration i costs O(i)) is timed under every
//     scheduling policy; static's contiguous split eats the imbalance
//     (its last worker owns the heaviest quarter), so guided/steal must
//     beat it on the simulated makespan.
//
// Invoke with `--json <path>` for the machine-readable point committed
// under bench/trajectory/.
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "audit/plan_audit.h"
#include "audit/race_oracle.h"
#include "bench_util.h"
#include "support/table.h"

using namespace padfa;
using namespace padfa::bench;

namespace {

constexpr unsigned kThreads = 4;

struct DoacrossLoopRow {
  std::string program;
  std::string loop_id;
  uint32_t line = 0;
  int syncs_total = 0;
  int syncs_kept = 0;
  double seq_seconds = 0;
  double doa_seconds = 0;
  double speedup = 0;
};

/// Per-loop simulated-seconds profile of one full-program run.
std::map<const ForStmt*, LoopProfile> profileRun(const CompiledProgram& cp,
                                                 const AnalysisResult* plans) {
  InterpOptions opt;
  opt.plans = plans;
  opt.num_threads = plans ? kThreads : 1;
  opt.profile = true;
  return execute(*cp.program, opt).profiles;
}

const char* kTriangular = R"(
proc main() {
  real t[256, 256];
  for i = 0 to 255 {
    for j = 0 to i { t[i, j] = noise(i * 256 + j) * 0.5; }
  }
  sink(t[200, 100]);
}
)";

double timeTriangular(const CompiledProgram& cp, SchedPolicy pol) {
  // Best of 3: the simulated makespan is max-over-workers busy time,
  // which is stable, but the serial fringe around it is not.
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    InterpOptions opt;
    opt.plans = &cp.pred;
    opt.num_threads = kThreads;
    opt.sched = pol;
    InterpStats st = execute(*cp.program, opt);
    if (rep == 0 || st.simulated_seconds < best) best = st.simulated_seconds;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = extractJsonFlag(&argc, argv);
  int scale = 4;
  for (int i = 1; i < argc; ++i)
    if (std::isdigit(static_cast<unsigned char>(argv[i][0])))
      scale = std::atoi(argv[i]);

  // ---- part 1: corpus Doacross loops ------------------------------
  std::vector<DoacrossLoopRow> rows;
  int unsound = 0, uncertified = 0;
  uint64_t violations = 0;
  for (const CorpusEntry& e : corpus()) {
    CompiledProgram cp = compileOrDie(e, scale);
    bool any_doacross = false;
    for (const auto& [loop, plan] : cp.pred.plans)
      any_doacross |= plan.status == LoopStatus::Doacross;
    if (!any_doacross) continue;

    // Static certification: every Doacross plan must come back
    // discharged-by-sync (or better).
    DiagEngine diags;
    AuditReport audit = auditPlans(*cp.program, cp.pred, diags);
    std::map<const ForStmt*, const LoopAudit*> audit_of;
    for (const auto& la : audit.loops) audit_of[la.loop] = &la;
    unsound += static_cast<int>(audit.count(AuditVerdict::Unsound));

    // Dynamic certification: zero violations modulo the declared syncs.
    RaceOracle oracle(*cp.program, cp.pred);
    InterpOptions ropt;
    ropt.plans = &cp.pred;
    ropt.race = &oracle;
    execute(*cp.program, ropt);
    violations += oracle.violationCount();

    auto seq = profileRun(cp, nullptr);
    auto par = profileRun(cp, &cp.pred);
    for (const LoopNode* node : cp.loops.allLoops()) {
      const LoopPlan* plan = cp.pred.planFor(node->loop);
      if (!plan || plan->status != LoopStatus::Doacross) continue;
      const LoopAudit* la = audit_of.count(node->loop)
                                ? audit_of[node->loop]
                                : nullptr;
      if (!la || (la->verdict != AuditVerdict::DischargedSync &&
                  la->verdict != AuditVerdict::Independent))
        ++uncertified;
      DoacrossLoopRow r;
      r.program = e.name;
      r.loop_id = node->loop->loop_id;
      r.line = node->loop->loc.line;
      r.syncs_total = static_cast<int>(plan->syncs.size());
      r.syncs_kept = static_cast<int>(plan->keptSyncCount());
      r.seq_seconds = seq[node->loop].simulated_seconds;
      r.doa_seconds = par[node->loop].simulated_seconds;
      r.speedup = r.doa_seconds > 0 ? r.seq_seconds / r.doa_seconds : 0;
      rows.push_back(std::move(r));
    }
  }

  TextTable table({"program", "loop", "syncs", "seq (s)", "doacross (s)",
                   "speedup"});
  int sped_up = 0;
  for (const auto& r : rows) {
    if (r.speedup > 1.0) ++sped_up;
    table.addRow({r.program, r.loop_id,
                  std::to_string(r.syncs_total) + "->" +
                      std::to_string(r.syncs_kept),
                  fmtDouble(r.seq_seconds, 4), fmtDouble(r.doa_seconds, 4),
                  fmtDouble(r.speedup, 2)});
  }
  std::printf("Figure: Doacross pipelining, sequential vs %u-processor "
              "simulated time (scale %d)\n%s\n",
              kThreads, scale, table.render().c_str());
  std::printf("%d/%zu doacross loops speed up; auditor: %d unsound, %d "
              "uncertified; race oracle: %llu violations\n\n",
              sped_up, rows.size(), unsound, uncertified,
              static_cast<unsigned long long>(violations));

  // ---- part 2: triangular scheduler microbenchmark ----------------
  DiagEngine tdiags;
  auto tri = compileSource(kTriangular, tdiags);
  if (!tri) {
    std::fprintf(stderr, "triangular microbench failed to compile:\n%s\n",
                 tdiags.dump().c_str());
    return 1;
  }
  const SchedPolicy policies[] = {SchedPolicy::Static, SchedPolicy::Dynamic,
                                  SchedPolicy::Guided, SchedPolicy::Steal};
  std::map<SchedPolicy, double> sched_seconds;
  TextTable sched_table({"policy", "simulated (s)", "vs static"});
  for (SchedPolicy pol : policies) sched_seconds[pol] = timeTriangular(*tri, pol);
  for (SchedPolicy pol : policies)
    sched_table.addRow({schedPolicyName(pol),
                        fmtDouble(sched_seconds[pol], 4),
                        fmtDouble(sched_seconds[SchedPolicy::Static] /
                                      sched_seconds[pol], 2)});
  std::printf("Triangular DOALL (iteration i costs O(i)), %u workers:\n%s\n",
              kThreads, sched_table.render().c_str());

  const double best_balanced = std::min(sched_seconds[SchedPolicy::Guided],
                                        sched_seconds[SchedPolicy::Steal]);
  const bool sched_wins = best_balanced < sched_seconds[SchedPolicy::Static];
  std::printf("load-aware scheduling %s static's contiguous split\n",
              sched_wins ? "beats" : "DOES NOT beat");

  // ---- machine-readable point -------------------------------------
  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"doacross\",\n");
    std::fprintf(f, "  \"threads\": %u,\n  \"scale\": %d,\n", kThreads, scale);
    std::fprintf(f, "  \"loops\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::fprintf(f,
                   "    {\"program\": \"%s\", \"loop\": \"%s\", \"line\": %u, "
                   "\"syncs_total\": %d, \"syncs_kept\": %d, "
                   "\"seq_seconds\": %.6f, \"doacross_seconds\": %.6f, "
                   "\"speedup\": %.3f}%s\n",
                   r.program.c_str(), r.loop_id.c_str(), r.line, r.syncs_total,
                   r.syncs_kept, r.seq_seconds, r.doa_seconds, r.speedup,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"loops_speedup_gt1\": %d,\n", sped_up);
    std::fprintf(f, "  \"audit_unsound\": %d,\n", unsound);
    std::fprintf(f, "  \"audit_uncertified\": %d,\n", uncertified);
    std::fprintf(f, "  \"oracle_violations\": %llu,\n",
                 static_cast<unsigned long long>(violations));
    std::fprintf(f, "  \"sched\": {");
    bool first = true;
    for (SchedPolicy pol : policies) {
      std::fprintf(f, "%s\"%s\": %.6f", first ? "" : ", ",
                   schedPolicyName(pol), sched_seconds[pol]);
      first = false;
    }
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"sched_beats_static\": %s\n",
                 sched_wins ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Correctness-shaped exit: pipelined parallelism that is unsound,
  // racy, or pure overhead is a regression, not a data point.
  if (unsound > 0 || uncertified > 0 || violations > 0) {
    std::fprintf(stderr, "FAIL: doacross plans not certified clean\n");
    return 1;
  }
  if (sped_up < 3) {
    std::fprintf(stderr, "FAIL: fewer than 3 doacross loops speed up\n");
    return 1;
  }
  if (!sched_wins) {
    std::fprintf(stderr,
                 "FAIL: guided/steal no better than static on the "
                 "imbalanced triangular loop\n");
    return 1;
  }
  return 0;
}
