// Experiment E1 — Table 1: benchmark suite overview.
//
// Paper form: for every program, how many loops it has, how many the base
// SUIF system parallelizes, how many candidates remain, and how many of
// those the ELPD run-time test reports as inherently parallel on the
// reference input. (Paper headline: >4000 loops total, base parallelizes
// over 50%; our corpus reproduces the *shape* at smaller scale.)
#include "audit/plan_audit.h"
#include "bench_util.h"
#include "support/table.h"

using namespace padfa;
using namespace padfa::bench;

int main() {
  TextTable table({"program", "suite", "loops", "base-par", "not-cand",
                   "nested", "candidates", "ELPD-par", "audit-ok",
                   "degraded"});
  int tot_loops = 0, tot_base = 0, tot_cand = 0, tot_elpd = 0;
  int tot_degraded = 0;
  int tot_audited = 0, tot_certified = 0, tot_unsound = 0;
  std::map<std::string, uint64_t> causes;
  std::string cur_suite;
  for (const auto& e : corpus()) {
    CompiledProgram cp = compileOrDie(e);
    ElpdCollector elpd = runElpd(cp);
    // Independent re-verification of the base system's plans.
    DiagEngine audit_diags;
    AuditReport audit = auditPlans(*cp.program, cp.base, audit_diags);
    int certified = static_cast<int>(audit.count(AuditVerdict::Independent) +
                                     audit.count(AuditVerdict::DischargedTest));
    tot_audited += static_cast<int>(audit.auditedCount());
    tot_certified += certified;
    tot_unsound += static_cast<int>(audit.count(AuditVerdict::Unsound));
    int loops = 0, base_par = 0, not_cand = 0, nested = 0, cand = 0,
        elpd_par = 0;
    for (const LoopNode* node : cp.loops.allLoops()) {
      ++loops;
      const LoopPlan* bp = cp.base.planFor(node->loop);
      if (!bp || bp->status == LoopStatus::NotCandidate) {
        ++not_cand;
        continue;
      }
      if (bp->status == LoopStatus::Parallel) {
        ++base_par;
        continue;
      }
      if (nestedInsideParallelized(cp, node->loop, cp.base)) {
        ++nested;
        continue;
      }
      ++cand;
      if (elpd.verdict(node->loop).parallelizable()) ++elpd_par;
    }
    if (e.suite != cur_suite) {
      if (!cur_suite.empty()) table.addSeparator();
      cur_suite = e.suite;
    }
    int degraded = static_cast<int>(cp.base.degradedCount());
    for (const auto& [cause, n] : cp.base.exhaustion_causes)
      causes[cause] += n;
    table.addRow({e.name, e.suite, std::to_string(loops),
                  std::to_string(base_par), std::to_string(not_cand),
                  std::to_string(nested), std::to_string(cand),
                  std::to_string(elpd_par),
                  std::to_string(certified) + "/" +
                      std::to_string(audit.auditedCount()),
                  std::to_string(degraded)});
    tot_loops += loops;
    tot_base += base_par;
    tot_cand += cand;
    tot_elpd += elpd_par;
    tot_degraded += degraded;
  }
  table.addSeparator();
  table.addRow({"TOTAL", "", std::to_string(tot_loops),
                std::to_string(tot_base), "", "", std::to_string(tot_cand),
                std::to_string(tot_elpd),
                std::to_string(tot_certified) + "/" +
                    std::to_string(tot_audited),
                std::to_string(tot_degraded)});
  std::printf("Table 1: suite overview (base system + ELPD inherent "
              "parallelism)\n%s\n",
              table.render().c_str());
  std::printf("base parallelizes %s of all loops "
              "(paper: over 50%% of >4000 loops)\n",
              fmtPercent(tot_base, tot_loops).c_str());
  std::printf("ELPD finds %d inherently parallel loops among %d "
              "remaining candidates\n",
              tot_elpd, tot_cand);
  std::printf("plan auditor certifies %d/%d base plans independent "
              "(%d unsound)\n",
              tot_certified, tot_audited, tot_unsound);
  if (tot_degraded > 0) {
    std::printf("degraded loops: %d (budget exhaustion:", tot_degraded);
    for (const auto& [cause, n] : causes)
      std::printf(" %s=%llu", cause.c_str(),
                  static_cast<unsigned long long>(n));
    std::printf(")\n");
  }
  return 0;
}
