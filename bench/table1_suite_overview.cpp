// Experiment E1 — Table 1: benchmark suite overview.
//
// Paper form: for every program, how many loops it has, how many the base
// SUIF system parallelizes, how many candidates remain, and how many of
// those the ELPD run-time test reports as inherently parallel on the
// reference input. (Paper headline: >4000 loops total, base parallelizes
// over 50%; our corpus reproduces the *shape* at smaller scale.)
//
// Programs are independent, so the corpus fans out program-parallel on
// the analysis pool; rows are collected and printed in corpus order, so
// the table is identical at any thread count.
#include "audit/plan_audit.h"
#include "bench_util.h"
#include "runtime/thread_pool.h"
#include "support/table.h"

using namespace padfa;
using namespace padfa::bench;

namespace {

struct EntryStats {
  int loops = 0, base_par = 0, not_cand = 0, nested = 0, cand = 0,
      elpd_par = 0;
  int promoted = 0;
  int degraded = 0, certified = 0, audited = 0, unsound = 0;
  std::map<std::string, uint64_t> causes;
};

EntryStats computeEntry(const CorpusEntry& e) {
  CompiledProgram cp = compileOrDie(e);
  ElpdCollector elpd = runElpd(cp);
  // Independent re-verification of the base system's plans.
  DiagEngine audit_diags;
  AuditReport audit = auditPlans(*cp.program, cp.base, audit_diags);
  EntryStats s;
  s.certified = static_cast<int>(audit.count(AuditVerdict::Independent) +
                                 audit.count(AuditVerdict::DischargedTest));
  s.audited = static_cast<int>(audit.auditedCount());
  s.unsound = static_cast<int>(audit.count(AuditVerdict::Unsound));
  for (const LoopNode* node : cp.loops.allLoops()) {
    ++s.loops;
    const LoopPlan* bp = cp.base.planFor(node->loop);
    if (!bp || bp->status == LoopStatus::NotCandidate) {
      ++s.not_cand;
      continue;
    }
    if (bp->status == LoopStatus::Parallel) {
      ++s.base_par;
      continue;
    }
    if (nestedInsideParallelized(cp, node->loop, cp.base)) {
      ++s.nested;
      continue;
    }
    ++s.cand;
    if (elpd.verdict(node->loop).parallelizable()) ++s.elpd_par;
  }
  // Predicated run-time tests the value-range analysis discharges at
  // compile time (DESIGN.md Â§15) -- the suite-level view of the
  // CT-promotion client.
  for (const auto& [loop, plan] : cp.pred.plans)
    if (plan.status == LoopStatus::Parallel &&
        plan.vra_action == VraAction::PromotedParallel)
      ++s.promoted;
  s.degraded = static_cast<int>(cp.base.degradedCount());
  for (const auto& [cause, n] : cp.base.exhaustion_causes) s.causes[cause] += n;
  return s;
}

}  // namespace

int main() {
  TextTable table({"program", "suite", "loops", "base-par", "not-cand",
                   "nested", "candidates", "ELPD-par", "CT-promoted",
                   "audit-ok", "degraded"});
  const std::vector<CorpusEntry>& entries = corpus();
  std::vector<std::future<EntryStats>> futs;
  futs.reserve(entries.size());
  for (const CorpusEntry& e : entries)
    futs.push_back(analysisPool().submit([&e] { return computeEntry(e); }));
  int tot_loops = 0, tot_base = 0, tot_cand = 0, tot_elpd = 0;
  int tot_promoted = 0, tot_degraded = 0;
  int tot_audited = 0, tot_certified = 0, tot_unsound = 0;
  std::map<std::string, uint64_t> causes;
  std::string cur_suite;
  for (size_t i = 0; i < entries.size(); ++i) {
    const CorpusEntry& e = entries[i];
    EntryStats s = futs[i].get();
    if (e.suite != cur_suite) {
      if (!cur_suite.empty()) table.addSeparator();
      cur_suite = e.suite;
    }
    for (const auto& [cause, n] : s.causes) causes[cause] += n;
    table.addRow({e.name, e.suite, std::to_string(s.loops),
                  std::to_string(s.base_par), std::to_string(s.not_cand),
                  std::to_string(s.nested), std::to_string(s.cand),
                  std::to_string(s.elpd_par), std::to_string(s.promoted),
                  std::to_string(s.certified) + "/" +
                      std::to_string(s.audited),
                  std::to_string(s.degraded)});
    tot_loops += s.loops;
    tot_base += s.base_par;
    tot_cand += s.cand;
    tot_elpd += s.elpd_par;
    tot_promoted += s.promoted;
    tot_degraded += s.degraded;
    tot_audited += s.audited;
    tot_certified += s.certified;
    tot_unsound += s.unsound;
  }
  table.addSeparator();
  table.addRow({"TOTAL", "", std::to_string(tot_loops),
                std::to_string(tot_base), "", "", std::to_string(tot_cand),
                std::to_string(tot_elpd), std::to_string(tot_promoted),
                std::to_string(tot_certified) + "/" +
                    std::to_string(tot_audited),
                std::to_string(tot_degraded)});
  std::printf("Table 1: suite overview (base system + ELPD inherent "
              "parallelism)\n%s\n",
              table.render().c_str());
  std::printf("base parallelizes %s of all loops "
              "(paper: over 50%% of >4000 loops)\n",
              fmtPercent(tot_base, tot_loops).c_str());
  std::printf("ELPD finds %d inherently parallel loops among %d "
              "remaining candidates\n",
              tot_elpd, tot_cand);
  std::printf("plan auditor certifies %d/%d base plans independent "
              "(%d unsound)\n",
              tot_certified, tot_audited, tot_unsound);
  if (tot_degraded > 0) {
    std::printf("degraded loops: %d (budget exhaustion:", tot_degraded);
    for (const auto& [cause, n] : causes)
      std::printf(" %s=%llu", cause.c_str(),
                  static_cast<unsigned long long>(n));
    std::printf(")\n");
  }
  return 0;
}
