// Experiment E7 — the predicate-aware value-range analysis and its
// three clients (DESIGN.md §15).
//
// Per corpus program, with VRA on:
//
//  * plan rewrites: RuntimeTest plans discharged to Parallel at compile
//    time (CT-promotion), RuntimeTest plans proved dead and demoted to
//    Sequential, and Doacross upgrades the profitability guard rejected;
//  * the range-sharpened MF-lint findings (padfa-div-by-zero,
//    padfa-dead-branch, and the range-powered padfa-oob /
//    trip-count upgrades fire on provable facts only — the corpus is
//    expected to be clean);
//  * analysis overhead: wall time of the full compile with VRA on vs
//    off (the range fixpoint is a small fraction of the pipeline);
//  * dispatch savings: run-time test evaluations pruned by promotions
//    over the reference execution.
//
// Correctness-shaped: the harness aborts unless at least one corpus
// run-time test is discharged at compile time, every promotion survives
// the plan auditor, and the race oracle observes zero violations.
//
// Invoke with `--json <path>` for the machine-readable point committed
// under bench/trajectory/.
#include <chrono>
#include <string>
#include <vector>

#include "audit/lint.h"
#include "audit/plan_audit.h"
#include "audit/race_oracle.h"
#include "bench_util.h"
#include "runtime/thread_pool.h"
#include "support/json.h"
#include "support/table.h"
#include "vra/vra.h"

using namespace padfa;
using namespace padfa::bench;

namespace {

struct EntryStats {
  std::string name;
  int promoted = 0, demoted = 0, doacross_cost = 0;
  int lint_range = 0;            // range-powered checker findings
  uint64_t tests_pruned = 0;     // dispatches skipped at run time
  int audit_unsound = 0;
  int oracle_violations = 0;
  double on_seconds = 0, off_seconds = 0;
  std::vector<std::pair<std::string, uint32_t>> promoted_loops;
};

double wallSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

EntryStats computeEntry(const CorpusEntry& e) {
  EntryStats s;
  s.name = e.name;
  const std::string source = instantiate(e);

  // Timed A/B compile. The off-compile also pins the baseline the
  // promotion deltas are measured against.
  CompiledProgram cp = [&] {
    DiagEngine diags;
    std::optional<CompiledProgram> r;
    s.on_seconds = wallSeconds([&] { r = compileSource(source, diags); });
    if (!r) {
      std::fprintf(stderr, "%s failed to compile:\n%s\n", e.name.c_str(),
                   diags.dump().c_str());
      std::exit(1);
    }
    return std::move(*r);
  }();
  s.off_seconds = wallSeconds([&] {
    vra::setVraEnabled(false);
    DiagEngine diags;
    auto off = compileSource(source, diags);
    vra::clearVraEnabledOverride();
    if (!off) std::exit(1);
  });

  for (const auto& [loop, plan] : cp.pred.plans) {
    switch (plan.vra_action) {
      case VraAction::PromotedParallel:
        ++s.promoted;
        s.promoted_loops.emplace_back(loop->loop_id, loop->loc.line);
        break;
      case VraAction::DemotedSequential:
        ++s.demoted;
        break;
      case VraAction::DoacrossCost:
        ++s.doacross_cost;
        break;
      case VraAction::None:
        break;
    }
  }

  // Range-sharpened lint over the corpus program (expected clean: these
  // checkers only fire on provable bugs).
  DiagEngine lint_diags;
  runLint(*cp.program, cp.loops, lint_diags);
  for (const char* id : {"padfa-div-by-zero", "padfa-dead-branch",
                         "padfa-oob", "padfa-loop-never-runs",
                         "padfa-loop-single-trip"})
    s.lint_range += static_cast<int>(lint_diags.countWithId(id));

  // Verification tripod over the promotions.
  DiagEngine audit_diags;
  AuditReport audit = auditPlans(*cp.program, cp.pred, audit_diags);
  s.audit_unsound = static_cast<int>(audit.count(AuditVerdict::Unsound));
  RaceOracle oracle(*cp.program, cp.pred);
  InterpOptions opt;
  opt.plans = &cp.pred;
  opt.race = &oracle;
  execute(*cp.program, opt);
  s.oracle_violations = static_cast<int>(oracle.violationCount());
  // Pruned-dispatch count comes from a plain run: the oracle run above
  // executes audited loops on the sequential instrumentation path,
  // which never reaches the two-version dispatch.
  InterpOptions plain;
  plain.plans = &cp.pred;
  s.tests_pruned = execute(*cp.program, plain).runtime_tests_pruned;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = extractJsonFlag(&argc, argv);
  PerfStats::instance().resetAll();

  // The A/B wall-clock compare shares process-global state (the VRA
  // override), so entries run serially.
  std::vector<EntryStats> rows;
  for (const CorpusEntry& e : corpus()) rows.push_back(computeEntry(e));

  TextTable table({"program", "CT-promoted", "demoted", "doacross-cost",
                   "lint", "tests-pruned", "compile-on(s)",
                   "compile-off(s)"});
  int tot_promoted = 0, tot_demoted = 0, tot_cost = 0, tot_lint = 0;
  int tot_unsound = 0, tot_violations = 0;
  uint64_t tot_pruned = 0;
  double tot_on = 0, tot_off = 0;
  char buf[32];
  for (const EntryStats& s : rows) {
    if (s.promoted + s.demoted + s.doacross_cost + s.lint_range == 0 &&
        s.tests_pruned == 0)
      continue;  // table lists only programs VRA touched
    std::string on, off;
    std::snprintf(buf, sizeof(buf), "%.4f", s.on_seconds);
    on = buf;
    std::snprintf(buf, sizeof(buf), "%.4f", s.off_seconds);
    off = buf;
    table.addRow({s.name, std::to_string(s.promoted),
                  std::to_string(s.demoted),
                  std::to_string(s.doacross_cost),
                  std::to_string(s.lint_range),
                  std::to_string(s.tests_pruned), on, off});
  }
  for (const EntryStats& s : rows) {
    tot_promoted += s.promoted;
    tot_demoted += s.demoted;
    tot_cost += s.doacross_cost;
    tot_lint += s.lint_range;
    tot_pruned += s.tests_pruned;
    tot_unsound += s.audit_unsound;
    tot_violations += s.oracle_violations;
    tot_on += s.on_seconds;
    tot_off += s.off_seconds;
  }
  std::printf("Figure: value-range analysis across the corpus "
              "(programs VRA touched)\n%s\n",
              table.render().c_str());
  std::printf("CT-promotions %d, demotions %d, doacross-cost rejections "
              "%d, range-lint findings %d\n",
              tot_promoted, tot_demoted, tot_cost, tot_lint);
  std::printf("run-time test dispatches pruned on the reference inputs: "
              "%llu\n",
              static_cast<unsigned long long>(tot_pruned));
  std::printf("compile wall time: %.3fs with VRA, %.3fs without "
              "(overhead %.1f%%)\n",
              tot_on, tot_off,
              tot_off > 0 ? (tot_on / tot_off - 1.0) * 100.0 : 0.0);
  std::printf("verification: %d unsound audits, %d oracle violations "
              "across promoted corpus plans\n",
              tot_unsound, tot_violations);
  std::printf("%s\n", PerfStats::instance().report().c_str());

  bool ok = tot_promoted >= 1 && tot_unsound == 0 && tot_violations == 0;
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: expected >=1 CT-promotion with a clean tripod "
                 "(promoted %d, unsound %d, violations %d)\n",
                 tot_promoted, tot_unsound, tot_violations);
    return 1;
  }

  if (!json_path.empty()) {
    JsonValue root = JsonValue::object();
    root.set("bench", JsonValue::of(std::string("vra")));
    root.set("promotions", JsonValue::of(int64_t{tot_promoted}));
    root.set("demotions", JsonValue::of(int64_t{tot_demoted}));
    root.set("doacross_cost_rejections", JsonValue::of(int64_t{tot_cost}));
    root.set("range_lint_findings", JsonValue::of(int64_t{tot_lint}));
    root.set("tests_pruned",
             JsonValue::of(static_cast<int64_t>(tot_pruned)));
    root.set("audit_unsound", JsonValue::of(int64_t{tot_unsound}));
    root.set("oracle_violations", JsonValue::of(int64_t{tot_violations}));
    root.set("compile_seconds_vra_on", JsonValue::of(tot_on));
    root.set("compile_seconds_vra_off", JsonValue::of(tot_off));
    JsonValue promoted = JsonValue::array();
    for (const EntryStats& s : rows)
      for (const auto& [loop_id, line] : s.promoted_loops) {
        JsonValue p = JsonValue::object();
        p.set("program", JsonValue::of(s.name));
        p.set("loop", JsonValue::of(loop_id));
        p.set("line", JsonValue::of(int64_t{line}));
        promoted.push(p);
      }
    root.set("promoted_loops", promoted);
    root.set("counters",
             vraCountersToJson(PerfStats::instance().vra));
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::string out = root.dump();
    std::fwrite(out.data(), 1, out.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
