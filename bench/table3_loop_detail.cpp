// Experiment E3 — Table 3: per-loop detail for the loops newly
// parallelized by predicated analysis.
//
// Paper form: program, loop, % coverage of sequential execution time,
// granularity (time per invocation), category of the enabling technique,
// and the kind of test (compile-time vs run-time). Coverage/granularity
// are omitted for loops nested inside other newly parallelized loops
// (SUIF exploits one level of parallelism), mirroring the paper.
#include "bench_util.h"
#include "support/table.h"

using namespace padfa;
using namespace padfa::bench;

int main() {
  TextTable table({"program", "loop", "coverage", "granularity", "category",
                   "test"});
  for (const auto& e : corpus()) {
    CompiledProgram cp = compileOrDie(e, /*scale=*/2);
    // Profiled sequential run for coverage/granularity.
    InterpOptions popt;
    popt.profile = true;
    InterpStats prof = execute(*cp.program, popt);

    // Gained loops and whether each is nested inside another gained loop.
    std::vector<const LoopNode*> gained;
    for (const LoopNode* node : cp.loops.allLoops()) {
      if (!isCandidate(cp, node->loop)) continue;
      const LoopPlan* pp = cp.pred.planFor(node->loop);
      if (!pp) continue;
      if (pp->status == LoopStatus::Parallel ||
          pp->status == LoopStatus::RuntimeTest)
        gained.push_back(node);
    }
    for (const LoopNode* node : gained) {
      const LoopPlan& plan = *cp.pred.planFor(node->loop);
      bool nested_in_gained = false;
      for (const LoopNode* g : gained) {
        for (const LoopNode* p = node->parent; p; p = p->parent)
          if (p == g) nested_in_gained = true;
      }
      std::string coverage = "-", granularity = "-";
      auto it = prof.profiles.find(node->loop);
      if (!nested_in_gained && it != prof.profiles.end() &&
          prof.total_seconds > 0) {
        coverage = fmtPercent(it->second.seconds, prof.total_seconds);
        granularity =
            fmtDouble(1e3 * it->second.seconds /
                          static_cast<double>(it->second.invocations),
                      3) +
            " ms";
      }
      std::string test = plan.status == LoopStatus::RuntimeTest
                             ? plan.runtime_test.str(cp.interner())
                             : "compile-time";
      table.addRow({e.name, node->loop->loop_id, coverage, granularity,
                    loopCategory(plan), test});
    }
  }
  std::printf(
      "Table 3: newly parallelized loops — coverage, granularity, "
      "category, test\n%s\n",
      table.render().c_str());
  return 0;
}
