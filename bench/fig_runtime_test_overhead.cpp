// Experiment E5 — run-time test overhead: predicated tests vs the
// inspector (ELPD) alternative.
//
// The paper's key efficiency claim: a predicated run-time test evaluates
// a handful of scalar predicates at loop entry — O(test atoms) — while an
// inspector/executor instruments every array access — O(array size ×
// accesses). This google-benchmark binary measures both on the same
// two-version loop at growing sizes.
#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace padfa;
using namespace padfa::bench;

namespace {

std::string kernelSource(int n) {
  std::string N = std::to_string(n);
  return R"(
proc main() {
  int n; n = )" + N + R"(;
  int d; d = inoise(17, 1) + n;
  real x[)" + N + R"( * 3];
  for j = 0 to 3 * n - 1 { x[j] = noise(j); }
  for i = n to 2 * n - 1 {
    x[i] = x[i - d] * 0.5 + 1.0;
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + x[i]; }
  sink(chk);
}
)";
}

CompiledProgram compileKernel(int n) {
  DiagEngine diags;
  auto cp = compileSource(kernelSource(n), diags);
  if (!cp) {
    std::fprintf(stderr, "%s\n", diags.dump().c_str());
    std::exit(1);
  }
  return std::move(*cp);
}

// Cost of executing with the derived predicated run-time test (the test
// is evaluated once per loop entry; the loop runs parallel on 2 threads).
void BM_PredicatedRuntimeTest(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  CompiledProgram cp = compileKernel(n);
  InterpOptions opt;
  opt.plans = &cp.pred;
  opt.num_threads = 2;
  uint64_t atoms = 0;
  for (auto _ : state) {
    InterpStats s = execute(*cp.program, opt);
    atoms = s.runtime_test_atoms;
    benchmark::DoNotOptimize(s.checksum);
  }
  state.counters["test_atoms"] = static_cast<double>(atoms);
}

// Cost of deciding the same question with the ELPD inspector: a full
// instrumented sequential execution.
void BM_ElpdInspection(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  CompiledProgram cp = compileKernel(n);
  const ForStmt* target = nullptr;
  for (const LoopNode* node : cp.loops.allLoops())
    if (isCandidate(cp, node->loop)) target = node->loop;
  uint64_t accesses = 0;
  for (auto _ : state) {
    ElpdCollector collector;
    if (target) collector.instrument(target);
    InterpOptions opt;
    opt.elpd = &collector;
    InterpStats s = execute(*cp.program, opt);
    accesses = collector.totalAccesses();
    benchmark::DoNotOptimize(s.checksum);
  }
  state.counters["instrumented_accesses"] = static_cast<double>(accesses);
}

// Plain sequential run as the common baseline.
void BM_SequentialBaseline(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  CompiledProgram cp = compileKernel(n);
  for (auto _ : state) {
    InterpStats s = execute(*cp.program, {});
    benchmark::DoNotOptimize(s.checksum);
  }
}

}  // namespace

BENCHMARK(BM_SequentialBaseline)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_PredicatedRuntimeTest)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_ElpdInspection)->Arg(256)->Arg(1024)->Arg(4096);

BENCHMARK_MAIN();
