// Experiment E4 — Figure: whole-program speedups for the five programs
// whose predicated gains dominate coverage.
//
// Paper form: speedup over sequential execution at 1..8 processors, base
// system vs predicated system. Expected shape: base stays near 1 (its
// parallel loops have low coverage in these programs) while the
// predicated system scales with the thread count.
#include <thread>

#include "bench_util.h"
#include "support/table.h"

using namespace padfa;
using namespace padfa::bench;

namespace {

double timeRun(const CompiledProgram& cp, const AnalysisResult* plans,
               unsigned threads) {
  InterpOptions opt;
  opt.plans = plans;
  opt.num_threads = threads;
  InterpStats s = execute(*cp.program, opt);
  // Simulated P-processor time: equals wall time when >= P cores are
  // free; models the paper's multiprocessor when the host has fewer
  // cores (see InterpStats::simulated_seconds).
  return s.simulated_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  int scale = 8;
  if (argc > 1) scale = std::atoi(argv[1]);
  unsigned hw = std::thread::hardware_concurrency();
  std::vector<unsigned> threads = {1, 2, 4, 8};
  std::printf("Figure: speedups, base vs predicated (scale %d, %u hw "
              "threads)\n\n",
              scale, hw);
  TextTable table({"program", "seq (s)", "base x1", "base x2", "base x4",
                   "base x8", "pred x1", "pred x2", "pred x4", "pred x8"});
  for (const auto& e : corpus()) {
    if (!e.speedup_expected) continue;
    CompiledProgram cp = compileOrDie(e, scale);
    double seq = timeRun(cp, nullptr, 1);
    std::vector<std::string> row = {e.name, fmtDouble(seq, 3)};
    for (const AnalysisResult* plans : {&cp.base, &cp.pred}) {
      for (unsigned t : threads) {
        double s = timeRun(cp, plans, t);
        row.push_back(fmtDouble(seq / s, 2));
      }
    }
    table.addRow(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("values are speedups relative to the sequential run "
              "(simulated P-processor makespans; exact wall time when the "
              "host has >= P free cores). The paper reports improved "
              "speedups for 5 programs, with the base system flat.\n");
  return 0;
}
