// Shared helpers for the evaluation harness (one binary per paper
// table/figure; see DESIGN.md §5 for the experiment index).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "driver/padfa.h"
#include "support/perf_stats.h"

namespace padfa::bench {

inline CompiledProgram compileOrDie(const CorpusEntry& e, int scale = 1) {
  DiagEngine diags;
  auto cp = compileSource(instantiate(e, scale), diags);
  if (!cp) {
    std::fprintf(stderr, "corpus program '%s' failed to compile:\n%s\n",
                 e.name.c_str(), diags.dump().c_str());
    std::exit(1);
  }
  return std::move(*cp);
}

/// Candidate loops per the paper's Table 1: left sequential by the base
/// system, not I/O, and not nested inside a base-parallelized loop.
inline bool isCandidate(const CompiledProgram& cp, const ForStmt* loop) {
  const LoopPlan* bp = cp.base.planFor(loop);
  if (!bp) return false;
  if (bp->status != LoopStatus::Sequential) return false;
  return !nestedInsideParallelized(cp, loop, cp.base);
}

/// Run the program sequentially with ELPD instrumentation on every
/// candidate loop; returns the collector for verdict queries.
inline ElpdCollector runElpd(const CompiledProgram& cp) {
  ElpdCollector collector;
  for (const LoopNode* node : cp.loops.allLoops())
    if (isCandidate(cp, node->loop)) collector.instrument(node->loop);
  InterpOptions opt;
  opt.elpd = &collector;
  execute(*cp.program, opt);
  return collector;
}

/// Extract a `--json <path>` flag from argv, compacting argv so
/// benchmark::Initialize never sees the (unrecognized) flag. Returns the
/// path, or "" when the flag is absent. Harness binaries use this to emit
/// machine-readable results (wall times, cache hit rates, thread count)
/// next to their human-readable tables.
inline std::string extractJsonFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < *argc) {
      path = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;
  return path;
}

/// One "hits/misses/inserts/hit_rate" JSON object for a cache counter.
inline std::string cacheStatsJson(const CacheStats& s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"hits\": %llu, \"misses\": %llu, \"inserts\": %llu, "
                "\"hit_rate\": %.4f}",
                static_cast<unsigned long long>(s.hits.load()),
                static_cast<unsigned long long>(s.misses.load()),
                static_cast<unsigned long long>(s.inserts.load()),
                s.hitRate());
  return buf;
}

/// Loop category label for Table 3, derived from plan attribution flags.
inline std::string loopCategory(const LoopPlan& plan) {
  bool rt = plan.status == LoopStatus::RuntimeTest;
  if (plan.used_reshape) return rt ? "RESHAPE-RT" : "RESHAPE";
  if (rt) {
    if (plan.used_predicates) return "CF-RT";
    if (plan.used_extraction) return "EXT-RT";
    return "RT";
  }
  bool copy_in = false;
  for (const auto& p : plan.privatized) copy_in |= p.copy_in;
  if (plan.priv_used && copy_in) return "PRIV-CT";
  if (plan.used_embedding) return "CF-CT/EMB";
  if (plan.used_predicates) return "CF-CT";
  return "CT";
}

}  // namespace padfa::bench
