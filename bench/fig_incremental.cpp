// Experiment E9 — cold vs incremental re-analysis wall time, over the
// whole corpus (google-benchmark).
//
// The change-impact engine (src/ipa/) exists so an edit re-analyzes only
// the edited procedures plus their transitive callers, replaying every
// other procedure's plans from the persisted deep summaries. This
// harness quantifies that over two edit classes per corpus program:
//   cold        — plain compileSource of the edited source (the baseline
//                 every re-analysis used to pay);
//   replay      — comment-only edit: canonical text of every procedure
//                 unchanged, so the incremental path replays everything;
//   body-edit   — a declaration inserted into the first procedure: the
//                 dirty set is that procedure plus its callers, the rest
//                 replays.
// Every incremental result's plan signature is checked against the cold
// compile — an incremental answer that differs from cold is a
// correctness bug, and the harness aborts rather than timing it.
//
// Invoke with `--json <path>` (stripped before google-benchmark sees
// argv) for machine-readable results: per-pass total/mean wall time,
// replay/analysis counts, and the cold/incremental speedups.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>

#include "bench_util.h"
#include "driver/plan_signature.h"
#include "ipa/incremental.h"
#include "store/summary_store.h"

using namespace padfa;
using namespace padfa::bench;

namespace {

std::string commentEdit(const std::string& src) {
  return "// fig-incremental comment edit\n" + src;
}

/// Insert a fresh (unused) declaration at the top of the last
/// procedure's body (`main`, a call-graph root in every corpus
/// program) — its callees stay clean and replay, so this measures the
/// partial-replay path rather than a full re-analysis.
std::string bodyEdit(const std::string& src) {
  size_t p = src.rfind("proc ");
  if (p == std::string::npos) return src;
  size_t brace = src.find('{', p);
  if (brace == std::string::npos) return src;
  std::string out = src;
  out.insert(brace + 1, "\n  int qz917;");
  return out;
}

struct PassResult {
  double total_ms = 0;
  uint64_t replayed = 0;
  uint64_t analyzed = 0;
  std::vector<std::string> signatures;
};

/// Time a cold compile of every edited source.
PassResult coldPass(const std::vector<std::string>& edited) {
  PassResult res;
  for (const auto& src : edited) {
    DiagEngine diags;
    auto t0 = std::chrono::steady_clock::now();
    auto cp = compileSource(src, diags);
    res.total_ms += std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    if (!cp) {
      std::fprintf(stderr, "cold compile failed:\n%s\n", diags.dump().c_str());
      std::exit(1);
    }
    res.signatures.push_back(planSignature(*cp));
  }
  return res;
}

/// Seed a fresh ephemeral store per program from the original source,
/// then time only the incremental compile of the edited source.
PassResult incrementalPass(const std::vector<std::string>& originals,
                           const std::vector<std::string>& edited) {
  PassResult res;
  for (size_t i = 0; i < originals.size(); ++i) {
    store::SummaryStore st("");
    DiagEngine d1;
    auto seed = ipa::compileSourceIncremental(originals[i], d1,
                                              BudgetLimits::defaults(), st);
    if (!seed) {
      std::fprintf(stderr, "seed compile failed:\n%s\n", d1.dump().c_str());
      std::exit(1);
    }
    DiagEngine d2;
    ipa::IncrementalInfo info;
    auto t0 = std::chrono::steady_clock::now();
    auto cp = ipa::compileSourceIncremental(edited[i], d2,
                                            BudgetLimits::defaults(), st,
                                            &info);
    res.total_ms += std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    if (!cp || !info.incremental) {
      std::fprintf(stderr, "incremental compile failed:\n%s\n",
                   d2.dump().c_str());
      std::exit(1);
    }
    res.replayed += info.procs_replayed;
    res.analyzed += info.procs_analyzed;
    res.signatures.push_back(planSignature(*cp));
  }
  return res;
}

void requireIdentical(const PassResult& ref, const PassResult& pass,
                      const char* what) {
  if (ref.signatures != pass.signatures) {
    std::fprintf(stderr,
                 "BUG: %s pass produced different plan signatures than "
                 "the cold pass\n",
                 what);
    std::exit(1);
  }
}

std::vector<std::string> corpusSources() {
  std::vector<std::string> out;
  for (const auto& e : corpus()) out.push_back(instantiate(e));
  return out;
}

// google-benchmark views (whole-corpus sweep per iteration).

void BM_ColdRecompile(benchmark::State& state) {
  std::vector<std::string> originals = corpusSources();
  std::vector<std::string> edited;
  for (const auto& s : originals) edited.push_back(commentEdit(s));
  for (auto _ : state) benchmark::DoNotOptimize(coldPass(edited).total_ms);
  state.counters["programs"] = static_cast<double>(edited.size());
}

void BM_IncrementalReplay(benchmark::State& state) {
  std::vector<std::string> originals = corpusSources();
  std::vector<std::string> edited;
  for (const auto& s : originals) edited.push_back(commentEdit(s));
  for (auto _ : state)
    benchmark::DoNotOptimize(incrementalPass(originals, edited).total_ms);
  state.counters["programs"] = static_cast<double>(edited.size());
}

void BM_IncrementalBodyEdit(benchmark::State& state) {
  std::vector<std::string> originals = corpusSources();
  std::vector<std::string> edited;
  for (const auto& s : originals) edited.push_back(bodyEdit(s));
  for (auto _ : state)
    benchmark::DoNotOptimize(incrementalPass(originals, edited).total_ms);
  state.counters["programs"] = static_cast<double>(edited.size());
}

void passJson(FILE* f, const char* name, const PassResult& r, size_t n,
              bool last) {
  std::fprintf(f,
               "    \"%s\": {\"total_ms\": %.3f, \"mean_ms\": %.3f, "
               "\"procs_replayed\": %llu, \"procs_analyzed\": %llu}%s\n",
               name, r.total_ms, n ? r.total_ms / static_cast<double>(n) : 0,
               static_cast<unsigned long long>(r.replayed),
               static_cast<unsigned long long>(r.analyzed),
               last ? "" : ",");
}

void writeIncrementalJson(const std::string& path) {
  std::vector<std::string> originals = corpusSources();
  std::vector<std::string> commented, bodied;
  for (const auto& s : originals) {
    commented.push_back(commentEdit(s));
    bodied.push_back(bodyEdit(s));
  }

  // Warm the process (allocators, lazy statics, memo caches) with a
  // throwaway sweep so `cold` measures analysis, not startup.
  coldPass(originals);

  PassResult cold_comment = coldPass(commented);
  PassResult cold_body = coldPass(bodied);
  PassResult replay = incrementalPass(originals, commented);
  PassResult body = incrementalPass(originals, bodied);
  requireIdentical(cold_comment, replay, "incremental-replay");
  requireIdentical(cold_body, body, "incremental-body-edit");
  if (replay.analyzed != 0) {
    std::fprintf(stderr,
                 "BUG: comment-only edits re-analyzed %llu procedure(s)\n",
                 static_cast<unsigned long long>(replay.analyzed));
    std::exit(1);
  }

  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fig_incremental\",\n");
  std::fprintf(f, "  \"programs\": %zu,\n", originals.size());
  std::fprintf(f, "  \"passes\": {\n");
  passJson(f, "cold_comment_edit", cold_comment, originals.size(), false);
  passJson(f, "cold_body_edit", cold_body, originals.size(), false);
  passJson(f, "incremental_replay", replay, originals.size(), false);
  passJson(f, "incremental_body_edit", body, originals.size(), true);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"replay_speedup\": %.3f,\n",
               replay.total_ms > 0 ? cold_comment.total_ms / replay.total_ms
                                   : 0.0);
  std::fprintf(f, "  \"body_edit_speedup\": %.3f,\n",
               body.total_ms > 0 ? cold_body.total_ms / body.total_ms : 0.0);
  std::fprintf(f, "  \"signatures_identical\": true\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf(
      "wrote %s (cold %.1f ms, replay %.1f ms, body-edit %.1f ms over %zu "
      "programs; replay speedup %.1fx)\n",
      path.c_str(), cold_comment.total_ms, replay.total_ms, body.total_ms,
      originals.size(),
      replay.total_ms > 0 ? cold_comment.total_ms / replay.total_ms : 0.0);
}

}  // namespace

BENCHMARK(BM_ColdRecompile)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IncrementalReplay)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IncrementalBodyEdit)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::string json_path = extractJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) writeIncrementalJson(json_path);
  return 0;
}
