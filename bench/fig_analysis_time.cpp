// Experiment E6 — compile-time cost of predicated analysis vs the base
// array data-flow analysis, over the whole corpus (google-benchmark).
//
// The paper argues the predicated extension is affordable at compile
// time; this measures base vs predicated (and the compile-time-only
// ablation) end-to-end analysis cost per program and in aggregate.
#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace padfa;
using namespace padfa::bench;

namespace {

struct Parsed {
  std::unique_ptr<Program> program;
};

Parsed parseEntry(const CorpusEntry& e) {
  DiagEngine diags;
  auto p = parseProgram(instantiate(e), diags);
  if (!p || !analyze(*p, diags)) {
    std::fprintf(stderr, "%s: %s\n", e.name.c_str(), diags.dump().c_str());
    std::exit(1);
  }
  return {std::move(p)};
}

void BM_BaseAnalysisCorpus(benchmark::State& state) {
  std::vector<Parsed> parsed;
  for (const auto& e : corpus()) parsed.push_back(parseEntry(e));
  for (auto _ : state) {
    for (auto& p : parsed) {
      AnalysisResult r = analyzeProgram(*p.program,
                                        AnalysisConfig::baseline());
      benchmark::DoNotOptimize(r.plans.size());
    }
  }
  state.counters["programs"] = static_cast<double>(parsed.size());
}

void BM_PredicatedAnalysisCorpus(benchmark::State& state) {
  std::vector<Parsed> parsed;
  for (const auto& e : corpus()) parsed.push_back(parseEntry(e));
  for (auto _ : state) {
    for (auto& p : parsed) {
      AnalysisResult r = analyzeProgram(*p.program,
                                        AnalysisConfig::predicated());
      benchmark::DoNotOptimize(r.plans.size());
    }
  }
  state.counters["programs"] = static_cast<double>(parsed.size());
}

void BM_CompileTimeOnlyAnalysisCorpus(benchmark::State& state) {
  std::vector<Parsed> parsed;
  for (const auto& e : corpus()) parsed.push_back(parseEntry(e));
  for (auto _ : state) {
    for (auto& p : parsed) {
      AnalysisResult r = analyzeProgram(*p.program,
                                        AnalysisConfig::compileTimeOnly());
      benchmark::DoNotOptimize(r.plans.size());
    }
  }
  state.counters["programs"] = static_cast<double>(parsed.size());
}

}  // namespace

BENCHMARK(BM_BaseAnalysisCorpus)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PredicatedAnalysisCorpus)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompileTimeOnlyAnalysisCorpus)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
