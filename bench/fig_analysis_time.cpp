// Experiment E6 — compile-time cost of predicated analysis vs the base
// array data-flow analysis, over the whole corpus (google-benchmark).
//
// The paper argues the predicated extension is affordable at compile
// time; this measures base vs predicated (and the compile-time-only
// ablation) end-to-end analysis cost per program and in aggregate, plus
// the program-parallel variant driven by the analysis pool.
//
// Invoke with `--json <path>` (stripped before google-benchmark sees
// argv) to also write machine-readable results: per-config wall time, a
// serial-vs-parallel speedup measurement on cold caches, cache hit
// rates, and the thread count.
#include <benchmark/benchmark.h>

#include <chrono>
#include <future>

#include "bench_util.h"
#include "presburger/feasibility_cache.h"
#include "runtime/thread_pool.h"

using namespace padfa;
using namespace padfa::bench;

namespace {

struct Parsed {
  std::unique_ptr<Program> program;
};

Parsed parseEntry(const CorpusEntry& e) {
  DiagEngine diags;
  auto p = parseProgram(instantiate(e), diags);
  if (!p || !analyze(*p, diags)) {
    std::fprintf(stderr, "%s: %s\n", e.name.c_str(), diags.dump().c_str());
    std::exit(1);
  }
  return {std::move(p)};
}

std::vector<Parsed> parseCorpus() {
  std::vector<Parsed> parsed;
  for (const auto& e : corpus()) parsed.push_back(parseEntry(e));
  return parsed;
}

void BM_BaseAnalysisCorpus(benchmark::State& state) {
  std::vector<Parsed> parsed = parseCorpus();
  for (auto _ : state) {
    for (auto& p : parsed) {
      AnalysisResult r = analyzeProgram(*p.program,
                                        AnalysisConfig::baseline());
      benchmark::DoNotOptimize(r.plans.size());
    }
  }
  state.counters["programs"] = static_cast<double>(parsed.size());
}

void BM_PredicatedAnalysisCorpus(benchmark::State& state) {
  std::vector<Parsed> parsed = parseCorpus();
  for (auto _ : state) {
    for (auto& p : parsed) {
      AnalysisResult r = analyzeProgram(*p.program,
                                        AnalysisConfig::predicated());
      benchmark::DoNotOptimize(r.plans.size());
    }
  }
  state.counters["programs"] = static_cast<double>(parsed.size());
}

void BM_CompileTimeOnlyAnalysisCorpus(benchmark::State& state) {
  std::vector<Parsed> parsed = parseCorpus();
  for (auto _ : state) {
    for (auto& p : parsed) {
      AnalysisResult r = analyzeProgram(*p.program,
                                        AnalysisConfig::compileTimeOnly());
      benchmark::DoNotOptimize(r.plans.size());
    }
  }
  state.counters["programs"] = static_cast<double>(parsed.size());
}

// Program-parallel predicated analysis: one pool task per corpus
// program, all threads sharing the global feasibility cache.
void BM_PredicatedAnalysisCorpusParallel(benchmark::State& state) {
  std::vector<Parsed> parsed = parseCorpus();
  for (auto _ : state) {
    std::vector<std::future<size_t>> futs;
    futs.reserve(parsed.size());
    for (auto& p : parsed)
      futs.push_back(analysisPool().submit([&p] {
        return analyzeProgram(*p.program, AnalysisConfig::predicated())
            .plans.size();
      }));
    size_t total = 0;
    for (auto& f : futs) total += f.get();
    benchmark::DoNotOptimize(total);
  }
  state.counters["programs"] = static_cast<double>(parsed.size());
  state.counters["threads"] = static_cast<double>(analysisThreadCount());
}

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// One full predicated sweep over the corpus on `threads` threads.
// Returns wall-clock milliseconds. Clears the global caches first so
// serial and parallel passes are compared cold-for-cold.
double timedPredicatedPass(std::vector<Parsed>& parsed, unsigned threads) {
  pb::FeasibilityCache::global().clear();
  PerfStats::instance().resetAll();
  auto t0 = std::chrono::steady_clock::now();
  if (threads <= 1) {
    for (auto& p : parsed) {
      AnalysisResult r =
          analyzeProgram(*p.program, AnalysisConfig::predicated());
      benchmark::DoNotOptimize(r.plans.size());
    }
  } else {
    // Caller participates via the barrier API, so `threads` means
    // `threads` executing threads; programs are claimed off an atomic
    // counter (self-scheduling — corpus programs vary a lot in cost).
    ThreadPool pool(threads);
    std::atomic<size_t> next{0};
    pool.runOnAll([&](unsigned) {
      for (size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) <
                     parsed.size();) {
        AnalysisResult r =
            analyzeProgram(*parsed[i].program, AnalysisConfig::predicated());
        benchmark::DoNotOptimize(r.plans.size());
      }
    });
  }
  return msSince(t0);
}

double timedConfigPass(std::vector<Parsed>& parsed,
                       const AnalysisConfig& cfg) {
  auto t0 = std::chrono::steady_clock::now();
  for (auto& p : parsed) {
    AnalysisResult r = analyzeProgram(*p.program, cfg);
    benchmark::DoNotOptimize(r.plans.size());
  }
  return msSince(t0);
}

void writeAnalysisTimeJson(const std::string& path) {
  std::vector<Parsed> parsed = parseCorpus();
  unsigned threads = analysisThreadCount();

  // Warm the process (allocator pools, page faults, lazy statics) so the
  // first timed pass is not penalized relative to later ones.
  timedPredicatedPass(parsed, 1);

  // Per-config serial wall time (warm process, cold caches each).
  pb::FeasibilityCache::global().clear();
  PerfStats::instance().resetAll();
  double base_ms = timedConfigPass(parsed, AnalysisConfig::baseline());
  pb::FeasibilityCache::global().clear();
  double ct_ms = timedConfigPass(parsed, AnalysisConfig::compileTimeOnly());

  // The seed engine's path: serial and uncached.
  setCachesEnabled(false);
  double serial_uncached_ms = timedPredicatedPass(parsed, 1);
  clearCachesEnabledOverride();

  // Serial vs program-parallel predicated sweep, cold caches each.
  double serial_ms = timedPredicatedPass(parsed, 1);
  double parallel_ms = timedPredicatedPass(parsed, threads);
  // Cache stats below describe the parallel pass (the last reset).
  PerfStats& stats = PerfStats::instance();

  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fig_analysis_time\",\n");
  std::fprintf(f, "  \"threads\": %u,\n", threads);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"programs\": %zu,\n", parsed.size());
  std::fprintf(f, "  \"caches_enabled\": %s,\n",
               cachesEnabled() ? "true" : "false");
  std::fprintf(f, "  \"config_wall_ms\": {\n");
  std::fprintf(f, "    \"baseline\": %.3f,\n", base_ms);
  std::fprintf(f, "    \"compile_time_only\": %.3f,\n", ct_ms);
  std::fprintf(f, "    \"predicated_serial_uncached\": %.3f,\n",
               serial_uncached_ms);
  std::fprintf(f, "    \"predicated_serial\": %.3f,\n", serial_ms);
  std::fprintf(f, "    \"predicated_parallel\": %.3f\n", parallel_ms);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"parallel_speedup\": %.3f,\n",
               parallel_ms > 0 ? serial_ms / parallel_ms : 0.0);
  std::fprintf(f, "  \"speedup_vs_serial_uncached\": %.3f,\n",
               parallel_ms > 0 ? serial_uncached_ms / parallel_ms : 0.0);
  std::fprintf(f, "  \"cache\": {\n");
  std::fprintf(f, "    \"feasibility\": %s,\n",
               cacheStatsJson(stats.feasibility).c_str());
  std::fprintf(f, "    \"implies\": %s,\n",
               cacheStatsJson(stats.implies).c_str());
  std::fprintf(f, "    \"simplify\": %s,\n",
               cacheStatsJson(stats.simplify).c_str());
  std::fprintf(f, "    \"summary\": %s\n",
               cacheStatsJson(stats.summary).c_str());
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (speedup %.2fx on %u threads, feas hit rate %.1f%%)\n",
              path.c_str(), parallel_ms > 0 ? serial_ms / parallel_ms : 0.0,
              threads, 100.0 * stats.feasibility.hitRate());
}

}  // namespace

BENCHMARK(BM_BaseAnalysisCorpus)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PredicatedAnalysisCorpus)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompileTimeOnlyAnalysisCorpus)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PredicatedAnalysisCorpusParallel)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::string json_path = extractJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) writeAnalysisTimeJson(json_path);
  return 0;
}
