// Experiment E8 — warm vs cold serving latency of the mfcd analysis
// daemon, over the whole corpus (google-benchmark).
//
// The persistent summary store exists to turn repeat analysis requests
// into snapshot lookups. This harness quantifies that: per-request
// latency through the daemon's dispatch path (no socket noise) for
//   cold        — fresh daemon, empty store: full analysis per request;
//   warm-memory — same daemon asked again: in-memory store hit;
//   warm-disk   — a NEW daemon that loaded the snapshot from disk: the
//                 restart path a crash-recovered or redeployed daemon
//                 takes (includes snapshot decode amortized over the
//                 corpus).
// Every response's plan signature is checked against the cold pass —
// a warm answer that differs from cold is a correctness bug, and the
// harness aborts rather than timing it.
//
// Invoke with `--json <path>` (stripped before google-benchmark sees
// argv) for machine-readable results: per-pass total/mean/max latency,
// warm hit counts, cold/warm speedup, and snapshot size on disk.
#include <benchmark/benchmark.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>

#include "bench_util.h"
#include "server/server.h"
#include "store/summary_store.h"

using namespace padfa;
using namespace padfa::bench;

namespace {

using server::MfcDaemon;
using server::ServerOptions;

struct TempStore {
  std::string dir;
  TempStore() {
    char tmpl[] = "/tmp/padfa-serving-bench-XXXXXX";
    char* p = ::mkdtemp(tmpl);
    if (!p) {
      std::fprintf(stderr, "mkdtemp failed\n");
      std::exit(1);
    }
    dir = p;
  }
  ~TempStore() {
    if (dir.empty()) return;
    std::string cmd = "rm -rf '" + dir + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
};

ServerOptions benchOptions(const std::string& store_dir) {
  ServerOptions opts;
  opts.socket_path = store_dir + "/bench.sock";  // unused: no start()
  opts.store_dir = store_dir;
  opts.install_signal_handlers = false;
  opts.flush_every = 1u << 30;  // flush manually, outside timed regions
  return opts;
}

std::vector<std::string> requestLines() {
  std::vector<std::string> lines;
  for (const auto& e : corpus()) {
    server::Request r;
    r.cmd = "report";
    r.source = instantiate(e);
    lines.push_back(server::encodeRequest(r));
  }
  return lines;
}

struct PassResult {
  double total_ms = 0;
  double max_ms = 0;
  std::vector<std::string> signatures;
  uint64_t warm_hits = 0;
};

PassResult servePass(MfcDaemon& d, const std::vector<std::string>& lines) {
  PassResult res;
  uint64_t warm0 = d.stats().warm_hits.load();
  for (const auto& line : lines) {
    auto t0 = std::chrono::steady_clock::now();
    std::string out = d.handleLine(line);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    res.total_ms += ms;
    if (ms > res.max_ms) res.max_ms = ms;
    JsonValue v;
    std::string err;
    if (!parseJson(out, v, err) || !v.get("ok").asBool()) {
      std::fprintf(stderr, "serving pass failed: %s\n", out.c_str());
      std::exit(1);
    }
    res.signatures.push_back(v.get("signature").asString());
  }
  res.warm_hits = d.stats().warm_hits.load() - warm0;
  return res;
}

void requireIdentical(const PassResult& ref, const PassResult& pass,
                      const char* what) {
  if (ref.signatures != pass.signatures) {
    std::fprintf(stderr,
                 "BUG: %s pass produced different plan signatures than "
                 "the cold pass\n",
                 what);
    std::exit(1);
  }
}

// google-benchmark views of the three serving modes (per-request mean).

void BM_ServeCold(benchmark::State& state) {
  std::vector<std::string> lines = requestLines();
  for (auto _ : state) {
    state.PauseTiming();
    TempStore store;
    MfcDaemon d(benchOptions(store.dir));
    state.ResumeTiming();
    for (const auto& line : lines)
      benchmark::DoNotOptimize(d.handleLine(line));
  }
  state.counters["programs"] = static_cast<double>(lines.size());
}

void BM_ServeWarmMemory(benchmark::State& state) {
  std::vector<std::string> lines = requestLines();
  TempStore store;
  MfcDaemon d(benchOptions(store.dir));
  for (const auto& line : lines) d.handleLine(line);  // prime
  for (auto _ : state)
    for (const auto& line : lines)
      benchmark::DoNotOptimize(d.handleLine(line));
  state.counters["programs"] = static_cast<double>(lines.size());
}

void BM_ServeWarmDisk(benchmark::State& state) {
  std::vector<std::string> lines = requestLines();
  TempStore store;
  {
    MfcDaemon prime(benchOptions(store.dir));
    for (const auto& line : lines) prime.handleLine(line);
    prime.handleLine("{\"cmd\":\"flush\"}");
  }
  for (auto _ : state) {
    state.PauseTiming();
    MfcDaemon d(benchOptions(store.dir));
    state.ResumeTiming();
    d.store().open();  // timed: decode is part of the restart path
    for (const auto& line : lines)
      benchmark::DoNotOptimize(d.handleLine(line));
  }
  state.counters["programs"] = static_cast<double>(lines.size());
}

void passJson(FILE* f, const char* name, const PassResult& r, size_t n,
              bool last) {
  std::fprintf(f,
               "    \"%s\": {\"total_ms\": %.3f, \"mean_ms\": %.3f, "
               "\"max_ms\": %.3f, \"warm_hits\": %llu}%s\n",
               name, r.total_ms, n ? r.total_ms / static_cast<double>(n) : 0,
               r.max_ms, static_cast<unsigned long long>(r.warm_hits),
               last ? "" : ",");
}

void writeServingJson(const std::string& path) {
  std::vector<std::string> lines = requestLines();

  TempStore store;
  PassResult cold, warm_mem, warm_disk;
  {
    MfcDaemon d(benchOptions(store.dir));
    // Warm the process itself first (allocators, lazy statics) with a
    // throwaway daemon pass so `cold` measures analysis, not startup.
    servePass(d, lines);
  }
  {
    TempStore cold_store;
    MfcDaemon d(benchOptions(cold_store.dir));
    cold = servePass(d, lines);
    warm_mem = servePass(d, lines);
    d.handleLine("{\"cmd\":\"flush\"}");
    std::string cmd = "cp '" + cold_store.dir + "/summary.snap' '" +
                      store.dir + "/summary.snap'";
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "snapshot copy failed\n");
      std::exit(1);
    }
  }
  {
    MfcDaemon d(benchOptions(store.dir));
    d.store().open();
    warm_disk = servePass(d, lines);
  }
  requireIdentical(cold, warm_mem, "warm-memory");
  requireIdentical(cold, warm_disk, "warm-disk");
  if (warm_mem.warm_hits != lines.size() ||
      warm_disk.warm_hits != lines.size()) {
    std::fprintf(stderr, "BUG: warm pass missed the store (%llu/%zu)\n",
                 static_cast<unsigned long long>(warm_disk.warm_hits),
                 lines.size());
    std::exit(1);
  }

  struct stat st;
  long snap_bytes =
      ::stat((store.dir + "/summary.snap").c_str(), &st) == 0
          ? static_cast<long>(st.st_size)
          : 0;

  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fig_serving_latency\",\n");
  std::fprintf(f, "  \"programs\": %zu,\n", lines.size());
  std::fprintf(f, "  \"snapshot_bytes\": %ld,\n", snap_bytes);
  std::fprintf(f, "  \"passes\": {\n");
  passJson(f, "cold", cold, lines.size(), false);
  passJson(f, "warm_memory", warm_mem, lines.size(), false);
  passJson(f, "warm_disk", warm_disk, lines.size(), true);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"warm_memory_speedup\": %.3f,\n",
               warm_mem.total_ms > 0 ? cold.total_ms / warm_mem.total_ms
                                     : 0.0);
  std::fprintf(f, "  \"warm_disk_speedup\": %.3f,\n",
               warm_disk.total_ms > 0 ? cold.total_ms / warm_disk.total_ms
                                      : 0.0);
  std::fprintf(f, "  \"signatures_identical\": true\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf(
      "wrote %s (cold %.1f ms, warm-mem %.1f ms, warm-disk %.1f ms over "
      "%zu programs; warm-disk speedup %.1fx)\n",
      path.c_str(), cold.total_ms, warm_mem.total_ms, warm_disk.total_ms,
      lines.size(),
      warm_disk.total_ms > 0 ? cold.total_ms / warm_disk.total_ms : 0.0);
}

}  // namespace

BENCHMARK(BM_ServeCold)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeWarmMemory)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeWarmDisk)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::string json_path = extractJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) writeServingJson(json_path);
  return 0;
}
