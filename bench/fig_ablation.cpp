// Ablation study: which predicated-analysis ingredient buys which loops.
//
// Section 2.2 of the paper positions the work against prior
// guarded-analysis approaches (Gu/Li/Lee) that use predicates at compile
// time only, and motivates embedding + extraction + run-time tests as the
// distinguishing features. This harness re-runs the corpus under feature
// subsets and reports the newly parallelized loop count for each:
//
//   base          — no predicates at all (the SUIF baseline)
//   +pred         — predicated values & PredSubtract only
//   +embed        — plus predicate embedding
//   +extract      — plus predicate extraction (still compile-time only;
//                   this column models the prior-work comparison)
//   full          — plus run-time tests (the paper's system)
#include "bench_util.h"
#include "support/table.h"

using namespace padfa;
using namespace padfa::bench;

namespace {

struct ConfigRow {
  const char* label;
  AnalysisConfig config;
};

struct Gains {
  int ct = 0;
  int rt = 0;
  int total() const { return ct + rt; }
  std::string cell() const {
    return std::to_string(total()) + " (" + std::to_string(ct) + " ct)";
  }
};

Gains gainedLoops(const LoopTree& loops, const AnalysisResult& base,
                  const AnalysisResult& result) {
  Gains g;
  for (const LoopNode* node : loops.allLoops()) {
    const LoopPlan* bp = base.planFor(node->loop);
    const LoopPlan* rp = result.planFor(node->loop);
    if (!bp || !rp) continue;
    if (bp->status != LoopStatus::Sequential) continue;
    if (rp->status == LoopStatus::Parallel) ++g.ct;
    if (rp->status == LoopStatus::RuntimeTest) ++g.rt;
  }
  return g;
}

}  // namespace

int main() {
  const ConfigRow configs[] = {
      {"+pred", {true, false, false, false, true}},
      {"+embed", {true, true, false, false, true}},
      {"+extract", {true, true, true, false, true}},
      {"full", AnalysisConfig::predicated()},
  };

  TextTable table({"program", "+pred", "+embed", "+extract (GLL-like)",
                   "full (+RT tests)"});
  Gains totals[4];
  for (const auto& e : corpus()) {
    DiagEngine diags;
    auto p = parseProgram(instantiate(e), diags);
    if (!p || !analyze(*p, diags)) {
      std::fprintf(stderr, "%s: %s\n", e.name.c_str(), diags.dump().c_str());
      return 1;
    }
    LoopTree loops = LoopTree::build(*p);
    AnalysisResult base = analyzeProgram(*p, AnalysisConfig::baseline());
    std::vector<std::string> row = {e.name};
    bool any = false;
    for (int c = 0; c < 4; ++c) {
      AnalysisResult r = analyzeProgram(*p, configs[c].config);
      Gains g = gainedLoops(loops, base, r);
      totals[c].ct += g.ct;
      totals[c].rt += g.rt;
      any |= g.total() > 0;
      row.push_back(g.cell());
    }
    if (any) table.addRow(row);
  }
  table.addSeparator();
  table.addRow({"TOTAL", totals[0].cell(), totals[1].cell(),
                totals[2].cell(), totals[3].cell()});
  std::printf("Ablation: loops newly parallelized under predicated-analysis "
              "feature subsets\n(programs with no gains in any "
              "configuration omitted)\n%s\n",
              table.render().c_str());
  std::printf("'+extract' approximates prior compile-time-only guarded "
              "analyses (Gu/Li/Lee [14]); the 'full' column adds the "
              "paper's distinguishing run-time tests.\n");
  return 0;
}
