// Experiment E2 — Table 2: loops newly parallelized by predicated array
// data-flow analysis.
//
// Paper form: per program, how many additional loops the predicated
// system parallelizes, split into compile-time and run-time-test
// parallelization, and what fraction of the ELPD-reported inherently
// parallel remainder that recovers. Headlines reproduced: additional
// loops in 9 programs; >40% of the remainder recovered.
#include "audit/plan_audit.h"
#include "audit/race_oracle.h"
#include "bench_util.h"
#include "support/table.h"

using namespace padfa;
using namespace padfa::bench;

int main() {
  TextTable table({"program", "candidates", "ELPD-par", "pred-CT",
                   "pred-RT", "recovered", "% of remainder", "audit",
                   "oracle", "degraded"});
  int tot_cand = 0, tot_elpd = 0, tot_ct = 0, tot_rt = 0;
  int tot_degraded = 0;
  int programs_with_gains = 0;
  int tot_audited = 0, tot_certified = 0, tot_unsound = 0;
  int tot_oracle_clean = 0, tot_oracle_run = 0, tot_violations = 0;
  for (const auto& e : corpus()) {
    CompiledProgram cp = compileOrDie(e);
    ElpdCollector elpd = runElpd(cp);
    // Static re-verification (PlanAuditor) of the predicated plans...
    DiagEngine audit_diags;
    AuditReport audit = auditPlans(*cp.program, cp.pred, audit_diags);
    int certified = static_cast<int>(audit.count(AuditVerdict::Independent) +
                                     audit.count(AuditVerdict::DischargedTest));
    tot_audited += static_cast<int>(audit.auditedCount());
    tot_certified += certified;
    tot_unsound += static_cast<int>(audit.count(AuditVerdict::Unsound));
    // ...and dynamic re-verification (race oracle) over the reference run.
    RaceOracle oracle(*cp.program, cp.pred);
    InterpOptions ropt;
    ropt.plans = &cp.pred;
    ropt.race = &oracle;
    execute(*cp.program, ropt);
    int oracle_run = 0, oracle_clean = 0;
    for (const auto& v : oracle.verdicts()) {
      if (!v.executed) continue;
      ++oracle_run;
      if (!v.violation) ++oracle_clean;
    }
    tot_oracle_run += oracle_run;
    tot_oracle_clean += oracle_clean;
    tot_violations += static_cast<int>(oracle.violationCount());
    int cand = 0, elpd_par = 0, ct = 0, rt = 0;
    for (const LoopNode* node : cp.loops.allLoops()) {
      if (!isCandidate(cp, node->loop)) continue;
      ++cand;
      if (elpd.verdict(node->loop).parallelizable()) ++elpd_par;
      const LoopPlan* pp = cp.pred.planFor(node->loop);
      if (!pp) continue;
      if (pp->status == LoopStatus::Parallel) ++ct;
      if (pp->status == LoopStatus::RuntimeTest) ++rt;
    }
    if (ct + rt > 0) ++programs_with_gains;
    int degraded = static_cast<int>(cp.pred.degradedCount());
    table.addRow({e.name, std::to_string(cand), std::to_string(elpd_par),
                  std::to_string(ct), std::to_string(rt),
                  std::to_string(ct + rt),
                  fmtPercent(ct + rt, elpd_par),
                  std::to_string(certified) + "/" +
                      std::to_string(audit.auditedCount()),
                  std::to_string(oracle_clean) + "/" +
                      std::to_string(oracle_run),
                  std::to_string(degraded)});
    tot_cand += cand;
    tot_elpd += elpd_par;
    tot_ct += ct;
    tot_rt += rt;
    tot_degraded += degraded;
  }
  table.addSeparator();
  table.addRow({"TOTAL", std::to_string(tot_cand), std::to_string(tot_elpd),
                std::to_string(tot_ct), std::to_string(tot_rt),
                std::to_string(tot_ct + tot_rt),
                fmtPercent(tot_ct + tot_rt, tot_elpd),
                std::to_string(tot_certified) + "/" +
                    std::to_string(tot_audited),
                std::to_string(tot_oracle_clean) + "/" +
                    std::to_string(tot_oracle_run),
                std::to_string(tot_degraded)});
  std::printf("Table 2: loops newly parallelized by predicated analysis\n%s\n",
              table.render().c_str());
  std::printf("predicated analysis parallelizes %s of the inherently "
              "parallel remainder (paper: more than 40%%)\n",
              fmtPercent(tot_ct + tot_rt, tot_elpd).c_str());
  std::printf("programs gaining additional loops: %d (paper: 9)\n",
              programs_with_gains);
  std::printf("verification: auditor certifies %d/%d predicated plans "
              "(%d unsound); race oracle clean on %d/%d executed loops "
              "(%d violations)\n",
              tot_certified, tot_audited, tot_unsound, tot_oracle_clean,
              tot_oracle_run, tot_violations);
  return 0;
}
