// Experiment E2 — Table 2: loops newly parallelized by predicated array
// data-flow analysis.
//
// Paper form: per program, how many additional loops the predicated
// system parallelizes, split into compile-time and run-time-test
// parallelization, and what fraction of the ELPD-reported inherently
// parallel remainder that recovers. Headlines reproduced: additional
// loops in 9 programs; >40% of the remainder recovered.
//
// Programs are independent, so the corpus fans out program-parallel on
// the analysis pool; rows are collected and printed in corpus order, so
// the table is identical at any thread count.
#include "audit/plan_audit.h"
#include "audit/race_oracle.h"
#include "bench_util.h"
#include "runtime/thread_pool.h"
#include "support/table.h"

using namespace padfa;
using namespace padfa::bench;

namespace {

struct EntryStats {
  int cand = 0, elpd_par = 0, ct = 0, rt = 0, doa = 0, promoted = 0;
  int degraded = 0, certified = 0, audited = 0, unsound = 0;
  int oracle_run = 0, oracle_clean = 0, violations = 0;
  int syncs_total = 0, syncs_kept = 0;
};

EntryStats computeEntry(const CorpusEntry& e) {
  CompiledProgram cp = compileOrDie(e);
  ElpdCollector elpd = runElpd(cp);
  // Static re-verification (PlanAuditor) of the predicated plans...
  DiagEngine audit_diags;
  AuditReport audit = auditPlans(*cp.program, cp.pred, audit_diags);
  EntryStats s;
  s.certified = static_cast<int>(audit.count(AuditVerdict::Independent) +
                                 audit.count(AuditVerdict::DischargedTest) +
                                 audit.count(AuditVerdict::DischargedSync));
  s.audited = static_cast<int>(audit.auditedCount());
  s.unsound = static_cast<int>(audit.count(AuditVerdict::Unsound));
  for (const auto& la : audit.loops) {
    s.syncs_total += static_cast<int>(la.syncs_total);
    s.syncs_kept += static_cast<int>(la.syncs_kept);
  }
  // ...and dynamic re-verification (race oracle) over the reference run.
  RaceOracle oracle(*cp.program, cp.pred);
  InterpOptions ropt;
  ropt.plans = &cp.pred;
  ropt.race = &oracle;
  execute(*cp.program, ropt);
  for (const auto& v : oracle.verdicts()) {
    if (!v.executed) continue;
    ++s.oracle_run;
    if (!v.violation) ++s.oracle_clean;
  }
  s.violations = static_cast<int>(oracle.violationCount());
  for (const LoopNode* node : cp.loops.allLoops()) {
    if (!isCandidate(cp, node->loop)) continue;
    ++s.cand;
    if (elpd.verdict(node->loop).parallelizable()) ++s.elpd_par;
    const LoopPlan* pp = cp.pred.planFor(node->loop);
    if (!pp) continue;
    if (pp->status == LoopStatus::Parallel) ++s.ct;
    // Of the compile-time column, how many are value-range promotions:
    // RuntimeTest plans whose test the range analysis discharged
    // statically (DESIGN.md Â§15).
    if (pp->status == LoopStatus::Parallel &&
        pp->vra_action == VraAction::PromotedParallel)
      ++s.promoted;
    if (pp->status == LoopStatus::RuntimeTest) ++s.rt;
    if (pp->status == LoopStatus::Doacross) ++s.doa;
  }
  s.degraded = static_cast<int>(cp.pred.degradedCount());
  return s;
}

}  // namespace

int main() {
  TextTable table({"program", "candidates", "ELPD-par", "pred-CT",
                   "CT-promoted", "pred-RT", "pred-DOA", "syncs",
                   "recovered", "% of remainder", "audit", "oracle",
                   "degraded"});
  const std::vector<CorpusEntry>& entries = corpus();
  std::vector<std::future<EntryStats>> futs;
  futs.reserve(entries.size());
  for (const CorpusEntry& e : entries)
    futs.push_back(analysisPool().submit([&e] { return computeEntry(e); }));
  int tot_cand = 0, tot_elpd = 0, tot_ct = 0, tot_rt = 0, tot_doa = 0;
  int tot_promoted = 0, tot_degraded = 0;
  int tot_syncs_total = 0, tot_syncs_kept = 0;
  int programs_with_gains = 0, programs_with_doacross = 0;
  int tot_audited = 0, tot_certified = 0, tot_unsound = 0;
  int tot_oracle_clean = 0, tot_oracle_run = 0, tot_violations = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    const CorpusEntry& e = entries[i];
    EntryStats s = futs[i].get();
    if (s.ct + s.rt > 0) ++programs_with_gains;
    if (s.doa > 0) ++programs_with_doacross;
    table.addRow({e.name, std::to_string(s.cand), std::to_string(s.elpd_par),
                  std::to_string(s.ct), std::to_string(s.promoted),
                  std::to_string(s.rt), std::to_string(s.doa),
                  std::to_string(s.syncs_total) + "->" +
                      std::to_string(s.syncs_kept),
                  std::to_string(s.ct + s.rt),
                  fmtPercent(s.ct + s.rt, s.elpd_par),
                  std::to_string(s.certified) + "/" +
                      std::to_string(s.audited),
                  std::to_string(s.oracle_clean) + "/" +
                      std::to_string(s.oracle_run),
                  std::to_string(s.degraded)});
    tot_cand += s.cand;
    tot_elpd += s.elpd_par;
    tot_ct += s.ct;
    tot_promoted += s.promoted;
    tot_rt += s.rt;
    tot_doa += s.doa;
    tot_syncs_total += s.syncs_total;
    tot_syncs_kept += s.syncs_kept;
    tot_degraded += s.degraded;
    tot_audited += s.audited;
    tot_certified += s.certified;
    tot_unsound += s.unsound;
    tot_oracle_run += s.oracle_run;
    tot_oracle_clean += s.oracle_clean;
    tot_violations += s.violations;
  }
  table.addSeparator();
  table.addRow({"TOTAL", std::to_string(tot_cand), std::to_string(tot_elpd),
                std::to_string(tot_ct), std::to_string(tot_promoted),
                std::to_string(tot_rt), std::to_string(tot_doa),
                std::to_string(tot_syncs_total) + "->" +
                    std::to_string(tot_syncs_kept),
                std::to_string(tot_ct + tot_rt),
                fmtPercent(tot_ct + tot_rt, tot_elpd),
                std::to_string(tot_certified) + "/" +
                    std::to_string(tot_audited),
                std::to_string(tot_oracle_clean) + "/" +
                    std::to_string(tot_oracle_run),
                std::to_string(tot_degraded)});
  std::printf("Table 2: loops newly parallelized by predicated analysis\n%s\n",
              table.render().c_str());
  std::printf("predicated analysis parallelizes %s of the inherently "
              "parallel remainder (paper: more than 40%%)\n",
              fmtPercent(tot_ct + tot_rt, tot_elpd).c_str());
  std::printf("programs gaining additional loops: %d (paper: 9)\n",
              programs_with_gains);
  std::printf("value ranges discharge %d run-time tests at compile time "
              "(CT-promoted; every promotion re-verified by auditor, "
              "certification, and oracle)\n",
              tot_promoted);
  std::printf("doacross pipelines %d further sequential loops across %d "
              "programs; sync requirements %d -> %d after redundant-sync "
              "elimination\n",
              tot_doa, programs_with_doacross, tot_syncs_total,
              tot_syncs_kept);
  std::printf("verification: auditor certifies %d/%d predicated plans "
              "(%d unsound); race oracle clean on %d/%d executed loops "
              "(%d violations)\n",
              tot_certified, tot_audited, tot_unsound, tot_oracle_clean,
              tot_oracle_run, tot_violations);
  return 0;
}
