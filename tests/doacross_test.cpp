// Doacross pipeline end-to-end: classification (constant-distance sync
// requirements in iteration ordinals), redundant-sync elimination, the
// auditor's independent re-derivation (with teeth against forged
// distances and forged eliminations), the race oracle modulo declared
// syncs, and execution correctness across scheduling policies, thread
// counts, chunk sizes, and window bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "audit/plan_audit.h"
#include "audit/race_oracle.h"
#include "corpus/corpus.h"
#include "dataflow/doacross.h"
#include "driver/padfa.h"
#include "driver/plan_signature.h"
#include "interp/interp.h"
#include "vra/vra.h"

namespace padfa {
namespace {

CompiledProgram compile(const std::string& src) {
  DiagEngine diags;
  auto cp = compileSource(src, diags);
  EXPECT_TRUE(cp.has_value()) << diags.dump();
  return std::move(*cp);
}

const CorpusEntry& entryNamed(std::string_view name) {
  for (const CorpusEntry& e : corpus())
    if (e.name == name) return e;
  ADD_FAILURE() << "no corpus entry named " << name;
  return corpus().front();
}

CompiledProgram compileEntry(std::string_view name) {
  return compile(instantiate(entryNamed(name)));
}

const ForStmt* loopAt(const CompiledProgram& cp, uint32_t line) {
  for (const LoopNode* node : cp.loops.allLoops())
    if (node->loop->loc.line == line) return node->loop;
  ADD_FAILURE() << "no loop at line " << line;
  return nullptr;
}

/// The unique Doacross plan of the predicated analysis (fails the test
/// when there is none or more than one).
const LoopPlan* doacrossPlan(const CompiledProgram& cp) {
  const LoopPlan* found = nullptr;
  for (const auto& [loop, plan] : cp.pred.plans) {
    if (plan.status != LoopStatus::Doacross) continue;
    EXPECT_EQ(found, nullptr) << "more than one Doacross plan";
    found = &plan;
  }
  EXPECT_NE(found, nullptr) << "no Doacross plan";
  return found;
}

std::string notesOf(const AuditReport& rep) {
  std::string out;
  for (const auto& la : rep.loops) {
    out += la.loop->loop_id + " [" + std::string(auditVerdictName(la.verdict)) +
           "]";
    for (const auto& n : la.notes) out += "\n    " + n;
    out += '\n';
  }
  return out;
}

// -------------------------------------------------- classification ----

/// RAII: compile with the value-range analysis off (the raw Doacross
/// machinery under test predates the profitability guard, which demotes
/// bare single-statement recurrences — see DoacrossCost below).
struct VraOff {
  VraOff() { vra::setVraEnabled(false); }
  ~VraOff() { vra::clearVraEnabledOverride(); }
};

const char* kUnitRecurrence = R"(
proc main() {
  real a[64];
  for i = 1 to 63 {
    a[i] = a[i - 1] * 0.5 + 1.0;
  }
  sink(a[63]);
}
)";

/// Same recurrence plus an independent per-iteration prefix: there is
/// real work to overlap, so the profitability guard lets it pipeline.
const char* kPipelinedRecurrence = R"(
proc main() {
  real a[64];
  real b[64];
  for i = 1 to 63 {
    b[i] = noise(i) * 0.25;
    a[i] = a[i - 1] * 0.5 + b[i];
  }
  sink(a[63]);
  sink(b[63]);
}
)";

TEST(DoacrossClassify, UnitStepRecurrenceUpgrades) {
  VraOff off;
  CompiledProgram cp = compile(kUnitRecurrence);
  const LoopPlan* plan = doacrossPlan(cp);
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->syncs.size(), 1u);
  EXPECT_EQ(plan->syncs[0].distance, 1);
  EXPECT_FALSE(plan->syncs[0].eliminated);
  EXPECT_EQ(plan->keptSyncCount(), 1u);
  // The Sequential reason survives the upgrade as documentation.
  EXPECT_NE(plan->reason.find("loop-carried"), std::string::npos);
}

TEST(DoacrossClassify, StepTwoStoresOrdinalDistance) {
  // Index distance 2 over step 2 is ONE iteration: the sync requirement
  // must be stored in iteration ordinals, not index space — the runtime
  // post/wait cells count ordinals.
  VraOff off;
  CompiledProgram cp = compile(R"(
proc main() {
  real a[64];
  for i = 2 to 62 step 2 {
    a[i] = a[i - 2] * 0.5 + 1.0;
  }
  sink(a[62]);
}
)");
  const LoopPlan* plan = doacrossPlan(cp);
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->syncs.size(), 1u);
  EXPECT_EQ(plan->syncs[0].distance, 1);
}

TEST(DoacrossClassify, DownwardLoopStaysSequential) {
  // Negative step: doacrossConstStep() refuses, the loop keeps its
  // Sequential plan.
  CompiledProgram cp = compile(R"(
proc main() {
  real a[64];
  for i = 62 to 0 step -1 {
    a[i] = a[i + 1] * 0.5 + 1.0;
  }
  sink(a[0]);
}
)");
  for (const auto& [loop, plan] : cp.pred.plans)
    EXPECT_NE(plan.status, LoopStatus::Doacross) << loop->loop_id;
}

TEST(DoacrossClassify, NonConstantDistanceStaysSequential) {
  // a[i] reads a[i/2]: the dependence distance varies with i, so no
  // constant-distance sync can cover it.
  CompiledProgram cp = compile(R"(
proc main() {
  real a[64];
  for i = 1 to 63 {
    a[i] = a[i / 2] * 0.5 + 1.0;
  }
  sink(a[63]);
}
)");
  for (const auto& [loop, plan] : cp.pred.plans)
    EXPECT_NE(plan.status, LoopStatus::Doacross) << loop->loop_id;
}

TEST(DoacrossClassify, DoacrossConstStepRules) {
  CompiledProgram cp = compile(R"(
proc main() {
  real a[8];
  for i = 0 to 7 { a[i] = 1.0; }
  for i = 0 to 7 step 3 { a[i] = 2.0; }
  for i = 7 to 0 step -1 { a[i] = 3.0; }
  sink(a[0]);
}
)");
  const ForStmt* unit = loopAt(cp, 4);
  const ForStmt* three = loopAt(cp, 5);
  const ForStmt* down = loopAt(cp, 6);
  ASSERT_TRUE(unit && three && down);
  EXPECT_EQ(doacrossConstStep(*unit), std::optional<int64_t>(1));
  EXPECT_EQ(doacrossConstStep(*three), std::optional<int64_t>(3));
  EXPECT_EQ(doacrossConstStep(*down), std::nullopt);
}

// -------------------------------------------------- profitability ----

TEST(DoacrossCost, LossMakingRecurrenceDemoted) {
  // The whole body IS the recurrence: every iteration waits for its
  // predecessor to finish everything, so the pipeline degenerates to a
  // sequential schedule plus post/wait overhead. The value-range cost
  // guard keeps the loop Sequential and records why.
  CompiledProgram cp = compile(kUnitRecurrence);
  for (const auto& [loop, plan] : cp.pred.plans)
    EXPECT_NE(plan.status, LoopStatus::Doacross) << loop->loop_id;
  bool saw_demotion = false;
  for (const auto& [loop, plan] : cp.pred.plans) {
    if (plan.vra_action != VraAction::DoacrossCost) continue;
    saw_demotion = true;
    EXPECT_EQ(plan.status, LoopStatus::Sequential);
    EXPECT_NE(plan.reason.find("loop-carried"), std::string::npos);
  }
  EXPECT_TRUE(saw_demotion);
}

TEST(DoacrossCost, SpanBelowStepDemotes) {
  // lb=8, ub=9, step=4: at most one iteration ever runs — nothing to
  // pipeline, whatever the body looks like.
  CompiledProgram cp = compile(R"(
proc main() {
  real a[16];
  real b[16];
  for i = 8 to 9 step 4 {
    b[i] = noise(i) * 0.25;
    a[i] = a[i - 4] * 0.5 + b[i];
  }
  sink(a[9]);
  sink(b[9]);
}
)");
  for (const auto& [loop, plan] : cp.pred.plans)
    EXPECT_NE(plan.status, LoopStatus::Doacross) << loop->loop_id;
}

TEST(DoacrossCost, IndependentPrefixSurvivesTheGuard) {
  // The independent prefix gives iteration i+1 work to do while waiting
  // on iteration i's tail: profitable, so the upgrade commits.
  CompiledProgram cp = compile(kPipelinedRecurrence);
  const LoopPlan* plan = doacrossPlan(cp);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->vra_action, VraAction::None);
  ASSERT_EQ(plan->syncs.size(), 1u);
  EXPECT_EQ(plan->syncs[0].distance, 1);
}

TEST(DoacrossCost, DisabledVraReproducesTheOldUpgrade) {
  // Under PADFA_NO_VRA the guard must be inert: the bare recurrence
  // upgrades exactly as it did before the value-range pass existed, and
  // its plan signature carries no vra marker.
  VraOff off;
  CompiledProgram cp = compile(kUnitRecurrence);
  const LoopPlan* plan = doacrossPlan(cp);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->vra_action, VraAction::None);
  EXPECT_EQ(planSignature(cp).find(" vra="), std::string::npos);
}

// --------------------------------------------------- elimination ----

TEST(DoacrossElimination, WavefrontDropsImpliedRequirement) {
  // wavefront_sync carries (S1,S1,1), (S2,S2,1) and (S1,S2,2); the
  // distance-2 requirement is implied by chaining (S1,S1,1) twice plus
  // intra-iteration program order, so elimination drops exactly it.
  CompiledProgram cp = compileEntry("wavefront_sync");
  const LoopPlan* plan = doacrossPlan(cp);
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->syncs.size(), 3u);
  EXPECT_EQ(plan->keptSyncCount(), 2u);
  for (const auto& s : plan->syncs) {
    if (s.eliminated) {
      EXPECT_EQ(s.distance, 2);
    } else {
      EXPECT_EQ(s.distance, 1);
    }
  }
}

TEST(DoacrossElimination, CoverageRuleAgreesWithTheAuditor) {
  CompiledProgram cp = compileEntry("wavefront_sync");
  const LoopPlan* plan = doacrossPlan(cp);
  ASSERT_NE(plan, nullptr);
  SyncOrderInfo info = buildSyncOrderInfo(*plan->loop);
  std::vector<SyncRequirement> kept;
  for (const auto& s : plan->syncs)
    if (!s.eliminated) kept.push_back(s);
  for (const auto& s : plan->syncs) {
    if (!s.eliminated) continue;
    // The eliminated requirement is re-derivable from the kept set...
    EXPECT_TRUE(syncRequirementCovered(s, kept, info));
    // ...but never from an empty one.
    EXPECT_FALSE(syncRequirementCovered(s, {}, info));
  }
}

// --------------------------------------------------------- audit ----

TEST(DoacrossAudit, AuditorDischargesDeclaredSyncs) {
  VraOff off;
  CompiledProgram cp = compile(kUnitRecurrence);
  DiagEngine diags;
  AuditReport rep = auditPlans(*cp.program, cp.pred, diags);
  EXPECT_TRUE(rep.clean()) << notesOf(rep);
  bool saw_doacross = false;
  for (const auto& la : rep.loops) {
    if (la.status != LoopStatus::Doacross) continue;
    saw_doacross = true;
    EXPECT_EQ(la.verdict, AuditVerdict::DischargedSync) << notesOf(rep);
    EXPECT_GT(la.pairs_synced, 0u);
    EXPECT_EQ(la.syncs_total, 1u);
    EXPECT_EQ(la.syncs_kept, 1u);
  }
  EXPECT_TRUE(saw_doacross);
}

TEST(DoacrossAudit, AuditorCatchesForgedDistance) {
  // Weakening the declared sync (distance 1 -> 2) leaves the real
  // distance-1 dependence uncovered; the auditor must flag it.
  VraOff off;
  CompiledProgram cp = compile(kUnitRecurrence);
  AnalysisResult forged = cp.pred;
  int forced = 0;
  for (auto& [loop, plan] : forged.plans)
    if (plan.status == LoopStatus::Doacross) {
      ASSERT_EQ(plan.syncs.size(), 1u);
      plan.syncs[0].distance = 2;
      ++forced;
    }
  ASSERT_GT(forced, 0);
  DiagEngine diags;
  AuditReport rep = auditPlans(*cp.program, forged, diags);
  EXPECT_EQ(rep.count(AuditVerdict::Unsound), 1u) << notesOf(rep);
}

TEST(DoacrossAudit, AuditorCatchesForgedElimination) {
  // Marking the only requirement eliminated forges an elimination the
  // kept (now empty) set cannot imply; checkSyncs() must reject it.
  VraOff off;
  CompiledProgram cp = compile(kUnitRecurrence);
  AnalysisResult forged = cp.pred;
  int forced = 0;
  for (auto& [loop, plan] : forged.plans)
    if (plan.status == LoopStatus::Doacross) {
      ASSERT_EQ(plan.syncs.size(), 1u);
      plan.syncs[0].eliminated = true;
      ++forced;
    }
  ASSERT_GT(forced, 0);
  DiagEngine diags;
  AuditReport rep = auditPlans(*cp.program, forged, diags);
  EXPECT_EQ(rep.count(AuditVerdict::Unsound), 1u) << notesOf(rep);
}

// -------------------------------------------------------- oracle ----

TEST(DoacrossOracle, CleanOnExecutedDoacrossLoops) {
  for (const char* name : {"sor_pipe", "lin_rec4", "wavefront_sync"}) {
    CompiledProgram cp = compileEntry(name);
    RaceOracle oracle(*cp.program, cp.pred);
    InterpOptions opt;
    opt.plans = &cp.pred;
    opt.race = &oracle;
    execute(*cp.program, opt);
    EXPECT_EQ(oracle.violationCount(), 0u)
        << name << ":\n" << oracle.report(cp.program->interner);
    bool saw_doacross = false;
    for (const auto& v : oracle.verdicts())
      if (v.status == LoopStatus::Doacross && v.executed) saw_doacross = true;
    EXPECT_TRUE(saw_doacross) << name;
  }
}

TEST(DoacrossOracle, CatchesForgedDistance) {
  // The oracle checks accesses modulo the DECLARED sync distances; a
  // forged distance exposes the true distance-1 flow as a violation.
  VraOff off;
  CompiledProgram cp = compile(kUnitRecurrence);
  AnalysisResult forged = cp.pred;
  for (auto& [loop, plan] : forged.plans)
    if (plan.status == LoopStatus::Doacross) plan.syncs[0].distance = 2;
  RaceOracle oracle(*cp.program, forged);
  InterpOptions opt;
  opt.plans = &forged;
  opt.race = &oracle;
  execute(*cp.program, opt);
  EXPECT_GE(oracle.violationCount(), 1u)
      << oracle.report(cp.program->interner);
}

// ----------------------------------------------------- execution ----

TEST(DoacrossExec, DeterministicAcrossPoliciesThreadsAndWindows) {
  // For a FIXED chunk the block decomposition — and therefore every
  // computed value, including floating-point reduction grouping — must
  // be bit-identical across policies, thread counts, and window bounds.
  // Against the sequential run only reductions reassociate, so that
  // comparison gets the usual tiny relative tolerance.
  const SchedPolicy policies[] = {SchedPolicy::Static, SchedPolicy::Dynamic,
                                  SchedPolicy::Guided, SchedPolicy::Steal};
  for (const char* name : {"sor_pipe", "lin_rec4", "wavefront_sync"}) {
    CompiledProgram cp = compileEntry(name);
    InterpOptions seq;
    const double seq_sum = execute(*cp.program, seq).checksum;
    bool have_baseline = false;
    double baseline = 0;
    for (SchedPolicy pol : policies) {
      for (unsigned threads : {1u, 2u, 8u}) {
        for (int64_t window : {int64_t{2}, int64_t{64}}) {
          InterpOptions opt;
          opt.plans = &cp.pred;
          opt.num_threads = threads;
          opt.sched = pol;
          opt.chunk = 1;
          opt.doacross_window = window;
          InterpStats st = execute(*cp.program, opt);
          if (!have_baseline) {
            baseline = st.checksum;
            have_baseline = true;
            EXPECT_NEAR(baseline, seq_sum,
                        1e-9 * (std::abs(seq_sum) + 1.0))
                << name;
          }
          EXPECT_EQ(st.checksum, baseline)
              << name << " policy=" << schedPolicyName(pol)
              << " T=" << threads << " window=" << window;
          if (threads > 1) {
            EXPECT_GT(st.doacross_loops_entered, 0u) << name;
          }
        }
      }
    }
  }
}

TEST(DoacrossExec, PipelineOverlapsInSimulatedTime) {
  // With the carried dependence on a tiny tail of each iteration, the
  // simulated 4-processor pipeline must beat the sequential run.
  CompiledProgram cp = compileEntry("sor_pipe");
  InterpOptions seq;
  seq.profile = true;
  InterpStats s0 = execute(*cp.program, seq);
  InterpOptions par;
  par.plans = &cp.pred;
  par.num_threads = 4;
  par.profile = true;
  InterpStats s1 = execute(*cp.program, par);
  EXPECT_EQ(s1.checksum, s0.checksum);
  EXPECT_GT(s1.doacross_loops_entered, 0u);
  EXPECT_GT(s1.doacross_waits, 0u);
  EXPECT_LT(s1.simulated_seconds, s0.simulated_seconds)
      << "pipelined execution did not overlap";
}

// ----------------------------------------------------- signature ----

TEST(DoacrossSignature, SyncsAreInTheSignatureAndEnvIsNot) {
  CompiledProgram cp = compileEntry("wavefront_sync");
  std::string sig = planSignature(cp);
  // Sync requirements (with elimination marks) are part of the plan's
  // canonical identity...
  EXPECT_NE(sig.find("syncs=["), std::string::npos);
  EXPECT_NE(sig.find(":d1"), std::string::npos);
  EXPECT_NE(sig.find(":d2-elim"), std::string::npos);
  // ...while the scheduling knobs are runtime-only: recompiling under
  // different PADFA_SCHED / PADFA_CHUNK / PADFA_DOACROSS_WINDOW values
  // must reproduce the signature byte for byte.
  for (const char* sched : {"static", "dynamic", "guided", "steal"}) {
    setenv("PADFA_SCHED", sched, 1);
    setenv("PADFA_CHUNK", "3", 1);
    setenv("PADFA_DOACROSS_WINDOW", "2", 1);
    CompiledProgram again = compileEntry("wavefront_sync");
    EXPECT_EQ(planSignature(again), sig) << sched;
  }
  unsetenv("PADFA_SCHED");
  unsetenv("PADFA_CHUNK");
  unsetenv("PADFA_DOACROSS_WINDOW");
}

}  // namespace
}  // namespace padfa
