// Unit tests for support utilities (interner, diagnostics, tables) and
// the region-graph / loop-tree IR.
#include <gtest/gtest.h>

#include "ir/region.h"
#include "lang/parser.h"
#include "lang/sema.h"
#include "support/diagnostics.h"
#include "support/interner.h"
#include "support/table.h"

namespace padfa {
namespace {

TEST(Interner, DedupesStrings) {
  Interner in;
  Symbol a = in.intern("foo");
  Symbol b = in.intern("foo");
  Symbol c = in.intern("bar");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(in.str(a), "foo");
  EXPECT_EQ(in.str(c), "bar");
}

TEST(Interner, EmptyStringIsIdZero) {
  Interner in;
  EXPECT_TRUE(in.intern("").empty());
}

TEST(Diagnostics, CountsErrorsOnly) {
  DiagEngine d;
  d.warning({1, 1}, "w");
  d.note({1, 2}, "n");
  EXPECT_FALSE(d.hasErrors());
  d.error({2, 3}, "e");
  EXPECT_TRUE(d.hasErrors());
  EXPECT_EQ(d.errorCount(), 1u);
  EXPECT_EQ(d.all().size(), 3u);
}

TEST(Diagnostics, DumpFormatsLocations) {
  DiagEngine d;
  d.error({7, 9}, "bad thing");
  std::string s = d.dump();
  EXPECT_NE(s.find("7:9"), std::string::npos);
  EXPECT_NE(s.find("bad thing"), std::string::npos);
  EXPECT_NE(s.find("error"), std::string::npos);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "count"});
  t.addRow({"a", "1"});
  t.addRow({"longer-name", "22"});
  std::string s = t.render();
  // Every data line has the same length.
  size_t first_len = s.find('\n');
  size_t pos = 0;
  for (std::string_view line = s; pos < s.size();) {
    size_t next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len) << s;
    pos = next + 1;
    (void)line;
  }
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.addRow({"only-one"});
  std::string s = t.render();
  EXPECT_NE(s.find("only-one"), std::string::npos);
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
  EXPECT_EQ(fmtPercent(1, 4), "25.0%");
  EXPECT_EQ(fmtPercent(1, 0), "-");
}

// ---- LoopTree ----

std::unique_ptr<Program> compile(std::string_view src) {
  DiagEngine diags;
  auto p = parseProgram(src, diags);
  EXPECT_NE(p, nullptr) << diags.dump();
  if (p) {
    EXPECT_TRUE(analyze(*p, diags)) << diags.dump();
  }
  return p;
}

TEST(LoopTree, NestingAndDepths) {
  auto p = compile(R"(
proc main() {
  real a[8, 8];
  for i = 0 to 7 {
    for j = 0 to 7 { a[i, j] = 1.0; }
  }
  for k = 0 to 7 { a[k, 0] = 2.0; }
}
)");
  LoopTree tree = LoopTree::build(*p);
  EXPECT_EQ(tree.loopCount(), 3u);
  int depth0 = 0, depth1 = 0;
  for (const LoopNode* n : tree.allLoops()) {
    if (n->depth == 0) ++depth0;
    if (n->depth == 1) {
      ++depth1;
      ASSERT_NE(n->parent, nullptr);
      EXPECT_EQ(n->parent->depth, 0);
    }
  }
  EXPECT_EQ(depth0, 2);
  EXPECT_EQ(depth1, 1);
}

TEST(LoopTree, CallAndSinkFlags) {
  auto p = compile(R"(
proc helper(real v[4]) { v[0] = 1.0; }
proc noisy() { real x; x = 2.0; sink(x); }
proc main() {
  real a[4];
  for i = 0 to 3 { helper(a); }
  for i = 0 to 3 { noisy(); }
  for i = 0 to 3 { a[i] = 0.0; }
}
)");
  LoopTree tree = LoopTree::build(*p);
  ASSERT_EQ(tree.loopCount(), 3u);
  auto loops = tree.allLoops();
  // Loops appear in build order (per procedure, source order).
  const LoopNode* call_loop = loops[0];
  const LoopNode* sink_loop = loops[1];
  const LoopNode* plain_loop = loops[2];
  EXPECT_TRUE(call_loop->contains_call);
  EXPECT_FALSE(call_loop->contains_sink);
  EXPECT_TRUE(sink_loop->contains_sink);  // via transitive callee
  EXPECT_FALSE(plain_loop->contains_call);
  EXPECT_TRUE(tree.procHasSink(p->findProc("noisy")));
  EXPECT_FALSE(tree.procHasSink(p->findProc("helper")));
  EXPECT_TRUE(tree.procHasSink(p->findProc("main")));
}

TEST(LoopTree, NodeForLookup) {
  auto p = compile(R"(
proc main() {
  real a[4];
  for i = 0 to 3 { a[i] = 1.0; }
}
)");
  LoopTree tree = LoopTree::build(*p);
  auto loops = tree.allLoops();
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(tree.nodeFor(loops[0]->loop), loops[0]);
  EXPECT_EQ(tree.nodeFor(nullptr), nullptr);
}

TEST(LoopTree, BodyStmtCounts) {
  auto p = compile(R"(
proc main() {
  real a[4];
  for i = 0 to 3 {
    a[i] = 1.0;
    if (i > 1) { a[0] = 2.0; }
  }
}
)");
  LoopTree tree = LoopTree::build(*p);
  EXPECT_GE(tree.allLoops()[0]->body_stmt_count, 3u);
}

}  // namespace
}  // namespace padfa
