// Corpus-wide cache/parallelism coherence: the memoization layer and the
// task-parallel driver are pure performance features — every LoopPlan,
// loop outcome, and degradation flag must be bit-identical to the serial,
// uncached engine regardless of cache state and thread count.
//
// The test compiles the whole corpus once serially with caches disabled
// (the reference), then recompiles it under caches {off, on} × pool sizes
// {1, 2, 8} — deliberately *without* clearing the global caches between
// configurations, so later runs also exercise warm-cache determinism —
// and compares a full structural signature of every program's plans.
#include <gtest/gtest.h>

#include <future>

#include "corpus/corpus.h"
#include "driver/padfa.h"
#include "driver/plan_signature.h"
#include "presburger/feasibility_cache.h"
#include "runtime/thread_pool.h"
#include "support/perf_stats.h"

namespace padfa {
namespace {

// Full structural signature of one compiled program's parallelization
// output, via the shared driver/plan_signature.h rendering (also used by
// the persistent summary store and the mfcd daemon — this test is the
// coherence anchor for all of them). FM-step/constraint meters are
// intentionally excluded: cache hits legitimately skip work, and the
// contract is identical *plans*, not identical work counts.
std::string signatureOf(const CorpusEntry& e) {
  DiagEngine diags;
  auto cp = compileSource(instantiate(e), diags);
  if (!cp) return "compile-error: " + diags.dump();
  return planSignature(*cp);
}

std::vector<std::string> sweepCorpus(bool caches, unsigned threads) {
  setCachesEnabled(caches);
  const std::vector<CorpusEntry>& entries = corpus();
  std::vector<std::string> sigs(entries.size());
  if (threads <= 1) {
    for (size_t i = 0; i < entries.size(); ++i)
      sigs[i] = signatureOf(entries[i]);
  } else {
    ThreadPool pool(threads);
    std::vector<std::future<std::string>> futs;
    futs.reserve(entries.size());
    for (const CorpusEntry& e : entries)
      futs.push_back(pool.submit([&e] { return signatureOf(e); }));
    for (size_t i = 0; i < entries.size(); ++i) sigs[i] = futs[i].get();
  }
  return sigs;
}

TEST(CacheCoherence, PlansIdenticalAcrossCachesAndThreads) {
  // Self-contained regardless of prior in-process cache traffic.
  pb::FeasibilityCache::global().clear();
  PerfStats::instance().resetAll();

  std::vector<std::string> ref = sweepCorpus(/*caches=*/false, /*threads=*/1);
  ASSERT_EQ(ref.size(), corpus().size());

  struct Config {
    bool caches;
    unsigned threads;
  };
  const Config configs[] = {{false, 2}, {false, 8}, {true, 1},
                            {true, 2},  {true, 8}};
  for (const Config& c : configs) {
    std::vector<std::string> got = sweepCorpus(c.caches, c.threads);
    for (size_t i = 0; i < ref.size(); ++i)
      EXPECT_EQ(ref[i], got[i])
          << corpus()[i].name << " diverges with caches="
          << (c.caches ? "on" : "off") << " threads=" << c.threads;
  }
  clearCachesEnabledOverride();

  // The cached runs must actually have exercised the memo layer; a
  // permanently-missing cache would make this whole test vacuous.
  EXPECT_GT(PerfStats::instance().feasibility.hits.load(), 0u);
  EXPECT_GT(PerfStats::instance().feasibility.inserts.load(), 0u);
}

// Same-pool runOnAll re-entry is a programming error that used to
// deadlock; it must fail fast instead (satellite: re-entry guard).
TEST(ThreadPoolGuards, NestedRunOnAllFromWorkerThrows) {
  ThreadPool pool(4);
  std::future<bool> threw = pool.submit([&pool] {
    try {
      pool.runOnAll([](unsigned) {});
      return false;
    } catch (const std::logic_error&) {
      return true;
    }
  });
  EXPECT_TRUE(threw.get());
}

// submit() from a worker of the same pool must execute inline (never
// queue behind the submitting worker itself).
TEST(ThreadPoolGuards, SubmitFromWorkerRunsInline) {
  ThreadPool pool(2);
  std::future<bool> ok = pool.submit([&pool] {
    bool inner_ran = false;
    pool.submit([&inner_ran] { inner_ran = true; }).get();
    return inner_ran;
  });
  EXPECT_TRUE(ok.get());
}

}  // namespace
}  // namespace padfa
