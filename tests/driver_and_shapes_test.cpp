// Driver-level classification tests plus analysis coverage for trickier
// loop shapes: strided nests, triangular bounds, symbolic outer-index
// subscripts, and multi-array interactions.
#include <gtest/gtest.h>

#include "driver/padfa.h"

namespace padfa {
namespace {

CompiledProgram compileOk(std::string_view src) {
  DiagEngine diags;
  auto cp = compileSource(std::string(src), diags);
  EXPECT_TRUE(cp.has_value()) << diags.dump();
  return std::move(*cp);
}

LoopOutcome outcomeAt(const CompiledProgram& cp, uint32_t line) {
  for (const LoopNode* node : cp.loops.allLoops())
    if (node->loop->loc.line == line) return classifyLoop(cp, node->loop);
  ADD_FAILURE() << "no loop at line " << line;
  return LoopOutcome::NotCandidate;
}

TEST(Classify, AllOutcomeKindsHaveNames) {
  EXPECT_EQ(loopOutcomeName(LoopOutcome::BaseParallel), "base-parallel");
  EXPECT_EQ(loopOutcomeName(LoopOutcome::PredParallelCT),
            "pred-parallel-ct");
  EXPECT_EQ(loopOutcomeName(LoopOutcome::PredParallelRT),
            "pred-parallel-rt");
  EXPECT_EQ(loopOutcomeName(LoopOutcome::PredDoacross), "pred-doacross");
  EXPECT_EQ(loopOutcomeName(LoopOutcome::SequentialBoth), "sequential");
  EXPECT_EQ(loopOutcomeName(LoopOutcome::NotCandidate), "not-candidate");
  EXPECT_EQ(loopOutcomeName(LoopOutcome::NestedInParallel),
            "nested-in-parallel");
}

TEST(Classify, NestedInsideParallelizedDetection) {
  auto cp = compileOk(R"(
proc main() {
  real g[32, 32];
  for i = 0 to 31 {
    for j = 1 to 31 { g[i, j] = g[i, j-1] * 0.5 + noise(i); }
  }
  sink(g[3, 3]);
}
)");
  EXPECT_EQ(outcomeAt(cp, 4), LoopOutcome::BaseParallel);
  // The inner loop is a constant-distance recurrence, but its whole body
  // IS the recurrence: the value-range profitability guard rejects the
  // Doacross upgrade (a pipeline with nothing to overlap), so the loop
  // stays sequential inside the parallel outer loop.
  EXPECT_EQ(outcomeAt(cp, 5), LoopOutcome::NestedInParallel);
  for (const LoopNode* node : cp.loops.allLoops()) {
    if (node->loop->loc.line == 5) {
      EXPECT_TRUE(nestedInsideParallelized(cp, node->loop, cp.base));
      EXPECT_TRUE(nestedInsideParallelized(cp, node->loop, cp.pred));
    }
    if (node->loop->loc.line == 4) {
      EXPECT_FALSE(nestedInsideParallelized(cp, node->loop, cp.base));
    }
  }
}

TEST(Shapes, TriangularLoopNest) {
  // Inner bound depends on the outer index: classic triangular iteration
  // space; both loops write disjoint elements.
  auto cp = compileOk(R"(
proc main() {
  real t[64, 64];
  for i = 0 to 63 {
    for j = 0 to i { t[i, j] = noise(i * 64 + j); }
  }
  sink(t[5, 3]);
}
)");
  EXPECT_EQ(outcomeAt(cp, 4), LoopOutcome::BaseParallel);
}

TEST(Shapes, TriangularTransposeReadIsActuallyParallel) {
  // t[i][j] (lower triangle) reads t[j][i] (upper triangle): write and
  // read regions only meet on the diagonal within the same iteration, so
  // the outer loop is parallel — the triangular constraints j <= i must
  // flow through the dependence system to prove it.
  auto cp = compileOk(R"(
proc main() {
  real t[32, 32];
  for q = 0 to 31 {
    for r = 0 to 31 { t[q, r] = noise(q * 32 + r); }
  }
  for i = 0 to 31 {
    for j = 0 to i { t[i, j] = t[j, i] + 1.0; }
  }
  sink(t[5, 3]);
}
)");
  EXPECT_EQ(outcomeAt(cp, 7), LoopOutcome::BaseParallel);
}

TEST(Shapes, TriangularRowRecurrenceSequential) {
  // Genuine triangular flow: row i reads row i-1 within the triangle.
  auto cp = compileOk(R"(
proc main() {
  real t[32, 32];
  for q = 0 to 31 {
    for r = 0 to 31 { t[q, r] = noise(q * 32 + r); }
  }
  for i = 1 to 31 {
    for j = 0 to i { t[i, j] = t[i - 1, j] + 1.0; }
  }
  sink(t[5, 3]);
}
)");
  EXPECT_EQ(outcomeAt(cp, 7), LoopOutcome::SequentialBoth);
}

TEST(Shapes, StridedInterleavedWrites) {
  // Stride-3 loops writing offsets 0,1,2 never collide (gcd reasoning
  // through the step auxiliary variables).
  auto cp = compileOk(R"(
proc main() {
  real v[300];
  for i = 0 to 297 step 3 {
    v[i] = noise(i);
    v[i + 1] = noise(i) * 0.5;
    v[i + 2] = noise(i) * 0.25;
  }
  sink(v[7]);
}
)");
  EXPECT_EQ(outcomeAt(cp, 4), LoopOutcome::BaseParallel);
}

TEST(Shapes, StridedOverlapIsDependence) {
  // Stride 2 writing i and i+2: iteration i writes what iteration i+2
  // also writes — output dependence (and v is live after).
  auto cp = compileOk(R"(
proc main() {
  real v[300];
  for i = 0 to 290 step 2 {
    v[i] = noise(i);
    v[i + 2] = noise(i) * 0.5;
  }
  sink(v[8]);
}
)");
  // Writes of distinct iterations overlap; the write region varies per
  // iteration, so last-value copy-out privatization is not applicable.
  // The output dependence has constant iteration distance 1 (index
  // distance 2 over step 2) — Doacross-coverable, but the sink is the
  // body's first statement and the source its last, so the pipeline
  // would degenerate to sequential order: the profitability guard keeps
  // the loop Sequential.
  EXPECT_EQ(outcomeAt(cp, 4), LoopOutcome::SequentialBoth);
}

TEST(Shapes, OuterIndexInInnerSubscript) {
  // Row-wise scratch: inner writes help[j] for the row, outer loops
  // carry i only through values, not storage.
  auto cp = compileOk(R"(
proc main() {
  real g[40, 16];
  real help[16];
  for i = 0 to 39 {
    for j = 0 to 15 { help[j] = noise(i * 16 + j); }
    for j = 0 to 15 { g[i, j] = help[j] * 2.0; }
  }
  sink(g[3, 3]);
}
)");
  EXPECT_EQ(outcomeAt(cp, 5), LoopOutcome::BaseParallel);
}

TEST(Shapes, TwoArraysSwapStaysSequential) {
  // Ping-pong through a scalar-free cycle: a reads b, b reads a shifted —
  // the b write feeding next iteration's a read is a flow dependence.
  // Both carried flows have constant distance 1, so no system DOALLs it;
  // Doacross could cover them, but the head-to-tail distance-1 sync
  // (first statement waits on the previous iteration's last) admits no
  // overlap, so the profitability guard keeps the loop Sequential.
  auto cp = compileOk(R"(
proc main() {
  real a[100];
  real b[100];
  for q = 0 to 99 { a[q] = noise(q); b[q] = noise(q + 1000); }
  for i = 1 to 99 {
    a[i] = b[i - 1] * 0.5;
    b[i] = a[i - 1] * 0.5;
  }
  sink(a[50] + b[50]);
}
)");
  EXPECT_EQ(outcomeAt(cp, 6), LoopOutcome::SequentialBoth);
}

TEST(Shapes, ReadOnlySharedArrayIsFine) {
  auto cp = compileOk(R"(
proc main() {
  real table[64];
  real out[200];
  for q = 0 to 63 { table[q] = noise(q); }
  for i = 0 to 199 {
    out[i] = table[i % 64] * 2.0;
  }
  sink(out[9]);
}
)");
  // Non-affine read subscript (modulo) of a read-only array must not
  // block parallelization: only writes matter for the candidate array.
  EXPECT_EQ(outcomeAt(cp, 6), LoopOutcome::BaseParallel);
}

TEST(Shapes, WriteThroughModuloIsConservative) {
  auto cp = compileOk(R"(
proc main() {
  real out[64];
  for i = 0 to 199 {
    out[i % 64] = noise(i);
  }
  sink(out[9]);
}
)");
  EXPECT_EQ(outcomeAt(cp, 4), LoopOutcome::SequentialBoth);
}

}  // namespace
}  // namespace padfa
