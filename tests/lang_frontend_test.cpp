// Frontend tests: lexer, parser, and semantic analysis of MF programs.
#include <gtest/gtest.h>

#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace padfa {
namespace {

std::unique_ptr<Program> parseOk(std::string_view src) {
  DiagEngine diags;
  auto p = parseProgram(src, diags);
  EXPECT_TRUE(p != nullptr) << diags.dump();
  return p;
}

std::unique_ptr<Program> analyzeOk(std::string_view src) {
  DiagEngine diags;
  auto p = parseProgram(src, diags);
  EXPECT_TRUE(p != nullptr) << diags.dump();
  if (!p) return nullptr;
  EXPECT_TRUE(analyze(*p, diags)) << diags.dump();
  return p;
}

std::string analyzeErr(std::string_view src) {
  DiagEngine diags;
  auto p = parseProgram(src, diags);
  if (!p) return diags.dump();
  EXPECT_FALSE(analyze(*p, diags)) << "expected a semantic error";
  return diags.dump();
}

TEST(Lexer, TokenKindsAndValues) {
  DiagEngine diags;
  Lexer lex("proc f(int n) { x = 1 + 2.5e1; } // comment", diags);
  auto toks = lex.run();
  ASSERT_FALSE(diags.hasErrors());
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, Tok::KwProc);
  EXPECT_EQ(toks[1].kind, Tok::Ident);
  EXPECT_EQ(toks[1].text, "f");
  EXPECT_EQ(toks[toks.size() - 1].kind, Tok::Eof);
  // Find the real literal.
  bool found_real = false;
  for (const auto& t : toks)
    if (t.kind == Tok::RealLit) {
      EXPECT_DOUBLE_EQ(t.real_value, 25.0);
      found_real = true;
    }
  EXPECT_TRUE(found_real);
}

TEST(Lexer, ComparisonOperators) {
  DiagEngine diags;
  Lexer lex("< <= > >= == != && || !", diags);
  auto toks = lex.run();
  ASSERT_EQ(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, Tok::Lt);
  EXPECT_EQ(toks[1].kind, Tok::Le);
  EXPECT_EQ(toks[2].kind, Tok::Gt);
  EXPECT_EQ(toks[3].kind, Tok::Ge);
  EXPECT_EQ(toks[4].kind, Tok::EqEq);
  EXPECT_EQ(toks[5].kind, Tok::NotEq);
  EXPECT_EQ(toks[6].kind, Tok::AmpAmp);
  EXPECT_EQ(toks[7].kind, Tok::PipePipe);
  EXPECT_EQ(toks[8].kind, Tok::Bang);
}

TEST(Lexer, HashCommentsSkipped) {
  DiagEngine diags;
  Lexer lex("# header\nproc\n", diags);
  auto toks = lex.run();
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, Tok::KwProc);
  EXPECT_EQ(toks[0].loc.line, 2u);
}

TEST(Lexer, RejectsStrayCharacter) {
  DiagEngine diags;
  Lexer lex("proc $", diags);
  lex.run();
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Parser, EmptyProc) {
  auto p = parseOk("proc main() { }");
  ASSERT_EQ(p->procs.size(), 1u);
  EXPECT_EQ(p->interner.str(p->procs[0]->name), "main");
}

TEST(Parser, ForLoopStructure) {
  auto p = parseOk(R"(
    proc main() {
      real a[10];
      for i = 1 to 9 { a[i] = 0.0; }
    }
  )");
  auto& body = *p->procs[0]->body;
  ASSERT_EQ(body.stmts.size(), 1u);
  ASSERT_EQ(body.stmts[0]->kind, StmtKind::For);
  auto& loop = static_cast<ForStmt&>(*body.stmts[0]);
  EXPECT_EQ(p->interner.str(loop.index_name), "i");
  EXPECT_EQ(loop.step, nullptr);
  ASSERT_EQ(loop.body->stmts.size(), 1u);
}

TEST(Parser, ElseIfChains) {
  auto p = parseOk(R"(
    proc main() {
      int x; int y;
      x = 1;
      if (x > 0) { y = 1; } else if (x < 0) { y = 2; } else { y = 3; }
    }
  )");
  auto& s = *p->procs[0]->body->stmts[1];
  ASSERT_EQ(s.kind, StmtKind::If);
  const auto& ifs = static_cast<const IfStmt&>(s);
  ASSERT_NE(ifs.else_block, nullptr);
  ASSERT_EQ(ifs.else_block->stmts.size(), 1u);
  EXPECT_EQ(ifs.else_block->stmts[0]->kind, StmtKind::If);
}

TEST(Parser, PrecedenceMulOverAdd) {
  auto p = analyzeOk("proc main() { int x; x = 1 + 2 * 3; }");
  auto& assign = static_cast<AssignStmt&>(*p->procs[0]->body->stmts[0]);
  auto& top = static_cast<BinaryExpr&>(*assign.value);
  EXPECT_EQ(top.op, BinOp::Add);
  EXPECT_EQ(static_cast<BinaryExpr&>(*top.rhs).op, BinOp::Mul);
}

TEST(Parser, RejectsUnknownFunctionInExpr) {
  DiagEngine diags;
  auto p = parseProgram("proc main() { int x; x = foo(1); }", diags);
  EXPECT_EQ(p, nullptr);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Parser, MultiDimArrayAccess) {
  auto p = analyzeOk(R"(
    proc main() {
      real a[4, 5];
      for i = 0 to 3 { for j = 0 to 4 { a[i, j] = noise(i * 5 + j); } }
    }
  )");
  ASSERT_NE(p, nullptr);
}

TEST(Sema, ResolvesVarRefs) {
  auto p = analyzeOk("proc main() { int x; x = 3; int y; y = x + 1; }");
  auto& assign = static_cast<AssignStmt&>(*p->procs[0]->body->stmts[1]);
  auto& ref = static_cast<BinaryExpr&>(*assign.value);
  auto& var = static_cast<VarRefExpr&>(*ref.lhs);
  ASSERT_NE(var.decl, nullptr);
  EXPECT_EQ(p->interner.str(var.decl->name), "x");
}

TEST(Sema, LoopIndexIsImplicitlyDeclared) {
  auto p = analyzeOk(R"(
    proc main() {
      real a[10];
      for i = 0 to 9 { a[i] = 1.0; }
    }
  )");
  auto& loop = static_cast<ForStmt&>(*p->procs[0]->body->stmts[0]);
  ASSERT_NE(loop.index_decl, nullptr);
  EXPECT_TRUE(loop.index_decl->is_loop_index);
  EXPECT_FALSE(loop.loop_id.empty());
}

TEST(Sema, RejectsAssignToLoopIndex) {
  std::string err = analyzeErr(R"(
    proc main() {
      int s;
      s = 0;
      for i = 0 to 9 { i = 3; }
    }
  )");
  EXPECT_NE(err.find("loop index"), std::string::npos) << err;
}

TEST(Sema, RejectsUndeclaredVariable) {
  std::string err = analyzeErr("proc main() { x = 1; }");
  EXPECT_NE(err.find("undeclared"), std::string::npos) << err;
}

TEST(Sema, RejectsSameScopeRedeclaration) {
  std::string err = analyzeErr(R"(
    proc main() {
      int x;
      int x;
      x = 1;
      sink(x);
    }
  )");
  EXPECT_NE(err.find("redeclaration"), std::string::npos) << err;
}

TEST(Sema, AllowsNestedScopeShadowing) {
  // Shadowing an enclosing binding is legal (innermost wins); MF-lint's
  // padfa-shadow checker warns about it instead.
  auto p = analyzeOk(R"(
    proc main() {
      int x;
      x = 1;
      if (x > 0) { int x; x = 2; sink(x); }
      sink(x);
    }
  )");
  ASSERT_NE(p, nullptr);
}

TEST(Sema, RejectsIntFromRealAssignment) {
  std::string err = analyzeErr("proc main() { int x; x = 1.5; }");
  EXPECT_NE(err.find("real"), std::string::npos) << err;
}

TEST(Sema, AllowsRealFromIntAssignment) {
  analyzeOk("proc main() { real x; x = 1; }");
}

TEST(Sema, RejectsRankMismatch) {
  std::string err = analyzeErr(R"(
    proc main() { real a[4, 4]; a[1] = 0.0; }
  )");
  EXPECT_NE(err.find("rank"), std::string::npos) << err;
}

TEST(Sema, CallResolvedWithArrayArg) {
  auto p = analyzeOk(R"(
    proc init(real v[n], int n) {
      for i = 0 to n - 1 { v[i] = 0.0; }
    }
    proc main() {
      real data[100];
      init(data, 100);
    }
  )");
  auto& call = static_cast<CallStmt&>(*p->procs[1]->body->stmts[0]);
  ASSERT_NE(call.callee_proc, nullptr);
  EXPECT_EQ(p->interner.str(call.callee_proc->name), "init");
}

TEST(Sema, RejectsRecursion) {
  std::string err = analyzeErr(R"(
    proc a() { b(); }
    proc b() { a(); }
    proc main() { a(); }
  )");
  EXPECT_NE(err.find("recursi"), std::string::npos) << err;
}

TEST(Sema, SinkIsBuiltin) {
  auto p = analyzeOk("proc main() { real x; x = 2.0; sink(x); }");
  auto& call = static_cast<CallStmt&>(*p->procs[0]->body->stmts[1]);
  EXPECT_TRUE(call.is_sink);
}

TEST(Sema, RejectsWholeArrayInExpression) {
  std::string err = analyzeErr(R"(
    proc main() { real a[5]; real x; x = a; }
  )");
  EXPECT_NE(err.find("whole array"), std::string::npos) << err;
}

TEST(Sema, BottomUpOrderPutsCalleesFirst) {
  auto p = analyzeOk(R"(
    proc leaf(int n) { int x; x = n; }
    proc mid(int n) { leaf(n); }
    proc main() { mid(3); }
  )");
  auto order = bottomUpProcOrder(*p);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(p->interner.str(order[0]->name), "leaf");
  EXPECT_EQ(p->interner.str(order[2]->name), "main");
}

TEST(Sema, ExprToStringRoundTrips) {
  auto p = analyzeOk("proc main() { int x; x = (1 + 2) * 3; }");
  auto& assign = static_cast<AssignStmt&>(*p->procs[0]->body->stmts[0]);
  EXPECT_EQ(exprToString(*assign.value, p->interner), "((1 + 2) * 3)");
}

}  // namespace
}  // namespace padfa
