// Property-based soundness harness: generate random MF programs (loop
// nests with guarded/offset array accesses, scalar accumulations, helper
// calls), then check for every seed that
//   1. frontend + both analyses accept the program without crashing,
//   2. parallel execution under the predicated plans produces the same
//      checksums as sequential execution (the end-to-end soundness
//      oracle: a wrong parallelization decision corrupts data),
//   3. same for the baseline plans,
//   4. compile-time-parallel candidate loops are never refuted by the
//      ELPD run-time test (no cross-iteration flow may be observed in a
//      loop the analysis proved independent/privatizable).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "corpus/corpus.h"
#include "driver/padfa.h"

namespace padfa {
namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 2654435761u + 1) {}
  uint64_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  int range(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(next() % static_cast<uint64_t>(hi - lo + 1));
  }
  bool chance(int percent) { return range(1, 100) <= percent; }

 private:
  uint64_t state_;
};

constexpr int kArraySize = 40;

struct Generator {
  Rng rng;
  int num_arrays;
  int num_scalars;
  std::string src;

  explicit Generator(uint64_t seed) : rng(seed) {
    num_arrays = rng.range(2, 4);
    num_scalars = rng.range(1, 3);
  }

  std::string arr(int k) { return "a" + std::to_string(k); }
  std::string scl(int k) { return "s" + std::to_string(k); }

  // Subscript expression for index variable `iv`, guaranteed in-bounds
  // for loops over [2, kArraySize - 3].
  std::string subscript(const std::string& iv) {
    switch (rng.range(0, 4)) {
      case 0: return iv;
      case 1: return iv + " + 1";
      case 2: return iv + " - 1";
      case 3: return iv + " + 2";
      default: return std::to_string(rng.range(0, kArraySize - 1));
    }
  }

  std::string rhs(const std::string& iv, int depth) {
    switch (rng.range(0, 3)) {
      case 0:
        return "noise(" + iv + " * " + std::to_string(rng.range(2, 9)) +
               " + " + std::to_string(rng.range(0, 99)) + ")";
      case 1:
        return arr(rng.range(0, num_arrays - 1)) + "[" + subscript(iv) +
               "] * 0.5 + 0.25";
      case 2:
        return "sc" + std::to_string(rng.range(0, num_scalars - 1)) +
               " * 0.125 + noise(" + iv + ")";
      default:
        return "noise(" + std::to_string(depth * 100 + rng.range(0, 50)) +
               ")";
    }
  }

  std::string condition(const std::string& iv) {
    switch (rng.range(0, 3)) {
      case 0:
        return "flag" + std::to_string(rng.range(0, 1)) + " > 0";
      case 1:
        return iv + " < " + std::to_string(rng.range(5, kArraySize - 5));
      case 2:
        return "flag0 == " + std::to_string(rng.range(0, 1));
      default:
        return iv + " % 2 == 0";
    }
  }

  void emitLoopBody(const std::string& iv, int depth, int& stmts) {
    int n = rng.range(1, 3);
    for (int s = 0; s < n; ++s) {
      std::string target = arr(rng.range(0, num_arrays - 1));
      std::string assign = target + "[" + subscript(iv) + "] = " +
                           rhs(iv, depth) + ";\n";
      if (rng.chance(35)) {
        src += "      if (" + condition(iv) + ") { " + assign + " }\n";
      } else {
        src += "      " + assign;
      }
      ++stmts;
    }
    if (rng.chance(30)) {
      // Scalar accumulation (sum reduction shape).
      int k = rng.range(0, num_scalars - 1);
      src += "      acc" + std::to_string(k) + " = acc" + std::to_string(k) +
             " + " + arr(rng.range(0, num_arrays - 1)) + "[" + subscript(iv) +
             "];\n";
    }
  }

  std::string generate() {
    src = "proc gfill(real v[m], int m, int seed) {\n"
          "  for q = 0 to m - 1 { v[q] = noise(seed * 131 + q); }\n"
          "}\n"
          "proc main() {\n";
    for (int k = 0; k < num_arrays; ++k)
      src += "  real " + arr(k) + "[" + std::to_string(kArraySize) + "];\n";
    src += "  int flag0; flag0 = inoise(1, 2);\n";
    src += "  int flag1; flag1 = inoise(2, 3) - 1;\n";
    for (int k = 0; k < num_scalars; ++k) {
      src += "  real sc" + std::to_string(k) + "; sc" + std::to_string(k) +
             " = noise(" + std::to_string(k + 10) + ");\n";
      src += "  real acc" + std::to_string(k) + "; acc" + std::to_string(k) +
             " = 0.0;\n";
    }
    // Optionally initialize some arrays through the helper procedure.
    for (int k = 0; k < num_arrays; ++k) {
      if (rng.chance(50)) {
        src += "  gfill(" + arr(k) + ", " + std::to_string(kArraySize) +
               ", " + std::to_string(k) + ");\n";
      }
    }
    int nests = rng.range(2, 4);
    int stmts = 0;
    for (int nest = 0; nest < nests; ++nest) {
      std::string iv = "i" + std::to_string(nest);
      src += "  for " + iv + " = 2 to " + std::to_string(kArraySize - 3);
      if (rng.chance(20)) src += " step 2";
      src += " {\n";
      if (rng.chance(40)) {
        // Nested inner loop over a second index.
        std::string jv = "j" + std::to_string(nest);
        src += "    for " + jv + " = 2 to " +
               std::to_string(kArraySize - 3) + " {\n";
        emitLoopBody(jv, 1, stmts);
        src += "    }\n";
      }
      emitLoopBody(iv, 0, stmts);
      src += "  }\n";
    }
    // Checksum everything.
    src += "  real chk; chk = 0.0;\n";
    for (int k = 0; k < num_arrays; ++k)
      src += "  for z" + std::to_string(k) + " = 0 to " +
             std::to_string(kArraySize - 1) + " { chk = chk + " + arr(k) +
             "[z" + std::to_string(k) + "]; }\n";
    for (int k = 0; k < num_scalars; ++k)
      src += "  chk = chk + acc" + std::to_string(k) + ";\n";
    src += "  sink(chk);\n}\n";
    return src;
  }
};

class RandomProgram : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgram, AnalysisIsSoundUnderExecution) {
  Generator gen(static_cast<uint64_t>(GetParam()) + 1);
  std::string source = gen.generate();
  SCOPED_TRACE(source);

  DiagEngine diags;
  auto cp = compileSource(source, diags);
  ASSERT_TRUE(cp.has_value()) << diags.dump();

  InterpStats seq = execute(*cp->program, {});

  InterpOptions popt;
  popt.plans = &cp->pred;
  popt.num_threads = 3;
  InterpStats par = execute(*cp->program, popt);
  double tol = 1e-9 * (std::abs(seq.checksum) + 1.0);
  EXPECT_NEAR(par.checksum, seq.checksum, tol)
      << "predicated parallel execution diverged";

  InterpOptions bopt;
  bopt.plans = &cp->base;
  bopt.num_threads = 3;
  InterpStats bpar = execute(*cp->program, bopt);
  EXPECT_NEAR(bpar.checksum, seq.checksum, tol)
      << "baseline parallel execution diverged";
}

TEST_P(RandomProgram, CompileTimeParallelNeverRefutedByElpd) {
  Generator gen(static_cast<uint64_t>(GetParam()) + 1);
  std::string source = gen.generate();
  SCOPED_TRACE(source);

  DiagEngine diags;
  auto cp = compileSource(source, diags);
  ASSERT_TRUE(cp.has_value()) << diags.dump();

  // Instrument every loop the predicated analysis proves parallel at
  // compile time; ELPD must not observe cross-iteration flow in any.
  ElpdCollector collector;
  for (const LoopNode* node : cp->loops.allLoops()) {
    const LoopPlan* pp = cp->pred.planFor(node->loop);
    if (pp && pp->status == LoopStatus::Parallel)
      collector.instrument(node->loop);
  }
  InterpOptions opt;
  opt.elpd = &collector;
  execute(*cp->program, opt);
  for (const LoopNode* node : cp->loops.allLoops()) {
    if (!collector.isInstrumented(node->loop)) continue;
    auto v = collector.verdict(node->loop);
    if (!v.executed) continue;
    const LoopPlan* pp = cp->pred.planFor(node->loop);
    bool privatizes = !pp->privatized.empty();
    if (privatizes) {
      EXPECT_FALSE(v.flow)
          << node->loop->loop_id
          << ": analysis privatized a loop with observed value flow";
    } else {
      EXPECT_TRUE(v.independent())
          << node->loop->loop_id
          << ": analysis claimed independence but ELPD saw a conflict";
    }
  }
}

TEST_P(RandomProgram, BudgetStarvedAnalysisDegradesSoundly) {
  Generator gen(static_cast<uint64_t>(GetParam()) + 1);
  std::string source = gen.generate();
  SCOPED_TRACE(source);

  DiagEngine diags;
  auto program = parseProgram(source, diags);
  ASSERT_TRUE(program) << diags.dump();
  ASSERT_TRUE(analyze(*program, diags)) << diags.dump();

  AnalysisResult ref =
      analyzeProgram(*program, AnalysisConfig::predicated());

  // Starve the per-loop Fourier–Motzkin slice: most generated loops blow
  // it, and the contract is no crash + an identical-prefix/sequential-
  // suffix plan set (degradation only ever removes parallelism).
  AnalysisConfig starved = AnalysisConfig::predicated();
  starved.budget.max_loop_fm_steps = 40;
  AnalysisResult res = analyzeProgram(*program, starved);

  EXPECT_EQ(res.plans.size(), ref.plans.size());
  for (const auto& [loop, plan] : res.plans) {
    const LoopPlan* rp = ref.planFor(loop);
    ASSERT_NE(rp, nullptr);
    if (plan.degraded) {
      EXPECT_EQ(plan.status, LoopStatus::Sequential)
          << "degraded plan must stay sequential";
    } else {
      EXPECT_EQ(plan.status, rp->status)
          << "non-degraded plan diverged from the unstarved run";
    }
  }

  // Execution under the starved plans still matches the reference.
  InterpStats seq = execute(*program, {});
  InterpOptions popt;
  popt.plans = &res;
  popt.num_threads = 3;
  InterpStats par = execute(*program, popt);
  double tol = 1e-9 * (std::abs(seq.checksum) + 1.0);
  EXPECT_NEAR(par.checksum, seq.checksum, tol)
      << "parallel execution under budget-starved plans diverged";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram, ::testing::Range(0, 80));

}  // namespace
}  // namespace padfa
