// Interpreter tests: sequential semantics, parallel execution equivalence
// (privatization, reductions, copy-out, two-version loops), ELPD
// instrumentation verdicts, and runtime fault detection.
#include <gtest/gtest.h>

#include "dataflow/analysis.h"
#include "interp/interp.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace padfa {
namespace {

struct Built {
  std::unique_ptr<Program> program;
  AnalysisResult pred;
};

Built buildProgram(std::string_view src) {
  Built out;
  DiagEngine diags;
  out.program = parseProgram(src, diags);
  EXPECT_NE(out.program, nullptr) << diags.dump();
  if (!out.program) return out;
  EXPECT_TRUE(analyze(*out.program, diags)) << diags.dump();
  out.pred = analyzeProgram(*out.program, AnalysisConfig::predicated());
  return out;
}

double seqChecksum(const Built& b) {
  InterpStats s = execute(*b.program, {});
  return s.checksum;
}

InterpStats parRun(const Built& b, unsigned threads) {
  InterpOptions opt;
  opt.plans = &b.pred;
  opt.num_threads = threads;
  return execute(*b.program, opt);
}

TEST(Interp, ArithmeticAndAssignment) {
  auto b = buildProgram(R"(
proc main() {
  int x; real y;
  x = 3 + 4 * 2;
  y = 1.5;
  y = y * 2.0 + x;
  sink(y);
}
)");
  EXPECT_DOUBLE_EQ(seqChecksum(b), 1.5 * 2.0 + 11);
}

TEST(Interp, IntegerDivisionTruncates) {
  auto b = buildProgram(R"(
proc main() {
  int x; x = 7 / 2; sink(x);
  int y; y = 7 % 2; sink(y);
}
)");
  EXPECT_DOUBLE_EQ(seqChecksum(b), 3 + 1);
}

TEST(Interp, LoopsAndArrays) {
  auto b = buildProgram(R"(
proc main() {
  real a[10];
  for i = 0 to 9 { a[i] = i * 2; }
  real s; s = 0.0;
  for i = 0 to 9 { s = s + a[i]; }
  sink(s);
}
)");
  EXPECT_DOUBLE_EQ(seqChecksum(b), 90.0);
}

TEST(Interp, StepLoops) {
  auto b = buildProgram(R"(
proc main() {
  int s; s = 0;
  for i = 0 to 10 step 3 { s = s + i; }
  sink(s);
}
)");
  EXPECT_DOUBLE_EQ(seqChecksum(b), 0 + 3 + 6 + 9);
}

TEST(Interp, IfElseChains) {
  auto b = buildProgram(R"(
proc main() {
  int s; s = 0;
  for i = 0 to 9 {
    if (i < 3) { s = s + 1; }
    else if (i < 7) { s = s + 10; }
    else { s = s + 100; }
  }
  sink(s);
}
)");
  EXPECT_DOUBLE_EQ(seqChecksum(b), 3 * 1 + 4 * 10 + 3 * 100);
}

TEST(Interp, ProcedureCallsByValueAndReference) {
  auto b = buildProgram(R"(
proc scale(real v[n], int n, real k) {
  for i = 0 to n - 1 { v[i] = v[i] * k; }
}
proc bump(int x) { x = x + 100; }
proc main() {
  real a[4];
  for i = 0 to 3 { a[i] = i + 1; }
  scale(a, 4, 2.0);
  int z; z = 5;
  bump(z);
  sink(a[3] + z);  // arrays by reference (8), scalars by value (5)
}
)");
  EXPECT_DOUBLE_EQ(seqChecksum(b), 8.0 + 5.0);
}

TEST(Interp, ReshapeViewSharesBuffer) {
  auto b = buildProgram(R"(
proc fill1d(real v[n], int n) {
  for i = 0 to n - 1 { v[i] = i; }
}
proc main() {
  real g[4, 5];
  fill1d(g, 20);
  sink(g[2, 3]);  // row-major flat index 2*5+3 = 13
}
)");
  EXPECT_DOUBLE_EQ(seqChecksum(b), 13.0);
}

TEST(Interp, NoiseIsDeterministic) {
  EXPECT_DOUBLE_EQ(noiseValue(42), noiseValue(42));
  EXPECT_NE(noiseValue(1), noiseValue(2));
  EXPECT_GE(noiseValue(7), 0.0);
  EXPECT_LT(noiseValue(7), 1.0);
  EXPECT_GE(inoiseValue(5, 10), 0);
  EXPECT_LT(inoiseValue(5, 10), 10);
}

TEST(Interp, OutOfBoundsThrows) {
  auto b = buildProgram(R"(
proc main() {
  real a[4];
  int i; i = 9;
  a[i] = 1.0;
}
)");
  EXPECT_THROW(execute(*b.program, {}), RuntimeError);
}

TEST(Interp, DivisionByZeroThrows) {
  auto b = buildProgram(R"(
proc main() { int x; int y; y = 0; x = 3 / y; sink(x); }
)");
  EXPECT_THROW(execute(*b.program, {}), RuntimeError);
}

TEST(Interp, MissingMainThrows) {
  auto b = buildProgram("proc helper() { }");
  EXPECT_THROW(execute(*b.program, {}), RuntimeError);
}

TEST(Interp, RuntimeErrorCarriesProcedureCallStack) {
  // A fault three procedures deep must name every frame on the way up so
  // the message reads like a backtrace, not a bare site.
  auto b = buildProgram(R"(
proc inner(real v[n], int n, int i) { v[i] = 1.0; }
proc outer(real v[n], int n) { inner(v, n, 99); }
proc main() {
  real a[4];
  outer(a, 4);
}
)");
  try {
    execute(*b.program, {});
    FAIL() << "expected RuntimeError";
  } catch (const RuntimeError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("in call to 'inner'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("in call to 'outer'"), std::string::npos) << msg;
    // Innermost frame is listed first (closest to the fault).
    EXPECT_LT(msg.find("'inner'"), msg.find("'outer'")) << msg;
  }
}

// ---- parallel execution equivalence ----

TEST(Interp, ParallelSimpleLoopMatchesSequential) {
  auto b = buildProgram(R"(
proc main() {
  real a[1000];
  for i = 0 to 999 { a[i] = noise(i) * 2.0; }
  for i = 0 to 999 { sink(a[i]); }
}
)");
  double seq = seqChecksum(b);
  InterpStats par = parRun(b, 4);
  EXPECT_DOUBLE_EQ(par.checksum, seq);
  EXPECT_GE(par.parallel_loops_entered, 1u);
}

TEST(Interp, ParallelPrivatizationMatchesSequential) {
  auto b = buildProgram(R"(
proc main() {
  real out[200];
  real help[32];
  for i = 0 to 199 {
    for j = 0 to 31 { help[j] = noise(i * 32 + j); }
    real s; s = 0.0;
    for j = 0 to 31 { s = s + help[j] * help[j]; }
    out[i] = s;
  }
  for i = 0 to 199 { sink(out[i]); }
}
)");
  double seq = seqChecksum(b);
  InterpStats par = parRun(b, 4);
  EXPECT_DOUBLE_EQ(par.checksum, seq);
  EXPECT_GE(par.parallel_loops_entered, 1u);
}

TEST(Interp, ParallelReductionMatchesSequentialApprox) {
  auto b = buildProgram(R"(
proc main() {
  real x[10000];
  for i = 0 to 9999 { x[i] = noise(i); }
  real total; total = 0.0;
  for i = 0 to 9999 { total = total + x[i]; }
  sink(total);
}
)");
  double seq = seqChecksum(b);
  InterpStats par = parRun(b, 4);
  // Reduction reassociation: tolerate tiny FP differences.
  EXPECT_NEAR(par.checksum, seq, 1e-9 * std::abs(seq) + 1e-12);
}

TEST(Interp, ParallelCopyOutLastValue) {
  auto b = buildProgram(R"(
proc main() {
  real x[4];
  for i = 0 to 99 { x[0] = i * 1.0; }
  sink(x[0]);
}
)");
  double seq = seqChecksum(b);
  ASSERT_DOUBLE_EQ(seq, 99.0);
  InterpStats par = parRun(b, 4);
  EXPECT_DOUBLE_EQ(par.checksum, seq);
}

TEST(Interp, TwoVersionLoopTakesParallelWhenTestPasses) {
  // Distance-d dependence: with d = 200 > span, the run-time test passes
  // and the loop runs in parallel; result must match sequential.
  auto b = buildProgram(R"(
proc kernel(real x[300], int d) {
  for i = 100 to 199 { x[i] = x[i - d] + 1.0; }
}
proc main() {
  real x[300];
  for j = 0 to 299 { x[j] = noise(j); }
  kernel(x, 100);
  for j = 0 to 299 { sink(x[j]); }
}
)");
  double seq = seqChecksum(b);
  InterpStats par = parRun(b, 4);
  EXPECT_DOUBLE_EQ(par.checksum, seq);
  EXPECT_GE(par.runtime_tests_evaluated, 1u);
}

TEST(Interp, TwoVersionLoopFallsBackWhenTestFails) {
  // d = 5 creates a real dependence: the test must fail and the loop run
  // sequentially, still producing the right answer.
  auto b = buildProgram(R"(
proc kernel(real x[300], int d) {
  for i = 100 to 199 { x[i] = x[i - d] + 1.0; }
}
proc main() {
  real x[300];
  for j = 0 to 299 { x[j] = noise(j); }
  kernel(x, 5);
  for j = 0 to 299 { sink(x[j]); }
}
)");
  double seq = seqChecksum(b);
  InterpStats par = parRun(b, 4);
  EXPECT_DOUBLE_EQ(par.checksum, seq);
  EXPECT_GE(par.runtime_tests_evaluated, 1u);
  EXPECT_EQ(par.runtime_tests_passed, par.runtime_tests_evaluated - 1);
}

TEST(Interp, ProfileRecordsLoopTime) {
  auto b = buildProgram(R"(
proc main() {
  real a[2000];
  for i = 0 to 1999 { a[i] = noise(i); }
  sink(a[7]);
}
)");
  InterpOptions opt;
  opt.profile = true;
  InterpStats s = execute(*b.program, opt);
  ASSERT_EQ(s.profiles.size(), 1u);
  const LoopProfile& p = s.profiles.begin()->second;
  EXPECT_EQ(p.invocations, 1u);
  EXPECT_EQ(p.iterations, 2000u);
  EXPECT_GT(p.seconds, 0.0);
}

// ---- ELPD instrumentation ----

struct ElpdRun {
  Built b;
  ElpdCollector collector;
  const ForStmt* loop = nullptr;
};

ElpdRun elpdOn(std::string_view src, uint32_t loop_line) {
  ElpdRun r;
  r.b = buildProgram(src);
  for (const auto& [loop, plan] : r.b.pred.plans)
    if (loop->loc.line == loop_line) r.loop = loop;
  EXPECT_NE(r.loop, nullptr);
  r.collector.instrument(r.loop);
  InterpOptions opt;
  opt.elpd = &r.collector;
  execute(*r.b.program, opt);
  return r;
}

TEST(Elpd, IndependentLoop) {
  auto r = elpdOn(R"(
proc main() {
  real a[100];
  for i = 0 to 99 { a[i] = noise(i); }
  sink(a[1]);
}
)", 4);
  auto v = r.collector.verdict(r.loop);
  EXPECT_TRUE(v.executed);
  EXPECT_TRUE(v.independent());
  EXPECT_GT(v.accesses, 0u);
}

TEST(Elpd, FlowDependentLoop) {
  auto r = elpdOn(R"(
proc main() {
  real a[100];
  a[0] = 1.0;
  for i = 1 to 99 { a[i] = a[i-1] + 1.0; }
  sink(a[99]);
}
)", 5);
  auto v = r.collector.verdict(r.loop);
  EXPECT_TRUE(v.conflict);
  EXPECT_TRUE(v.flow);
  EXPECT_FALSE(v.parallelizable());
}

TEST(Elpd, PrivatizableLoop) {
  // Each iteration writes then reads help[0]: conflicts across
  // iterations, but no cross-iteration flow.
  auto r = elpdOn(R"(
proc main() {
  real out[50];
  real help[4];
  for i = 0 to 49 {
    help[0] = noise(i);
    out[i] = help[0] * 2.0;
  }
  sink(out[3]);
}
)", 5);
  auto v = r.collector.verdict(r.loop);
  EXPECT_TRUE(v.conflict);
  EXPECT_FALSE(v.flow);
  EXPECT_TRUE(v.privatizable());
}

TEST(Elpd, InputDependentVerdict) {
  // Dependence distance d: parallel per-input iff d outside [1, 99].
  const char* tmpl = R"(
proc kernel(real x[300], int d) {
  for i = 100 to 199 { x[i] = x[i - d] + 1.0; }
}
proc main() {
  real x[300];
  for j = 0 to 299 { x[j] = noise(j); }
  kernel(x, %d);
  sink(x[150]);
}
)";
  char buf[512];
  snprintf(buf, sizeof(buf), tmpl, -100);  // reads x[200..299]: disjoint
  auto r1 = elpdOn(buf, 3);
  EXPECT_TRUE(r1.collector.verdict(r1.loop).parallelizable());
  snprintf(buf, sizeof(buf), tmpl, 7);
  auto r2 = elpdOn(buf, 3);
  EXPECT_FALSE(r2.collector.verdict(r2.loop).parallelizable());
}

}  // namespace
}  // namespace padfa
