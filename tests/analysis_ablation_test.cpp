// Feature-knob (ablation) tests: verify which analysis ingredient is
// load-bearing for which paper scenario, including a case where predicate
// EMBEDDING specifically upgrades a run-time test to a compile-time proof.
#include <gtest/gtest.h>

#include "dataflow/analysis.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace padfa {
namespace {

struct Plans {
  std::unique_ptr<Program> program;
  AnalysisResult result;
};

Plans runWith(std::string_view src, const AnalysisConfig& cfg) {
  Plans out;
  DiagEngine diags;
  out.program = parseProgram(src, diags);
  EXPECT_NE(out.program, nullptr) << diags.dump();
  if (!out.program) return out;
  EXPECT_TRUE(analyze(*out.program, diags)) << diags.dump();
  out.result = analyzeProgram(*out.program, cfg);
  return out;
}

LoopStatus statusAtLine(const Plans& p, uint32_t line) {
  for (const auto& [loop, plan] : p.result.plans)
    if (loop->loc.line == line) return plan.status;
  ADD_FAILURE() << "no loop at line " << line;
  return LoopStatus::NotCandidate;
}

// Write guarded by t >= 5, shifted read guarded by t < 3. The guards are
// affinely contradictory but not structural complements, and the read is
// of a *different* element than the write (so the predicated-subtraction
// remainder cannot carry the constraint). Embedding the guard constraints
// into the section systems is the only way to prove emptiness at compile
// time; without it the analysis must fall back to a run-time test.
constexpr const char* kEmbeddingDecisive = R"(
proc main(int t) {
  int n; n = 100;
  real buf[128];
  real out[100];
  for q = 0 to 127 { buf[q] = noise(q); }
  for i = 1 to n - 1 {
    if (t >= 5) {
      buf[i] = noise(i);
    }
    if (t < 3) {
      out[i] = buf[i - 1];
    }
  }
  sink(out[7]);
}
)";

TEST(Ablation, EmbeddingUpgradesRuntimeTestToCompileTime) {
  AnalysisConfig no_embed = AnalysisConfig::predicated();
  no_embed.embedding = false;
  Plans without = runWith(kEmbeddingDecisive, no_embed);
  Plans with = runWith(kEmbeddingDecisive, AnalysisConfig::predicated());
  EXPECT_EQ(statusAtLine(without, 7), LoopStatus::RuntimeTest);
  EXPECT_EQ(statusAtLine(with, 7), LoopStatus::Parallel);
}

TEST(Ablation, PredicatesAloneHandleStructuralComplements) {
  // Same-guard coverage (Figure 1(a)) needs only predicated values and
  // PredSubtract — embedding/extraction off still parallelizes.
  const char* src = R"(
proc main(int x) {
  real out[100];
  real help[16];
  for i = 0 to 99 {
    if (x > 5) { for j = 0 to 15 { help[j] = noise(i + j); } }
    if (x > 5) {
      real s; s = 0.0;
      for j = 0 to 15 { s = s + help[j]; }
      out[i] = s;
    } else { out[i] = 0.0; }
  }
  sink(out[3]);
}
)";
  AnalysisConfig pred_only{true, false, false, false, true};
  Plans p = runWith(src, pred_only);
  EXPECT_EQ(statusAtLine(p, 5), LoopStatus::Parallel);
}

TEST(Ablation, ExtractionRequiredForDistanceTests) {
  const char* src = R"(
proc main(int d) {
  real x[300];
  for j = 0 to 299 { x[j] = noise(j); }
  for i = 100 to 199 { x[i] = x[i - d] + 1.0; }
  sink(x[150]);
}
)";
  AnalysisConfig no_extract = AnalysisConfig::predicated();
  no_extract.extraction = false;
  Plans without = runWith(src, no_extract);
  Plans with = runWith(src, AnalysisConfig::predicated());
  // Without extraction there is no predicate to test; the loop stays
  // sequential. With it, a run-time distance test is derived.
  EXPECT_EQ(statusAtLine(without, 5), LoopStatus::Sequential);
  EXPECT_EQ(statusAtLine(with, 5), LoopStatus::RuntimeTest);
}

TEST(Ablation, RuntimeTestsCanBeDisabled) {
  const char* src = R"(
proc main(int d) {
  real x[300];
  for j = 0 to 299 { x[j] = noise(j); }
  for i = 100 to 199 { x[i] = x[i - d] + 1.0; }
  sink(x[150]);
}
)";
  Plans ct_only = runWith(src, AnalysisConfig::compileTimeOnly());
  EXPECT_EQ(statusAtLine(ct_only, 5), LoopStatus::Sequential);
}

TEST(Ablation, BaselineMatchesAllFeaturesOff) {
  const char* src = R"(
proc main(int x) {
  real out[50];
  real help[8];
  for i = 0 to 49 {
    if (x > 5) { for j = 0 to 7 { help[j] = noise(i + j); } }
    if (x > 5) { out[i] = help[0]; } else { out[i] = 1.0; }
  }
  sink(out[3]);
}
)";
  Plans base = runWith(src, AnalysisConfig::baseline());
  EXPECT_EQ(statusAtLine(base, 5), LoopStatus::Sequential);
}

}  // namespace
}  // namespace padfa
