// Unit tests for pb::System: normalization, Fourier–Motzkin elimination,
// feasibility, projection.
#include <gtest/gtest.h>

#include "presburger/system.h"

namespace padfa::pb {
namespace {

// Convenience: x is var 0, y var 1, z var 2, n var 3.
LinExpr X() { return LinExpr::var(0); }
LinExpr Y() { return LinExpr::var(1); }
LinExpr Z() { return LinExpr::var(2); }
LinExpr N() { return LinExpr::var(3); }
LinExpr C(int64_t k) { return LinExpr(k); }

TEST(System, EmptySystemFeasible) {
  System s;
  EXPECT_TRUE(s.feasible());
}

TEST(System, SimpleBoundsFeasible) {
  System s;
  s.addGE0(X() - C(1));        // x >= 1
  s.addGE0(C(10) - X());       // x <= 10
  EXPECT_TRUE(s.feasible());
}

TEST(System, ContradictoryBoundsInfeasible) {
  System s;
  s.addGE0(X() - C(5));   // x >= 5
  s.addGE0(C(3) - X());   // x <= 3
  EXPECT_FALSE(s.feasible());
}

TEST(System, EqualityChainInfeasible) {
  System s;
  s.addEQ0(X() - Y());       // x == y
  s.addEQ0(Y() - Z());       // y == z
  s.addGE0(X() - Z() - C(1));  // x >= z + 1
  EXPECT_FALSE(s.feasible());
}

TEST(System, GcdEqualityInfeasible) {
  // 2x == 2y + 1 has no integer solution.
  System s;
  s.addEQ0(X() * 2 - Y() * 2 - C(1));
  EXPECT_FALSE(s.feasible());
}

TEST(System, GcdTighteningCatchesGap) {
  // 3x >= 1 and 3x <= 2 -> x >= 1 (ceil) and x <= 0 (floor): infeasible.
  System s;
  s.addGE0(X() * 3 - C(1));
  s.addGE0(C(2) - X() * 3);
  EXPECT_FALSE(s.feasible());
}

TEST(System, EliminateBySubstitution) {
  // x == y + 2, x <= 5, x >= 4 -> after eliminating x: 2 <= y <= 3.
  System s;
  s.addEQ0(X() - Y() - C(2));
  s.addGE0(C(5) - X());
  s.addGE0(X() - C(4));
  ASSERT_TRUE(s.eliminate(0));
  EXPECT_TRUE(s.feasible());
  // y == 2 should be inside, y == 4 outside (vars: index 1).
  std::vector<int64_t> vals(4, 0);
  vals[1] = 2;
  EXPECT_TRUE(s.contains(vals));
  vals[1] = 4;
  EXPECT_FALSE(s.contains(vals));
}

TEST(System, FourierMotzkinPairing) {
  // y <= x <= y + 1 and x >= 10, y <= 5: infeasible after eliminating x?
  // x >= 10 and x <= y+1 gives y >= 9; with y <= 5 infeasible.
  System s;
  s.addGE0(X() - Y());
  s.addGE0(Y() + C(1) - X());
  s.addGE0(X() - C(10));
  s.addGE0(C(5) - Y());
  EXPECT_FALSE(s.feasible());
}

TEST(System, ProjectOntoKeepsParams) {
  // 1 <= x <= n ; project out x, keep n: requires n >= 1.
  System s;
  s.addGE0(X() - C(1));
  s.addGE0(N() - X());
  ASSERT_TRUE(s.projectOnto([](VarId v) { return v == 3; }));
  std::vector<int64_t> vals(4, 0);
  vals[3] = 0;
  EXPECT_FALSE(s.contains(vals));
  vals[3] = 1;
  EXPECT_TRUE(s.contains(vals));
}

TEST(System, NormalizeDropsTrivial) {
  System s;
  s.addGE0(C(5));
  s.addEQ0(C(0));
  ASSERT_TRUE(s.normalize());
  EXPECT_TRUE(s.trivial());
}

TEST(System, NormalizeDetectsConstantContradiction) {
  System s;
  s.addGE0(C(-1));
  EXPECT_FALSE(s.normalize());
}

TEST(System, NormalizeMergesParallelGE) {
  System s;
  s.addGE0(X() - C(3));
  s.addGE0(X() - C(7));  // tighter
  ASSERT_TRUE(s.normalize());
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.constraints()[0].expr.constant(), -7);
}

TEST(System, ConflictingEqualities) {
  System s;
  s.addEQ0(X() - C(3));
  s.addEQ0(X() - C(4));
  EXPECT_FALSE(s.normalize());
}

TEST(System, NegatedGEIsIntegerNegation) {
  // !(x - 3 >= 0)  ==  (-x + 2 >= 0)  ==  x <= 2.
  Constraint c = Constraint::ge0(X() - C(3));
  Constraint n = c.negatedGE();
  std::vector<int64_t> vals(1, 2);
  EXPECT_EQ(n.expr.evaluate(vals), 0);  // x=2 boundary holds
  vals[0] = 3;
  EXPECT_LT(n.expr.evaluate(vals), 0);  // x=3 violates
}

TEST(System, SubstituteThenFeasible) {
  // x == 2y; x odd bound: x >= 3, x <= 3 -> y must satisfy 2y == 3: infeasible.
  System s;
  s.addGE0(X() - C(3));
  s.addGE0(C(3) - X());
  s.substitute(0, Y() * 2);
  EXPECT_FALSE(s.feasible());
}

TEST(System, UsedVars) {
  System s;
  s.addGE0(X() + Z());
  s.addEQ0(N() - C(2));
  auto vars = s.usedVars();
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(vars[0], 0u);
  EXPECT_EQ(vars[1], 2u);
  EXPECT_EQ(vars[2], 3u);
}

TEST(System, ContainsEvaluatesAllConstraints) {
  System s;
  s.addGE0(X() - C(1));
  s.addEQ0(Y() - X());
  std::vector<int64_t> v = {2, 2};
  EXPECT_TRUE(s.contains(v));
  v[1] = 3;
  EXPECT_FALSE(s.contains(v));
}

// Property-style sweep: for random-ish small boxes, feasibility matches
// brute-force integer enumeration.
class SystemBoxSweep : public ::testing::TestWithParam<int> {};

TEST_P(SystemBoxSweep, FeasibilityMatchesBruteForce) {
  int seed = GetParam();
  // Deterministic pseudo-random constraint soup over x,y in [-4,4].
  uint64_t state = 88172645463325252ull + static_cast<uint64_t>(seed);
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  System s;
  s.addGE0(X() + C(4));
  s.addGE0(C(4) - X());
  s.addGE0(Y() + C(4));
  s.addGE0(C(4) - Y());
  int nc = 2 + static_cast<int>(next() % 4);
  for (int i = 0; i < nc; ++i) {
    int64_t a = static_cast<int64_t>(next() % 7) - 3;
    int64_t b = static_cast<int64_t>(next() % 7) - 3;
    int64_t c = static_cast<int64_t>(next() % 11) - 5;
    LinExpr e = X() * a + Y() * b + C(c);
    if (next() % 4 == 0)
      s.addEQ0(e);
    else
      s.addGE0(e);
  }
  bool brute = false;
  for (int64_t x = -4; x <= 4 && !brute; ++x)
    for (int64_t y = -4; y <= 4 && !brute; ++y)
      if (s.contains({x, y})) brute = true;
  bool fm = s.feasible();
  // FM is a relaxation: it may say feasible when brute-force (integer)
  // says no, but must never say infeasible when integer points exist.
  if (brute) {
    EXPECT_TRUE(fm) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemBoxSweep, ::testing::Range(0, 60));

}  // namespace
}  // namespace padfa::pb
