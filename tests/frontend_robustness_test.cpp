// Frontend robustness: every malformed input must produce a diagnostic
// (never a crash, never a silent acceptance), and random garbage must be
// rejected cleanly.
#include <gtest/gtest.h>

#include "audit/lint.h"
#include "audit/plan_audit.h"
#include "corpus/corpus.h"
#include "driver/padfa.h"
#include "driver/plan_signature.h"
#include "lang/parser.h"
#include "lang/sema.h"
#include "store/snapshot.h"
#include "support/hash.h"

namespace padfa {
namespace {

// Returns true iff the source was cleanly REJECTED with >= 1 error.
bool rejected(std::string_view src) {
  DiagEngine diags;
  auto p = parseProgram(src, diags);
  if (!p) return diags.hasErrors();
  bool ok = analyze(*p, diags);
  return !ok && diags.hasErrors();
}

bool accepted(std::string_view src) {
  DiagEngine diags;
  auto p = parseProgram(src, diags);
  return p && analyze(*p, diags);
}

TEST(Robustness, MalformedTopLevel) {
  EXPECT_TRUE(rejected("int x;"));
  EXPECT_TRUE(rejected("proc"));
  EXPECT_TRUE(rejected("proc main"));
  EXPECT_TRUE(rejected("proc main("));
  EXPECT_TRUE(rejected("proc main() {"));
  EXPECT_TRUE(rejected("proc main() } {"));
  EXPECT_TRUE(rejected("proc 123() { }"));
}

TEST(Robustness, MalformedStatements) {
  EXPECT_TRUE(rejected("proc main() { x }"));
  EXPECT_TRUE(rejected("proc main() { int x; x = ; }"));
  EXPECT_TRUE(rejected("proc main() { int x; x = 1 }"));  // missing ';'
  EXPECT_TRUE(rejected("proc main() { if x > 1 { } }"));
  EXPECT_TRUE(rejected("proc main() { for = 0 to 3 { } }"));
  EXPECT_TRUE(rejected("proc main() { for i = 0 3 { } }"));
  EXPECT_TRUE(rejected("proc main() { return }"));
}

TEST(Robustness, MalformedExpressions) {
  EXPECT_TRUE(rejected("proc main() { int x; x = 1 + ; }"));
  EXPECT_TRUE(rejected("proc main() { int x; x = (1 + 2; }"));
  EXPECT_TRUE(rejected("proc main() { int x; x = 1 ++ 2; }"));
  EXPECT_TRUE(rejected("proc main() { real a[4]; a[1 = 0.0; }"));
  EXPECT_TRUE(rejected("proc main() { int x; x = min(1); }"));
  EXPECT_TRUE(rejected("proc main() { int x; x = noise(); }"));
}

TEST(Robustness, SemanticRejections) {
  EXPECT_TRUE(rejected("proc main() { sink(); }"));
  EXPECT_TRUE(rejected("proc main() { sink(1, 2); }"));
  EXPECT_TRUE(rejected("proc f(int a) { } proc main() { f(); }"));
  EXPECT_TRUE(rejected("proc f(int a) { } proc main() { f(1, 2); }"));
  EXPECT_TRUE(rejected(
      "proc f(real v[4]) { } proc main() { int x; x = 0; f(x); }"));
  EXPECT_TRUE(rejected(
      "proc f(int x) { } proc main() { real a[4]; f(a); }"));
  EXPECT_TRUE(rejected("proc main() { real a[2]; real a2[2]; a2[0] = a; }"));
  EXPECT_TRUE(rejected("proc f() { } proc f() { } proc main() { }"));
  EXPECT_TRUE(rejected("proc main() { real x[3.5]; }"));
}

TEST(Robustness, ValidEdgeCasesAccepted) {
  EXPECT_TRUE(accepted("proc main() { }"));
  EXPECT_TRUE(accepted("proc main() { return; }"));
  EXPECT_TRUE(accepted("proc main() { for i = 5 to 4 { } }"));
  EXPECT_TRUE(accepted(
      "proc main() { real a[1]; a[0] = 1.0e3; sink(a[0]); }"));
  EXPECT_TRUE(accepted("proc main() { int x; x = - - 3; sink(x); }"));
  EXPECT_TRUE(accepted("proc helper() { } proc main() { helper(); }"));
}

// Fuzz-ish: random token soup never crashes the frontend; it is either
// (rarely) a valid program or rejected with a diagnostic.
TEST(Robustness, RandomTokenSoupNeverCrashes) {
  const char* tokens[] = {"proc", "main", "(", ")", "{", "}", "int",
                          "real", "for", "if", "else", "to", "step", "x",
                          "y", "1", "2.5", "=", "+", "-", "*", "/", "[",
                          "]", ";", ",", "<", ">", "==", "&&", "||", "!"};
  uint64_t state = 12345;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string src = "proc main() { ";
    int n = 3 + static_cast<int>(next() % 40);
    for (int i = 0; i < n; ++i) {
      src += tokens[next() % (sizeof(tokens) / sizeof(tokens[0]))];
      src += ' ';
    }
    src += " }";
    DiagEngine diags;
    auto p = parseProgram(src, diags);
    if (p) analyze(*p, diags);  // must not crash either way
  }
  SUCCEED();
}

// Deterministic mutation fuzz over the real corpus sources. Unlike the
// token soup above (which is almost-always-invalid from the start), these
// inputs are valid programs with a single localized defect — the shape a
// user actually produces — so they exercise recovery paths deep inside
// the parser and sema. Contract: never crash; if the parse fails, there
// is a diagnostic; if the mutant survives sema, the downstream pipeline
// (analysis, MF-lint, plan auditor) must also run without crashing and
// the auditor must certify every plan the analysis emits for it.
class MutatedCorpus : public ::testing::TestWithParam<int> {
 protected:
  uint64_t state_ = 0;
  uint64_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  size_t pick(size_t n) { return static_cast<size_t>(next() % n); }

  void checkNoCrash(const std::string& src) {
    DiagEngine diags;
    auto p = parseProgram(src, diags);
    if (!p) {
      EXPECT_TRUE(diags.hasErrors())
          << "parse failed without emitting a diagnostic";
      return;
    }
    if (!analyze(*p, diags)) return;  // cleanly rejected by sema
    // The mutant is a *valid* program, so the whole verification pipeline
    // must hold on it: planner, MF-lint, and the plan auditor run without
    // crashing, and the auditor must not refute any plan the analysis
    // produced — a mutation that tricks the analysis into an unsound
    // parallel plan is exactly the bug this fuzz exists to catch.
    DiagEngine cdiags;
    auto cp = compileSource(src, cdiags);
    ASSERT_TRUE(cp.has_value())
        << "sema accepted a program the driver rejects:\n" << cdiags.dump();
    DiagEngine vdiags;
    runLint(*cp->program, cp->loops, vdiags);
    AuditReport base_rep = auditPlans(*cp->program, cp->base, vdiags);
    AuditReport pred_rep = auditPlans(*cp->program, cp->pred, vdiags);
    EXPECT_TRUE(base_rep.clean() && pred_rep.clean())
        << "auditor refuted a plan on a valid mutant:\n" << vdiags.dump();
    EXPECT_EQ(vdiags.countWithId("audit-unsound"), 0u) << vdiags.dump();
  }

  // Erase the whitespace-delimited token containing position `at`.
  static std::string deleteToken(std::string src, size_t at) {
    auto isws = [](char c) { return c == ' ' || c == '\n' || c == '\t'; };
    size_t b = at, e = at;
    while (b > 0 && !isws(src[b - 1])) --b;
    while (e < src.size() && !isws(src[e])) ++e;
    src.erase(b, e - b);
    return src;
  }
};

TEST_P(MutatedCorpus, TruncationNeverCrashes) {
  const CorpusEntry& entry = corpus()[static_cast<size_t>(GetParam())];
  SCOPED_TRACE(entry.name);
  std::string source = instantiate(entry);
  state_ = static_cast<uint64_t>(GetParam()) * 2654435761u + 17;
  for (int trial = 0; trial < 8; ++trial)
    checkNoCrash(source.substr(0, pick(source.size())));
  checkNoCrash("");  // degenerate truncation
}

TEST_P(MutatedCorpus, TokenDeletionNeverCrashes) {
  const CorpusEntry& entry = corpus()[static_cast<size_t>(GetParam())];
  SCOPED_TRACE(entry.name);
  std::string source = instantiate(entry);
  state_ = static_cast<uint64_t>(GetParam()) * 2654435761u + 29;
  for (int trial = 0; trial < 8; ++trial)
    checkNoCrash(deleteToken(source, pick(source.size())));
}

TEST_P(MutatedCorpus, ByteFlipsNeverCrash) {
  const CorpusEntry& entry = corpus()[static_cast<size_t>(GetParam())];
  SCOPED_TRACE(entry.name);
  std::string source = instantiate(entry);
  state_ = static_cast<uint64_t>(GetParam()) * 2654435761u + 43;
  // Includes non-printable replacements: the lexer must diagnose stray
  // bytes rather than walk past them or crash.
  const char replacements[] = "{}[]();=+-*/<>!&|%#@$\"'\\\x01\x7f\xff";
  for (int trial = 0; trial < 12; ++trial) {
    std::string mutated = source;
    mutated[pick(mutated.size())] =
        replacements[pick(sizeof(replacements) - 1)];
    checkNoCrash(mutated);
  }
}

TEST_P(MutatedCorpus, SnapshotMutationsNeverCrashTheStoreLoader) {
  // Same mutation battery, aimed at the OTHER untrusted-input boundary:
  // the persistent summary store's snapshot decoder. Build a real
  // snapshot from this program's compiled plans, then feed truncated /
  // bit-flipped variants through decodeSnapshot — it must reject cleanly
  // (with a diagnostic) or decode to content that re-encodes to the
  // original bytes; partial or corrupt data must never survive.
  const CorpusEntry& entry = corpus()[static_cast<size_t>(GetParam())];
  SCOPED_TRACE(entry.name);
  std::string source = instantiate(entry);
  DiagEngine diags;
  auto cp = compileSource(source, diags);
  ASSERT_TRUE(cp) << diags.dump();

  store::StoreData data;
  uint64_t hash = contentHash64(source);
  std::string procs;
  for (const auto& p : cp->program->procs) {
    std::string name(cp->interner().str(p->name));
    data.proc_plans[{hash, name}] = procPlanSignature(*cp, p.get());
    procs += name;
    procs += '\n';
  }
  data.responses[{hash, "procs"}] = procs;
  data.responses[{hash, "telemetry"}] = planTelemetrySignature(*cp);
  data.responses[{hash, "report"}] = renderPlanReport(*cp);
  data.feasibility["fuzz-key-a"] = 0;
  data.feasibility["fuzz-key-b"] = 1;
  const std::string good = store::encodeSnapshot(data);

  state_ = static_cast<uint64_t>(GetParam()) * 2654435761u + 57;
  for (int trial = 0; trial < 24; ++trial) {
    std::string b = good;
    uint64_t kind = next() % 3;
    if (kind == 0) {
      b.resize(pick(b.size() + 1));
    } else {
      size_t flips = kind == 1 ? 1 : 1 + pick(8);
      for (size_t f = 0; f < flips; ++f)
        b[pick(b.size())] ^= static_cast<char>(1u << pick(8));
    }
    store::StoreData out;
    std::string err;
    if (store::decodeSnapshot(b, out, err)) {
      EXPECT_EQ(store::encodeSnapshot(out), good)
          << "a mutated snapshot decoded to different content";
    } else {
      EXPECT_FALSE(err.empty()) << "rejection without a diagnostic";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, MutatedCorpus, ::testing::Range(0, 30));

TEST(Robustness, DeepNestingParses) {
  std::string src = "proc main() { int x; x = 0;\n";
  for (int i = 0; i < 40; ++i)
    src += "if (x < " + std::to_string(i) + ") {\n";
  src += "x = 1;\n";
  for (int i = 0; i < 40; ++i) src += "}\n";
  src += "}";
  EXPECT_TRUE(accepted(src));
}

TEST(Robustness, LongExpressionChains) {
  std::string src = "proc main() { real x; x = 0.0";
  for (int i = 0; i < 300; ++i) src += " + " + std::to_string(i) + ".0";
  src += "; sink(x); }";
  EXPECT_TRUE(accepted(src));
}

}  // namespace
}  // namespace padfa
