// Frontend robustness: every malformed input must produce a diagnostic
// (never a crash, never a silent acceptance), and random garbage must be
// rejected cleanly.
#include <gtest/gtest.h>

#include "lang/parser.h"
#include "lang/sema.h"

namespace padfa {
namespace {

// Returns true iff the source was cleanly REJECTED with >= 1 error.
bool rejected(std::string_view src) {
  DiagEngine diags;
  auto p = parseProgram(src, diags);
  if (!p) return diags.hasErrors();
  bool ok = analyze(*p, diags);
  return !ok && diags.hasErrors();
}

bool accepted(std::string_view src) {
  DiagEngine diags;
  auto p = parseProgram(src, diags);
  return p && analyze(*p, diags);
}

TEST(Robustness, MalformedTopLevel) {
  EXPECT_TRUE(rejected("int x;"));
  EXPECT_TRUE(rejected("proc"));
  EXPECT_TRUE(rejected("proc main"));
  EXPECT_TRUE(rejected("proc main("));
  EXPECT_TRUE(rejected("proc main() {"));
  EXPECT_TRUE(rejected("proc main() } {"));
  EXPECT_TRUE(rejected("proc 123() { }"));
}

TEST(Robustness, MalformedStatements) {
  EXPECT_TRUE(rejected("proc main() { x }"));
  EXPECT_TRUE(rejected("proc main() { int x; x = ; }"));
  EXPECT_TRUE(rejected("proc main() { int x; x = 1 }"));  // missing ';'
  EXPECT_TRUE(rejected("proc main() { if x > 1 { } }"));
  EXPECT_TRUE(rejected("proc main() { for = 0 to 3 { } }"));
  EXPECT_TRUE(rejected("proc main() { for i = 0 3 { } }"));
  EXPECT_TRUE(rejected("proc main() { return }"));
}

TEST(Robustness, MalformedExpressions) {
  EXPECT_TRUE(rejected("proc main() { int x; x = 1 + ; }"));
  EXPECT_TRUE(rejected("proc main() { int x; x = (1 + 2; }"));
  EXPECT_TRUE(rejected("proc main() { int x; x = 1 ++ 2; }"));
  EXPECT_TRUE(rejected("proc main() { real a[4]; a[1 = 0.0; }"));
  EXPECT_TRUE(rejected("proc main() { int x; x = min(1); }"));
  EXPECT_TRUE(rejected("proc main() { int x; x = noise(); }"));
}

TEST(Robustness, SemanticRejections) {
  EXPECT_TRUE(rejected("proc main() { sink(); }"));
  EXPECT_TRUE(rejected("proc main() { sink(1, 2); }"));
  EXPECT_TRUE(rejected("proc f(int a) { } proc main() { f(); }"));
  EXPECT_TRUE(rejected("proc f(int a) { } proc main() { f(1, 2); }"));
  EXPECT_TRUE(rejected(
      "proc f(real v[4]) { } proc main() { int x; x = 0; f(x); }"));
  EXPECT_TRUE(rejected(
      "proc f(int x) { } proc main() { real a[4]; f(a); }"));
  EXPECT_TRUE(rejected("proc main() { real a[2]; real a2[2]; a2[0] = a; }"));
  EXPECT_TRUE(rejected("proc f() { } proc f() { } proc main() { }"));
  EXPECT_TRUE(rejected("proc main() { real x[3.5]; }"));
}

TEST(Robustness, ValidEdgeCasesAccepted) {
  EXPECT_TRUE(accepted("proc main() { }"));
  EXPECT_TRUE(accepted("proc main() { return; }"));
  EXPECT_TRUE(accepted("proc main() { for i = 5 to 4 { } }"));
  EXPECT_TRUE(accepted(
      "proc main() { real a[1]; a[0] = 1.0e3; sink(a[0]); }"));
  EXPECT_TRUE(accepted("proc main() { int x; x = - - 3; sink(x); }"));
  EXPECT_TRUE(accepted("proc helper() { } proc main() { helper(); }"));
}

// Fuzz-ish: random token soup never crashes the frontend; it is either
// (rarely) a valid program or rejected with a diagnostic.
TEST(Robustness, RandomTokenSoupNeverCrashes) {
  const char* tokens[] = {"proc", "main", "(", ")", "{", "}", "int",
                          "real", "for", "if", "else", "to", "step", "x",
                          "y", "1", "2.5", "=", "+", "-", "*", "/", "[",
                          "]", ";", ",", "<", ">", "==", "&&", "||", "!"};
  uint64_t state = 12345;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string src = "proc main() { ";
    int n = 3 + static_cast<int>(next() % 40);
    for (int i = 0; i < n; ++i) {
      src += tokens[next() % (sizeof(tokens) / sizeof(tokens[0]))];
      src += ' ';
    }
    src += " }";
    DiagEngine diags;
    auto p = parseProgram(src, diags);
    if (p) analyze(*p, diags);  // must not crash either way
  }
  SUCCEED();
}

TEST(Robustness, DeepNestingParses) {
  std::string src = "proc main() { int x; x = 0;\n";
  for (int i = 0; i < 40; ++i)
    src += "if (x < " + std::to_string(i) + ") {\n";
  src += "x = 1;\n";
  for (int i = 0; i < 40; ++i) src += "}\n";
  src += "}";
  EXPECT_TRUE(accepted(src));
}

TEST(Robustness, LongExpressionChains) {
  std::string src = "proc main() { real x; x = 0.0";
  for (int i = 0; i < 300; ++i) src += " + " + std::to_string(i) + ".0";
  src += "; sink(x); }";
  EXPECT_TRUE(accepted(src));
}

}  // namespace
}  // namespace padfa
