// Property tests for the predicate lattice: implication and
// simplification are validated against brute-force truth evaluation over
// a small integer grid.
#include <gtest/gtest.h>

#include <functional>

#include "lang/parser.h"
#include "lang/sema.h"
#include "predicate/pred.h"

namespace padfa {
namespace {

struct Rand {
  uint64_t s;
  explicit Rand(uint64_t seed) : s(seed * 0x2545f4914f6cdd1dull + 7) {}
  uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  int range(int lo, int hi) {
    return lo + static_cast<int>(next() % static_cast<uint64_t>(hi - lo + 1));
  }
};

// Generates a random condition string over int scalars d and t.
std::string randomCondition(Rand& r, int depth) {
  if (depth <= 0 || r.range(0, 2) == 0) {
    const char* var = r.range(0, 1) ? "d" : "t";
    const char* ops[] = {"<", "<=", ">", ">=", "==", "!="};
    const char* op = ops[r.range(0, 5)];
    int k = r.range(-3, 3);
    switch (r.range(0, 2)) {
      case 0:
        return std::string(var) + " " + op + " " + std::to_string(k);
      case 1:
        return std::string("d ") + op + " t";
      default:
        return std::string(var) + " + " + std::to_string(r.range(0, 2)) +
               " " + op + " " + std::to_string(k);
    }
  }
  std::string l = randomCondition(r, depth - 1);
  std::string rr = randomCondition(r, depth - 1);
  switch (r.range(0, 2)) {
    case 0: return "(" + l + ") && (" + rr + ")";
    case 1: return "(" + l + ") || (" + rr + ")";
    default: return "!(" + l + ")";
  }
}

class PredProperty : public ::testing::TestWithParam<int> {
 protected:
  // Parse two conditions into predicates sharing a scalar environment.
  void build(const std::string& c1, const std::string& c2) {
    std::string src = "proc main() { int d; int t; d = 0; t = 0;\n"
                      "if (" + c1 + ") { d = 1; }\n"
                      "if (" + c2 + ") { t = 1; }\n}";
    DiagEngine diags;
    program_ = parseProgram(src, diags);
    ASSERT_NE(program_, nullptr) << diags.dump() << "\n" << src;
    ASSERT_TRUE(analyze(*program_, diags)) << diags.dump();
    vt_ = std::make_unique<VarTable>(&program_->interner);
    auto& stmts = program_->procs[0]->body->stmts;
    p_ = Pred::fromCondition(*static_cast<IfStmt&>(*stmts[2]).cond,
                             program_->interner);
    q_ = Pred::fromCondition(*static_cast<IfStmt&>(*stmts[3]).cond,
                             program_->interner);
  }

  bool evalAt(const Pred& p, int64_t d, int64_t t) {
    return p.evaluate([&](const Expr& e) -> double {
      // Tiny recursive evaluator for the atom expressions.
      std::function<double(const Expr&)> ev = [&](const Expr& x) -> double {
        switch (x.kind) {
          case ExprKind::IntLit:
            return static_cast<double>(
                static_cast<const IntLitExpr&>(x).value);
          case ExprKind::VarRef: {
            std::string_view n = program_->interner.str(
                static_cast<const VarRefExpr&>(x).name);
            return n == "d" ? static_cast<double>(d)
                            : static_cast<double>(t);
          }
          case ExprKind::Binary: {
            const auto& b = static_cast<const BinaryExpr&>(x);
            double l = ev(*b.lhs), r = ev(*b.rhs);
            switch (b.op) {
              case BinOp::Add: return l + r;
              case BinOp::Sub: return l - r;
              case BinOp::Mul: return l * r;
              default: ADD_FAILURE(); return 0;
            }
          }
          case ExprKind::Unary:
            return -ev(*static_cast<const UnaryExpr&>(x).operand);
          default:
            ADD_FAILURE() << "unexpected atom expr";
            return 0;
        }
      };
      return ev(e);
    });
  }

  std::unique_ptr<Program> program_;
  std::unique_ptr<VarTable> vt_;
  Pred p_, q_;
};

TEST_P(PredProperty, ImpliesNeverLies) {
  Rand r(static_cast<uint64_t>(GetParam()) + 3);
  build(randomCondition(r, 2), randomCondition(r, 2));
  bool claimed = p_.implies(q_, *vt_);
  if (!claimed) return;  // conservative "no" is always allowed
  for (int64_t d = -5; d <= 5; ++d) {
    for (int64_t t = -5; t <= 5; ++t) {
      if (evalAt(p_, d, t)) {
        EXPECT_TRUE(evalAt(q_, d, t))
            << "implies() lied at d=" << d << " t=" << t << "\n p = "
            << p_.str(program_->interner)
            << "\n q = " << q_.str(program_->interner);
      }
    }
  }
}

TEST_P(PredProperty, NegationComplementsEvaluation) {
  Rand r(static_cast<uint64_t>(GetParam()) + 77);
  build(randomCondition(r, 2), "d == 0");
  Pred np = !p_;
  for (int64_t d = -4; d <= 4; ++d)
    for (int64_t t = -4; t <= 4; ++t)
      EXPECT_NE(evalAt(p_, d, t), evalAt(np, d, t))
          << p_.str(program_->interner) << " at d=" << d << " t=" << t;
}

TEST_P(PredProperty, ConjunctionDisjunctionMatchEvaluation) {
  Rand r(static_cast<uint64_t>(GetParam()) + 991);
  build(randomCondition(r, 1), randomCondition(r, 1));
  Pred andp = p_ && q_;
  Pred orp = p_ || q_;
  for (int64_t d = -4; d <= 4; ++d) {
    for (int64_t t = -4; t <= 4; ++t) {
      bool ep = evalAt(p_, d, t), eq = evalAt(q_, d, t);
      EXPECT_EQ(evalAt(andp, d, t), ep && eq);
      EXPECT_EQ(evalAt(orp, d, t), ep || eq);
    }
  }
}

TEST_P(PredProperty, SimplifyPreservesSemantics) {
  Rand r(static_cast<uint64_t>(GetParam()) + 4242);
  build(randomCondition(r, 3), "d == 0");
  Pred s = p_.simplify(*vt_);
  for (int64_t d = -5; d <= 5; ++d)
    for (int64_t t = -5; t <= 5; ++t)
      EXPECT_EQ(evalAt(p_, d, t), evalAt(s, d, t))
          << "simplify changed semantics of "
          << p_.str(program_->interner) << " -> "
          << s.str(program_->interner) << " at d=" << d << " t=" << t;
}

TEST_P(PredProperty, WeakenAtomsIsDirectional) {
  Rand r(static_cast<uint64_t>(GetParam()) + 31337);
  build(randomCondition(r, 2), "d == 0");
  // Weakening away `t` to true must yield a predicate implied by p.
  std::vector<const VarDecl*> vars;
  p_.collectReferencedVars(vars);
  std::vector<const VarDecl*> tvars;
  for (const VarDecl* v : vars)
    if (program_->interner.str(v->name) == "t") tvars.push_back(v);
  Pred up = p_.weakenAtoms(tvars, /*toTrue=*/true);
  Pred down = p_.weakenAtoms(tvars, /*toTrue=*/false);
  for (int64_t d = -5; d <= 5; ++d) {
    for (int64_t t = -5; t <= 5; ++t) {
      if (evalAt(p_, d, t)) {
        EXPECT_TRUE(evalAt(up, d, t));
      }
      if (evalAt(down, d, t)) {
        EXPECT_TRUE(evalAt(p_, d, t));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredProperty, ::testing::Range(0, 60));

}  // namespace
}  // namespace padfa
