// PDG export goldens and the corpus-wide three-way agreement sweep.
//
// Goldens: tests/pdg_golden/<name>.{dot,json} hold the exact `mfc deps`
// output for a handful of corpus programs. The exports are keyed by
// AST-pre-order node ids and sorted edge keys, so they must be
// byte-identical run over run and build over build; any drift (a new
// edge, a reordered map, a changed label) fails here first, with a
// diff-able artifact.
//
// Agreement: for EVERY corpus program and BOTH analyses (base, pred),
// PDG-based plan certification must land on the same verdict rank as
// the independent PlanAuditor — zero disagreements, zero Disagree
// verdicts — and the dynamic race oracle must concur (violations iff
// certification found a statically contradicted plan). This is the
// third verification leg promised in DESIGN.md §11.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "audit/plan_audit.h"
#include "audit/race_oracle.h"
#include "corpus/corpus.h"
#include "driver/padfa.h"
#include "pdg/certify.h"
#include "pdg/pdg.h"

#ifndef PDG_GOLDEN_DIR
#error "PDG_GOLDEN_DIR must point at the golden DOT/JSON exports"
#endif

namespace padfa {
namespace {

CompiledProgram compileEntry(const CorpusEntry& e) {
  DiagEngine diags;
  auto cp = compileSource(instantiate(e), diags);
  EXPECT_TRUE(cp) << e.name << ":\n" << diags.dump();
  return std::move(*cp);
}

std::string readFile(const std::filesystem::path& p) {
  std::ifstream in(p);
  EXPECT_TRUE(in) << "missing golden " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The golden set: one small program per dependence flavor — a doall
// with privatization (tomcatv), a carried-recurrence mix (spec77), and
// a runtime-test program (ocean).
const char* kGoldenPrograms[] = {"tomcatv", "spec77", "ocean"};

class PdgGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(PdgGolden, DotAndJsonMatchGoldens) {
  const CorpusEntry* e = corpusEntry(GetParam());
  ASSERT_NE(e, nullptr);
  CompiledProgram cp = compileEntry(*e);
  ProgramPdg pdg = buildPdg(*cp.program, cp.loops);

  const auto dir = std::filesystem::path(PDG_GOLDEN_DIR);
  EXPECT_EQ(pdgToDot(pdg, *cp.program),
            readFile(dir / (std::string(e->name) + ".dot")))
      << "regenerate with: mfc deps corpus:" << e->name;
  EXPECT_EQ(pdgToJson(pdg, *cp.program),
            readFile(dir / (std::string(e->name) + ".json")))
      << "regenerate with: mfc deps corpus:" << e->name << " --json";
}

TEST_P(PdgGolden, ExportsAreDeterministic) {
  const CorpusEntry* e = corpusEntry(GetParam());
  ASSERT_NE(e, nullptr);
  CompiledProgram a = compileEntry(*e);
  CompiledProgram b = compileEntry(*e);
  ProgramPdg pa = buildPdg(*a.program, a.loops);
  ProgramPdg pb = buildPdg(*b.program, b.loops);
  EXPECT_EQ(pdgToDot(pa, *a.program), pdgToDot(pb, *b.program));
  EXPECT_EQ(pdgToJson(pa, *a.program), pdgToJson(pb, *b.program));
}

INSTANTIATE_TEST_SUITE_P(GoldenSet, PdgGolden,
                         ::testing::ValuesIn(kGoldenPrograms),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ------------------------------------------- three-way agreement sweep --

class CorpusAgreement : public ::testing::TestWithParam<int> {};

TEST_P(CorpusAgreement, CertifyAuditOracleAgree) {
  const CorpusEntry& e = corpus()[static_cast<size_t>(GetParam())];
  CompiledProgram cp = compileEntry(e);
  ProgramPdg pdg = buildPdg(*cp.program, cp.loops);

  bool pred_disagree = false;
  for (const AnalysisResult* ar : {&cp.base, &cp.pred}) {
    CertifyReport cert = certifyPlans(*cp.program, *ar, cp.loops, pdg);
    DiagEngine quiet;
    AuditReport audit = auditPlans(*cp.program, *ar, quiet);
    EXPECT_TRUE(cert.clean())
        << e.name << ": " << cert.count(CertifyVerdict::Disagree)
        << " Disagree verdict(s)";
    for (const std::string& d :
         crossCheckCertification(*cp.program, cert, audit))
      ADD_FAILURE() << e.name << " ("
                    << (ar == &cp.base ? "base" : "pred") << "): " << d;
    if (ar == &cp.pred)
      pred_disagree = !cert.clean();
  }

  // Third leg: the dynamic race oracle, shadowing a sequential run of
  // the predicated plans, must agree with static certification — no
  // violations when certification is clean (and a violation would have
  // to coincide with a Disagree).
  RaceOracle oracle(*cp.program, cp.pred);
  InterpOptions opt;
  opt.plans = &cp.pred;
  opt.race = &oracle;
  execute(*cp.program, opt);
  EXPECT_EQ(oracle.violationCount() > 0, pred_disagree)
      << e.name << ": race oracle and PDG certification disagree ("
      << oracle.violationCount() << " violation(s))";
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, CorpusAgreement,
                         ::testing::Range(0,
                                          static_cast<int>(corpus().size())),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return corpus()[static_cast<size_t>(info.param)]
                               .name;
                         });

}  // namespace
}  // namespace padfa
