// Golden per-loop classification for the entire corpus: a regression
// surface that pins down exactly which loop each system parallelizes.
// Any analysis change that silently alters a decision anywhere in the
// 30-program corpus fails here with a precise loop id.
//
// (Regenerate the table with the snippet in the test's git history /
// by printing classifyLoop over the corpus.)
#include <gtest/gtest.h>

#include <map>

#include "corpus/corpus.h"
#include "driver/padfa.h"

namespace padfa {
namespace {

struct GoldenProgram {
  const char* name;
  std::vector<std::pair<const char*, const char*>> loops;  // id -> outcome
};

const std::vector<GoldenProgram>& golden() {
  static const std::vector<GoldenProgram> table = {
      {"tomcatv",
       {{"main/L8", "base-parallel"},
        {"main/L9", "base-parallel"},
        {"main/L14", "base-parallel"},
        {"main/L15", "base-parallel"},
        {"main/L20", "base-parallel"},
        {"main/L21", "base-parallel"},
        {"main/L23", "base-parallel"},
        {"main/L26", "base-parallel"},
        {"main/L27", "nested-in-parallel"},
        {"main/L32", "base-parallel"}}},
      {"swim",
       {{"main/L8", "base-parallel"},
        {"main/L9", "base-parallel"},
        {"main/L15", "base-parallel"},
        {"main/L16", "base-parallel"},
        {"main/L22", "base-parallel"},
        {"main/L26", "base-parallel"},
        {"main/L27", "base-parallel"},
        {"main/L30", "base-parallel"}}},
      {"su2cor",
       {{"main/L8", "pred-parallel-ct"},
        {"main/L10", "base-parallel"},
        {"main/L14", "base-parallel"},
        {"main/L18", "base-parallel"},
        {"main/L23", "base-parallel"}}},
      {"hydro2d",
       {{"main/L7", "base-parallel"},
        {"main/L8", "pred-parallel-ct"},
        {"main/L16", "base-parallel"},
        {"main/L20", "base-parallel"}}},
      {"mgrid",
       {{"smooth/L3", "base-parallel"},
        {"smooth/L4", "base-parallel"},
        {"main/L14", "base-parallel"},
        {"main/L15", "base-parallel"},
        {"main/L19", "sequential"},
        {"main/L23", "base-parallel"}}},
      {"applu",
       {{"main/L7", "base-parallel"},
        {"main/L8", "base-parallel"},
        {"main/L9", "sequential"},
        {"main/L10", "sequential"},
        {"main/L12", "base-parallel"}}},
      {"turb3d",
       {{"main/L5", "base-parallel"},
        {"main/L6", "base-parallel"},
        {"main/L8", "base-parallel"},
        {"main/L10", "base-parallel"},
        {"main/L11", "base-parallel"},
        {"main/L13", "not-candidate"}}},
      {"apsi",
       {{"main/L7", "base-parallel"},
        {"main/L8", "pred-parallel-rt"},
        {"main/L13", "base-parallel"},
        {"main/L17", "base-parallel"}}},
      {"fpppp",
       {{"main/L8", "sequential"},
        {"main/L9", "sequential"},
        {"main/L10", "base-parallel"},
        {"main/L12", "base-parallel"}}},
      {"wave5",
       {{"main/L7", "base-parallel"},
        {"main/L8", "pred-parallel-ct"},
        {"main/L11", "base-parallel"},
        {"main/L12", "base-parallel"},
        {"main/L15", "base-parallel"}}},
      {"appbt",
       {{"main/L7", "base-parallel"},
        {"main/L8", "base-parallel"},
        {"main/L10", "base-parallel"},
        {"main/L11", "base-parallel"},
        {"main/L12", "base-parallel"},
        {"main/L14", "base-parallel"},
        {"main/L19", "base-parallel"}}},
      {"applu_nas",
       {{"main/L6", "base-parallel"},
        {"main/L7", "base-parallel"},
        {"main/L9", "sequential"},
        {"main/L10", "sequential"},
        {"main/L14", "base-parallel"},
        {"main/L15", "base-parallel"},
        {"main/L18", "base-parallel"}}},
      {"appsp",
       {{"fillv/L3", "base-parallel"},
        {"main/L13", "base-parallel"},
        {"main/L14", "base-parallel"},
        {"main/L16", "base-parallel"},
        {"main/L18", "base-parallel"},
        {"main/L22", "pred-parallel-rt"},
        {"main/L25", "base-parallel"},
        {"main/L26", "base-parallel"},
        {"main/L31", "base-parallel"}}},
      {"buk",
       {{"main/L7", "base-parallel"},
        {"main/L8", "base-parallel"},
        {"main/L9", "sequential"},
        {"main/L10", "sequential"},
        {"main/L12", "base-parallel"}}},
      {"cgm",
       {{"main/L8", "base-parallel"},
        {"main/L9", "base-parallel"},
        {"main/L10", "base-parallel"},
        {"main/L12", "base-parallel"},
        {"main/L13", "sequential"},
        {"main/L15", "base-parallel"}}},
      {"embar",
       {{"main/L6", "base-parallel"}}},
      {"fftpde",
       {{"main/L7", "base-parallel"},
        {"main/L11", "base-parallel"},
        {"main/L15", "base-parallel"},
        {"main/L20", "base-parallel"}}},
      {"mgrid_nas",
       {{"relax/L3", "base-parallel"},
        {"main/L11", "base-parallel"},
        {"main/L13", "sequential"},
        {"main/L16", "base-parallel"}}},
      {"adm",
       {{"main/L6", "base-parallel"},
        {"main/L7", "base-parallel"},
        {"main/L9", "base-parallel"},
        {"main/L10", "base-parallel"},
        {"main/L14", "base-parallel"},
        {"main/L15", "nested-in-parallel"},
        {"main/L18", "base-parallel"}}},
      {"arc2d",
       {{"main/L7", "base-parallel"},
        {"main/L8", "base-parallel"},
        {"main/L10", "base-parallel"},
        {"main/L11", "base-parallel"},
        {"main/L12", "base-parallel"},
        {"main/L19", "base-parallel"}}},
      {"bdna",
       {{"main/L7", "base-parallel"},
        {"main/L8", "base-parallel"},
        {"main/L10", "nested-in-parallel"},
        {"main/L14", "sequential"},
        {"main/L16", "base-parallel"}}},
      {"dyfesm",
       {{"main/L8", "base-parallel"},
        {"main/L9", "base-parallel"},
        {"main/L11", "base-parallel"},
        {"main/L17", "pred-parallel-rt"},
        {"main/L24", "base-parallel"}}},
      {"flo52",
       {{"main/L6", "base-parallel"},
        {"main/L7", "base-parallel"},
        {"main/L9", "base-parallel"},
        {"main/L10", "base-parallel"},
        {"main/L16", "sequential"},
        {"main/L18", "base-parallel"}}},
      {"mdg",
       {{"main/L7", "base-parallel"},
        {"main/L8", "pred-parallel-ct"},
        {"main/L9", "base-parallel"},
        {"main/L11", "base-parallel"},
        {"main/L15", "base-parallel"}}},
      {"ocean",
       {{"main/L7", "base-parallel"},
        {"main/L8", "pred-parallel-ct"},
        {"main/L11", "base-parallel"},
        {"main/L13", "base-parallel"}}},
      {"qcd",
       {{"main/L7", "base-parallel"},
        {"main/L8", "base-parallel"},
        {"main/L9", "sequential"},
        {"main/L10", "base-parallel"},
        {"main/L12", "base-parallel"}}},
      {"spec77",
       {{"main/L6", "base-parallel"},
        {"main/L7", "base-parallel"},
        {"main/L9", "base-parallel"},
        {"main/L11", "base-parallel"},
        {"main/L14", "sequential"},
        {"main/L16", "base-parallel"}}},
      {"track",
       {{"main/L7", "base-parallel"},
        {"main/L8", "base-parallel"},
        {"main/L9", "sequential"},
        {"main/L10", "base-parallel"},
        {"main/L12", "base-parallel"}}},
      {"trfd",
       {{"main/L7", "base-parallel"},
        {"main/L8", "pred-parallel-ct"},
        {"main/L9", "base-parallel"},
        {"main/L11", "base-parallel"},
        {"main/L12", "base-parallel"},
        {"main/L16", "base-parallel"}}},
      {"erlebacher",
       {{"main/L6", "base-parallel"},
        {"main/L7", "base-parallel"},
        {"main/L9", "base-parallel"},
        {"main/L10", "base-parallel"},
        {"main/L11", "nested-in-parallel"},
        {"main/L15", "base-parallel"},
        {"main/L19", "base-parallel"}}},
      {"sor_pipe",
       {{"main/L5", "base-parallel"},
        {"main/L6", "pred-doacross"},
        {"main/L8", "base-parallel"},
        {"main/L12", "base-parallel"}}},
      {"lin_rec4",
       {{"main/L5", "base-parallel"},
        {"main/L6", "pred-doacross"},
        {"main/L8", "base-parallel"},
        {"main/L12", "base-parallel"}}},
      {"wavefront_sync",
       {{"main/L6", "base-parallel"},
        {"main/L7", "pred-doacross"},
        {"main/L9", "base-parallel"},
        {"main/L14", "base-parallel"}}},
  };
  return table;
}

class GoldenPlan : public ::testing::TestWithParam<int> {};

TEST_P(GoldenPlan, ClassificationMatchesGolden) {
  const GoldenProgram& g = golden()[static_cast<size_t>(GetParam())];
  const CorpusEntry* e = corpusEntry(g.name);
  ASSERT_NE(e, nullptr);
  DiagEngine diags;
  auto cp = compileSource(instantiate(*e), diags);
  ASSERT_TRUE(cp.has_value()) << diags.dump();

  std::map<std::string, std::string> actual;
  for (const LoopNode* node : cp->loops.allLoops())
    actual[node->loop->loop_id] =
        std::string(loopOutcomeName(classifyLoop(*cp, node->loop)));

  ASSERT_EQ(actual.size(), g.loops.size()) << g.name;
  for (const auto& [id, outcome] : g.loops) {
    auto it = actual.find(id);
    ASSERT_NE(it, actual.end()) << g.name << " lost loop " << id;
    EXPECT_EQ(it->second, outcome) << g.name << " loop " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, GoldenPlan, ::testing::Range(0, 33),
    [](const ::testing::TestParamInfo<int>& info) {
      return std::string(golden()[static_cast<size_t>(info.param)].name);
    });

TEST(GoldenPlan, CoversWholeCorpus) {
  ASSERT_EQ(golden().size(), corpus().size());
}

}  // namespace
}  // namespace padfa
