// Code generator tests: the MF pretty-printer round-trips (re-parses and
// re-executes identically), and the parallel emitter produces valid MF
// with the right annotations and two-version expansions.
#include <gtest/gtest.h>

#include "codegen/mf_printer.h"
#include "codegen/parallel_emit.h"
#include "corpus/corpus.h"
#include "driver/padfa.h"

namespace padfa {
namespace {

CompiledProgram compileOk(const std::string& src) {
  DiagEngine diags;
  auto cp = compileSource(src, diags);
  EXPECT_TRUE(cp.has_value()) << diags.dump();
  return std::move(*cp);
}

double runSeq(const Program& p) { return execute(p, {}).checksum; }

TEST(Printer, RoundTripsSimpleProgram) {
  const char* src = R"(
proc scale(real v[n], int n, real k) {
  for i = 0 to n - 1 { v[i] = v[i] * k; }
}
proc main() {
  real a[10];
  int m; m = 7;
  for i = 0 to 9 {
    if (i < m) { a[i] = noise(i); } else { a[i] = 0.5; }
  }
  scale(a, 10, 2.0);
  real s; s = 0.0;
  for i = 0 to 9 step 2 { s = s + a[i]; }
  sink(s);
}
)";
  auto cp = compileOk(src);
  std::string printed = printProgram(*cp.program);
  auto cp2 = compileOk(printed);
  EXPECT_DOUBLE_EQ(runSeq(*cp.program), runSeq(*cp2.program))
      << "printed source:\n"
      << printed;
}

class PrinterCorpusRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PrinterCorpusRoundTrip, ReparseAndReexecute) {
  const CorpusEntry& e = corpus()[static_cast<size_t>(GetParam())];
  auto cp = compileOk(instantiate(e));
  std::string printed = printProgram(*cp.program);
  auto cp2 = compileOk(printed);
  EXPECT_DOUBLE_EQ(runSeq(*cp.program), runSeq(*cp2.program)) << e.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, PrinterCorpusRoundTrip, ::testing::Range(0, 30),
    [](const ::testing::TestParamInfo<int>& info) {
      return corpus()[static_cast<size_t>(info.param)].name;
    });

TEST(ParallelEmit, AnnotatesParallelLoops) {
  auto cp = compileOk(R"(
proc main() {
  real out[50];
  real help[8];
  for i = 0 to 49 {
    for j = 0 to 7 { help[j] = noise(i + j); }
    real s; s = 0.0;
    for j = 0 to 7 { s = s + help[j]; }
    out[i] = s;
  }
  sink(out[3]);
}
)");
  EmitStats stats;
  std::string out = emitParallelProgram(*cp.program, cp.pred, &stats);
  EXPECT_GT(stats.parallel_annotations, 0);
  EXPECT_NE(out.find("@parallel"), std::string::npos);
  EXPECT_NE(out.find("private(help)"), std::string::npos) << out;
}

TEST(ParallelEmit, ExpandsTwoVersionLoops) {
  auto cp = compileOk(R"(
proc main() {
  int d; d = inoise(3, 2) + 299;
  real x[900];
  for j = 0 to 899 { x[j] = noise(j); }
  for i = 300 to 599 { x[i] = x[i - d] + 1.0; }
  sink(x[400]);
}
)");
  EmitStats stats;
  std::string out = emitParallelProgram(*cp.program, cp.pred, &stats);
  EXPECT_EQ(stats.two_version_loops, 1);
  // The emitted two-version structure contains the loop twice under a
  // test on d.
  size_t first = out.find("for i = 300 to 599");
  ASSERT_NE(first, std::string::npos) << out;
  EXPECT_NE(out.find("for i = 300 to 599", first + 1), std::string::npos);

  // The emitted program is valid MF with unchanged sequential semantics.
  auto cp2 = compileOk(out);
  EXPECT_DOUBLE_EQ(runSeq(*cp.program), runSeq(*cp2.program));
}

TEST(ParallelEmit, ReductionAndCopyPoliciesRendered) {
  auto cp = compileOk(R"(
proc main() {
  int m; m = inoise(7, 1) + 20;
  real buf[32];
  real out[40];
  real tot; tot = 0.0;
  for q = 0 to 31 { buf[q] = noise(q); }
  for i = 0 to 39 {
    for j = 0 to m - 1 { buf[j] = noise(i + j); }
    real s; s = 0.0;
    for j = 0 to 31 { s = s + buf[j]; }
    out[i] = s;
    tot = tot + s;
  }
  sink(tot);
}
)");
  EmitStats stats;
  std::string out = emitParallelProgram(*cp.program, cp.pred, &stats);
  EXPECT_NE(out.find("private(buf,copyin)"), std::string::npos) << out;
  EXPECT_NE(out.find("reduction(+:tot)"), std::string::npos) << out;
}

class EmitCorpusValid : public ::testing::TestWithParam<int> {};

TEST_P(EmitCorpusValid, EmittedSourceReparsesAndMatches) {
  const CorpusEntry& e = corpus()[static_cast<size_t>(GetParam())];
  auto cp = compileOk(instantiate(e));
  std::string out = emitParallelProgram(*cp.program, cp.pred, nullptr);
  auto cp2 = compileOk(out);
  EXPECT_DOUBLE_EQ(runSeq(*cp.program), runSeq(*cp2.program)) << e.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, EmitCorpusValid, ::testing::Range(0, 30),
    [](const ::testing::TestParamInfo<int>& info) {
      return corpus()[static_cast<size_t>(info.param)].name;
    });

}  // namespace
}  // namespace padfa
