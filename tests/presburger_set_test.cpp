// Unit + property tests for pb::Set — unions, intersection, exact integer
// subtraction and subset testing over small brute-forceable boxes.
#include <gtest/gtest.h>

#include "presburger/set.h"

namespace padfa::pb {
namespace {

LinExpr X() { return LinExpr::var(0); }
LinExpr Y() { return LinExpr::var(1); }
LinExpr C(int64_t k) { return LinExpr(k); }

// Interval [lo, hi] on variable v.
System interval(VarId v, int64_t lo, int64_t hi) {
  System s;
  s.addGE0(LinExpr::var(v) - LinExpr(lo));
  s.addGE0(LinExpr(hi) - LinExpr::var(v));
  return s;
}

TEST(Set, EmptyByDefault) {
  Set s;
  EXPECT_TRUE(s.isEmpty());
  EXPECT_TRUE(s.exact());
}

TEST(Set, UniverseNonEmpty) {
  EXPECT_FALSE(Set::universe().isEmpty());
}

TEST(Set, SinglePieceNonEmpty) {
  Set s(interval(0, 1, 10));
  EXPECT_FALSE(s.isEmpty());
}

TEST(Set, InfeasiblePieceIsEmpty) {
  Set s(interval(0, 10, 1));
  EXPECT_TRUE(s.isEmpty());
}

TEST(Set, UnionOfPieces) {
  Set a(interval(0, 1, 3));
  Set b(interval(0, 7, 9));
  a.unionWith(b);
  EXPECT_FALSE(a.isEmpty());
  EXPECT_TRUE(a.contains({2}));
  EXPECT_TRUE(a.contains({8}));
  EXPECT_FALSE(a.contains({5}));
}

TEST(Set, IntersectOverlapping) {
  Set a(interval(0, 1, 6));
  Set b(interval(0, 4, 9));
  Set c = a.intersect(b);
  EXPECT_TRUE(c.contains({4}));
  EXPECT_TRUE(c.contains({6}));
  EXPECT_FALSE(c.contains({3}));
  EXPECT_FALSE(c.contains({7}));
}

TEST(Set, IntersectDisjointIsEmpty) {
  Set a(interval(0, 1, 3));
  Set b(interval(0, 5, 9));
  EXPECT_TRUE(a.intersect(b).isEmpty());
}

TEST(Set, SubtractMiddle) {
  // [1,10] - [4,6] = [1,3] ∪ [7,10].
  Set a(interval(0, 1, 10));
  Set b(interval(0, 4, 6));
  Set d = a.subtract(b);
  EXPECT_TRUE(d.exact());
  EXPECT_TRUE(d.contains({3}));
  EXPECT_TRUE(d.contains({7}));
  EXPECT_FALSE(d.contains({5}));
  EXPECT_FALSE(d.contains({0}));
}

TEST(Set, SubtractAllIsEmpty) {
  Set a(interval(0, 2, 5));
  Set b(interval(0, 1, 10));
  Set d = a.subtract(b);
  EXPECT_TRUE(d.isEmpty());
  EXPECT_TRUE(d.exact());
}

TEST(Set, SubtractDisjointLeavesMinuend) {
  Set a(interval(0, 1, 3));
  Set b(interval(0, 8, 9));
  Set d = a.subtract(b);
  for (int64_t x = 1; x <= 3; ++x) EXPECT_TRUE(d.contains({x}));
  EXPECT_FALSE(d.contains({8}));
}

TEST(Set, SubsetOfInterval) {
  Set a(interval(0, 3, 5));
  Set b(interval(0, 1, 10));
  EXPECT_TRUE(a.isSubsetOf(b));
  EXPECT_FALSE(b.isSubsetOf(a));
}

TEST(Set, SubsetOfUnionNeedsBothPieces) {
  Set a(interval(0, 1, 10));
  Set b(interval(0, 1, 5));
  b.unionWith(Set(interval(0, 6, 10)));
  EXPECT_TRUE(a.isSubsetOf(b));  // [1,10] ⊆ [1,5] ∪ [6,10]
  Set c(interval(0, 1, 4));
  c.unionWith(Set(interval(0, 7, 10)));
  EXPECT_FALSE(a.isSubsetOf(c));  // 5,6 uncovered
}

TEST(Set, TwoDimensionalSubtract) {
  // Square [0,4]x[0,4] minus column x==2 leaves the rest.
  Set a(interval(0, 0, 4).constraints().empty() ? System() : [] {
    System s = interval(0, 0, 4);
    s.conjoin(interval(1, 0, 4));
    return s;
  }());
  System col;
  col.addEQ0(X() - C(2));
  Set b{col};
  Set d = a.subtract(b);
  EXPECT_TRUE(d.contains({1, 3}));
  EXPECT_TRUE(d.contains({3, 0}));
  EXPECT_FALSE(d.contains({2, 2}));
}

TEST(Set, ConstrainFiltersPieces) {
  Set a(interval(0, 1, 3));
  a.unionWith(Set(interval(0, 7, 9)));
  System ge5;
  ge5.addGE0(X() - C(5));
  a.constrain(ge5);
  EXPECT_FALSE(a.contains({2}));
  EXPECT_TRUE(a.contains({8}));
}

TEST(Set, ProjectOntoDropsVariable) {
  // { (x,y) : 1<=x<=3, y==x } projected onto y: 1<=y<=3.
  System s = interval(0, 1, 3);
  s.addEQ0(Y() - X());
  Set a{s};
  a.projectOnto([](VarId v) { return v == 1; });
  EXPECT_TRUE(a.contains({0, 2}));
  EXPECT_FALSE(a.contains({0, 4}));
}

TEST(Set, SimplifyDeduplicates) {
  Set a(interval(0, 1, 3));
  a.unionWith(Set(interval(0, 1, 3)));
  a.simplify();
  EXPECT_EQ(a.numPieces(), 1u);
}

// ---- Property sweep: set algebra vs brute force on [0,6]^2 ----

struct Box {
  int64_t xlo, xhi, ylo, yhi;
};

System boxSys(const Box& b) {
  System s = interval(0, b.xlo, b.xhi);
  s.conjoin(interval(1, b.ylo, b.yhi));
  return s;
}

class SetAlgebraSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SetAlgebraSweep, SubtractMatchesBruteForce) {
  auto [ai, bi] = GetParam();
  // Enumerate a deterministic family of boxes from the parameter.
  Box A{ai % 3, ai % 3 + ai % 5, (ai / 3) % 4, (ai / 3) % 4 + 2};
  Box B{bi % 4, bi % 4 + bi % 3 + 1, bi % 2, bi % 2 + (bi / 2) % 5};
  Set sa{boxSys(A)};
  Set sb{boxSys(B)};
  Set diff = sa.subtract(sb);
  ASSERT_TRUE(diff.exact());
  for (int64_t x = -1; x <= 8; ++x) {
    for (int64_t y = -1; y <= 8; ++y) {
      bool inA = x >= A.xlo && x <= A.xhi && y >= A.ylo && y <= A.yhi;
      bool inB = x >= B.xlo && x <= B.xhi && y >= B.ylo && y <= B.yhi;
      EXPECT_EQ(diff.contains({x, y}), inA && !inB)
          << "x=" << x << " y=" << y;
    }
  }
}

TEST_P(SetAlgebraSweep, IntersectMatchesBruteForce) {
  auto [ai, bi] = GetParam();
  Box A{ai % 3, ai % 3 + ai % 5, (ai / 3) % 4, (ai / 3) % 4 + 2};
  Box B{bi % 4, bi % 4 + bi % 3 + 1, bi % 2, bi % 2 + (bi / 2) % 5};
  Set sa{boxSys(A)};
  Set sb{boxSys(B)};
  Set inter = sa.intersect(sb);
  for (int64_t x = -1; x <= 8; ++x) {
    for (int64_t y = -1; y <= 8; ++y) {
      bool inA = x >= A.xlo && x <= A.xhi && y >= A.ylo && y <= A.yhi;
      bool inB = x >= B.xlo && x <= B.xhi && y >= B.ylo && y <= B.yhi;
      EXPECT_EQ(inter.contains({x, y}), inA && inB);
    }
  }
}

TEST_P(SetAlgebraSweep, SubsetConsistentWithSubtract) {
  auto [ai, bi] = GetParam();
  Box A{ai % 3, ai % 3 + ai % 5, (ai / 3) % 4, (ai / 3) % 4 + 2};
  Box B{bi % 4, bi % 4 + bi % 3 + 1, bi % 2, bi % 2 + (bi / 2) % 5};
  Set sa{boxSys(A)};
  Set sb{boxSys(B)};
  bool subset = sa.isSubsetOf(sb);
  bool brute = true;
  for (int64_t x = A.xlo; x <= A.xhi; ++x)
    for (int64_t y = A.ylo; y <= A.yhi; ++y)
      if (!(x >= B.xlo && x <= B.xhi && y >= B.ylo && y <= B.yhi))
        brute = false;
  EXPECT_EQ(subset, brute);
}

INSTANTIATE_TEST_SUITE_P(
    Boxes, SetAlgebraSweep,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 8)));

}  // namespace
}  // namespace padfa::pb
