// Tests for the crash-safe summary store (src/store/).
//
// Three layers:
//   1. snapshot codec — encode/decode round trips bit-identically, and
//      the decoder rejects every golden corruption class (bad magic,
//      future version, CRC flip, truncated tail, trailing garbage,
//      malformed records) without crashing or accepting partial data;
//   2. SummaryStore durability — save() is atomic (temp + rename), a
//      corrupt snapshot at the live name is quarantined on open() and
//      the store recovers cold, and a later save() re-creates a clean
//      snapshot while the quarantined bytes survive for post-mortem;
//   3. the whole-corpus property — for every corpus program, plans
//      persisted through a save/load cycle reassemble to a signature
//      bit-identical to a fresh in-process compile.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "corpus/corpus.h"
#include "driver/padfa.h"
#include "driver/plan_signature.h"
#include "store/snapshot.h"
#include "store/summary_store.h"
#include "support/hash.h"

namespace padfa {
namespace {

using store::StoreData;
using store::SummaryStore;

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void writeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// A fresh scratch directory per test, removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/padfa-store-test-XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p ? p : "";
  }
  ~TempDir() {
    if (path.empty()) return;
    std::string cmd = "rm -rf '" + path + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
};

StoreData sampleData() {
  StoreData d;
  d.feasibility["sys:a<=b"] = 0;
  d.feasibility["sys:b<=a"] = 1;
  d.feasibility["sys:inexact"] = 2;
  d.proc_plans[{0x1234, "main"}] = "loop L1 status=Parallel\n";
  d.proc_plans[{0x1234, "work"}] = "loop L2 status=Sequential\n";
  d.responses[{0x1234, "procs"}] = "main\nwork\n";
  d.responses[{0x1234, "telemetry"}] = "degraded_globally=0\n";
  d.responses[{0x1234, "report"}] = "loop  depth  plan\n";
  d.deep_procs[{0xabcdef01, 0}] = std::string("\x01", 1) + "base-bytes";
  d.deep_procs[{0xabcdef01, 1}] = std::string("\x01", 1) + "pred-bytes";
  d.deep_procs[{0xabcdef02, 0}] = "other-proc";
  return d;
}

// ---------------------------------------------------------------------
// 1. Snapshot codec.

TEST(Snapshot, RoundTripIsBitIdentical) {
  StoreData d = sampleData();
  std::string bytes = encodeSnapshot(d);
  StoreData back;
  std::string err;
  ASSERT_TRUE(decodeSnapshot(bytes, back, err)) << err;
  EXPECT_EQ(back.feasibility, d.feasibility);
  EXPECT_EQ(back.proc_plans, d.proc_plans);
  EXPECT_EQ(back.responses, d.responses);
  EXPECT_EQ(back.deep_procs, d.deep_procs);
  // Maps make encode order canonical: re-encoding reproduces the bytes.
  EXPECT_EQ(encodeSnapshot(back), bytes);
}

TEST(Snapshot, EmptyStoreRoundTrips) {
  StoreData d;
  std::string bytes = encodeSnapshot(d);
  StoreData back;
  std::string err;
  ASSERT_TRUE(decodeSnapshot(bytes, back, err)) << err;
  EXPECT_TRUE(back.empty());
}

// Each golden corruption must fail the WHOLE load: decode returns false
// and leaves `out` empty — no partially-trusted records.
void expectRejected(std::string bytes, const char* what) {
  StoreData out;
  out.feasibility["sentinel"] = 1;  // must be cleared on failure
  std::string err;
  EXPECT_FALSE(decodeSnapshot(bytes, out, err)) << what;
  EXPECT_TRUE(out.empty()) << what << ": partial data accepted";
  EXPECT_FALSE(err.empty()) << what << ": no diagnostic";
}

TEST(Snapshot, GoldenCorruptionsAllRejected) {
  const std::string good = encodeSnapshot(sampleData());

  {  // bad magic
    std::string b = good;
    b[0] = 'X';
    expectRejected(b, "bad magic");
  }
  {  // future format version (layout unknown => corruption)
    std::string b = good;
    b[8] = static_cast<char>(store::kFormatVersion + 1);
    expectRejected(b, "future version");
  }
  {  // version 0
    std::string b = good;
    b[8] = 0;
    expectRejected(b, "version zero");
  }
  {  // v1 snapshot (pre-deep-proc layout): one-time cold start
    std::string b = good;
    b[8] = 1;
    expectRejected(b, "stale v1 version");
  }
  {  // CRC flip: flip one payload bit of the first record
    std::string b = good;
    b[12 + 5] ^= 0x40;
    expectRejected(b, "crc mismatch");
  }
  {  // truncated tail: END record cut off
    std::string b = good.substr(0, good.size() - 4);
    expectRejected(b, "truncated tail");
  }
  {  // truncated mid-record (torn write)
    std::string b = good.substr(0, good.size() / 2);
    expectRejected(b, "torn write");
  }
  {  // header only
    expectRejected(good.substr(0, 12), "header only");
    expectRejected(good.substr(0, 7), "partial magic");
    expectRejected("", "empty file");
  }
  {  // trailing garbage after END
    std::string b = good + "junk";
    expectRejected(b, "trailing garbage");
  }
  {  // unknown record type before END
    std::string rec;
    rec.push_back(0x7f);
    rec += std::string(4, '\0');  // len = 0
    uint32_t crc = crc32(rec.data(), rec.size());
    for (int i = 0; i < 4; ++i)
      rec.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
    std::string b = good.substr(0, 12) + rec + good.substr(12);
    expectRejected(b, "unknown record type");
  }
  {  // declared length exceeding the file
    std::string b = good.substr(0, 12);
    b.push_back(static_cast<char>(store::kFeasibilityRecord));
    b += "\xff\xff\xff\x7f";  // len = 0x7fffffff
    expectRejected(b, "oversized length");
  }

  // Deep-proc record corruptions, spliced as hand-built CRC'd records
  // right after the header (the decoder processes them first).
  auto spliceRecord = [&](const std::string& payload) {
    std::string rec;
    rec.push_back(static_cast<char>(store::kDeepProcRecord));
    for (int i = 0; i < 4; ++i)
      rec.push_back(static_cast<char>((payload.size() >> (8 * i)) & 0xff));
    uint32_t crc = crc32(rec);
    crc = crc32(payload.data(), payload.size(), crc);
    rec += payload;
    for (int i = 0; i < 4; ++i)
      rec.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
    return good.substr(0, 12) + rec + good.substr(12);
  };
  {  // payload shorter than the fixed fp+kind prefix
    expectRejected(spliceRecord(std::string(8, '\x11')), "short deep-proc");
  }
  {  // fp+kind present but zero codec bytes
    std::string payload(8, '\x22');
    payload.push_back('\x00');  // kind = base, no value
    expectRejected(spliceRecord(payload), "empty deep-proc value");
  }
  {  // duplicate (fp, kind) key: re-splice an existing record verbatim
    std::string payload;
    uint64_t fp = 0xabcdef01;
    for (int i = 0; i < 8; ++i)
      payload.push_back(static_cast<char>((fp >> (8 * i)) & 0xff));
    payload.push_back('\x00');  // kind = base
    payload += std::string("\x01", 1) + "base-bytes";
    expectRejected(spliceRecord(payload), "duplicate deep-proc key");
  }
}

TEST(Snapshot, DecoderNeverCrashesOnRandomMutations) {
  // Deterministic xorshift fuzz of a valid snapshot: truncations and
  // bit flips. The decoder must either reject or produce data that
  // re-encodes to the (possibly mutated) canonical form — never crash.
  const std::string good = encodeSnapshot(sampleData());
  uint64_t s = 0x9e3779b97f4a7c15ull;
  auto next = [&]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (int iter = 0; iter < 2000; ++iter) {
    std::string b = good;
    int kind = static_cast<int>(next() % 3);
    if (kind == 0) {
      b.resize(next() % (b.size() + 1));  // truncate
    } else if (kind == 1) {
      b[next() % b.size()] ^= static_cast<char>(1u << (next() % 8));
    } else {
      size_t flips = 1 + next() % 8;
      for (size_t f = 0; f < flips; ++f)
        b[next() % b.size()] ^= static_cast<char>(1u << (next() % 8));
    }
    StoreData out;
    std::string err;
    if (decodeSnapshot(b, out, err)) {
      // A mutation that still decodes must be content-preserving
      // modulo the canonical re-encoding (e.g. flips inside ignored
      // padding do not exist in this format, so this almost always
      // means the mutation was undone by a second flip).
      EXPECT_EQ(encodeSnapshot(out), good);
    }
  }
}

// ---------------------------------------------------------------------
// 2. SummaryStore durability + quarantine.

TEST(SummaryStore, EphemeralStoreIsANoOp) {
  SummaryStore store("");
  EXPECT_FALSE(store.persistent());
  EXPECT_FALSE(store.open());
  store.putResponse(1, "report", "x");
  std::string err;
  EXPECT_TRUE(store.save(err)) << err;  // no-op, no file
  EXPECT_EQ(store.stats().saves, 0u);
}

TEST(SummaryStore, SaveThenLoadRestoresRecords) {
  TempDir dir;
  {
    SummaryStore store(dir.path);
    EXPECT_FALSE(store.open());  // cold: no snapshot yet
    store.putProcPlan(42, "main", "sig-main");
    store.putResponse(42, "procs", "main\n");
    store.putResponse(42, "telemetry", "t");
    store.putResponse(42, "report", "table");
    std::string err;
    ASSERT_TRUE(store.save(err)) << err;
  }
  SummaryStore store(dir.path);
  EXPECT_TRUE(store.open());
  EXPECT_EQ(store.getProcPlan(42, "main").value_or(""), "sig-main");
  EXPECT_EQ(store.getResponse(42, "report").value_or(""), "table");
  EXPECT_EQ(store.assembleSignature(42).value_or(""), "sig-maint");
  EXPECT_FALSE(store.getResponse(43, "report").has_value());
  EXPECT_FALSE(store.assembleSignature(43).has_value());
  EXPECT_EQ(store.stats().loaded_plans, 1u);
  EXPECT_EQ(store.stats().loaded_responses, 3u);
}

TEST(SummaryStore, CorruptSnapshotIsQuarantinedAndStoreStartsCold) {
  TempDir dir;
  std::string snap;
  {
    SummaryStore store(dir.path);
    store.putResponse(7, "report", "r");
    std::string err;
    ASSERT_TRUE(store.save(err)) << err;
    snap = store.snapshotPath();
  }
  // Corrupt the live snapshot: torn write (truncate to half).
  std::string bytes = readFile(snap);
  ASSERT_FALSE(bytes.empty());
  writeFile(snap, bytes.substr(0, bytes.size() / 2));

  SummaryStore store(dir.path);
  EXPECT_FALSE(store.open());
  store::StoreStats st = store.stats();
  EXPECT_TRUE(st.load_attempted);
  EXPECT_FALSE(st.loaded);
  EXPECT_EQ(st.quarantined, 1u);
  EXPECT_FALSE(st.load_error.empty());
  EXPECT_EQ(store.recordCount(), 0u) << "partial data served after quarantine";

  // The corrupt bytes moved aside; the live name is gone.
  struct stat s;
  EXPECT_NE(::stat(snap.c_str(), &s), 0);
  EXPECT_EQ(::stat((snap + ".quarantine-1").c_str(), &s), 0);

  // Recovery: the store works cold and a save re-creates a clean file.
  store.putResponse(8, "report", "fresh");
  std::string err;
  ASSERT_TRUE(store.save(err)) << err;
  SummaryStore after(dir.path);
  EXPECT_TRUE(after.open());
  EXPECT_EQ(after.getResponse(8, "report").value_or(""), "fresh");
  // The quarantined bytes survive for post-mortem.
  EXPECT_EQ(::stat((snap + ".quarantine-1").c_str(), &s), 0);
}

TEST(SummaryStore, EveryGoldenCorruptionTriggersQuarantine) {
  const std::string good = store::encodeSnapshot(sampleData());
  struct Case {
    const char* name;
    std::string bytes;
  };
  std::vector<Case> cases;
  {
    std::string b = good;
    b[0] = 'Z';
    cases.push_back({"bad-magic", b});
  }
  {
    std::string b = good;
    b[8] = static_cast<char>(store::kFormatVersion + 3);
    cases.push_back({"future-version", b});
  }
  {
    std::string b = good;
    b[b.size() / 2] ^= 0x01;
    cases.push_back({"bit-flip", b});
  }
  cases.push_back({"truncated", good.substr(0, good.size() - 1)});
  cases.push_back({"garbage", std::string("not a snapshot at all")});

  for (size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE(cases[i].name);
    TempDir dir;
    SummaryStore probe(dir.path);
    writeFile(probe.snapshotPath(), cases[i].bytes);
    SummaryStore store(dir.path);
    EXPECT_FALSE(store.open());
    EXPECT_EQ(store.stats().quarantined, 1u);
    EXPECT_EQ(store.recordCount(), 0u);
  }
}

TEST(SummaryStore, RepeatedCorruptionUsesDistinctQuarantineNames) {
  TempDir dir;
  SummaryStore probe(dir.path);
  const std::string snap = probe.snapshotPath();
  for (int round = 1; round <= 3; ++round) {
    writeFile(snap, "corrupt #" + std::to_string(round));
    SummaryStore store(dir.path);
    EXPECT_FALSE(store.open());
  }
  struct stat s;
  EXPECT_EQ(::stat((snap + ".quarantine-1").c_str(), &s), 0);
  EXPECT_EQ(::stat((snap + ".quarantine-2").c_str(), &s), 0);
  EXPECT_EQ(::stat((snap + ".quarantine-3").c_str(), &s), 0);
}

TEST(SummaryStore, SaveLeavesNoTempFilesBehind) {
  TempDir dir;
  SummaryStore store(dir.path);
  store.putResponse(1, "report", "x");
  std::string err;
  ASSERT_TRUE(store.save(err)) << err;
  ASSERT_TRUE(store.save(err)) << err;  // overwrite path exercised too
  // Directory holds exactly the live snapshot.
  std::string find = "ls -A '" + dir.path + "'";
  FILE* p = ::popen(find.c_str(), "r");
  ASSERT_NE(p, nullptr);
  std::string listing;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), p)) listing += buf;
  ::pclose(p);
  EXPECT_EQ(listing, "summary.snap\n");
}

// ---------------------------------------------------------------------
// 3. Whole-corpus persistence property: plans that pass through a
// save/load cycle reassemble bit-identically to a cold compile.

TEST(StoreCorpusProperty, PersistedPlansAreBitIdenticalAcrossReload) {
  TempDir dir;
  std::vector<std::pair<uint64_t, std::string>> expected;  // hash, signature
  {
    SummaryStore store(dir.path);
    store.open();
    for (const CorpusEntry& entry : corpus()) {
      SCOPED_TRACE(entry.name);
      std::string source = instantiate(entry);
      DiagEngine diags;
      auto cp = compileSource(source, diags);
      ASSERT_TRUE(cp) << diags.dump();
      uint64_t hash = contentHash64(source);
      std::string procs;
      for (const auto& p : cp->program->procs) {
        std::string name(cp->interner().str(p->name));
        store.putProcPlan(hash, name, procPlanSignature(*cp, p.get()));
        procs += name;
        procs += '\n';
      }
      store.putResponse(hash, "procs", std::move(procs));
      store.putResponse(hash, "telemetry", planTelemetrySignature(*cp));
      expected.emplace_back(hash, planSignature(*cp));
    }
    std::string err;
    ASSERT_TRUE(store.save(err)) << err;
  }

  // Reload in a fresh store object (fresh process stand-in) and compare
  // the reassembled signature against the in-process compile, for every
  // corpus program.
  SummaryStore store(dir.path);
  ASSERT_TRUE(store.open());
  for (const auto& [hash, signature] : expected) {
    auto assembled = store.assembleSignature(hash);
    ASSERT_TRUE(assembled.has_value());
    EXPECT_EQ(*assembled, signature);
  }
}

}  // namespace
}  // namespace padfa
