// Unit tests for the interprocedural change-impact layer (src/ipa/):
// call-graph structure and closures, canonical content fingerprints,
// the deep summary codec, and end-to-end incremental replay on
// hand-written multi-procedure programs.
#include <gtest/gtest.h>

#include "driver/plan_signature.h"
#include "ipa/callgraph.h"
#include "ipa/fingerprint.h"
#include "ipa/incremental.h"
#include "ipa/ipa_export.h"
#include "store/deep_codec.h"
#include "store/summary_store.h"

namespace padfa {
namespace {

// A diamond (main -> a, b -> c) plus an orphan procedure d that nobody
// calls. c is the shared leaf whose edit must dirty everything live.
const char* kDiamond = R"(proc c(real v[n], int n) {
  for i = 0 to n - 1 {
    v[i] = v[i] + 1.0;
  }
}
proc a(real v[n], int n) {
  c(v, n);
}
proc b(real v[n], int n) {
  c(v, n);
  for i = 0 to n - 1 {
    v[i] = v[i] * 2.0;
  }
}
proc d(real v[n], int n) {
  for i = 0 to n - 1 {
    v[i] = 0.0;
  }
}
proc main() {
  real x[16];
  for i = 0 to 15 {
    x[i] = noise(i);
  }
  a(x, 16);
  b(x, 16);
  sink(x[3]);
}
)";

std::optional<CompiledProgram> compile(const std::string& src) {
  DiagEngine diags;
  auto cp = compileSource(src, diags);
  EXPECT_TRUE(cp.has_value()) << diags.dump();
  return cp;
}

const ProcDecl* procNamed(const Program& p, std::string_view name) {
  const ProcDecl* d = p.findProc(name);
  EXPECT_NE(d, nullptr) << name;
  return d;
}

TEST(CallGraph, DiamondStructure) {
  auto cp = compile(kDiamond);
  ASSERT_TRUE(cp);
  const Program& prog = *cp->program;
  ipa::CallGraph cg = ipa::CallGraph::build(prog);
  const ProcDecl* a = procNamed(prog, "a");
  const ProcDecl* b = procNamed(prog, "b");
  const ProcDecl* c = procNamed(prog, "c");
  const ProcDecl* d = procNamed(prog, "d");
  const ProcDecl* main_p = procNamed(prog, "main");

  ASSERT_EQ(cg.procs().size(), 5u);
  EXPECT_EQ(cg.callees(main_p), (std::vector<const ProcDecl*>{a, b}));
  EXPECT_EQ(cg.callees(a), (std::vector<const ProcDecl*>{c}));
  EXPECT_EQ(cg.callees(b), (std::vector<const ProcDecl*>{c}));
  EXPECT_TRUE(cg.callees(c).empty());
  EXPECT_TRUE(cg.callees(d).empty());
  EXPECT_EQ(cg.callers(c), (std::vector<const ProcDecl*>{a, b}));
  EXPECT_EQ(cg.callers(a), (std::vector<const ProcDecl*>{main_p}));
  EXPECT_TRUE(cg.callers(main_p).empty());
  EXPECT_EQ(cg.callSites(main_p, a), 1u);
  EXPECT_EQ(cg.callSites(a, c), 1u);
  EXPECT_EQ(cg.callSites(c, a), 0u);

  // Acyclic program: every SCC is a singleton, ids callee-before-caller.
  EXPECT_EQ(cg.sccCount(), 5u);
  EXPECT_LT(cg.sccOf(c), cg.sccOf(a));
  EXPECT_LT(cg.sccOf(c), cg.sccOf(b));
  EXPECT_LT(cg.sccOf(a), cg.sccOf(main_p));
  EXPECT_LT(cg.sccOf(b), cg.sccOf(main_p));

  auto order = cg.bottomUpOrder();
  ASSERT_EQ(order.size(), 5u);
  auto pos = [&order](const ProcDecl* p) {
    for (size_t i = 0; i < order.size(); ++i)
      if (order[i] == p) return i;
    return order.size();
  };
  EXPECT_LT(pos(c), pos(a));
  EXPECT_LT(pos(c), pos(b));
  EXPECT_LT(pos(a), pos(main_p));

  EXPECT_EQ(cg.reachableFrom(main_p),
            (std::set<const ProcDecl*>{main_p, a, b, c}));
  EXPECT_EQ(cg.reachableFrom(a), (std::set<const ProcDecl*>{a, c}));

  // Editing the shared leaf dirties both paths up to main but not the
  // orphan; editing the orphan dirties only itself.
  EXPECT_EQ(cg.ancestorClosure({c}),
            (std::set<const ProcDecl*>{c, a, b, main_p}));
  EXPECT_EQ(cg.ancestorClosure({d}), (std::set<const ProcDecl*>{d}));
  EXPECT_EQ(cg.ancestorClosure({main_p}),
            (std::set<const ProcDecl*>{main_p}));
}

TEST(Fingerprint, InsensitiveToCommentsWhitespaceAndDeclPosition) {
  auto cp1 = compile(kDiamond);
  ASSERT_TRUE(cp1);
  // Same program with comment noise, extra whitespace, and main's
  // declarations swapped (MF hoists declarations, so order inside the
  // block is semantically irrelevant — and invisible to canonical text).
  std::string noisy(kDiamond);
  noisy = "// leading comment\n" + noisy;
  size_t pos = noisy.find("real x[16];");
  ASSERT_NE(pos, std::string::npos);
  noisy.insert(pos, "// about to declare\n  ");
  noisy += "\n// trailing comment\n";
  auto cp2 = compile(noisy);
  ASSERT_TRUE(cp2);

  ipa::CallGraph cg1 = ipa::CallGraph::build(*cp1->program);
  ipa::CallGraph cg2 = ipa::CallGraph::build(*cp2->program);
  auto fp1 = ipa::fingerprintProgram(*cp1->program, cg1);
  auto fp2 = ipa::fingerprintProgram(*cp2->program, cg2);
  for (const char* name : {"a", "b", "c", "d", "main"}) {
    const ProcDecl* p1 = procNamed(*cp1->program, name);
    const ProcDecl* p2 = procNamed(*cp2->program, name);
    EXPECT_EQ(fp1.local.at(p1), fp2.local.at(p2)) << name;
    EXPECT_EQ(fp1.deep.at(p1), fp2.deep.at(p2)) << name;
  }
}

TEST(Fingerprint, DeepPropagatesToAncestorsOnly) {
  auto cp1 = compile(kDiamond);
  ASSERT_TRUE(cp1);
  std::string edited(kDiamond);
  size_t pos = edited.find("v[i] = v[i] + 1.0;");  // inside c
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 18, "v[i] = v[i] + 3.0;");
  auto cp2 = compile(edited);
  ASSERT_TRUE(cp2);

  ipa::CallGraph cg1 = ipa::CallGraph::build(*cp1->program);
  ipa::CallGraph cg2 = ipa::CallGraph::build(*cp2->program);
  auto fp1 = ipa::fingerprintProgram(*cp1->program, cg1);
  auto fp2 = ipa::fingerprintProgram(*cp2->program, cg2);
  auto local_changed = [&](const char* name) {
    return fp1.local.at(procNamed(*cp1->program, name)) !=
           fp2.local.at(procNamed(*cp2->program, name));
  };
  auto deep_changed = [&](const char* name) {
    return fp1.deep.at(procNamed(*cp1->program, name)) !=
           fp2.deep.at(procNamed(*cp2->program, name));
  };
  EXPECT_TRUE(local_changed("c"));
  EXPECT_FALSE(local_changed("a"));
  EXPECT_FALSE(local_changed("b"));
  EXPECT_FALSE(local_changed("d"));
  EXPECT_FALSE(local_changed("main"));
  // Deep fingerprints close over callees: every transitive caller of c
  // shifts, the orphan does not.
  EXPECT_TRUE(deep_changed("c"));
  EXPECT_TRUE(deep_changed("a"));
  EXPECT_TRUE(deep_changed("b"));
  EXPECT_TRUE(deep_changed("main"));
  EXPECT_FALSE(deep_changed("d"));
}

TEST(DeepCodec, RoundTripThroughEphemeralStore) {
  store::SummaryStore st("");  // ephemeral
  DiagEngine diags;
  ipa::IncrementalInfo seed;
  auto cp1 = ipa::compileSourceIncremental(kDiamond, diags,
                                           BudgetLimits::defaults(), st,
                                           &seed);
  ASSERT_TRUE(cp1.has_value()) << diags.dump();
  EXPECT_TRUE(seed.incremental);
  EXPECT_EQ(seed.procs_replayed, 0u);  // store was empty
  EXPECT_EQ(seed.procs_analyzed, 5u);

  // Every procedure must now have deep records for both kinds, and they
  // must decode against a freshly parsed program.
  DiagEngine d2;
  auto fresh = compileSource(kDiamond, d2);
  ASSERT_TRUE(fresh.has_value());
  ipa::CallGraph cg = ipa::CallGraph::build(*fresh->program);
  auto fps = ipa::fingerprintProgram(*fresh->program, cg);
  for (const ProcDecl* proc : cg.procs()) {
    for (uint8_t kind : {store::kDeepKindBase, store::kDeepKindPred}) {
      auto rec = st.getDeepProc(fps.deep.at(proc), kind);
      ASSERT_TRUE(rec.has_value())
          << fresh->interner().str(proc->name) << " kind " << int(kind);
      std::vector<LoopPlan> plans;
      std::string err;
      EXPECT_TRUE(store::decodeDeepProcPlans(*fresh->program, *proc, *rec,
                                             plans, err))
          << err;
      EXPECT_EQ(plans.size(), store::procLoopsInOrder(*proc).size());
      VarTable vt(&fresh->program->interner);
      RegionSummary summary;
      EXPECT_TRUE(store::decodeDeepProcSummary(*fresh->program, *proc, *rec,
                                               vt, summary, err))
          << err;

      // Any single-byte corruption must be rejected, never half-applied.
      std::string bad = *rec;
      bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x41);
      std::vector<LoopPlan> bad_plans;
      bool ok = store::decodeDeepProcPlans(*fresh->program, *proc, bad,
                                           bad_plans, err);
      if (ok) continue;  // corruption may land in an unread reason byte
      EXPECT_TRUE(bad_plans.empty());
      EXPECT_FALSE(err.empty());
    }
  }

  // Truncation must always fail.
  const ProcDecl* main_p = procNamed(*fresh->program, "main");
  auto rec = st.getDeepProc(fps.deep.at(main_p), store::kDeepKindPred);
  ASSERT_TRUE(rec.has_value());
  std::string err;
  std::vector<LoopPlan> plans;
  EXPECT_FALSE(store::decodeDeepProcPlans(
      *fresh->program, *main_p,
      std::string_view(rec->data(), rec->size() / 2), plans, err));
  // Binding a record to the wrong procedure must fail too.
  const ProcDecl* a = procNamed(*fresh->program, "a");
  EXPECT_FALSE(
      store::decodeDeepProcPlans(*fresh->program, *a, *rec, plans, err));
}

TEST(Incremental, FullReplayIsByteIdenticalToCold) {
  store::SummaryStore st("");
  DiagEngine diags;
  auto seed = ipa::compileSourceIncremental(kDiamond, diags,
                                            BudgetLimits::defaults(), st);
  ASSERT_TRUE(seed.has_value());

  DiagEngine d2;
  ipa::IncrementalInfo info;
  auto warm = ipa::compileSourceIncremental(kDiamond, d2,
                                            BudgetLimits::defaults(), st,
                                            &info);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(info.procs_replayed, 5u);
  EXPECT_EQ(info.procs_analyzed, 0u);
  EXPECT_TRUE(info.dirty.empty());

  DiagEngine d3;
  auto cold = compileSource(kDiamond, d3);
  ASSERT_TRUE(cold.has_value());
  EXPECT_EQ(planSignature(*warm), planSignature(*cold));
  EXPECT_EQ(renderPlanReport(*warm), renderPlanReport(*cold));
}

TEST(Incremental, LeafEditReanalyzesExactlyTheAncestorClosure) {
  store::SummaryStore st("");
  DiagEngine diags;
  auto seed = ipa::compileSourceIncremental(kDiamond, diags,
                                            BudgetLimits::defaults(), st);
  ASSERT_TRUE(seed.has_value());

  std::string edited(kDiamond);
  size_t pos = edited.find("v[i] = v[i] + 1.0;");  // inside c
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 18, "v[i] = v[i] + 3.0;");

  DiagEngine d2;
  ipa::IncrementalInfo info;
  auto inc = ipa::compileSourceIncremental(edited, d2,
                                           BudgetLimits::defaults(), st,
                                           &info);
  ASSERT_TRUE(inc.has_value());
  // Dirty = c plus its transitive callers (program order: c, a, b,
  // main); the orphan d replays.
  EXPECT_EQ(info.dirty,
            (std::vector<std::string>{"c", "a", "b", "main"}));
  EXPECT_EQ(info.replayed, (std::vector<std::string>{"d"}));

  DiagEngine d3;
  auto cold = compileSource(edited, d3);
  ASSERT_TRUE(cold.has_value());
  EXPECT_EQ(planSignature(*inc), planSignature(*cold));
}

TEST(Incremental, GovernedBudgetBypassesReplay) {
  store::SummaryStore st("");
  DiagEngine diags;
  auto seed = ipa::compileSourceIncremental(kDiamond, diags,
                                            BudgetLimits::defaults(), st);
  ASSERT_TRUE(seed.has_value());

  BudgetLimits governed;
  governed.deadline_seconds = 3600;  // finite => governed, never fires
  DiagEngine d2;
  ipa::IncrementalInfo info;
  auto cp = ipa::compileSourceIncremental(kDiamond, d2, governed, st, &info);
  ASSERT_TRUE(cp.has_value());
  EXPECT_FALSE(info.incremental);
  EXPECT_EQ(info.procs_analyzed, info.procs_total);
}

TEST(IpaExport, DeterministicDotAndJson) {
  auto cp = compile(kDiamond);
  ASSERT_TRUE(cp);
  ipa::CallGraph cg = ipa::CallGraph::build(*cp->program);
  auto fps = ipa::fingerprintProgram(*cp->program, cg);
  std::string dot = ipa::callGraphToDot(cg, fps, *cp->program);
  std::string json = ipa::callGraphToJson(cg, fps, *cp->program);
  // Determinism: a second build renders byte-identically.
  ipa::CallGraph cg2 = ipa::CallGraph::build(*cp->program);
  auto fps2 = ipa::fingerprintProgram(*cp->program, cg2);
  EXPECT_EQ(dot, ipa::callGraphToDot(cg2, fps2, *cp->program));
  EXPECT_EQ(json, ipa::callGraphToJson(cg2, fps2, *cp->program));
  // Structure smoke: edges and SCC clusters are present.
  EXPECT_NE(dot.find("\"main\" -> \"a\""), std::string::npos) << dot;
  EXPECT_NE(dot.find("subgraph cluster_scc0"), std::string::npos);
  EXPECT_NE(json.find("\"bottom_up\": "), std::string::npos);
  EXPECT_NE(json.find("\"callees\": [{\"name\": \"c\", \"sites\": 1}"),
            std::string::npos)
      << json;
}

}  // namespace
}  // namespace padfa
