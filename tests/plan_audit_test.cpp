// Tentpole end-to-end certification: for every corpus program, the static
// PlanAuditor and the dynamic race oracle must both agree with the
// analysis's parallelization plans — and both must have teeth, i.e. catch
// a deliberately falsified plan.
#include <gtest/gtest.h>

#include "audit/plan_audit.h"
#include "audit/race_oracle.h"
#include "corpus/corpus.h"
#include "driver/padfa.h"

namespace padfa {
namespace {

CompiledProgram compileEntry(const CorpusEntry& e, int scale = 1) {
  DiagEngine diags;
  auto cp = compileSource(instantiate(e, scale), diags);
  EXPECT_TRUE(cp.has_value()) << e.name << ": " << diags.dump();
  return std::move(*cp);
}

CompiledProgram compile(const std::string& src) {
  DiagEngine diags;
  auto cp = compileSource(src, diags);
  EXPECT_TRUE(cp.has_value()) << diags.dump();
  return std::move(*cp);
}

std::string notesOf(const AuditReport& rep) {
  std::string out;
  for (const auto& la : rep.loops) {
    out += la.loop->loop_id + " [" + std::string(auditVerdictName(la.verdict)) +
           "]";
    for (const auto& n : la.notes) out += "\n    " + n;
    out += '\n';
  }
  return out;
}

class CorpusAudit : public ::testing::TestWithParam<int> {};

// The auditor independently re-derives every Parallel / RuntimeTest plan
// of both analyses; none may come back unsound.
TEST_P(CorpusAudit, NoPlanIsUnsound) {
  const CorpusEntry& e = corpus()[static_cast<size_t>(GetParam())];
  CompiledProgram cp = compileEntry(e);
  for (const AnalysisResult* ar : {&cp.base, &cp.pred}) {
    DiagEngine diags;
    AuditReport rep = auditPlans(*cp.program, *ar, diags);
    EXPECT_TRUE(rep.clean())
        << e.name << (ar == &cp.base ? " (base)" : " (pred)") << ":\n"
        << notesOf(rep) << diags.dump();
    EXPECT_EQ(diags.countWithId("audit-unsound"), 0u) << e.name;
  }
}

// The dynamic oracle shadows every audited loop's memory footprint during
// a sequential run; no plan may exhibit a cross-iteration violation.
TEST_P(CorpusAudit, OracleObservesNoViolation) {
  const CorpusEntry& e = corpus()[static_cast<size_t>(GetParam())];
  CompiledProgram cp = compileEntry(e);
  RaceOracle oracle(*cp.program, cp.pred);
  InterpOptions opt;
  opt.plans = &cp.pred;
  opt.race = &oracle;
  execute(*cp.program, opt);
  EXPECT_EQ(oracle.violationCount(), 0u)
      << e.name << ":\n"
      << oracle.report(cp.program->interner);
}

// Agreement: a loop the auditor certified (Independent / DischargedTest)
// must also be clean dynamically, and vice versa — the static and dynamic
// checkers may be conservative but must never contradict each other.
TEST_P(CorpusAudit, AuditorAndOracleAgree) {
  const CorpusEntry& e = corpus()[static_cast<size_t>(GetParam())];
  CompiledProgram cp = compileEntry(e);
  DiagEngine diags;
  AuditReport rep = auditPlans(*cp.program, cp.pred, diags);
  RaceOracle oracle(*cp.program, cp.pred);
  InterpOptions opt;
  opt.plans = &cp.pred;
  opt.race = &oracle;
  execute(*cp.program, opt);
  std::map<const ForStmt*, bool> dynamic_violation;
  for (const auto& v : oracle.verdicts())
    if (v.executed) dynamic_violation[v.loop] = v.violation;
  for (const auto& la : rep.loops) {
    auto it = dynamic_violation.find(la.loop);
    if (it == dynamic_violation.end()) continue;  // loop never ran
    if (la.verdict == AuditVerdict::Independent ||
        la.verdict == AuditVerdict::DischargedTest ||
        la.verdict == AuditVerdict::DischargedSync) {
      EXPECT_FALSE(it->second)
          << e.name << ": auditor certified " << la.loop->loop_id
          << " but the oracle saw a violation:\n"
          << oracle.report(cp.program->interner);
    }
    if (it->second) {
      EXPECT_EQ(la.verdict, AuditVerdict::Unsound)
          << e.name << ": oracle violation on " << la.loop->loop_id
          << " but auditor said " << auditVerdictName(la.verdict);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, CorpusAudit, ::testing::Range(0, 33),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return corpus()[static_cast<size_t>(info.param)]
                               .name;
                         });

// ----------------------------------------------------------- teeth ----

const char* kRecurrence = R"(
proc main() {
  real a[64];
  for i = 1 to 63 {
    a[i] = a[i - 1] + 1.0;
  }
  sink(a[63]);
}
)";

// A falsified plan (a genuine recurrence forced Parallel) must be caught
// by the static auditor...
TEST(PlanAuditTeeth, AuditorCatchesFalsifiedPlan) {
  CompiledProgram cp = compile(kRecurrence);
  AnalysisResult forged = cp.pred;
  int forced = 0;
  // The constant-distance recurrence is claimed by the Doacross upgrade,
  // so the forged plan strips the syncs too.
  for (auto& [loop, plan] : forged.plans) {
    if (plan.status == LoopStatus::Sequential ||
        plan.status == LoopStatus::Doacross) {
      plan.status = LoopStatus::Parallel;
      plan.reason.clear();
      plan.syncs.clear();
      ++forced;
    }
  }
  ASSERT_GT(forced, 0);
  DiagEngine diags;
  AuditReport rep = auditPlans(*cp.program, forged, diags);
  EXPECT_EQ(rep.count(AuditVerdict::Unsound), 1u) << notesOf(rep);
  EXPECT_GE(diags.countWithId("audit-unsound"), 1u) << diags.dump();
}

// ...and by the dynamic oracle.
TEST(PlanAuditTeeth, OracleCatchesFalsifiedPlan) {
  CompiledProgram cp = compile(kRecurrence);
  AnalysisResult forged = cp.pred;
  for (auto& [loop, plan] : forged.plans)
    if (plan.status == LoopStatus::Sequential ||
        plan.status == LoopStatus::Doacross) {
      plan.status = LoopStatus::Parallel;
      plan.syncs.clear();
    }
  RaceOracle oracle(*cp.program, forged);
  InterpOptions opt;
  opt.plans = &forged;
  opt.race = &oracle;
  execute(*cp.program, opt);
  EXPECT_GE(oracle.violationCount(), 1u)
      << oracle.report(cp.program->interner);
}

// A clean doall with a guard is certified Independent.
TEST(PlanAuditTeeth, CertifiesGuardedDoall) {
  CompiledProgram cp = compile(R"(
proc main() {
  real a[64];
  for i = 0 to 63 {
    if (i > 3) { a[i] = 1.0; }
    else { a[i] = 2.0; }
  }
  sink(a[8]);
}
)");
  DiagEngine diags;
  AuditReport rep = auditPlans(*cp.program, cp.pred, diags);
  ASSERT_EQ(rep.auditedCount(), 1u);
  EXPECT_EQ(rep.loops[0].verdict, AuditVerdict::Independent) << notesOf(rep);
  EXPECT_GT(rep.loops[0].pairs_independent, 0u);
}

// Reshape through a call: the callee views the 2-D array as 1-D; the
// linearized conflict system still certifies column-disjointness.
TEST(PlanAuditTeeth, LinearizationHandlesReshape) {
  CompiledProgram cp = compile(R"(
proc fill(real v[n], int n) {
  for j = 0 to n - 1 {
    v[j] = 1.0;
  }
}
proc main() {
  real a[8, 8];
  for i = 0 to 7 {
    a[i, 0] = 2.0;
  }
  fill(a, 64);
  sink(a[3, 0]);
}
)");
  DiagEngine diags;
  AuditReport rep = auditPlans(*cp.program, cp.pred, diags);
  for (const auto& la : rep.loops)
    EXPECT_NE(la.verdict, AuditVerdict::Unsound)
        << la.loop->loop_id << "\n"
        << notesOf(rep);
}

}  // namespace
}  // namespace padfa
