// Corpus-wide property test for incremental re-analysis: for every
// corpus program and several single-procedure edit classes, the
// incremental compile must (a) re-analyze exactly the static ancestor
// closure of the changed procedures, replaying everything else from the
// persisted deep summaries, and (b) produce plan signatures
// byte-identical to a cold, ungoverned compile of the edited source.
#include <gtest/gtest.h>

#include <regex>

#include "corpus/corpus.h"
#include "driver/plan_signature.h"
#include "ipa/callgraph.h"
#include "ipa/fingerprint.h"
#include "ipa/incremental.h"
#include "store/summary_store.h"

namespace padfa {
namespace {

std::optional<CompiledProgram> compile(const std::string& src) {
  DiagEngine diags;
  auto cp = compileSource(src, diags);
  EXPECT_TRUE(cp.has_value()) << diags.dump();
  return cp;
}

/// Names of procedures whose canonical text differs between the two
/// programs (keyed by name; procedures present in only one side count
/// as changed).
std::set<std::string> changedProcs(const Program& before,
                                   const Program& after) {
  auto locals = [](const Program& p) {
    ipa::CallGraph cg = ipa::CallGraph::build(p);
    auto fps = ipa::fingerprintProgram(p, cg);
    std::map<std::string, uint64_t> out;
    for (const auto& proc : p.procs)
      out[std::string(p.interner.str(proc->name))] =
          fps.local.at(proc.get());
    return out;
  };
  auto a = locals(before), b = locals(after);
  std::set<std::string> changed;
  for (const auto& [name, fp] : b)
    if (!a.count(name) || a.at(name) != fp) changed.insert(name);
  for (const auto& [name, fp] : a)
    if (!b.count(name)) changed.insert(name);
  return changed;
}

/// The expected dirty set: the static ancestor closure of `changed` on
/// the edited program's call graph, as names in program order.
std::vector<std::string> expectedDirty(const Program& after,
                                       const std::set<std::string>& changed) {
  ipa::CallGraph cg = ipa::CallGraph::build(after);
  std::set<const ProcDecl*> seed;
  for (const auto& proc : after.procs)
    if (changed.count(std::string(after.interner.str(proc->name))))
      seed.insert(proc.get());
  std::set<const ProcDecl*> closure = cg.ancestorClosure(seed);
  std::vector<std::string> names;
  for (const ProcDecl* p : cg.procs())
    if (closure.count(p))
      names.emplace_back(after.interner.str(p->name));
  return names;
}

/// Seed an ephemeral store from `original`, compile `edited`
/// incrementally against it, and assert the two core properties.
void checkEdit(const std::string& original, const std::string& edited,
               const std::string& label) {
  store::SummaryStore st("");
  DiagEngine d1;
  auto seed = ipa::compileSourceIncremental(original, d1,
                                            BudgetLimits::defaults(), st);
  ASSERT_TRUE(seed.has_value()) << label << "\n" << d1.dump();

  DiagEngine d2;
  ipa::IncrementalInfo info;
  auto inc = ipa::compileSourceIncremental(edited, d2,
                                           BudgetLimits::defaults(), st,
                                           &info);
  ASSERT_TRUE(inc.has_value()) << label << "\n" << d2.dump();
  ASSERT_TRUE(info.incremental) << label;

  DiagEngine d3;
  auto cold = compileSource(edited, d3);
  ASSERT_TRUE(cold.has_value()) << label << "\n" << d3.dump();

  // (a) minimal invalidation: dirty == static ancestor closure of the
  // procedures whose canonical text changed.
  auto changed = changedProcs(*seed->program, *inc->program);
  EXPECT_EQ(info.dirty, expectedDirty(*inc->program, changed)) << label;
  EXPECT_EQ(info.procs_replayed + info.procs_analyzed, info.procs_total)
      << label;

  // (b) cold equivalence, byte for byte.
  EXPECT_EQ(planSignature(*inc), planSignature(*cold)) << label;
}

/// Insert a fresh (unused) declaration at the top of `proc`'s body — a
/// canonical-text change that leaves every plan of the procedure intact
/// but shifts program-wide decl uids for everything declared after it.
std::string bodyEdit(const std::string& src, const std::string& proc,
                     bool* ok) {
  size_t p = src.find("proc " + proc);
  *ok = p != std::string::npos;
  if (!*ok) return src;
  size_t brace = src.find('{', p);
  *ok = brace != std::string::npos;
  if (!*ok) return src;
  std::string out = src;
  out.insert(brace + 1, "\n  int qz917;");
  return out;
}

/// Rename the first scalar parameter of `proc` throughout the
/// procedure's chunk of the source (word-boundary match).
std::string signatureEdit(const std::string& src, const Program& prog,
                          const ProcDecl& proc, bool* ok) {
  *ok = false;
  const VarDecl* param = nullptr;
  for (const auto& pd : proc.params)
    if (!pd->isArray()) {
      param = pd.get();
      break;
    }
  if (!param) return src;
  std::string pname(prog.interner.str(proc.name));
  std::string vname(prog.interner.str(param->name));
  size_t begin = src.find("proc " + pname);
  if (begin == std::string::npos) return src;
  size_t end = src.find("\nproc ", begin);
  if (end == std::string::npos) end = src.size();
  std::string chunk = src.substr(begin, end - begin);
  std::regex word("\\b" + vname + "\\b");
  std::string renamed = std::regex_replace(chunk, word, vname + "_r9");
  if (renamed == chunk) return src;
  *ok = true;
  return src.substr(0, begin) + renamed + src.substr(end);
}

class CorpusIncremental : public ::testing::TestWithParam<int> {};

TEST_P(CorpusIncremental, EditClassesMatchColdRun) {
  const CorpusEntry& e = corpus()[static_cast<size_t>(GetParam())];
  const std::string original = instantiate(e);
  auto cp = compile(original);
  ASSERT_TRUE(cp);

  // Comment-only edit: canonical text of every procedure is unchanged,
  // so nothing may be re-analyzed.
  {
    std::string commented = "// incremental-test comment edit\n" + original;
    store::SummaryStore st("");
    DiagEngine d1;
    auto seed = ipa::compileSourceIncremental(original, d1,
                                              BudgetLimits::defaults(), st);
    ASSERT_TRUE(seed.has_value()) << e.name;
    DiagEngine d2;
    ipa::IncrementalInfo info;
    auto inc = ipa::compileSourceIncremental(commented, d2,
                                             BudgetLimits::defaults(), st,
                                             &info);
    ASSERT_TRUE(inc.has_value()) << e.name;
    EXPECT_EQ(info.procs_replayed, info.procs_total) << e.name;
    EXPECT_TRUE(info.dirty.empty()) << e.name;
    DiagEngine d3;
    auto cold = compileSource(commented, d3);
    ASSERT_TRUE(cold.has_value());
    EXPECT_EQ(planSignature(*inc), planSignature(*cold)) << e.name;
  }

  // Body edit of every procedure in turn: the dirty set must be that
  // procedure plus its transitive callers, nothing more.
  for (const auto& proc : cp->program->procs) {
    std::string pname(cp->interner().str(proc->name));
    bool ok = false;
    std::string edited = bodyEdit(original, pname, &ok);
    ASSERT_TRUE(ok) << e.name << "/" << pname;
    checkEdit(original, edited, e.name + "/body-edit/" + pname);
  }

  // Signature edit (parameter rename) where a procedure has a scalar
  // parameter to rename.
  for (const auto& proc : cp->program->procs) {
    bool ok = false;
    std::string edited = signatureEdit(original, *cp->program, *proc, &ok);
    if (!ok) continue;
    checkEdit(original, edited,
              e.name + "/signature-edit/" +
                  std::string(cp->interner().str(proc->name)));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, CorpusIncremental,
                         ::testing::Range(0, static_cast<int>(
                                                 corpus().size())),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return corpus()[static_cast<size_t>(info.param)]
                               .name;
                         });

}  // namespace
}  // namespace padfa
