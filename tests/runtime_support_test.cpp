// Unit tests for the runtime substrate: thread pool scheduling, iteration
// splitting, and the ELPD collector's verdict logic in isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <numeric>

#include "runtime/elpd.h"
#include "runtime/scheduler.h"
#include "runtime/thread_pool.h"

namespace padfa {
namespace {

TEST(SplitIterations, EvenSplit) {
  auto parts = splitIterations(0, 99, 1, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], (std::pair<int64_t, int64_t>{0, 24}));
  EXPECT_EQ(parts[3], (std::pair<int64_t, int64_t>{75, 99}));
}

TEST(SplitIterations, RemainderGoesToFirstParts) {
  auto parts = splitIterations(0, 9, 1, 4);  // 10 iters over 4 parts
  int64_t total = 0;
  for (auto [lo, hi] : parts)
    if (lo <= hi) total += hi - lo + 1;
  EXPECT_EQ(total, 10);
  EXPECT_EQ(parts[0].second - parts[0].first + 1, 3);  // 3,3,2,2
}

TEST(SplitIterations, MorePartsThanIterations) {
  auto parts = splitIterations(5, 6, 1, 8);
  int nonempty = 0;
  for (auto [lo, hi] : parts)
    if (lo <= hi) ++nonempty;
  EXPECT_EQ(nonempty, 2);
}

TEST(SplitIterations, StridedSplitCoversExactly) {
  auto parts = splitIterations(1, 20, 3, 3);  // 1,4,7,10,13,16,19
  std::vector<int64_t> covered;
  for (auto [lo, hi] : parts)
    for (int64_t i = lo; i <= hi; i += 3) covered.push_back(i);
  EXPECT_EQ(covered, (std::vector<int64_t>{1, 4, 7, 10, 13, 16, 19}));
  // Chunk boundaries must stay on the stride grid.
  for (auto [lo, hi] : parts)
    if (lo <= hi) {
      EXPECT_EQ((lo - 1) % 3, 0);
    }
}

TEST(SplitIterations, EmptyRange) {
  auto parts = splitIterations(5, 4, 1, 4);
  for (auto [lo, hi] : parts) EXPECT_GT(lo, hi);
}

TEST(SplitIterations, NegativeStepCoversExactly) {
  auto parts = splitIterations(20, 1, -3, 3);  // 20,17,14,11,8,5,2
  std::vector<int64_t> covered;
  for (auto [lo, hi] : parts)
    for (int64_t i = lo; i >= hi; i -= 3) covered.push_back(i);
  EXPECT_EQ(covered, (std::vector<int64_t>{20, 17, 14, 11, 8, 5, 2}));
}

TEST(SplitIterations, NegativeStepEmptyRange) {
  // The range runs against the step direction: every part is the
  // direction-appropriate empty marker (first < last).
  auto parts = splitIterations(3, 5, -1, 4);
  for (auto [lo, hi] : parts) EXPECT_LT(lo, hi);
}

TEST(SplitIterations, ZeroStepYieldsAllEmpty) {
  auto parts = splitIterations(0, 10, 0, 3);
  for (auto [lo, hi] : parts) EXPECT_GT(lo, hi);
}

TEST(SplitIterations, FullInt64DomainDoesNotOverflow) {
  const int64_t kMin = std::numeric_limits<int64_t>::min();
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  auto parts = splitIterations(kMin, kMax, 1, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts.front().first, kMin);
  EXPECT_EQ(parts.back().second, kMax);
  for (size_t i = 1; i < parts.size(); ++i)
    EXPECT_EQ(parts[i].first, parts[i - 1].second + 1);
}

TEST(SplitIterations, BoundsNearInt64MaxStayOnGrid) {
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  auto parts = splitIterations(kMax - 20, kMax - 1, 3, 4);
  // Walk without ever incrementing past the bound (i += 3 would
  // overflow next to INT64_MAX).
  auto walk = [](int64_t lo, int64_t hi, std::vector<int64_t>& out) {
    for (int64_t i = lo; i <= hi; i += 3) {
      out.push_back(i);
      if (i > hi - 3) break;
    }
  };
  std::vector<int64_t> covered;
  for (auto [lo, hi] : parts)
    if (lo <= hi) walk(lo, hi, covered);
  std::vector<int64_t> expect;
  walk(kMax - 20, kMax - 1, expect);
  EXPECT_EQ(covered, expect);
}

// ---- block scheduler ----

TEST(Scheduler, PolicyNamesRoundTrip) {
  for (SchedPolicy p : {SchedPolicy::Static, SchedPolicy::Dynamic,
                        SchedPolicy::Guided, SchedPolicy::Steal})
    EXPECT_EQ(schedPolicyFromName(schedPolicyName(p)), p);
  EXPECT_EQ(schedPolicyFromName("bogus", SchedPolicy::Static),
            SchedPolicy::Static);
}

TEST(Scheduler, ResolveChunkAutoRule) {
  EXPECT_EQ(resolveChunk(100, 16), 16);   // explicit request wins
  EXPECT_EQ(resolveChunk(0, 0), 1);       // floor 1
  EXPECT_EQ(resolveChunk(64, 0), 1);
  EXPECT_EQ(resolveChunk(6400, 0), 100);  // trip / 64
  EXPECT_EQ(resolveChunk(uint64_t{1} << 30, 0), 4096);  // ceiling
}

TEST(Scheduler, BlockDecompositionCoversExactly) {
  LoopRange r{1, 20, 3};  // 1,4,7,10,13,16,19
  EXPECT_EQ(loopTripCount(r), 7u);
  uint64_t nb = blockCount(7, 2);
  EXPECT_EQ(nb, 4u);
  std::vector<int64_t> covered;
  int64_t ordinal = 0;
  for (uint64_t b = 0; b < nb; ++b) {
    LoopBlock blk = blockAt(r, 2, b);
    EXPECT_EQ(blk.index, b);
    EXPECT_EQ(blk.first_ordinal, ordinal);
    for (int64_t i = blk.first; i <= blk.last; i += 3) covered.push_back(i);
    ordinal += static_cast<int64_t>(blk.iters);
  }
  EXPECT_EQ(covered, (std::vector<int64_t>{1, 4, 7, 10, 13, 16, 19}));
}

TEST(Scheduler, EveryPolicyRunsEachBlockExactlyOnce) {
  LoopRange r{0, 99, 1};
  const int64_t chunk = 4;
  const uint64_t nb = blockCount(loopTripCount(r), chunk);
  for (SchedPolicy pol : {SchedPolicy::Static, SchedPolicy::Dynamic,
                          SchedPolicy::Guided, SchedPolicy::Steal}) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(nb);
    runBlocks(pool, r, chunk, pol, [&](unsigned, const LoopBlock& blk) {
      hits[blk.index].fetch_add(1);
    });
    for (uint64_t b = 0; b < nb; ++b)
      EXPECT_EQ(hits[b].load(), 1) << schedPolicyName(pol) << " block " << b;
  }
}

TEST(Scheduler, WorkersSeeBlocksInIncreasingOrder) {
  // Each worker executes the blocks of a claim in increasing index
  // order. For static/dynamic/guided the claims themselves are also
  // monotone per worker, so the whole per-worker sequence is sorted; a
  // stealing worker may acquire a batch below blocks it already ran
  // (the deadlock-freedom argument there rests on acquiring only while
  // idle, not on global monotonicity), so steal is covered by the
  // blocks-once test above instead.
  LoopRange r{0, 499, 1};
  for (SchedPolicy pol : {SchedPolicy::Static, SchedPolicy::Dynamic,
                          SchedPolicy::Guided}) {
    ThreadPool pool(4);
    std::vector<std::vector<uint64_t>> seen(pool.size());
    runBlocks(pool, r, 1, pol, [&](unsigned t, const LoopBlock& blk) {
      seen[t].push_back(blk.index);
    });
    for (const auto& order : seen)
      for (size_t i = 1; i < order.size(); ++i)
        EXPECT_LT(order[i - 1], order[i]) << schedPolicyName(pol);
  }
}

TEST(ThreadPool, RunsAllWorkers) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  std::vector<int> hits(4, 0);
  pool.runOnAll([&](unsigned t) {
    hits[t] = 1;
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 4);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 4);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  bool ran = false;
  pool.runOnAll([&](unsigned t) {
    EXPECT_EQ(t, 0u);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round)
    pool.runOnAll([&](unsigned) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.runOnAll([](unsigned t) {
        if (t == 2) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> count{0};
  pool.runOnAll([&](unsigned) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, WorkerFailureRequestsCooperativeCancel) {
  // One worker throws; the others poll cancelRequested() between chunks
  // of work (as the interpreter does between loop iterations) and must
  // observe the flag and stop early instead of grinding to completion.
  ThreadPool pool(4);
  std::atomic<int> chunks_done{0};
  EXPECT_THROW(
      pool.runOnAll([&](unsigned t) {
        if (t == 0) throw std::runtime_error("boom");
        for (int i = 0; i < 1000000; ++i) {
          if (pool.cancelRequested()) return;
          // Simulated chunk of work; keep it tiny so polling dominates.
          chunks_done.fetch_add(1, std::memory_order_relaxed);
        }
      }),
      std::runtime_error);
  EXPECT_LT(chunks_done.load(), 3 * 1000000)
      << "siblings never observed the cancellation request";
  // The flag is reset on the next job: all workers run to completion.
  std::atomic<int> full_runs{0};
  pool.runOnAll([&](unsigned) {
    if (!pool.cancelRequested()) full_runs.fetch_add(1);
  });
  EXPECT_EQ(full_runs.load(), 4);
}

// ---- ELPD collector in isolation ----

struct FakeLoop {
  ForStmt loop;
};

class ElpdUnit : public ::testing::Test {
 protected:
  ForStmt loop_;
  ElpdCollector c_;
  int buf_[1] = {0};  // identity only
  const void* buffer() const { return buf_; }

  void SetUp() override { c_.instrument(&loop_); }

  void access(int64_t iter, size_t elem, bool write) {
    c_.loopIterStart(&loop_, iter);
    c_.recordAccess(buffer(), elem, 100, write);
  }
};

TEST_F(ElpdUnit, UnexecutedLoopHasNoVerdict) {
  auto v = c_.verdict(&loop_);
  EXPECT_FALSE(v.executed);
  EXPECT_FALSE(v.parallelizable());
}

TEST_F(ElpdUnit, DisjointWritesIndependent) {
  c_.loopEnter(&loop_);
  access(0, 0, true);
  access(1, 1, true);
  access(2, 2, true);
  c_.loopExit(&loop_);
  auto v = c_.verdict(&loop_);
  EXPECT_TRUE(v.independent());
  EXPECT_EQ(v.accesses, 3u);
}

TEST_F(ElpdUnit, WriteThenReadAcrossIterationsIsFlow) {
  c_.loopEnter(&loop_);
  access(0, 5, true);
  access(1, 5, false);  // reads the value iteration 0 produced
  c_.loopExit(&loop_);
  auto v = c_.verdict(&loop_);
  EXPECT_TRUE(v.conflict);
  EXPECT_TRUE(v.flow);
  EXPECT_FALSE(v.parallelizable());
}

TEST_F(ElpdUnit, WriteBeforeReadInOwnIterationIsPrivatizable) {
  c_.loopEnter(&loop_);
  access(0, 5, true);
  access(0, 5, false);
  access(1, 5, true);  // rewrites before reading
  access(1, 5, false);
  c_.loopExit(&loop_);
  auto v = c_.verdict(&loop_);
  EXPECT_TRUE(v.conflict);      // same element written by two iterations
  EXPECT_FALSE(v.flow);         // but each iteration reads its own value
  EXPECT_TRUE(v.privatizable());
}

TEST_F(ElpdUnit, ReadBeforeLaterWriteIsAntiOnly) {
  c_.loopEnter(&loop_);
  access(0, 7, false);  // reads original value
  access(2, 7, true);   // later iteration overwrites
  c_.loopExit(&loop_);
  auto v = c_.verdict(&loop_);
  EXPECT_TRUE(v.conflict);
  EXPECT_FALSE(v.flow);  // copy-in privatization preserves semantics
}

TEST_F(ElpdUnit, MultipleWritesInOneIterationNoConflict) {
  c_.loopEnter(&loop_);
  access(3, 9, true);
  access(3, 9, true);
  access(3, 9, false);
  c_.loopExit(&loop_);
  EXPECT_TRUE(c_.verdict(&loop_).independent());
}

TEST_F(ElpdUnit, AccessesOutsideInstrumentedLoopIgnored) {
  // No loopEnter: the access must not count.
  c_.recordAccess(buffer(), 0, 100, true);
  EXPECT_EQ(c_.totalAccesses(), 0u);
}

TEST_F(ElpdUnit, NestedCollectorsBothRecord) {
  ForStmt inner;
  c_.instrument(&inner);
  c_.loopEnter(&loop_);
  c_.loopIterStart(&loop_, 0);
  c_.loopEnter(&inner);
  c_.loopIterStart(&inner, 0);
  c_.recordAccess(buffer(), 4, 100, true);
  c_.loopExit(&inner);
  c_.loopExit(&loop_);
  EXPECT_EQ(c_.verdict(&loop_).accesses, 1u);
  EXPECT_EQ(c_.verdict(&inner).accesses, 1u);
}

}  // namespace
}  // namespace padfa
