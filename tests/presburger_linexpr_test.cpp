// Unit tests for pb::LinExpr arithmetic and normalization invariants.
#include <gtest/gtest.h>

#include "presburger/linexpr.h"

namespace padfa::pb {
namespace {

TEST(LinExpr, ConstantOnly) {
  LinExpr e(7);
  EXPECT_TRUE(e.isConstant());
  EXPECT_EQ(e.constant(), 7);
  EXPECT_EQ(e.evaluate({}), 7);
}

TEST(LinExpr, VarConstruction) {
  LinExpr e = LinExpr::var(3, 2);
  EXPECT_EQ(e.coeff(3), 2);
  EXPECT_EQ(e.coeff(2), 0);
  EXPECT_EQ(e.numTerms(), 1u);
}

TEST(LinExpr, ZeroCoeffVarIsDropped) {
  LinExpr e = LinExpr::var(1, 0);
  EXPECT_TRUE(e.isConstant());
}

TEST(LinExpr, AddMergesTerms) {
  LinExpr a = LinExpr::var(0, 2);
  LinExpr b = LinExpr::var(0, 3);
  a += b;
  EXPECT_EQ(a.coeff(0), 5);
  EXPECT_EQ(a.numTerms(), 1u);
}

TEST(LinExpr, AddCancellationRemovesTerm) {
  LinExpr a = LinExpr::var(0, 2);
  a += LinExpr::var(0, -2);
  EXPECT_TRUE(a.isConstant());
  EXPECT_EQ(a.constant(), 0);
}

TEST(LinExpr, SubtractAndScale) {
  LinExpr a = LinExpr::var(0) + LinExpr::var(1, 4) + LinExpr(5);
  LinExpr b = LinExpr::var(1) + LinExpr(2);
  LinExpr c = a - b;
  EXPECT_EQ(c.coeff(0), 1);
  EXPECT_EQ(c.coeff(1), 3);
  EXPECT_EQ(c.constant(), 3);
  c *= -2;
  EXPECT_EQ(c.coeff(0), -2);
  EXPECT_EQ(c.coeff(1), -6);
  EXPECT_EQ(c.constant(), -6);
}

TEST(LinExpr, TermsStaySortedByVarId) {
  LinExpr e;
  e.addTerm(5, 1);
  e.addTerm(1, 2);
  e.addTerm(3, 3);
  ASSERT_EQ(e.numTerms(), 3u);
  EXPECT_EQ(e.terms()[0].first, 1u);
  EXPECT_EQ(e.terms()[1].first, 3u);
  EXPECT_EQ(e.terms()[2].first, 5u);
}

TEST(LinExpr, SubstituteExpandsReplacement) {
  // e = 2x + y + 1; substitute x := z - 3  ->  2z + y - 5.
  LinExpr e = LinExpr::var(0, 2) + LinExpr::var(1) + LinExpr(1);
  LinExpr repl = LinExpr::var(2) + LinExpr(-3);
  e.substitute(0, repl);
  EXPECT_EQ(e.coeff(0), 0);
  EXPECT_EQ(e.coeff(1), 1);
  EXPECT_EQ(e.coeff(2), 2);
  EXPECT_EQ(e.constant(), -5);
}

TEST(LinExpr, SubstituteAbsentVarIsNoop) {
  LinExpr e = LinExpr::var(1) + LinExpr(4);
  LinExpr before = e;
  e.substitute(0, LinExpr(100));
  EXPECT_EQ(e, before);
}

TEST(LinExpr, CoeffGcd) {
  LinExpr e = LinExpr::var(0, 6) + LinExpr::var(1, -9) + LinExpr(5);
  EXPECT_EQ(e.coeffGcd(), 3);
  EXPECT_EQ(LinExpr(7).coeffGcd(), 0);
}

TEST(LinExpr, DivideFloorConstantRoundsDown) {
  LinExpr e = LinExpr::var(0, 4) + LinExpr(-5);
  e.divideFloorConstant(4);
  EXPECT_EQ(e.coeff(0), 1);
  EXPECT_EQ(e.constant(), -2);  // floor(-5/4) = -2
  LinExpr f = LinExpr::var(0, 4) + LinExpr(5);
  f.divideFloorConstant(4);
  EXPECT_EQ(f.constant(), 1);  // floor(5/4) = 1
}

TEST(LinExpr, Evaluate) {
  LinExpr e = LinExpr::var(0, 2) + LinExpr::var(2, -1) + LinExpr(10);
  std::vector<int64_t> vals = {3, 99, 4};
  EXPECT_EQ(e.evaluate(vals), 2 * 3 - 4 + 10);
}

TEST(LinExpr, StrRendering) {
  LinExpr e = LinExpr::var(0, 1) + LinExpr::var(1, -2) + LinExpr(3);
  EXPECT_EQ(e.str(), "v0 - 2*v1 + 3");
  EXPECT_EQ(LinExpr(0).str(), "0");
}

}  // namespace
}  // namespace padfa::pb
