// Predicate-aware value-range analysis (DESIGN.md §15): interval lattice
// units, flow-sensitive refinement through branches and loops, the static
// runtime-test discharge and its three-way verification (auditor, PDG
// certification, race oracle), and the PADFA_NO_VRA compatibility knob.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "audit/plan_audit.h"
#include "audit/race_oracle.h"
#include "corpus/corpus.h"
#include "driver/padfa.h"
#include "driver/plan_signature.h"
#include "interp/interp.h"
#include "pdg/certify.h"
#include "pdg/pdg.h"
#include "predicate/pred.h"
#include "vra/range.h"
#include "vra/vra.h"

namespace padfa {
namespace {

using vra::Range;

CompiledProgram compile(const std::string& src) {
  DiagEngine diags;
  auto cp = compileSource(src, diags);
  EXPECT_TRUE(cp.has_value()) << diags.dump();
  return std::move(*cp);
}

CompiledProgram compileEntry(const CorpusEntry& e) {
  DiagEngine diags;
  auto cp = compileSource(instantiate(e), diags);
  EXPECT_TRUE(cp.has_value()) << e.name << ": " << diags.dump();
  return std::move(*cp);
}

const VarDecl* findVar(const CompiledProgram& cp, std::string_view name) {
  for (const auto& proc : cp.program->procs)
    for (const VarDecl* d : proc->all_vars)
      if (cp.interner().str(d->name) == name) return d;
  return nullptr;
}

const Stmt* findStmt(const BlockStmt& block, StmtKind kind) {
  for (const auto& st : block.stmts) {
    if (st->kind == kind) return st.get();
    if (st->kind == StmtKind::If) {
      const auto& i = static_cast<const IfStmt&>(*st);
      if (const Stmt* s = findStmt(*i.then_block, kind)) return s;
      if (i.else_block)
        if (const Stmt* s = findStmt(*i.else_block, kind)) return s;
    } else if (st->kind == StmtKind::For) {
      if (const Stmt* s =
              findStmt(*static_cast<const ForStmt&>(*st).body, kind))
        return s;
    }
  }
  return nullptr;
}

/// Scoped PADFA_NO_VRA equivalent for A/B compiles within one process.
struct VraOff {
  VraOff() { vra::setVraEnabled(false); }
  ~VraOff() { vra::clearVraEnabledOverride(); }
};

// ------------------------------------------------- lattice units ----

TEST(VraRange, Constructors) {
  EXPECT_TRUE(Range::top().isTop());
  EXPECT_TRUE(Range::bottom().empty);
  EXPECT_EQ(Range::constant(7).asConstant(), std::optional<int64_t>{7});
  EXPECT_TRUE(Range::of(int64_t{5}, int64_t{3}).empty);  // crossed bounds
  EXPECT_EQ(Range::boolean(), Range::of(int64_t{0}, int64_t{1}));
  EXPECT_TRUE(Range::of(std::nullopt, int64_t{4}).contains(-100));
  EXPECT_FALSE(Range::of(std::nullopt, int64_t{4}).contains(5));
}

TEST(VraRange, JoinIsHullMeetIsIntersection) {
  Range a = Range::of(int64_t{1}, int64_t{3});
  Range b = Range::of(int64_t{5}, int64_t{9});
  EXPECT_EQ(join(a, b), Range::of(int64_t{1}, int64_t{9}));
  EXPECT_TRUE(meet(a, b).empty);  // disjoint
  EXPECT_EQ(join(a, Range::bottom()), a);
  EXPECT_EQ(meet(a, Range::top()), a);
  EXPECT_TRUE(meet(a, Range::bottom()).empty);
  // Unbounded sides join to unbounded, meet to the finite bound.
  Range half = Range::of(std::nullopt, int64_t{2});
  EXPECT_EQ(join(a, half), Range::of(std::nullopt, int64_t{3}));
  EXPECT_EQ(meet(a, half), Range::of(int64_t{1}, int64_t{2}));
}

TEST(VraRange, WideningPushesMovedBoundsNarrowingRecoversThem) {
  Range prev = Range::of(int64_t{0}, int64_t{0});
  Range next = Range::of(int64_t{0}, int64_t{1});
  Range wide = widen(prev, next);
  EXPECT_EQ(wide, Range::of(int64_t{0}, std::nullopt));  // hi moved up
  EXPECT_EQ(widen(prev, prev), prev);                    // stable: unchanged
  EXPECT_EQ(narrow(wide, Range::of(int64_t{0}, int64_t{9})),
            Range::of(int64_t{0}, int64_t{9}));
  // Finite widened bounds are kept over the narrowing iterate.
  EXPECT_EQ(narrow(Range::of(int64_t{0}, int64_t{5}),
                   Range::of(int64_t{1}, int64_t{4})),
            Range::of(int64_t{0}, int64_t{5}));
}

TEST(VraRange, ArithmeticIsConservative) {
  Range a = Range::of(int64_t{1}, int64_t{2});
  Range b = Range::of(int64_t{10}, int64_t{20});
  EXPECT_EQ(add(a, b), Range::of(int64_t{11}, int64_t{22}));
  EXPECT_EQ(sub(b, a), Range::of(int64_t{8}, int64_t{19}));
  EXPECT_EQ(neg(a), Range::of(int64_t{-2}, int64_t{-1}));
  EXPECT_EQ(mul(Range::of(int64_t{2}, int64_t{3}),
                Range::of(int64_t{-1}, int64_t{4})),
            Range::of(int64_t{-3}, int64_t{12}));
  EXPECT_EQ(mul(a, Range::constant(0)), Range::constant(0));
  EXPECT_EQ(div(Range::of(int64_t{7}, int64_t{15}), Range::constant(2)),
            Range::of(int64_t{3}, int64_t{7}));
  EXPECT_TRUE(div(a, Range::of(int64_t{-1}, int64_t{1})).isTop());
  EXPECT_EQ(rem(Range::of(int64_t{0}, int64_t{100}), Range::constant(8)),
            Range::of(int64_t{0}, int64_t{7}));
  EXPECT_EQ(rem(Range::of(int64_t{-9}, int64_t{9}), Range::constant(8)),
            Range::of(int64_t{-7}, int64_t{7}));
  // Bottom is absorbing.
  EXPECT_TRUE(add(Range::bottom(), a).empty);
  EXPECT_TRUE(mul(a, Range::bottom()).empty);
}

TEST(VraRange, OverflowDropsBoundsInsteadOfClamping) {
  Range big = Range::constant(INT64_MAX);
  Range one = Range::constant(1);
  EXPECT_TRUE(add(big, one).isTop());
  Range partial = add(Range::of(int64_t{0}, INT64_MAX), one);
  EXPECT_EQ(partial.lo, std::optional<int64_t>{1});
  EXPECT_FALSE(partial.hi.has_value());
  EXPECT_FALSE(mul(big, Range::constant(2)).hi.has_value());
}

TEST(VraRange, MinMaxAbsNoise) {
  Range a = Range::of(int64_t{-5}, int64_t{3});
  EXPECT_EQ(abs_(a), Range::of(int64_t{0}, int64_t{5}));
  EXPECT_EQ(min_(a, Range::constant(0)), Range::of(int64_t{-5}, int64_t{0}));
  EXPECT_EQ(max_(a, Range::constant(0)), Range::of(int64_t{0}, int64_t{3}));
  EXPECT_EQ(vra::inoise(Range::constant(4)),
            Range::of(int64_t{0}, int64_t{3}));
  EXPECT_EQ(vra::inoise(Range::constant(1)), Range::constant(0));
  EXPECT_EQ(vra::inoise(Range::constant(-2)), Range::constant(0));
  EXPECT_EQ(vra::inoise(Range::top()), Range::of(int64_t{0}, std::nullopt));
}

// -------------------------------------- flow-sensitive refinement ----

const char* kBranches = R"(
proc main() {
  int x; x = inoise(3, 100);
  real a[4];
  if (x < 10) {
    a[0] = 1.0;
  } else {
    a[1] = 2.0;
  }
  sink(a[0] + a[1]);
}
)";

TEST(VraAnalysis, BranchConditionsRefineTheEnvironment) {
  CompiledProgram cp = compile(kBranches);
  vra::RangeAnalysis ra(*cp.program);
  ASSERT_TRUE(ra.enabled());
  const VarDecl* x = findVar(cp, "x");
  ASSERT_NE(x, nullptr);
  const Stmt* ifs = findStmt(*cp.program->procs[0]->body, StmtKind::If);
  ASSERT_NE(ifs, nullptr);
  const auto& i = static_cast<const IfStmt&>(*ifs);
  const Stmt* then_first = i.then_block->stmts[0].get();
  const Stmt* else_first = i.else_block->stmts[0].get();

  EXPECT_EQ(ra.rangeAt(ifs, x), Range::of(int64_t{0}, int64_t{99}));
  EXPECT_EQ(ra.rangeAt(then_first, x), Range::of(int64_t{0}, int64_t{9}));
  EXPECT_EQ(ra.rangeAt(else_first, x), Range::of(int64_t{10}, int64_t{99}));

  // The same refinement through the proof interface.
  Pred p = Pred::fromCondition(*i.cond, cp.program->interner);
  EXPECT_TRUE(ra.proveTrue(then_first, p));
  EXPECT_TRUE(ra.proveFalse(else_first, p));
  EXPECT_EQ(ra.provePred(ifs, p), vra::Proof::Unknown);
}

TEST(VraAnalysis, RefineEnvIsDirectlyCallable) {
  CompiledProgram cp = compile(kBranches);
  const VarDecl* x = findVar(cp, "x");
  const Stmt* ifs = findStmt(*cp.program->procs[0]->body, StmtKind::If);
  const auto& i = static_cast<const IfStmt&>(*ifs);
  Pred p = Pred::fromCondition(*i.cond, cp.program->interner);
  vra::RangeEnv env;
  env.set(x, Range::of(int64_t{0}, int64_t{99}));
  vra::RangeEnv refined = vra::refineEnv(env, p);
  EXPECT_EQ(refined.get(x), Range::of(int64_t{0}, int64_t{9}));
}

TEST(VraAnalysis, LoopIndexGetsBodyBoundsViaWideningAndNarrowing) {
  CompiledProgram cp = compile(R"(
proc main() {
  int s; s = 0;
  real a[16];
  for i = 0 to 9 {
    a[i] = noise(i);
    s = s + 1;
  }
  sink(a[0] + s);
}
)");
  vra::RangeAnalysis ra(*cp.program);
  ASSERT_TRUE(ra.enabled());
  const Stmt* fors = findStmt(*cp.program->procs[0]->body, StmtKind::For);
  ASSERT_NE(fors, nullptr);
  const auto& loop = static_cast<const ForStmt&>(*fors);
  const Stmt* body_first = loop.body->stmts[0].get();
  // Narrowing recovers the widened upper bound of the index.
  EXPECT_EQ(ra.rangeAt(body_first, loop.index_decl),
            Range::of(int64_t{0}, int64_t{9}));
  // The accumulator keeps its proven lower bound; the upper bound is
  // honestly unknown (it grows with the trip count).
  const VarDecl* s = findVar(cp, "s");
  Range sr = ra.rangeAt(body_first, s);
  EXPECT_EQ(sr.lo, std::optional<int64_t>{0});
}

TEST(VraAnalysis, DisabledAnalysisDegradesToTopAndUnknown) {
  VraOff off;
  CompiledProgram cp = compile(kBranches);
  vra::RangeAnalysis ra(*cp.program);
  EXPECT_FALSE(ra.enabled());
  const VarDecl* x = findVar(cp, "x");
  const Stmt* ifs = findStmt(*cp.program->procs[0]->body, StmtKind::If);
  const auto& i = static_cast<const IfStmt&>(*ifs);
  EXPECT_TRUE(ra.rangeAt(i.then_block->stmts[0].get(), x).isTop());
  Pred p = Pred::fromCondition(*i.cond, cp.program->interner);
  EXPECT_EQ(ra.provePred(i.then_block->stmts[0].get(), p),
            vra::Proof::Unknown);
}

// --------------------------------------- static test discharge ------

const char* kProvableIndependence = R"(
proc main() {
  int n; n = 64;
  int d; d = inoise(5, 1) + n;
  real x[192];
  for j = 0 to 191 { x[j] = noise(j); }
  for i = 64 to 127 { x[i] = x[i - d] * 0.5; }
  sink(x[100]);
}
)";

TEST(VraPromotion, ProvablyTrueTestPromotesAndRetainsTheTest) {
  CompiledProgram cp = compile(kProvableIndependence);
  const LoopPlan* promoted = nullptr;
  for (const auto& [loop, plan] : cp.pred.plans)
    if (plan.vra_action == VraAction::PromotedParallel) promoted = &plan;
  ASSERT_NE(promoted, nullptr);
  EXPECT_EQ(promoted->status, LoopStatus::Parallel);
  // The discharged test is retained so all three verification legs can
  // re-derive the promotion independently.
  EXPECT_FALSE(promoted->runtime_test.isTrue());
}

TEST(VraPromotion, ProvablyFalseTestDemotesToSequential) {
  CompiledProgram cp = compile(R"(
proc main() {
  int d; d = inoise(5, 1) + 1;
  real x[64];
  for j = 0 to 63 { x[j] = noise(j); }
  for i = 1 to 63 { x[i] = x[i - d] * 0.5; }
  sink(x[40]);
}
)");
  const LoopPlan* demoted = nullptr;
  for (const auto& [loop, plan] : cp.pred.plans)
    if (plan.vra_action == VraAction::DemotedSequential) demoted = &plan;
  ASSERT_NE(demoted, nullptr);
  EXPECT_EQ(demoted->status, LoopStatus::Sequential);
}

TEST(VraPromotion, PromotedDispatchSkipsTheRuntimeTest) {
  CompiledProgram cp = compile(kProvableIndependence);
  InterpOptions opt;
  opt.plans = &cp.pred;
  InterpStats st = execute(*cp.program, opt);
  EXPECT_GE(st.runtime_tests_pruned, 1u);
  {
    VraOff off;
    CompiledProgram cold = compile(kProvableIndependence);
    InterpOptions copt;
    copt.plans = &cold.pred;
    InterpStats cst = execute(*cold.program, copt);
    EXPECT_EQ(cst.runtime_tests_pruned, 0u);
    EXPECT_GE(cst.runtime_tests_evaluated, 1u);
  }
}

// ------------------------------- corpus-wide three-way agreement ----

// Every corpus promotion must be independently re-verified by all three
// legs of the tripod: the plan auditor does not refute it, the PDG
// certification agrees with the audit rank, and the race oracle observes
// no violation on the reference execution. The ISSUE floor: at least two
// corpus RuntimeTest loops are promoted.
TEST(VraCorpus, EveryPromotionSurvivesAllThreeVerificationLegs) {
  size_t promotions = 0;
  for (const auto& e : corpus()) {
    CompiledProgram cp = compileEntry(e);
    std::vector<const ForStmt*> promoted;
    for (const auto& [loop, plan] : cp.pred.plans)
      if (plan.status == LoopStatus::Parallel &&
          plan.vra_action == VraAction::PromotedParallel)
        promoted.push_back(loop);
    if (promoted.empty()) continue;
    promotions += promoted.size();

    // Leg 1: static auditor.
    DiagEngine diags;
    AuditReport audit = auditPlans(*cp.program, cp.pred, diags);
    EXPECT_TRUE(audit.clean()) << e.name << ":\n" << diags.dump();
    for (const auto& la : audit.loops)
      for (const ForStmt* loop : promoted)
        if (la.loop == loop)
          EXPECT_NE(la.verdict, AuditVerdict::Unsound) << e.name;

    // Leg 2: PDG certification, and its cross-check against the audit.
    ProgramPdg pdg = buildPdg(*cp.program, cp.loops);
    CertifyReport cert = certifyPlans(*cp.program, cp.pred, cp.loops, pdg);
    EXPECT_EQ(cert.count(CertifyVerdict::Disagree), 0u) << e.name;
    EXPECT_TRUE(
        crossCheckCertification(*cp.program, cert, audit).empty())
        << e.name;

    // Leg 3: dynamic race oracle over the reference execution.
    RaceOracle oracle(*cp.program, cp.pred);
    InterpOptions opt;
    opt.plans = &cp.pred;
    opt.race = &oracle;
    execute(*cp.program, opt);
    EXPECT_EQ(oracle.violationCount(), 0u)
        << e.name << ":\n" << oracle.report(cp.program->interner);
  }
  EXPECT_GE(promotions, 2u);
}

// ------------------------------------------------- teeth ------------

// A forged promotion — a genuine recurrence hand-stamped PromotedParallel
// with a test that does not re-prove — must be caught by every leg:
// auditor Unsound, certification Disagree (same rank, so the cross-check
// stays quiet), and the oracle reports the failed promoted test.
TEST(VraTeeth, ForgedPromotionIsCaughtByAllThreeLegs) {
  CompiledProgram cp = compile(R"(
proc main() {
  real a[64];
  for i = 1 to 63 {
    a[i] = a[i - 1] + 1.0;
  }
  sink(a[63]);
}
)");
  AnalysisResult forged = cp.pred;
  int forced = 0;
  for (auto& [loop, plan] : forged.plans) {
    if (plan.status != LoopStatus::Sequential &&
        plan.status != LoopStatus::Doacross)
      continue;
    plan.status = LoopStatus::Parallel;
    plan.vra_action = VraAction::PromotedParallel;
    plan.runtime_test = Pred::never();
    plan.syncs.clear();
    plan.reason.clear();
    ++forced;
  }
  ASSERT_GT(forced, 0);

  DiagEngine diags;
  AuditReport audit = auditPlans(*cp.program, forged, diags);
  EXPECT_EQ(audit.count(AuditVerdict::Unsound), 1u);
  EXPECT_GE(diags.countWithId("audit-unsound"), 1u) << diags.dump();

  ProgramPdg pdg = buildPdg(*cp.program, cp.loops);
  CertifyReport cert = certifyPlans(*cp.program, forged, cp.loops, pdg);
  EXPECT_GE(cert.count(CertifyVerdict::Disagree), 1u);
  EXPECT_TRUE(crossCheckCertification(*cp.program, cert, audit).empty());

  RaceOracle oracle(*cp.program, forged);
  InterpOptions opt;
  opt.plans = &forged;
  opt.race = &oracle;
  execute(*cp.program, opt);
  ASSERT_GE(oracle.violationCount(), 1u);
  bool saw_promoted_failure = false;
  for (const auto& v : oracle.verdicts())
    if (v.violation &&
        v.detail.find("promoted run-time test") != std::string::npos)
      saw_promoted_failure = true;
  EXPECT_TRUE(saw_promoted_failure)
      << oracle.report(cp.program->interner);
}

// ----------------------------------------- PADFA_NO_VRA knob --------

// With VRA off, plans must be byte-identical to the pre-VRA engine:
// no " vra=" marker anywhere, and for programs where VRA changed nothing
// the whole signature matches the VRA-on compile byte for byte.
TEST(VraKnob, DisabledVraYieldsByteIdenticalSignatures) {
  size_t entries_changed = 0;
  for (const auto& e : corpus()) {
    CompiledProgram on = compileEntry(e);
    const std::string sig_on = planSignature(on);
    bool any_action = false;
    for (const auto& [loop, plan] : on.pred.plans)
      any_action |= plan.vra_action != VraAction::None;
    {
      VraOff off_guard;
      CompiledProgram off = compileEntry(e);
      const std::string sig_off = planSignature(off);
      EXPECT_EQ(sig_off.find(" vra="), std::string::npos)
          << e.name << ": VRA marker leaked into the no-VRA signature";
      if (any_action) {
        ++entries_changed;
        EXPECT_NE(sig_on, sig_off) << e.name;
      } else {
        EXPECT_EQ(sig_on, sig_off) << e.name;
      }
    }
  }
  // Sanity: the knob gates something real on this corpus.
  EXPECT_GE(entries_changed, 2u);
}

}  // namespace
}  // namespace padfa
