// Interprocedural analysis tests: summary translation across calls,
// scalar formal substitution, reshape, aliased actuals, predicate
// translation, and multi-level call chains.
#include <gtest/gtest.h>

#include "driver/padfa.h"

namespace padfa {
namespace {

CompiledProgram compileOk(std::string_view src) {
  DiagEngine diags;
  auto cp = compileSource(std::string(src), diags);
  EXPECT_TRUE(cp.has_value()) << diags.dump();
  return std::move(*cp);
}

LoopStatus predStatusAt(const CompiledProgram& cp, uint32_t line) {
  for (const auto& [loop, plan] : cp.pred.plans)
    if (loop->loc.line == line) return plan.status;
  ADD_FAILURE() << "no loop at line " << line;
  return LoopStatus::NotCandidate;
}

LoopStatus baseStatusAt(const CompiledProgram& cp, uint32_t line) {
  for (const auto& [loop, plan] : cp.base.plans)
    if (loop->loc.line == line) return plan.status;
  ADD_FAILURE() << "no loop at line " << line;
  return LoopStatus::NotCandidate;
}

TEST(Interproc, CalleeWritesTranslateToDisjointActualSections) {
  // setrow writes row `r` of the grid; the caller loop passes disjoint
  // rows, so the loop is parallel — provable only by translating the
  // callee's section through the formal->actual scalar mapping.
  auto cp = compileOk(R"(
proc setrow(real g[64, 64], int r, int seed) {
  for j = 0 to 63 { g[r, j] = noise(seed + j); }
}
proc main() {
  real grid[64, 64];
  for i = 0 to 63 {
    setrow(grid, i, i * 64);
  }
  sink(grid[5, 5]);
}
)");
  EXPECT_EQ(baseStatusAt(cp, 7), LoopStatus::Parallel);
}

TEST(Interproc, OverlappingCalleeWritesStaySequential) {
  // Every call writes row 0: cross-iteration output dependence through
  // the call. (Privatizing a formal's target is not attempted across
  // calls when coverage cannot be shown per iteration.)
  auto cp = compileOk(R"(
proc setrow(real g[64, 64], int r, int seed) {
  for j = 0 to 63 { g[r, j] = noise(seed + j); }
}
proc main() {
  real grid[64, 64];
  for i = 0 to 63 {
    setrow(grid, 0, i);
  }
  sink(grid[0, 5]);
}
)");
  // Writes to the same row by all iterations: must-write coverage exists
  // (the callee writes the full row unconditionally), so privatization
  // with copy-out applies — matching direct-code behavior.
  for (const auto& [loop, plan] : cp.base.plans) {
    if (loop->loc.line != 7) continue;
    if (plan.status == LoopStatus::Parallel) {
      EXPECT_FALSE(plan.privatized.empty());
    }
  }
}

TEST(Interproc, NonAffineActualKillsPrecision) {
  // The row index is data-dependent (inoise): the formal's section
  // cannot be translated, so the write is approximated and the loop
  // stays sequential in both systems.
  auto cp = compileOk(R"(
proc setrow(real g[64, 64], int r, int seed) {
  for j = 0 to 63 { g[r, j] = noise(seed + j); }
}
proc main() {
  real grid[64, 64];
  for i = 0 to 63 {
    setrow(grid, inoise(i, 64), i);
  }
  sink(grid[0, 5]);
}
)");
  EXPECT_EQ(predStatusAt(cp, 7), LoopStatus::Sequential);
}

TEST(Interproc, TwoLevelCallChain) {
  auto cp = compileOk(R"(
proc inner(real v[n], int n, int seed) {
  for q = 0 to n - 1 { v[q] = noise(seed + q); }
}
proc outer(real v[n], int n, int seed) {
  inner(v, n, seed);
}
proc main() {
  real out[40];
  real help[16];
  for i = 0 to 39 {
    outer(help, 16, i);
    real s; s = 0.0;
    for j = 0 to 15 { s = s + help[j]; }
    out[i] = s;
  }
  sink(out[3]);
}
)");
  // The must-write of `inner` must survive two translations for the
  // privatization of `help` in main's loop.
  for (const auto& [loop, plan] : cp.base.plans) {
    if (loop->loc.line != 10) continue;
    EXPECT_EQ(plan.status, LoopStatus::Parallel) << plan.reason;
    EXPECT_EQ(plan.privatized.size(), 1u);
  }
}

TEST(Interproc, AliasedActualsAreMergedConservatively) {
  // Passing the same array for both formals: writes through `dst` and
  // reads through `src` alias. The translated summary merges both onto
  // the same actual, creating a (true) dependence.
  auto cp = compileOk(R"(
proc shift(real dst[n], real src[n], int n) {
  for q = 1 to n - 1 { dst[q] = src[q - 1]; }
}
proc main() {
  real a[64];
  for j = 0 to 63 { a[j] = noise(j); }
  for i = 0 to 9 {
    shift(a, a, 64);
  }
  sink(a[10]);
}
)");
  EXPECT_EQ(predStatusAt(cp, 8), LoopStatus::Sequential);
}

TEST(Interproc, GuardedFullCoverageThroughCallPrivatizesCT) {
  // The callee's conditional whole-array write translates as a guarded
  // must-write; predicated subtraction shows the exposed remainder is
  // read-only pre-loop data, so copy-in privatization wins at compile
  // time (no run-time test needed).
  auto cp = compileOk(R"(
proc maybefill(real v[n], int n, int go, int seed) {
  if (go > 0) {
    for q = 0 to n - 1 { v[q] = noise(seed + q); }
  }
}
proc main() {
  int flag; flag = inoise(3, 1);
  real out[40];
  real buf[64];
  for j = 0 to 63 { buf[j] = noise(j); }
  for i = 1 to 39 {
    maybefill(buf, 64, flag, i);
    out[i] = buf[i - 1];
  }
  sink(out[7]);
}
)");
  for (const auto& [loop, plan] : cp.pred.plans) {
    if (loop->loc.line != 12) continue;
    EXPECT_EQ(plan.status, LoopStatus::Parallel) << plan.reason;
    ASSERT_EQ(plan.privatized.size(), 1u);
    EXPECT_TRUE(plan.privatized[0].copy_in);
  }
}

TEST(Interproc, PredicateGuardsTranslateThroughCalls) {
  // Single-element guarded write through a call plus a shifted read: the
  // dependence exists only when the flag is set. The callee's guard `go >
  // 0` must be rewritten to the actual `flag` for the run-time test.
  auto cp = compileOk(R"(
proc maybeset(real v[n], int n, int go, int at, real val) {
  if (go > 0) { v[at] = val; }
}
proc main() {
  int flag; flag = inoise(3, 2);
  real out[40];
  real buf[64];
  for j = 0 to 63 { buf[j] = noise(j); }
  for i = 1 to 39 {
    maybeset(buf, 64, flag, i, noise(i));
    out[i] = buf[i - 1];
  }
  sink(out[7]);
}
)");
  for (const auto& [loop, plan] : cp.pred.plans) {
    if (loop->loc.line != 10) continue;
    ASSERT_EQ(plan.status, LoopStatus::RuntimeTest) << plan.reason;
    std::string test = plan.runtime_test.str(cp.interner());
    EXPECT_NE(test.find("flag"), std::string::npos) << test;
  }
}

TEST(Interproc, ReshapeWholeArrayCoverage) {
  // 1-D formal over a 2-D actual with a constant matching size: the
  // Reshape predicate folds to true and must-write coverage survives,
  // privatizing the grid in the caller's loop.
  auto cp = compileOk(R"(
proc fill1d(real v[len], int len, int seed) {
  for q = 0 to len - 1 { v[q] = noise(seed + q); }
}
proc main() {
  real g[4, 8];
  real out[30];
  for i = 0 to 29 {
    fill1d(g, 32, i);
    real s; s = 0.0;
    for r = 0 to 3 {
      for c = 0 to 7 { s = s + g[r, c]; }
    }
    out[i] = s;
  }
  sink(out[2]);
}
)");
  for (const auto& [loop, plan] : cp.pred.plans) {
    if (loop->loc.line != 8) continue;
    EXPECT_TRUE(plan.status == LoopStatus::Parallel ||
                plan.status == LoopStatus::RuntimeTest)
        << plan.reason;
  }
}

TEST(Interproc, CalleeSinkMakesLoopNotCandidate) {
  auto cp = compileOk(R"(
proc report(real x) { sink(x); }
proc main() {
  real a[10];
  for i = 0 to 9 {
    a[i] = noise(i);
    report(a[i]);
  }
}
)");
  EXPECT_EQ(predStatusAt(cp, 5), LoopStatus::NotCandidate);
}

TEST(Interproc, ExecutionMatchesAcrossAllCases) {
  // Each scenario above must also run correctly under the derived plans.
  const char* src = R"(
proc setrow(real g[32, 32], int r, int seed) {
  for j = 0 to 31 { g[r, j] = noise(seed + j); }
}
proc maybefill(real v[n], int n, int go, int seed) {
  if (go > 0) {
    for q = 0 to n - 1 { v[q] = noise(seed + q); }
  }
}
proc main() {
  int flag; flag = inoise(3, 1);
  real grid[32, 32];
  real buf[64];
  real out[32];
  for j = 0 to 63 { buf[j] = noise(j); }
  for i = 0 to 31 {
    setrow(grid, i, i * 32);
  }
  for i = 1 to 31 {
    maybefill(buf, 64, flag, i);
    out[i] = buf[i - 1] + grid[i, 3];
  }
  real chk; chk = 0.0;
  for i = 0 to 31 { chk = chk + out[i]; }
  sink(chk);
}
)";
  auto cp = compileOk(src);
  InterpStats seq = execute(*cp.program, {});
  InterpOptions opt;
  opt.plans = &cp.pred;
  opt.num_threads = 4;
  InterpStats par = execute(*cp.program, opt);
  EXPECT_NEAR(par.checksum, seq.checksum,
              1e-9 * (std::abs(seq.checksum) + 1.0));
}

}  // namespace
}  // namespace padfa
