// Golden tests for backward slicing: each tests/slice_golden/*.mf file
// names its criterion in a leading "//SLICE <line>:<var>" comment and
// marks every line expected in the slice with a trailing "//S"
// annotation. The match is exact both ways — a line in the computed
// slice but not annotated fails, and vice versa — so both over- and
// under-slicing regressions fail loudly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "driver/padfa.h"
#include "pdg/pdg.h"
#include "pdg/slice.h"

#ifndef SLICE_GOLDEN_DIR
#error "SLICE_GOLDEN_DIR must point at the annotated MF programs"
#endif

namespace padfa {
namespace {

struct Golden {
  std::string criterion;        // "<line>:<var>" from the //SLICE header
  std::set<uint32_t> lines;     // lines carrying a //S marker
};

// "//S" as a standalone marker: the char after it must not be
// alphanumeric, so the "//SLICE" header itself never counts as one.
bool hasSliceMarker(const std::string& line) {
  for (size_t pos = line.find("//S"); pos != std::string::npos;
       pos = line.find("//S", pos + 1)) {
    char next = pos + 3 < line.size() ? line[pos + 3] : ' ';
    if (!std::isalnum(static_cast<unsigned char>(next))) return true;
  }
  return false;
}

Golden parseGolden(const std::string& source) {
  Golden g;
  std::istringstream in(source);
  std::string line;
  uint32_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t hdr = line.find("//SLICE ");
    if (hdr != std::string::npos && g.criterion.empty()) {
      std::istringstream spec(line.substr(hdr + 8));
      spec >> g.criterion;
      continue;
    }
    if (hasSliceMarker(line)) g.lines.insert(lineno);
  }
  return g;
}

std::vector<std::filesystem::path> goldenFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& e :
       std::filesystem::directory_iterator(SLICE_GOLDEN_DIR)) {
    if (e.path().extension() == ".mf") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

class SliceGolden : public ::testing::TestWithParam<int> {};

TEST_P(SliceGolden, SliceMatchesAnnotations) {
  const auto path = goldenFiles()[static_cast<size_t>(GetParam())];
  std::ifstream in(path);
  ASSERT_TRUE(in) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string source = ss.str();

  const Golden golden = parseGolden(source);
  ASSERT_FALSE(golden.criterion.empty()) << path << ": no //SLICE header";
  ASSERT_FALSE(golden.lines.empty()) << path << ": no //S annotations";

  DiagEngine diags;
  auto cp = compileSource(source, diags);
  ASSERT_TRUE(cp.has_value()) << path << ":\n" << diags.dump();
  ProgramPdg pdg = buildPdg(*cp->program, cp->loops);

  SliceCriterion crit;
  std::string err;
  ASSERT_TRUE(parseSliceCriterion(golden.criterion, crit, err)) << err;
  SliceResult result;
  ASSERT_TRUE(computeSlice(pdg, *cp->program, crit, result, err))
      << path << ": " << err;

  const std::set<uint32_t> actual(result.lines.begin(), result.lines.end());
  for (uint32_t l : golden.lines)
    EXPECT_TRUE(actual.count(l))
        << path.filename() << ": line " << l
        << " is annotated //S but missing from the slice";
  for (uint32_t l : actual)
    EXPECT_TRUE(golden.lines.count(l))
        << path.filename() << ": line " << l
        << " is in the slice but not annotated //S";
}

INSTANTIATE_TEST_SUITE_P(
    AllFiles, SliceGolden,
    ::testing::Range(0, static_cast<int>(goldenFiles().size())),
    [](const ::testing::TestParamInfo<int>& info) {
      return goldenFiles()[static_cast<size_t>(info.param)].stem().string();
    });

TEST(SliceCriterionParse, AcceptsAndRejects) {
  SliceCriterion c;
  std::string err;
  EXPECT_TRUE(parseSliceCriterion("12:sum", c, err));
  EXPECT_EQ(c.line, 12u);
  EXPECT_EQ(c.var, "sum");
  EXPECT_FALSE(parseSliceCriterion("sum:12", c, err));
  EXPECT_FALSE(parseSliceCriterion("12", c, err));
  EXPECT_FALSE(parseSliceCriterion("0:x", c, err));
  EXPECT_FALSE(parseSliceCriterion("12:", c, err));
  EXPECT_FALSE(parseSliceCriterion("", c, err));
}

TEST(Slice, UnresolvableCriterionFails) {
  DiagEngine diags;
  auto cp = compileSource("proc main() { int x; x = 1; sink(x); }", diags);
  ASSERT_TRUE(cp.has_value());
  ProgramPdg pdg = buildPdg(*cp->program, cp->loops);
  SliceResult result;
  std::string err;
  EXPECT_FALSE(computeSlice(pdg, *cp->program, {99, "x"}, result, err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(computeSlice(pdg, *cp->program, {1, "nosuch"}, result, err));
}

}  // namespace
}  // namespace padfa
