// End-to-end tests for the mfcd analysis daemon (src/server/).
//
// Runs the daemon in-process (signal handlers off, test commands on)
// and exercises:
//   - the protocol surface via handleLine(): ping/status, malformed
//     JSON, unknown commands, missing sources;
//   - the serving contract: cold analysis, warm hits that are byte-
//     identical to the cold response AND to an in-process compile;
//   - the degradation contract: a budget-starved request degrades to
//     sound plans identical to a cold in-process run under the same
//     limits, and its results are never persisted;
//   - the crash-recovery contract: a corrupt snapshot is quarantined at
//     startup (visible in status), analysis proceeds cold, and the next
//     flush restores warm service;
//   - real sockets: round trip, oversized-request shedding, overload
//     shedding with a full queue, drain-on-shutdown flushing the store.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "corpus/corpus.h"
#include "driver/padfa.h"
#include "driver/plan_signature.h"
#include "server/client.h"
#include "server/server.h"
#include "store/summary_store.h"
#include "support/hash.h"
#include "support/perf_stats.h"

namespace padfa {
namespace {

using server::MfcDaemon;
using server::Request;
using server::ServerOptions;

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/padfa-server-test-XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p ? p : "";
  }
  ~TempDir() {
    if (path.empty()) return;
    std::string cmd = "rm -rf '" + path + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
};

ServerOptions testOptions(const TempDir& dir, const char* sock_name) {
  ServerOptions opts;
  opts.socket_path = dir.path + "/" + sock_name;
  opts.store_dir = dir.path + "/store";
  ::mkdir(opts.store_dir.c_str(), 0755);
  opts.install_signal_handlers = false;
  opts.enable_test_commands = true;
  opts.flush_every = 1;  // deterministic persistence in tests
  return opts;
}

JsonValue dispatch(MfcDaemon& d, const std::string& line) {
  JsonValue v;
  std::string err;
  EXPECT_TRUE(parseJson(d.handleLine(line), v, err)) << err;
  return v;
}

JsonValue dispatch(MfcDaemon& d, const Request& r) {
  return dispatch(d, server::encodeRequest(r));
}

std::string corpusSource(size_t i) { return instantiate(corpus()[i]); }

Request simpleReq(const char* cmd) {
  Request r;
  r.cmd = cmd;
  return r;
}

// ---------------------------------------------------------------------
// Protocol surface (no sockets).

TEST(Server, ProtocolSurface) {
  TempDir dir;
  MfcDaemon d(testOptions(dir, "p.sock"));

  JsonValue v = dispatch(d, std::string("{\"cmd\":\"ping\"}"));
  EXPECT_TRUE(v.get("ok").asBool());
  EXPECT_TRUE(v.get("pong").asBool());

  v = dispatch(d, std::string("{\"cmd\":\"status\"}"));
  EXPECT_TRUE(v.get("ok").asBool());
  EXPECT_TRUE(v.has("store"));
  EXPECT_TRUE(v.has("cache"));

  v = dispatch(d, std::string("this is not json"));
  EXPECT_FALSE(v.get("ok").asBool());
  EXPECT_EQ(v.get("error").asString(), "parse-error");

  // A line without a string "cmd" never becomes a Request at all.
  v = dispatch(d, std::string("{\"source\":\"no cmd\"}"));
  EXPECT_FALSE(v.get("ok").asBool());
  EXPECT_EQ(v.get("error").asString(), "parse-error");

  v = dispatch(d, std::string("{\"cmd\":\"frobnicate\"}"));
  EXPECT_EQ(v.get("error").asString(), "bad-request");

  v = dispatch(d, std::string("{\"cmd\":\"report\"}"));
  EXPECT_EQ(v.get("error").asString(), "bad-request");

  // The daemon refuses to read client file paths.
  v = dispatch(d, std::string("{\"cmd\":\"report\",\"spec\":\"/etc/hostname\"}"));
  EXPECT_EQ(v.get("error").asString(), "bad-request");

  v = dispatch(d,
               std::string("{\"cmd\":\"report\",\"spec\":\"corpus:nope\"}"));
  EXPECT_EQ(v.get("error").asString(), "bad-request");

  v = dispatch(d, std::string("{\"cmd\":\"report\",\"source\":\"@#$!\"}"));
  EXPECT_FALSE(v.get("ok").asBool());
  EXPECT_EQ(v.get("error").asString(), "compile-error");
  EXPECT_FALSE(v.get("diagnostics").asString().empty());
}

// ---------------------------------------------------------------------
// Serving contract: cold == warm == in-process, byte for byte.

TEST(Server, WarmResponsesAreBitIdenticalToColdAndLocal) {
  TempDir dir;
  MfcDaemon d(testOptions(dir, "w.sock"));
  std::string source = corpusSource(0);

  Request req;
  req.cmd = "report";
  req.source = source;
  JsonValue cold = dispatch(d, req);
  ASSERT_TRUE(cold.get("ok").asBool());
  EXPECT_FALSE(cold.get("cached").asBool());
  EXPECT_EQ(cold.get("degraded").asNumber(), 0.0);

  JsonValue warm = dispatch(d, req);
  ASSERT_TRUE(warm.get("ok").asBool());
  EXPECT_TRUE(warm.get("cached").asBool());
  EXPECT_EQ(warm.get("report").asString(), cold.get("report").asString());
  EXPECT_EQ(warm.get("signature").asString(),
            cold.get("signature").asString());
  EXPECT_EQ(warm.get("source_hash").asString(),
            cold.get("source_hash").asString());

  // Both equal a fresh in-process compile.
  DiagEngine diags;
  auto cp = compileSource(source, diags);
  ASSERT_TRUE(cp) << diags.dump();
  EXPECT_EQ(cold.get("signature").asString(), planSignature(*cp));
  EXPECT_EQ(cold.get("report").asString(), renderPlanReport(*cp));
  EXPECT_EQ(cold.get("source_hash").asString(),
            hashHex(contentHash64(source)));

  // emit is cached independently of report for the same source.
  req.cmd = "emit";
  JsonValue em_cold = dispatch(d, req);
  ASSERT_TRUE(em_cold.get("ok").asBool());
  JsonValue em_warm = dispatch(d, req);
  EXPECT_TRUE(em_warm.get("cached").asBool());
  EXPECT_EQ(em_warm.get("emit").asString(), em_cold.get("emit").asString());

  EXPECT_GE(d.stats().warm_hits.load(), 2u);
}

TEST(Server, WarmServiceSurvivesRestartViaSnapshot) {
  TempDir dir;
  ServerOptions opts = testOptions(dir, "r.sock");
  std::string source = corpusSource(1);
  Request req;
  req.cmd = "report";
  req.source = source;

  std::string cold_report, cold_sig;
  {
    MfcDaemon d(opts);
    JsonValue cold = dispatch(d, req);
    ASSERT_TRUE(cold.get("ok").asBool());
    cold_report = cold.get("report").asString();
    cold_sig = cold.get("signature").asString();
    // flush_every=1 => already snapshotted; no explicit flush needed.
  }
  MfcDaemon d2(opts);
  ASSERT_TRUE(d2.store().open());
  JsonValue warm = dispatch(d2, req);
  ASSERT_TRUE(warm.get("ok").asBool());
  EXPECT_TRUE(warm.get("cached").asBool());
  EXPECT_EQ(warm.get("report").asString(), cold_report);
  EXPECT_EQ(warm.get("signature").asString(), cold_sig);
  EXPECT_EQ(d2.stats().cold_analyses.load(), 0u);
}

// ---------------------------------------------------------------------
// Degradation contract: budget-starved requests degrade soundly,
// deterministically equal to a cold in-process run, and are not stored.

TEST(Server, StarvedRequestDegradesAndIsNeverPersisted) {
  TempDir dir;
  MfcDaemon d(testOptions(dir, "s.sock"));
  std::string source = corpusSource(0);

  // FM-step starvation is deterministic (unlike wall-clock deadlines),
  // so the daemon's degraded plans must be byte-identical to an
  // in-process compile under the same limits.
  Request req;
  req.cmd = "report";
  req.source = source;
  req.fm_steps = 1;
  JsonValue v = dispatch(d, req);
  ASSERT_TRUE(v.get("ok").asBool());
  EXPECT_TRUE(v.get("governed").asBool());
  EXPECT_GT(v.get("degraded").asNumber(), 0.0);

  BudgetLimits limits = BudgetLimits::defaults();
  limits.max_fm_steps = 1;
  DiagEngine diags;
  auto cp = compileSource(source, diags, limits);
  ASSERT_TRUE(cp) << diags.dump();
  EXPECT_EQ(v.get("signature").asString(), planSignature(*cp));
  EXPECT_EQ(v.get("report").asString(), renderPlanReport(*cp));

  // Nothing reached the store: governed results must never be served
  // warm (they are sound but weaker than an ungoverned run's).
  EXPECT_EQ(d.store().recordCount(), 0u);
  JsonValue again = dispatch(d, req);
  EXPECT_FALSE(again.get("cached").asBool());
  EXPECT_EQ(d.stats().warm_hits.load(), 0u);
  EXPECT_EQ(d.stats().degraded_requests.load(), 2u);

  // An ungoverned request afterwards is a fresh cold analysis with full
  // (non-degraded) plans — starved runs did not poison anything.
  Request full;
  full.cmd = "report";
  full.source = source;
  JsonValue f = dispatch(d, full);
  ASSERT_TRUE(f.get("ok").asBool());
  EXPECT_FALSE(f.get("cached").asBool());
  EXPECT_EQ(f.get("degraded").asNumber(), 0.0);
  DiagEngine diags2;
  auto ref = compileSource(source, diags2);
  ASSERT_TRUE(ref);
  EXPECT_EQ(f.get("signature").asString(), planSignature(*ref));
}

// ---------------------------------------------------------------------
// Crash recovery: corrupt snapshot => quarantine at startup, cold
// service, clean snapshot after the next flush.

TEST(Server, CorruptSnapshotQuarantinedThenWarmAfterReanalysis) {
  TempDir dir;
  ServerOptions opts = testOptions(dir, "q.sock");
  std::string source = corpusSource(2);
  Request req;
  req.cmd = "report";
  req.source = source;

  std::string snap;
  std::string cold_sig;
  {
    MfcDaemon d(opts);
    JsonValue cold = dispatch(d, req);
    ASSERT_TRUE(cold.get("ok").asBool());
    cold_sig = cold.get("signature").asString();
    snap = d.store().snapshotPath();
  }
  // Simulate a kill -9 mid-write landing a torn file at the live name
  // (the atomic-rename path makes this impossible for save(); emulate
  // an external corruption such as a disk error).
  {
    std::ifstream in(snap, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string bytes = ss.str();
    ASSERT_FALSE(bytes.empty());
    std::ofstream out(snap, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 3));
  }

  MfcDaemon d(opts);
  EXPECT_FALSE(d.store().open());
  JsonValue st = dispatch(d, std::string("{\"cmd\":\"status\"}"));
  EXPECT_EQ(st.get("store").get("quarantined").asNumber(), 1.0);
  EXPECT_EQ(st.get("store").get("loaded").asBool(), false);
  EXPECT_TRUE(st.get("store").has("load_error"));

  // Cold re-analysis produces the exact same plans...
  JsonValue cold = dispatch(d, req);
  ASSERT_TRUE(cold.get("ok").asBool());
  EXPECT_FALSE(cold.get("cached").asBool());
  EXPECT_EQ(cold.get("signature").asString(), cold_sig);
  // ...and (flush_every=1) the snapshot is already clean again.
  JsonValue warm = dispatch(d, req);
  EXPECT_TRUE(warm.get("cached").asBool());
  EXPECT_EQ(warm.get("signature").asString(), cold_sig);

  struct stat s;
  EXPECT_EQ(::stat(snap.c_str(), &s), 0);
  EXPECT_EQ(::stat((snap + ".quarantine-1").c_str(), &s), 0);
}

// ---------------------------------------------------------------------
// Incremental serving: editing one procedure of a served source must
// re-analyze only the change-impact set (the edited procedure plus its
// transitive callers), replay the rest from the persisted deep
// summaries, produce plans byte-identical to a cold in-process compile,
// and surface all of that through the response fields and the daemon's
// `status` incremental counters.

TEST(Server, EditedSourceReplaysUnchangedProcsAndCountsIt) {
  PerfStats::instance().resetAll();
  TempDir dir;
  MfcDaemon d(testOptions(dir, "i.sock"));

  // `main` calls two independent leaves; editing `right` must leave
  // `left` replayable.
  auto program = [](const char* right_body) {
    return std::string("proc left(real v[n], int n) {\n"
                       "  for i = 0 to n - 1 {\n"
                       "    v[i] = v[i] + 1.0;\n"
                       "  }\n"
                       "}\n"
                       "proc right(real v[n], int n) {\n"
                       "  for i = 0 to n - 1 {\n") +
           right_body +
           "  }\n"
           "}\n"
           "proc main() {\n"
           "  real a[16];\n"
           "  real b[16];\n"
           "  for i = 0 to 15 {\n"
           "    a[i] = noise(i);\n"
           "    b[i] = noise(i);\n"
           "  }\n"
           "  left(a, 16);\n"
           "  right(b, 16);\n"
           "  sink(a[3]);\n"
           "  sink(b[3]);\n"
           "}\n";
  };
  const std::string original = program("    v[i] = v[i] * 2.0;\n");
  const std::string edited = program("    v[i] = v[i] * 3.0;\n");

  Request req;
  req.cmd = "report";
  req.source = original;
  JsonValue cold = dispatch(d, req);
  ASSERT_TRUE(cold.get("ok").asBool());
  EXPECT_FALSE(cold.get("cached").asBool());
  // First sight of the program: the incremental engine runs but finds
  // nothing to replay.
  EXPECT_EQ(cold.get("procs_analyzed").asNumber(), 3.0);
  EXPECT_EQ(cold.get("procs_replayed").asNumber(), 0.0);

  req.source = edited;
  JsonValue inc = dispatch(d, req);
  ASSERT_TRUE(inc.get("ok").asBool());
  EXPECT_FALSE(inc.get("cached").asBool());
  // Change-impact set of the `right` edit: {right, main}; `left` replays.
  EXPECT_EQ(inc.get("procs_analyzed").asNumber(), 2.0);
  EXPECT_EQ(inc.get("procs_replayed").asNumber(), 1.0);
  EXPECT_EQ(inc.get("degraded").asNumber(), 0.0);

  // Cold equivalence: the partially-replayed run's plans are byte-
  // identical to a fresh in-process compile of the edited source.
  DiagEngine diags;
  auto cp = compileSource(edited, diags);
  ASSERT_TRUE(cp) << diags.dump();
  EXPECT_EQ(inc.get("signature").asString(), planSignature(*cp));
  EXPECT_EQ(inc.get("report").asString(), renderPlanReport(*cp));

  // The status counters tell the same story.
  JsonValue st = dispatch(d, std::string("{\"cmd\":\"status\"}"));
  JsonValue c = st.get("incremental");
  EXPECT_EQ(c.get("runs").asNumber(), 2.0);
  EXPECT_EQ(c.get("procs_analyzed").asNumber(), 5.0);
  EXPECT_EQ(c.get("procs_replayed").asNumber(), 1.0);
  EXPECT_EQ(c.get("last_dirty_size").asNumber(), 2.0);
  EXPECT_GE(c.get("fingerprint_hits").asNumber(), 1.0);
  EXPECT_GE(c.get("fingerprint_misses").asNumber(), 1.0);

  // A warm repeat of the edited source is served from the response
  // cache and does not move the incremental counters.
  JsonValue warm = dispatch(d, req);
  EXPECT_TRUE(warm.get("cached").asBool());
  JsonValue st2 = dispatch(d, std::string("{\"cmd\":\"status\"}"));
  EXPECT_EQ(st2.get("incremental").get("runs").asNumber(), 2.0);
}

// ---------------------------------------------------------------------
// Real sockets.

TEST(Server, SocketRoundTripAndDrain) {
  TempDir dir;
  ServerOptions opts = testOptions(dir, "d.sock");
  MfcDaemon d(opts);
  std::string err;
  ASSERT_TRUE(d.start(err)) << err;

  JsonValue v;
  ASSERT_TRUE(server::daemonCall(opts.socket_path, simpleReq("ping"), v, err))
      << err;
  EXPECT_TRUE(v.get("ok").asBool());

  Request req;
  req.cmd = "report";
  req.source = corpusSource(3);
  ASSERT_TRUE(server::daemonCall(opts.socket_path, req, v, err)) << err;
  ASSERT_TRUE(v.get("ok").asBool());
  DiagEngine diags;
  auto cp = compileSource(req.source, diags);
  ASSERT_TRUE(cp);
  EXPECT_EQ(v.get("report").asString(), renderPlanReport(*cp));

  // A second daemon must refuse to steal the live socket.
  MfcDaemon d2(opts);
  std::string err2;
  EXPECT_FALSE(d2.start(err2));
  EXPECT_FALSE(err2.empty());

  // shutdown over the wire drains and flushes.
  ASSERT_TRUE(
      server::daemonCall(opts.socket_path, simpleReq("shutdown"), v, err))
      << err;
  EXPECT_TRUE(v.get("stopping").asBool());
  EXPECT_EQ(d.wait(), 0);
  struct stat s;
  EXPECT_NE(::stat(opts.socket_path.c_str(), &s), 0) << "socket not unlinked";
  EXPECT_EQ(::stat((opts.store_dir + "/summary.snap").c_str(), &s), 0)
      << "drain did not flush the store";

  // With the socket gone (stale path unlinked), a new daemon can bind.
  std::string err3;
  ASSERT_TRUE(d2.start(err3)) << err3;
  d2.requestStop();
  EXPECT_EQ(d2.wait(), 0);
}

TEST(Server, OversizedRequestsAreRejectedNotBuffered) {
  TempDir dir;
  ServerOptions opts = testOptions(dir, "big.sock");
  opts.max_request_bytes = 1024;
  MfcDaemon d(opts);
  std::string err;
  ASSERT_TRUE(d.start(err)) << err;

  std::string huge = "{\"cmd\":\"report\",\"source\":\"" +
                     std::string(4096, 'x') + "\"}";
  std::string line;
  ASSERT_TRUE(server::daemonRoundTrip(opts.socket_path, huge, line, err))
      << err;
  JsonValue v;
  ASSERT_TRUE(parseJson(line, v, err)) << err;
  EXPECT_FALSE(v.get("ok").asBool());
  EXPECT_EQ(v.get("error").asString(), "request-too-large");

  d.requestStop();
  EXPECT_EQ(d.wait(), 0);
}

TEST(Server, FullQueueShedsWithOverloadedResponse) {
  TempDir dir;
  ServerOptions opts = testOptions(dir, "o.sock");
  opts.workers = 1;
  opts.queue_limit = 1;
  MfcDaemon d(opts);
  std::string err;
  ASSERT_TRUE(d.start(err)) << err;

  // Stall the single worker, then fill the queue of 1; every further
  // request must be shed *immediately* with `overloaded` (not block).
  auto stall = [&](int ms) {
    return std::thread([&, ms] {
      Request r;
      r.cmd = "sleep";
      r.sleep_ms = ms;
      JsonValue resp;
      std::string e;
      server::daemonCall(opts.socket_path, r, resp, e);
    });
  };
  std::thread t1 = stall(1500);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::thread t2 = stall(1500);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  int shed_seen = 0;
  for (int i = 0; i < 3; ++i) {
    JsonValue v;
    std::string e;
    ASSERT_TRUE(server::daemonCall(opts.socket_path, simpleReq("ping"), v, e))
        << e;
    if (!v.get("ok").asBool() &&
        v.get("error").asString() == "overloaded")
      ++shed_seen;
  }
  EXPECT_GE(shed_seen, 1) << "full queue never shed";
  t1.join();
  t2.join();

  // After the stalls drain, service resumes normally.
  JsonValue v;
  ASSERT_TRUE(server::daemonCall(opts.socket_path, simpleReq("ping"), v, err))
      << err;
  EXPECT_TRUE(v.get("ok").asBool());
  EXPECT_GE(d.stats().shed.load(), 1u);

  d.requestStop();
  EXPECT_EQ(d.wait(), 0);
}

}  // namespace
}  // namespace padfa
