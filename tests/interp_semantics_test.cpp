// Deeper MF semantics tests: scoping, return, intrinsic edge cases,
// negative steps, copy-out scalars, reduction identities, and runtime
// statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "dataflow/analysis.h"
#include "interp/interp.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace padfa {
namespace {

struct Prog {
  std::unique_ptr<Program> program;
  AnalysisResult pred;
};

Prog build(std::string_view src) {
  Prog p;
  DiagEngine diags;
  p.program = parseProgram(src, diags);
  EXPECT_NE(p.program, nullptr) << diags.dump();
  if (!p.program) return p;
  EXPECT_TRUE(analyze(*p.program, diags)) << diags.dump();
  p.pred = analyzeProgram(*p.program, AnalysisConfig::predicated());
  return p;
}

double checksum(std::string_view src) {
  Prog p = build(src);
  return execute(*p.program, {}).checksum;
}

TEST(Semantics, BlockScopedDeclsResetPerIteration) {
  // `t` is re-declared (and zero-initialized) every iteration.
  EXPECT_DOUBLE_EQ(checksum(R"(
proc main() {
  real total; total = 0.0;
  for i = 0 to 4 {
    real t;
    t = t + 1.0;
    total = total + t;
  }
  sink(total);
}
)"),
                   5.0);
}

TEST(Semantics, DeclInitializersEvaluate) {
  EXPECT_DOUBLE_EQ(checksum(R"(
proc main() {
  int a; a = 3;
  int b; b = a * 2 + 1;
  real c; c = b * 0.5;
  sink(c);
}
)"),
                   3.5);
}

TEST(Semantics, ReturnUnwindsNestedBlocks) {
  EXPECT_DOUBLE_EQ(checksum(R"(
proc main() {
  real x; x = 1.0;
  for i = 0 to 9 {
    if (i == 3) {
      sink(x + i);
      return;
    }
    x = x + 1.0;
  }
  sink(100.0);
}
)"),
                   4.0 + 3.0);  // x became 4 after i=0,1,2; sink(4+3)
}

TEST(Semantics, ReturnFromCalleeOnly) {
  EXPECT_DOUBLE_EQ(checksum(R"(
proc maybe(real v[1], int stop) {
  if (stop > 0) { return; }
  v[0] = 7.0;
}
proc main() {
  real a[1];
  maybe(a, 1);
  sink(a[0]);   // 0: callee returned before writing
  maybe(a, 0);
  sink(a[0]);   // 7
}
)"),
                   7.0);
}

TEST(Semantics, NegativeStepLoops) {
  EXPECT_DOUBLE_EQ(checksum(R"(
proc main() {
  real s; s = 0.0;
  for i = 10 to 1 step 0 - 2 { s = s + i; }
  sink(s);
}
)"),
                   10 + 8 + 6 + 4 + 2);
}

TEST(Semantics, ZeroTripLoops) {
  EXPECT_DOUBLE_EQ(checksum(R"(
proc main() {
  real s; s = 5.0;
  for i = 3 to 2 { s = s + 100.0; }
  sink(s);
}
)"),
                   5.0);
}

TEST(Semantics, IntrinsicEdgeCases) {
  EXPECT_DOUBLE_EQ(checksum(R"(
proc main() {
  int a; a = min(3, -2);
  int b; b = max(3, -2);
  int c; c = abs(0 - 9);
  real d; d = sqrt(16.0);
  real e; e = min(1.5, 2);
  sink(a + b + c + d + e);
}
)"),
                   -2 + 3 + 9 + 4.0 + 1.5);
}

TEST(Semantics, ShortCircuitEvaluation) {
  // The second operand of && must not evaluate when the first is false:
  // here it would divide by zero.
  EXPECT_DOUBLE_EQ(checksum(R"(
proc main() {
  int z; z = 0;
  int r; r = 0;
  if (z != 0 && 10 / z > 1) { r = 1; }
  if (z == 0 || 10 / z > 1) { r = r + 2; }
  sink(r);
}
)"),
                   2.0);
}

TEST(Semantics, IntegerModuloAndNegatives) {
  EXPECT_DOUBLE_EQ(checksum(R"(
proc main() {
  int a; a = 7 % 3;
  int b; b = 0 - 7;
  int c; c = b / 2;
  sink(a + c);
}
)"),
                   1 - 3);  // C++ truncation semantics
}

TEST(Semantics, CopyOutScalarsInParallelLoop) {
  // `last` is written every iteration: the parallel version must copy
  // out the final iteration's value.
  Prog p = build(R"(
proc main() {
  real a[100];
  real last; last = 0.0;
  for i = 0 to 99 {
    a[i] = noise(i);
    last = a[i] * 2.0;
  }
  sink(last);
}
)");
  InterpStats seq = execute(*p.program, {});
  InterpOptions opt;
  opt.plans = &p.pred;
  opt.num_threads = 4;
  InterpStats par = execute(*p.program, opt);
  EXPECT_DOUBLE_EQ(par.checksum, seq.checksum);
  EXPECT_GE(par.parallel_loops_entered, 1u);
}

TEST(Semantics, MinMaxReductionsParallel) {
  Prog p = build(R"(
proc main() {
  real a[5000];
  for i = 0 to 4999 { a[i] = noise(i); }
  real lo; lo = 1000000.0;
  real hi; hi = 0.0 - 1000000.0;
  for i = 0 to 4999 {
    lo = min(lo, a[i]);
    hi = max(hi, a[i]);
  }
  sink(lo);
  sink(hi);
}
)");
  InterpStats seq = execute(*p.program, {});
  InterpOptions opt;
  opt.plans = &p.pred;
  opt.num_threads = 4;
  InterpStats par = execute(*p.program, opt);
  // Min/max reductions are exact (no reassociation error).
  EXPECT_DOUBLE_EQ(par.checksum, seq.checksum);
}

TEST(Semantics, ProductReductionParallel) {
  Prog p = build(R"(
proc main() {
  real a[64];
  for i = 0 to 63 { a[i] = 1.0 + noise(i) * 0.01; }
  real prod; prod = 1.0;
  for i = 0 to 63 { prod = prod * a[i]; }
  sink(prod);
}
)");
  InterpStats seq = execute(*p.program, {});
  InterpOptions opt;
  opt.plans = &p.pred;
  opt.num_threads = 3;
  InterpStats par = execute(*p.program, opt);
  EXPECT_NEAR(par.checksum, seq.checksum, 1e-12 * std::abs(seq.checksum));
}

TEST(Semantics, RuntimeTestStatisticsTracked) {
  Prog p = build(R"(
proc kernel(real x[300], int d) {
  for i = 100 to 199 { x[i] = x[i - d] + 1.0; }
}
proc main() {
  real x[300];
  for j = 0 to 299 { x[j] = noise(j); }
  kernel(x, 0 - 100);
  kernel(x, 3);
  sink(x[150]);
}
)");
  InterpOptions opt;
  opt.plans = &p.pred;
  opt.num_threads = 2;
  InterpStats s = execute(*p.program, opt);
  EXPECT_EQ(s.runtime_tests_evaluated, 2u);
  EXPECT_EQ(s.runtime_tests_passed, 1u);  // d=150 passes, d=3 fails
  EXPECT_GT(s.runtime_test_atoms, 0u);
}

TEST(Semantics, SimulatedTimeNoGreaterThanWallOnSingleCore) {
  Prog p = build(R"(
proc main() {
  real a[20000];
  for i = 0 to 19999 { a[i] = noise(i) * 2.0 + 1.0; }
  sink(a[5]);
}
)");
  InterpOptions opt;
  opt.plans = &p.pred;
  opt.num_threads = 4;
  InterpStats s = execute(*p.program, opt);
  EXPECT_GT(s.simulated_seconds, 0.0);
  EXPECT_LE(s.simulated_seconds, s.total_seconds * 1.5 + 0.01);
}

TEST(Semantics, SinkCountsAndAccumulates) {
  Prog p = build(R"(
proc main() {
  for i = 1 to 4 { sink(i); }
}
)");
  InterpStats s = execute(*p.program, {});
  EXPECT_EQ(s.sink_count, 4u);
  EXPECT_DOUBLE_EQ(s.checksum, 10.0);
}

}  // namespace
}  // namespace padfa
