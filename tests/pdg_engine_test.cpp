// Unit tests for the generic fixpoint engine (pdg/dataflow.h) on
// hand-built CFGs — exercising the engine in isolation from the MF
// frontend — plus CFG construction and reaching-defs/liveness clients
// over small compiled programs.
#include <gtest/gtest.h>

#include "driver/padfa.h"
#include "pdg/cfg.h"
#include "pdg/dataflow.h"
#include "pdg/pdg.h"
#include "pdg/reaching.h"

namespace padfa {
namespace {

// ---------------------------------------------------------- hand CFGs --

/// A gen/kill bit-vector domain with per-block sets, for driving the
/// engine without any frontend.
struct GenKill {
  using Fact = BitFact;
  static constexpr bool kForward = true;
  size_t nbits = 0;
  std::vector<std::vector<size_t>> gen;   // per block
  std::vector<std::vector<size_t>> kill;  // per block

  Fact boundary() const { return Fact(nbits); }
  Fact initial() const { return Fact(nbits); }
  bool merge(Fact& into, const Fact& from) const {
    return into.unionWith(from);
  }
  Fact transfer(const BasicBlock& b, Fact in) const {
    for (size_t k : kill[b.id]) in.clear(k);
    for (size_t g : gen[b.id]) in.set(g);
    return in;
  }
};

/// Assemble a ProcCfg skeleton from a block-level edge list.
ProcCfg makeCfg(size_t nblocks, std::vector<std::pair<uint32_t, uint32_t>> edges,
                std::vector<std::pair<uint32_t, uint32_t>> back = {}) {
  ProcCfg cfg;
  cfg.blocks.resize(nblocks);
  for (uint32_t b = 0; b < nblocks; ++b) cfg.blocks[b].id = b;
  for (auto [f, t] : edges) {
    cfg.blocks[f].succs.push_back(t);
    cfg.blocks[t].preds.push_back(f);
  }
  cfg.back_edges = std::move(back);
  cfg.entry_block = 0;
  cfg.exit_block = static_cast<uint32_t>(nblocks - 1);
  cfg.computeRpo();
  return cfg;
}

TEST(DataflowEngine, DiamondMergesBothArms) {
  // 0 -> 1 -> {2, 3} -> 4; block 2 gens bit0, block 3 gens bit1.
  ProcCfg cfg = makeCfg(5, {{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}});
  GenKill dom;
  dom.nbits = 2;
  dom.gen = {{}, {}, {0}, {1}, {}};
  dom.kill = {{}, {}, {}, {}, {}};
  BlockDataflow<GenKill> engine(cfg, dom);
  engine.run();
  EXPECT_TRUE(engine.inOf(4).test(0));
  EXPECT_TRUE(engine.inOf(4).test(1));
  EXPECT_FALSE(engine.inOf(2).test(1));
  // A structured acyclic CFG converges in one changing sweep (+1 check).
  EXPECT_LE(engine.stats().sweeps, 2u);
}

TEST(DataflowEngine, KillStopsPropagation) {
  ProcCfg cfg = makeCfg(4, {{0, 1}, {1, 2}, {2, 3}});
  GenKill dom;
  dom.nbits = 1;
  dom.gen = {{}, {0}, {}, {}};
  dom.kill = {{}, {}, {0}, {}};
  BlockDataflow<GenKill> engine(cfg, dom);
  engine.run();
  EXPECT_TRUE(engine.inOf(2).test(0));
  EXPECT_FALSE(engine.inOf(3).test(0));
}

TEST(DataflowEngine, LoopBackEdgeCarriesFactUnlessSkipped) {
  // 0 -> 1(head) -> 2(body) -> 1, 1 -> 3. Body gens bit0.
  ProcCfg cfg = makeCfg(4, {{0, 1}, {1, 2}, {2, 1}, {1, 3}}, {{2, 1}});
  GenKill dom;
  dom.nbits = 1;
  dom.gen = {{}, {}, {0}, {}};
  dom.kill = {{}, {}, {}, {}};
  BlockDataflow<GenKill> full(cfg, dom);
  full.run();
  EXPECT_TRUE(full.inOf(1).test(0)) << "fact flows around the back edge";
  EXPECT_TRUE(full.inOf(3).test(0));

  BlockDataflow<GenKill> acyclic(cfg, dom, allBackEdges(cfg));
  acyclic.run();
  EXPECT_FALSE(acyclic.inOf(1).test(0)) << "skipped back edge must not merge";
  // In a structured CFG the exit hangs off the header, so a body fact
  // can only reach it through the back edge: skipping it cuts that too.
  EXPECT_FALSE(acyclic.inOf(3).test(0));
}

TEST(DataflowEngine, NestedLoopSkipIsPerLoop) {
  // 0 -> 1(outer head) -> 2(inner head) -> 3(inner body) -> 2,
  // 2 -> 4(outer latch) -> 1, 1 -> 5. The inner HEAD (block 2, which is
  // also outer-loop body) gens bit0 — so the fact can travel around
  // either loop's back edge independently.
  ProcCfg cfg = makeCfg(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 2}, {2, 4}, {4, 1}, {1, 5}},
      {{3, 2}, {4, 1}});
  GenKill dom;
  dom.nbits = 1;
  dom.gen = {{}, {}, {0}, {}, {}, {}};
  dom.kill = {{}, {}, {}, {}, {}, {}};

  // Skipping only the outer back edge: the fact still cycles within the
  // inner loop (3 -> 2 intact) but no longer feeds the outer head or
  // the exit that hangs off it.
  BlockDataflow<GenKill> no_outer(cfg, dom, EdgeSet{{4, 1}});
  no_outer.run();
  EXPECT_TRUE(no_outer.inOf(4).test(0));
  EXPECT_TRUE(no_outer.inOf(2).test(0)) << "inner back edge still cycles";
  EXPECT_FALSE(no_outer.inOf(1).test(0)) << "outer head no longer fed back";
  EXPECT_FALSE(no_outer.inOf(5).test(0));

  // Skipping only the inner back edge: the outer feedback path
  // 2 -> 4 -> 1 -> 2 still carries the fact everywhere.
  BlockDataflow<GenKill> no_inner(cfg, dom, EdgeSet{{3, 2}});
  no_inner.run();
  EXPECT_TRUE(no_inner.inOf(1).test(0));
  EXPECT_TRUE(no_inner.inOf(2).test(0));
  EXPECT_TRUE(no_inner.inOf(5).test(0));
}

// ----------------------------------------------- CFG over MF programs --

const char* kAccum = R"(
proc main() {
  real a[4];
  for i = 0 to 3 { a[i] = noise(i); }
  real s; s = 0.0;
  for i = 0 to 3 { s = s + a[i]; }
  sink(s);
}
)";

CompiledProgram compile(const char* src) {
  DiagEngine diags;
  auto cp = compileSource(src, diags);
  EXPECT_TRUE(cp) << diags.dump();
  return std::move(*cp);
}

TEST(Cfg, StructureOfAccumulator) {
  CompiledProgram cp = compile(kAccum);
  ProcCfg cfg = buildCfg(*cp.program, *cp.program->procs[0]);
  EXPECT_EQ(cfg.nodes[cfg.entry_node].kind, CfgNodeKind::Entry);
  EXPECT_EQ(cfg.nodes[cfg.exit_node].kind, CfgNodeKind::Exit);
  EXPECT_EQ(cfg.back_edges.size(), 2u) << "one back edge per loop";
  // Node ids are AST pre-order: two identical builds agree exactly.
  ProcCfg again = buildCfg(*cp.program, *cp.program->procs[0]);
  ASSERT_EQ(cfg.nodes.size(), again.nodes.size());
  for (size_t i = 0; i < cfg.nodes.size(); ++i) {
    EXPECT_EQ(cfg.nodes[i].kind, again.nodes[i].kind);
    EXPECT_EQ(cfg.nodes[i].block, again.nodes[i].block);
  }
  EXPECT_EQ(cfg.rpo, again.rpo);
}

TEST(ReachingDefsClient, CarriedVsIndependent) {
  CompiledProgram cp = compile(kAccum);
  const ProcDecl& proc = *cp.program->procs[0];
  ProcCfg cfg = buildCfg(*cp.program, proc);

  // Locate the accumulator update `s = s + a[i]` and the second loop.
  uint32_t update = kNoNode;
  const ForStmt* loop2 = nullptr;
  for (const CfgNode& n : cfg.nodes) {
    if (n.kind == CfgNodeKind::Assign && !n.defs.empty() &&
        !n.defs[0]->isArray() &&
        std::string(cp.interner().str(n.defs[0]->name)) == "s" &&
        n.loop != nullptr) {
      update = n.id;
      loop2 = n.loop;
    }
  }
  ASSERT_NE(update, kNoNode);
  ASSERT_NE(loop2, nullptr);

  ReachingDefs full(cfg);
  full.run();
  ReachingDefs without(cfg, backEdgesOf(cfg, loop2));
  without.run();

  // The update's own definition reaches its use only around loop2's
  // back edge: present in the full solution, absent when loop2's back
  // edge is skipped.
  uint32_t self_def = kNoNode;
  for (uint32_t d = 0; d < full.numDefs(); ++d)
    if (full.defNode(d) == update) self_def = d;
  ASSERT_NE(self_def, kNoNode);
  EXPECT_TRUE(full.reachingIn(update).test(self_def));
  EXPECT_FALSE(without.reachingIn(update).test(self_def));
}

TEST(LivenessClient, DeadStoreAtExitIsNotLiveOut) {
  CompiledProgram cp = compile(R"(
proc main() {
  int x; x = 1;
  int y; y = x + 2;
  sink(y);
  x = 5;
}
)");
  const ProcDecl& proc = *cp.program->procs[0];
  ProcCfg cfg = buildCfg(*cp.program, proc);
  Liveness live(cfg);
  live.run();
  const VarDecl* x = nullptr;
  std::vector<uint32_t> x_stores;
  for (const CfgNode& n : cfg.nodes) {
    if (n.kind != CfgNodeKind::Assign || n.defs.empty()) continue;
    if (std::string(cp.interner().str(n.defs[0]->name)) == "x") {
      x = n.defs[0];
      x_stores.push_back(n.id);
    }
  }
  ASSERT_EQ(x_stores.size(), 2u);
  EXPECT_TRUE(live.liveOut(x_stores[0], x)) << "x = 1 feeds y";
  EXPECT_FALSE(live.liveOut(x_stores[1], x)) << "x = 5 is a dead store";
}

TEST(Pdg, AccumulatorEdgesAndDeterminism) {
  CompiledProgram cp = compile(kAccum);
  ProgramPdg pdg = buildPdg(*cp.program, cp.loops);
  ASSERT_EQ(pdg.procs.size(), 1u);
  // The s-accumulation must carry a flow dependence on its loop, and
  // the first loop's a[i] writes must not (distinct elements, proven by
  // the conflict system).
  bool carried_s = false, carried_a = false;
  for (const PdgEdge& e : pdg.procs[0].edges) {
    if (!e.carried || !e.var) continue;
    std::string name(cp.interner().str(e.var->name));
    if (name == "s" && e.kind == PdgEdgeKind::Flow) carried_s = true;
    if (name == "a") carried_a = true;
  }
  EXPECT_TRUE(carried_s);
  EXPECT_FALSE(carried_a);

  // Byte-stable exports across two independent compiles.
  CompiledProgram cp2 = compile(kAccum);
  ProgramPdg pdg2 = buildPdg(*cp2.program, cp2.loops);
  EXPECT_EQ(pdgToDot(pdg, *cp.program), pdgToDot(pdg2, *cp2.program));
  EXPECT_EQ(pdgToJson(pdg, *cp.program), pdgToJson(pdg2, *cp2.program));
}

}  // namespace
}  // namespace padfa
