// End-to-end tests of the array data-flow analysis: baseline behaviors
// (independence, recurrences, privatization, reductions) and the paper's
// Figure 1 scenarios for the predicated extension.
#include <gtest/gtest.h>

#include "dataflow/analysis.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace padfa {
namespace {

struct Analyzed {
  std::unique_ptr<Program> program;
  AnalysisResult base;
  AnalysisResult pred;

  const ForStmt* loopAtLine(uint32_t line) const {
    for (const auto& [loop, plan] : pred.plans)
      if (loop->loc.line == line) return loop;
    return nullptr;
  }
  const LoopPlan& basePlan(const ForStmt* l) const {
    return base.plans.at(l);
  }
  const LoopPlan& predPlan(const ForStmt* l) const {
    return pred.plans.at(l);
  }
};

Analyzed analyzeBoth(std::string_view src) {
  Analyzed out;
  DiagEngine diags;
  out.program = parseProgram(src, diags);
  EXPECT_NE(out.program, nullptr) << diags.dump();
  if (!out.program) return out;
  EXPECT_TRUE(analyze(*out.program, diags)) << diags.dump();
  out.base = analyzeProgram(*out.program, AnalysisConfig::baseline());
  out.pred = analyzeProgram(*out.program, AnalysisConfig::predicated());
  return out;
}

// Line numbers below refer to positions of `for` statements in the raw
// strings (first line of the raw string literal is line 1 = empty).

TEST(Analysis, SimpleParallelLoop) {
  auto a = analyzeBoth(R"(
proc main() {
  real x[100];
  for i = 0 to 99 { x[i] = noise(i); }
  sink(x[3]);
}
)");
  const ForStmt* l = a.loopAtLine(4);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(a.basePlan(l).status, LoopStatus::Parallel)
      << a.basePlan(l).reason;
  EXPECT_EQ(a.predPlan(l).status, LoopStatus::Parallel);
}

TEST(Analysis, RecurrenceStaysSequential) {
  auto a = analyzeBoth(R"(
proc main() {
  real x[100];
  x[0] = 1.0;
  for i = 1 to 99 { x[i] = x[i-1] + 1.0; }
  sink(x[99]);
}
)");
  const ForStmt* l = a.loopAtLine(5);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(a.basePlan(l).status, LoopStatus::Sequential);
  EXPECT_EQ(a.predPlan(l).status, LoopStatus::Sequential)
      << a.predPlan(l).reason;
}

TEST(Analysis, DisjointHalvesAreIndependent) {
  // Writes x[i], reads x[i + 100]: never overlapping within bounds.
  auto a = analyzeBoth(R"(
proc main() {
  real x[200];
  for i = 0 to 199 { x[i] = noise(i); }
  for i = 0 to 99 { x[i] = x[i + 100] * 2.0; }
  sink(x[0]);
}
)");
  const ForStmt* l = a.loopAtLine(5);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(a.basePlan(l).status, LoopStatus::Parallel)
      << a.basePlan(l).reason;
}

TEST(Analysis, ScratchArrayPrivatization) {
  // Classic privatizable work array: every iteration writes help[0..9]
  // then reads it back. Dead after the loop.
  auto a = analyzeBoth(R"(
proc main() {
  real out[100];
  real help[10];
  for i = 0 to 99 {
    for j = 0 to 9 { help[j] = noise(i * 10 + j); }
    real s;
    s = 0.0;
    for j = 0 to 9 { s = s + help[j]; }
    out[i] = s;
  }
  sink(out[5]);
}
)");
  const ForStmt* l = a.loopAtLine(5);
  ASSERT_NE(l, nullptr);
  const LoopPlan& bp = a.basePlan(l);
  EXPECT_EQ(bp.status, LoopStatus::Parallel) << bp.reason;
  ASSERT_EQ(bp.privatized.size(), 1u);
  EXPECT_FALSE(bp.privatized[0].copy_in);  // no exposed reads
  EXPECT_FALSE(bp.privatized[0].copy_out); // dead after loop
}

TEST(Analysis, ScalarReductionRecognized) {
  auto a = analyzeBoth(R"(
proc main() {
  real x[1000];
  real total;
  for i = 0 to 999 { x[i] = noise(i); }
  total = 0.0;
  for i = 0 to 999 { total = total + x[i]; }
  sink(total);
}
)");
  const ForStmt* l = a.loopAtLine(7);
  ASSERT_NE(l, nullptr);
  const LoopPlan& bp = a.basePlan(l);
  EXPECT_EQ(bp.status, LoopStatus::Parallel) << bp.reason;
  ASSERT_EQ(bp.reductions.size(), 1u);
  EXPECT_EQ(bp.reductions[0].op, ReductionOp::Sum);
}

TEST(Analysis, SinkInLoopIsNotCandidate) {
  auto a = analyzeBoth(R"(
proc main() {
  real x[10];
  for i = 0 to 9 { x[i] = 1.0; sink(x[i]); }
}
)");
  const ForStmt* l = a.loopAtLine(4);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(a.basePlan(l).status, LoopStatus::NotCandidate);
  EXPECT_EQ(a.predPlan(l).status, LoopStatus::NotCandidate);
}

// --- Figure 1(a): both write and read guarded by the same condition.
// Predicated analysis proves the guarded must-write covers the guarded
// read, eliminating the exposed read; baseline cannot.
TEST(Analysis, Fig1a_SameGuardCompileTime) {
  auto a = analyzeBoth(R"(
proc main(int x) {
  real out[100];
  real help[10];
  for i = 0 to 99 {
    if (x > 5) {
      for j = 0 to 9 { help[j] = noise(i + j); }
    }
    if (x > 5) {
      real s;
      s = 0.0;
      for j = 0 to 9 { s = s + help[j]; }
      out[i] = s;
    }
  }
  sink(out[7]);
}
)");
  const ForStmt* outer = a.loopAtLine(5);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(a.basePlan(outer).status, LoopStatus::Sequential)
      << "baseline should fail: " << a.basePlan(outer).reason;
  const LoopPlan& pp = a.predPlan(outer);
  EXPECT_EQ(pp.status, LoopStatus::Parallel) << pp.reason;
  EXPECT_TRUE(pp.priv_used);
}

// --- Figure 1(b): write guarded by a run-time flag; read of shifted
// elements. Dependence exists only when the flag is set, yielding a
// run-time test.
TEST(Analysis, Fig1b_RuntimeControlFlowTest) {
  auto a = analyzeBoth(R"(
proc main(int t, int n) {
  real help[128];
  real out[100];
  for j = 0 to 127 { help[j] = noise(j); }
  for i = 1 to 99 {
    if (t > 0) {
      help[i] = noise(i);
    }
    out[i] = help[i - 1];
  }
  sink(out[9]);
}
)");
  const ForStmt* l = a.loopAtLine(6);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(a.basePlan(l).status, LoopStatus::Sequential);
  const LoopPlan& pp = a.predPlan(l);
  ASSERT_EQ(pp.status, LoopStatus::RuntimeTest) << pp.reason;
  EXPECT_TRUE(pp.used_predicates);
  // The test should mention t (evaluable at loop entry).
  std::string test = pp.runtime_test.str(a.program->interner);
  EXPECT_NE(test.find("t"), std::string::npos) << test;
}

// --- Figure 1(c): predicate embedding. The write of help[1..d] happens
// under d >= 2; the read of help[1], help[2] is covered only when the
// guard's constraint is embedded into the section system.
TEST(Analysis, Fig1c_EmbeddingCompileTime) {
  auto a = analyzeBoth(R"(
proc main(int d) {
  real out[100];
  real help[64];
  for i = 0 to 99 {
    if (d >= 2) {
      for j = 0 to d { help[j] = noise(i + j); }
    }
    if (d >= 2) {
      out[i] = help[1] + help[2];
    }
  }
  sink(out[3]);
}
)");
  const ForStmt* outer = a.loopAtLine(5);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(a.basePlan(outer).status, LoopStatus::Sequential);
  const LoopPlan& pp = a.predPlan(outer);
  EXPECT_EQ(pp.status, LoopStatus::Parallel) << pp.reason;
}

// --- Figure 1(d): predicate extraction. A dependence with symbolic
// distance d exists only for 1 <= d <= span; projecting the dependence
// system onto the parameter yields that necessary condition, and its
// negation is the run-time independence test.
TEST(Analysis, Fig1d_ExtractionRuntimeTest) {
  auto a = analyzeBoth(R"(
proc main(int d) {
  real x[300];
  for j = 0 to 299 { x[j] = noise(j); }
  for i = 100 to 199 {
    x[i] = x[i - d] + 1.0;
  }
  sink(x[150]);
}
)");
  const ForStmt* l = a.loopAtLine(5);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(a.basePlan(l).status, LoopStatus::Sequential);
  const LoopPlan& pp = a.predPlan(l);
  ASSERT_EQ(pp.status, LoopStatus::RuntimeTest) << pp.reason;
  EXPECT_TRUE(pp.used_extraction);
  std::string test = pp.runtime_test.str(a.program->interner);
  EXPECT_NE(test.find("d"), std::string::npos) << test;
}

// --- Figure 1(d) boundary-condition variant: the inner loop writes
// help[0..d-1] and the body reads help[0..1]; the exposed remainder is
// disjoint from the writes for every d, so privatization with copy-in
// parallelizes this at compile time under predicated analysis.
TEST(Analysis, Fig1d_BoundaryExposurePrivatizes) {
  auto a = analyzeBoth(R"(
proc main(int d) {
  real out[100];
  real help[64];
  for j = 0 to 63 { help[j] = noise(j); }
  for i = 0 to 99 {
    for j = 0 to d - 1 { help[j] = noise(i + j); }
    out[i] = help[0] + help[1];
  }
  sink(out[3]);
}
)");
  const ForStmt* outer = a.loopAtLine(6);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(a.basePlan(outer).status, LoopStatus::Sequential);
  const LoopPlan& pp = a.predPlan(outer);
  EXPECT_EQ(pp.status, LoopStatus::Parallel) << pp.reason;
  ASSERT_EQ(pp.privatized.size(), 1u);
  EXPECT_TRUE(pp.privatized[0].copy_in);
}

TEST(Analysis, InterproceduralPrivatization) {
  // The scratch array is filled by a callee; interprocedural must-write
  // summaries let the caller's loop privatize it.
  auto a = analyzeBoth(R"(
proc fill(real v[m], int m, int seed) {
  for j = 0 to m - 1 { v[j] = noise(seed + j); }
}
proc main() {
  real out[50];
  real help[16];
  for i = 0 to 49 {
    fill(help, 16, i);
    real s;
    s = 0.0;
    for j = 0 to 15 { s = s + help[j]; }
    out[i] = s;
  }
  sink(out[11]);
}
)");
  const ForStmt* outer = a.loopAtLine(8);
  ASSERT_NE(outer, nullptr);
  const LoopPlan& bp = a.basePlan(outer);
  EXPECT_EQ(bp.status, LoopStatus::Parallel) << bp.reason;
  EXPECT_EQ(bp.privatized.size(), 1u);
}

TEST(Analysis, OutputDependencePrivatizedWithCopyOut) {
  // All iterations write x[0]: pure output dependence. Privatization with
  // last-value copy-out parallelizes it (the write region is iteration-
  // invariant and fully must-written).
  auto a = analyzeBoth(R"(
proc main() {
  real x[10];
  for i = 0 to 9 { x[0] = noise(i); }
  sink(x[0]);
}
)");
  const ForStmt* l = a.loopAtLine(4);
  ASSERT_NE(l, nullptr);
  const LoopPlan& bp = a.basePlan(l);
  EXPECT_EQ(bp.status, LoopStatus::Parallel) << bp.reason;
  ASSERT_EQ(bp.privatized.size(), 1u);
  EXPECT_TRUE(bp.privatized[0].copy_out);
}

TEST(Analysis, ConditionalWriteLiveAfterStaysSequential) {
  // The write to x[0] happens only on data-dependent iterations, so no
  // must-write coverage exists and x is live after: not privatizable,
  // and the guard is loop-variant so no run-time test applies.
  auto a = analyzeBoth(R"(
proc main() {
  real x[10];
  for i = 0 to 9 {
    if (inoise(i, 2) > 0) { x[0] = noise(i); }
  }
  sink(x[0]);
}
)");
  const ForStmt* l = a.loopAtLine(4);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(a.basePlan(l).status, LoopStatus::Sequential);
  EXPECT_EQ(a.predPlan(l).status, LoopStatus::Sequential)
      << a.predPlan(l).reason;
}

TEST(Analysis, LoopVariantBoundsNotCandidate) {
  auto a = analyzeBoth(R"(
proc main() {
  real x[100];
  int n;
  n = 10;
  for i = 0 to n {
    x[i] = 1.0;
    n = n + 0;
  }
  sink(x[1]);
}
)");
  const ForStmt* l = a.loopAtLine(6);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(a.predPlan(l).status, LoopStatus::NotCandidate);
}

TEST(Analysis, StridedWritesIndependent) {
  // x[2i] and x[2i+1] from the same iteration never collide across
  // iterations (gcd reasoning).
  auto a = analyzeBoth(R"(
proc main() {
  real x[200];
  for i = 0 to 99 {
    x[2 * i] = noise(i);
    x[2 * i + 1] = noise(i + 1);
  }
  sink(x[0]);
}
)");
  const ForStmt* l = a.loopAtLine(4);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(a.basePlan(l).status, LoopStatus::Parallel)
      << a.basePlan(l).reason;
}

TEST(Analysis, TwoDimensionalRowParallel) {
  auto a = analyzeBoth(R"(
proc main(int n) {
  real g[64, 64];
  for i = 0 to 63 {
    for j = 0 to 63 { g[i, j] = noise(i * 64 + j); }
  }
  sink(g[1, 1]);
}
)");
  const ForStmt* outer = a.loopAtLine(4);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(a.basePlan(outer).status, LoopStatus::Parallel)
      << a.basePlan(outer).reason;
}

TEST(Analysis, AnalysisTimingRecorded) {
  auto a = analyzeBoth("proc main() { real x[4]; x[0] = 1.0; sink(x[0]); }");
  EXPECT_GE(a.base.analysis_seconds, 0.0);
  EXPECT_GE(a.pred.analysis_seconds, 0.0);
}

}  // namespace
}  // namespace padfa
