// Corpus integration tests: every program compiles, analyzes, executes
// correctly in sequential and parallel modes, and produces the gains its
// design calls for (the shape behind Tables 1-3).
#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "driver/padfa.h"

namespace padfa {
namespace {

CompiledProgram compileEntry(const CorpusEntry& e, int scale = 1) {
  DiagEngine diags;
  auto cp = compileSource(instantiate(e, scale), diags);
  EXPECT_TRUE(cp.has_value()) << e.name << ": " << diags.dump();
  return std::move(*cp);
}

struct GainCount {
  int ct = 0;
  int rt = 0;
};

GainCount countGains(const CompiledProgram& cp) {
  GainCount g;
  for (const LoopNode* node : cp.loops.allLoops()) {
    LoopOutcome o = classifyLoop(cp, node->loop);
    if (o == LoopOutcome::PredParallelCT) ++g.ct;
    if (o == LoopOutcome::PredParallelRT) ++g.rt;
  }
  return g;
}

class CorpusProgram : public ::testing::TestWithParam<int> {};

TEST_P(CorpusProgram, CompilesAndMatchesDesignedGain) {
  const CorpusEntry& e = corpus()[static_cast<size_t>(GetParam())];
  CompiledProgram cp = compileEntry(e);
  GainCount g = countGains(cp);
  switch (e.gain) {
    case GainKind::None:
      EXPECT_EQ(g.ct + g.rt, 0)
          << e.name << " unexpectedly gained loops (ct=" << g.ct
          << " rt=" << g.rt << ")";
      break;
    case GainKind::CompileTime:
      EXPECT_GT(g.ct, 0) << e.name << " expected compile-time gains";
      break;
    case GainKind::RuntimeTest:
      EXPECT_GT(g.rt, 0) << e.name << " expected run-time-test gains";
      break;
  }
}

TEST_P(CorpusProgram, ParallelExecutionMatchesSequential) {
  const CorpusEntry& e = corpus()[static_cast<size_t>(GetParam())];
  CompiledProgram cp = compileEntry(e);
  InterpStats seq = execute(*cp.program, {});
  InterpOptions popt;
  popt.plans = &cp.pred;
  popt.num_threads = 4;
  InterpStats par = execute(*cp.program, popt);
  // Reductions reassociate; allow tiny relative FP drift.
  double tol = 1e-9 * (std::abs(seq.checksum) + 1.0);
  EXPECT_NEAR(par.checksum, seq.checksum, tol) << e.name;
  EXPECT_EQ(par.sink_count, seq.sink_count) << e.name;
}

TEST_P(CorpusProgram, BaselinePlansAlsoExecuteCorrectly) {
  const CorpusEntry& e = corpus()[static_cast<size_t>(GetParam())];
  CompiledProgram cp = compileEntry(e);
  InterpStats seq = execute(*cp.program, {});
  InterpOptions bopt;
  bopt.plans = &cp.base;
  bopt.num_threads = 3;
  InterpStats par = execute(*cp.program, bopt);
  double tol = 1e-9 * (std::abs(seq.checksum) + 1.0);
  EXPECT_NEAR(par.checksum, seq.checksum, tol) << e.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, CorpusProgram, ::testing::Range(0, 33),
    [](const ::testing::TestParamInfo<int>& info) {
      return corpus()[static_cast<size_t>(info.param)].name;
    });

TEST(Corpus, ThirtyThreeProgramsInFourSuites) {
  ASSERT_EQ(corpus().size(), 33u);
  int specfp = 0, nas = 0, perfect = 0, other = 0;
  for (const auto& e : corpus()) {
    if (e.suite == "Specfp95") ++specfp;
    else if (e.suite == "NAS") ++nas;
    else if (e.suite == "Perfect") ++perfect;
    else ++other;
  }
  EXPECT_EQ(specfp, 10);
  EXPECT_EQ(nas, 8);
  EXPECT_EQ(perfect, 11);
  EXPECT_EQ(other, 4);
}

TEST(Corpus, NineProgramsGainAndFiveExpectSpeedup) {
  int gains = 0, speedups = 0;
  for (const auto& e : corpus()) {
    if (e.gain != GainKind::None) ++gains;
    if (e.speedup_expected) ++speedups;
  }
  EXPECT_EQ(gains, 9);      // paper: additional outer loops in 9 programs
  EXPECT_EQ(speedups, 5);   // paper: improved speedups for 5 programs
}

TEST(Corpus, InstantiateScalesToken) {
  const CorpusEntry* e = corpusEntry("tomcatv");
  ASSERT_NE(e, nullptr);
  std::string s1 = instantiate(*e, 1);
  std::string s2 = instantiate(*e, 2);
  EXPECT_NE(s1.find("64"), std::string::npos);
  EXPECT_NE(s2.find("128"), std::string::npos);
  EXPECT_EQ(s1.find("$N$"), std::string::npos);
}

TEST(Corpus, AggregateShapeMatchesPaper) {
  // Paper shape: base parallelizes over 50% of loops; predicated analysis
  // parallelizes >40% of the inherently parallel remainder. Here we check
  // the compile-time side: counts of loops by outcome across the corpus.
  int total = 0, base_par = 0, gained = 0, candidates = 0;
  for (const auto& e : corpus()) {
    CompiledProgram cp = compileEntry(e);
    for (const LoopNode* node : cp.loops.allLoops()) {
      ++total;
      switch (classifyLoop(cp, node->loop)) {
        case LoopOutcome::BaseParallel: ++base_par; break;
        case LoopOutcome::PredParallelCT:
        case LoopOutcome::PredParallelRT:
          ++gained;
          ++candidates;
          break;
        case LoopOutcome::PredDoacross:
        case LoopOutcome::SequentialBoth:
        case LoopOutcome::NestedInParallel:
          ++candidates;
          break;
        case LoopOutcome::NotCandidate: break;
      }
    }
  }
  EXPECT_GE(total, 150) << "corpus should be loop-rich";
  EXPECT_GT(base_par * 2, total / 2)
      << "base system should parallelize a large fraction";
  EXPECT_GT(gained, 0);
}

}  // namespace
}  // namespace padfa
