// Tests for the predicate lattice: construction from MF conditions,
// boolean algebra simplifications, implication via the affine domain,
// substitution, and run-time evaluation.
#include <gtest/gtest.h>

#include "lang/parser.h"
#include "lang/sema.h"
#include "predicate/pred.h"
#include "symbolic/affine.h"

namespace padfa {
namespace {

// Test fixture: parses a program whose `main` declares scalars and a
// sequence of `if (<cond>) { t = 1; }` statements; cond i is accessible.
class PredTest : public ::testing::Test {
 protected:
  // Builds predicates from condition source strings by wrapping them in a
  // program with int scalars d, n, m, x and real r.
  void build(const std::vector<std::string>& conds) {
    std::string src = "proc main() { int d; int n; int m; int x; real r;\n"
                      "d = 0; n = 0; m = 0; x = 0; r = 0.0;\n";
    for (const auto& c : conds) src += "if (" + c + ") { d = 1; }\n";
    src += "}";
    DiagEngine diags;
    program_ = parseProgram(src, diags);
    ASSERT_NE(program_, nullptr) << diags.dump();
    ASSERT_TRUE(analyze(*program_, diags)) << diags.dump();
    vt_ = std::make_unique<VarTable>(&program_->interner);
    conds_.clear();
    auto& stmts = program_->procs[0]->body->stmts;
    for (size_t i = 5; i < stmts.size(); ++i) {
      auto& ifs = static_cast<IfStmt&>(*stmts[i]);
      conds_.push_back(ifs.cond.get());
    }
    ASSERT_EQ(conds_.size(), conds.size());
  }

  Pred pred(size_t i) {
    return Pred::fromCondition(*conds_.at(i), program_->interner);
  }

  std::unique_ptr<Program> program_;
  std::unique_ptr<VarTable> vt_;
  std::vector<const Expr*> conds_;
};

TEST_F(PredTest, TrueFalseBasics) {
  EXPECT_TRUE(Pred::always().isTrue());
  EXPECT_TRUE(Pred::never().isFalse());
  EXPECT_TRUE((!Pred::always()).isFalse());
  EXPECT_TRUE((Pred::always() && Pred::never()).isFalse());
  EXPECT_TRUE((Pred::always() || Pred::never()).isTrue());
}

TEST_F(PredTest, ConstantConditionsFold) {
  build({"1 < 2", "2 < 1"});
  EXPECT_TRUE(pred(0).isTrue());
  EXPECT_TRUE(pred(1).isFalse());
}

TEST_F(PredTest, ComplementAnnihilatesInAnd) {
  build({"d > 5", "d <= 5"});
  Pred p = pred(0), q = pred(1);
  EXPECT_TRUE((p && q).isFalse());
  EXPECT_TRUE((p || q).isTrue());
}

TEST_F(PredTest, NegationIsInvolutive) {
  build({"d > 5 && n < 3"});
  Pred p = pred(0);
  EXPECT_EQ((!(!p)).key(), p.key());
}

TEST_F(PredTest, DeMorgan) {
  build({"d > 5 && n < 3", "d <= 5 || n >= 3"});
  EXPECT_EQ((!pred(0)).key(), pred(1).key());
}

TEST_F(PredTest, IdempotentAnd) {
  build({"d > 5"});
  Pred p = pred(0);
  EXPECT_EQ((p && p).key(), p.key());
}

TEST_F(PredTest, StructuralImplication) {
  build({"d > 5 && n < 3", "d > 5"});
  EXPECT_TRUE(pred(0).implies(pred(1), *vt_));
  EXPECT_FALSE(pred(1).implies(pred(0), *vt_));
}

TEST_F(PredTest, AffineImplicationStrictBound) {
  // d >= 7 implies d >= 2.
  build({"d >= 7", "d >= 2"});
  EXPECT_TRUE(pred(0).implies(pred(1), *vt_));
  EXPECT_FALSE(pred(1).implies(pred(0), *vt_));
}

TEST_F(PredTest, AffineImplicationWithTwoVars) {
  // d >= n && n >= 4  =>  d >= 3.
  build({"d >= n && n >= 4", "d >= 3"});
  EXPECT_TRUE(pred(0).implies(pred(1), *vt_));
}

TEST_F(PredTest, EqualityImplication) {
  build({"d == 4", "d >= 4", "d <= 4"});
  EXPECT_TRUE(pred(0).implies(pred(1), *vt_));
  EXPECT_TRUE(pred(0).implies(pred(2), *vt_));
  EXPECT_FALSE(pred(1).implies(pred(0), *vt_));
}

TEST_F(PredTest, ImpliedEqualityFromBounds) {
  // d >= 4 && d <= 4  =>  d == 4 (needs both sides of != infeasible).
  build({"d >= 4 && d <= 4", "d == 4"});
  EXPECT_TRUE(pred(0).implies(pred(1), *vt_));
}

TEST_F(PredTest, OrImplication) {
  build({"d > 5", "d > 5 || n < 3"});
  EXPECT_TRUE(pred(0).implies(pred(1), *vt_));
}

TEST_F(PredTest, NonAffineAtomsAreOpaqueButComparable) {
  // Same non-affine condition (real compare) twice: equal keys.
  build({"r > 1.5", "r > 1.5"});
  EXPECT_EQ(pred(0).key(), pred(1).key());
  EXPECT_TRUE(pred(0).implies(pred(1), *vt_));
}

TEST_F(PredTest, FlagConditionBecomesNeZeroAtom) {
  build({"x"});
  Pred p = pred(0);
  EXPECT_EQ(p.kind(), PredKind::Atom);
  EXPECT_EQ(p.node().op, AtomOp::Eq);
  EXPECT_TRUE(p.node().negated);
}

TEST_F(PredTest, AffineUpperBoundCollectsConjuncts) {
  build({"d >= 2 && n <= 10"});
  pb::System sys = pred(0).affineUpperBound(*vt_);
  EXPECT_EQ(sys.size(), 2u);
}

TEST_F(PredTest, AffineUpperBoundIgnoresDisjunction) {
  build({"d >= 2 || n <= 10"});
  pb::System sys = pred(0).affineUpperBound(*vt_);
  EXPECT_TRUE(sys.trivial());
}

TEST_F(PredTest, EvaluateAtoms) {
  build({"d >= 2 && n < 5"});
  // d is the first declared scalar; evaluate with d=3, n=4 and d=3, n=7.
  auto evalWith = [&](double dval, double nval) {
    return pred(0).evaluate([&](const Expr& e) -> double {
      if (e.kind == ExprKind::VarRef) {
        const auto& v = static_cast<const VarRefExpr&>(e);
        std::string_view nm = program_->interner.str(v.name);
        if (nm == "d") return dval;
        if (nm == "n") return nval;
        return 0;
      }
      if (e.kind == ExprKind::IntLit)
        return static_cast<double>(static_cast<const IntLitExpr&>(e).value);
      ADD_FAILURE() << "unexpected expr kind in atom";
      return 0;
    });
  };
  EXPECT_TRUE(evalWith(3, 4));
  EXPECT_FALSE(evalWith(3, 7));
  EXPECT_FALSE(evalWith(1, 4));
}

TEST_F(PredTest, AtomCountMeasuresTestCost) {
  build({"d >= 2 && n < 5 || m == 3"});
  EXPECT_EQ(pred(0).atomCount(), 3u);
  EXPECT_EQ(Pred::always().atomCount(), 0u);
}

TEST_F(PredTest, MentionsAnyOf) {
  build({"d >= 2"});
  Pred p = pred(0);
  std::vector<const VarDecl*> all;
  p.collectReferencedVars(all);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(p.mentionsAnyOf(all));
  EXPECT_FALSE(Pred::always().mentionsAnyOf(all));
}

TEST_F(PredTest, SubstituteRewritesAtoms) {
  build({"d >= 2", "n >= 2"});
  // Substitute d -> n: predicate 0 should become predicate 1.
  std::vector<const VarDecl*> dvars;
  pred(0).collectReferencedVars(dvars);
  ASSERT_EQ(dvars.size(), 1u);
  std::vector<const VarDecl*> nvars;
  pred(1).collectReferencedVars(nvars);
  ASSERT_EQ(nvars.size(), 1u);
  VarRefExpr nref(nvars[0]->name);
  nref.decl = const_cast<VarDecl*>(nvars[0]);
  nref.type = Type::Int;
  Pred sub = pred(0).substitute(
      [&](const VarDecl* dcl) -> const Expr* {
        return dcl == dvars[0] ? &nref : nullptr;
      },
      program_->interner);
  EXPECT_EQ(sub.key(), pred(1).key());
}

TEST_F(PredTest, FromAffineGE0RendersPredicate) {
  build({"d >= 2"});
  // Build LinExpr d - 2 over the VarTable and render it.
  std::vector<const VarDecl*> dvars;
  pred(0).collectReferencedVars(dvars);
  pb::VarId d = vt_->idFor(dvars[0]);
  pb::LinExpr e = pb::LinExpr::var(d) + pb::LinExpr(-2);
  Pred rendered = Pred::fromAffineGE0(e, *vt_, program_->interner);
  EXPECT_FALSE(rendered.isFalse());
  // Semantically equal to d >= 2: mutual implication.
  EXPECT_TRUE(rendered.implies(pred(0), *vt_));
  EXPECT_TRUE(pred(0).implies(rendered, *vt_));
}

TEST_F(PredTest, StrRendering) {
  build({"d >= 2 && n != 3"});
  std::string s = pred(0).str(program_->interner);
  EXPECT_NE(s.find("&&"), std::string::npos);
  EXPECT_NE(s.find("!="), std::string::npos);
}

}  // namespace
}  // namespace padfa
