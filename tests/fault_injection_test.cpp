// Fault-injection property harness for the resource-governance subsystem.
//
// Runs the whole corpus under seeded synthetic budget exhaustion (a
// FaultInjector firing at random charge points) and asserts the graceful
// degradation contract:
//   1. the analysis never crashes — every BudgetExceeded is absorbed at a
//      degradation boundary and every loop still receives a plan;
//   2. soundness monotonicity — the injected run's parallel plan is a
//      subset of the uninjected plan: plans finalized before the first
//      fault are identical, everything after is Sequential + degraded;
//   3. the analysis leaves the program untouched — sequential execution
//      after an injected analysis is bit-identical to the reference;
//   4. parallel execution under the degraded plans still matches the
//      sequential checksum (reductions reorder floating-point sums, so
//      this comparison uses the usual tolerance).
// 30 corpus programs x 7 seeds = 210 injected runs, exceeding the 200-run
// acceptance floor.
#include <gtest/gtest.h>

#include <cmath>

#include "audit/plan_audit.h"
#include "corpus/corpus.h"
#include "driver/padfa.h"
#include "support/fault_injection.h"

namespace padfa {
namespace {

constexpr int kSeedsPerProgram = 7;
constexpr double kFaultRate = 0.002;  // per charge point

class CorpusFaultInjection : public ::testing::TestWithParam<int> {};

TEST_P(CorpusFaultInjection, DegradesSoundlyUnderInjectedExhaustion) {
  const CorpusEntry& entry = corpus()[static_cast<size_t>(GetParam())];
  SCOPED_TRACE(entry.name);
  std::string source = instantiate(entry);

  DiagEngine diags;
  auto program = parseProgram(source, diags);
  ASSERT_TRUE(program) << diags.dump();
  ASSERT_TRUE(analyze(*program, diags)) << diags.dump();

  // Uninjected reference: plans and sequential output.
  AnalysisResult ref = analyzeProgram(*program, AnalysisConfig::predicated());
  InterpStats ref_seq = execute(*program, {});
  double tol = 1e-9 * (std::abs(ref_seq.checksum) + 1.0);

  for (int seed = 1; seed <= kSeedsPerProgram; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultInjector injector(static_cast<uint64_t>(seed) * 7919 +
                               static_cast<uint64_t>(GetParam()),
                           kFaultRate);
    AnalysisConfig cfg = AnalysisConfig::predicated();
    cfg.injector = &injector;

    // (1) Must not throw; every loop of the reference run must still be
    // planned (conservative fallbacks plan loops they skip).
    AnalysisResult res = analyzeProgram(*program, cfg);
    EXPECT_EQ(res.plans.size(), ref.plans.size());

    // (2) Monotonicity: identical prefix, Sequential suffix.
    for (const auto& [loop, plan] : res.plans) {
      const LoopPlan* rp = ref.planFor(loop);
      ASSERT_NE(rp, nullptr) << "plan for a loop the reference never saw";
      if (plan.degraded) {
        EXPECT_EQ(plan.status, LoopStatus::Sequential)
            << "degraded plan must be conservative";
        EXPECT_FALSE(plan.degrade_cause.empty());
      } else {
        EXPECT_EQ(plan.status, rp->status)
            << "non-degraded plan diverged from the uninjected run";
      }
    }
    if (res.degradedCount() > 0) {
      EXPECT_FALSE(res.exhaustion_causes.empty());
      EXPECT_TRUE(res.exhaustion_causes.count("injected"));
    }

    // (2b) The independent plan auditor certifies the injected plans:
    // degradation only ever *removes* parallelism (Sequential plans are
    // never audited), so no injection schedule can smuggle in a plan the
    // auditor refutes as unsound.
    DiagEngine audit_diags;
    AuditReport rep = auditPlans(*program, res, audit_diags);
    EXPECT_TRUE(rep.clean()) << audit_diags.dump();
    EXPECT_EQ(audit_diags.countWithId("audit-unsound"), 0u)
        << audit_diags.dump();

    // (4) Execution under the degraded plans stays correct.
    InterpOptions popt;
    popt.plans = &res;
    popt.num_threads = 3;
    InterpStats par = execute(*program, popt);
    EXPECT_NEAR(par.checksum, ref_seq.checksum, tol)
        << "parallel execution under degraded plans diverged";
  }

  // (3) The injected analyses must not have corrupted the program:
  // sequential execution is bit-identical to the pre-injection reference.
  InterpStats seq_after = execute(*program, {});
  EXPECT_EQ(seq_after.checksum, ref_seq.checksum)
      << "sequential output changed after injected analyses";
  EXPECT_EQ(seq_after.sink_count, ref_seq.sink_count);
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, CorpusFaultInjection,
                         ::testing::Range(0, 30));

TEST(FaultInjectionHarness, InjectionActuallyFires) {
  // Sanity that the harness is not vacuous: at rate 1.0 the very first
  // charge point fires, so a corpus program must come back degraded. If
  // this fails, the probe points are disconnected from the analysis.
  const CorpusEntry& entry = corpus()[0];
  std::string source = instantiate(entry);
  DiagEngine diags;
  auto program = parseProgram(source, diags);
  ASSERT_TRUE(program) << diags.dump();
  ASSERT_TRUE(analyze(*program, diags)) << diags.dump();

  FaultInjector injector(1, 1.0);
  AnalysisConfig cfg = AnalysisConfig::predicated();
  cfg.injector = &injector;
  AnalysisResult res = analyzeProgram(*program, cfg);
  EXPECT_GT(injector.fired(), 0u);
  EXPECT_GT(res.degradedCount(), 0u);
  EXPECT_TRUE(res.exhaustion_causes.count("injected"));
  for (const auto& [loop, plan] : res.plans)
    if (plan.degraded) {
      EXPECT_EQ(plan.status, LoopStatus::Sequential);
    }
}

// ---------------------------------------------------------------------
// Deterministic budget starvation (no injector): the same degradation
// boundaries absorb real resource exhaustion.

TEST(BudgetStarvation, GlobalFmCapDegradesEverythingWithoutCrashing) {
  const CorpusEntry& entry = corpus()[0];
  std::string source = instantiate(entry);
  DiagEngine diags;
  auto program = parseProgram(source, diags);
  ASSERT_TRUE(program) << diags.dump();
  ASSERT_TRUE(analyze(*program, diags)) << diags.dump();

  AnalysisResult ref = analyzeProgram(*program, AnalysisConfig::predicated());

  AnalysisConfig cfg = AnalysisConfig::predicated();
  cfg.budget.max_fm_steps = 1;  // blows at the first elimination
  AnalysisResult res = analyzeProgram(*program, cfg);

  EXPECT_EQ(res.plans.size(), ref.plans.size());
  EXPECT_GT(res.degradedCount(), 0u);
  EXPECT_TRUE(res.degraded_globally);
  EXPECT_TRUE(res.exhaustion_causes.count("fm-steps"));
  for (const auto& [loop, plan] : res.plans) {
    if (plan.degraded) {
      EXPECT_EQ(plan.status, LoopStatus::Sequential);
    }
  }

  // Degraded (all-sequential) plans still execute correctly.
  InterpStats seq = execute(*program, {});
  InterpOptions popt;
  popt.plans = &res;
  popt.num_threads = 3;
  InterpStats par = execute(*program, popt);
  double tol = 1e-9 * (std::abs(seq.checksum) + 1.0);
  EXPECT_NEAR(par.checksum, seq.checksum, tol);
}

TEST(BudgetStarvation, PerLoopSliceKeepsPrefixIdentical) {
  const CorpusEntry& entry = corpus()[0];
  std::string source = instantiate(entry);
  DiagEngine diags;
  auto program = parseProgram(source, diags);
  ASSERT_TRUE(program) << diags.dump();
  ASSERT_TRUE(analyze(*program, diags)) << diags.dump();

  AnalysisResult ref = analyzeProgram(*program, AnalysisConfig::predicated());

  AnalysisConfig cfg = AnalysisConfig::predicated();
  cfg.budget.max_loop_fm_steps = 25;
  AnalysisResult res = analyzeProgram(*program, cfg);

  EXPECT_EQ(res.plans.size(), ref.plans.size());
  for (const auto& [loop, plan] : res.plans) {
    const LoopPlan* rp = ref.planFor(loop);
    ASSERT_NE(rp, nullptr);
    if (plan.degraded)
      EXPECT_EQ(plan.status, LoopStatus::Sequential);
    else
      EXPECT_EQ(plan.status, rp->status);
  }
}

TEST(BudgetStarvation, TinyDeadlineNeverCrashes) {
  // The deadline is checked on a subsampled probe, so whether it fires
  // depends on machine speed; the contract under test is only "no crash,
  // complete and sound plans".
  const CorpusEntry& entry = corpus()[1];
  std::string source = instantiate(entry);
  DiagEngine diags;
  auto program = parseProgram(source, diags);
  ASSERT_TRUE(program) << diags.dump();
  ASSERT_TRUE(analyze(*program, diags)) << diags.dump();

  AnalysisResult ref = analyzeProgram(*program, AnalysisConfig::predicated());

  AnalysisConfig cfg = AnalysisConfig::predicated();
  cfg.budget.deadline_seconds = 1e-9;
  AnalysisResult res = analyzeProgram(*program, cfg);
  EXPECT_EQ(res.plans.size(), ref.plans.size());
  for (const auto& [loop, plan] : res.plans) {
    const LoopPlan* rp = ref.planFor(loop);
    ASSERT_NE(rp, nullptr);
    if (plan.degraded)
      EXPECT_EQ(plan.status, LoopStatus::Sequential);
    else
      EXPECT_EQ(plan.status, rp->status);
  }
}

TEST(FaultInjectorUnit, SeededRunsAreReproducible) {
  FaultInjector a(42, 0.25);
  FaultInjector b(42, 0.25);
  for (int i = 0; i < 1000; ++i)
    ASSERT_EQ(a.shouldFire(), b.shouldFire()) << "draw " << i;
  EXPECT_EQ(a.probes(), 1000u);
  EXPECT_EQ(a.fired(), b.fired());
  EXPECT_GT(a.fired(), 0u);   // rate 0.25 over 1000 draws
  EXPECT_LT(a.fired(), 500u);
}

TEST(FaultInjectorUnit, ZeroRateNeverFires) {
  FaultInjector inj(7, 0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(inj.shouldFire());
}

}  // namespace
}  // namespace padfa
