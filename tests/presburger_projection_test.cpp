// Property tests for Fourier–Motzkin projection and the exactness
// tracking the analysis's soundness relies on: projections are always
// supersets of the true integer shadow, and exact-flagged projections are
// exactly it.
#include <gtest/gtest.h>

#include "presburger/set.h"

namespace padfa::pb {
namespace {

LinExpr X() { return LinExpr::var(0); }
LinExpr Y() { return LinExpr::var(1); }
LinExpr C(int64_t k) { return LinExpr(k); }

// Deterministic pseudo-random generator.
struct Rand {
  uint64_t s;
  explicit Rand(uint64_t seed) : s(seed * 0x9e3779b9u + 1) {}
  uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(next() % static_cast<uint64_t>(hi - lo + 1));
  }
};

System randomSystem(Rand& r, int64_t box) {
  System s;
  // Bounding box keeps brute force cheap.
  s.addGE0(X() + C(box));
  s.addGE0(C(box) - X());
  s.addGE0(Y() + C(box));
  s.addGE0(C(box) - Y());
  int nc = static_cast<int>(r.range(1, 4));
  for (int i = 0; i < nc; ++i) {
    LinExpr e = X() * r.range(-3, 3) + Y() * r.range(-3, 3) + C(r.range(-6, 6));
    if (r.range(0, 3) == 0)
      s.addEQ0(e);
    else
      s.addGE0(e);
  }
  return s;
}

class ProjectionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProjectionSweep, ProjectionIsSupersetOfIntegerShadow) {
  Rand r(static_cast<uint64_t>(GetParam()) + 11);
  constexpr int64_t kBox = 5;
  System s = randomSystem(r, kBox);
  System proj = s;
  bool exact = true;
  ASSERT_TRUE(proj.projectOntoTracked([](VarId v) { return v == 0; },
                                      exact) ||
              true);  // infeasible projection is fine: handled below
  // Brute-force shadow: which x values have some integer y?
  for (int64_t x = -kBox; x <= kBox; ++x) {
    bool has_y = false;
    for (int64_t y = -kBox; y <= kBox; ++y)
      if (s.contains({x, y})) has_y = true;
    if (has_y) {
      EXPECT_TRUE(proj.contains({x, 0}))
          << "x=" << x << " in shadow but excluded by projection of "
          << s.str();
    }
  }
}

TEST_P(ProjectionSweep, ExactProjectionEqualsIntegerShadow) {
  Rand r(static_cast<uint64_t>(GetParam()) + 101);
  constexpr int64_t kBox = 5;
  System s = randomSystem(r, kBox);
  System proj = s;
  bool exact = true;
  if (!proj.projectOntoTracked([](VarId v) { return v == 0; }, exact))
    return;  // infeasibility detected: nothing to compare
  if (!exact) return;  // only the exact claim is checked here
  for (int64_t x = -kBox - 2; x <= kBox + 2; ++x) {
    bool has_y = false;
    for (int64_t y = -kBox - 2; y <= kBox + 2; ++y)
      if (s.contains({x, y})) has_y = true;
    EXPECT_EQ(proj.contains({x, 0}), has_y)
        << "x=" << x << " system " << s.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionSweep, ::testing::Range(0, 120));

TEST(Projection, StridedEqualityIsInexact) {
  // { x == 2y, 0 <= y <= 5 }: integer shadow of x is the even numbers
  // 0..10; the rational projection is [0, 10]. Exactness must be cleared.
  System s;
  s.addEQ0(X() - Y() * 2);
  s.addGE0(Y());
  s.addGE0(C(5) - Y());
  bool exact = true;
  ASSERT_TRUE(s.projectOntoTracked([](VarId v) { return v == 0; }, exact));
  EXPECT_FALSE(exact);
  EXPECT_TRUE(s.contains({4, 0}));
  // Rational shadow includes odd values — that is precisely why the
  // exact flag matters (must-write promotion drops such pieces).
  EXPECT_TRUE(s.contains({3, 0}));
}

TEST(Projection, UnitCoefficientChainIsExact) {
  // { 0 <= y <= 9, y <= x <= y + 1 }: all coefficients on y are unit.
  System s;
  s.addGE0(Y());
  s.addGE0(C(9) - Y());
  s.addGE0(X() - Y());
  s.addGE0(Y() + C(1) - X());
  bool exact = true;
  ASSERT_TRUE(s.projectOntoTracked([](VarId v) { return v == 0; }, exact));
  EXPECT_TRUE(exact);
  for (int64_t x = 0; x <= 10; ++x) EXPECT_TRUE(s.contains({x, 0}));
  EXPECT_FALSE(s.contains({-1, 0}));
  EXPECT_FALSE(s.contains({11, 0}));
}

TEST(SetCap, UnionBeyondCapMarksInexact) {
  Set s;
  for (int64_t k = 0; k < 2 * static_cast<int64_t>(Set::kMaxPieces); ++k) {
    System piece;
    piece.addEQ0(X() - C(3 * k));  // non-coalescable singletons
    s.unionWith(Set(std::move(piece)));
  }
  EXPECT_FALSE(s.exact());
  // Still a sound over-approximation: every singleton is present.
  EXPECT_TRUE(s.contains({0}));
  EXPECT_TRUE(s.contains({3}));
}

TEST(SetCap, SubtractKeepsSoundnessUnderSplitPressure) {
  // Minuend: a long interval; subtrahend: many scattered points. The
  // result may over-approximate (inexact) but must never lose minuend
  // points that were not subtracted.
  System base;
  base.addGE0(X());
  base.addGE0(C(499) - X());
  Set minuend{base};
  Set sub;
  for (int64_t k = 0; k < 40; ++k) {
    System piece;
    piece.addEQ0(X() - C(k * 12));
    sub.unionWith(Set(std::move(piece)));
  }
  Set diff = minuend.subtract(sub);
  for (int64_t x = 0; x <= 499; ++x) {
    bool removed = (x % 12 == 0) && x <= 468;
    if (!removed) {
      EXPECT_TRUE(diff.contains({x})) << x;
    } else if (diff.exact()) {
      EXPECT_FALSE(diff.contains({x})) << x;
    }
  }
}

}  // namespace
}  // namespace padfa::pb
