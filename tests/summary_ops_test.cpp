// Unit tests for the guarded-section algebra in dataflow/summary:
// guarding, embedding, PredSubtract (including the guard-splitting case),
// scalar kills, and approximation flags.
#include <gtest/gtest.h>

#include "dataflow/summary.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace padfa {
namespace {

class SummaryOps : public ::testing::Test {
 protected:
  void SetUp() override {
    // Conditions over scalars d and t for building predicates.
    const char* src = R"(
proc main() {
  int d; int t;
  d = 0; t = 0;
  if (d >= 2) { t = 1; }
  if (t > 0) { d = 1; }
}
)";
    DiagEngine diags;
    program_ = parseProgram(src, diags);
    ASSERT_NE(program_, nullptr) << diags.dump();
    ASSERT_TRUE(analyze(*program_, diags)) << diags.dump();
    vt_ = std::make_unique<VarTable>(&program_->interner);
    auto& stmts = program_->procs[0]->body->stmts;
    d_ge2_ = Pred::fromCondition(
        *static_cast<IfStmt&>(*stmts[2]).cond, program_->interner);
    t_gt0_ = Pred::fromCondition(
        *static_cast<IfStmt&>(*stmts[3]).cond, program_->interner);
    auto& d_ref = static_cast<BinaryExpr&>(
        *static_cast<IfStmt&>(*stmts[2]).cond);
    d_decl_ = static_cast<VarRefExpr&>(*d_ref.lhs).decl;
  }

  // Section {lo <= dim0 <= hi} (constants).
  pb::Set interval(int64_t lo, int64_t hi) {
    pb::System s;
    s.addGE0(pb::LinExpr::var(vt_->dim(0)) - pb::LinExpr(lo));
    s.addGE0(pb::LinExpr(hi) - pb::LinExpr::var(vt_->dim(0)));
    return pb::Set(std::move(s));
  }

  // Section {lo <= dim0 <= d} with symbolic upper bound d.
  pb::Set intervalToD(int64_t lo) {
    pb::System s;
    s.addGE0(pb::LinExpr::var(vt_->dim(0)) - pb::LinExpr(lo));
    pb::LinExpr ub = pb::LinExpr::var(vt_->idFor(d_decl_));
    ub -= pb::LinExpr::var(vt_->dim(0));
    s.addGE0(std::move(ub));
    return pb::Set(std::move(s));
  }

  std::unique_ptr<Program> program_;
  std::unique_ptr<VarTable> vt_;
  Pred d_ge2_, t_gt0_;
  const VarDecl* d_decl_ = nullptr;
};

TEST_F(SummaryOps, GuardListConjoins) {
  GuardedList l = {{Pred::always(), interval(0, 9)}};
  guardList(l, d_ge2_);
  ASSERT_EQ(l.size(), 1u);
  EXPECT_EQ(l[0].guard.key(), d_ge2_.key());
}

TEST_F(SummaryOps, GuardListDropsFalseGuards) {
  GuardedList l = {{!d_ge2_, interval(0, 9)}};
  guardList(l, d_ge2_);  // (!p) && p == false
  EXPECT_TRUE(l.empty());
}

TEST_F(SummaryOps, EmbedGuardsAddsAffineConstraint) {
  GuardedList l = {{d_ge2_, intervalToD(0)}};
  embedGuards(l, *vt_);
  ASSERT_EQ(l.size(), 1u);
  // With d >= 2 embedded, the section must contain (dim0=1, d=2) and must
  // not contain any point with d <= 1.
  pb::VarId d = vt_->idFor(d_decl_);
  std::vector<int64_t> point(std::max<size_t>(d + 1, 8), 0);
  point[vt_->dim(0)] = 1;
  point[d] = 2;
  EXPECT_TRUE(l[0].section.contains(point));
  point[d] = 1;
  point[vt_->dim(0)] = 0;
  EXPECT_FALSE(l[0].section.contains(point));
}

TEST_F(SummaryOps, PredSubtractWithImplication) {
  // Exposed [0,9] guarded d>=2, must-write [0,20] also guarded d>=2:
  // same guard implies full subtraction -> empty.
  GuardedList exposed = {{d_ge2_, interval(0, 9)}};
  GuardedList cover = {{d_ge2_, interval(0, 20)}};
  GuardedList rem = predSubtract(exposed, cover, *vt_);
  EXPECT_TRUE(rem.empty());
}

TEST_F(SummaryOps, PredSubtractSplitsOnUnrelatedGuards) {
  // Exposed unguarded, must-write guarded t>0: remainder must split into
  // (t>0, e-m) and (!(t>0), e).
  GuardedList exposed = {{Pred::always(), interval(0, 9)}};
  GuardedList cover = {{t_gt0_, interval(0, 20)}};
  GuardedList rem = predSubtract(exposed, cover, *vt_);
  ASSERT_EQ(rem.size(), 1u);  // covered part vanishes; only !(t>0) remains
  EXPECT_EQ(rem[0].guard.key(), (!t_gt0_).key());
  EXPECT_TRUE(rem[0].section.contains({5}));
}

TEST_F(SummaryOps, PredSubtractPartialCoverSplitsBoth) {
  GuardedList exposed = {{Pred::always(), interval(0, 9)}};
  GuardedList cover = {{t_gt0_, interval(0, 4)}};
  GuardedList rem = predSubtract(exposed, cover, *vt_);
  // (t>0, [5,9]) and (!(t>0), [0,9]).
  ASSERT_EQ(rem.size(), 2u);
  bool saw_pos = false, saw_neg = false;
  for (const auto& g : rem) {
    if (g.guard.key() == t_gt0_.key()) {
      saw_pos = true;
      EXPECT_FALSE(g.section.contains({2}));
      EXPECT_TRUE(g.section.contains({7}));
    }
    if (g.guard.key() == (!t_gt0_).key()) {
      saw_neg = true;
      EXPECT_TRUE(g.section.contains({2}));
    }
  }
  EXPECT_TRUE(saw_pos);
  EXPECT_TRUE(saw_neg);
}

TEST_F(SummaryOps, KillScalarsMayProjectsSections) {
  GuardedList l = {{Pred::always(), intervalToD(0)}};
  killScalarsMay(l, {d_decl_}, *vt_);
  ASSERT_EQ(l.size(), 1u);
  // After projecting d away, the section keeps only dim0 >= 0.
  EXPECT_TRUE(l[0].section.contains({100}));
}

TEST_F(SummaryOps, KillScalarsMustDropsSections) {
  GuardedList l = {{Pred::always(), intervalToD(0)}};
  killScalarsMust(l, {d_decl_}, *vt_);
  EXPECT_TRUE(l.empty());
}

TEST_F(SummaryOps, KillWeakensGuardsDirectionally) {
  GuardedList may = {{d_ge2_, interval(0, 5)}};
  killScalarsMay(may, {d_decl_}, *vt_);
  ASSERT_EQ(may.size(), 1u);
  EXPECT_TRUE(may[0].guard.isTrue());

  GuardedList must = {{d_ge2_, interval(0, 5)}};
  killScalarsMust(must, {d_decl_}, *vt_);
  EXPECT_TRUE(must.empty());
}

TEST_F(SummaryOps, UnguardedUnionMergesSections) {
  GuardedList l = {{d_ge2_, interval(0, 3)}, {t_gt0_, interval(7, 9)}};
  pb::Set u = unguardedUnion(l);
  EXPECT_TRUE(u.contains({1}));
  EXPECT_TRUE(u.contains({8}));
  EXPECT_FALSE(u.contains({5}));
}

TEST_F(SummaryOps, AppendGuardedConcatenates) {
  GuardedList a = {{Pred::always(), interval(0, 1)}};
  GuardedList b = {{Pred::always(), interval(2, 3)}};
  appendGuarded(a, b);
  EXPECT_EQ(a.size(), 2u);
}

TEST_F(SummaryOps, GuardedListStrShowsGuards) {
  GuardedList l = {{d_ge2_, interval(0, 3)}};
  std::string s = guardedListStr(l, *vt_, program_->interner);
  EXPECT_NE(s.find(">="), std::string::npos);
  EXPECT_EQ(guardedListStr({}, *vt_, program_->interner), "(empty)");
}

TEST_F(SummaryOps, RegionSummaryAccessors) {
  RegionSummary s;
  ArraySummary& as = s.arrayFor(d_decl_);  // any decl works as a key
  EXPECT_EQ(as.array, d_decl_);
  ScalarEffect& eff = s.scalarFor(d_decl_);
  eff.may_write = true;
  EXPECT_TRUE(s.scalars.at(d_decl_).may_write);
}

}  // namespace
}  // namespace padfa
