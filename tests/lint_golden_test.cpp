// Golden tests for the MF-lint battery: each tests/lint_golden/*.mf
// program carries "//E <id>" annotations naming the diagnostic expected
// on that line. The test asserts an exact match both ways — every
// expectation fires, and no unannotated diagnostic appears — so checker
// regressions in either direction (missed bugs, new false positives)
// fail loudly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "audit/lint.h"
#include "driver/padfa.h"

#ifndef LINT_GOLDEN_DIR
#error "LINT_GOLDEN_DIR must point at the annotated MF programs"
#endif

namespace padfa {
namespace {

struct Expectation {
  int line = 0;
  std::string id;
};

std::vector<Expectation> parseExpectations(const std::string& source) {
  std::vector<Expectation> out;
  std::istringstream in(source);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t pos = line.find("//E ");
    if (pos == std::string::npos) continue;
    std::istringstream ids(line.substr(pos + 4));
    std::string id;
    while (ids >> id) out.push_back({lineno, id});
  }
  return out;
}

std::vector<std::filesystem::path> goldenFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& e :
       std::filesystem::directory_iterator(LINT_GOLDEN_DIR)) {
    if (e.path().extension() == ".mf") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

class LintGolden : public ::testing::TestWithParam<int> {};

TEST_P(LintGolden, DiagnosticsMatchAnnotations) {
  const auto path = goldenFiles()[static_cast<size_t>(GetParam())];
  std::ifstream in(path);
  ASSERT_TRUE(in) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string source = ss.str();

  DiagEngine cdiags;
  auto cp = compileSource(source, cdiags);
  ASSERT_TRUE(cp.has_value()) << path << ":\n" << cdiags.dump();

  DiagEngine diags;
  runLint(*cp->program, cp->loops, diags);

  std::map<std::pair<int, std::string>, int> expected;
  for (const auto& e : parseExpectations(source)) ++expected[{e.line, e.id}];
  std::map<std::pair<int, std::string>, int> actual;
  for (const auto& d : diags.all()) ++actual[{d.loc.line, d.id}];

  for (const auto& [key, n] : expected) {
    EXPECT_EQ(actual.count(key) ? actual.at(key) : 0, n)
        << path.filename() << ": expected [" << key.second << "] on line "
        << key.first << "\ngot:\n"
        << renderDiagnostics(diags, source, path.filename().string());
  }
  for (const auto& [key, n] : actual) {
    EXPECT_TRUE(expected.count(key))
        << path.filename() << ": unexpected [" << key.second << "] on line "
        << key.first << "\n"
        << renderDiagnostics(diags, source, path.filename().string());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFiles, LintGolden,
    ::testing::Range(0, static_cast<int>(goldenFiles().size())),
    [](const ::testing::TestParamInfo<int>& info) {
      return goldenFiles()[static_cast<size_t>(info.param)].stem().string();
    });

// Every documented checker id is exercised by at least one golden file,
// so the suite cannot silently lose coverage of a checker.
TEST(LintGoldenCoverage, EveryCheckerIdIsExercised) {
  std::set<std::string> seen;
  for (const auto& path : goldenFiles()) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    for (const auto& e : parseExpectations(ss.str())) seen.insert(e.id);
  }
  for (const auto& id : lintCheckerIds())
    EXPECT_TRUE(seen.count(id)) << "no golden file exercises [" << id << "]";
}

// --only restricts the battery to the named checkers.
TEST(LintOptions, OnlyFilterRestricts) {
  const char* src = R"(
proc main() {
  real a[8];
  real dead;
  dead = 1.0;
  for i = 5 to 3 {
    a[i] = 1.0;
  }
  for i = 0 to 7 {
    a[i] = 2.0;
  }
  sink(a[1]);
}
)";
  DiagEngine cdiags;
  auto cp = compileSource(src, cdiags);
  ASSERT_TRUE(cp.has_value()) << cdiags.dump();
  DiagEngine diags;
  LintOptions opt;
  opt.only = {"padfa-dead-store"};
  runLint(*cp->program, cp->loops, diags, opt);
  EXPECT_EQ(diags.countWithId("padfa-dead-store"), 1u) << diags.dump();
  EXPECT_EQ(diags.countWithId("padfa-loop-never-runs"), 0u) << diags.dump();
}

}  // namespace
}  // namespace padfa
