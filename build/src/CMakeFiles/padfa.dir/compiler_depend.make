# Empty compiler generated dependencies file for padfa.
# This may be replaced when dependencies are built.
