
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/mf_printer.cpp" "src/CMakeFiles/padfa.dir/codegen/mf_printer.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/codegen/mf_printer.cpp.o.d"
  "/root/repo/src/codegen/parallel_emit.cpp" "src/CMakeFiles/padfa.dir/codegen/parallel_emit.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/codegen/parallel_emit.cpp.o.d"
  "/root/repo/src/corpus/corpus.cpp" "src/CMakeFiles/padfa.dir/corpus/corpus.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/corpus/corpus.cpp.o.d"
  "/root/repo/src/corpus/corpus_nas.cpp" "src/CMakeFiles/padfa.dir/corpus/corpus_nas.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/corpus/corpus_nas.cpp.o.d"
  "/root/repo/src/corpus/corpus_perfect.cpp" "src/CMakeFiles/padfa.dir/corpus/corpus_perfect.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/corpus/corpus_perfect.cpp.o.d"
  "/root/repo/src/corpus/corpus_specfp.cpp" "src/CMakeFiles/padfa.dir/corpus/corpus_specfp.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/corpus/corpus_specfp.cpp.o.d"
  "/root/repo/src/dataflow/analysis.cpp" "src/CMakeFiles/padfa.dir/dataflow/analysis.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/dataflow/analysis.cpp.o.d"
  "/root/repo/src/dataflow/loop_plan.cpp" "src/CMakeFiles/padfa.dir/dataflow/loop_plan.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/dataflow/loop_plan.cpp.o.d"
  "/root/repo/src/dataflow/summary.cpp" "src/CMakeFiles/padfa.dir/dataflow/summary.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/dataflow/summary.cpp.o.d"
  "/root/repo/src/driver/padfa.cpp" "src/CMakeFiles/padfa.dir/driver/padfa.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/driver/padfa.cpp.o.d"
  "/root/repo/src/interp/interp.cpp" "src/CMakeFiles/padfa.dir/interp/interp.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/interp/interp.cpp.o.d"
  "/root/repo/src/ir/region.cpp" "src/CMakeFiles/padfa.dir/ir/region.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/ir/region.cpp.o.d"
  "/root/repo/src/lang/ast.cpp" "src/CMakeFiles/padfa.dir/lang/ast.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/lang/ast.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/CMakeFiles/padfa.dir/lang/lexer.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/lang/lexer.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/CMakeFiles/padfa.dir/lang/parser.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/lang/parser.cpp.o.d"
  "/root/repo/src/lang/sema.cpp" "src/CMakeFiles/padfa.dir/lang/sema.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/lang/sema.cpp.o.d"
  "/root/repo/src/predicate/pred.cpp" "src/CMakeFiles/padfa.dir/predicate/pred.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/predicate/pred.cpp.o.d"
  "/root/repo/src/presburger/linexpr.cpp" "src/CMakeFiles/padfa.dir/presburger/linexpr.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/presburger/linexpr.cpp.o.d"
  "/root/repo/src/presburger/set.cpp" "src/CMakeFiles/padfa.dir/presburger/set.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/presburger/set.cpp.o.d"
  "/root/repo/src/presburger/system.cpp" "src/CMakeFiles/padfa.dir/presburger/system.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/presburger/system.cpp.o.d"
  "/root/repo/src/runtime/elpd.cpp" "src/CMakeFiles/padfa.dir/runtime/elpd.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/runtime/elpd.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/CMakeFiles/padfa.dir/runtime/thread_pool.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/runtime/thread_pool.cpp.o.d"
  "/root/repo/src/support/diagnostics.cpp" "src/CMakeFiles/padfa.dir/support/diagnostics.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/support/diagnostics.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/padfa.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/support/table.cpp.o.d"
  "/root/repo/src/symbolic/affine.cpp" "src/CMakeFiles/padfa.dir/symbolic/affine.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/symbolic/affine.cpp.o.d"
  "/root/repo/src/symbolic/vartable.cpp" "src/CMakeFiles/padfa.dir/symbolic/vartable.cpp.o" "gcc" "src/CMakeFiles/padfa.dir/symbolic/vartable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
