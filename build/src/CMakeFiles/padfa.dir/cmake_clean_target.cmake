file(REMOVE_RECURSE
  "libpadfa.a"
)
