# Empty compiler generated dependencies file for elpd_inspect.
# This may be replaced when dependencies are built.
