file(REMOVE_RECURSE
  "CMakeFiles/elpd_inspect.dir/elpd_inspect.cpp.o"
  "CMakeFiles/elpd_inspect.dir/elpd_inspect.cpp.o.d"
  "elpd_inspect"
  "elpd_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elpd_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
