file(REMOVE_RECURSE
  "CMakeFiles/mfc.dir/mfc.cpp.o"
  "CMakeFiles/mfc.dir/mfc.cpp.o.d"
  "mfc"
  "mfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
