file(REMOVE_RECURSE
  "CMakeFiles/runtime_test_demo.dir/runtime_test_demo.cpp.o"
  "CMakeFiles/runtime_test_demo.dir/runtime_test_demo.cpp.o.d"
  "runtime_test_demo"
  "runtime_test_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_test_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
