file(REMOVE_RECURSE
  "CMakeFiles/privatization_demo.dir/privatization_demo.cpp.o"
  "CMakeFiles/privatization_demo.dir/privatization_demo.cpp.o.d"
  "privatization_demo"
  "privatization_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privatization_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
