# Empty compiler generated dependencies file for privatization_demo.
# This may be replaced when dependencies are built.
