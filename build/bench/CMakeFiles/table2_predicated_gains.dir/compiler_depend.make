# Empty compiler generated dependencies file for table2_predicated_gains.
# This may be replaced when dependencies are built.
