# Empty dependencies file for fig_speedups.
# This may be replaced when dependencies are built.
