file(REMOVE_RECURSE
  "CMakeFiles/fig_speedups.dir/fig_speedups.cpp.o"
  "CMakeFiles/fig_speedups.dir/fig_speedups.cpp.o.d"
  "fig_speedups"
  "fig_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
