file(REMOVE_RECURSE
  "CMakeFiles/fig_runtime_test_overhead.dir/fig_runtime_test_overhead.cpp.o"
  "CMakeFiles/fig_runtime_test_overhead.dir/fig_runtime_test_overhead.cpp.o.d"
  "fig_runtime_test_overhead"
  "fig_runtime_test_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_runtime_test_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
