# Empty dependencies file for fig_runtime_test_overhead.
# This may be replaced when dependencies are built.
