file(REMOVE_RECURSE
  "CMakeFiles/table1_suite_overview.dir/table1_suite_overview.cpp.o"
  "CMakeFiles/table1_suite_overview.dir/table1_suite_overview.cpp.o.d"
  "table1_suite_overview"
  "table1_suite_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_suite_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
