# Empty dependencies file for table1_suite_overview.
# This may be replaced when dependencies are built.
