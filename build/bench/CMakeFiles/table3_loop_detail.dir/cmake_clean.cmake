file(REMOVE_RECURSE
  "CMakeFiles/table3_loop_detail.dir/table3_loop_detail.cpp.o"
  "CMakeFiles/table3_loop_detail.dir/table3_loop_detail.cpp.o.d"
  "table3_loop_detail"
  "table3_loop_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_loop_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
