# Empty compiler generated dependencies file for table3_loop_detail.
# This may be replaced when dependencies are built.
