# Empty compiler generated dependencies file for fig_analysis_time.
# This may be replaced when dependencies are built.
