file(REMOVE_RECURSE
  "CMakeFiles/fig_analysis_time.dir/fig_analysis_time.cpp.o"
  "CMakeFiles/fig_analysis_time.dir/fig_analysis_time.cpp.o.d"
  "fig_analysis_time"
  "fig_analysis_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_analysis_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
