file(REMOVE_RECURSE
  "CMakeFiles/property_random_programs_test.dir/property_random_programs_test.cpp.o"
  "CMakeFiles/property_random_programs_test.dir/property_random_programs_test.cpp.o.d"
  "property_random_programs_test"
  "property_random_programs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_random_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
