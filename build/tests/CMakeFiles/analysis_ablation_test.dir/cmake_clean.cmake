file(REMOVE_RECURSE
  "CMakeFiles/analysis_ablation_test.dir/analysis_ablation_test.cpp.o"
  "CMakeFiles/analysis_ablation_test.dir/analysis_ablation_test.cpp.o.d"
  "analysis_ablation_test"
  "analysis_ablation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_ablation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
