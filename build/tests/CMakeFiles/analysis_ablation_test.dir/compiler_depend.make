# Empty compiler generated dependencies file for analysis_ablation_test.
# This may be replaced when dependencies are built.
