# Empty dependencies file for presburger_linexpr_test.
# This may be replaced when dependencies are built.
