file(REMOVE_RECURSE
  "CMakeFiles/presburger_linexpr_test.dir/presburger_linexpr_test.cpp.o"
  "CMakeFiles/presburger_linexpr_test.dir/presburger_linexpr_test.cpp.o.d"
  "presburger_linexpr_test"
  "presburger_linexpr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presburger_linexpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
