# Empty dependencies file for corpus_golden_plan_test.
# This may be replaced when dependencies are built.
