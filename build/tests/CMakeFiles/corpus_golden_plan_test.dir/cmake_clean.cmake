file(REMOVE_RECURSE
  "CMakeFiles/corpus_golden_plan_test.dir/corpus_golden_plan_test.cpp.o"
  "CMakeFiles/corpus_golden_plan_test.dir/corpus_golden_plan_test.cpp.o.d"
  "corpus_golden_plan_test"
  "corpus_golden_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_golden_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
