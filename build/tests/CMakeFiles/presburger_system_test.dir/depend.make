# Empty dependencies file for presburger_system_test.
# This may be replaced when dependencies are built.
