file(REMOVE_RECURSE
  "CMakeFiles/presburger_system_test.dir/presburger_system_test.cpp.o"
  "CMakeFiles/presburger_system_test.dir/presburger_system_test.cpp.o.d"
  "presburger_system_test"
  "presburger_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presburger_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
