file(REMOVE_RECURSE
  "CMakeFiles/interprocedural_test.dir/interprocedural_test.cpp.o"
  "CMakeFiles/interprocedural_test.dir/interprocedural_test.cpp.o.d"
  "interprocedural_test"
  "interprocedural_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interprocedural_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
