# Empty compiler generated dependencies file for interprocedural_test.
# This may be replaced when dependencies are built.
