# Empty dependencies file for runtime_support_test.
# This may be replaced when dependencies are built.
