file(REMOVE_RECURSE
  "CMakeFiles/runtime_support_test.dir/runtime_support_test.cpp.o"
  "CMakeFiles/runtime_support_test.dir/runtime_support_test.cpp.o.d"
  "runtime_support_test"
  "runtime_support_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
