# Empty compiler generated dependencies file for presburger_set_test.
# This may be replaced when dependencies are built.
