file(REMOVE_RECURSE
  "CMakeFiles/presburger_set_test.dir/presburger_set_test.cpp.o"
  "CMakeFiles/presburger_set_test.dir/presburger_set_test.cpp.o.d"
  "presburger_set_test"
  "presburger_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presburger_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
