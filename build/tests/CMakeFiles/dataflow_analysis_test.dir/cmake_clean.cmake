file(REMOVE_RECURSE
  "CMakeFiles/dataflow_analysis_test.dir/dataflow_analysis_test.cpp.o"
  "CMakeFiles/dataflow_analysis_test.dir/dataflow_analysis_test.cpp.o.d"
  "dataflow_analysis_test"
  "dataflow_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
