file(REMOVE_RECURSE
  "CMakeFiles/support_and_ir_test.dir/support_and_ir_test.cpp.o"
  "CMakeFiles/support_and_ir_test.dir/support_and_ir_test.cpp.o.d"
  "support_and_ir_test"
  "support_and_ir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_and_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
