# Empty compiler generated dependencies file for support_and_ir_test.
# This may be replaced when dependencies are built.
