file(REMOVE_RECURSE
  "CMakeFiles/lang_frontend_test.dir/lang_frontend_test.cpp.o"
  "CMakeFiles/lang_frontend_test.dir/lang_frontend_test.cpp.o.d"
  "lang_frontend_test"
  "lang_frontend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
