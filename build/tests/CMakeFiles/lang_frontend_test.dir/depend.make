# Empty dependencies file for lang_frontend_test.
# This may be replaced when dependencies are built.
