file(REMOVE_RECURSE
  "CMakeFiles/summary_ops_test.dir/summary_ops_test.cpp.o"
  "CMakeFiles/summary_ops_test.dir/summary_ops_test.cpp.o.d"
  "summary_ops_test"
  "summary_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
