# Empty compiler generated dependencies file for driver_and_shapes_test.
# This may be replaced when dependencies are built.
