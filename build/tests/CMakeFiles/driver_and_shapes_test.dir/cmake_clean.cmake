file(REMOVE_RECURSE
  "CMakeFiles/driver_and_shapes_test.dir/driver_and_shapes_test.cpp.o"
  "CMakeFiles/driver_and_shapes_test.dir/driver_and_shapes_test.cpp.o.d"
  "driver_and_shapes_test"
  "driver_and_shapes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_and_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
