# Empty compiler generated dependencies file for presburger_projection_test.
# This may be replaced when dependencies are built.
