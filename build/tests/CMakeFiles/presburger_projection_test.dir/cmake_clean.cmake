file(REMOVE_RECURSE
  "CMakeFiles/presburger_projection_test.dir/presburger_projection_test.cpp.o"
  "CMakeFiles/presburger_projection_test.dir/presburger_projection_test.cpp.o.d"
  "presburger_projection_test"
  "presburger_projection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presburger_projection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
