// mfcd — the persistent analysis daemon (also reachable as `mfc serve`).
//
//   mfcd [--socket=PATH] [--store=DIR] [--workers=N] [--queue=N]
//        [--deadline-ms=N] [--flush-every=N]
//
// Serves the newline-delimited JSON protocol of DESIGN.md §12 on a
// unix-domain socket. Defaults come from the PADFA_MFCD_* / PADFA_STORE_DIR
// environment; flags win over the environment. SIGTERM/SIGINT drain
// in-flight requests, flush the snapshot store, and exit 0.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "server/server.h"

using namespace padfa;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mfcd [--socket=PATH] [--store=DIR] [--workers=N] [--queue=N]\n"
      "            [--deadline-ms=N] [--flush-every=N]\n"
      "Serves mfc analysis requests over a unix socket; see `mfc serve`.\n");
  return 2;
}

bool numFlag(const std::string& arg, const char* name, uint64_t& out) {
  std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  char* end = nullptr;
  out = std::strtoull(arg.c_str() + prefix.size(), &end, 10);
  return end && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions opts = server::ServerOptions::fromEnv();
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    uint64_t n = 0;
    if (a.rfind("--socket=", 0) == 0) opts.socket_path = a.substr(9);
    else if (a.rfind("--store=", 0) == 0) opts.store_dir = a.substr(8);
    else if (numFlag(a, "--workers", n)) opts.workers = n ? static_cast<unsigned>(n) : 1;
    else if (numFlag(a, "--queue", n)) opts.queue_limit = n;
    else if (numFlag(a, "--deadline-ms", n)) opts.request_deadline_ms = static_cast<double>(n);
    else if (numFlag(a, "--flush-every", n)) opts.flush_every = n ? static_cast<unsigned>(n) : 1;
    else return usage();
  }
  std::string err;
  server::MfcDaemon daemon(std::move(opts));
  int rc = daemon.run(err);
  if (!err.empty()) std::fprintf(stderr, "mfcd: %s\n", err.c_str());
  return rc;
}
