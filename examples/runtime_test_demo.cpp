// Two-version loops in action: a loop with a symbolic dependence distance
// gets a run-time independence test derived by predicate extraction; this
// demo shows the derived test and both dispatch outcomes.
#include <cmath>
#include <cstdio>

#include "driver/padfa.h"

using namespace padfa;

static std::string sourceWithDistance(int d) {
  return R"(
proc main() {
  int n; n = 4000;
  int d; d = inoise(3, 1) + )" + std::to_string(d) + R"(;
  real x[12000];
  for j = 0 to 3 * n - 1 { x[j] = noise(j); }
  for i = n to 2 * n - 1 {
    x[i] = x[i - d] * 0.5 + 1.0;
  }
  real chk; chk = 0.0;
  for i = 0 to 3 * n - 1 { chk = chk + x[i]; }
  sink(chk);
}
)";
}

static void runCase(int d, const char* label) {
  DiagEngine diags;
  auto cp = compileSource(sourceWithDistance(d), diags);
  if (!cp) {
    std::fprintf(stderr, "%s", diags.dump().c_str());
    std::exit(1);
  }
  const LoopPlan* rt_plan = nullptr;
  for (const auto& [loop, plan] : cp->pred.plans)
    if (plan.status == LoopStatus::RuntimeTest) rt_plan = &plan;
  if (!rt_plan) {
    std::printf("%s: no run-time test derived (unexpected)\n", label);
    return;
  }
  std::printf("%s\n", label);
  std::printf("  derived test : %s\n",
              rt_plan->runtime_test.str(cp->interner()).c_str());
  std::printf("  test cost    : %zu atom evaluations at loop entry\n",
              rt_plan->runtime_test.atomCount());

  InterpStats seq = execute(*cp->program, {});
  InterpOptions par;
  par.plans = &cp->pred;
  par.num_threads = 4;
  InterpStats pstats = execute(*cp->program, par);
  bool passed = pstats.runtime_tests_passed == pstats.runtime_tests_evaluated;
  std::printf("  at run time  : test %s -> %s version\n",
              passed ? "PASSED" : "FAILED",
              passed ? "parallel" : "sequential");
  // The final checksum loop is a parallel sum reduction, so low-order FP
  // bits may differ from the sequential association.
  double tol = 1e-9 * (std::abs(seq.checksum) + 1.0);
  std::printf("  checksums    : seq=%.6f par=%.6f (%s)\n\n", seq.checksum,
              pstats.checksum,
              std::abs(seq.checksum - pstats.checksum) <= tol ? "match"
                                                              : "MISMATCH");
}

int main() {
  std::printf("Predicate extraction derives a breaking condition for the "
              "dependence x[i] <- x[i-d]:\n\n");
  runCase(4000, "case d = n   (no overlap: independence holds)");
  runCase(7, "case d = 7   (true dependence: must stay sequential)");
  return 0;
}
