// mfc — command-line front door to the library.
//
//   mfc report  <file.mf|corpus:NAME>        parallelization report
//   mfc run     <file.mf|corpus:NAME> [T]    execute (T threads, default 1)
//   mfc elpd    <file.mf|corpus:NAME>        ELPD-inspect candidate loops
//   mfc emit    <file.mf|corpus:NAME>        emit transformed parallel MF
//   mfc list                                 list corpus programs
//
// Sources can come from disk or from the built-in corpus via the
// `corpus:` prefix.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "codegen/parallel_emit.h"
#include "corpus/corpus.h"
#include "driver/padfa.h"

using namespace padfa;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mfc report|run|elpd|emit <file.mf|corpus:NAME> [threads]\n"
      "       mfc list\n");
  return 2;
}

bool loadSource(const std::string& spec, std::string& out) {
  if (spec.rfind("corpus:", 0) == 0) {
    const CorpusEntry* e = corpusEntry(spec.substr(7));
    if (!e) {
      std::fprintf(stderr, "unknown corpus program '%s'\n",
                   spec.substr(7).c_str());
      return false;
    }
    out = instantiate(*e);
    return true;
  }
  std::ifstream in(spec);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", spec.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int report(const CompiledProgram& cp) {
  std::printf("%-16s %-6s %-14s %-14s %s\n", "loop", "depth", "base",
              "predicated", "notes");
  for (const LoopNode* node : cp.loops.allLoops()) {
    const LoopPlan* bp = cp.base.planFor(node->loop);
    const LoopPlan* pp = cp.pred.planFor(node->loop);
    if (!bp || !pp) continue;
    std::string notes;
    if (pp->status == LoopStatus::RuntimeTest)
      notes = "test: " + pp->runtime_test.str(cp.interner());
    else if (pp->status == LoopStatus::Sequential)
      notes = pp->reason;
    if (pp->degraded || bp->degraded)
      notes += " [degraded: " +
               (pp->degraded ? pp->degrade_cause : bp->degrade_cause) + "]";
    for (const auto& pa : pp->privatized) {
      notes += " [private " +
               std::string(cp.interner().str(pa.array->name)) +
               (pa.copy_in ? "+in" : "") + (pa.copy_out ? "+out" : "") + "]";
    }
    for (const auto& red : pp->reductions)
      notes += " [reduction " +
               std::string(cp.interner().str(red.scalar->name)) + "]";
    std::printf("%-16s %-6d %-14s %-14s %s\n", node->loop->loop_id.c_str(),
                node->depth, std::string(loopStatusName(bp->status)).c_str(),
                std::string(loopStatusName(pp->status)).c_str(),
                notes.c_str());
  }
  size_t degraded = cp.base.degradedCount() + cp.pred.degradedCount();
  if (degraded > 0) {
    std::printf("\n%zu degraded plan(s) — analysis budget exhaustion:",
                degraded);
    std::map<std::string, uint64_t> causes;
    for (const auto* r : {&cp.base, &cp.pred})
      for (const auto& [cause, n] : r->exhaustion_causes) causes[cause] += n;
    for (const auto& [cause, n] : causes)
      std::printf(" %s=%llu", cause.c_str(),
                  static_cast<unsigned long long>(n));
    std::printf("\n");
  }
  return 0;
}

int run(const CompiledProgram& cp, unsigned threads) {
  InterpOptions opt;
  if (threads > 1) {
    opt.plans = &cp.pred;
    opt.num_threads = threads;
  }
  InterpStats s = execute(*cp.program, opt);
  std::printf("checksum            : %.9f (%llu sink calls)\n", s.checksum,
              static_cast<unsigned long long>(s.sink_count));
  std::printf("wall time           : %.3f ms\n", 1e3 * s.total_seconds);
  if (threads > 1) {
    std::printf("simulated %u-proc   : %.3f ms\n", threads,
                1e3 * s.simulated_seconds);
    std::printf("parallel loops      : %llu entered, %llu run-time tests "
                "(%llu passed)\n",
                static_cast<unsigned long long>(s.parallel_loops_entered),
                static_cast<unsigned long long>(s.runtime_tests_evaluated),
                static_cast<unsigned long long>(s.runtime_tests_passed));
  }
  return 0;
}

int elpd(const CompiledProgram& cp) {
  ElpdCollector collector;
  for (const LoopNode* node : cp.loops.allLoops()) {
    const LoopPlan* bp = cp.base.planFor(node->loop);
    if (!bp || bp->status != LoopStatus::Sequential) continue;
    if (nestedInsideParallelized(cp, node->loop, cp.base)) continue;
    collector.instrument(node->loop);
  }
  InterpOptions opt;
  opt.elpd = &collector;
  execute(*cp.program, opt);
  for (const LoopNode* node : cp.loops.allLoops()) {
    if (!collector.isInstrumented(node->loop)) continue;
    auto v = collector.verdict(node->loop);
    std::printf("%-16s %s\n", node->loop->loop_id.c_str(),
                !v.executed        ? "did not execute"
                : v.independent()  ? "independent"
                : v.privatizable() ? "privatizable"
                                   : "not parallel (cross-iteration flow)");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "list") == 0) {
    for (const auto& e : corpus())
      std::printf("%-12s %s\n", e.name.c_str(), e.suite.c_str());
    return 0;
  }
  if (argc < 3) return usage();
  std::string source;
  if (!loadSource(argv[2], source)) return 1;
  DiagEngine diags;
  auto cp = compileSource(source, diags);
  if (!cp) {
    std::fprintf(stderr, "%s", diags.dump().c_str());
    return 1;
  }
  try {
    if (std::strcmp(argv[1], "report") == 0) return report(*cp);
    if (std::strcmp(argv[1], "run") == 0)
      return run(*cp,
                 argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 1);
    if (std::strcmp(argv[1], "elpd") == 0) return elpd(*cp);
  } catch (const RuntimeError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (std::strcmp(argv[1], "emit") == 0) {
    EmitStats stats;
    std::string out = emitParallelProgram(*cp->program, cp->pred, &stats);
    std::fputs(out.c_str(), stdout);
    std::fprintf(stderr, "// %d parallel annotation(s), %d two-version "
                 "loop(s)\n",
                 stats.parallel_annotations, stats.two_version_loops);
    return 0;
  }
  return usage();
}
