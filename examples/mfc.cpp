// mfc — command-line front door to the library.
//
//   mfc report  <file.mf|corpus:NAME>        parallelization report
//   mfc run     <file.mf|corpus:NAME> [T]    execute (T threads, default 1)
//   mfc elpd    <file.mf|corpus:NAME>        ELPD-inspect candidate loops
//   mfc emit    <file.mf|corpus:NAME>        emit transformed parallel MF
//   mfc lint    <file.mf|corpus:NAME>        run the MF-lint checker battery
//   mfc audit   <file.mf|corpus:NAME>        re-verify plans (PlanAuditor)
//   mfc race    <file.mf|corpus:NAME>        dynamic race oracle over a run
//   mfc deps    <file.mf|corpus:NAME>        export the PDG (DOT; --json);
//               --callgraph exports the interprocedural call graph with
//               SCC clusters and content fingerprints instead
//   mfc slice   <file.mf|corpus:NAME> <line>:<var>   backward program slice
//   mfc certify <file.mf|corpus:NAME>        PDG vs plans vs auditor
//   mfc list                                 list corpus programs
//   mfc serve                                run the mfcd analysis daemon
//   mfc daemon <status|ping|flush|stop>      control a running mfcd
//
// Verification flags (combinable with any command, e.g. `mfc run x.mf
// --lint --audit --race-check`):
//   --lint            run MF-lint before the command
//   --only=<ids>      restrict lint to comma-separated checker ids
//   --audit           run the plan-soundness auditor
//   --race-check      run the dynamic race oracle (sequential execution)
//   -Werror           promote all warnings to errors
//   -Werror=<ids>     promote only the listed diagnostic ids
//
// Daemon mode: `--daemon` routes report/emit through a running mfcd
// (socket from --socket=PATH or PADFA_MFCD_SOCKET), transparently
// falling back to in-process analysis when the daemon is unreachable.
//
// Sources can come from disk or from the built-in corpus via the
// `corpus:` prefix. Exit status is 1 when any enabled verifier finds a
// problem (lint errors under -Werror, an unsound plan, a race violation)
// and on unreadable inputs.
#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "audit/lint.h"
#include "audit/plan_audit.h"
#include "audit/race_oracle.h"
#include "codegen/parallel_emit.h"
#include "corpus/corpus.h"
#include "driver/padfa.h"
#include "driver/plan_signature.h"
#include "ipa/ipa_export.h"
#include "pdg/certify.h"
#include "pdg/pdg.h"
#include "pdg/slice.h"
#include "server/client.h"
#include "server/server.h"

using namespace padfa;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mfc <command> [arguments] [flags]\n"
      "commands:\n"
      "  report  <file.mf|corpus:NAME>            parallelization report\n"
      "  run     <file.mf|corpus:NAME> [threads]  execute the program\n"
      "  elpd    <file.mf|corpus:NAME>            ELPD-inspect loops\n"
      "  emit    <file.mf|corpus:NAME>            emit parallel MF source\n"
      "  lint    <file.mf|corpus:NAME>            MF-lint checker battery\n"
      "  audit   <file.mf|corpus:NAME>            plan-soundness auditor\n"
      "  race    <file.mf|corpus:NAME>            dynamic race oracle\n"
      "  deps    <file.mf|corpus:NAME>            PDG export (DOT; --json);"
      " --callgraph for the call graph\n"
      "  slice   <file.mf|corpus:NAME> <line>:<var>  backward slice\n"
      "  certify <file.mf|corpus:NAME>            PDG vs plans vs auditor\n"
      "  signature <file.mf|corpus:NAME>          canonical plan signature\n"
      "  list                                     list corpus programs\n"
      "  serve                                    run the mfcd daemon\n"
      "  daemon <status|ping|flush|stop>          control a running mfcd\n"
      "flags: --lint --audit --race-check --only=<ids> -Werror[=<ids>] "
      "--json --callgraph --daemon --socket=<path>\n");
  return 2;
}

// Read an on-disk source with real I/O-failure detection: opening a
// directory "succeeds" on Linux and then reads zero bytes, which used to
// make `mfc report <dir>` exit 0 on an empty program. Reject non-regular
// files up front and check the stream state after the read.
bool readSourceFile(const std::string& path, std::string& out) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    std::fprintf(stderr, "mfc: cannot open '%s': %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  if (!S_ISREG(st.st_mode)) {
    std::fprintf(stderr, "mfc: cannot read '%s': not a regular file\n",
                 path.c_str());
    return false;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "mfc: cannot open '%s': %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad() || ss.fail()) {
    std::fprintf(stderr, "mfc: error reading '%s'\n", path.c_str());
    return false;
  }
  out = ss.str();
  return true;
}

bool loadSource(const std::string& spec, std::string& out) {
  if (spec.rfind("corpus:", 0) == 0) {
    const CorpusEntry* e = corpusEntry(spec.substr(7));
    if (!e) {
      std::fprintf(stderr, "mfc: unknown corpus program '%s'\n",
                   spec.substr(7).c_str());
      return false;
    }
    out = instantiate(*e);
    return true;
  }
  return readSourceFile(spec, out);
}

std::vector<std::string> splitIds(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

struct Cli {
  std::string cmd;
  std::string spec;
  std::string criterion;  // slice only: "<line>:<var>"
  unsigned threads = 1;
  bool lint = false;
  bool audit = false;
  bool race = false;
  bool json = false;
  bool callgraph = false;  // deps only: call graph instead of PDG
  bool werror = false;
  bool daemon = false;           // route report/emit through mfcd
  std::string socket;            // --socket override for daemon mode
  std::vector<std::string> werror_ids;
  std::vector<std::string> only;
};

void applyWerror(DiagEngine& diags, const Cli& cli) {
  if (cli.werror) diags.setWarningsAsErrors(true);
  if (!cli.werror_ids.empty())
    diags.setWarningsAsErrors(
        std::set<std::string>(cli.werror_ids.begin(), cli.werror_ids.end()));
}

int report(const CompiledProgram& cp) {
  std::fputs(renderPlanReport(cp).c_str(), stdout);
  return 0;
}

int run(const CompiledProgram& cp, unsigned threads) {
  InterpOptions opt;
  if (threads > 1) {
    opt.plans = &cp.pred;
    opt.num_threads = threads;
  }
  InterpStats s = execute(*cp.program, opt);
  std::printf("checksum            : %.9f (%llu sink calls)\n", s.checksum,
              static_cast<unsigned long long>(s.sink_count));
  std::printf("wall time           : %.3f ms\n", 1e3 * s.total_seconds);
  if (threads > 1) {
    std::printf("simulated %u-proc   : %.3f ms\n", threads,
                1e3 * s.simulated_seconds);
    std::printf("parallel loops      : %llu entered, %llu run-time tests "
                "(%llu passed)\n",
                static_cast<unsigned long long>(s.parallel_loops_entered),
                static_cast<unsigned long long>(s.runtime_tests_evaluated),
                static_cast<unsigned long long>(s.runtime_tests_passed));
  }
  return 0;
}

int elpd(const CompiledProgram& cp) {
  ElpdCollector collector;
  for (const LoopNode* node : cp.loops.allLoops()) {
    const LoopPlan* bp = cp.base.planFor(node->loop);
    if (!bp || bp->status != LoopStatus::Sequential) continue;
    if (nestedInsideParallelized(cp, node->loop, cp.base)) continue;
    collector.instrument(node->loop);
  }
  InterpOptions opt;
  opt.elpd = &collector;
  execute(*cp.program, opt);
  for (const LoopNode* node : cp.loops.allLoops()) {
    if (!collector.isInstrumented(node->loop)) continue;
    auto v = collector.verdict(node->loop);
    std::printf("%-16s %s\n", node->loop->loop_id.c_str(),
                !v.executed        ? "did not execute"
                : v.independent()  ? "independent"
                : v.privatizable() ? "privatizable"
                                   : "not parallel (cross-iteration flow)");
  }
  return 0;
}

/// Run MF-lint; returns 1 when the engine holds errors afterwards (only
/// possible under -Werror since checkers emit warnings/notes).
int lint(const CompiledProgram& cp, const Cli& cli,
         const std::string& source) {
  DiagEngine diags;
  applyWerror(diags, cli);
  LintOptions opt;
  opt.only = cli.only;
  runLint(*cp.program, cp.loops, diags, opt);
  std::string rendered = renderDiagnostics(diags, source, cli.spec);
  std::fputs(rendered.c_str(), stderr);
  if (diags.all().empty()) std::fprintf(stderr, "lint: clean\n");
  return diags.hasErrors() ? 1 : 0;
}

/// Re-verify parallelization plans with the independent PlanAuditor.
int audit(const CompiledProgram& cp, const Cli& cli,
          const std::string& source) {
  DiagEngine diags;
  applyWerror(diags, cli);
  int rc = 0;
  for (const AnalysisResult* ar : {&cp.base, &cp.pred}) {
    AuditReport rep = auditPlans(*cp.program, *ar, diags);
    std::printf("audit (%s): %zu loop(s): %zu independent, %zu via "
                "run-time test, %zu inconclusive, %zu UNSOUND\n",
                ar == &cp.base ? "base" : "predicated", rep.auditedCount(),
                rep.count(AuditVerdict::Independent),
                rep.count(AuditVerdict::DischargedTest),
                rep.count(AuditVerdict::Inconclusive),
                rep.count(AuditVerdict::Unsound));
    for (const auto& la : rep.loops) {
      std::printf("  %-16s %-14s %s (%zu access(es), %zu pair(s))\n",
                  la.loop->loop_id.c_str(),
                  std::string(loopStatusName(la.status)).c_str(),
                  std::string(auditVerdictName(la.verdict)).c_str(),
                  la.accesses, la.pairs_tested);
      for (const auto& n : la.notes) std::printf("      %s\n", n.c_str());
    }
    if (!rep.clean()) rc = 1;
  }
  std::string rendered = renderDiagnostics(diags, source, cli.spec);
  std::fputs(rendered.c_str(), stderr);
  return diags.hasErrors() ? 1 : rc;
}

/// Execute sequentially under the dynamic race oracle.
int raceCheck(const CompiledProgram& cp) {
  RaceOracle oracle(*cp.program, cp.pred);
  InterpOptions opt;
  opt.plans = &cp.pred;
  opt.race = &oracle;
  execute(*cp.program, opt);
  std::fputs(oracle.report(cp.program->interner).c_str(), stdout);
  std::printf("race check: %zu audited loop(s), %zu violation(s), %llu "
              "access(es) shadowed\n",
              oracle.auditedCount(), oracle.violationCount(),
              static_cast<unsigned long long>(oracle.totalAccesses()));
  return oracle.violationCount() > 0 ? 1 : 0;
}

/// Export the program dependence graph (DOT to stdout; --json for JSON),
/// or with --callgraph the interprocedural call graph.
int deps(const CompiledProgram& cp, const Cli& cli) {
  if (cli.callgraph) {
    ipa::CallGraph cg = ipa::CallGraph::build(*cp.program);
    ipa::ProcFingerprints fps = ipa::fingerprintProgram(*cp.program, cg);
    std::string out = cli.json ? ipa::callGraphToJson(cg, fps, *cp.program)
                               : ipa::callGraphToDot(cg, fps, *cp.program);
    std::fputs(out.c_str(), stdout);
    std::fprintf(stderr, "callgraph: %zu proc(s), %zu scc(s)\n",
                 cg.procs().size(), cg.sccCount());
    return 0;
  }
  ProgramPdg pdg = buildPdg(*cp.program, cp.loops);
  std::string out = cli.json ? pdgToJson(pdg, *cp.program)
                             : pdgToDot(pdg, *cp.program);
  std::fputs(out.c_str(), stdout);
  std::fprintf(stderr,
               "pdg: %zu node(s), %zu control, %zu flow, %zu anti, %zu "
               "output edge(s), %zu carried\n",
               pdg.stats.nodes, pdg.stats.control, pdg.stats.flow,
               pdg.stats.anti, pdg.stats.output, pdg.stats.carried);
  return 0;
}

/// Backward slice with caret diagnostics at every sliced statement.
int slice(const CompiledProgram& cp, const Cli& cli,
          const std::string& source) {
  SliceCriterion crit;
  std::string err;
  if (!parseSliceCriterion(cli.criterion, crit, err)) {
    std::fprintf(stderr, "mfc slice: %s\n", err.c_str());
    return 2;
  }
  ProgramPdg pdg = buildPdg(*cp.program, cp.loops);
  SliceResult result;
  if (!computeSlice(pdg, *cp.program, crit, result, err)) {
    std::fprintf(stderr, "mfc slice: %s\n", err.c_str());
    return 1;
  }
  std::printf("slice of '%s' at line %u (%s): %zu statement(s) on %zu "
              "line(s)\n",
              crit.var.c_str(), crit.line,
              std::string(cp.interner().str(result.proc->proc->name)).c_str(),
              result.nodes.size(), result.lines.size());
  DiagEngine diags;
  std::set<uint32_t> seen_lines;
  const CfgNode& cnode = result.proc->cfg.nodes[result.criterion_node];
  if (cnode.loc.valid()) {
    seen_lines.insert(cnode.loc.line);
    diags.note(cnode.loc, "slice criterion", "padfa-slice");
  }
  for (uint32_t n : result.nodes) {
    const CfgNode& node = result.proc->cfg.nodes[n];
    if (node.kind == CfgNodeKind::Entry || node.kind == CfgNodeKind::Exit)
      continue;
    if (!node.loc.valid() || !seen_lines.insert(node.loc.line).second)
      continue;
    diags.note(node.loc, "in the backward slice of '" + crit.var + "'",
               "padfa-slice");
  }
  std::fputs(renderDiagnostics(diags, source, cli.spec).c_str(), stdout);
  return 0;
}

/// Third verification leg: check the predicated plans against the PDG's
/// carried edges, then cross-check the verdicts against the PlanAuditor.
int certify(const CompiledProgram& cp) {
  ProgramPdg pdg = buildPdg(*cp.program, cp.loops);
  int rc = 0;
  for (const AnalysisResult* ar : {&cp.base, &cp.pred}) {
    CertifyReport rep = certifyPlans(*cp.program, *ar, cp.loops, pdg);
    DiagEngine quiet;
    AuditReport audit_rep = auditPlans(*cp.program, *ar, quiet);
    auto disagreements = crossCheckCertification(*cp.program, rep, audit_rep);
    std::printf("certify (%s): %zu loop(s): %zu certified, %zu via run-time "
                "test, %zu inconclusive, %zu DISAGREE; %zu auditor "
                "mismatch(es)\n",
                ar == &cp.base ? "base" : "predicated", rep.loops.size(),
                rep.count(CertifyVerdict::Certified),
                rep.count(CertifyVerdict::CertifiedTest),
                rep.count(CertifyVerdict::Inconclusive),
                rep.count(CertifyVerdict::Disagree), disagreements.size());
    for (const auto& c : rep.loops) {
      std::printf("  %-16s %-14s %s (%zu carried edge(s), %zu plan, %zu "
                  "test)\n",
                  c.loop->loop_id.c_str(),
                  std::string(loopStatusName(c.status)).c_str(),
                  std::string(certifyVerdictName(c.verdict)).c_str(),
                  c.carried_edges, c.discharged_plan, c.discharged_test);
      for (const auto& n : c.notes) std::printf("      %s\n", n.c_str());
    }
    for (const auto& d : disagreements)
      std::printf("  MISMATCH: %s\n", d.c_str());
    if (!rep.clean() || !disagreements.empty()) rc = 1;
  }
  return rc;
}

bool knownCommand(const std::string& cmd) {
  static const char* kCommands[] = {"report", "run",  "elpd",  "emit",
                                    "lint",   "audit", "race",  "deps",
                                    "slice",  "certify", "signature",
                                    "list", "serve", "daemon"};
  for (const char* c : kCommands)
    if (cmd == c) return true;
  return false;
}

std::string socketFor(const Cli& cli) {
  return cli.socket.empty() ? server::defaultSocketPath() : cli.socket;
}

/// Route report/emit through a running mfcd. Returns true when the
/// daemon handled the request (rc filled in); false means "fall back to
/// in-process analysis" (daemon unreachable or shedding load).
bool tryDaemon(const Cli& cli, const std::string& source, int& rc) {
  server::Request req;
  req.cmd = cli.cmd;
  req.source = source;
  JsonValue resp;
  std::string err;
  if (!server::daemonCall(socketFor(cli), req, resp, err)) {
    std::fprintf(stderr,
                 "mfc: mfcd unavailable (%s); falling back to in-process "
                 "analysis\n",
                 err.c_str());
    return false;
  }
  if (!resp.get("ok").asBool()) {
    const std::string& code = resp.get("error").asString();
    if (code == "overloaded") {
      std::fprintf(stderr,
                   "mfc: mfcd shedding load; falling back to in-process "
                   "analysis\n");
      return false;
    }
    std::fprintf(stderr, "mfc: mfcd error: %s (%s)\n", code.c_str(),
                 resp.get("detail").asString().c_str());
    const std::string& diag = resp.get("diagnostics").asString();
    if (!diag.empty()) std::fputs(diag.c_str(), stderr);
    rc = 1;
    return true;
  }
  std::fputs(resp.get(cli.cmd).asString().c_str(), stdout);
  if (resp.get("cached").asBool())
    std::fprintf(stderr, "mfc: served warm from mfcd (source %s)\n",
                 resp.get("source_hash").asString().c_str());
  rc = 0;
  return true;
}

/// `mfc daemon <status|ping|flush|stop>` — control-plane client.
int daemonControl(const Cli& cli) {
  std::string action = cli.spec;
  if (action.empty()) {
    std::fprintf(stderr,
                 "mfc daemon: missing action (status|ping|flush|stop)\n");
    return 2;
  }
  server::Request req;
  if (action == "stop") req.cmd = "shutdown";
  else if (action == "status" || action == "ping" || action == "flush")
    req.cmd = action;
  else {
    std::fprintf(stderr, "mfc daemon: unknown action '%s'\n",
                 action.c_str());
    return 2;
  }
  JsonValue resp;
  std::string err;
  if (!server::daemonCall(socketFor(cli), req, resp, err)) {
    std::fprintf(stderr, "mfc daemon: %s\n", err.c_str());
    return 1;
  }
  std::printf("%s\n", resp.dump().c_str());
  return resp.get("ok").asBool() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--lint") cli.lint = true;
    else if (a == "--audit") cli.audit = true;
    else if (a == "--race-check") cli.race = true;
    else if (a == "--json") cli.json = true;
    else if (a == "--callgraph") cli.callgraph = true;
    else if (a == "--daemon") cli.daemon = true;
    else if (a.rfind("--socket=", 0) == 0) cli.socket = a.substr(9);
    else if (a == "-Werror") cli.werror = true;
    else if (a.rfind("-Werror=", 0) == 0) {
      for (auto& id : splitIds(a.substr(8))) cli.werror_ids.push_back(id);
    } else if (a.rfind("--only=", 0) == 0) {
      cli.only = splitIds(a.substr(7));
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      return usage();
    } else {
      pos.push_back(a);
    }
  }
  if (!pos.empty()) cli.cmd = pos[0];
  if (pos.size() > 1) cli.spec = pos[1];
  if (pos.size() > 2) {
    if (cli.cmd == "slice")
      cli.criterion = pos[2];
    else
      cli.threads = static_cast<unsigned>(std::atoi(pos[2].c_str()));
  }

  if (cli.cmd.empty()) return usage();
  if (!knownCommand(cli.cmd)) {
    std::fprintf(stderr, "mfc: unknown subcommand '%s'\n", cli.cmd.c_str());
    return usage();
  }
  if (cli.cmd == "slice" && cli.criterion.empty()) {
    std::fprintf(stderr,
                 "mfc slice: missing criterion (expected <line>:<var>, e.g. "
                 "mfc slice prog.mf 12:sum)\n");
    return 2;
  }
  if (cli.cmd == "list") {
    for (const auto& e : corpus())
      std::printf("%-12s %s\n", e.name.c_str(), e.suite.c_str());
    return 0;
  }
  if (cli.cmd == "serve") {
    server::ServerOptions opts = server::ServerOptions::fromEnv();
    if (!cli.socket.empty()) opts.socket_path = cli.socket;
    std::string err;
    server::MfcDaemon daemon(std::move(opts));
    int rc = daemon.run(err);
    if (!err.empty()) std::fprintf(stderr, "mfc serve: %s\n", err.c_str());
    return rc;
  }
  if (cli.cmd == "daemon") return daemonControl(cli);
  if (cli.cmd.empty() || cli.spec.empty()) return usage();
  // Verifier subcommands are sugar for the matching flag.
  if (cli.cmd == "lint") cli.lint = true;
  if (cli.cmd == "audit") cli.audit = true;
  if (cli.cmd == "race") cli.race = true;

  std::string source;
  if (!loadSource(cli.spec, source)) return 1;
  // Daemon routing: report/emit (without local-only verifier flags) can
  // be served by a running mfcd; anything else needs the AST in-process.
  if (cli.daemon && (cli.cmd == "report" || cli.cmd == "emit") &&
      !cli.lint && !cli.audit && !cli.race) {
    int rc = 0;
    if (tryDaemon(cli, source, rc)) return rc;
  }
  DiagEngine diags;
  applyWerror(diags, cli);
  auto cp = compileSource(source, diags);
  if (!cp) {
    std::fputs(renderDiagnostics(diags, source, cli.spec).c_str(), stderr);
    return 1;
  }

  int rc = 0;
  try {
    if (cli.lint) rc |= lint(*cp, cli, source);
    if (cli.audit) rc |= audit(*cp, cli, source);
    if (cli.race) rc |= raceCheck(*cp);
    if (cli.cmd == "report") rc |= report(*cp);
    else if (cli.cmd == "run") rc |= run(*cp, cli.threads);
    else if (cli.cmd == "elpd") rc |= elpd(*cp);
    else if (cli.cmd == "deps") rc |= deps(*cp, cli);
    else if (cli.cmd == "slice") rc |= slice(*cp, cli, source);
    else if (cli.cmd == "certify") rc |= certify(*cp);
    else if (cli.cmd == "signature")
      std::fputs(planSignature(*cp).c_str(), stdout);
    else if (cli.cmd == "emit") {
      EmitStats stats;
      std::string out = emitParallelProgram(*cp->program, cp->pred, &stats);
      std::fputs(out.c_str(), stdout);
      std::fprintf(stderr, "// %d parallel annotation(s), %d two-version "
                   "loop(s)\n",
                   stats.parallel_annotations, stats.two_version_loops);
    }
  } catch (const RuntimeError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return rc;
}
