// mfc — command-line front door to the library.
//
//   mfc report  <file.mf|corpus:NAME>        parallelization report
//   mfc run     <file.mf|corpus:NAME> [T]    execute (T threads, default 1)
//   mfc elpd    <file.mf|corpus:NAME>        ELPD-inspect candidate loops
//   mfc emit    <file.mf|corpus:NAME>        emit transformed parallel MF
//   mfc lint    <file.mf|corpus:NAME>        run the MF-lint checker battery
//   mfc audit   <file.mf|corpus:NAME>        re-verify plans (PlanAuditor)
//   mfc race    <file.mf|corpus:NAME>        dynamic race oracle over a run
//   mfc list                                 list corpus programs
//
// Verification flags (combinable with any command, e.g. `mfc run x.mf
// --lint --audit --race-check`):
//   --lint            run MF-lint before the command
//   --only=<ids>      restrict lint to comma-separated checker ids
//   --audit           run the plan-soundness auditor
//   --race-check      run the dynamic race oracle (sequential execution)
//   -Werror           promote all warnings to errors
//   -Werror=<ids>     promote only the listed diagnostic ids
//
// Sources can come from disk or from the built-in corpus via the
// `corpus:` prefix. Exit status is 1 when any enabled verifier finds a
// problem (lint errors under -Werror, an unsound plan, a race violation).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "audit/lint.h"
#include "audit/plan_audit.h"
#include "audit/race_oracle.h"
#include "codegen/parallel_emit.h"
#include "corpus/corpus.h"
#include "driver/padfa.h"

using namespace padfa;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mfc report|run|elpd|emit|lint|audit|race <file.mf|corpus:NAME> "
      "[threads]\n"
      "       mfc list\n"
      "flags: --lint --audit --race-check --only=<ids> -Werror[=<ids>]\n");
  return 2;
}

bool loadSource(const std::string& spec, std::string& out) {
  if (spec.rfind("corpus:", 0) == 0) {
    const CorpusEntry* e = corpusEntry(spec.substr(7));
    if (!e) {
      std::fprintf(stderr, "unknown corpus program '%s'\n",
                   spec.substr(7).c_str());
      return false;
    }
    out = instantiate(*e);
    return true;
  }
  std::ifstream in(spec);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", spec.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::vector<std::string> splitIds(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

struct Cli {
  std::string cmd;
  std::string spec;
  unsigned threads = 1;
  bool lint = false;
  bool audit = false;
  bool race = false;
  bool werror = false;
  std::vector<std::string> werror_ids;
  std::vector<std::string> only;
};

void applyWerror(DiagEngine& diags, const Cli& cli) {
  if (cli.werror) diags.setWarningsAsErrors(true);
  if (!cli.werror_ids.empty())
    diags.setWarningsAsErrors(
        std::set<std::string>(cli.werror_ids.begin(), cli.werror_ids.end()));
}

int report(const CompiledProgram& cp) {
  std::printf("%-16s %-6s %-14s %-14s %s\n", "loop", "depth", "base",
              "predicated", "notes");
  for (const LoopNode* node : cp.loops.allLoops()) {
    const LoopPlan* bp = cp.base.planFor(node->loop);
    const LoopPlan* pp = cp.pred.planFor(node->loop);
    if (!bp || !pp) continue;
    std::string notes;
    if (pp->status == LoopStatus::RuntimeTest)
      notes = "test: " + pp->runtime_test.str(cp.interner());
    else if (pp->status == LoopStatus::Sequential)
      notes = pp->reason;
    if (pp->degraded || bp->degraded)
      notes += " [degraded: " +
               (pp->degraded ? pp->degrade_cause : bp->degrade_cause) + "]";
    for (const auto& pa : pp->privatized) {
      notes += " [private " +
               std::string(cp.interner().str(pa.array->name)) +
               (pa.copy_in ? "+in" : "") + (pa.copy_out ? "+out" : "") + "]";
    }
    for (const auto& red : pp->reductions)
      notes += " [reduction " +
               std::string(cp.interner().str(red.scalar->name)) + "]";
    std::printf("%-16s %-6d %-14s %-14s %s\n", node->loop->loop_id.c_str(),
                node->depth, std::string(loopStatusName(bp->status)).c_str(),
                std::string(loopStatusName(pp->status)).c_str(),
                notes.c_str());
  }
  size_t degraded = cp.base.degradedCount() + cp.pred.degradedCount();
  if (degraded > 0) {
    std::printf("\n%zu degraded plan(s) — analysis budget exhaustion:",
                degraded);
    std::map<std::string, uint64_t> causes;
    for (const auto* r : {&cp.base, &cp.pred})
      for (const auto& [cause, n] : r->exhaustion_causes) causes[cause] += n;
    for (const auto& [cause, n] : causes)
      std::printf(" %s=%llu", cause.c_str(),
                  static_cast<unsigned long long>(n));
    std::printf("\n");
  }
  return 0;
}

int run(const CompiledProgram& cp, unsigned threads) {
  InterpOptions opt;
  if (threads > 1) {
    opt.plans = &cp.pred;
    opt.num_threads = threads;
  }
  InterpStats s = execute(*cp.program, opt);
  std::printf("checksum            : %.9f (%llu sink calls)\n", s.checksum,
              static_cast<unsigned long long>(s.sink_count));
  std::printf("wall time           : %.3f ms\n", 1e3 * s.total_seconds);
  if (threads > 1) {
    std::printf("simulated %u-proc   : %.3f ms\n", threads,
                1e3 * s.simulated_seconds);
    std::printf("parallel loops      : %llu entered, %llu run-time tests "
                "(%llu passed)\n",
                static_cast<unsigned long long>(s.parallel_loops_entered),
                static_cast<unsigned long long>(s.runtime_tests_evaluated),
                static_cast<unsigned long long>(s.runtime_tests_passed));
  }
  return 0;
}

int elpd(const CompiledProgram& cp) {
  ElpdCollector collector;
  for (const LoopNode* node : cp.loops.allLoops()) {
    const LoopPlan* bp = cp.base.planFor(node->loop);
    if (!bp || bp->status != LoopStatus::Sequential) continue;
    if (nestedInsideParallelized(cp, node->loop, cp.base)) continue;
    collector.instrument(node->loop);
  }
  InterpOptions opt;
  opt.elpd = &collector;
  execute(*cp.program, opt);
  for (const LoopNode* node : cp.loops.allLoops()) {
    if (!collector.isInstrumented(node->loop)) continue;
    auto v = collector.verdict(node->loop);
    std::printf("%-16s %s\n", node->loop->loop_id.c_str(),
                !v.executed        ? "did not execute"
                : v.independent()  ? "independent"
                : v.privatizable() ? "privatizable"
                                   : "not parallel (cross-iteration flow)");
  }
  return 0;
}

/// Run MF-lint; returns 1 when the engine holds errors afterwards (only
/// possible under -Werror since checkers emit warnings/notes).
int lint(const CompiledProgram& cp, const Cli& cli,
         const std::string& source) {
  DiagEngine diags;
  applyWerror(diags, cli);
  LintOptions opt;
  opt.only = cli.only;
  runLint(*cp.program, cp.loops, diags, opt);
  std::string rendered = renderDiagnostics(diags, source, cli.spec);
  std::fputs(rendered.c_str(), stderr);
  if (diags.all().empty()) std::fprintf(stderr, "lint: clean\n");
  return diags.hasErrors() ? 1 : 0;
}

/// Re-verify parallelization plans with the independent PlanAuditor.
int audit(const CompiledProgram& cp, const Cli& cli,
          const std::string& source) {
  DiagEngine diags;
  applyWerror(diags, cli);
  int rc = 0;
  for (const AnalysisResult* ar : {&cp.base, &cp.pred}) {
    AuditReport rep = auditPlans(*cp.program, *ar, diags);
    std::printf("audit (%s): %zu loop(s): %zu independent, %zu via "
                "run-time test, %zu inconclusive, %zu UNSOUND\n",
                ar == &cp.base ? "base" : "predicated", rep.auditedCount(),
                rep.count(AuditVerdict::Independent),
                rep.count(AuditVerdict::DischargedTest),
                rep.count(AuditVerdict::Inconclusive),
                rep.count(AuditVerdict::Unsound));
    for (const auto& la : rep.loops) {
      std::printf("  %-16s %-14s %s (%zu access(es), %zu pair(s))\n",
                  la.loop->loop_id.c_str(),
                  std::string(loopStatusName(la.status)).c_str(),
                  std::string(auditVerdictName(la.verdict)).c_str(),
                  la.accesses, la.pairs_tested);
      for (const auto& n : la.notes) std::printf("      %s\n", n.c_str());
    }
    if (!rep.clean()) rc = 1;
  }
  std::string rendered = renderDiagnostics(diags, source, cli.spec);
  std::fputs(rendered.c_str(), stderr);
  return diags.hasErrors() ? 1 : rc;
}

/// Execute sequentially under the dynamic race oracle.
int raceCheck(const CompiledProgram& cp) {
  RaceOracle oracle(*cp.program, cp.pred);
  InterpOptions opt;
  opt.plans = &cp.pred;
  opt.race = &oracle;
  execute(*cp.program, opt);
  std::fputs(oracle.report(cp.program->interner).c_str(), stdout);
  std::printf("race check: %zu audited loop(s), %zu violation(s), %llu "
              "access(es) shadowed\n",
              oracle.auditedCount(), oracle.violationCount(),
              static_cast<unsigned long long>(oracle.totalAccesses()));
  return oracle.violationCount() > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--lint") cli.lint = true;
    else if (a == "--audit") cli.audit = true;
    else if (a == "--race-check") cli.race = true;
    else if (a == "-Werror") cli.werror = true;
    else if (a.rfind("-Werror=", 0) == 0) {
      for (auto& id : splitIds(a.substr(8))) cli.werror_ids.push_back(id);
    } else if (a.rfind("--only=", 0) == 0) {
      cli.only = splitIds(a.substr(7));
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      return usage();
    } else {
      pos.push_back(a);
    }
  }
  if (!pos.empty()) cli.cmd = pos[0];
  if (pos.size() > 1) cli.spec = pos[1];
  if (pos.size() > 2) cli.threads = static_cast<unsigned>(std::atoi(pos[2].c_str()));

  if (cli.cmd == "list") {
    for (const auto& e : corpus())
      std::printf("%-12s %s\n", e.name.c_str(), e.suite.c_str());
    return 0;
  }
  if (cli.cmd.empty() || cli.spec.empty()) return usage();
  // Verifier subcommands are sugar for the matching flag.
  if (cli.cmd == "lint") cli.lint = true;
  if (cli.cmd == "audit") cli.audit = true;
  if (cli.cmd == "race") cli.race = true;

  std::string source;
  if (!loadSource(cli.spec, source)) return 1;
  DiagEngine diags;
  applyWerror(diags, cli);
  auto cp = compileSource(source, diags);
  if (!cp) {
    std::fputs(renderDiagnostics(diags, source, cli.spec).c_str(), stderr);
    return 1;
  }

  int rc = 0;
  try {
    if (cli.lint) rc |= lint(*cp, cli, source);
    if (cli.audit) rc |= audit(*cp, cli, source);
    if (cli.race) rc |= raceCheck(*cp);
    if (cli.cmd == "report") rc |= report(*cp);
    else if (cli.cmd == "run") rc |= run(*cp, cli.threads);
    else if (cli.cmd == "elpd") rc |= elpd(*cp);
    else if (cli.cmd == "emit") {
      EmitStats stats;
      std::string out = emitParallelProgram(*cp->program, cp->pred, &stats);
      std::fputs(out.c_str(), stdout);
      std::fprintf(stderr, "// %d parallel annotation(s), %d two-version "
                   "loop(s)\n",
                   stats.parallel_annotations, stats.two_version_loops);
    } else if (cli.cmd != "lint" && cli.cmd != "audit" && cli.cmd != "race") {
      return usage();
    }
  } catch (const RuntimeError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return rc;
}
