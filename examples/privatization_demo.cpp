// Privatization under predicates: walks the paper's Figure 1 scenarios —
// guarded coverage (1a), predicate embedding (1c), and boundary exposure
// with copy-in (1d family) — showing what each configuration can prove.
#include <cstdio>

#include "driver/padfa.h"

using namespace padfa;

namespace {

struct Scenario {
  const char* title;
  const char* source;
};

const Scenario kScenarios[] = {
    {"Figure 1(a): write and read guarded by the same condition",
     R"(
proc main() {
  int flag; flag = inoise(5, 2);
  real out[100];
  real help[32];
  for i = 0 to 99 {
    if (flag > 0) { for j = 0 to 31 { help[j] = noise(i + j); } }
    if (flag > 0) {
      real s; s = 0.0;
      for j = 0 to 31 { s = s + help[j]; }
      out[i] = s;
    } else { out[i] = 0.0; }
  }
  sink(out[3]);
}
)"},
    {"Figure 1(c): guard d >= 2 must be EMBEDDED for coverage",
     R"(
proc main() {
  int d; d = inoise(9, 20) + 2;
  real out[100];
  real help[64];
  for i = 0 to 99 {
    if (d >= 2) { for j = 0 to d { help[j] = noise(i + j); } }
    if (d >= 2) { out[i] = help[1] + help[2]; } else { out[i] = 0.1; }
  }
  sink(out[3]);
}
)"},
    {"Figure 1(d) family: partial write, exposed suffix -> copy-in",
     R"(
proc main() {
  int m; m = inoise(13, 1) + 40;
  real out[100];
  real help[64];
  for q = 0 to 63 { help[q] = noise(q); }
  for i = 0 to 99 {
    for j = 0 to m - 1 { help[j] = noise(i * 64 + j); }
    real s; s = 0.0;
    for j = 0 to 63 { s = s + help[j]; }
    out[i] = s;
  }
  sink(out[3]);
}
)"},
};

const char* statusOf(const CompiledProgram& cp, const AnalysisResult& r) {
  // Report the outermost candidate loop's status.
  for (const LoopNode* node : cp.loops.allLoops()) {
    if (node->depth != 0) continue;
    const LoopPlan* plan = r.planFor(node->loop);
    if (!plan) continue;
    if (plan->status == LoopStatus::Sequential) return "sequential";
    if (plan->status == LoopStatus::RuntimeTest) return "run-time test";
    if (plan->status == LoopStatus::Parallel && plan->priv_used)
      return "parallel (privatized)";
  }
  return "parallel";
}

}  // namespace

int main() {
  for (const auto& sc : kScenarios) {
    DiagEngine diags;
    auto cp = compileSource(sc.source, diags);
    if (!cp) {
      std::fprintf(stderr, "%s", diags.dump().c_str());
      return 1;
    }
    // Find the main outer loop (the one with a privatization candidate).
    const LoopPlan* outer = nullptr;
    for (const LoopNode* node : cp->loops.allLoops())
      if (node->depth == 0 && cp->pred.planFor(node->loop) &&
          !outer)  // first outermost loop with a plan
        outer = cp->pred.planFor(node->loop);
    std::printf("%s\n", sc.title);
    std::printf("  base SUIF      : %s\n", statusOf(*cp, cp->base));
    std::printf("  predicated     : %s\n", statusOf(*cp, cp->pred));
    // Show privatization details from the main gained loop.
    for (const LoopNode* node : cp->loops.allLoops()) {
      const LoopPlan* plan = cp->pred.planFor(node->loop);
      if (!plan || plan->privatized.empty()) continue;
      for (const auto& pa : plan->privatized) {
        std::printf("  %-14s : privatize '%s'%s%s\n",
                    node->loop->loop_id.c_str(),
                    std::string(cp->interner().str(pa.array->name)).c_str(),
                    pa.copy_in ? " with copy-in" : "",
                    pa.copy_out ? " + last-value copy-out" : "");
      }
    }
    // Verify execution equivalence.
    InterpStats seq = execute(*cp->program, {});
    InterpOptions par;
    par.plans = &cp->pred;
    par.num_threads = 4;
    InterpStats pst = execute(*cp->program, par);
    std::printf("  execution      : seq=%.6f par=%.6f (%s)\n\n",
                seq.checksum, pst.checksum,
                seq.checksum == pst.checksum ? "match" : "MISMATCH");
  }
  return 0;
}
