// ELPD inspection demo: instrument the candidate loops of a corpus
// program, run it sequentially, and report which loops the run-time test
// finds inherently parallel — the measurement behind the paper's
// "remaining parallel loops" denominator.
#include <cstdio>
#include <cstring>

#include "corpus/corpus.h"
#include "driver/padfa.h"

using namespace padfa;

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "applu";
  const CorpusEntry* entry = corpusEntry(name);
  if (!entry) {
    std::fprintf(stderr, "unknown corpus program '%s'\n", name);
    std::fprintf(stderr, "available:");
    for (const auto& e : corpus()) std::fprintf(stderr, " %s", e.name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }
  DiagEngine diags;
  auto cp = compileSource(instantiate(*entry), diags);
  if (!cp) {
    std::fprintf(stderr, "%s", diags.dump().c_str());
    return 1;
  }

  ElpdCollector collector;
  int candidates = 0;
  for (const LoopNode* node : cp->loops.allLoops()) {
    const LoopPlan* bp = cp->base.planFor(node->loop);
    if (!bp || bp->status != LoopStatus::Sequential) continue;
    if (nestedInsideParallelized(*cp, node->loop, cp->base)) continue;
    collector.instrument(node->loop);
    ++candidates;
  }
  std::printf("program '%s': %d candidate loop(s) left sequential by the "
              "base system\n",
              name, candidates);

  InterpOptions opt;
  opt.elpd = &collector;
  execute(*cp->program, opt);

  for (const LoopNode* node : cp->loops.allLoops()) {
    if (!collector.isInstrumented(node->loop)) continue;
    auto v = collector.verdict(node->loop);
    const char* verdict = !v.executed        ? "did not execute"
                          : v.independent()  ? "INDEPENDENT"
                          : v.privatizable() ? "PRIVATIZABLE"
                                             : "not parallel (flow)";
    const LoopPlan* pp = cp->pred.planFor(node->loop);
    const char* pred = pp && pp->status == LoopStatus::Parallel
                           ? "recovered (compile time)"
                       : pp && pp->status == LoopStatus::RuntimeTest
                           ? "recovered (run-time test)"
                           : "not recovered";
    std::printf("  %-14s ELPD: %-22s accesses=%-8llu predicated: %s\n",
                node->loop->loop_id.c_str(), verdict,
                static_cast<unsigned long long>(v.accesses), pred);
  }
  std::printf("total instrumented accesses: %llu (the inspector overhead "
              "the paper's low-cost tests avoid)\n",
              static_cast<unsigned long long>(collector.totalAccesses()));
  return 0;
}
