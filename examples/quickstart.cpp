// Quickstart: compile an MF program, compare base vs predicated
// parallelization, and execute it in parallel.
//
//   $ ./examples/quickstart
//
// This walks the full pipeline a library user would: source -> analysis
// -> per-loop plans -> two-version parallel execution.
#include <cstdio>

#include "driver/padfa.h"

using namespace padfa;

static const char* kSource = R"(
// A conditionally-defined work array: the write and the read of `help`
// are guarded by the same run-time flag, so only predicated analysis can
// prove the loop parallel (Figure 1(a) of the paper).
proc main() {
  int n; n = 2000;
  int flag; flag = inoise(1, 2);
  real out[2000];
  real help[64];
  for i = 0 to n - 1 {
    if (flag > 0) {
      for j = 0 to 63 { help[j] = noise(i * 64 + j); }
    }
    if (flag > 0) {
      real s; s = 0.0;
      for j = 0 to 63 { s = s + help[j]; }
      out[i] = s;
    } else {
      out[i] = noise(i);
    }
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + out[i]; }
  sink(chk);
}
)";

int main() {
  DiagEngine diags;
  auto cp = compileSource(kSource, diags);
  if (!cp) {
    std::fprintf(stderr, "compile failed:\n%s", diags.dump().c_str());
    return 1;
  }

  std::printf("Per-loop plans (base SUIF vs predicated analysis):\n");
  for (const LoopNode* node : cp->loops.allLoops()) {
    const LoopPlan* bp = cp->base.planFor(node->loop);
    const LoopPlan* pp = cp->pred.planFor(node->loop);
    std::printf("  %-12s depth %d : base=%-13s pred=%-13s%s%s\n",
                node->loop->loop_id.c_str(), node->depth,
                std::string(loopStatusName(bp->status)).c_str(),
                std::string(loopStatusName(pp->status)).c_str(),
                pp->priv_used ? "  [privatizes]" : "",
                bp->status == LoopStatus::Sequential
                    ? ("  (base: " + bp->reason + ")").c_str()
                    : "");
  }

  InterpStats seq = execute(*cp->program, {});
  InterpOptions par;
  par.plans = &cp->pred;
  par.num_threads = 4;
  InterpStats pstats = execute(*cp->program, par);

  std::printf("\nsequential checksum  : %.6f  (%.3f ms)\n", seq.checksum,
              1e3 * seq.total_seconds);
  std::printf("parallel checksum    : %.6f  (%.3f ms wall, %.3f ms "
              "simulated 4-proc)\n",
              pstats.checksum, 1e3 * pstats.total_seconds,
              1e3 * pstats.simulated_seconds);
  std::printf("parallel loops entered: %llu\n",
              static_cast<unsigned long long>(pstats.parallel_loops_entered));
  return seq.checksum == pstats.checksum ? 0 : 1;
}
