#include "vra/vra.h"

#include <atomic>
#include <cstdlib>
#include <set>

#include "ipa/callgraph.h"
#include "support/perf_stats.h"

namespace padfa::vra {

namespace {

// -1 = no override (follow the environment), 0 = disabled, 1 = enabled.
std::atomic<int> g_vra_override{-1};

bool envVraEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("PADFA_NO_VRA");
    return !(v && *v);
  }();
  return enabled;
}

RangeEnv unreachableEnv() {
  RangeEnv e;
  e.reachable = false;
  return e;
}

RangeEnv joinEnv(const RangeEnv& a, const RangeEnv& b) {
  if (!a.reachable) return b;
  if (!b.reachable) return a;
  RangeEnv r;
  for (const auto& [d, ra] : a.vals) {
    auto it = b.vals.find(d);
    if (it == b.vals.end()) continue;  // top in b => top in the join
    Range j = join(ra, it->second);
    if (!j.isTop()) r.vals[d] = j;
  }
  return r;
}

RangeEnv widenEnv(const RangeEnv& prev, const RangeEnv& next) {
  if (!prev.reachable) return next;
  if (!next.reachable) return prev;
  RangeEnv r;
  for (const auto& [d, rp] : prev.vals) {
    auto it = next.vals.find(d);
    if (it == next.vals.end()) continue;  // moved to top: widen to top
    Range w = widen(rp, it->second);
    if (w != rp)
      PerfStats::instance().vra.widenings.fetch_add(
          1, std::memory_order_relaxed);
    if (!w.isTop()) r.vals[d] = w;
  }
  return r;
}

/// One narrowing step from a post-fixpoint `wide` using the recomputed
/// iterate `next`. Keys `next` dropped to top stay top (always sound).
RangeEnv narrowEnv(const RangeEnv& wide, const RangeEnv& next) {
  if (!wide.reachable || !next.reachable) return next;
  RangeEnv r;
  for (const auto& [d, rn] : next.vals) {
    auto it = wide.vals.find(d);
    Range res = it == wide.vals.end() ? rn : narrow(it->second, rn);
    if (!res.isTop()) r.vals[d] = res;
  }
  return r;
}

bool envEq(const RangeEnv& a, const RangeEnv& b) {
  if (a.reachable != b.reachable) return false;
  if (!a.reachable) return true;
  return a.vals == b.vals;
}

/// A tracked scalar: int, non-array, with a declaration.
const VarDecl* trackedScalar(const Expr& e) {
  if (e.kind != ExprKind::VarRef) return nullptr;
  const VarDecl* d = static_cast<const VarRefExpr&>(e).decl;
  if (!d || d->isArray() || d->elem_type != Type::Int) return nullptr;
  return d;
}

/// Match `v`, `v + c`, `c + v`, `v - c` over a tracked scalar; the
/// refinement for `expr <= bound` then tightens v by `bound - c`.
struct VarPlusConst {
  const VarDecl* var;
  int64_t offset;
};
std::optional<VarPlusConst> decompose(const Expr& e) {
  if (const VarDecl* d = trackedScalar(e)) return VarPlusConst{d, 0};
  if (e.kind != ExprKind::Binary) return std::nullopt;
  const auto& b = static_cast<const BinaryExpr&>(e);
  if (b.op == BinOp::Add) {
    if (const VarDecl* d = trackedScalar(*b.lhs))
      if (b.rhs->kind == ExprKind::IntLit)
        return VarPlusConst{d, static_cast<const IntLitExpr&>(*b.rhs).value};
    if (const VarDecl* d = trackedScalar(*b.rhs))
      if (b.lhs->kind == ExprKind::IntLit)
        return VarPlusConst{d, static_cast<const IntLitExpr&>(*b.lhs).value};
  } else if (b.op == BinOp::Sub) {
    if (const VarDecl* d = trackedScalar(*b.lhs))
      if (b.rhs->kind == ExprKind::IntLit)
        return VarPlusConst{d, -static_cast<const IntLitExpr&>(*b.rhs).value};
  }
  return std::nullopt;
}

void meetVar(RangeEnv& env, const VarDecl* d, const Range& bound) {
  if (!env.reachable) return;
  Range m = meet(env.get(d), bound);
  if (m.empty) {
    env = unreachableEnv();
    return;
  }
  env.set(d, m);
}

/// Refine with `lhs + slack <= rhs` (slack = -1 turns strict `<` into the
/// inclusive form used below).
void refineLe(RangeEnv& env, const Expr& lhs, const Expr& rhs,
              int64_t slack) {
  if (lhs.type == Type::Real || rhs.type == Type::Real) return;
  if (auto vl = decompose(lhs)) {
    // v + off + slack <= rhs  =>  v <= hi(rhs) - off - slack
    Range b = sub(RangeAnalysis::evalIn(env, rhs),
                  Range::constant(vl->offset + slack));
    meetVar(env, vl->var, Range::of(std::nullopt, b.hi));
  }
  if (!env.reachable) return;
  if (auto vr = decompose(rhs)) {
    // lhs + slack <= v + off  =>  v >= lo(lhs) + slack - off
    Range b = add(RangeAnalysis::evalIn(env, lhs),
                  Range::constant(slack - vr->offset));
    meetVar(env, vr->var, Range::of(b.lo, std::nullopt));
  }
}

void refineEq(RangeEnv& env, const Expr& lhs, const Expr& rhs) {
  if (lhs.type == Type::Real || rhs.type == Type::Real) return;
  if (auto vl = decompose(lhs)) {
    Range b = sub(RangeAnalysis::evalIn(env, rhs),
                  Range::constant(vl->offset));
    meetVar(env, vl->var, b);
  }
  if (!env.reachable) return;
  if (auto vr = decompose(rhs)) {
    Range b = sub(RangeAnalysis::evalIn(env, lhs),
                  Range::constant(vr->offset));
    meetVar(env, vr->var, b);
  }
}

/// `v + off != other`: when `other` is an exactly-known constant sitting
/// on an interval endpoint, shave the endpoint off.
void refineNe(RangeEnv& env, const Expr& lhs, const Expr& rhs) {
  if (lhs.type == Type::Real || rhs.type == Type::Real) return;
  auto shave = [&env](const VarPlusConst& v, const Expr& other) {
    auto c = RangeAnalysis::evalIn(env, other).asConstant();
    if (!c) return;
    int64_t forbidden = *c - v.offset;
    Range r = env.get(v.var);
    if (r.lo && r.hi && *r.lo == *r.hi && *r.lo == forbidden) {
      env = unreachableEnv();
      return;
    }
    if (r.lo && *r.lo == forbidden) r.lo = *r.lo + 1;
    if (r.hi && *r.hi == forbidden) r.hi = *r.hi - 1;
    env.set(v.var, r);
  };
  if (auto vl = decompose(lhs)) shave(*vl, rhs);
  if (!env.reachable) return;
  if (auto vr = decompose(rhs)) shave(*vr, lhs);
}

void refineAtom(RangeEnv& env, const PredNode& a) {
  if (a.op == AtomOp::Le) {
    if (!a.negated)
      refineLe(env, *a.lhs, *a.rhs, 0);  // lhs <= rhs
    else
      refineLe(env, *a.rhs, *a.lhs, 1);  // lhs > rhs  ==  rhs + 1 <= lhs
  } else {
    if (!a.negated)
      refineEq(env, *a.lhs, *a.rhs);
    else
      refineNe(env, *a.lhs, *a.rhs);
  }
}

/// Three-valued comparison of two intervals under a canonical atom.
Proof proveAtom(const RangeEnv& env, const PredNode& a) {
  if (a.lhs->type == Type::Real || a.rhs->type == Type::Real)
    return Proof::Unknown;
  Range diff = sub(RangeAnalysis::evalIn(env, *a.rhs),
                   RangeAnalysis::evalIn(env, *a.lhs));
  if (diff.empty) return Proof::Unknown;
  Proof p = Proof::Unknown;
  if (a.op == AtomOp::Le) {  // lhs <= rhs  <=>  diff >= 0
    if (diff.lo && *diff.lo >= 0) p = Proof::True;
    if (diff.hi && *diff.hi < 0) p = Proof::False;
  } else {  // lhs == rhs  <=>  diff == 0
    if (diff.asConstant() == std::optional<int64_t>{0}) p = Proof::True;
    if (!diff.contains(0)) p = Proof::False;
  }
  if (a.negated) {
    if (p == Proof::True) return Proof::False;
    if (p == Proof::False) return Proof::True;
  }
  return p;
}

}  // namespace

bool vraEnabled() {
  int ov = g_vra_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  return envVraEnabled();
}

void setVraEnabled(bool enabled) {
  g_vra_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void clearVraEnabledOverride() {
  g_vra_override.store(-1, std::memory_order_relaxed);
}

RangeEnv refineEnv(const RangeEnv& env, const Pred& p) {
  if (!env.reachable) return env;
  const PredNode& n = p.node();
  switch (n.kind) {
    case PredKind::True:
      return env;
    case PredKind::False:
      return unreachableEnv();
    case PredKind::Atom: {
      RangeEnv r = env;
      refineAtom(r, n);
      return r;
    }
    case PredKind::And: {
      RangeEnv r = env;
      for (const Pred& c : n.children) {
        r = refineEnv(r, c);
        if (!r.reachable) break;
      }
      return r;
    }
    case PredKind::Or: {
      RangeEnv r = unreachableEnv();
      for (const Pred& c : n.children) r = joinEnv(r, refineEnv(env, c));
      return r;
    }
  }
  return env;
}

const RangeEnv RangeAnalysis::kTopEnv{};

RangeAnalysis::RangeAnalysis(const Program& program) : program_(&program) {
  if (!vraEnabled()) return;
  enabled_ = true;
  PerfStats::instance().vra.analyses.fetch_add(1, std::memory_order_relaxed);
  ipa::CallGraph cg = ipa::CallGraph::build(program);
  auto order = cg.bottomUpOrder();
  // Top-down (caller-before-callee): every call site's argument interval
  // is accumulated into param_in_ before the callee is analyzed. A
  // procedure inside a call cycle (impossible today — Sema rejects
  // recursion) would see an unfinished caller and fall back to top.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const ProcDecl* proc = *it;
    const auto& callers = cg.callers(proc);
    bool callers_done = !callers.empty();
    for (const ProcDecl* c : callers)
      if (!proc_done_.count(c)) callers_done = false;
    RangeEnv env;
    for (const auto& pd : proc->params) {
      const VarDecl* p = pd.get();
      if (p->isArray() || p->elem_type != Type::Int) continue;
      if (callers_done) {
        auto pit = param_in_.find(p);
        if (pit != param_in_.end()) env.set(p, pit->second);
      }
    }
    transferBlock(*proc->body, std::move(env), /*record=*/true);
    proc_done_[proc] = true;
  }
}

const RangeEnv& RangeAnalysis::envAt(const Stmt* s) const {
  if (!enabled_) return kTopEnv;
  auto it = at_.find(s);
  return it == at_.end() ? kTopEnv : it->second;
}

Range RangeAnalysis::rangeAt(const Stmt* s, const VarDecl* d) const {
  return envAt(s).get(d);
}

Range RangeAnalysis::evalAt(const Stmt* s, const Expr& e) const {
  if (!enabled_) return Range::top();
  return evalIn(envAt(s), e);
}

Proof RangeAnalysis::provePred(const Stmt* s, const Pred& p) const {
  if (!enabled_) return Proof::Unknown;
  auto& vc = PerfStats::instance().vra;
  vc.proofs.fetch_add(1, std::memory_order_relaxed);
  Proof r = proveIn(envAt(s), p);
  if (r != Proof::Unknown)
    vc.proofs_discharged.fetch_add(1, std::memory_order_relaxed);
  return r;
}

Range RangeAnalysis::evalIn(const RangeEnv& env, const Expr& e) {
  if (!env.reachable) return Range::bottom();
  switch (e.kind) {
    case ExprKind::IntLit:
      return Range::constant(static_cast<const IntLitExpr&>(e).value);
    case ExprKind::RealLit:
      return Range::top();
    case ExprKind::VarRef: {
      const VarDecl* d = trackedScalar(e);
      return d ? env.get(d) : Range::top();
    }
    case ExprKind::ArrayRef:
      return Range::top();  // array contents are not tracked
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      Range o = evalIn(env, *u.operand);
      if (u.op == UnOp::Neg) return neg(o);
      // Not: int truthiness
      if (o.asConstant() == std::optional<int64_t>{0})
        return Range::constant(1);
      if (!o.contains(0)) return Range::constant(0);
      return Range::boolean();
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      if (isComparison(b.op)) {
        if (b.lhs->type == Type::Real || b.rhs->type == Type::Real)
          return Range::boolean();
        Range l = evalIn(env, *b.lhs), r = evalIn(env, *b.rhs);
        Range diff = sub(r, l);
        if (diff.empty) return Range::boolean();
        // truth(diff `rel` 0) for the relation rewritten as rhs - lhs
        auto truth = [](Proof p) {
          if (p == Proof::True) return Range::constant(1);
          if (p == Proof::False) return Range::constant(0);
          return Range::boolean();
        };
        auto cmp = [&diff](int64_t min_true) {
          // "diff >= min_true" three-valued
          if (diff.lo && *diff.lo >= min_true) return Proof::True;
          if (diff.hi && *diff.hi < min_true) return Proof::False;
          return Proof::Unknown;
        };
        switch (b.op) {
          case BinOp::Lt:
            return truth(cmp(1));
          case BinOp::Le:
            return truth(cmp(0));
          case BinOp::Gt: {
            // lhs > rhs  <=>  diff <= -1: the negation of diff >= 0
            Proof p = cmp(0);
            if (p == Proof::True) return Range::constant(0);
            if (p == Proof::False) return Range::constant(1);
            return Range::boolean();
          }
          case BinOp::Ge: {
            // lhs >= rhs  <=>  diff <= 0: the negation of diff >= 1
            Proof p = cmp(1);
            if (p == Proof::True) return Range::constant(0);
            if (p == Proof::False) return Range::constant(1);
            return Range::boolean();
          }
          case BinOp::Eq: {
            if (diff.asConstant() == std::optional<int64_t>{0})
              return Range::constant(1);
            if (!diff.contains(0)) return Range::constant(0);
            return Range::boolean();
          }
          case BinOp::Ne: {
            if (!diff.contains(0)) return Range::constant(1);
            if (diff.asConstant() == std::optional<int64_t>{0})
              return Range::constant(0);
            return Range::boolean();
          }
          default:
            return Range::boolean();
        }
      }
      if (isLogical(b.op)) return Range::boolean();
      if (e.type == Type::Real) return Range::top();
      Range l = evalIn(env, *b.lhs), r = evalIn(env, *b.rhs);
      switch (b.op) {
        case BinOp::Add:
          return add(l, r);
        case BinOp::Sub:
          return sub(l, r);
        case BinOp::Mul:
          return mul(l, r);
        case BinOp::Div:
          return div(l, r);
        case BinOp::Rem:
          return rem(l, r);
        default:
          return Range::top();
      }
    }
    case ExprKind::Intrinsic: {
      const auto& in = static_cast<const IntrinsicExpr&>(e);
      if (e.type == Type::Real) return Range::top();
      switch (in.fn) {
        case Intrinsic::Min:
          return min_(evalIn(env, *in.args[0]), evalIn(env, *in.args[1]));
        case Intrinsic::Max:
          return max_(evalIn(env, *in.args[0]), evalIn(env, *in.args[1]));
        case Intrinsic::Abs:
          return abs_(evalIn(env, *in.args[0]));
        case Intrinsic::INoise:
          return inoise(evalIn(env, *in.args[1]));
        default:
          return Range::top();
      }
    }
  }
  return Range::top();
}

Proof RangeAnalysis::proveIn(const RangeEnv& env, const Pred& p) {
  if (!env.reachable) return Proof::Unknown;
  const PredNode& n = p.node();
  switch (n.kind) {
    case PredKind::True:
      return Proof::True;
    case PredKind::False:
      return Proof::False;
    case PredKind::Atom:
      return proveAtom(env, n);
    case PredKind::And: {
      bool all_true = true;
      for (const Pred& c : n.children) {
        Proof r = proveIn(env, c);
        if (r == Proof::False) return Proof::False;
        if (r != Proof::True) all_true = false;
      }
      return all_true ? Proof::True : Proof::Unknown;
    }
    case PredKind::Or: {
      bool all_false = true;
      for (const Pred& c : n.children) {
        Proof r = proveIn(env, c);
        if (r == Proof::True) return Proof::True;
        if (r != Proof::False) all_false = false;
      }
      return all_false ? Proof::False : Proof::Unknown;
    }
  }
  return Proof::Unknown;
}

RangeEnv RangeAnalysis::transferBlock(const BlockStmt& block, RangeEnv env,
                                      bool record) {
  if (record) at_[&block] = env;
  // Declarations are hoisted: scalars reset to zero (or their
  // initializer) at block entry, every time the block is entered.
  for (const auto& d : block.decls) {
    if (d->isArray() || d->is_loop_index || d->elem_type != Type::Int)
      continue;
    env.set(d.get(),
            d->init ? evalIn(env, *d->init) : Range::constant(0));
  }
  for (const auto& s : block.stmts) env = transferStmt(*s, env, record);
  return env;
}

RangeEnv RangeAnalysis::transferStmt(const Stmt& stmt, RangeEnv env,
                                     bool record) {
  if (stmt.kind == StmtKind::Block)
    return transferBlock(static_cast<const BlockStmt&>(stmt), std::move(env),
                         record);
  if (record) at_[&stmt] = env;
  switch (stmt.kind) {
    case StmtKind::Assign: {
      const auto& as = static_cast<const AssignStmt&>(stmt);
      if (const VarDecl* d = trackedScalar(*as.target))
        env.set(d, evalIn(env, *as.value));
      return env;
    }
    case StmtKind::If: {
      const auto& is = static_cast<const IfStmt&>(stmt);
      Pred p = Pred::fromCondition(*is.cond, program_->interner);
      RangeEnv then_out =
          transferBlock(*is.then_block, refineEnv(env, p), record);
      RangeEnv else_out = refineEnv(env, !p);
      if (is.else_block)
        else_out = transferBlock(*is.else_block, std::move(else_out), record);
      return joinEnv(then_out, else_out);
    }
    case StmtKind::For:
      return transferFor(static_cast<const ForStmt&>(stmt), std::move(env),
                         record);
    case StmtKind::Call: {
      const auto& cs = static_cast<const CallStmt&>(stmt);
      // Accumulate argument intervals for the callee's top-down entry env
      // (record pass only: fixpoint iterates are not invariants yet).
      // By-value scalar parameters mean the caller env is unchanged.
      if (record && cs.callee_proc) {
        const auto& params = cs.callee_proc->params;
        for (size_t i = 0; i < cs.args.size() && i < params.size(); ++i) {
          const VarDecl* p = params[i].get();
          if (p->isArray() || p->elem_type != Type::Int) continue;
          Range arg = evalIn(env, *cs.args[i]);
          auto [it, inserted] = param_in_.emplace(p, arg);
          if (!inserted) it->second = join(it->second, arg);
        }
      }
      return env;
    }
    case StmtKind::Return:
      return unreachableEnv();
    case StmtKind::Block:
      break;  // handled above
  }
  return env;
}

RangeEnv RangeAnalysis::transferFor(const ForStmt& loop, RangeEnv env,
                                    bool record) {
  Range lb = evalIn(env, *loop.lower);
  Range ub = evalIn(env, *loop.upper);
  Range step = loop.step ? evalIn(env, *loop.step) : Range::constant(1);
  bool asc = step.lo && *step.lo >= 1;
  bool desc = step.hi && *step.hi <= -1;
  // Bounds are evaluated once at loop entry; ascending loops keep
  // lb <= i <= ub, descending ones ub <= i <= lb (inclusive semantics).
  Range idx;
  if (asc)
    idx = Range::of(lb.lo, ub.hi);
  else if (desc)
    idx = Range::of(ub.lo, lb.hi);
  else
    idx = join(lb, ub);

  RangeEnv body_in = env;
  if (idx.empty) {
    body_in = unreachableEnv();
    idx = Range::top();
  } else if (asc) {
    // The body executing implies lower <= upper.
    refineLe(body_in, *loop.lower, *loop.upper, 0);
  } else if (desc) {
    refineLe(body_in, *loop.upper, *loop.lower, 0);
  }
  body_in.set(loop.index_decl, idx);

  RangeEnv cur = body_in;
  bool stable = false;
  for (int iter = 0; iter < 64; ++iter) {
    RangeEnv out = transferBlock(*loop.body, cur, /*record=*/false);
    out.set(loop.index_decl, idx);
    RangeEnv next = joinEnv(body_in, out);
    next.set(loop.index_decl, idx);
    RangeEnv wide = iter >= 2 ? widenEnv(cur, next) : std::move(next);
    if (envEq(wide, cur)) {
      stable = true;
      break;
    }
    cur = std::move(wide);
  }
  if (!stable) {
    // Defensive cap (unreachable for realistic programs): fall back to
    // the trivially-invariant top environment.
    RangeEnv top;
    top.reachable = cur.reachable;
    top.set(loop.index_decl, idx);
    cur = std::move(top);
  }
  {
    // One narrowing pass recovers bounds the widening overshot.
    RangeEnv out = transferBlock(*loop.body, cur, /*record=*/false);
    out.set(loop.index_decl, idx);
    RangeEnv next = joinEnv(body_in, out);
    next.set(loop.index_decl, idx);
    cur = narrowEnv(cur, next);
  }
  RangeEnv body_out = transferBlock(*loop.body, cur, record);
  body_out.vals.erase(loop.index_decl);
  // Exit: the zero-trip path joins the post-body invariant.
  return joinEnv(env, body_out);
}

}  // namespace padfa::vra
