// Predicate-aware value-range analysis over MF integer scalars
// (DESIGN.md §15).
//
// A flow-sensitive abstract interpretation computing an interval
// (vra/range.h) for every int scalar at every statement. Loops are
// solved by fixpoint with widening at the loop head and one narrowing
// pass on stabilization; branch and loop-bound conditions refine the
// environment through the same `Pred` NNF atoms the data-flow analysis
// predicates use, so facts like "inside `if (d == n)` we have d = [N,N]"
// fall out of the shared machinery.
//
// Interprocedural treatment is top-down over the (acyclic) call graph:
// a callee's int-scalar parameter starts at the join of every call
// site's argument interval. MF passes scalars by value, so calls never
// clobber caller scalars.
//
// Clients: static runtime-test discharge (dataflow/vra_promote.h), the
// Doacross profitability guard (dataflow/doacross.h), and the
// range-sharpened MF-lint checkers (audit/lint.h). Nothing here is
// serialized — ranges are recomputed from the AST on demand, which is
// what keeps warm (store-replayed) and cold plans identical.
//
// The whole subsystem is disableable via PADFA_NO_VRA (any non-empty
// value); setVraEnabled() overrides the environment programmatically for
// tests. With VRA off, plans are bit-identical to the pre-VRA engine.
#pragma once

#include <map>
#include <memory>

#include "lang/ast.h"
#include "predicate/pred.h"
#include "vra/range.h"

namespace padfa::vra {

/// Whether the value-range analysis is active. Defaults to the
/// environment (PADFA_NO_VRA unset/empty => enabled); a setVraEnabled()
/// call takes precedence for the rest of the process.
bool vraEnabled();
void setVraEnabled(bool enabled);
/// Drop any setVraEnabled() override, reverting to the environment.
void clearVraEnabledOverride();

/// Three-valued proof outcome for predicate queries.
enum class Proof : uint8_t { Unknown, True, False };

/// The scalar environment at one program point: interval per int scalar.
/// Absent declarations are top (any value); `reachable == false` marks a
/// point no execution reaches (bottom).
struct RangeEnv {
  bool reachable = true;
  std::map<const VarDecl*, Range> vals;  // only non-top entries are kept

  Range get(const VarDecl* d) const {
    if (!reachable) return Range::bottom();
    auto it = vals.find(d);
    return it == vals.end() ? Range::top() : it->second;
  }
  void set(const VarDecl* d, const Range& r) {
    if (r.isTop())
      vals.erase(d);
    else
      vals[d] = r;
  }
};

class RangeAnalysis {
 public:
  /// Runs the whole-program fixpoint immediately (cheap: MF programs are
  /// small and the lattice is shallow). When vraEnabled() is false the
  /// constructor does nothing and every query degrades to top/Unknown.
  explicit RangeAnalysis(const Program& program);

  bool enabled() const { return enabled_; }

  /// Environment at statement entry (before the statement executes; for
  /// blocks, before the hoisted declarations initialize).
  const RangeEnv& envAt(const Stmt* s) const;

  /// Interval of `d` at entry to `s`. Top when disabled or unrecorded.
  Range rangeAt(const Stmt* s, const VarDecl* d) const;

  /// Interval of an expression evaluated in the statement-entry
  /// environment of `s`. Real-typed expressions are top.
  Range evalAt(const Stmt* s, const Expr& e) const;

  /// Try to prove the predicate always-true or always-false in the
  /// environment at entry to `s`. Unknown when disabled, when the
  /// predicate mentions reals, or when the intervals don't decide it.
  Proof provePred(const Stmt* s, const Pred& p) const;
  bool proveTrue(const Stmt* s, const Pred& p) const {
    return provePred(s, p) == Proof::True;
  }
  bool proveFalse(const Stmt* s, const Pred& p) const {
    return provePred(s, p) == Proof::False;
  }

  /// Evaluate in an explicit environment (exposed for tests).
  static Range evalIn(const RangeEnv& env, const Expr& e);
  static Proof proveIn(const RangeEnv& env, const Pred& p);

 private:
  void analyzeProc(const ProcDecl& proc, RangeEnv env);
  RangeEnv transferBlock(const BlockStmt& block, RangeEnv env, bool record);
  RangeEnv transferStmt(const Stmt& stmt, RangeEnv env, bool record);
  RangeEnv transferFor(const ForStmt& loop, RangeEnv env, bool record);

  bool enabled_ = false;
  const Program* program_ = nullptr;
  std::map<const Stmt*, RangeEnv> at_;
  /// Join of argument intervals per callee parameter, accumulated while
  /// walking callers (top-down order guarantees completeness).
  std::map<const VarDecl*, Range> param_in_;
  std::map<const ProcDecl*, bool> proc_done_;
  static const RangeEnv kTopEnv;
};

/// Refine `env` with the knowledge that `p` holds (branch entry, loop
/// body entry). Sound: the result over-approximates every state
/// satisfying `p` that `env` admits. Exposed for tests.
RangeEnv refineEnv(const RangeEnv& env, const Pred& p);

}  // namespace padfa::vra
