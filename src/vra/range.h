// Integer interval lattice for the predicate-aware value-range analysis
// (DESIGN.md §15). A Range is a (possibly half-open) interval over
// int64 program values; an absent bound means unbounded on that side,
// and `empty` is the bottom element (no value / unreachable).
//
// Arithmetic is conservative: any bound whose exact computation would
// overflow int64 is dropped (widened to unbounded) rather than clamped —
// a clamped bound would be a *claim* about program values that the
// program can violate.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>

namespace padfa::vra {

struct Range {
  std::optional<int64_t> lo;  // absent => -inf
  std::optional<int64_t> hi;  // absent => +inf
  bool empty = false;         // bottom: no value reaches this point

  static Range top() { return {}; }
  static Range bottom() {
    Range r;
    r.empty = true;
    return r;
  }
  static Range constant(int64_t v) { return {v, v, false}; }
  static Range of(std::optional<int64_t> lo, std::optional<int64_t> hi) {
    if (lo && hi && *lo > *hi) return bottom();
    return {lo, hi, false};
  }
  /// Booleans and comparison results.
  static Range boolean() { return {int64_t{0}, int64_t{1}, false}; }

  bool isTop() const { return !empty && !lo && !hi; }
  bool isConstant() const { return !empty && lo && hi && *lo == *hi; }
  std::optional<int64_t> asConstant() const {
    if (isConstant()) return *lo;
    return std::nullopt;
  }
  bool contains(int64_t v) const {
    if (empty) return false;
    if (lo && v < *lo) return false;
    if (hi && v > *hi) return false;
    return true;
  }

  bool operator==(const Range& o) const {
    if (empty || o.empty) return empty == o.empty;
    return lo == o.lo && hi == o.hi;
  }
  bool operator!=(const Range& o) const { return !(*this == o); }

  std::string str() const {
    if (empty) return "bot";
    std::string s = "[";
    s += lo ? std::to_string(*lo) : "-inf";
    s += ", ";
    s += hi ? std::to_string(*hi) : "+inf";
    s += "]";
    return s;
  }
};

namespace detail {

/// int64 addition/multiplication with overflow detected via __int128;
/// overflowed bounds become "unbounded".
inline std::optional<int64_t> checked(__int128 v) {
  if (v > INT64_MAX || v < INT64_MIN) return std::nullopt;
  return static_cast<int64_t>(v);
}

inline std::optional<int64_t> addBound(const std::optional<int64_t>& a,
                                       const std::optional<int64_t>& b) {
  if (!a || !b) return std::nullopt;
  return checked(static_cast<__int128>(*a) + *b);
}

}  // namespace detail

/// Least upper bound (interval union hull).
inline Range join(const Range& a, const Range& b) {
  if (a.empty) return b;
  if (b.empty) return a;
  Range r;
  if (a.lo && b.lo) r.lo = std::min(*a.lo, *b.lo);
  if (a.hi && b.hi) r.hi = std::max(*a.hi, *b.hi);
  return r;
}

/// Greatest lower bound (interval intersection).
inline Range meet(const Range& a, const Range& b) {
  if (a.empty || b.empty) return Range::bottom();
  Range r;
  if (a.lo && b.lo)
    r.lo = std::max(*a.lo, *b.lo);
  else
    r.lo = a.lo ? a.lo : b.lo;
  if (a.hi && b.hi)
    r.hi = std::min(*a.hi, *b.hi);
  else
    r.hi = a.hi ? a.hi : b.hi;
  if (r.lo && r.hi && *r.lo > *r.hi) return Range::bottom();
  return r;
}

/// Classic interval widening: a bound that moved since the previous
/// iterate is pushed to infinity, guaranteeing fixpoint termination.
inline Range widen(const Range& prev, const Range& next) {
  if (prev.empty) return next;
  if (next.empty) return prev;
  Range r;
  r.lo = (prev.lo && next.lo && *next.lo >= *prev.lo) ? prev.lo
                                                      : std::nullopt;
  r.hi = (prev.hi && next.hi && *next.hi <= *prev.hi) ? prev.hi
                                                      : std::nullopt;
  return r;
}

/// One narrowing step: bounds the widening threw to infinity may be
/// recovered from the post-fixpoint iterate; finite bounds are kept.
inline Range narrow(const Range& wide, const Range& next) {
  if (wide.empty || next.empty) return next;
  Range r;
  r.lo = wide.lo ? wide.lo : next.lo;
  r.hi = wide.hi ? wide.hi : next.hi;
  if (r.lo && r.hi && *r.lo > *r.hi) return next;
  return r;
}

inline Range add(const Range& a, const Range& b) {
  if (a.empty || b.empty) return Range::bottom();
  return {detail::addBound(a.lo, b.lo), detail::addBound(a.hi, b.hi), false};
}

inline Range neg(const Range& a) {
  if (a.empty) return Range::bottom();
  Range r;
  if (a.hi) r.lo = detail::checked(-static_cast<__int128>(*a.hi));
  if (a.lo) r.hi = detail::checked(-static_cast<__int128>(*a.lo));
  return r;
}

inline Range sub(const Range& a, const Range& b) { return add(a, neg(b)); }

inline Range mul(const Range& a, const Range& b) {
  if (a.empty || b.empty) return Range::bottom();
  // Any unbounded side makes the sign analysis messy; only the
  // all-bounded case is common in MF programs, so keep the rest top —
  // except the easy exact-constant zero.
  if (a.asConstant() == std::optional<int64_t>{0} ||
      b.asConstant() == std::optional<int64_t>{0})
    return Range::constant(0);
  if (!a.lo || !a.hi || !b.lo || !b.hi) return Range::top();
  __int128 cands[4] = {
      static_cast<__int128>(*a.lo) * *b.lo,
      static_cast<__int128>(*a.lo) * *b.hi,
      static_cast<__int128>(*a.hi) * *b.lo,
      static_cast<__int128>(*a.hi) * *b.hi,
  };
  __int128 mn = cands[0], mx = cands[0];
  for (__int128 c : cands) {
    mn = std::min(mn, c);
    mx = std::max(mx, c);
  }
  return {detail::checked(mn), detail::checked(mx), false};
}

/// Division by an exactly-known nonzero constant (C++ truncation
/// semantics, monotone for a fixed divisor). Anything else is top —
/// a zero-in-range divisor is a run-time fault, not a range question.
inline Range div(const Range& a, const Range& b) {
  if (a.empty || b.empty) return Range::bottom();
  auto c = b.asConstant();
  if (!c || *c == 0 || !a.lo || !a.hi) return Range::top();
  int64_t x = *a.lo / *c, y = *a.hi / *c;
  return {std::min(x, y), std::max(x, y), false};
}

/// Remainder by an exactly-known nonzero constant.
inline Range rem(const Range& a, const Range& b) {
  if (a.empty || b.empty) return Range::bottom();
  auto c = b.asConstant();
  if (!c || *c == 0) return Range::top();
  int64_t m = *c < 0 ? -(*c + 1) : *c - 1;  // |c| - 1 without overflow on MIN
  if (*c == INT64_MIN) m = INT64_MAX;
  if (a.lo && *a.lo >= 0) {
    int64_t hi = m;
    if (a.hi && *a.hi < hi) hi = *a.hi;
    return {int64_t{0}, hi, false};
  }
  return {-m, m, false};
}

inline Range min_(const Range& a, const Range& b) {
  if (a.empty || b.empty) return Range::bottom();
  Range r;
  if (a.lo && b.lo) r.lo = std::min(*a.lo, *b.lo);
  if (a.hi && b.hi)
    r.hi = std::min(*a.hi, *b.hi);
  else
    r.hi = a.hi ? a.hi : b.hi;
  return r;
}

inline Range max_(const Range& a, const Range& b) {
  if (a.empty || b.empty) return Range::bottom();
  Range r;
  if (a.hi && b.hi) r.hi = std::max(*a.hi, *b.hi);
  if (a.lo && b.lo)
    r.lo = std::max(*a.lo, *b.lo);
  else
    r.lo = a.lo ? a.lo : b.lo;
  return r;
}

inline Range abs_(const Range& a) {
  if (a.empty) return Range::bottom();
  Range pos = meet(a, Range::of(int64_t{0}, std::nullopt));
  Range negpart = meet(a, Range::of(std::nullopt, int64_t{-1}));
  Range r = Range::bottom();
  if (!pos.empty) r = join(r, pos);
  if (!negpart.empty) r = join(r, neg(negpart));
  return r;
}

/// inoise(x, m): deterministic pseudo-random int in [0, m); m <= 0
/// yields 0. The result is never negative, and when m's upper bound is
/// known the result is at most max(0, hi(m) - 1).
inline Range inoise(const Range& m) {
  if (m.empty) return Range::bottom();
  Range r;
  r.lo = int64_t{0};
  if (m.hi) r.hi = std::max<int64_t>(0, *m.hi - 1);
  return r;
}

}  // namespace padfa::vra
