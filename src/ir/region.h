// Region-graph view of an MF program.
//
// The paper's hierarchical "region graph" has nodes for basic blocks, loop
// bodies, loops, procedure calls, and procedure bodies. MF's AST is
// already structured, so regions map 1:1 onto AST nodes; this module
// materializes the loop tree (loops with nesting and per-loop metadata)
// and the call graph that drive both the interprocedural analysis order
// and the evaluation tables.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lang/ast.h"

namespace padfa {

struct LoopNode {
  const ForStmt* loop = nullptr;
  const ProcDecl* proc = nullptr;
  LoopNode* parent = nullptr;  // enclosing loop in the same procedure
  std::vector<LoopNode*> children;
  int depth = 0;  // 0 = outermost in its procedure
  bool contains_call = false;
  bool contains_sink = false;
  /// Statements (transitively) in the body, for size metrics.
  size_t body_stmt_count = 0;
};

/// Loop forest of a whole program plus call-graph info.
class LoopTree {
 public:
  /// Build from an analyzed program (Sema must have run).
  static LoopTree build(const Program& program);

  const std::vector<std::unique_ptr<LoopNode>>& nodes() const {
    return nodes_;
  }
  /// All loops in source order per procedure, outer loops first.
  std::vector<const LoopNode*> allLoops() const;
  const LoopNode* nodeFor(const ForStmt* loop) const;

  /// Direct callees of each procedure.
  const std::map<const ProcDecl*, std::vector<const ProcDecl*>>& callGraph()
      const {
    return call_graph_;
  }

  /// Does `proc` (transitively) contain a sink() call?
  bool procHasSink(const ProcDecl* proc) const {
    auto it = proc_has_sink_.find(proc);
    return it != proc_has_sink_.end() && it->second;
  }

  size_t loopCount() const { return nodes_.size(); }

 private:
  std::vector<std::unique_ptr<LoopNode>> nodes_;
  std::map<const ForStmt*, LoopNode*> by_stmt_;
  std::map<const ProcDecl*, std::vector<const ProcDecl*>> call_graph_;
  std::map<const ProcDecl*, bool> proc_has_sink_;
};

}  // namespace padfa
