#include "ir/region.h"

#include <functional>

namespace padfa {

namespace {

struct Builder {
  LoopTree& tree;
  std::vector<std::unique_ptr<LoopNode>>& nodes;
  std::map<const ForStmt*, LoopNode*>& by_stmt;

  // Returns (contains_call, contains_sink, stmt_count) of the block.
  struct Facts {
    bool call = false;
    bool sink = false;
    size_t stmts = 0;
  };

  Facts walkBlock(const BlockStmt& block, const ProcDecl* proc,
                  LoopNode* enclosing) {
    Facts f;
    for (const auto& s : block.stmts) {
      Facts sf = walkStmt(*s, proc, enclosing);
      f.call |= sf.call;
      f.sink |= sf.sink;
      f.stmts += sf.stmts;
    }
    return f;
  }

  Facts walkStmt(const Stmt& s, const ProcDecl* proc, LoopNode* enclosing) {
    Facts f;
    f.stmts = 1;
    switch (s.kind) {
      case StmtKind::For: {
        const auto& loop = static_cast<const ForStmt&>(s);
        auto node = std::make_unique<LoopNode>();
        node->loop = &loop;
        node->proc = proc;
        node->parent = enclosing;
        node->depth = enclosing ? enclosing->depth + 1 : 0;
        LoopNode* raw = node.get();
        if (enclosing) enclosing->children.push_back(raw);
        by_stmt[&loop] = raw;
        nodes.push_back(std::move(node));
        Facts bf = walkBlock(*loop.body, proc, raw);
        raw->contains_call = bf.call;
        raw->contains_sink = bf.sink;
        raw->body_stmt_count = bf.stmts;
        f.call |= bf.call;
        f.sink |= bf.sink;
        f.stmts += bf.stmts;
        break;
      }
      case StmtKind::If: {
        const auto& ifs = static_cast<const IfStmt&>(s);
        Facts tf = walkBlock(*ifs.then_block, proc, enclosing);
        f.call |= tf.call;
        f.sink |= tf.sink;
        f.stmts += tf.stmts;
        if (ifs.else_block) {
          Facts ef = walkBlock(*ifs.else_block, proc, enclosing);
          f.call |= ef.call;
          f.sink |= ef.sink;
          f.stmts += ef.stmts;
        }
        break;
      }
      case StmtKind::Call: {
        const auto& c = static_cast<const CallStmt&>(s);
        f.call = c.callee_proc != nullptr;
        f.sink = c.is_sink;
        break;
      }
      case StmtKind::Block:
        f = walkBlock(static_cast<const BlockStmt&>(s), proc, enclosing);
        break;
      default:
        break;
    }
    return f;
  }
};

void collectCallees(const BlockStmt& block,
                    std::vector<const ProcDecl*>& out, bool& sink) {
  for (const auto& s : block.stmts) {
    switch (s->kind) {
      case StmtKind::Call: {
        const auto& c = static_cast<const CallStmt&>(*s);
        if (c.callee_proc) out.push_back(c.callee_proc);
        if (c.is_sink) sink = true;
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*s);
        collectCallees(*i.then_block, out, sink);
        if (i.else_block) collectCallees(*i.else_block, out, sink);
        break;
      }
      case StmtKind::For:
        collectCallees(*static_cast<const ForStmt&>(*s).body, out, sink);
        break;
      case StmtKind::Block:
        collectCallees(static_cast<const BlockStmt&>(*s), out, sink);
        break;
      default:
        break;
    }
  }
}

}  // namespace

LoopTree LoopTree::build(const Program& program) {
  LoopTree tree;
  Builder b{tree, tree.nodes_, tree.by_stmt_};
  for (const auto& p : program.procs) {
    b.walkBlock(*p->body, p.get(), nullptr);
    bool direct_sink = false;
    std::vector<const ProcDecl*> callees;
    collectCallees(*p->body, callees, direct_sink);
    tree.call_graph_[p.get()] = std::move(callees);
    tree.proc_has_sink_[p.get()] = direct_sink;
  }
  // Propagate sink through the (acyclic) call graph to a fixed point.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [proc, callees] : tree.call_graph_) {
      if (tree.proc_has_sink_[proc]) continue;
      for (const ProcDecl* c : callees) {
        if (tree.proc_has_sink_[c]) {
          tree.proc_has_sink_[proc] = true;
          changed = true;
          break;
        }
      }
    }
  }
  // Mark loops containing calls to sink-bearing procedures.
  for (auto& n : tree.nodes_) {
    if (n->contains_sink) continue;
    // Re-scan the loop body for calls whose target transitively sinks.
    std::vector<const ProcDecl*> callees;
    bool direct = false;
    collectCallees(*n->loop->body, callees, direct);
    for (const ProcDecl* c : callees) {
      if (tree.proc_has_sink_.count(c) && tree.proc_has_sink_.at(c)) {
        n->contains_sink = true;
        break;
      }
    }
  }
  return tree;
}

std::vector<const LoopNode*> LoopTree::allLoops() const {
  std::vector<const LoopNode*> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n.get());
  return out;
}

const LoopNode* LoopTree::nodeFor(const ForStmt* loop) const {
  auto it = by_stmt_.find(loop);
  return it == by_stmt_.end() ? nullptr : it->second;
}

}  // namespace padfa
