#include "interp/interp.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <ctime>
#include <limits>
#include <mutex>
#include <set>
#include <thread>

#include "audit/race_oracle.h"
#include "dataflow/doacross.h"

namespace padfa {

double noiseValue(int64_t x) {
  // splitmix64 finalizer -> [0, 1).
  uint64_t z = static_cast<uint64_t>(x) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
}

int64_t inoiseValue(int64_t x, int64_t m) {
  if (m <= 0) return 0;
  return static_cast<int64_t>(noiseValue(x ^ 0x5bf03635) * static_cast<double>(m));
}

namespace {

struct Value {
  Type type = Type::Int;
  int64_t i = 0;
  double r = 0;

  double asReal() const { return type == Type::Real ? r : static_cast<double>(i); }
  int64_t asInt() const { return type == Type::Int ? i : static_cast<int64_t>(r); }
  bool truthy() const { return type == Type::Int ? i != 0 : r != 0; }

  static Value ofInt(int64_t v) { return {Type::Int, v, 0}; }
  static Value ofReal(double v) { return {Type::Real, 0, v}; }
};

struct Cell {
  int64_t i = 0;
  double r = 0;
  std::shared_ptr<ArrayStorage> array;
};

using Frame = std::vector<Cell>;

// ----------------------------------------------- Doacross run-time sync --

/// Post/wait tables compiled from one Doacross plan's kept sync
/// requirements. Slots are the distinct source statements.
struct DoaTables {
  std::vector<const Stmt*> slots;
  /// sink stmt -> (slot, distance) waits executed before each execution.
  std::map<const Stmt*, std::vector<std::pair<uint32_t, int64_t>>> waits;
  /// source stmt -> slot, for sources whose post fires right after each
  /// execution (statements not nested in an inner loop; everything else
  /// is covered by the end-of-iteration backstop post).
  std::map<const Stmt*, uint32_t> posts;
};

/// One ring cell, reused by iterations o, o+R, o+2R, ... The window gate
/// (iteration o spins on cell[o%R].done >= o-R before starting) makes
/// the per-lap reuse unambiguous: tags are monotone per cell, and a tag
/// >= the wanted ordinal proves that ordinal's post fired (a later lap
/// can only run after the wanted lap fully completed).
struct DoaCell {
  std::atomic<int64_t> done{-1};
  std::unique_ptr<std::atomic<int64_t>[]> posted;
};

/// Recorded sync/busy trace of one iteration, replayed post-region by
/// the event-driven makespan model (busy offsets exclude spin time).
struct DoaEvent {
  bool is_wait = false;
  uint32_t slot = 0;
  int64_t dep = -1;   // waited-on ordinal (waits only)
  double at = 0;      // busy offset within the iteration
};
struct DoaIterRec {
  std::vector<DoaEvent> events;
  double busy = 0;
};

/// Thrown inside a Doacross worker when a sibling faulted: unwinds the
/// in-flight iteration so the barrier can rethrow the sibling's error.
struct DoaCancel {};

struct DoaCtx;
thread_local DoaCtx* t_doa = nullptr;

double threadCpuSecondsNow() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Per-worker state of an active Doacross region, installed in t_doa
/// while the worker executes loop-body statements.
struct DoaCtx {
  const DoaTables* tables = nullptr;
  DoaCell* cells = nullptr;
  int64_t ring = 2;
  ThreadPool* pool = nullptr;
  int64_t ordinal = 0;
  DoaIterRec* rec = nullptr;
  double cpu_base = 0;
  double spin_cpu = 0;
  uint64_t wait_count = 0;

  double busyNow() const { return threadCpuSecondsNow() - cpu_base - spin_cpu; }

  void beforeStmt(const Stmt* s) {
    auto it = tables->waits.find(s);
    if (it == tables->waits.end()) return;
    for (const auto& [slot, dist] : it->second) {
      int64_t want = ordinal - dist;
      if (want < 0) continue;
      ++wait_count;
      if (rec && rec->events.size() < 256)
        rec->events.push_back({true, slot, want, busyNow()});
      DoaCell& cell = cells[want % ring];
      if (cell.posted[slot].load(std::memory_order_acquire) >= want)
        continue;
      double sp0 = threadCpuSecondsNow();
      while (cell.posted[slot].load(std::memory_order_acquire) < want) {
        if (pool->cancelRequested()) {
          spin_cpu += threadCpuSecondsNow() - sp0;
          throw DoaCancel{};
        }
        std::this_thread::yield();
      }
      spin_cpu += threadCpuSecondsNow() - sp0;
    }
  }

  void afterStmt(const Stmt* s) {
    auto it = tables->posts.find(s);
    if (it == tables->posts.end()) return;
    if (rec && rec->events.size() < 256)
      rec->events.push_back({false, it->second, -1, busyNow()});
    cells[ordinal % ring].posted[it->second].store(
        ordinal, std::memory_order_release);
  }
};

/// RAII installer for t_doa (exception-safe against RuntimeError and
/// DoaCancel unwinding through execBlock).
struct DoaScope {
  explicit DoaScope(DoaCtx* ctx) { t_doa = ctx; }
  ~DoaScope() { t_doa = nullptr; }
};

class Interp {
 public:
  Interp(const Program& program, const InterpOptions& opt)
      : program_(program), opt_(opt) {
    // Instrumented runs (ELPD or race oracle) are sequential by contract:
    // the collectors are not thread-safe, and the elpd_/race_active_ flags
    // below are plain bools that may only be toggled single-threaded.
    // A single-threaded plan run still gets a (worker-less) pool: planned
    // loops then take the same block decomposition and per-block
    // reduction combine as multi-threaded runs, so results are
    // bit-identical across 1..N threads and all scheduler policies.
    if (opt_.plans && opt_.num_threads >= 1 && !opt_.race && !opt_.elpd)
      pool_ = std::make_unique<ThreadPool>(opt_.num_threads);
  }

  InterpStats run() {
    const ProcDecl* main = program_.findProc("main");
    if (!main) throw RuntimeError({}, "program has no 'main' procedure");
    if (!main->params.empty())
      throw RuntimeError(main->loc, "'main' must take no parameters");
    auto t0 = std::chrono::steady_clock::now();
    Frame frame(main->all_vars.size());
    execProc(*main, frame);
    auto t1 = std::chrono::steady_clock::now();
    stats_.total_seconds = std::chrono::duration<double>(t1 - t0).count();
    stats_.simulated_seconds =
        stats_.total_seconds - parallel_wall_ + parallel_simulated_;
    return std::move(stats_);
  }

 private:
  // ------------------------------------------------------- expression --

  Value eval(const Expr& e, Frame& frame) {
    switch (e.kind) {
      case ExprKind::IntLit:
        return Value::ofInt(static_cast<const IntLitExpr&>(e).value);
      case ExprKind::RealLit:
        return Value::ofReal(static_cast<const RealLitExpr&>(e).value);
      case ExprKind::VarRef: {
        const auto& v = static_cast<const VarRefExpr&>(e);
        const Cell& c = frame[v.decl->local_id];
        if (race_active_) opt_.race->recordScalarRead(v.decl);
        return v.decl->elem_type == Type::Int ? Value::ofInt(c.i)
                                              : Value::ofReal(c.r);
      }
      case ExprKind::ArrayRef: {
        const auto& a = static_cast<const ArrayRefExpr&>(e);
        ArrayStorage& st = storageOf(a, frame);
        size_t flat = flatIndex(a, st, frame);
        if (elpd_active_)
          opt_.elpd->recordAccess(st.bufferId(), flat, st.size(), false);
        if (race_active_)
          opt_.race->recordAccess(st.bufferId(), a.decl, flat, st.size(),
                                  false);
        return st.elem == Type::Int ? Value::ofInt((*st.ints)[flat])
                                    : Value::ofReal((*st.reals)[flat]);
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        Value v = eval(*u.operand, frame);
        if (u.op == UnOp::Not) return Value::ofInt(v.truthy() ? 0 : 1);
        if (v.type == Type::Int) return Value::ofInt(-v.i);
        return Value::ofReal(-v.r);
      }
      case ExprKind::Binary:
        return evalBinary(static_cast<const BinaryExpr&>(e), frame);
      case ExprKind::Intrinsic:
        return evalIntrinsic(static_cast<const IntrinsicExpr&>(e), frame);
    }
    throw RuntimeError(e.loc, "unreachable expression kind");
  }

  Value evalBinary(const BinaryExpr& b, Frame& frame) {
    Value l = eval(*b.lhs, frame);
    // Short-circuit logical operators.
    if (b.op == BinOp::And) {
      if (!l.truthy()) return Value::ofInt(0);
      return Value::ofInt(eval(*b.rhs, frame).truthy() ? 1 : 0);
    }
    if (b.op == BinOp::Or) {
      if (l.truthy()) return Value::ofInt(1);
      return Value::ofInt(eval(*b.rhs, frame).truthy() ? 1 : 0);
    }
    Value r = eval(*b.rhs, frame);
    bool real_op = l.type == Type::Real || r.type == Type::Real;
    switch (b.op) {
      case BinOp::Add:
        return real_op ? Value::ofReal(l.asReal() + r.asReal())
                       : Value::ofInt(l.i + r.i);
      case BinOp::Sub:
        return real_op ? Value::ofReal(l.asReal() - r.asReal())
                       : Value::ofInt(l.i - r.i);
      case BinOp::Mul:
        return real_op ? Value::ofReal(l.asReal() * r.asReal())
                       : Value::ofInt(l.i * r.i);
      case BinOp::Div:
        if (real_op) return Value::ofReal(l.asReal() / r.asReal());
        if (r.i == 0) throw RuntimeError(b.loc, "integer division by zero");
        return Value::ofInt(l.i / r.i);
      case BinOp::Rem:
        if (r.i == 0) throw RuntimeError(b.loc, "integer modulo by zero");
        return Value::ofInt(l.i % r.i);
      case BinOp::Eq:
        return Value::ofInt(real_op ? l.asReal() == r.asReal() : l.i == r.i);
      case BinOp::Ne:
        return Value::ofInt(real_op ? l.asReal() != r.asReal() : l.i != r.i);
      case BinOp::Lt:
        return Value::ofInt(real_op ? l.asReal() < r.asReal() : l.i < r.i);
      case BinOp::Le:
        return Value::ofInt(real_op ? l.asReal() <= r.asReal() : l.i <= r.i);
      case BinOp::Gt:
        return Value::ofInt(real_op ? l.asReal() > r.asReal() : l.i > r.i);
      case BinOp::Ge:
        return Value::ofInt(real_op ? l.asReal() >= r.asReal() : l.i >= r.i);
      default:
        throw RuntimeError(b.loc, "unreachable binary op");
    }
  }

  Value evalIntrinsic(const IntrinsicExpr& c, Frame& frame) {
    switch (c.fn) {
      case Intrinsic::Min:
      case Intrinsic::Max: {
        Value a = eval(*c.args[0], frame);
        Value b = eval(*c.args[1], frame);
        bool real_op = a.type == Type::Real || b.type == Type::Real;
        if (real_op) {
          double x = a.asReal(), y = b.asReal();
          return Value::ofReal(c.fn == Intrinsic::Min ? std::min(x, y)
                                                      : std::max(x, y));
        }
        return Value::ofInt(c.fn == Intrinsic::Min ? std::min(a.i, b.i)
                                                   : std::max(a.i, b.i));
      }
      case Intrinsic::Abs: {
        Value a = eval(*c.args[0], frame);
        if (a.type == Type::Int) return Value::ofInt(a.i < 0 ? -a.i : a.i);
        return Value::ofReal(std::fabs(a.r));
      }
      case Intrinsic::Sqrt:
        return Value::ofReal(std::sqrt(eval(*c.args[0], frame).asReal()));
      case Intrinsic::Noise:
        return Value::ofReal(noiseValue(eval(*c.args[0], frame).asInt()));
      case Intrinsic::INoise: {
        int64_t x = eval(*c.args[0], frame).asInt();
        int64_t m = eval(*c.args[1], frame).asInt();
        return Value::ofInt(inoiseValue(x, m));
      }
    }
    throw RuntimeError(c.loc, "unreachable intrinsic");
  }

  ArrayStorage& storageOf(const ArrayRefExpr& a, Frame& frame) {
    const auto& cell = frame[a.decl->local_id];
    if (!cell.array)
      throw RuntimeError(a.loc, "array used before allocation");
    return *cell.array;
  }

  size_t flatIndex(const ArrayRefExpr& a, const ArrayStorage& st,
                   Frame& frame) {
    size_t flat = 0;
    for (size_t j = 0; j < a.indices.size(); ++j) {
      int64_t idx = eval(*a.indices[j], frame).asInt();
      if (idx < 0 || idx >= st.dims[j])
        throw RuntimeError(a.loc, "index " + std::to_string(idx) +
                                      " out of bounds [0, " +
                                      std::to_string(st.dims[j] - 1) +
                                      "] in dimension " + std::to_string(j));
      flat = flat * static_cast<size_t>(st.dims[j]) + static_cast<size_t>(idx);
    }
    return flat;
  }

  // -------------------------------------------------------- statements --

  void execProc(const ProcDecl& proc, Frame& frame) {
    if (execBlock(*proc.body, frame)) return;  // hit `return`
  }

  // Returns true if a `return` unwound.
  bool execBlock(const BlockStmt& block, Frame& frame) {
    for (const auto& d : block.decls) allocate(*d, frame);
    for (const auto& s : block.stmts)
      if (execStmt(*s, frame)) return true;
    return false;
  }

  void allocate(const VarDecl& d, Frame& frame) {
    Cell& cell = frame[d.local_id];
    if (d.isArray()) {
      auto st = std::make_shared<ArrayStorage>();
      st->elem = d.elem_type;
      for (const auto& dim : d.dims) {
        int64_t n = eval(*dim, frame).asInt();
        if (n <= 0)
          throw RuntimeError(d.loc, "non-positive array dimension");
        st->dims.push_back(n);
      }
      if (d.elem_type == Type::Real)
        st->reals = std::make_shared<std::vector<double>>(st->size(), 0.0);
      else
        st->ints = std::make_shared<std::vector<int64_t>>(st->size(), 0);
      cell.array = std::move(st);
      // The heap may recycle a freed buffer's address: stale shadow state
      // recorded for the old buffer must not taint the new one.
      if (race_active_) opt_.race->bufferAllocated(cell.array->bufferId());
    } else {
      cell.i = 0;
      cell.r = 0;
      if (d.init) {
        Value v = eval(*d.init, frame);
        if (d.elem_type == Type::Int)
          cell.i = v.asInt();
        else
          cell.r = v.asReal();
      }
    }
  }

  bool execStmt(const Stmt& s, Frame& frame) {
    // Doacross post/wait hooks: inside a pipelined region every worker
    // waits before executing a sync sink and posts after executing a
    // sync source (t_doa is null everywhere else — one predictable
    // branch per statement).
    if (t_doa) {
      t_doa->beforeStmt(&s);
      bool ret = execStmtImpl(s, frame);
      t_doa->afterStmt(&s);
      return ret;
    }
    return execStmtImpl(s, frame);
  }

  bool execStmtImpl(const Stmt& s, Frame& frame) {
    switch (s.kind) {
      case StmtKind::Assign: {
        const auto& as = static_cast<const AssignStmt&>(s);
        Value v = eval(*as.value, frame);
        if (as.target->kind == ExprKind::ArrayRef) {
          const auto& ref = static_cast<const ArrayRefExpr&>(*as.target);
          ArrayStorage& st = storageOf(ref, frame);
          size_t flat = flatIndex(ref, st, frame);
          if (elpd_active_)
            opt_.elpd->recordAccess(st.bufferId(), flat, st.size(), true);
          if (race_active_)
            opt_.race->recordAccess(st.bufferId(), ref.decl, flat, st.size(),
                                    true);
          if (st.elem == Type::Int)
            (*st.ints)[flat] = v.asInt();
          else
            (*st.reals)[flat] = v.asReal();
        } else {
          const auto& ref = static_cast<const VarRefExpr&>(*as.target);
          Cell& c = frame[ref.decl->local_id];
          if (race_active_) opt_.race->recordScalarWrite(ref.decl);
          if (ref.decl->elem_type == Type::Int)
            c.i = v.asInt();
          else
            c.r = v.asReal();
        }
        return false;
      }
      case StmtKind::If: {
        const auto& ifs = static_cast<const IfStmt&>(s);
        if (eval(*ifs.cond, frame).truthy())
          return execBlock(*ifs.then_block, frame);
        if (ifs.else_block) return execBlock(*ifs.else_block, frame);
        return false;
      }
      case StmtKind::For:
        return execFor(static_cast<const ForStmt&>(s), frame);
      case StmtKind::Call:
        return execCall(static_cast<const CallStmt&>(s), frame);
      case StmtKind::Return:
        return true;
      case StmtKind::Block:
        return execBlock(static_cast<const BlockStmt&>(s), frame);
    }
    return false;
  }

  bool execCall(const CallStmt& s, Frame& frame) {
    if (s.is_sink) {
      Value v = eval(*s.args[0], frame);
      std::lock_guard<std::mutex> lock(sink_mu_);
      stats_.checksum += v.asReal();
      ++stats_.sink_count;
      return false;
    }
    const ProcDecl& callee = *s.callee_proc;
    Frame callee_frame(callee.all_vars.size());
    // Bind scalar parameters first: array formal dims may reference any
    // scalar parameter regardless of declaration order.
    for (size_t i = 0; i < s.args.size(); ++i) {
      const VarDecl& param = *callee.params[i];
      if (param.isArray()) continue;
      Value v = eval(*s.args[i], frame);
      Cell& cell = callee_frame[param.local_id];
      if (param.elem_type == Type::Int)
        cell.i = v.asInt();
      else
        cell.r = v.asReal();
    }
    for (size_t i = 0; i < s.args.size(); ++i) {
      const VarDecl& param = *callee.params[i];
      if (!param.isArray()) continue;
      const auto& ref = static_cast<const VarRefExpr&>(*s.args[i]);
      const auto& actual = frame[ref.decl->local_id].array;
      if (!actual)
        throw RuntimeError(s.loc, "array argument not allocated");
      std::vector<int64_t> fdims;
      size_t want = 1;
      for (const auto& dim : param.dims) {
        int64_t n = eval(*dim, callee_frame).asInt();
        if (n <= 0)
          throw RuntimeError(s.loc, "non-positive formal array dimension");
        fdims.push_back(n);
        want *= static_cast<size_t>(n);
      }
      Cell& cell = callee_frame[param.local_id];
      if (fdims == actual->dims) {
        cell.array = actual;  // same shape: direct sharing
      } else {
        // Fortran-style sequence association: the formal is a reshaped
        // view over the same buffer.
        if (want > actual->size())
          throw RuntimeError(
              s.loc, "reshaped formal view (" + std::to_string(want) +
                         " elements) exceeds actual array (" +
                         std::to_string(actual->size()) + " elements)");
        auto view = std::make_shared<ArrayStorage>();
        view->elem = actual->elem;
        view->dims = std::move(fdims);
        view->reals = actual->reals;  // shared buffers
        view->ints = actual->ints;
        cell.array = std::move(view);
      }
    }
    try {
      execProc(callee, callee_frame);
    } catch (const RuntimeError& e) {
      // Rewrap with a call-stack frame so a fault deep in a callee chain
      // reports every call site on the way down.
      throw RuntimeError(e, program_.interner.str(callee.name), s.loc);
    }
    return false;
  }

  bool execFor(const ForStmt& loop, Frame& frame) {
    int64_t lb = eval(*loop.lower, frame).asInt();
    int64_t ub = eval(*loop.upper, frame).asInt();
    int64_t step = loop.step ? eval(*loop.step, frame).asInt() : 1;
    if (step == 0) throw RuntimeError(loop.loc, "zero loop step");

    const LoopPlan* plan = nullptr;
    if (opt_.plans && !in_parallel_ && pool_) {
      plan = opt_.plans->planFor(&loop);
      if (plan && plan->status != LoopStatus::Parallel &&
          plan->status != LoopStatus::RuntimeTest &&
          plan->status != LoopStatus::Doacross)
        plan = nullptr;
    }

    auto t0 = std::chrono::steady_clock::now();
    bool returned = false;
    uint64_t iters = 0;

    if (plan && plan->status == LoopStatus::RuntimeTest) {
      ++stats_.runtime_tests_evaluated;
      stats_.runtime_test_atoms += plan->runtime_test.atomCount();
      bool pass = false;
      try {
        pass = plan->runtime_test.evaluate(
            [&](const Expr& e) { return eval(e, frame).asReal(); });
      } catch (const RuntimeError&) {
        // A test whose own evaluation faults (division by zero, bad
        // subscript in an atom) must not crash the dispatch: treat it as
        // failed and take the sequential version, which reproduces the
        // fault exactly when the original program would.
        ++stats_.runtime_tests_trapped;
        pass = false;
      }
      if (pass)
        ++stats_.runtime_tests_passed;
      else
        plan = nullptr;  // fall back to the sequential version
    }
    // A promoted plan (runtime test statically discharged by value
    // ranges) dispatches straight to the parallel version: the test the
    // two-version scheme would have evaluated here was proved true at
    // compile time.
    if (plan && plan->status == LoopStatus::Parallel &&
        plan->vra_action == VraAction::PromotedParallel)
      ++stats_.runtime_tests_pruned;

    double region_sim = -1;
    if (plan && step > 0 && lb <= ub) {
      if (plan->status == LoopStatus::Doacross) {
        region_sim = execForDoacross(loop, *plan, frame, lb, ub, step);
        ++stats_.doacross_loops_entered;
      } else {
        region_sim = execForParallel(loop, *plan, frame, lb, ub, step);
        ++stats_.parallel_loops_entered;
      }
      iters = static_cast<uint64_t>((ub - lb) / step + 1);
    } else {
      returned = execForSequential(loop, frame, lb, ub, step, iters);
    }

    // Profiling is skipped inside parallel regions (stats_ would race);
    // coverage/granularity numbers come from sequential profiled runs.
    if (opt_.profile && !in_parallel_) {
      auto t1 = std::chrono::steady_clock::now();
      LoopProfile& prof = stats_.profiles[&loop];
      ++prof.invocations;
      prof.iterations += iters;
      double wall = std::chrono::duration<double>(t1 - t0).count();
      prof.seconds += wall;
      prof.simulated_seconds += region_sim >= 0 ? region_sim : wall;
    }
    return returned;
  }

  bool execForSequential(const ForStmt& loop, Frame& frame, int64_t lb,
                         int64_t ub, int64_t step, uint64_t& iters) {
    bool instrument =
        opt_.elpd && opt_.elpd->isInstrumented(&loop);
    if (instrument) opt_.elpd->loopEnter(&loop);
    // Only touch the activity flags when the corresponding collector is
    // attached: collectors force sequential execution (no pool), so the
    // flags are then single-threaded. Without a collector they must stay
    // untouched — parallel workers read them concurrently.
    bool prev_active = elpd_active_;
    if (opt_.elpd) elpd_active_ = elpd_active_ || instrument;
    // Race-oracle instrumentation: arm the loop's independence claim.
    // RuntimeTest plans only claim independence on invocations where the
    // derived test passes — the test is evaluated here exactly as the
    // two-version dispatch would (faults count as "failed").
    bool race_instr = opt_.race && opt_.race->isAudited(&loop);
    if (race_instr) {
      const LoopPlan* rplan = opt_.race->planFor(&loop);
      if (rplan->status == LoopStatus::RuntimeTest) {
        bool pass = false;
        try {
          pass = rplan->runtime_test.evaluate(
              [&](const Expr& e) { return eval(e, frame).asReal(); });
        } catch (const RuntimeError&) {
          pass = false;
        }
        race_instr = pass;
      } else if (rplan->status == LoopStatus::Parallel &&
                 rplan->vra_action == VraAction::PromotedParallel) {
        // A promoted plan claims its retained test ALWAYS passes; the
        // oracle checks that claim concretely on every entry. The
        // independence shadowing still runs either way — the plan runs
        // parallel unconditionally, so its claim is unconditional.
        bool pass = false;
        try {
          pass = rplan->runtime_test.evaluate(
              [&](const Expr& e) { return eval(e, frame).asReal(); });
        } catch (const RuntimeError&) {
          pass = false;
        }
        if (!pass) opt_.race->promotedTestFailed(&loop);
      }
      if (race_instr) {
        std::set<const void*> priv_buffers;
        for (const auto& pa : rplan->privatized) {
          const auto& cell = frame[pa.array->local_id];
          if (cell.array) priv_buffers.insert(cell.array->bufferId());
        }
        opt_.race->loopEnter(&loop, priv_buffers);
      }
    }
    bool prev_race = race_active_;
    if (opt_.race) race_active_ = race_active_ || race_instr;
    int64_t ordinal = 0;
    bool returned = false;
    if (step > 0) {
      for (int64_t i = lb; i <= ub; i += step, ++ordinal) {
        if (instrument) opt_.elpd->loopIterStart(&loop, ordinal);
        if (race_instr) opt_.race->loopIterStart(&loop, ordinal);
        frame[loop.index_decl->local_id].i = i;
        if (execBlock(*loop.body, frame)) {
          returned = true;
          break;
        }
      }
    } else {
      for (int64_t i = lb; i >= ub; i += step, ++ordinal) {
        if (instrument) opt_.elpd->loopIterStart(&loop, ordinal);
        if (race_instr) opt_.race->loopIterStart(&loop, ordinal);
        frame[loop.index_decl->local_id].i = i;
        if (execBlock(*loop.body, frame)) {
          returned = true;
          break;
        }
      }
    }
    iters = static_cast<uint64_t>(ordinal);
    if (instrument) opt_.elpd->loopExit(&loop);
    if (race_instr) opt_.race->loopExit(&loop);
    if (opt_.elpd) elpd_active_ = prev_active;
    if (opt_.race) race_active_ = prev_race;
    return returned;
  }

  static double threadCpuSeconds() { return threadCpuSecondsNow(); }

  /// Prepare the per-worker shallow frames (plus one dedicated frame for
  /// the final block, which owns copy-out) with fresh privatized array
  /// copies. Returns T+1 frames; index T is the final-block frame.
  std::vector<Frame> makeWorkerFrames(const LoopPlan& plan, Frame& frame,
                                      unsigned T) {
    std::vector<Frame> frames(T + 1);
    for (auto& f : frames) f = frame;  // shallow copy (shared arrays alias)
    for (const auto& pa : plan.privatized) {
      const Cell& shared = frame[pa.array->local_id];
      for (auto& f : frames) {
        auto priv = std::make_shared<ArrayStorage>();
        priv->elem = shared.array->elem;
        priv->dims = shared.array->dims;
        if (shared.array->elem == Type::Real) {
          priv->reals = std::make_shared<std::vector<double>>(
              pa.copy_in ? *shared.array->reals
                         : std::vector<double>(shared.array->size(), 0.0));
        } else {
          priv->ints = std::make_shared<std::vector<int64_t>>(
              pa.copy_in ? *shared.array->ints
                         : std::vector<int64_t>(shared.array->size(), 0));
        }
        f[pa.array->local_id].array = std::move(priv);
      }
    }
    return frames;
  }

  static void setReductionIdentity(const ScalarReduction& red, Cell& c) {
    switch (red.op) {
      case ReductionOp::Sum:
        c.i = 0; c.r = 0; break;
      case ReductionOp::Prod:
        c.i = 1; c.r = 1; break;
      case ReductionOp::Min:
        c.i = std::numeric_limits<int64_t>::max();
        c.r = std::numeric_limits<double>::infinity();
        break;
      case ReductionOp::Max:
        c.i = std::numeric_limits<int64_t>::min();
        c.r = -std::numeric_limits<double>::infinity();
        break;
    }
  }

  static void applyReduction(const ScalarReduction& red, Cell& into,
                             int64_t i, double r) {
    bool is_int = red.scalar->elem_type == Type::Int;
    switch (red.op) {
      case ReductionOp::Sum:
        if (is_int) into.i += i; else into.r += r;
        break;
      case ReductionOp::Prod:
        if (is_int) into.i *= i; else into.r *= r;
        break;
      case ReductionOp::Min:
        if (is_int) into.i = std::min(into.i, i);
        else into.r = std::min(into.r, r);
        break;
      case ReductionOp::Max:
        if (is_int) into.i = std::max(into.i, i);
        else into.r = std::max(into.r, r);
        break;
    }
  }

  /// Copy-out from the final-block frame: privatized arrays and scalars
  /// take the values left by the globally-last block (which contains the
  /// last iteration — the analysis guarantees per-iteration definition,
  /// so any contiguous tail is equivalent and the choice is
  /// policy-invariant).
  void copyOutFrom(const LoopPlan& plan, Frame& frame, Frame& lf) {
    for (const auto& pa : plan.privatized) {
      if (!pa.copy_out) continue;
      Cell& shared = frame[pa.array->local_id];
      const Cell& priv = lf[pa.array->local_id];
      if (shared.array->elem == Type::Real)
        *shared.array->reals = *priv.array->reals;
      else
        *shared.array->ints = *priv.array->ints;
    }
    for (const VarDecl* sc : plan.copy_out_scalars)
      frame[sc->local_id] = lf[sc->local_id];
  }

  /// DOALL execution over the block scheduler. Returns the simulated
  /// P-processor cost of this region (serial prologue/epilogue at wall
  /// time, parallel region at max-over-workers busy time).
  double execForParallel(const ForStmt& loop, const LoopPlan& plan,
                         Frame& frame, int64_t lb, int64_t ub,
                         int64_t step) {
    auto wall0 = std::chrono::steady_clock::now();
    unsigned T = pool_->size();
    LoopRange range{lb, ub, step};
    uint64_t trip = loopTripCount(range);
    int64_t chunk = resolveChunk(trip, opt_.chunk);
    uint64_t nblocks = blockCount(trip, chunk);

    std::vector<Frame> frames = makeWorkerFrames(plan, frame, T);

    // Per-block reduction partials, combined in ascending block order
    // after the barrier: the grouping depends only on the block
    // decomposition, so sums are bit-identical across policies/threads.
    struct RedPart {
      int64_t i;
      double r;
    };
    std::vector<std::vector<RedPart>> partials(plan.reductions.size());
    for (auto& v : partials) v.resize(nblocks);

    auto region0 = std::chrono::steady_clock::now();
    std::vector<double> busy(T, 0.0);
    bool prev_in_parallel = in_parallel_;
    in_parallel_ = true;
    runBlocks(*pool_, range, chunk, opt_.sched,
              [&](unsigned t, const LoopBlock& blk) {
                double cpu0 = threadCpuSeconds();
                Frame& tf = frames[blk.index == nblocks - 1 ? T : t];
                for (size_t r = 0; r < plan.reductions.size(); ++r)
                  setReductionIdentity(
                      plan.reductions[r],
                      tf[plan.reductions[r].scalar->local_id]);
                int64_t i = blk.first;
                for (uint64_t k = 0; k < blk.iters; ++k, i += step) {
                  // Cooperative cancellation: a sibling faulted; the
                  // barrier rethrows its error anyway.
                  if (pool_->cancelRequested()) break;
                  tf[loop.index_decl->local_id].i = i;
                  execBlock(*loop.body, tf);
                }
                for (size_t r = 0; r < plan.reductions.size(); ++r) {
                  const Cell& c = tf[plan.reductions[r].scalar->local_id];
                  partials[r][blk.index] = {c.i, c.r};
                }
                busy[t] += threadCpuSeconds() - cpu0;
              });
    in_parallel_ = prev_in_parallel;
    auto region1 = std::chrono::steady_clock::now();

    for (size_t r = 0; r < plan.reductions.size(); ++r) {
      Cell& shared = frame[plan.reductions[r].scalar->local_id];
      for (uint64_t b = 0; b < nblocks; ++b)
        applyReduction(plan.reductions[r], shared, partials[r][b].i,
                       partials[r][b].r);
    }
    if (nblocks > 0) copyOutFrom(plan, frame, frames[T]);

    auto wall1 = std::chrono::steady_clock::now();
    double wall = std::chrono::duration<double>(wall1 - wall0).count();
    double region_wall =
        std::chrono::duration<double>(region1 - region0).count();
    double max_busy = 0;
    for (double b : busy) max_busy = std::max(max_busy, b);
    parallel_wall_ += wall;
    double sim = (wall - region_wall) + max_busy;
    parallel_simulated_ += sim;
    return sim;
  }

  /// Post/wait tables for one Doacross plan (built once, single-threaded
  /// — execFor only reaches this outside parallel regions).
  const DoaTables& doaTablesFor(const LoopPlan& plan) {
    auto it = doa_tables_.find(&plan);
    if (it != doa_tables_.end()) return it->second;
    DoaTables tables;
    SyncOrderInfo info = buildSyncOrderInfo(*plan.loop);
    std::map<const Stmt*, uint32_t> slot_of;
    for (const auto& req : plan.syncs) {
      if (req.eliminated) continue;
      auto [sit, fresh] = slot_of.try_emplace(
          req.source, static_cast<uint32_t>(tables.slots.size()));
      if (fresh) {
        tables.slots.push_back(req.source);
        if (info.immediate_post.count(req.source))
          tables.posts[req.source] = sit->second;
      }
      tables.waits[req.sink].push_back({sit->second, req.distance});
    }
    return doa_tables_.emplace(&plan, std::move(tables)).first->second;
  }

  /// Event-driven makespan model for a recorded Doacross region: replay
  /// the per-iteration busy/wait/post traces on T virtual workers under
  /// the canonical block-cyclic assignment (block b -> worker b mod T),
  /// honoring the sliding window. Processing blocks in ascending index
  /// order is valid because waits and the window gate only reference
  /// strictly smaller ordinals.
  static double doaSimulate(const std::vector<DoaIterRec>& recs, unsigned T,
                            int64_t ring, size_t nslots, int64_t chunk,
                            uint64_t nblocks) {
    uint64_t trip = recs.size();
    std::vector<double> post_time(trip * std::max<size_t>(nslots, 1), -1.0);
    std::vector<double> done(trip, 0.0);
    std::vector<double> wclock(T, 0.0);
    uint64_t c = static_cast<uint64_t>(chunk);
    for (uint64_t b = 0; b < nblocks; ++b) {
      unsigned w = static_cast<unsigned>(b % T);
      uint64_t first = b * c, last = std::min(trip, first + c);
      for (uint64_t o = first; o < last; ++o) {
        double t = wclock[w];
        if (static_cast<int64_t>(o) >= ring)
          t = std::max(t, done[o - static_cast<uint64_t>(ring)]);
        const DoaIterRec& r = recs[o];
        double prev = 0;
        for (const DoaEvent& ev : r.events) {
          t += std::max(0.0, ev.at - prev);
          prev = ev.at;
          if (ev.is_wait) {
            if (ev.dep >= 0 && static_cast<uint64_t>(ev.dep) < o) {
              double pt = post_time[static_cast<uint64_t>(ev.dep) * nslots +
                                    ev.slot];
              if (pt >= 0) t = std::max(t, pt);
            }
          } else {
            double& pt = post_time[o * nslots + ev.slot];
            if (pt < 0) pt = t;
          }
        }
        t += std::max(0.0, r.busy - prev);
        for (size_t s = 0; s < nslots; ++s) {
          double& pt = post_time[o * nslots + s];
          if (pt < 0) pt = t;  // end-of-iteration backstop post
        }
        done[o] = t;
        wclock[w] = t;
      }
    }
    double makespan = 0;
    for (double t : wclock) makespan = std::max(makespan, t);
    return makespan;
  }

  /// Pipelined (Doacross) execution: per-iteration post/wait cells in a
  /// ring of `window` slots; iteration o may not start before iteration
  /// o - window completed. Returns the simulated region cost.
  double execForDoacross(const ForStmt& loop, const LoopPlan& plan,
                         Frame& frame, int64_t lb, int64_t ub,
                         int64_t step) {
    auto wall0 = std::chrono::steady_clock::now();
    unsigned T = pool_->size();
    LoopRange range{lb, ub, step};
    uint64_t trip = loopTripCount(range);
    // Fine-grained blocks by default: pipelining wants the smallest
    // grain that amortizes dispatch.
    int64_t chunk = opt_.chunk >= 1 ? opt_.chunk : 1;
    uint64_t nblocks = blockCount(trip, chunk);
    int64_t ring = std::max<int64_t>(2, opt_.doacross_window);

    const DoaTables& tables = doaTablesFor(plan);
    size_t nslots = tables.slots.size();
    std::vector<DoaCell> cells(static_cast<size_t>(ring));
    for (auto& cell : cells) {
      cell.posted =
          std::make_unique<std::atomic<int64_t>[]>(std::max<size_t>(nslots, 1));
      for (size_t s = 0; s < nslots; ++s)
        cell.posted[s].store(-1, std::memory_order_relaxed);
    }

    // Record per-iteration sync traces for the makespan model, unless
    // the region is too large to afford it (then fall back to the DOALL
    // max-busy model).
    constexpr uint64_t kSimCap = uint64_t{1} << 16;
    bool recording = trip <= kSimCap;
    std::vector<DoaIterRec> recs(recording ? trip : 0);

    std::vector<Frame> frames = makeWorkerFrames(plan, frame, T);
    std::vector<double> busy(T, 0.0);
    std::atomic<uint64_t> waits_total{0};

    // Reductions recognized by the scalar phase before the array phase
    // fell back: same per-block partials + block-order combine as DOALL.
    struct RedPart {
      int64_t i;
      double r;
    };
    std::vector<std::vector<RedPart>> partials(plan.reductions.size());
    for (auto& v : partials) v.resize(nblocks);

    auto region0 = std::chrono::steady_clock::now();
    bool prev_in_parallel = in_parallel_;
    in_parallel_ = true;
    runBlocks(*pool_, range, chunk, opt_.sched,
              [&](unsigned t, const LoopBlock& blk) {
                Frame& tf = frames[blk.index == nblocks - 1 ? T : t];
                DoaCtx ctx;
                ctx.tables = &tables;
                ctx.cells = cells.data();
                ctx.ring = ring;
                ctx.pool = pool_.get();
                DoaScope scope(&ctx);
                for (size_t r = 0; r < plan.reductions.size(); ++r)
                  setReductionIdentity(
                      plan.reductions[r],
                      tf[plan.reductions[r].scalar->local_id]);
                double block_busy = 0;
                try {
                  int64_t i = blk.first;
                  for (uint64_t k = 0; k < blk.iters; ++k, i += step) {
                    int64_t o = blk.first_ordinal + static_cast<int64_t>(k);
                    // Window gate: wait for iteration o - ring (same
                    // ring cell, previous lap) to fully complete.
                    if (o >= ring) {
                      DoaCell& gate = cells[o % ring];
                      while (gate.done.load(std::memory_order_acquire) <
                             o - ring) {
                        if (pool_->cancelRequested()) throw DoaCancel{};
                        std::this_thread::yield();
                      }
                    }
                    ctx.ordinal = o;
                    ctx.rec = recording ? &recs[static_cast<uint64_t>(o)]
                                        : nullptr;
                    ctx.cpu_base = threadCpuSeconds();
                    ctx.spin_cpu = 0;
                    tf[loop.index_decl->local_id].i = i;
                    execBlock(*loop.body, tf);
                    double busy_it = ctx.busyNow();
                    if (ctx.rec) ctx.rec->busy = busy_it;
                    block_busy += busy_it;
                    // End of iteration: backstop-post every slot (covers
                    // skipped conditional sources and inner-loop
                    // sources), then publish completion.
                    DoaCell& cell = cells[o % ring];
                    for (size_t s = 0; s < nslots; ++s)
                      cell.posted[s].store(o, std::memory_order_release);
                    cell.done.store(o, std::memory_order_release);
                  }
                } catch (const DoaCancel&) {
                }
                for (size_t r = 0; r < plan.reductions.size(); ++r) {
                  const Cell& c = tf[plan.reductions[r].scalar->local_id];
                  partials[r][blk.index] = {c.i, c.r};
                }
                busy[t] += block_busy;
                waits_total.fetch_add(ctx.wait_count,
                                      std::memory_order_relaxed);
              });
    in_parallel_ = prev_in_parallel;
    auto region1 = std::chrono::steady_clock::now();

    for (size_t r = 0; r < plan.reductions.size(); ++r) {
      Cell& shared = frame[plan.reductions[r].scalar->local_id];
      for (uint64_t b = 0; b < nblocks; ++b)
        applyReduction(plan.reductions[r], shared, partials[r][b].i,
                       partials[r][b].r);
    }
    if (nblocks > 0) copyOutFrom(plan, frame, frames[T]);
    stats_.doacross_waits += waits_total.load(std::memory_order_relaxed);

    auto wall1 = std::chrono::steady_clock::now();
    double wall = std::chrono::duration<double>(wall1 - wall0).count();
    double region_wall =
        std::chrono::duration<double>(region1 - region0).count();
    double region_model;
    if (recording && !pool_->cancelRequested()) {
      region_model = doaSimulate(recs, T, ring, std::max<size_t>(nslots, 1),
                                 chunk, nblocks);
    } else {
      double max_busy = 0;
      for (double b : busy) max_busy = std::max(max_busy, b);
      region_model = max_busy;
    }
    parallel_wall_ += wall;
    double sim = (wall - region_wall) + region_model;
    parallel_simulated_ += sim;
    return sim;
  }

  const Program& program_;
  InterpOptions opt_;
  InterpStats stats_;
  std::unique_ptr<ThreadPool> pool_;
  std::map<const LoopPlan*, DoaTables> doa_tables_;
  std::mutex sink_mu_;
  bool in_parallel_ = false;
  bool elpd_active_ = false;
  bool race_active_ = false;
  double parallel_wall_ = 0;
  double parallel_simulated_ = 0;
};

}  // namespace

InterpStats execute(const Program& program, const InterpOptions& options) {
  Interp interp(program, options);
  return interp.run();
}

}  // namespace padfa
