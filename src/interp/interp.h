// MF interpreter: the execution substrate standing in for SUIF's compiled
// parallel code.
//
// Modes:
//  * sequential         — reference semantics;
//  * parallel           — consumes an AnalysisResult: loops planned
//                         Parallel run across a thread pool (one level of
//                         parallelism, like SUIF); RuntimeTest loops
//                         evaluate their predicate at entry and dispatch
//                         to the parallel or sequential version
//                         (two-version loops); privatization, reductions
//                         and last-value copy-out are honored;
//  * instrumented       — sequential + ELPD shadow marking for a chosen
//                         set of candidate loops.
// Per-loop wall-clock profiling (coverage/granularity for Table 3) can be
// enabled in any mode.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dataflow/loop_plan.h"
#include "lang/ast.h"
#include "runtime/elpd.h"
#include "runtime/scheduler.h"
#include "runtime/thread_pool.h"

namespace padfa {

class RaceOracle;

/// Runtime storage for one array. The element buffer is itself shared so
/// that a reshaped formal parameter (different dims, same data) is just
/// another ArrayStorage viewing the same buffer — exactly Fortran's
/// sequence association, which the analysis's Reshape operation models.
struct ArrayStorage {
  Type elem = Type::Real;
  std::vector<int64_t> dims;
  std::shared_ptr<std::vector<double>> reals;
  std::shared_ptr<std::vector<int64_t>> ints;

  size_t size() const {
    size_t n = 1;
    for (int64_t d : dims) n *= static_cast<size_t>(d);
    return n;
  }
  /// Stable identity of the underlying buffer (shared across views).
  const void* bufferId() const {
    return elem == Type::Real ? static_cast<const void*>(reals.get())
                              : static_cast<const void*>(ints.get());
  }
};

struct RuntimeError : std::runtime_error {
  /// Location of the faulting statement/expression (innermost frame);
  /// invalid (line 0) when the fault has no program location (e.g.
  /// missing 'main'). Preserved through call-stack wrapping so reporters
  /// can show the offending source line, not just the call stack.
  SourceLoc loc;

  RuntimeError(SourceLoc l, const std::string& msg)
      : std::runtime_error("runtime error at " + l.str() + ": " + msg),
        loc(l) {}

  /// Wrap an error propagating out of a procedure call: appends one
  /// "in call to 'proc' at <site>" frame, so the final message carries
  /// the full procedure call stack innermost-first. The innermost
  /// location is kept.
  RuntimeError(const RuntimeError& inner, std::string_view proc,
               SourceLoc call_site)
      : std::runtime_error(std::string(inner.what()) + "\n  in call to '" +
                           std::string(proc) + "' at " + call_site.str()),
        loc(inner.loc) {}
};

struct LoopProfile {
  uint64_t invocations = 0;
  double seconds = 0;
  uint64_t iterations = 0;
  /// Simulated P-processor cost of this loop's invocations: wall time
  /// for sequential ones, the modeled parallel/pipelined region cost for
  /// Parallel/Doacross ones (same model as InterpStats::simulated_seconds).
  double simulated_seconds = 0;
};

struct InterpStats {
  double checksum = 0;            // accumulated by sink()
  uint64_t sink_count = 0;
  uint64_t parallel_loops_entered = 0;
  uint64_t runtime_tests_evaluated = 0;
  uint64_t runtime_tests_passed = 0;
  /// Tests whose evaluation itself faulted (e.g. division by zero in an
  /// atom): the two-version dispatch traps the fault and takes the
  /// sequential version, which reproduces the fault iff the original
  /// program would have.
  uint64_t runtime_tests_trapped = 0;
  uint64_t runtime_test_atoms = 0;  // total atoms evaluated (test cost)
  /// Two-version dispatches skipped entirely because the value-range
  /// analysis proved the derived test at compile time (the plan arrived
  /// as Parallel with VraAction::PromotedParallel): the per-entry test
  /// evaluation cost those loops would have paid is gone.
  uint64_t runtime_tests_pruned = 0;
  /// Doacross (pipelined) loop regions entered, and post/wait events
  /// actually executed inside them.
  uint64_t doacross_loops_entered = 0;
  uint64_t doacross_waits = 0;
  std::map<const ForStmt*, LoopProfile> profiles;
  double total_seconds = 0;

  /// Simulated P-processor execution time: wall time with each parallel
  /// region's cost replaced by max-over-workers thread-CPU busy time plus
  /// the serial privatization/copy overhead. On a machine with >= P free
  /// cores this converges to wall time; on fewer cores it models the
  /// paper's multiprocessor (see DESIGN.md).
  double simulated_seconds = 0;
};

struct InterpOptions {
  /// Null: fully sequential. Otherwise loops run parallel per plan.
  const AnalysisResult* plans = nullptr;
  unsigned num_threads = 1;
  /// Non-null: ELPD instrumentation (forces sequential execution).
  ElpdCollector* elpd = nullptr;
  /// Non-null: dynamic race-oracle instrumentation (forces sequential
  /// execution; the oracle decides which loops to shadow from its
  /// AnalysisResult, arming RuntimeTest loops only when the test passes).
  RaceOracle* race = nullptr;
  /// Record per-loop timing.
  bool profile = false;
  /// Block-scheduling policy and chunk for parallel loops (defaults read
  /// PADFA_SCHED / PADFA_CHUNK). The block decomposition — and therefore
  /// every computed value, including floating-point reduction grouping —
  /// depends only on `chunk`, never on the policy or thread count.
  SchedPolicy sched = schedPolicyFromEnv();
  int64_t chunk = schedChunkFromEnv();
  /// Doacross sliding-window bound (default PADFA_DOACROSS_WINDOW):
  /// iteration i may not start before iteration i - window completed.
  int64_t doacross_window = doacrossWindowFromEnv();
};

/// Execute `main` of an analyzed program. Throws RuntimeError on runtime
/// faults (out-of-bounds access, division by zero, missing main).
InterpStats execute(const Program& program, const InterpOptions& options);

/// Deterministic pseudo-random helpers backing the noise()/inoise()
/// intrinsics (exposed for tests).
double noiseValue(int64_t x);
int64_t inoiseValue(int64_t x, int64_t m);

}  // namespace padfa
