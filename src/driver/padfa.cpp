#include "driver/padfa.h"

#include <cstdio>
#include <memory>
#include <set>

#include "dataflow/doacross.h"
#include "dataflow/vra_promote.h"
#include "runtime/thread_pool.h"
#include "vra/vra.h"

namespace padfa {

std::optional<CompiledProgram> compileSource(const std::string& source,
                                             DiagEngine& diags) {
  return compileSource(source, diags, BudgetLimits::defaults());
}

std::optional<CompiledProgram> compileSource(const std::string& source,
                                             DiagEngine& diags,
                                             const BudgetLimits& budget) {
  auto program = parseProgram(source, diags);
  if (!program) return std::nullopt;
  if (!analyze(*program, diags)) return std::nullopt;
  CompiledProgram cp;
  cp.loops = LoopTree::build(*program);
  // The two analyses are independent reads of the immutable Program:
  // each installs its own thread-local AnalysisBudget, so they can run
  // concurrently. Baseline goes to the pool (inline when already on a
  // pool worker — e.g. program-parallel corpus drivers); predicated,
  // typically the more expensive of the pair, runs on the caller.
  Program& prog = *program;
  AnalysisConfig base_cfg = AnalysisConfig::baseline();
  base_cfg.budget = budget;
  AnalysisConfig pred_cfg = AnalysisConfig::predicated();
  pred_cfg.budget = budget;
  std::future<AnalysisResult> base_fut = analysisPool().submit(
      [&prog, base_cfg] { return analyzeProgram(prog, base_cfg); });
  cp.pred = analyzeProgram(prog, pred_cfg);
  cp.base = base_fut.get();
  // Graceful degradation ladder: a loop whose *predicated* analysis blew
  // its budget falls back to the baseline plan for that loop when the
  // baseline completed (it is independently sound); the fallback keeps
  // the degraded flag for telemetry. A degraded baseline plan stays
  // Sequential — the bottom of the ladder is "no parallel loops".
  for (auto& [loop, pplan] : cp.pred.plans) {
    if (!pplan.degraded) continue;
    const LoopPlan* bplan = cp.base.planFor(loop);
    if (!bplan || bplan->degraded) continue;
    std::string cause = std::move(pplan.degrade_cause);
    pplan = *bplan;
    pplan.degraded = true;
    pplan.degrade_cause = std::move(cause);
  }
  // Doacross upgrade + value-range promotion: run last (after the ladder,
  // and in the incremental path after persistence) so stored plans are
  // always pre-upgrade and warm replays stay byte-identical — see
  // dataflow/doacross.h and dataflow/vra_promote.h. Value ranges are
  // skipped under a governed budget: plans may then be degraded
  // fallbacks, and refinement of a degraded run must stay inert so the
  // degradation ladder's output is the final word.
  std::unique_ptr<vra::RangeAnalysis> ranges;
  if (!BudgetLimits::fromEnv(budget).governed() && vra::vraEnabled())
    ranges = std::make_unique<vra::RangeAnalysis>(prog);
  const vra::RangeAnalysis* rp =
      ranges && ranges->enabled() ? ranges.get() : nullptr;
  upgradeDoacrossPlans(prog, cp.pred, rp);
  if (rp) applyVraPromotions(prog, cp.pred, *rp);
  cp.program = std::move(program);
  return cp;
}

std::string renderPlanReport(const CompiledProgram& cp) {
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof(buf), "%-16s %-6s %-14s %-14s %s\n", "loop",
                "depth", "base", "predicated", "notes");
  out += buf;
  for (const LoopNode* node : cp.loops.allLoops()) {
    const LoopPlan* bp = cp.base.planFor(node->loop);
    const LoopPlan* pp = cp.pred.planFor(node->loop);
    if (!bp || !pp) continue;
    std::string notes;
    if (pp->status == LoopStatus::RuntimeTest) {
      notes = "test: " + pp->runtime_test.str(cp.interner());
    } else if (pp->status == LoopStatus::Doacross) {
      std::set<int64_t> dists;
      for (const auto& s : pp->syncs)
        if (!s.eliminated) dists.insert(s.distance);
      notes = "[syncs " + std::to_string(pp->syncs.size()) + "->" +
              std::to_string(pp->keptSyncCount()) + " d={";
      bool first = true;
      for (int64_t d : dists) {
        if (!first) notes += ',';
        notes += std::to_string(d);
        first = false;
      }
      notes += "}]";
    } else if (pp->status == LoopStatus::Sequential) {
      notes = pp->reason;
    }
    if (pp->vra_action == VraAction::PromotedParallel)
      notes += "[vra: test discharged " +
               pp->runtime_test.str(cp.interner()) + "]";
    else if (pp->vra_action != VraAction::None)
      notes += " [vra: " + std::string(vraActionName(pp->vra_action)) + "]";
    if (pp->degraded || bp->degraded)
      notes += " [degraded: " +
               (pp->degraded ? pp->degrade_cause : bp->degrade_cause) + "]";
    for (const auto& pa : pp->privatized) {
      notes += " [private " +
               std::string(cp.interner().str(pa.array->name)) +
               (pa.copy_in ? "+in" : "") + (pa.copy_out ? "+out" : "") + "]";
    }
    for (const auto& red : pp->reductions)
      notes += " [reduction " +
               std::string(cp.interner().str(red.scalar->name)) + "]";
    std::snprintf(buf, sizeof(buf), "%-16s %-6d %-14s %-14s %s\n",
                  node->loop->loop_id.c_str(), node->depth,
                  std::string(loopStatusName(bp->status)).c_str(),
                  std::string(loopStatusName(pp->status)).c_str(),
                  notes.c_str());
    out += buf;
  }
  size_t degraded = cp.base.degradedCount() + cp.pred.degradedCount();
  if (degraded > 0) {
    std::snprintf(buf, sizeof(buf),
                  "\n%zu degraded plan(s) — analysis budget exhaustion:",
                  degraded);
    out += buf;
    std::map<std::string, uint64_t> causes;
    for (const auto* r : {&cp.base, &cp.pred})
      for (const auto& [cause, n] : r->exhaustion_causes) causes[cause] += n;
    for (const auto& [cause, n] : causes)
      out += " " + cause + "=" + std::to_string(n);
    out += '\n';
  }
  return out;
}

std::string_view loopOutcomeName(LoopOutcome o) {
  switch (o) {
    case LoopOutcome::BaseParallel: return "base-parallel";
    case LoopOutcome::PredParallelCT: return "pred-parallel-ct";
    case LoopOutcome::PredParallelRT: return "pred-parallel-rt";
    case LoopOutcome::PredDoacross: return "pred-doacross";
    case LoopOutcome::SequentialBoth: return "sequential";
    case LoopOutcome::NotCandidate: return "not-candidate";
    case LoopOutcome::NestedInParallel: return "nested-in-parallel";
  }
  return "?";
}

bool nestedInsideParallelized(const CompiledProgram& cp, const ForStmt* loop,
                              const AnalysisResult& result) {
  const LoopNode* node = cp.loops.nodeFor(loop);
  for (const LoopNode* p = node ? node->parent : nullptr; p; p = p->parent) {
    const LoopPlan* plan = result.planFor(p->loop);
    if (plan && (plan->status == LoopStatus::Parallel ||
                 plan->status == LoopStatus::RuntimeTest))
      return true;
  }
  return false;
}

LoopOutcome classifyLoop(const CompiledProgram& cp, const ForStmt* loop) {
  const LoopPlan* bp = cp.base.planFor(loop);
  const LoopPlan* pp = cp.pred.planFor(loop);
  if (!bp || !pp) return LoopOutcome::NotCandidate;
  if (bp->status == LoopStatus::NotCandidate)
    return LoopOutcome::NotCandidate;
  if (bp->status == LoopStatus::Parallel) return LoopOutcome::BaseParallel;
  if (pp->status == LoopStatus::Parallel) return LoopOutcome::PredParallelCT;
  if (pp->status == LoopStatus::RuntimeTest)
    return LoopOutcome::PredParallelRT;
  if (pp->status == LoopStatus::Doacross) return LoopOutcome::PredDoacross;
  if (nestedInsideParallelized(cp, loop, cp.pred))
    return LoopOutcome::NestedInParallel;
  return LoopOutcome::SequentialBoth;
}

}  // namespace padfa
