#include "driver/padfa.h"

#include "runtime/thread_pool.h"

namespace padfa {

std::optional<CompiledProgram> compileSource(const std::string& source,
                                             DiagEngine& diags) {
  auto program = parseProgram(source, diags);
  if (!program) return std::nullopt;
  if (!analyze(*program, diags)) return std::nullopt;
  CompiledProgram cp;
  cp.loops = LoopTree::build(*program);
  // The two analyses are independent reads of the immutable Program:
  // each installs its own thread-local AnalysisBudget, so they can run
  // concurrently. Baseline goes to the pool (inline when already on a
  // pool worker — e.g. program-parallel corpus drivers); predicated,
  // typically the more expensive of the pair, runs on the caller.
  Program& prog = *program;
  std::future<AnalysisResult> base_fut = analysisPool().submit(
      [&prog] { return analyzeProgram(prog, AnalysisConfig::baseline()); });
  cp.pred = analyzeProgram(prog, AnalysisConfig::predicated());
  cp.base = base_fut.get();
  // Graceful degradation ladder: a loop whose *predicated* analysis blew
  // its budget falls back to the baseline plan for that loop when the
  // baseline completed (it is independently sound); the fallback keeps
  // the degraded flag for telemetry. A degraded baseline plan stays
  // Sequential — the bottom of the ladder is "no parallel loops".
  for (auto& [loop, pplan] : cp.pred.plans) {
    if (!pplan.degraded) continue;
    const LoopPlan* bplan = cp.base.planFor(loop);
    if (!bplan || bplan->degraded) continue;
    std::string cause = std::move(pplan.degrade_cause);
    pplan = *bplan;
    pplan.degraded = true;
    pplan.degrade_cause = std::move(cause);
  }
  cp.program = std::move(program);
  return cp;
}

std::string_view loopOutcomeName(LoopOutcome o) {
  switch (o) {
    case LoopOutcome::BaseParallel: return "base-parallel";
    case LoopOutcome::PredParallelCT: return "pred-parallel-ct";
    case LoopOutcome::PredParallelRT: return "pred-parallel-rt";
    case LoopOutcome::SequentialBoth: return "sequential";
    case LoopOutcome::NotCandidate: return "not-candidate";
    case LoopOutcome::NestedInParallel: return "nested-in-parallel";
  }
  return "?";
}

bool nestedInsideParallelized(const CompiledProgram& cp, const ForStmt* loop,
                              const AnalysisResult& result) {
  const LoopNode* node = cp.loops.nodeFor(loop);
  for (const LoopNode* p = node ? node->parent : nullptr; p; p = p->parent) {
    const LoopPlan* plan = result.planFor(p->loop);
    if (plan && (plan->status == LoopStatus::Parallel ||
                 plan->status == LoopStatus::RuntimeTest))
      return true;
  }
  return false;
}

LoopOutcome classifyLoop(const CompiledProgram& cp, const ForStmt* loop) {
  const LoopPlan* bp = cp.base.planFor(loop);
  const LoopPlan* pp = cp.pred.planFor(loop);
  if (!bp || !pp) return LoopOutcome::NotCandidate;
  if (bp->status == LoopStatus::NotCandidate)
    return LoopOutcome::NotCandidate;
  if (bp->status == LoopStatus::Parallel) return LoopOutcome::BaseParallel;
  if (pp->status == LoopStatus::Parallel) return LoopOutcome::PredParallelCT;
  if (pp->status == LoopStatus::RuntimeTest)
    return LoopOutcome::PredParallelRT;
  if (nestedInsideParallelized(cp, loop, cp.pred))
    return LoopOutcome::NestedInParallel;
  return LoopOutcome::SequentialBoth;
}

}  // namespace padfa
