// Umbrella header + one-call pipeline: MF source -> parsed & analyzed
// program -> baseline and predicated parallelization plans -> execution.
//
// This is the public API a downstream user of the library starts from;
// examples/ and bench/ are built entirely on it.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "dataflow/analysis.h"
#include "interp/interp.h"
#include "ir/region.h"
#include "lang/parser.h"
#include "lang/sema.h"
#include "predicate/pred.h"
#include "runtime/elpd.h"
#include "support/diagnostics.h"
#include "support/table.h"

namespace padfa {

/// A fully analyzed program: AST + loop tree + the two analysis results
/// the paper compares (base SUIF vs predicated array data-flow).
struct CompiledProgram {
  std::unique_ptr<Program> program;
  LoopTree loops;
  AnalysisResult base;
  AnalysisResult pred;

  const Interner& interner() const { return program->interner; }
};

/// Parse + sema + both analyses. Returns nullopt and fills `diags` on
/// frontend errors.
std::optional<CompiledProgram> compileSource(const std::string& source,
                                             DiagEngine& diags);

/// Same, but with explicit budget limits applied to both analyses — the
/// mfcd daemon's per-request deadline path. A governed budget degrades
/// slow loops to sound Sequential/baseline plans instead of hanging the
/// request (and bypasses the memoization caches, per the degradation
/// contract in perf_stats.h). PADFA_BUDGET_* env overrides still apply
/// on top of `budget`.
std::optional<CompiledProgram> compileSource(const std::string& source,
                                             DiagEngine& diags,
                                             const BudgetLimits& budget);

/// Render the `mfc report` table (per loop: depth, base/predicated
/// status, notes, plus the degradation trailer) to a string — shared by
/// the CLI and the daemon's `report` responses, which must be
/// byte-identical for the same source.
std::string renderPlanReport(const CompiledProgram& cp);

/// Classification of one loop for the evaluation tables.
enum class LoopOutcome {
  BaseParallel,       // base SUIF parallelizes (compile time)
  PredParallelCT,     // newly parallel under predicated analysis, compile time
  PredParallelRT,     // newly parallel under a derived run-time test
  PredDoacross,       // pipelined via post/wait syncs (was Sequential)
  SequentialBoth,     // neither system parallelizes
  NotCandidate,       // I/O, bad step, loop-variant bounds
  NestedInParallel,   // inside a loop parallelized by the same system
};

std::string_view loopOutcomeName(LoopOutcome o);

/// Classify every loop. "Nested" is judged against the *base* plan for
/// base columns and the predicated plan for predicated columns; here we
/// report against predicated (the paper's Table 2 convention: newly
/// parallelized loops exclude loops nested inside other newly
/// parallelized loops only for granularity/coverage, not counts).
LoopOutcome classifyLoop(const CompiledProgram& cp, const ForStmt* loop);

/// Is `loop` strictly inside another loop that `result` parallelizes
/// (status Parallel or RuntimeTest)?
bool nestedInsideParallelized(const CompiledProgram& cp, const ForStmt* loop,
                              const AnalysisResult& result);

}  // namespace padfa
