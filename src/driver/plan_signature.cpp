#include "driver/plan_signature.h"

namespace padfa {

namespace {

void appendDecl(std::string& out, const VarDecl* d) {
  if (!d) {
    out += "null";
    return;
  }
  out += std::to_string(d->name.id);
  out += '#';
  out += std::to_string(d->uid);
}

void appendLoopEntry(std::string& out, const CompiledProgram& cp,
                     const LoopNode* node) {
  out += node->loop->loop_id;
  out += " outcome=";
  out += loopOutcomeName(classifyLoop(cp, node->loop));
  out += "\n  base: ";
  appendPlanSignature(out, cp.base.planFor(node->loop));
  out += "\n  pred: ";
  appendPlanSignature(out, cp.pred.planFor(node->loop));
  out += '\n';
}

}  // namespace

void appendPlanSignature(std::string& out, const LoopPlan* p) {
  if (!p) {
    out += "<none>";
    return;
  }
  out += loopStatusName(p->status);
  out += " test=";
  out += p->runtime_test.key();
  out += " degraded=";
  out += p->degraded ? '1' : '0';
  out += ':';
  out += p->degrade_cause;
  out += " reason=";
  out += p->reason;
  out += " priv=[";
  for (const auto& pa : p->privatized) {
    appendDecl(out, pa.array);
    out += pa.copy_in ? "+ci" : "";
    out += pa.copy_out ? "+co" : "";
    out += ' ';
  }
  out += "] ps=[";
  for (const VarDecl* d : p->private_scalars) {
    appendDecl(out, d);
    out += ' ';
  }
  out += "] co=[";
  for (const VarDecl* d : p->copy_out_scalars) {
    appendDecl(out, d);
    out += ' ';
  }
  out += "] red=[";
  for (const auto& r : p->reductions) {
    appendDecl(out, r.scalar);
    out += ':';
    out += std::to_string(static_cast<int>(r.op));
    out += ' ';
  }
  out += "] syncs=[";
  for (const auto& s : p->syncs) {
    out += s.source ? s.source->loc.str() : "?";
    out += "->";
    out += s.sink ? s.sink->loc.str() : "?";
    out += ":d";
    out += std::to_string(s.distance);
    out += s.eliminated ? "-elim" : "";
    out += ' ';
  }
  out += "] flags=";
  out += p->used_predicates ? 'P' : '.';
  out += p->used_embedding ? 'E' : '.';
  out += p->used_extraction ? 'X' : '.';
  out += p->used_reshape ? 'R' : '.';
  out += p->priv_used ? 'V' : '.';
  // Appended only when the value-range pass touched the plan, so every
  // signature under PADFA_NO_VRA is byte-identical to the pre-VRA format.
  if (p->vra_action != VraAction::None) {
    out += " vra=";
    out += vraActionName(p->vra_action);
  }
}

std::string planSignature(const CompiledProgram& cp) {
  std::string out;
  for (const LoopNode* node : cp.loops.allLoops())
    appendLoopEntry(out, cp, node);
  out += planTelemetrySignature(cp);
  return out;
}

std::string procPlanSignature(const CompiledProgram& cp,
                              const ProcDecl* proc) {
  std::string out;
  for (const LoopNode* node : cp.loops.allLoops()) {
    if (node->proc != proc) continue;
    appendLoopEntry(out, cp, node);
  }
  return out;
}

std::string planTelemetrySignature(const CompiledProgram& cp) {
  std::string out;
  for (const AnalysisResult* ar : {&cp.base, &cp.pred}) {
    out += ar == &cp.base ? "base" : "pred";
    out += " degraded_globally=";
    out += ar->degraded_globally ? '1' : '0';
    out += " causes=[";
    for (const auto& [cause, n] : ar->exhaustion_causes)
      out += cause + ":" + std::to_string(n) + " ";
    out += "]\n";
  }
  return out;
}

}  // namespace padfa
