// Canonical structural signature of a compiled program's parallelization
// output — the library's definition of "bit-identical plans".
//
// One deterministic text rendering covers, per loop: the base plan, the
// predicated plan (status, run-time test, privatization/reduction sets,
// degradation, attribution flags) and the driver's Table-2 outcome;
// plus the per-analysis degradation telemetry. Everything in it is
// derived from Sema-assigned deterministic ids (VarDecl::uid, interner
// Symbol ids), so two processes compiling the same source — cold or
// warm, cached or uncached, served from the daemon or run in-process —
// produce byte-equal signatures iff they produced the same plans.
//
// Consumers: the cache/thread coherence test, the persistent summary
// store (per-procedure plan records are keyed by source content hash
// and carry these bytes), the mfcd daemon (responses embed the
// signature so clients can verify equivalence with a local run), and
// the crash-recovery fault-injection suites.
#pragma once

#include <string>

#include "driver/padfa.h"

namespace padfa {

/// Signature of a single plan (appended to `out`); "<none>" when null.
void appendPlanSignature(std::string& out, const LoopPlan* plan);

/// Whole-program signature: every loop in LoopTree order + telemetry.
std::string planSignature(const CompiledProgram& cp);

/// The per-procedure slice of planSignature(): only loops belonging to
/// `proc`, without the program-level telemetry trailer. Concatenating
/// the slices in Program::procs order and appending
/// planTelemetrySignature() reconstitutes planSignature() exactly.
std::string procPlanSignature(const CompiledProgram& cp,
                              const ProcDecl* proc);

/// The degradation-telemetry trailer of planSignature().
std::string planTelemetrySignature(const CompiledProgram& cp);

}  // namespace padfa
