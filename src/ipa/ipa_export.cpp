#include "ipa/ipa_export.h"

#include <sstream>

#include "support/hash.h"

namespace padfa::ipa {

namespace {

std::string escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string nameOf(const Program& program, const ProcDecl* p) {
  return std::string(program.interner.str(p->name));
}

}  // namespace

std::string callGraphToDot(const CallGraph& cg, const ProcFingerprints& fps,
                           const Program& program) {
  std::ostringstream os;
  os << "digraph callgraph {\n"
     << "  rankdir=TB;\n"
     << "  node [shape=box, fontsize=10];\n";
  for (size_t scc = 0; scc < cg.sccCount(); ++scc) {
    const auto& members = cg.sccMembers(scc);
    os << "  subgraph cluster_scc" << scc << " {\n"
       << "    label=\"scc " << scc
       << (members.size() > 1 ? " (cycle)" : "") << "\";\n";
    for (const ProcDecl* p : members) {
      std::string name = nameOf(program, p);
      os << "    \"" << escaped(name) << "\" [label=\"" << escaped(name)
         << "\\nfp " << hashHex(fps.local.at(p)) << "\"];\n";
    }
    os << "  }\n";
  }
  for (const ProcDecl* caller : cg.procs()) {
    for (const ProcDecl* callee : cg.callees(caller)) {
      os << "  \"" << escaped(nameOf(program, caller)) << "\" -> \""
         << escaped(nameOf(program, callee)) << "\"";
      size_t sites = cg.callSites(caller, callee);
      if (sites > 1) os << " [label=\"x" << sites << "\"]";
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string callGraphToJson(const CallGraph& cg, const ProcFingerprints& fps,
                            const Program& program) {
  std::ostringstream os;
  os << "{\n  \"procs\": [\n";
  const auto& procs = cg.procs();
  for (size_t i = 0; i < procs.size(); ++i) {
    const ProcDecl* p = procs[i];
    os << "    {\"name\": \"" << escaped(nameOf(program, p))
       << "\", \"scc\": " << cg.sccOf(p) << ", \"local_fp\": \""
       << hashHex(fps.local.at(p)) << "\", \"deep_fp\": \""
       << hashHex(fps.deep.at(p)) << "\", \"callees\": [";
    const auto& callees = cg.callees(p);
    for (size_t j = 0; j < callees.size(); ++j) {
      os << (j ? ", " : "") << "{\"name\": \""
         << escaped(nameOf(program, callees[j])) << "\", \"sites\": "
         << cg.callSites(p, callees[j]) << "}";
    }
    os << "], \"callers\": [";
    const auto& callers = cg.callers(p);
    for (size_t j = 0; j < callers.size(); ++j)
      os << (j ? ", " : "") << "\""
         << escaped(nameOf(program, callers[j])) << "\"";
    os << "]}" << (i + 1 < procs.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"sccs\": [\n";
  for (size_t scc = 0; scc < cg.sccCount(); ++scc) {
    const auto& members = cg.sccMembers(scc);
    os << "    [";
    for (size_t j = 0; j < members.size(); ++j)
      os << (j ? ", " : "") << "\""
         << escaped(nameOf(program, members[j])) << "\"";
    os << "]" << (scc + 1 < cg.sccCount() ? "," : "") << "\n";
  }
  os << "  ],\n  \"bottom_up\": [";
  auto order = cg.bottomUpOrder();
  for (size_t i = 0; i < order.size(); ++i)
    os << (i ? ", " : "") << "\"" << escaped(nameOf(program, order[i]))
       << "\"";
  os << "]\n}\n";
  return os.str();
}

}  // namespace padfa::ipa
