// Per-procedure content fingerprints for change-impact analysis.
//
// The *local* fingerprint of a procedure is the FNV-1a hash of its
// canonical text: the exact per-procedure chunk the MF pretty-printer
// emits (codegen/mf_printer.h). That rendering is produced from the AST,
// so comments, whitespace, and source locations are erased; and because
// MF hoists block declarations to block entry (ast.h BlockStmt), moving
// a declaration around inside its block is a semantic no-op and the
// canonical text — which always prints declarations first — is
// unchanged too. Two procedures with equal local fingerprints therefore
// analyze identically *given identical callee summaries*.
//
// The *deep* fingerprint closes over callees: it hashes the sorted
// (name, local fingerprint) pairs of the procedure's reachable closure
// in the call graph (including itself). Deep-keyed store records are
// automatically invalidated for every transitive caller of an edited
// procedure — the dirty-ancestor closure falls out of key misses, no
// explicit invalidation pass needed — and, being source-position
// independent, can be shared across different sources that contain the
// same procedure subtree.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "ipa/callgraph.h"
#include "lang/ast.h"

namespace padfa::ipa {

struct ProcFingerprints {
  /// Hash of the procedure's canonical text.
  std::map<const ProcDecl*, uint64_t> local;
  /// Hash over the reachable closure's (name, local) pairs.
  std::map<const ProcDecl*, uint64_t> deep;
};

/// The canonical per-procedure text (the mf_printer chunk):
/// "proc name(params) {\n<body>}\n".
std::string canonicalProcText(const Program& program, const ProcDecl& proc);

ProcFingerprints fingerprintProgram(const Program& program,
                                    const CallGraph& cg);

}  // namespace padfa::ipa
