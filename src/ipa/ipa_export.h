// Deterministic DOT and JSON renderings of the interprocedural call
// graph (`mfc deps --callgraph`), following the PDG exporter's
// conventions (pdg/pdg_export.cpp): nodes are identified by procedure
// name, SCCs become clusters, and nothing pointer- or hash-order
// dependent reaches the output, so byte-identical output across runs is
// the contract.
#pragma once

#include <string>

#include "ipa/callgraph.h"
#include "ipa/fingerprint.h"

namespace padfa::ipa {

/// DOT: one cluster per SCC (bottom-up SCC ids), node labels carry the
/// local content fingerprint, edge labels the call-site count.
std::string callGraphToDot(const CallGraph& cg, const ProcFingerprints& fps,
                           const Program& program);

/// JSON: per procedure — name, SCC id, local/deep fingerprints, callees
/// and callers (program order) with call-site counts — plus the SCC
/// member lists and a bottom-up order array.
std::string callGraphToJson(const CallGraph& cg, const ProcFingerprints& fps,
                            const Program& program);

}  // namespace padfa::ipa
