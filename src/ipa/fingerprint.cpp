#include "ipa/fingerprint.h"

#include <algorithm>

#include "codegen/mf_printer.h"
#include "support/hash.h"

namespace padfa::ipa {

std::string canonicalProcText(const Program& program, const ProcDecl& proc) {
  // Mirrors printProgram()'s per-procedure chunk exactly, so
  // hash(canonicalProcText) over all procs == hash of printProgram pieces.
  const Interner& in = program.interner;
  std::string out = "proc " + std::string(in.str(proc.name)) + "(";
  for (size_t i = 0; i < proc.params.size(); ++i) {
    if (i) out += ", ";
    const VarDecl& d = *proc.params[i];
    out += std::string(typeName(d.elem_type)) + " " +
           std::string(in.str(d.name));
    if (d.isArray()) {
      out += '[';
      for (size_t j = 0; j < d.dims.size(); ++j) {
        if (j) out += ", ";
        out += exprToString(*d.dims[j], in);
      }
      out += ']';
    }
  }
  out += ") {\n";
  out += printBlock(*proc.body, in, "  ");
  out += "}\n";
  return out;
}

ProcFingerprints fingerprintProgram(const Program& program,
                                    const CallGraph& cg) {
  ProcFingerprints fp;
  for (const auto& proc : program.procs)
    fp.local[proc.get()] =
        contentHash64(canonicalProcText(program, *proc));
  for (const auto& proc : program.procs) {
    std::vector<std::pair<std::string, uint64_t>> closure;
    for (const ProcDecl* r : cg.reachableFrom(proc.get()))
      closure.emplace_back(std::string(program.interner.str(r->name)),
                           fp.local.at(r));
    std::sort(closure.begin(), closure.end());
    std::string blob;
    for (const auto& [name, h] : closure) {
      blob += name;
      blob += '=';
      blob += hashHex(h);
      blob += ';';
    }
    fp.deep[proc.get()] = contentHash64(blob);
  }
  return fp;
}

}  // namespace padfa::ipa
