// Interprocedural change-impact analysis: incremental re-analysis for
// the mfcd daemon (and anything else driving compileSource repeatedly
// over evolving sources).
//
// The pipeline per request:
//
//   parse + sema  ->  call graph (ipa/callgraph.h)
//                 ->  per-procedure content fingerprints (ipa/fingerprint.h)
//                 ->  per (procedure, analysis kind): look up the *deep*
//                     fingerprint in the persistent store
//                 ->  hit: decode the procedure's finalized summary and
//                     plans (store/deep_codec.h) and REPLAY them;
//                     miss: the procedure is dirty — re-analyze it.
//
// Because the deep fingerprint hashes the procedure's canonical text
// plus its entire callee closure, a store miss is exactly the
// change-impact set: edited procedures plus all their bottom-up
// ancestors (whole SCCs). Whitespace, comments and declaration
// reshuffles leave canonical text unchanged, so they invalidate
// nothing. Replay is never load-bearing for correctness: any decode
// failure silently re-analyzes, and the PADFA_IPA_CHECK tripwire
// (below) can force a byte-level audit against a cold run.
//
// Cold-equivalence contract: the CompiledProgram returned here yields a
// planSignature() byte-identical to compileSource() on the same bytes
// whenever replay happened (tested per-corpus-program, and enforced at
// runtime when PADFA_IPA_CHECK is set: any divergence prints both
// signatures and aborts the process).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "driver/padfa.h"
#include "store/summary_store.h"

namespace padfa::ipa {

/// What one incremental compile did, for telemetry / status / tests.
struct IncrementalInfo {
  size_t procs_total = 0;
  /// Procedures replayed from the store under BOTH analysis kinds.
  size_t procs_replayed = 0;
  /// Procedures analyzed from scratch under at least one kind.
  size_t procs_analyzed = 0;
  /// Dirty procedures (store miss / replay failure), program order.
  std::vector<std::string> dirty;
  /// Fully replayed procedures, program order.
  std::vector<std::string> replayed;
  /// Deep-fingerprint store probes: one per (procedure, kind).
  uint64_t fingerprint_hits = 0;
  uint64_t fingerprint_misses = 0;
  /// False when the run bypassed replay entirely (governed budget or
  /// caches disabled) and fell back to a plain cold compile.
  bool incremental = false;
};

/// compileSource() with change-impact replay against `store`.
///
/// Matches compileSource(source, diags, limits) exactly in outputs
/// (same CompiledProgram shape, same degradation ladder, byte-identical
/// plan signatures); differs only in how much analysis actually runs.
/// Fresh (non-degraded, ungoverned) procedure records are persisted
/// back into `store` in memory — the caller decides when to save().
std::optional<CompiledProgram> compileSourceIncremental(
    const std::string& source, DiagEngine& diags, const BudgetLimits& limits,
    store::SummaryStore& store, IncrementalInfo* info = nullptr);

}  // namespace padfa::ipa
