#include "ipa/incremental.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "dataflow/doacross.h"
#include "dataflow/vra_promote.h"
#include "driver/plan_signature.h"
#include "ipa/callgraph.h"
#include "ipa/fingerprint.h"
#include "runtime/thread_pool.h"
#include "store/deep_codec.h"
#include "support/perf_stats.h"

namespace padfa::ipa {

namespace {


/// Replay state for one analysis kind (base or pred). The two kinds run
/// concurrently over the same immutable Program; each KindState is
/// written only during single-threaded setup and then read by exactly
/// one analysis thread (plus its own `replayed` out-set).
struct KindState {
  uint8_t kind = store::kDeepKindBase;
  /// Replay candidates: store bytes that decoded cleanly against the
  /// fresh AST, plus the pre-decoded (rebound) plans.
  std::map<const ProcDecl*, std::string> bytes;
  std::map<const ProcDecl*, std::vector<LoopPlan>> plans;
  std::set<const ProcDecl*> replayed;
  SummaryPreload preload;
};

/// Probe the store for every procedure under one kind; keep only records
/// whose plan half decodes against the new AST (a decode failure is
/// treated as a miss — the procedure just stays dirty).
void prepareKind(KindState& st, uint8_t kind, const Program& program,
                 const CallGraph& cg, const ProcFingerprints& fps,
                 const store::SummaryStore& store, uint64_t& hits,
                 uint64_t& misses) {
  st.kind = kind;
  for (const ProcDecl* proc : cg.procs()) {
    auto rec = store.getDeepProc(fps.deep.at(proc), kind);
    if (!rec) {
      ++misses;
      continue;
    }
    std::vector<LoopPlan> plans;
    std::string err;
    if (!store::decodeDeepProcPlans(program, *proc, *rec, plans, err)) {
      ++misses;
      continue;
    }
    ++hits;
    st.bytes[proc] = std::move(*rec);
    st.plans[proc] = std::move(plans);
  }
  for (const auto& [proc, bytes] : st.bytes) st.preload.replay.insert(proc);
  st.preload.replayed = &st.replayed;
  st.preload.load = [&program, &st](const ProcDecl* proc, VarTable& vt,
                                    RegionSummary& out) {
    std::string err;
    return store::decodeDeepProcSummary(program, *proc, st.bytes.at(proc),
                                        vt, out, err);
  };
}

/// Insert the pre-decoded plans of every procedure that actually
/// replayed (the analyzer leaves those loops plan-less).
void mergeReplayedPlans(AnalysisResult& result, KindState& st) {
  for (const ProcDecl* proc : st.replayed)
    for (LoopPlan& plan : st.plans[proc])
      result.plans[plan.loop] = std::move(plan);
}

/// Persist fresh records for procedures whose (deep_fp, kind) key is not
/// in the store yet. encodeDeepProc is fail-soft: degraded or otherwise
/// non-rebindable state is simply not persisted.
void persistKind(const Program& program, const AnalysisResult& result,
                 const CallGraph& cg, const ProcFingerprints& fps,
                 uint8_t kind, store::SummaryStore& store) {
  for (const ProcDecl* proc : cg.procs()) {
    uint64_t fp = fps.deep.at(proc);
    if (store.getDeepProc(fp, kind)) continue;
    auto sit = result.proc_summaries.find(proc);
    if (sit == result.proc_summaries.end()) continue;
    store::DeepEncodeInput in;
    in.program = &program;
    in.proc = proc;
    in.summary = &sit->second;
    in.vars = &result.vars;
    bool complete = true;
    for (const ForStmt* loop : store::procLoopsInOrder(*proc)) {
      const LoopPlan* plan = result.planFor(loop);
      if (!plan) {
        complete = false;
        break;
      }
      in.plans.push_back(plan);
    }
    if (!complete) continue;
    std::string bytes, err;
    if (encodeDeepProc(in, bytes, err))
      store.putDeepProc(fp, kind, std::move(bytes));
  }
}

/// PADFA_IPA_CHECK tripwire: byte-compare the incremental result's plan
/// signature against a cold compile of the same bytes; abort on any
/// divergence so CI catches a broken replay immediately instead of
/// serving wrong-but-plausible plans.
void checkColdEquivalence(const std::string& source,
                          const BudgetLimits& limits,
                          const CompiledProgram& incremental) {
  DiagEngine diags;
  auto cold = compileSource(source, diags, limits);
  if (!cold) {
    std::fprintf(stderr,
                 "padfa-ipa: PADFA_IPA_CHECK cold compile failed where "
                 "incremental compile succeeded\n");
    std::abort();
  }
  std::string inc_sig = planSignature(incremental);
  std::string cold_sig = planSignature(*cold);
  if (inc_sig == cold_sig) return;
  std::fprintf(stderr,
               "padfa-ipa: PADFA_IPA_CHECK divergence — incremental plan "
               "signature differs from cold run\n--- incremental ---\n%s\n"
               "--- cold ---\n%s\n",
               inc_sig.c_str(), cold_sig.c_str());
  std::abort();
}

}  // namespace

std::optional<CompiledProgram> compileSourceIncremental(
    const std::string& source, DiagEngine& diags, const BudgetLimits& limits,
    store::SummaryStore& store, IncrementalInfo* info) {
  // Replay and persist are only sound for ungoverned, cache-enabled
  // compiles (same contract as the daemon's warm path); otherwise run
  // the plain pipeline.
  if (BudgetLimits::fromEnv(limits).governed() || !cachesEnabled()) {
    auto cp = compileSource(source, diags, limits);
    if (cp && info) {
      info->procs_total = cp->program->procs.size();
      info->procs_analyzed = info->procs_total;
      for (const auto& p : cp->program->procs)
        info->dirty.emplace_back(cp->interner().str(p->name));
    }
    return cp;
  }

  auto program = parseProgram(source, diags);
  if (!program) return std::nullopt;
  if (!analyze(*program, diags)) return std::nullopt;

  CallGraph cg = CallGraph::build(*program);
  ProcFingerprints fps = fingerprintProgram(*program, cg);

  uint64_t fp_hits = 0, fp_misses = 0;
  KindState base_st, pred_st;
  prepareKind(base_st, store::kDeepKindBase, *program, cg, fps, store,
              fp_hits, fp_misses);
  prepareKind(pred_st, store::kDeepKindPred, *program, cg, fps, store,
              fp_hits, fp_misses);

  CompiledProgram cp;
  cp.loops = LoopTree::build(*program);
  Program& prog = *program;
  AnalysisConfig base_cfg = AnalysisConfig::baseline();
  base_cfg.budget = limits;
  base_cfg.preload = &base_st.preload;
  base_cfg.export_summaries = true;
  AnalysisConfig pred_cfg = AnalysisConfig::predicated();
  pred_cfg.budget = limits;
  pred_cfg.preload = &pred_st.preload;
  pred_cfg.export_summaries = true;
  std::future<AnalysisResult> base_fut = analysisPool().submit(
      [&prog, &base_cfg] { return analyzeProgram(prog, base_cfg); });
  cp.pred = analyzeProgram(prog, pred_cfg);
  cp.base = base_fut.get();

  mergeReplayedPlans(cp.base, base_st);
  mergeReplayedPlans(cp.pred, pred_st);

  // Same degradation ladder as compileSource(): a degraded predicated
  // plan falls back to an undegraded baseline plan for the same loop.
  for (auto& [loop, pplan] : cp.pred.plans) {
    if (!pplan.degraded) continue;
    const LoopPlan* bplan = cp.base.planFor(loop);
    if (!bplan || bplan->degraded) continue;
    std::string cause = std::move(pplan.degrade_cause);
    pplan = *bplan;
    pplan.degraded = true;
    pplan.degrade_cause = std::move(cause);
  }

  persistKind(prog, cp.base, cg, fps, store::kDeepKindBase, store);
  persistKind(prog, cp.pred, cg, fps, store::kDeepKindPred, store);

  // Doacross upgrade + value-range promotion after persistence: the
  // store only ever sees pre-upgrade plans, so warm replays re-derive
  // the same upgrades and promotions a cold run would (see
  // dataflow/doacross.h, dataflow/vra_promote.h). This path only runs
  // ungoverned (the governed case bailed to plain compileSource above),
  // matching the driver's skip-refinement-when-governed rule.
  std::unique_ptr<vra::RangeAnalysis> ranges;
  if (vra::vraEnabled()) ranges = std::make_unique<vra::RangeAnalysis>(prog);
  const vra::RangeAnalysis* rp =
      ranges && ranges->enabled() ? ranges.get() : nullptr;
  upgradeDoacrossPlans(prog, cp.pred, rp);
  if (rp) applyVraPromotions(prog, cp.pred, *rp);

  size_t replayed_both = 0;
  std::vector<std::string> dirty_names, replayed_names;
  for (const ProcDecl* proc : cg.procs()) {
    bool full = base_st.replayed.count(proc) && pred_st.replayed.count(proc);
    std::string name(prog.interner.str(proc->name));
    if (full) {
      ++replayed_both;
      replayed_names.push_back(std::move(name));
    } else {
      dirty_names.push_back(std::move(name));
    }
  }

  auto& counters = PerfStats::instance().incremental;
  counters.runs.fetch_add(1, std::memory_order_relaxed);
  counters.procs_analyzed.fetch_add(dirty_names.size(),
                                    std::memory_order_relaxed);
  counters.procs_replayed.fetch_add(replayed_both,
                                    std::memory_order_relaxed);
  counters.fingerprint_hits.fetch_add(fp_hits, std::memory_order_relaxed);
  counters.fingerprint_misses.fetch_add(fp_misses,
                                        std::memory_order_relaxed);
  counters.last_dirty_size.store(dirty_names.size(),
                                 std::memory_order_relaxed);

  if (info) {
    info->procs_total = cg.procs().size();
    info->procs_replayed = replayed_both;
    info->procs_analyzed = dirty_names.size();
    info->dirty = std::move(dirty_names);
    info->replayed = std::move(replayed_names);
    info->fingerprint_hits = fp_hits;
    info->fingerprint_misses = fp_misses;
    info->incremental = true;
  }

  cp.program = std::move(program);

  const char* check = std::getenv("PADFA_IPA_CHECK");
  if (check && *check && replayed_both > 0)
    checkColdEquivalence(source, limits, cp);

  return cp;
}

}  // namespace padfa::ipa
