// Interprocedural call graph over the MF AST.
//
// Nodes are procedures (in Program::procs order), edges are call sites
// (CallStmt::callee_proc; builtin sink() calls have no callee and add no
// edge). On top of the raw graph this module computes the Tarjan SCC
// condensation — Sema rejects recursion, so every SCC is a singleton in
// practice, but the condensation is computed generally so the
// change-impact machinery stays correct if the language ever grows
// recursion — plus the two closures the incremental engine needs:
//
//   reachableFrom(entry): the procedures whose summaries can feed an
//     analysis rooted at `entry` (drives deep fingerprints and the
//     padfa-dead-proc lint checker);
//   ancestorClosure(changed): changed procedures plus every transitive
//     caller, widened to whole SCCs — the *dirty set* that must be
//     re-analyzed after an edit, because the bottom-up analysis of any
//     caller consumed a (now stale) callee summary.
//
// Everything is deterministic: procedures keep program order, callee /
// caller lists are deduplicated in program order, and SCC ids are
// assigned in bottom-up (callee-before-caller) order.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "lang/ast.h"

namespace padfa::ipa {

class CallGraph {
 public:
  /// Build from an analyzed program (Sema must have succeeded).
  static CallGraph build(const Program& program);

  /// All procedures, in Program::procs order.
  const std::vector<const ProcDecl*>& procs() const { return procs_; }

  /// Distinct direct callees of `p`, in program order.
  const std::vector<const ProcDecl*>& callees(const ProcDecl* p) const;
  /// Distinct direct callers of `p`, in program order.
  const std::vector<const ProcDecl*>& callers(const ProcDecl* p) const;
  /// Number of distinct call sites caller -> callee (0 when no edge).
  size_t callSites(const ProcDecl* caller, const ProcDecl* callee) const;

  // --- SCC condensation ---
  size_t sccCount() const { return scc_members_.size(); }
  /// SCC id of `p`; ids are assigned in callee-before-caller order, so
  /// `sccOf(callee) < sccOf(caller)` whenever the two differ.
  size_t sccOf(const ProcDecl* p) const;
  /// Members of one SCC, in program order.
  const std::vector<const ProcDecl*>& sccMembers(size_t scc) const;

  /// Procedures in callee-before-caller order (SCC members grouped,
  /// program order inside an SCC). With an acyclic graph this is a
  /// topological order compatible with sema's bottomUpProcOrder().
  std::vector<const ProcDecl*> bottomUpOrder() const;

  /// Procedures reachable from `entry` through call edges, including
  /// `entry` itself.
  std::set<const ProcDecl*> reachableFrom(const ProcDecl* entry) const;

  /// The dirty set for an edit: `changed` plus all transitive callers,
  /// widened to whole SCCs.
  std::set<const ProcDecl*> ancestorClosure(
      const std::set<const ProcDecl*>& changed) const;

 private:
  std::vector<const ProcDecl*> procs_;
  std::map<const ProcDecl*, std::vector<const ProcDecl*>> callees_;
  std::map<const ProcDecl*, std::vector<const ProcDecl*>> callers_;
  std::map<std::pair<const ProcDecl*, const ProcDecl*>, size_t> sites_;
  std::map<const ProcDecl*, size_t> scc_of_;
  std::vector<std::vector<const ProcDecl*>> scc_members_;
};

}  // namespace padfa::ipa
