#include "ipa/callgraph.h"

#include <algorithm>
#include <functional>

namespace padfa::ipa {

namespace {

void collectCalls(const BlockStmt& block,
                  std::vector<const ProcDecl*>& out) {
  for (const auto& st : block.stmts) {
    switch (st->kind) {
      case StmtKind::Call: {
        const auto& c = static_cast<const CallStmt&>(*st);
        if (c.callee_proc) out.push_back(c.callee_proc);
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*st);
        collectCalls(*i.then_block, out);
        if (i.else_block) collectCalls(*i.else_block, out);
        break;
      }
      case StmtKind::For:
        collectCalls(*static_cast<const ForStmt&>(*st).body, out);
        break;
      case StmtKind::Block:
        collectCalls(static_cast<const BlockStmt&>(*st), out);
        break;
      default:
        break;
    }
  }
}

}  // namespace

CallGraph CallGraph::build(const Program& program) {
  CallGraph g;
  std::map<const ProcDecl*, size_t> order;
  for (const auto& p : program.procs) {
    order[p.get()] = g.procs_.size();
    g.procs_.push_back(p.get());
    g.callees_[p.get()];
    g.callers_[p.get()];
  }
  for (const ProcDecl* caller : g.procs_) {
    std::vector<const ProcDecl*> calls;
    collectCalls(*caller->body, calls);
    for (const ProcDecl* callee : calls) ++g.sites_[{caller, callee}];
    std::sort(calls.begin(), calls.end(),
              [&order](const ProcDecl* a, const ProcDecl* b) {
                return order.at(a) < order.at(b);
              });
    calls.erase(std::unique(calls.begin(), calls.end()), calls.end());
    g.callees_[caller] = calls;
    for (const ProcDecl* callee : calls) g.callers_[callee].push_back(caller);
  }
  // callers_ entries were appended in caller program order already (the
  // outer loop runs in program order), so they need no re-sort.

  // Tarjan. An SCC is emitted only after every SCC it can reach, so
  // emission order is callee-before-caller — exactly the id order the
  // header promises.
  struct TarjanState {
    std::map<const ProcDecl*, size_t> index, lowlink;
    std::vector<const ProcDecl*> stack;
    std::set<const ProcDecl*> on_stack;
    size_t next = 0;
  } t;
  std::function<void(const ProcDecl*)> strongconnect =
      [&](const ProcDecl* v) {
        t.index[v] = t.lowlink[v] = t.next++;
        t.stack.push_back(v);
        t.on_stack.insert(v);
        for (const ProcDecl* w : g.callees_.at(v)) {
          if (!t.index.count(w)) {
            strongconnect(w);
            t.lowlink[v] = std::min(t.lowlink[v], t.lowlink[w]);
          } else if (t.on_stack.count(w)) {
            t.lowlink[v] = std::min(t.lowlink[v], t.index[w]);
          }
        }
        if (t.lowlink[v] == t.index[v]) {
          std::vector<const ProcDecl*> members;
          const ProcDecl* w = nullptr;
          do {
            w = t.stack.back();
            t.stack.pop_back();
            t.on_stack.erase(w);
            members.push_back(w);
          } while (w != v);
          std::sort(members.begin(), members.end(),
                    [&order](const ProcDecl* a, const ProcDecl* b) {
                      return order.at(a) < order.at(b);
                    });
          size_t id = g.scc_members_.size();
          for (const ProcDecl* m : members) g.scc_of_[m] = id;
          g.scc_members_.push_back(std::move(members));
        }
      };
  for (const ProcDecl* p : g.procs_)
    if (!t.index.count(p)) strongconnect(p);
  return g;
}

const std::vector<const ProcDecl*>& CallGraph::callees(
    const ProcDecl* p) const {
  return callees_.at(p);
}

const std::vector<const ProcDecl*>& CallGraph::callers(
    const ProcDecl* p) const {
  return callers_.at(p);
}

size_t CallGraph::callSites(const ProcDecl* caller,
                            const ProcDecl* callee) const {
  auto it = sites_.find({caller, callee});
  return it == sites_.end() ? 0 : it->second;
}

size_t CallGraph::sccOf(const ProcDecl* p) const { return scc_of_.at(p); }

const std::vector<const ProcDecl*>& CallGraph::sccMembers(size_t scc) const {
  return scc_members_.at(scc);
}

std::vector<const ProcDecl*> CallGraph::bottomUpOrder() const {
  std::vector<const ProcDecl*> out;
  for (const auto& members : scc_members_)
    out.insert(out.end(), members.begin(), members.end());
  return out;
}

std::set<const ProcDecl*> CallGraph::reachableFrom(
    const ProcDecl* entry) const {
  std::set<const ProcDecl*> seen;
  std::vector<const ProcDecl*> work{entry};
  while (!work.empty()) {
    const ProcDecl* p = work.back();
    work.pop_back();
    if (!seen.insert(p).second) continue;
    for (const ProcDecl* c : callees_.at(p)) work.push_back(c);
  }
  return seen;
}

std::set<const ProcDecl*> CallGraph::ancestorClosure(
    const std::set<const ProcDecl*>& changed) const {
  std::set<const ProcDecl*> dirty;
  std::vector<const ProcDecl*> work(changed.begin(), changed.end());
  while (!work.empty()) {
    const ProcDecl* p = work.back();
    work.pop_back();
    if (!dirty.insert(p).second) continue;
    // Whole SCC: every member's summary depends on every other's.
    for (const ProcDecl* m : sccMembers(sccOf(p))) work.push_back(m);
    for (const ProcDecl* c : callers_.at(p)) work.push_back(c);
  }
  return dirty;
}

}  // namespace padfa::ipa
