#include "pdg/reaching.h"

namespace padfa {

EdgeSet allBackEdges(const ProcCfg& cfg) {
  return EdgeSet(cfg.back_edges.begin(), cfg.back_edges.end());
}

EdgeSet backEdgesOf(const ProcCfg& cfg, const ForStmt* loop) {
  EdgeSet out;
  for (const auto& [from, to] : cfg.back_edges) {
    // A back edge belongs to the loop whose header leads the target
    // block (the header has multiple preds, so it is always a leader).
    const CfgNode& head = cfg.nodes[cfg.blocks[to].nodes.front()];
    if (head.kind == CfgNodeKind::LoopHead && head.stmt == loop)
      out.insert({from, to});
  }
  return out;
}

// ------------------------------------------------- reaching definitions --

ReachingDefs::ReachingDefs(const ProcCfg& cfg, EdgeSet skip_edges)
    : cfg_(cfg), skip_(std::move(skip_edges)) {
  defs_at_.resize(cfg.nodes.size());
  kills_at_.resize(cfg.nodes.size());
  // Number all definition points in node order (deterministic).
  for (const CfgNode& n : cfg.nodes) {
    for (const VarDecl* d : n.defs) {
      defs_at_[n.id].push_back(static_cast<uint32_t>(def_node_.size()));
      def_node_.push_back(n.id);
      def_var_.push_back(d);
    }
  }
  // Strong kills: a scalar definition kills every definition of the same
  // scalar; array (element) definitions are weak and kill nothing.
  for (const CfgNode& n : cfg.nodes) {
    for (size_t i = 0; i < n.defs.size(); ++i) {
      const VarDecl* d = n.defs[i];
      if (d->isArray()) continue;
      for (uint32_t def = 0; def < def_node_.size(); ++def)
        if (def_var_[def] == d) kills_at_[n.id].push_back(def);
    }
  }
}

void ReachingDefs::applyNode(uint32_t node, BitFact& fact) const {
  for (uint32_t def : kills_at_[node]) fact.clear(def);
  for (uint32_t def : defs_at_[node]) fact.set(def);
}

void ReachingDefs::run() {
  Domain dom;
  dom.rd = this;
  BlockDataflow<Domain> engine(cfg_, dom, skip_);
  engine.run();
  stats_ = engine.stats();
  // Per-node IN facts: walk each block once from its entry fact.
  node_in_.assign(cfg_.nodes.size(), BitFact(numDefs()));
  for (const BasicBlock& b : cfg_.blocks) {
    BitFact fact = engine.inOf(b.id);
    for (uint32_t n : b.nodes) {
      node_in_[n] = fact;
      applyNode(n, fact);
    }
  }
}

// ------------------------------------------------------------ liveness --

Liveness::Liveness(const ProcCfg& cfg)
    : cfg_(cfg), nvars_(cfg.proc ? cfg.proc->all_vars.size() : 0) {}

void Liveness::applyNode(uint32_t node, BitFact& fact) const {
  const CfgNode& n = cfg_.nodes[node];
  // Backward: out -> in = use ∪ (out − strong defs).
  for (const VarDecl* d : n.defs)
    if (!d->isArray() && bitOf(d) < nvars_) fact.clear(bitOf(d));
  for (const VarDecl* d : n.uses)
    if (bitOf(d) < nvars_) fact.set(bitOf(d));
}

void Liveness::run() {
  Domain dom;
  dom.lv = this;
  BlockDataflow<Domain> engine(cfg_, dom);
  engine.run();
  stats_ = engine.stats();
  // Per-node OUT facts: walk each block backwards from its exit fact.
  node_out_.assign(cfg_.nodes.size(), BitFact(nvars_));
  for (const BasicBlock& b : cfg_.blocks) {
    BitFact fact = engine.outOf(b.id);
    for (auto it = b.nodes.rbegin(); it != b.nodes.rend(); ++it) {
      node_out_[*it] = fact;
      applyNode(*it, fact);
    }
  }
}

bool Liveness::liveOut(uint32_t node, const VarDecl* var) const {
  if (!var || bitOf(var) >= nvars_) return true;  // foreign decl: assume live
  return node_out_[node].test(bitOf(var));
}

}  // namespace padfa
