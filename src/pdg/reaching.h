// Data-flow clients over the shared CFG + engine: reaching definitions
// (forward, may) and live variables (backward, may).
//
// Reaching definitions number every definition point (node, variable):
// scalar definitions are strong (they kill every other definition of the
// same scalar), array definitions are weak (an element store never kills
// the rest of the array — classic array may-def treatment). The PDG
// builder turns def->use reachability into flow edges; running the same
// problem with loop back edges ignored yields the acyclic solution used
// to classify edges as loop-carried vs loop-independent.
//
// Liveness drives the sharpened padfa-dead-store lint checker: a scalar
// store whose target is not live-out of its node is dead on every path,
// including stores that earlier whole-program reference counting missed
// because the variable is read somewhere else entirely.
#pragma once

#include <cstdint>
#include <vector>

#include "pdg/dataflow.h"

namespace padfa {

class ReachingDefs {
 public:
  /// `skip_edges` names CFG edges the solution pretends don't exist:
  /// allBackEdges(cfg) gives the acyclic solution, backEdgesOf(cfg, L)
  /// the "loop L does not iterate" solution used to attribute carried
  /// dependences to L specifically.
  explicit ReachingDefs(const ProcCfg& cfg, EdgeSet skip_edges = {});

  void run();

  size_t numDefs() const { return def_node_.size(); }
  uint32_t defNode(size_t def) const { return def_node_[def]; }
  const VarDecl* defVar(size_t def) const { return def_var_[def]; }
  /// Definition ids generated at `node`.
  const std::vector<uint32_t>& defsAt(uint32_t node) const {
    return defs_at_[node];
  }
  /// Definitions reaching the *entry* of `node` (valid after run()).
  const BitFact& reachingIn(uint32_t node) const { return node_in_[node]; }

  const DataflowStats& stats() const { return stats_; }

  // Domain policy for BlockDataflow (public for the engine).
  struct Domain {
    using Fact = BitFact;
    static constexpr bool kForward = true;
    const ReachingDefs* rd = nullptr;
    Fact boundary() const { return Fact(rd->numDefs()); }
    Fact initial() const { return Fact(rd->numDefs()); }
    bool merge(Fact& into, const Fact& from) const {
      return into.unionWith(from);
    }
    Fact transfer(const BasicBlock& b, Fact in) const {
      for (uint32_t n : b.nodes) rd->applyNode(n, in);
      return in;
    }
  };

 private:
  friend struct Domain;
  void applyNode(uint32_t node, BitFact& fact) const;

  const ProcCfg& cfg_;
  EdgeSet skip_;
  std::vector<uint32_t> def_node_;
  std::vector<const VarDecl*> def_var_;
  std::vector<std::vector<uint32_t>> defs_at_;     // per node
  std::vector<std::vector<uint32_t>> kills_at_;    // per node (strong only)
  std::vector<BitFact> node_in_;
  DataflowStats stats_;
};

class Liveness {
 public:
  explicit Liveness(const ProcCfg& cfg);

  void run();

  /// Is `var` live out of `node` (some path from here reads it before any
  /// strong redefinition)? Array element writes never kill, so arrays
  /// stay live until their last read.
  bool liveOut(uint32_t node, const VarDecl* var) const;

  const DataflowStats& stats() const { return stats_; }

  struct Domain {
    using Fact = BitFact;
    static constexpr bool kForward = false;
    const Liveness* lv = nullptr;
    Fact boundary() const { return Fact(lv->nvars_); }
    Fact initial() const { return Fact(lv->nvars_); }
    bool merge(Fact& into, const Fact& from) const {
      return into.unionWith(from);
    }
    Fact transfer(const BasicBlock& b, Fact out) const {
      for (auto it = b.nodes.rbegin(); it != b.nodes.rend(); ++it)
        lv->applyNode(*it, out);
      return out;
    }
  };

 private:
  friend struct Domain;
  void applyNode(uint32_t node, BitFact& fact) const;
  size_t bitOf(const VarDecl* d) const { return d->local_id; }

  const ProcCfg& cfg_;
  size_t nvars_ = 0;
  std::vector<BitFact> node_out_;
  DataflowStats stats_;
};

}  // namespace padfa
