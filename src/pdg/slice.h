// Backward program slicing over the PDG.
//
// A slice criterion is (line, variable): the statement at that source
// line that references the variable. The slice is the set of PDG nodes
// the criterion transitively depends on through flow and control edges —
// the statements that can affect the value of `var` observed there
// (Weiser's classic backward slice, computed on the dependence graph).
//
// Precision notes: when the criterion variable is merely *used* at the
// criterion node, only that variable's incoming flow edges seed the
// walk (the other operands of the statement are irrelevant to the
// criterion); when it is *defined* there, all incoming flow edges seed
// it. Array flow edges are subscript-blind may-deps, so array slices
// are conservative (never too small). Slices are intra-procedural;
// calls appear as opaque nodes whose argument dependences are followed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pdg/pdg.h"

namespace padfa {

struct SliceCriterion {
  uint32_t line = 0;
  std::string var;
};

/// Parse "<line>:<var>" (e.g. "12:sum"). Returns false and fills `err`
/// on malformed input.
bool parseSliceCriterion(const std::string& spec, SliceCriterion& out,
                         std::string& err);

struct SliceResult {
  const ProcPdg* proc = nullptr;   // procedure containing the criterion
  uint32_t criterion_node = 0;
  const VarDecl* var = nullptr;
  /// Sliced nodes (including the criterion), ascending node id.
  std::vector<uint32_t> nodes;
  /// Distinct source lines of the sliced statements, ascending.
  std::vector<uint32_t> lines;
};

/// Compute the backward slice. Returns false and fills `err` when no
/// statement at `criterion.line` references `criterion.var`.
bool computeSlice(const ProgramPdg& pdg, const Program& program,
                  const SliceCriterion& criterion, SliceResult& out,
                  std::string& err);

}  // namespace padfa
