#include "pdg/certify.h"

#include <map>
#include <memory>

#include "audit/loop_conflicts.h"
#include "dataflow/doacross.h"
#include "predicate/pred.h"
#include "vra/vra.h"

namespace padfa {

std::string_view certifyVerdictName(CertifyVerdict v) {
  switch (v) {
    case CertifyVerdict::Certified: return "certified";
    case CertifyVerdict::CertifiedTest: return "certified-test";
    case CertifyVerdict::CertifiedSync: return "certified-sync";
    case CertifyVerdict::Inconclusive: return "inconclusive";
    case CertifyVerdict::Disagree: return "disagree";
  }
  return "?";
}

size_t CertifyReport::count(CertifyVerdict v) const {
  size_t n = 0;
  for (const auto& c : loops) n += c.verdict == v;
  return n;
}

namespace {

void raiseTo(LoopCertificate& cert, CertifyVerdict v) {
  if (static_cast<uint8_t>(v) > static_cast<uint8_t>(cert.verdict))
    cert.verdict = v;
}

bool planPrivatizes(const LoopPlan& plan, const VarDecl* array) {
  for (const auto& pa : plan.privatized)
    if (pa.array == array) return true;
  return false;
}

bool planCoversScalar(const LoopPlan& plan, const VarDecl* scalar) {
  for (const VarDecl* p : plan.private_scalars)
    if (p == scalar) return true;
  for (const VarDecl* p : plan.copy_out_scalars)
    if (p == scalar) return true;
  for (const auto& r : plan.reductions)
    if (r.scalar == scalar) return true;
  return false;
}

/// Does the plan's run-time test (affinely) exclude every remaining
/// cross-iteration conflict on `root`? Re-asks the same conflict systems
/// the PDG edges came from, now conjoined with the test's upper bound —
/// the auditor's discharge step, applied edge-wise.
bool testDischargesRoot(LoopConflictScanner& scanner, const pb::System& test_ub,
                        const VarDecl* root) {
  const auto& acc = scanner.accesses();
  for (size_t i = 0; i < acc.size(); ++i) {
    for (size_t j = i; j < acc.size(); ++j) {
      const ConflictAccess& a = acc[i];
      const ConflictAccess& b = acc[j];
      if (a.root != root || b.root != root || (!a.write && !b.write))
        continue;
      auto eq = LoopConflictScanner::pairEq(a, b);
      if (!scanner.conflictExists(a, b, eq, nullptr)) continue;
      if (scanner.conflictExists(a, b, eq, &test_ub)) return false;
    }
  }
  return true;
}

LoopCertificate certifyLoop(const Program& program, const LoopPlan& plan,
                            const ProgramPdg& pdg, bool promotion_verified) {
  LoopCertificate cert;
  cert.loop = plan.loop;
  cert.proc = plan.proc;
  cert.status = plan.status;

  // Mirror of the auditor's promotion discipline (audit/plan_audit.cpp):
  // a PromotedParallel plan's retained test discharges edges only when
  // this pass's own range analysis re-proved it true; otherwise the loop
  // is held to the plain Parallel standard and any exact carried edge
  // becomes Disagree — the same rank the audit's Unsound lands on, so
  // the cross-check stays quiet exactly when both legs agree.
  bool promoted = plan.vra_action == VraAction::PromotedParallel &&
                  plan.status == LoopStatus::Parallel;
  bool test_armed = plan.status == LoopStatus::RuntimeTest ||
                    (promoted && promotion_verified);
  if (promoted && !promotion_verified) {
    cert.notes.push_back(
        "value-range promotion not reproducible: the retained run-time "
        "test does not re-prove true");
    raiseTo(cert, CertifyVerdict::Inconclusive);
  }

  const ProcPdg* proc_pdg = pdg.forProc(plan.proc);
  if (!proc_pdg) {
    cert.notes.push_back("no PDG for procedure");
    raiseTo(cert, CertifyVerdict::Inconclusive);
    return cert;
  }

  // The test-discharge scanner is built lazily: most loops never need it.
  LoopConflictScanner scanner(program, plan.loop, plan.proc);
  bool scanned = false;
  pb::System test_ub;
  auto ensureScanned = [&] {
    if (scanned) return;
    scanner.scan();
    if (test_armed)
      test_ub = plan.runtime_test.affineUpperBound(scanner.varTable());
    scanned = true;
  };

  // Which roots the run-time test fully discharges, memoized per loop.
  std::map<const VarDecl*, bool> test_ok;
  auto testDischarges = [&](const VarDecl* root) {
    if (!test_armed) return false;
    ensureScanned();
    auto it = test_ok.find(root);
    if (it == test_ok.end())
      it = test_ok.emplace(root, testDischargesRoot(scanner, test_ub, root))
               .first;
    return it->second;
  };

  // Doacross discharge: an exact carried array edge with a constant
  // distance is enforced (not raced) when the plan declares a sync
  // requirement for exactly that (source stmt, sink stmt, distance).
  // PDG distances are in index space; plan.syncs store iteration
  // ordinals (index distance / constant step) — convert before matching.
  auto syncDischarges = [&](const PdgEdge& e) {
    if (plan.status != LoopStatus::Doacross || !e.exact || !e.distance)
      return false;
    std::optional<int64_t> step = doacrossConstStep(*plan.loop);
    if (!step || *e.distance % *step != 0) return false;
    const Stmt* src = proc_pdg->cfg.nodes[e.src].stmt;
    const Stmt* dst = proc_pdg->cfg.nodes[e.dst].stmt;
    for (const auto& s : plan.syncs)
      if (s.source == src && s.sink == dst &&
          s.distance == *e.distance / *step)
        return true;
    return false;
  };

  for (const PdgEdge& e : proc_pdg->edges) {
    if (!e.carried || e.carrier != plan.loop) continue;
    if (e.kind == PdgEdgeKind::Control) continue;
    ++cert.carried_edges;
    const std::string var_name(program.interner.str(e.var->name));
    const std::string where =
        std::string(pdgEdgeKindName(e.kind)) + " dependence on '" + var_name +
        "' (" + std::to_string(e.src) + " -> " + std::to_string(e.dst) +
        (e.distance ? ", distance " + std::to_string(*e.distance) : "") + ")";
    if (e.var->isArray()) {
      if (planPrivatizes(plan, e.var)) {
        ++cert.discharged_plan;
      } else if (testDischarges(e.var)) {
        ++cert.discharged_test;
        raiseTo(cert, CertifyVerdict::CertifiedTest);
      } else if (syncDischarges(e)) {
        ++cert.discharged_sync;
        raiseTo(cert, CertifyVerdict::CertifiedSync);
      } else if (e.exact && !test_armed &&
                 (plan.status == LoopStatus::Parallel ||
                  plan.status == LoopStatus::Doacross)) {
        // A verified promotion keeps the RuntimeTest discipline: the
        // test re-proved true, so an affinely-undischargeable exact edge
        // falls through to Inconclusive (race-oracle deferral) below.
        ++cert.undischarged_exact;
        cert.notes.push_back("undischarged carried " + where);
        raiseTo(cert, CertifyVerdict::Disagree);
      } else {
        // Approximate edge, or an exact edge the run-time test cannot
        // affinely exclude — the auditor calls both Inconclusive and
        // defers to the race oracle; so do we.
        ++cert.undischarged_approx;
        cert.notes.push_back("unresolved carried " + where);
        raiseTo(cert, CertifyVerdict::Inconclusive);
      }
    } else {
      if (planCoversScalar(plan, e.var)) {
        ++cert.discharged_plan;
      } else {
        ++cert.undischarged_approx;
        cert.notes.push_back("unresolved carried " + where);
        raiseTo(cert, CertifyVerdict::Inconclusive);
      }
    }
  }

  // An access-cap overflow means the PDG (like the audit) may be missing
  // carried edges entirely.
  ensureScanned();
  if (scanner.overflow()) {
    cert.notes.push_back("access cap exceeded; certification is partial");
    raiseTo(cert, CertifyVerdict::Inconclusive);
  }
  return cert;
}

}  // namespace

CertifyReport certifyPlans(const Program& program,
                           const AnalysisResult& analysis,
                           const LoopTree& loops, const ProgramPdg& pdg) {
  CertifyReport report;
  // Independent re-proof of every promotion, sharing one lazily-built
  // range analysis (same discipline as auditPlans).
  std::unique_ptr<vra::RangeAnalysis> ranges;
  auto promotionVerified = [&](const LoopPlan& plan) {
    if (plan.vra_action != VraAction::PromotedParallel) return false;
    if (!ranges) ranges = std::make_unique<vra::RangeAnalysis>(program);
    return ranges->enabled() &&
           ranges->proveTrue(plan.loop, plan.runtime_test);
  };
  for (const LoopNode* ln : loops.allLoops()) {
    const LoopPlan* plan = analysis.planFor(ln->loop);
    if (!plan) continue;
    if (plan->status != LoopStatus::Parallel &&
        plan->status != LoopStatus::RuntimeTest &&
        plan->status != LoopStatus::Doacross)
      continue;
    report.loops.push_back(
        certifyLoop(program, *plan, pdg, promotionVerified(*plan)));
  }
  return report;
}

namespace {

// Both verdict scales collapse onto the same three-step ladder:
// green = the plan is fine as declared, amber = deferred to the dynamic
// race oracle, red = statically contradicted. The cross-check demands
// the two legs land on the SAME step for every loop — a strictly
// stronger invariant than only agreeing on red.
int rankOf(CertifyVerdict v) {
  switch (v) {
    case CertifyVerdict::Certified:
    case CertifyVerdict::CertifiedTest:
    case CertifyVerdict::CertifiedSync: return 0;
    case CertifyVerdict::Inconclusive: return 1;
    case CertifyVerdict::Disagree: return 2;
  }
  return 2;
}

int rankOf(AuditVerdict v) {
  switch (v) {
    case AuditVerdict::Independent:
    case AuditVerdict::DischargedTest:
    case AuditVerdict::DischargedSync: return 0;
    case AuditVerdict::Inconclusive: return 1;
    case AuditVerdict::Unsound: return 2;
  }
  return 2;
}

}  // namespace

std::vector<std::string> crossCheckCertification(const Program& program,
                                                 const CertifyReport& cert,
                                                 const AuditReport& audit) {
  std::vector<std::string> disagreements;
  std::map<const ForStmt*, const LoopAudit*> by_loop;
  for (const LoopAudit& a : audit.loops) by_loop[a.loop] = &a;
  for (const LoopCertificate& c : cert.loops) {
    auto it = by_loop.find(c.loop);
    std::string id = c.loop ? c.loop->loop_id : "?";
    if (it == by_loop.end()) {
      disagreements.push_back("loop " + id + ": certified but never audited");
      continue;
    }
    const LoopAudit& a = *it->second;
    if (rankOf(c.verdict) != rankOf(a.verdict)) {
      disagreements.push_back(
          "loop " + id + ": certify says " +
          std::string(certifyVerdictName(c.verdict)) + " but audit says " +
          std::string(auditVerdictName(a.verdict)));
    }
  }
  for (const LoopAudit& a : audit.loops) {
    bool found = false;
    for (const LoopCertificate& c : cert.loops) found |= c.loop == a.loop;
    if (!found)
      disagreements.push_back("loop " + (a.loop ? a.loop->loop_id : "?") +
                              ": audited but never certified");
  }
  (void)program;
  return disagreements;
}

}  // namespace padfa
