// Deterministic DOT and JSON renderings of the program dependence graph.
//
// Node uids are "<proc>:<node-id>" with node ids in AST pre-order, and
// variables are identified by Sema's program-wide uids — no pointers, no
// hashes, so byte-identical output across runs is the contract (and the
// golden tests hold it).
#include <sstream>

#include "pdg/pdg.h"

namespace padfa {

namespace {

std::string escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string clip(std::string s, size_t limit = 48) {
  if (s.size() > limit) {
    s.resize(limit - 3);
    s += "...";
  }
  return s;
}

std::string uidOf(const ProcPdg& p, uint32_t node,
                  const Program& program) {
  return std::string(program.interner.str(p.proc->name)) + ":" +
         std::to_string(node);
}

std::string_view branchName(CtrlBranch b) {
  switch (b) {
    case CtrlBranch::None: return "";
    case CtrlBranch::Then: return "then";
    case CtrlBranch::Else: return "else";
    case CtrlBranch::Body: return "body";
  }
  return "";
}

}  // namespace

std::string pdgNodeLabel(const CfgNode& n, const Program& program) {
  const Interner& in = program.interner;
  switch (n.kind) {
    case CfgNodeKind::Entry: return "entry";
    case CfgNodeKind::Exit: return "exit";
    case CfgNodeKind::Decl: {
      std::string s = "decl ";
      s += n.decl ? std::string(in.str(n.decl->name)) : "?";
      if (n.decl && n.decl->isArray())
        s += "[" + std::to_string(n.decl->rank()) + "d]";
      return s;
    }
    case CfgNodeKind::Assign: {
      const auto& as = static_cast<const AssignStmt&>(*n.stmt);
      return clip(exprToString(*as.target, in) + " = " +
                  exprToString(*as.value, in));
    }
    case CfgNodeKind::Branch: {
      const auto& i = static_cast<const IfStmt&>(*n.stmt);
      return clip("if " + exprToString(*i.cond, in));
    }
    case CfgNodeKind::LoopHead: {
      const auto& f = static_cast<const ForStmt&>(*n.stmt);
      return "for " + f.loop_id;
    }
    case CfgNodeKind::Call: {
      const auto& c = static_cast<const CallStmt&>(*n.stmt);
      return "call " + std::string(in.str(c.callee));
    }
    case CfgNodeKind::Return: return "return";
  }
  return "?";
}

std::string pdgToDot(const ProgramPdg& pdg, const Program& program) {
  std::ostringstream os;
  os << "digraph pdg {\n"
     << "  rankdir=TB;\n"
     << "  node [shape=box, fontsize=10];\n";
  size_t cluster = 0;
  for (const ProcPdg& p : pdg.procs) {
    std::string pname(program.interner.str(p.proc->name));
    os << "  subgraph cluster_" << cluster++ << " {\n"
       << "    label=\"" << escaped(pname) << "\";\n";
    for (const CfgNode& n : p.cfg.nodes) {
      os << "    \"" << escaped(uidOf(p, n.id, program)) << "\" [label=\""
         << escaped(pdgNodeLabel(n, program));
      if (n.loc.valid()) os << "\\n@" << n.loc.line;
      os << "\"];\n";
    }
    for (const PdgEdge& e : p.edges) {
      os << "    \"" << escaped(uidOf(p, e.src, program)) << "\" -> \""
         << escaped(uidOf(p, e.dst, program)) << "\" [";
      if (e.kind == PdgEdgeKind::Control) {
        os << "style=dashed, color=gray40";
        if (e.branch != CtrlBranch::None)
          os << ", label=\"" << branchName(e.branch) << "\"";
      } else {
        std::string label(pdgEdgeKindName(e.kind));
        if (e.var)
          label += " " + std::string(program.interner.str(e.var->name));
        if (e.carried) {
          label += e.distance ? (" d=" + std::to_string(*e.distance))
                              : " d=+";
        }
        if (e.approx) label += " ?";
        os << "label=\"" << escaped(label) << "\"";
        if (e.kind == PdgEdgeKind::Anti) os << ", style=dotted";
        if (e.kind == PdgEdgeKind::Output) os << ", color=gray25";
        if (e.carried) os << ", penwidth=2, color=red3";
      }
      os << "];\n";
    }
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

std::string pdgToJson(const ProgramPdg& pdg, const Program& program) {
  std::ostringstream os;
  os << "{\n  \"procs\": [\n";
  for (size_t pi = 0; pi < pdg.procs.size(); ++pi) {
    const ProcPdg& p = pdg.procs[pi];
    os << "    {\n      \"name\": \""
       << escaped(program.interner.str(p.proc->name)) << "\",\n"
       << "      \"nodes\": [\n";
    for (size_t ni = 0; ni < p.cfg.nodes.size(); ++ni) {
      const CfgNode& n = p.cfg.nodes[ni];
      os << "        {\"uid\": \"" << escaped(uidOf(p, n.id, program))
         << "\", \"kind\": \"" << cfgNodeKindName(n.kind) << "\", \"line\": "
         << n.loc.line << ", \"label\": \""
         << escaped(pdgNodeLabel(n, program)) << "\"}"
         << (ni + 1 < p.cfg.nodes.size() ? "," : "") << "\n";
    }
    os << "      ],\n      \"edges\": [\n";
    for (size_t ei = 0; ei < p.edges.size(); ++ei) {
      const PdgEdge& e = p.edges[ei];
      os << "        {\"src\": \"" << escaped(uidOf(p, e.src, program))
         << "\", \"dst\": \"" << escaped(uidOf(p, e.dst, program))
         << "\", \"kind\": \"" << pdgEdgeKindName(e.kind) << "\"";
      if (e.kind == PdgEdgeKind::Control) {
        if (e.branch != CtrlBranch::None)
          os << ", \"branch\": \"" << branchName(e.branch) << "\"";
      } else {
        if (e.var)
          os << ", \"var\": \""
             << escaped(program.interner.str(e.var->name))
             << "\", \"var_uid\": " << e.var->uid;
        os << ", \"carried\": " << (e.carried ? "true" : "false");
        if (e.carrier)
          os << ", \"carrier\": \"" << escaped(e.carrier->loop_id) << "\"";
        if (e.distance) os << ", \"distance\": " << *e.distance;
        os << ", \"exact\": " << (e.exact ? "true" : "false")
           << ", \"approx\": " << (e.approx ? "true" : "false");
      }
      os << "}" << (ei + 1 < p.edges.size() ? "," : "") << "\n";
    }
    os << "      ]\n    }" << (pi + 1 < pdg.procs.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"stats\": {\"nodes\": " << pdg.stats.nodes
     << ", \"control\": " << pdg.stats.control
     << ", \"flow\": " << pdg.stats.flow << ", \"anti\": " << pdg.stats.anti
     << ", \"output\": " << pdg.stats.output
     << ", \"carried\": " << pdg.stats.carried
     << ", \"pairs_tested\": " << pdg.stats.conflict_pairs_tested
     << ", \"dataflow_sweeps\": " << pdg.stats.dataflow_sweeps << "}\n}\n";
  return os.str();
}

}  // namespace padfa
