// Generic basic-block fixpoint data-flow engine (monotone framework).
//
// Modeled on the classic worklist-free iterate-to-fixpoint engines (cf.
// dg's BBlockDataFlowAnalysis): blocks are visited in reverse post-order
// (forward problems) or reverse RPO (backward problems), repeatedly,
// until one full sweep changes nothing. For reducible structured CFGs —
// which is all MF can produce — this converges in loop-nest-depth + 1
// sweeps.
//
// The Domain policy supplies the lattice and transfer:
//
//   struct Domain {
//     using Fact = ...;                       // lattice element
//     static constexpr bool kForward = ...;   // direction
//     Fact boundary() const;     // fact at entry (fwd) / exit (bwd)
//     Fact initial() const;      // optimistic initial fact for others
//     bool merge(Fact& into, const Fact& from) const;  // confluence; true
//                                                      // iff `into` grew
//     Fact transfer(const BasicBlock&, Fact in) const; // whole-block
//   };
//
// The engine can be asked to ignore a set of CFG edges at merge points
// (`skip_edges`, block-id pairs). Passing one loop's back edges computes
// the solution "as if loop L did not iterate": a definition that reaches
// a use in the full solution but not in the L-skipping one is carried by
// L specifically — the per-loop classification the PDG builder needs
// (ignoring ALL back edges at once cannot attribute a dependence to the
// right loop in a nest).
#pragma once

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "pdg/cfg.h"

namespace padfa {

struct DataflowStats {
  size_t blocks = 0;
  size_t sweeps = 0;      // full passes over the block order
  size_t transfers = 0;   // runOnBlock applications
};

/// CFG edges (block-id pairs) an analysis run should pretend don't exist.
using EdgeSet = std::set<std::pair<uint32_t, uint32_t>>;

/// All loop back edges — skipping them yields the acyclic solution.
EdgeSet allBackEdges(const ProcCfg& cfg);
/// Back edges of one specific loop (those targeting its header block).
EdgeSet backEdgesOf(const ProcCfg& cfg, const ForStmt* loop);

template <typename Domain>
class BlockDataflow {
 public:
  using Fact = typename Domain::Fact;

  BlockDataflow(const ProcCfg& cfg, Domain domain, EdgeSet skip_edges = {})
      : cfg_(cfg), domain_(std::move(domain)),
        skip_(std::move(skip_edges)) {}

  void run() {
    const size_t nblocks = cfg_.blocks.size();
    in_.assign(nblocks, domain_.initial());
    out_.assign(nblocks, domain_.initial());
    stats_ = {};
    stats_.blocks = nblocks;

    // Visit order: RPO for forward problems, reverse RPO for backward.
    std::vector<uint32_t> order = cfg_.rpo;
    if (!Domain::kForward) std::reverse(order.begin(), order.end());

    bool changed = true;
    while (changed) {
      changed = false;
      ++stats_.sweeps;
      for (uint32_t b : order) {
        Fact fact = boundaryOrMeet(b);
        (Domain::kForward ? in_ : out_)[b] = fact;
        Fact res = domain_.transfer(cfg_.blocks[b], std::move(fact));
        ++stats_.transfers;
        Fact& slot = (Domain::kForward ? out_ : in_)[b];
        if (!(res == slot)) {
          slot = std::move(res);
          changed = true;
        }
      }
    }
  }

  /// Fact at block entry (forward: meet over preds; backward: result).
  const Fact& inOf(uint32_t block) const { return in_[block]; }
  /// Fact at block exit (forward: result; backward: meet over succs).
  const Fact& outOf(uint32_t block) const { return out_[block]; }

  const DataflowStats& stats() const { return stats_; }
  const Domain& domain() const { return domain_; }

 private:
  Fact boundaryOrMeet(uint32_t b) {
    if (Domain::kForward) {
      if (b == cfg_.entry_block) return domain_.boundary();
      Fact fact = domain_.initial();
      for (uint32_t p : cfg_.blocks[b].preds) {
        if (skip_.count({p, b})) continue;
        domain_.merge(fact, out_[p]);
      }
      return fact;
    }
    if (b == cfg_.exit_block) return domain_.boundary();
    Fact fact = domain_.initial();
    for (uint32_t s : cfg_.blocks[b].succs) {
      if (skip_.count({b, s})) continue;
      domain_.merge(fact, in_[s]);
    }
    return fact;
  }

  const ProcCfg& cfg_;
  Domain domain_;
  EdgeSet skip_;
  std::vector<Fact> in_, out_;
  DataflowStats stats_;
};

/// A dense bitset fact — the lattice element both shipped clients use.
class BitFact {
 public:
  BitFact() = default;
  explicit BitFact(size_t nbits) : words_((nbits + 63) / 64, 0) {}

  void set(size_t i) { words_[i / 64] |= uint64_t(1) << (i % 64); }
  void clear(size_t i) { words_[i / 64] &= ~(uint64_t(1) << (i % 64)); }
  bool test(size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1;
  }
  /// Union; returns true iff this grew.
  bool unionWith(const BitFact& o) {
    bool grew = false;
    for (size_t w = 0; w < words_.size() && w < o.words_.size(); ++w) {
      uint64_t nv = words_[w] | o.words_[w];
      grew |= nv != words_[w];
      words_[w] = nv;
    }
    return grew;
  }
  void subtract(const BitFact& o) {
    for (size_t w = 0; w < words_.size() && w < o.words_.size(); ++w)
      words_[w] &= ~o.words_[w];
  }
  bool operator==(const BitFact&) const = default;

 private:
  std::vector<uint64_t> words_;
};

}  // namespace padfa
