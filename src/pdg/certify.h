// PDG <-> plan cross-certification: the third verification leg
// (DESIGN.md §11), alongside the static PlanAuditor and the dynamic race
// oracle.
//
// For every loop the analysis planned Parallel, RuntimeTest, or
// Doacross, the certifier collects the PDG's loop-carried data edges
// whose carrier is that loop and checks that each one is discharged by
// the plan's own declarations: array edges by privatization, (for
// RuntimeTest plans) by the derived run-time test, or (for Doacross
// plans) by a declared (source, sink, distance) sync requirement;
// scalar edges by privatization / copy-out / reduction declarations.
//
// Verdict discipline mirrors the auditor's exactly, by construction:
//
//   Certified      — every carried edge discharged without the test
//   CertifiedTest  — some edge needed the run-time test
//   CertifiedSync  — some edge is enforced by a declared sync
//   Inconclusive   — an undischarged edge exists but is approximate
//                    (coarse modeling / scalar may-dep) — the race
//                    oracle cross-examines, same as audit Inconclusive
//   Disagree       — an undischarged EXACT carried array edge on a
//                    Parallel/Doacross plan: the graph contradicts the
//                    plan
//
// The three-way agreement invariant the corpus sweep asserts:
//   certify(L) == Disagree  <=>  audit(L) == Unsound
// and a clean analysis produces neither.
#pragma once

#include <string>
#include <vector>

#include "audit/plan_audit.h"
#include "ir/region.h"
#include "pdg/pdg.h"

namespace padfa {

enum class CertifyVerdict : uint8_t {
  Certified,
  CertifiedTest,
  CertifiedSync,
  Inconclusive,
  Disagree,
};

std::string_view certifyVerdictName(CertifyVerdict v);

struct LoopCertificate {
  const ForStmt* loop = nullptr;
  const ProcDecl* proc = nullptr;
  LoopStatus status = LoopStatus::Sequential;
  CertifyVerdict verdict = CertifyVerdict::Certified;
  size_t carried_edges = 0;      // carried data edges with this carrier
  size_t discharged_plan = 0;    // by privatization/reduction declarations
  size_t discharged_test = 0;    // by the run-time test
  size_t discharged_sync = 0;    // by a declared sync requirement
  size_t undischarged_exact = 0;
  size_t undischarged_approx = 0;
  std::vector<std::string> notes;
};

struct CertifyReport {
  std::vector<LoopCertificate> loops;

  size_t count(CertifyVerdict v) const;
  bool clean() const { return count(CertifyVerdict::Disagree) == 0; }
};

/// Certify every Parallel / RuntimeTest / Doacross plan against the PDG.
/// The report covers exactly the loops auditPlans() audits, in the same
/// order.
CertifyReport certifyPlans(const Program& program,
                           const AnalysisResult& analysis,
                           const LoopTree& loops, const ProgramPdg& pdg);

/// Cross-check a certification report against an audit report of the
/// same program (pairing loops by ForStmt). Returns human-readable
/// descriptions of verdict disagreements — an empty vector is the
/// three-way agreement invariant holding.
std::vector<std::string> crossCheckCertification(const Program& program,
                                                 const CertifyReport& cert,
                                                 const AuditReport& audit);

}  // namespace padfa
