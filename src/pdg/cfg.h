// Statement-level control-flow graph of one MF procedure.
//
// MF is fully structured (if/for/block, no goto), so the AST already
// determines control flow; this module materializes it as an explicit
// graph of atomic nodes grouped into basic blocks, because the fixpoint
// data-flow engine (dataflow.h) and its clients (reaching definitions,
// liveness) want a graph, not a tree.
//
// Nodes are "program points": one per declaration (MF hoists
// declarations to block entry and zero-fills, so a declaration *is* a
// definition), assignment, call, return, if-condition and for-header.
// A for-header node re-evaluates bounds and defines the index variable
// on every iteration; the back edge from the body's exits to the header
// is recorded in `back_edges` so analyses can distinguish
// iteration-crossing paths from straight-line ones.
//
// Determinism: node ids are assigned in AST pre-order, so every id (and
// everything derived from it, including PDG exports) is stable across
// runs and independent of pointer values.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lang/ast.h"

namespace padfa {

enum class CfgNodeKind : uint8_t {
  Entry,     // procedure entry (defines parameters)
  Exit,      // procedure exit
  Decl,      // hoisted declaration (zero fill / initializer)
  Assign,    // assignment statement
  Branch,    // if-condition evaluation
  LoopHead,  // for-header: bounds evaluation + index definition
  Call,      // procedure call (or sink)
  Return,    // return statement
};

std::string_view cfgNodeKindName(CfgNodeKind k);

/// Which branch of the control parent a node hangs off.
enum class CtrlBranch : uint8_t { None, Then, Else, Body };

inline constexpr uint32_t kNoNode = ~0u;

struct CfgNode {
  uint32_t id = 0;
  CfgNodeKind kind = CfgNodeKind::Entry;
  const Stmt* stmt = nullptr;     // null for Entry/Exit/Decl
  const VarDecl* decl = nullptr;  // Decl nodes only
  SourceLoc loc;
  /// Variables defined / used at this point. Array writes are *weak*
  /// definitions (they never kill). Order: first occurrence, deduped.
  std::vector<const VarDecl*> defs;
  std::vector<const VarDecl*> uses;
  /// Innermost enclosing loop statement (of this procedure), if any.
  const ForStmt* loop = nullptr;
  /// Control parent: the Branch/LoopHead node that decides whether this
  /// node executes, or the Entry node for top-level statements.
  uint32_t ctrl_parent = kNoNode;
  CtrlBranch ctrl_branch = CtrlBranch::None;
  /// Owning basic block (filled by block formation).
  uint32_t block = 0;
};

struct BasicBlock {
  uint32_t id = 0;
  std::vector<uint32_t> nodes;  // CfgNode ids, execution order
  std::vector<uint32_t> succs;
  std::vector<uint32_t> preds;
};

/// CFG of one procedure.
struct ProcCfg {
  const ProcDecl* proc = nullptr;
  std::vector<CfgNode> nodes;
  std::vector<BasicBlock> blocks;
  uint32_t entry_node = 0;
  uint32_t exit_node = 0;
  uint32_t entry_block = 0;
  uint32_t exit_block = 0;
  /// Loop back edges at block granularity (from-block, to-block).
  std::vector<std::pair<uint32_t, uint32_t>> back_edges;
  /// Blocks in reverse post-order from the entry (forward analyses
  /// iterate this; backward analyses iterate it reversed).
  std::vector<uint32_t> rpo;

  const CfgNode* nodeFor(const Stmt* s) const {
    auto it = by_stmt.find(s);
    return it == by_stmt.end() ? nullptr : &nodes[it->second];
  }
  bool isBackEdge(uint32_t from, uint32_t to) const;

  std::map<const Stmt*, uint32_t> by_stmt;

  /// Recompute rpo from blocks/succs (exposed for hand-built test CFGs).
  void computeRpo();
};

/// Build the CFG of `proc`. Sema must have run (decl cross-references).
ProcCfg buildCfg(const Program& program, const ProcDecl& proc);

}  // namespace padfa
