#include "pdg/slice.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace padfa {

bool parseSliceCriterion(const std::string& spec, SliceCriterion& out,
                         std::string& err) {
  auto colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    err = "malformed slice criterion '" + spec +
          "' (expected <line>:<var>, e.g. 12:sum)";
    return false;
  }
  std::string line_part = spec.substr(0, colon);
  for (char c : line_part) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      err = "malformed slice criterion '" + spec +
            "': line number '" + line_part + "' is not a positive integer";
      return false;
    }
  }
  out.line = static_cast<uint32_t>(std::stoul(line_part));
  out.var = spec.substr(colon + 1);
  if (out.line == 0) {
    err = "malformed slice criterion '" + spec + "': lines are 1-based";
    return false;
  }
  return true;
}

namespace {

bool refsVar(const std::vector<const VarDecl*>& vars, const Program& program,
             const std::string& name) {
  for (const VarDecl* d : vars)
    if (program.interner.str(d->name) == name) return true;
  return false;
}

const VarDecl* findVar(const std::vector<const VarDecl*>& vars,
                       const Program& program, const std::string& name) {
  for (const VarDecl* d : vars)
    if (program.interner.str(d->name) == name) return d;
  return nullptr;
}

}  // namespace

bool computeSlice(const ProgramPdg& pdg, const Program& program,
                  const SliceCriterion& criterion, SliceResult& out,
                  std::string& err) {
  // Resolve the criterion: the first node on that line referencing the
  // variable (definitions preferred over uses, then lowest node id —
  // deterministic).
  const ProcPdg* proc = nullptr;
  const CfgNode* node = nullptr;
  const VarDecl* var = nullptr;
  for (const ProcPdg& p : pdg.procs) {
    for (const CfgNode& n : p.cfg.nodes) {
      if (n.loc.line != criterion.line) continue;
      if (const VarDecl* d = findVar(n.defs, program, criterion.var)) {
        proc = &p;
        node = &n;
        var = d;
        break;
      }
      if (!node) {
        if (const VarDecl* d = findVar(n.uses, program, criterion.var)) {
          proc = &p;
          node = &n;
          var = d;
        }
      }
    }
    if (node && refsVar(node->defs, program, criterion.var)) break;
  }
  if (!node) {
    err = "no statement at line " + std::to_string(criterion.line) +
          " references '" + criterion.var + "'";
    return false;
  }

  // Reverse adjacency over flow + control edges of the criterion's
  // procedure. The first hop out of the criterion node is restricted to
  // the criterion variable when it is only used there.
  const bool var_defined_here =
      std::find(node->defs.begin(), node->defs.end(), var) !=
      node->defs.end();
  std::vector<std::vector<uint32_t>> rev(proc->cfg.nodes.size());
  for (const PdgEdge& e : proc->edges) {
    if (e.kind != PdgEdgeKind::Flow && e.kind != PdgEdgeKind::Control)
      continue;
    if (e.dst == node->id && e.kind == PdgEdgeKind::Flow &&
        !var_defined_here && e.var != var)
      continue;
    rev[e.dst].push_back(e.src);
  }

  std::set<uint32_t> visited;
  std::vector<uint32_t> work{node->id};
  visited.insert(node->id);
  while (!work.empty()) {
    uint32_t n = work.back();
    work.pop_back();
    for (uint32_t p : rev[n])
      if (visited.insert(p).second) work.push_back(p);
  }

  out.proc = proc;
  out.criterion_node = node->id;
  out.var = var;
  out.nodes.assign(visited.begin(), visited.end());
  std::set<uint32_t> lines;
  for (uint32_t n : out.nodes) {
    const CfgNode& cn = proc->cfg.nodes[n];
    if (cn.kind == CfgNodeKind::Entry || cn.kind == CfgNodeKind::Exit)
      continue;
    if (cn.loc.valid()) lines.insert(cn.loc.line);
  }
  out.lines.assign(lines.begin(), lines.end());
  return true;
}

}  // namespace padfa
