// Program Dependence Graph: the data/control dependences the analysis
// proves, materialized as an explicit per-procedure graph (DESIGN.md §11).
//
// Nodes are the statement-level CFG nodes (cfg.h). Edges:
//
//  * Control — from the if-condition / for-header (or procedure entry)
//    that decides whether a node executes, labeled with the branch.
//  * Flow / Anti / Output — data dependences, from two sources:
//      - reaching definitions (reaching.h): def->use flow edges; scalar
//        edges are kill-exact, array edges are subscript-blind may-deps
//        (`approx`) and never claim to be loop-carried;
//      - the shared Presburger conflict systems (audit/loop_conflicts.h):
//        loop-carried array dependences per loop, with a constant
//        iteration `distance` when the conflict system forces one and
//        `exact` when both accesses were modeled exactly. These are the
//        only edges the PDG<->auditor cross-certification (certify.h)
//        treats as disqualifying evidence.
//    Scalar anti/output dependences carried by a loop are emitted from
//    the assigned/used sets (may-deps; privatization discharges them).
//
// Determinism: node ids are AST pre-order, edges are sorted by a total
// order over (src, dst, kind, variable sema-uid, carrier loop id), so
// DOT/JSON exports are byte-stable across runs and address layouts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/region.h"
#include "pdg/cfg.h"
#include "pdg/dataflow.h"

namespace padfa {

enum class PdgEdgeKind : uint8_t { Control, Flow, Anti, Output };

std::string_view pdgEdgeKindName(PdgEdgeKind k);

struct PdgEdge {
  uint32_t src = 0;
  uint32_t dst = 0;
  PdgEdgeKind kind = PdgEdgeKind::Flow;
  /// The variable carrying a data dependence (null for control edges).
  const VarDecl* var = nullptr;
  /// Loop-carried? Array carried edges come only from the Presburger
  /// conflict systems; scalar carried edges from reaching definitions
  /// (flow) and assigned/used sets (anti/output).
  bool carried = false;
  const ForStmt* carrier = nullptr;  // the carrying loop (carried only)
  /// Constant iteration distance, when the conflict system forces one.
  std::optional<int64_t> distance;
  /// Dependence existence modeled exactly (affine subscripts, exact
  /// context). Only conflict-system edges can be exact.
  bool exact = false;
  /// Subscript-blind array may-dependence from reaching definitions.
  bool approx = false;
  /// Branch label for control edges.
  CtrlBranch branch = CtrlBranch::None;
};

struct PdgStats {
  size_t nodes = 0;
  size_t control = 0, flow = 0, anti = 0, output = 0;
  size_t carried = 0;
  size_t conflict_pairs_tested = 0;
  size_t dataflow_sweeps = 0;  // fixpoint sweeps across all procedures
};

struct ProcPdg {
  const ProcDecl* proc = nullptr;
  ProcCfg cfg;
  /// Sorted deterministically (see header comment).
  std::vector<PdgEdge> edges;
};

struct ProgramPdg {
  std::vector<ProcPdg> procs;  // program order
  PdgStats stats;

  const ProcPdg* forProc(const ProcDecl* proc) const;
};

/// Build the whole-program PDG. Sema must have run; `loops` is the loop
/// forest the carried-dependence scans iterate over.
ProgramPdg buildPdg(const Program& program, const LoopTree& loops);

/// Is CFG node `n` (transitively) inside loop `loop`?
bool nodeInLoop(const CfgNode& n, const ForStmt* loop, const LoopTree& loops);

/// Deterministic DOT rendering of the whole-program PDG.
std::string pdgToDot(const ProgramPdg& pdg, const Program& program);

/// Deterministic JSON rendering (nodes keyed by "proc:index" uids, vars
/// by sema uids).
std::string pdgToJson(const ProgramPdg& pdg, const Program& program);

/// One-line node label for exports and slice listings.
std::string pdgNodeLabel(const CfgNode& n, const Program& program);

}  // namespace padfa
