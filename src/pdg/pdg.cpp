#include "pdg/pdg.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "audit/loop_conflicts.h"
#include "pdg/reaching.h"

namespace padfa {

std::string_view pdgEdgeKindName(PdgEdgeKind k) {
  switch (k) {
    case PdgEdgeKind::Control: return "control";
    case PdgEdgeKind::Flow: return "flow";
    case PdgEdgeKind::Anti: return "anti";
    case PdgEdgeKind::Output: return "output";
  }
  return "?";
}

const ProcPdg* ProgramPdg::forProc(const ProcDecl* proc) const {
  for (const ProcPdg& p : procs)
    if (p.proc == proc) return &p;
  return nullptr;
}

bool nodeInLoop(const CfgNode& n, const ForStmt* loop, const LoopTree& loops) {
  for (const ForStmt* cur = n.loop; cur;) {
    if (cur == loop) return true;
    const LoopNode* ln = loops.nodeFor(cur);
    cur = (ln && ln->parent) ? ln->parent->loop : nullptr;
  }
  return false;
}

namespace {

class PdgBuilder {
 public:
  PdgBuilder(const Program& program, const LoopTree& loops, PdgStats& stats)
      : program_(program), loops_(loops), stats_(stats) {}

  ProcPdg build(const ProcDecl& proc) {
    ProcPdg out;
    out.proc = &proc;
    out.cfg = buildCfg(program_, proc);
    cfg_ = &out.cfg;
    edges_.clear();

    addControlEdges();
    addReachingFlowEdges(proc);
    for (const LoopNode* ln : loops_.allLoops())
      if (ln->proc == &proc) addCarriedEdges(*ln);

    for (auto& [key, e] : edges_) out.edges.push_back(e);
    stats_.nodes += out.cfg.nodes.size();
    for (const PdgEdge& e : out.edges) {
      switch (e.kind) {
        case PdgEdgeKind::Control: ++stats_.control; break;
        case PdgEdgeKind::Flow: ++stats_.flow; break;
        case PdgEdgeKind::Anti: ++stats_.anti; break;
        case PdgEdgeKind::Output: ++stats_.output; break;
      }
      if (e.carried) ++stats_.carried;
    }
    return out;
  }

 private:
  // Total order on edges; doubles as the dedup key. Carrier loops are
  // keyed by their stable Sema loop_id, never by pointer.
  using Key = std::tuple<uint32_t, uint32_t, int, uint64_t, std::string>;

  Key keyOf(const PdgEdge& e) const {
    return {e.src, e.dst, static_cast<int>(e.kind),
            e.var ? uint64_t(e.var->uid) + 1 : 0,
            e.carrier ? e.carrier->loop_id : std::string()};
  }

  void addEdge(PdgEdge e) {
    auto [it, inserted] = edges_.emplace(keyOf(e), e);
    if (inserted) return;
    PdgEdge& old = it->second;
    // Several access pairs can induce the same (src, dst, var, carrier)
    // edge: one exact witness makes the dependence definite, and the
    // distance survives only if every witness agrees on it.
    old.exact |= e.exact;
    old.approx &= e.approx;
    if (old.distance != e.distance) old.distance.reset();
  }

  void addControlEdges() {
    for (const CfgNode& n : cfg_->nodes) {
      if (n.ctrl_parent == kNoNode || n.kind == CfgNodeKind::Exit) continue;
      PdgEdge e;
      e.src = n.ctrl_parent;
      e.dst = n.id;
      e.kind = PdgEdgeKind::Control;
      e.branch = n.ctrl_branch;
      addEdge(e);
    }
  }

  void addReachingFlowEdges(const ProcDecl& proc) {
    ReachingDefs full(*cfg_);
    full.run();
    ReachingDefs acyclic(*cfg_, allBackEdges(*cfg_));
    acyclic.run();
    stats_.dataflow_sweeps += full.stats().sweeps + acyclic.stats().sweeps;

    // One extra solution per loop, skipping only that loop's back edges:
    // a def->use pair the full solution reaches but the L-skipping one
    // does not is carried by L *specifically*. (The all-back-edges
    // solution alone cannot attribute a dependence to the right loop:
    // a scalar accumulated by an inner loop and read afterwards would
    // look carried by the outer loop too.)
    std::vector<std::pair<const ForStmt*, ReachingDefs>> per_loop;
    for (const LoopNode* ln : loops_.allLoops()) {
      if (ln->proc != &proc) continue;
      per_loop.emplace_back(ln->loop,
                            ReachingDefs(*cfg_, backEdgesOf(*cfg_, ln->loop)));
      per_loop.back().second.run();
      stats_.dataflow_sweeps += per_loop.back().second.stats().sweeps;
    }

    for (const CfgNode& n : cfg_->nodes) {
      for (const VarDecl* use : n.uses) {
        for (uint32_t def = 0; def < full.numDefs(); ++def) {
          if (full.defVar(def) != use) continue;
          if (!full.reachingIn(n.id).test(def)) continue;
          PdgEdge e;
          e.src = full.defNode(def);
          e.dst = n.id;
          e.kind = PdgEdgeKind::Flow;
          e.var = use;
          if (use->isArray()) {
            // Subscript-blind array may-dep: usable for slicing, but it
            // must never claim "loop-carried" — that verdict belongs to
            // the conflict systems, which can *disprove* it.
            e.approx = true;
            addEdge(e);
            continue;
          }
          // Loop-independent edge when the def reaches without any back
          // edge; one carried edge per loop whose iteration the value
          // demonstrably crosses.
          if (acyclic.reachingIn(n.id).test(def)) addEdge(e);
          for (auto& [loop, rd] : per_loop) {
            if (rd.reachingIn(n.id).test(def)) continue;
            PdgEdge c = e;
            c.carried = true;
            c.carrier = loop;
            addEdge(c);
          }
        }
      }
    }
  }

  /// Loop-carried dependences of one loop, from the shared Presburger
  /// conflict systems (arrays) and assigned-scalar sets (scalars).
  void addCarriedEdges(const LoopNode& ln) {
    LoopConflictScanner scanner(program_, ln.loop, ln.proc);
    scanner.scan();
    // Exactness matches the auditor's Unsound discipline: the loop's own
    // bounds plus both accesses modeled exactly. (Access-cap overflow
    // hides *other* accesses; it does not weaken a found pair.)
    const bool loop_exact = scanner.loopExact();
    const auto& acc = scanner.accesses();

    for (size_t i = 0; i < acc.size(); ++i) {
      for (size_t j = i; j < acc.size(); ++j) {
        const ConflictAccess& a = acc[i];
        const ConflictAccess& b = acc[j];
        if (a.root != b.root || (!a.write && !b.write)) continue;
        auto eq = LoopConflictScanner::pairEq(a, b);
        bool exact =
            LoopConflictScanner::pairExactly(a, b, eq) && loop_exact;
        tryCarried(scanner, a, b, eq, exact, ln.loop);
        if (i != j) tryCarried(scanner, b, a, eq, exact, ln.loop);
      }
    }

    addScalarCarried(scanner, ln.loop);
  }

  void tryCarried(LoopConflictScanner& scanner, const ConflictAccess& a,
                  const ConflictAccess& b, LoopConflictScanner::PairEq eq,
                  bool exact, const ForStmt* loop) {
    ++stats_.conflict_pairs_tested;
    auto geo = scanner.geometry(a, b, eq);
    if (!geo.feasible) return;
    // Anchors are statements of the audited procedure; the rare access
    // with no own CFG node (e.g. evaluated by a hoisted declaration in a
    // nested bare block) is attributed to the loop header rather than
    // dropped — certification must never lose a carried dependence.
    const CfgNode* sn = cfg_->nodeFor(a.anchor);
    const CfgNode* dn = cfg_->nodeFor(b.anchor);
    if (!sn) sn = cfg_->nodeFor(loop);
    if (!dn) dn = cfg_->nodeFor(loop);
    if (!sn || !dn) return;
    PdgEdge e;
    e.src = sn->id;
    e.dst = dn->id;
    e.kind = a.write ? (b.write ? PdgEdgeKind::Output : PdgEdgeKind::Flow)
                     : PdgEdgeKind::Anti;
    e.var = a.root;
    e.carried = true;
    e.carrier = loop;
    e.distance = geo.distance;
    e.exact = exact;
    addEdge(e);
  }

  /// A scalar assigned AND read in the loop body (and not declared
  /// there, i.e. not iteration-private by scoping) induces carried
  /// output and anti dependences; one representative edge per
  /// (variable, loop) keeps the graph readable while preserving the
  /// certification signal. Write-only shared scalars follow the
  /// auditor's last-value treatment and get no edge — keeping the two
  /// scalar disciplines identical by construction.
  void addScalarCarried(const LoopConflictScanner& scanner,
                        const ForStmt* loop) {
    std::set<const VarDecl*> read_set;
    collectBodyReads(*loop->body, read_set);
    for (const VarDecl* v : scanner.bodyAssigned()) {
      if (v->isArray() || v->is_loop_index) continue;
      if (scanner.bodyDeclared().count(v)) continue;
      if (!read_set.count(v)) continue;
      const CfgNode* first_def = nullptr;
      const CfgNode* first_use = nullptr;
      for (const CfgNode& n : cfg_->nodes) {
        if (!nodeInLoop(n, loop, loops_)) continue;
        if (!first_def &&
            std::find(n.defs.begin(), n.defs.end(), v) != n.defs.end())
          first_def = &n;
        if (!first_use &&
            std::find(n.uses.begin(), n.uses.end(), v) != n.uses.end())
          first_use = &n;
      }
      if (!first_def) continue;  // assigned only inside callees
      PdgEdge out;
      out.src = out.dst = first_def->id;
      out.kind = PdgEdgeKind::Output;
      out.var = v;
      out.carried = true;
      out.carrier = loop;
      addEdge(out);
      if (first_use) {
        PdgEdge anti;
        anti.src = first_use->id;
        anti.dst = first_def->id;
        anti.kind = PdgEdgeKind::Anti;
        anti.var = v;
        anti.carried = true;
        anti.carrier = loop;
        addEdge(anti);
      }
    }
  }

  const Program& program_;
  const LoopTree& loops_;
  PdgStats& stats_;
  const ProcCfg* cfg_ = nullptr;
  std::map<Key, PdgEdge> edges_;
};

}  // namespace

ProgramPdg buildPdg(const Program& program, const LoopTree& loops) {
  ProgramPdg pdg;
  PdgBuilder builder(program, loops, pdg.stats);
  for (const auto& proc : program.procs)
    pdg.procs.push_back(builder.build(*proc));
  return pdg;
}

}  // namespace padfa
