#include "pdg/cfg.h"

#include <algorithm>
#include <set>

namespace padfa {

std::string_view cfgNodeKindName(CfgNodeKind k) {
  switch (k) {
    case CfgNodeKind::Entry: return "entry";
    case CfgNodeKind::Exit: return "exit";
    case CfgNodeKind::Decl: return "decl";
    case CfgNodeKind::Assign: return "assign";
    case CfgNodeKind::Branch: return "branch";
    case CfgNodeKind::LoopHead: return "loop";
    case CfgNodeKind::Call: return "call";
    case CfgNodeKind::Return: return "return";
  }
  return "?";
}

bool ProcCfg::isBackEdge(uint32_t from, uint32_t to) const {
  for (const auto& [f, t] : back_edges)
    if (f == from && t == to) return true;
  return false;
}

void ProcCfg::computeRpo() {
  rpo.clear();
  std::vector<uint8_t> state(blocks.size(), 0);  // 0 new, 1 open, 2 done
  // Iterative DFS (explicit stack) producing postorder, then reversed.
  std::vector<uint32_t> post;
  std::vector<std::pair<uint32_t, size_t>> stack;
  stack.emplace_back(entry_block, 0);
  state[entry_block] = 1;
  while (!stack.empty()) {
    auto& [b, i] = stack.back();
    if (i < blocks[b].succs.size()) {
      uint32_t s = blocks[b].succs[i++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      post.push_back(b);
      stack.pop_back();
    }
  }
  rpo.assign(post.rbegin(), post.rend());
}

namespace {

void addUnique(std::vector<const VarDecl*>& v, const VarDecl* d) {
  if (d && std::find(v.begin(), v.end(), d) == v.end()) v.push_back(d);
}

void addVarsOf(const Expr& e, std::vector<const VarDecl*>& out) {
  std::vector<const VarDecl*> vs;
  collectVars(e, vs);
  for (const VarDecl* d : vs) addUnique(out, d);
}

class CfgBuilder {
 public:
  explicit CfgBuilder(const ProcDecl& proc) { cfg_.proc = &proc; }

  ProcCfg build() {
    const ProcDecl& proc = *cfg_.proc;
    uint32_t entry = addNode(CfgNodeKind::Entry, nullptr, proc.loc, kNoNode,
                             CtrlBranch::None, nullptr);
    for (const auto& p : proc.params) addUnique(node(entry).defs, p.get());
    cfg_.entry_node = entry;
    frontier_ = {entry};
    buildBlock(*proc.body, entry, CtrlBranch::None, nullptr);
    uint32_t exit = addNode(CfgNodeKind::Exit, nullptr, proc.loc, entry,
                            CtrlBranch::None, nullptr);
    cfg_.exit_node = exit;
    for (uint32_t f : frontier_) connect(f, exit);
    for (uint32_t r : returns_) connect(r, exit);
    formBlocks();
    cfg_.computeRpo();
    return std::move(cfg_);
  }

 private:
  CfgNode& node(uint32_t id) { return cfg_.nodes[id]; }

  uint32_t addNode(CfgNodeKind kind, const Stmt* stmt, SourceLoc loc,
                   uint32_t ctrl_parent, CtrlBranch branch,
                   const ForStmt* loop) {
    CfgNode n;
    n.id = static_cast<uint32_t>(cfg_.nodes.size());
    n.kind = kind;
    n.stmt = stmt;
    n.loc = loc;
    n.ctrl_parent = ctrl_parent;
    n.ctrl_branch = branch;
    n.loop = loop;
    cfg_.nodes.push_back(std::move(n));
    succs_.emplace_back();
    preds_.emplace_back();
    if (stmt) cfg_.by_stmt.emplace(stmt, cfg_.nodes.back().id);
    return cfg_.nodes.back().id;
  }

  void connect(uint32_t from, uint32_t to, bool back = false) {
    succs_[from].push_back(to);
    preds_[to].push_back(from);
    if (back) node_back_.insert({from, to});
  }

  /// Append a straight-line node: all dangling exits flow into it.
  uint32_t seqNode(CfgNodeKind kind, const Stmt* stmt, SourceLoc loc,
                   uint32_t ctrl_parent, CtrlBranch branch,
                   const ForStmt* loop) {
    uint32_t n = addNode(kind, stmt, loc, ctrl_parent, branch, loop);
    for (uint32_t f : frontier_) connect(f, n);
    frontier_ = {n};
    return n;
  }

  void buildBlock(const BlockStmt& block, uint32_t ctrl, CtrlBranch branch,
                  const ForStmt* loop) {
    // Declarations are hoisted: they allocate (zero fill) and evaluate
    // initializers at block entry, before any statement runs.
    for (const auto& d : block.decls) {
      uint32_t n = seqNode(CfgNodeKind::Decl, nullptr, d->loc, ctrl, branch,
                           loop);
      node(n).decl = d.get();
      addUnique(node(n).defs, d.get());
      for (const auto& dim : d->dims) addVarsOf(*dim, node(n).uses);
      if (d->init) addVarsOf(*d->init, node(n).uses);
    }
    for (const auto& st : block.stmts) buildStmt(*st, ctrl, branch, loop);
  }

  void buildStmt(const Stmt& s, uint32_t ctrl, CtrlBranch branch,
                 const ForStmt* loop) {
    switch (s.kind) {
      case StmtKind::Assign: {
        const auto& as = static_cast<const AssignStmt&>(s);
        uint32_t n =
            seqNode(CfgNodeKind::Assign, &s, s.loc, ctrl, branch, loop);
        addVarsOf(*as.value, node(n).uses);
        if (as.target->kind == ExprKind::ArrayRef) {
          const auto& ref = static_cast<const ArrayRefExpr&>(*as.target);
          for (const auto& idx : ref.indices) addVarsOf(*idx, node(n).uses);
          addUnique(node(n).defs, ref.decl);  // weak (element) definition
        } else {
          addUnique(node(n).defs,
                    static_cast<const VarRefExpr&>(*as.target).decl);
        }
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        uint32_t cond =
            seqNode(CfgNodeKind::Branch, &s, s.loc, ctrl, branch, loop);
        addVarsOf(*i.cond, node(cond).uses);
        frontier_ = {cond};
        buildBlock(*i.then_block, cond, CtrlBranch::Then, loop);
        std::vector<uint32_t> exits = frontier_;
        if (i.else_block) {
          frontier_ = {cond};
          buildBlock(*i.else_block, cond, CtrlBranch::Else, loop);
          exits.insert(exits.end(), frontier_.begin(), frontier_.end());
        } else {
          exits.push_back(cond);  // fall-through when the condition fails
        }
        frontier_ = std::move(exits);
        break;
      }
      case StmtKind::For: {
        const auto& fo = static_cast<const ForStmt&>(s);
        uint32_t head =
            seqNode(CfgNodeKind::LoopHead, &s, s.loc, ctrl, branch, loop);
        addUnique(node(head).defs, fo.index_decl);
        addVarsOf(*fo.lower, node(head).uses);
        addVarsOf(*fo.upper, node(head).uses);
        if (fo.step) addVarsOf(*fo.step, node(head).uses);
        frontier_ = {head};
        buildBlock(*fo.body, head, CtrlBranch::Body, &fo);
        for (uint32_t f : frontier_) connect(f, head, /*back=*/true);
        frontier_ = {head};  // the not-taken exit of the header
        break;
      }
      case StmtKind::Call: {
        const auto& c = static_cast<const CallStmt&>(s);
        uint32_t n = seqNode(CfgNodeKind::Call, &s, s.loc, ctrl, branch, loop);
        for (const auto& a : c.args) {
          addVarsOf(*a, node(n).uses);
          // A whole-array argument may be written by the callee (weakly).
          if (!c.is_sink && a->kind == ExprKind::VarRef) {
            const auto& vr = static_cast<const VarRefExpr&>(*a);
            if (vr.decl && vr.decl->isArray()) addUnique(node(n).defs, vr.decl);
          }
        }
        break;
      }
      case StmtKind::Return: {
        uint32_t n =
            seqNode(CfgNodeKind::Return, &s, s.loc, ctrl, branch, loop);
        returns_.push_back(n);
        frontier_.clear();  // nothing after a return is reachable
        break;
      }
      case StmtKind::Block:
        buildBlock(static_cast<const BlockStmt&>(s), ctrl, branch, loop);
        break;
    }
  }

  // ------------------------------------------------- block formation --

  bool isLeader(uint32_t n) const {
    if (preds_[n].size() != 1) return true;
    uint32_t p = preds_[n][0];
    return succs_[p].size() != 1;
  }

  void formBlocks() {
    const size_t N = cfg_.nodes.size();
    std::vector<uint32_t> block_of(N, ~0u);
    for (uint32_t n = 0; n < N; ++n) {
      if (!isLeader(n) || block_of[n] != ~0u) continue;
      BasicBlock b;
      b.id = static_cast<uint32_t>(cfg_.blocks.size());
      uint32_t m = n;
      for (;;) {
        b.nodes.push_back(m);
        block_of[m] = b.id;
        cfg_.nodes[m].block = b.id;
        if (succs_[m].size() != 1) break;
        uint32_t t = succs_[m][0];
        if (isLeader(t) || block_of[t] != ~0u) break;
        m = t;
      }
      cfg_.blocks.push_back(std::move(b));
    }
    // Any node not yet placed (unreachable chains whose leader test never
    // fired) gets a singleton block so exports still see it.
    for (uint32_t n = 0; n < N; ++n) {
      if (block_of[n] != ~0u) continue;
      BasicBlock b;
      b.id = static_cast<uint32_t>(cfg_.blocks.size());
      b.nodes.push_back(n);
      block_of[n] = b.id;
      cfg_.nodes[n].block = b.id;
      cfg_.blocks.push_back(std::move(b));
    }
    // Block-level edges from the last node of each block.
    std::set<std::pair<uint32_t, uint32_t>> seen;
    for (auto& b : cfg_.blocks) {
      uint32_t last = b.nodes.back();
      for (uint32_t t : succs_[last]) {
        uint32_t tb = block_of[t];
        if (!seen.insert({b.id, tb}).second) continue;
        b.succs.push_back(tb);
        cfg_.blocks[tb].preds.push_back(b.id);
        if (node_back_.count({last, t})) cfg_.back_edges.emplace_back(b.id, tb);
      }
    }
    cfg_.entry_block = block_of[cfg_.entry_node];
    cfg_.exit_block = block_of[cfg_.exit_node];
  }

  ProcCfg cfg_;
  std::vector<std::vector<uint32_t>> succs_;
  std::vector<std::vector<uint32_t>> preds_;
  std::set<std::pair<uint32_t, uint32_t>> node_back_;
  std::vector<uint32_t> frontier_;
  std::vector<uint32_t> returns_;
};

}  // namespace

ProcCfg buildCfg(const Program& /*program*/, const ProcDecl& proc) {
  return CfgBuilder(proc).build();
}

}  // namespace padfa
