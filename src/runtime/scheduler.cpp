#include "runtime/scheduler.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace padfa {

const char* schedPolicyName(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::Static:
      return "static";
    case SchedPolicy::Dynamic:
      return "dynamic";
    case SchedPolicy::Guided:
      return "guided";
    case SchedPolicy::Steal:
      return "steal";
  }
  return "?";
}

SchedPolicy schedPolicyFromName(const std::string& name,
                                SchedPolicy fallback) {
  if (name == "static") return SchedPolicy::Static;
  if (name == "dynamic") return SchedPolicy::Dynamic;
  if (name == "guided") return SchedPolicy::Guided;
  if (name == "steal") return SchedPolicy::Steal;
  return fallback;
}

SchedPolicy schedPolicyFromEnv() {
  if (const char* env = std::getenv("PADFA_SCHED"))
    return schedPolicyFromName(env);
  return SchedPolicy::Steal;
}

int64_t schedChunkFromEnv() {
  if (const char* env = std::getenv("PADFA_CHUNK")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1 && v <= (1l << 30)) return v;
  }
  return 0;
}

int64_t doacrossWindowFromEnv() {
  if (const char* env = std::getenv("PADFA_DOACROSS_WINDOW")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 2 && v <= (1l << 20)) return v;
  }
  return 64;
}

uint64_t loopTripCount(const LoopRange& r) {
  if (r.step == 0) return 0;
  if (r.step > 0 ? r.lo > r.hi : r.lo < r.hi) return 0;
  uint64_t span =
      r.step > 0 ? static_cast<uint64_t>(r.hi) - static_cast<uint64_t>(r.lo)
                 : static_cast<uint64_t>(r.lo) - static_cast<uint64_t>(r.hi);
  uint64_t mag = r.step > 0 ? static_cast<uint64_t>(r.step)
                            : ~static_cast<uint64_t>(r.step) + 1;
  uint64_t count = span / mag;
  return count == UINT64_MAX ? count : count + 1;  // saturate
}

int64_t resolveChunk(uint64_t trip, int64_t requested) {
  if (requested >= 1) return requested;
  return static_cast<int64_t>(std::clamp<uint64_t>(trip / 64, 1, 4096));
}

uint64_t blockCount(uint64_t trip, int64_t chunk) {
  if (trip == 0 || chunk <= 0) return 0;
  uint64_t c = static_cast<uint64_t>(chunk);
  return trip / c + (trip % c != 0 ? 1 : 0);
}

LoopBlock blockAt(const LoopRange& r, int64_t chunk, uint64_t index) {
  LoopBlock b;
  b.index = index;
  uint64_t trip = loopTripCount(r);
  uint64_t c = static_cast<uint64_t>(chunk);
  uint64_t start = index * c;
  uint64_t n = std::min<uint64_t>(c, trip - start);
  b.first_ordinal = static_cast<int64_t>(start);
  b.iters = n;
  // lo + ordinal*step in wrapping uint64 arithmetic (exact: the result
  // lies within the int64 iteration range).
  b.first = static_cast<int64_t>(static_cast<uint64_t>(r.lo) +
                                 start * static_cast<uint64_t>(r.step));
  b.last = static_cast<int64_t>(static_cast<uint64_t>(r.lo) +
                                (start + n - 1) *
                                    static_cast<uint64_t>(r.step));
  return b;
}

namespace {

/// Per-worker deque of blocks for the steal policy, stored as a
/// half-open index range [lo, hi): the owner pops from the front
/// (lowest block), thieves take the upper half from the back.
struct StealDeque {
  std::mutex mu;
  uint64_t lo = 0;
  uint64_t hi = 0;
};

}  // namespace

void runBlocks(ThreadPool& pool, const LoopRange& r, int64_t chunk,
               SchedPolicy policy,
               const std::function<void(unsigned, const LoopBlock&)>& body) {
  uint64_t trip = loopTripCount(r);
  uint64_t nblocks = blockCount(trip, chunk);
  if (nblocks == 0) return;
  unsigned T = pool.size();

  switch (policy) {
    case SchedPolicy::Static: {
      // Near-equal contiguous runs of blocks, low indices first.
      uint64_t base = nblocks / T, rem = nblocks % T;
      std::vector<std::pair<uint64_t, uint64_t>> runs(T);
      uint64_t at = 0;
      for (unsigned t = 0; t < T; ++t) {
        uint64_t n = base + (t < rem ? 1 : 0);
        runs[t] = {at, at + n};
        at += n;
      }
      pool.runOnAll([&](unsigned t) {
        for (uint64_t i = runs[t].first; i < runs[t].second; ++i) {
          if (pool.cancelRequested()) return;
          body(t, blockAt(r, chunk, i));
        }
      });
      return;
    }
    case SchedPolicy::Dynamic: {
      std::atomic<uint64_t> next{0};
      pool.runOnAll([&](unsigned t) {
        while (!pool.cancelRequested()) {
          uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= nblocks) return;
          body(t, blockAt(r, chunk, i));
        }
      });
      return;
    }
    case SchedPolicy::Guided: {
      std::atomic<uint64_t> next{0};
      pool.runOnAll([&](unsigned t) {
        while (!pool.cancelRequested()) {
          uint64_t cur = next.load(std::memory_order_relaxed);
          uint64_t take;
          do {
            if (cur >= nblocks) return;
            take = std::max<uint64_t>((nblocks - cur) / (2 * T), 1);
          } while (!next.compare_exchange_weak(cur, cur + take,
                                               std::memory_order_relaxed));
          for (uint64_t i = cur; i < cur + take; ++i) {
            if (pool.cancelRequested()) return;
            body(t, blockAt(r, chunk, i));
          }
        }
      });
      return;
    }
    case SchedPolicy::Steal: {
      std::vector<StealDeque> deques(T);
      {
        uint64_t base = nblocks / T, rem = nblocks % T;
        uint64_t at = 0;
        for (unsigned t = 0; t < T; ++t) {
          uint64_t n = base + (t < rem ? 1 : 0);
          deques[t].lo = at;
          deques[t].hi = at + n;
          at += n;
        }
      }
      pool.runOnAll([&](unsigned t) {
        while (!pool.cancelRequested()) {
          uint64_t i = 0;
          bool have = false;
          {
            std::lock_guard<std::mutex> lock(deques[t].mu);
            if (deques[t].lo < deques[t].hi) {
              i = deques[t].lo++;
              have = true;
            }
          }
          if (!have) {
            // Own deque empty: steal the upper half of the richest
            // victim's remaining range. One full scan with no work
            // anywhere means every block is claimed — done.
            unsigned victim = T;
            uint64_t best = 0;
            for (unsigned v = 0; v < T; ++v) {
              if (v == t) continue;
              std::lock_guard<std::mutex> lock(deques[v].mu);
              uint64_t n = deques[v].hi - deques[v].lo;
              if (n > best) {
                best = n;
                victim = v;
              }
            }
            if (victim == T) return;
            uint64_t slo = 0, shi = 0;
            {
              std::lock_guard<std::mutex> lock(deques[victim].mu);
              uint64_t n = deques[victim].hi - deques[victim].lo;
              if (n == 0) continue;  // lost the race; rescan
              uint64_t take = n - n / 2;  // upper half, rounded up
              shi = deques[victim].hi;
              slo = shi - take;
              deques[victim].hi = slo;
            }
            std::lock_guard<std::mutex> lock(deques[t].mu);
            deques[t].lo = slo;
            deques[t].hi = shi;
            continue;
          }
          body(t, blockAt(r, chunk, i));
        }
      });
      return;
    }
  }
}

}  // namespace padfa
