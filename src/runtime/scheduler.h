// Multi-policy block scheduler for parallel loop execution.
//
// The iteration space is first cut into fixed-size *blocks* of `chunk`
// consecutive iterations. The decomposition depends only on the loop
// bounds, step, and chunk — never on the thread count or the policy —
// so any per-block computation (e.g. per-block reduction partials
// combined in block-index order) is bit-identical across
// static/dynamic/guided/steal and across 1..N workers.
//
// Policies (PADFA_SCHED):
//  * static  — worker t owns a contiguous run of blocks (the SUIF-style
//    split the interpreter used before this scheduler existed).
//  * dynamic — workers claim one block at a time from a shared counter.
//  * guided  — workers claim geometrically shrinking runs of blocks
//    (remaining / 2T, min 1).
//  * steal   — per-worker deques of blocks seeded with the static
//    split; an owner pops its lowest block from the front, an idle
//    worker steals the upper half of the richest victim's deque.
//
// Ordering guarantee (Doacross execution relies on it): a worker
// executes the blocks it holds in increasing block order, and it only
// acquires new blocks while idle — never while a block is in flight.
// Consequently, whenever a worker is executing block b, every block
// still in its deque is > b; the minimal incomplete iteration is
// therefore always either executing (and its post/wait predecessors
// are complete) or at the front of an idle worker's claim, so
// cross-iteration waits can never deadlock under any policy. See
// DESIGN.md §14.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "runtime/thread_pool.h"

namespace padfa {

enum class SchedPolicy : uint8_t { Static, Dynamic, Guided, Steal };

const char* schedPolicyName(SchedPolicy p);

/// Parse a policy name ("static", "dynamic", "guided", "steal");
/// returns fallback on anything else.
SchedPolicy schedPolicyFromName(const std::string& name,
                                SchedPolicy fallback = SchedPolicy::Steal);

/// PADFA_SCHED: scheduling policy for interpreted parallel loops and
/// the analysis-level corpus fan-out. Default: steal.
SchedPolicy schedPolicyFromEnv();

/// PADFA_CHUNK: iterations per block. 0 (the default) selects the
/// automatic rule: trip/64 clamped to [1, 4096] for DOALL loops and 1
/// for Doacross loops (pipelining wants fine grain).
int64_t schedChunkFromEnv();

/// PADFA_DOACROSS_WINDOW: bound on the number of in-flight iterations
/// of a Doacross loop (iteration i may not start before iteration
/// i - window has fully completed). Default 64, clamped to >= 2. A
/// runtime knob only — plans and their signatures never depend on it.
int64_t doacrossWindowFromEnv();

/// An inclusive iteration range with stride. `step` may be negative;
/// the range is empty when it runs against the step direction.
struct LoopRange {
  int64_t lo = 0;
  int64_t hi = 0;
  int64_t step = 1;
};

/// One scheduler block: iterations `first..last` (inclusive, in step
/// direction), covering ordinals [first_ordinal, first_ordinal+iters).
struct LoopBlock {
  uint64_t index = 0;
  int64_t first = 0;
  int64_t last = 0;
  int64_t first_ordinal = 0;
  uint64_t iters = 0;
};

/// Number of iterations in `r` (0 when empty; saturates at UINT64_MAX
/// for the full-domain unit-stride range, which is unreachable through
/// the interpreter anyway).
uint64_t loopTripCount(const LoopRange& r);

/// Apply the automatic chunk rule: a requested chunk >= 1 is used as
/// is; 0 selects trip/64 clamped to [1, 4096].
int64_t resolveChunk(uint64_t trip, int64_t requested);

/// ceil(trip / chunk).
uint64_t blockCount(uint64_t trip, int64_t chunk);

/// The `index`-th block of the decomposition of `r` into `chunk`-sized
/// blocks.
LoopBlock blockAt(const LoopRange& r, int64_t chunk, uint64_t index);

/// Execute `body(worker, block)` for every block of the decomposition
/// of `r`, dispatching pool.size() workers under `policy`. Each block
/// runs exactly once; each worker sees its blocks in increasing index
/// order and acquires blocks only between executions. Exceptions from
/// `body` propagate per ThreadPool::runOnAll semantics (first wins,
/// siblings see cancelRequested()). `body` is also expected to poll
/// pool.cancelRequested() in long iterations.
void runBlocks(ThreadPool& pool, const LoopRange& r, int64_t chunk,
               SchedPolicy policy,
               const std::function<void(unsigned, const LoopBlock&)>& body);

}  // namespace padfa
