// The Extended Lazy Privatizing Doall (ELPD) run-time test.
//
// The paper determines the set of "inherently parallel" loops left behind
// by the compiler by instrumenting every array access of every candidate
// loop with shadow-array marking (Rauchwerger & Padua's LPD test, extended
// per So/Moon/Hall). After a sequential instrumented run, each loop is
// classified per input:
//   * independent  — no element is written in one iteration and accessed
//                    in another;
//   * privatizable — conflicts exist, but no iteration reads an element
//                    that an earlier iteration wrote before writing it
//                    itself (no cross-iteration flow of values);
//   * not parallel — a cross-iteration flow was observed.
//
// The collector also counts instrumented accesses: this is the run-time
// overhead an inspector/executor pays, which the paper contrasts with its
// O(#test-atoms) predicated tests (Experiment E5).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "lang/ast.h"

namespace padfa {

class ElpdCollector {
 public:
  /// Mark a loop as instrumented. Accesses are recorded only while an
  /// instrumented loop is active.
  void instrument(const ForStmt* loop) { instrumented_[loop] = {}; }
  bool isInstrumented(const ForStmt* loop) const {
    return instrumented_.count(loop) > 0;
  }

  void loopEnter(const ForStmt* loop);
  void loopIterStart(const ForStmt* loop, int64_t iter_ordinal);
  void loopExit(const ForStmt* loop);

  /// Record one element access from the interpreter. `buffer` is the
  /// identity of the underlying element buffer (shared by reshaped
  /// views), so aliased accesses are detected correctly.
  void recordAccess(const void* buffer, size_t flat_index,
                    size_t buffer_size, bool is_write);

  struct Verdict {
    bool executed = false;      // the loop ran at least one iteration
    bool conflict = false;      // some element touched by >1 iteration w/ a write
    bool flow = false;          // cross-iteration value flow observed
    uint64_t accesses = 0;      // instrumented access count (overhead proxy)

    bool independent() const { return executed && !conflict; }
    bool privatizable() const { return executed && conflict && !flow; }
    bool parallelizable() const { return executed && !flow; }
  };

  Verdict verdict(const ForStmt* loop) const;
  uint64_t totalAccesses() const { return total_accesses_; }

 private:
  struct Shadow {
    // Per element, -1 = never.
    std::vector<int64_t> first_write;
    std::vector<int64_t> last_write;
    std::vector<int64_t> any_read;  // iteration of some read, or -1
    void ensure(size_t n) {
      if (first_write.size() < n) {
        first_write.resize(n, -1);
        last_write.resize(n, -1);
        any_read.resize(n, -1);
      }
    }
  };
  struct LoopState {
    bool executed = false;
    bool conflict = false;
    bool flow = false;
    uint64_t accesses = 0;
    int64_t cur_iter = -1;
    std::map<const void*, Shadow> shadows;
  };

  std::map<const ForStmt*, LoopState> instrumented_;
  std::vector<LoopState*> active_;
  uint64_t total_accesses_ = 0;
};

}  // namespace padfa
