// Minimal persistent thread pool for parallel loop execution.
//
// The interpreter's parallel loops follow the SUIF execution model: a
// parallel region is dispatched to T workers, each executing a contiguous
// chunk of the iteration space, with a barrier at loop exit.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace padfa {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run fn(worker_index) on every worker (0..size-1) and wait for all.
  /// worker 0 runs on the calling thread. Exceptions thrown by workers
  /// are rethrown on the caller (first one wins).
  void runOnAll(const std::function<void(unsigned)>& fn);

  /// Cooperative cancellation: set automatically when any worker throws
  /// during the current runOnAll dispatch (and resettable by jobs that
  /// want to stop their siblings). Long-running jobs poll this between
  /// iterations and bail out early; the dispatch still rethrows the
  /// first error after the barrier.
  void requestCancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancelRequested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

 private:
  void workerLoop(unsigned index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  std::atomic<bool> cancel_{false};
};

/// Split the inclusive iteration range [lo, hi] with stride `step` into
/// `parts` contiguous chunks. Returns per-part inclusive [first, last]
/// pairs; empty parts have first > last.
std::vector<std::pair<int64_t, int64_t>> splitIterations(int64_t lo,
                                                         int64_t hi,
                                                         int64_t step,
                                                         unsigned parts);

}  // namespace padfa
