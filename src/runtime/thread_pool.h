// Minimal persistent thread pool for parallel loop execution and
// analysis-level task parallelism.
//
// The interpreter's parallel loops follow the SUIF execution model: a
// parallel region is dispatched to T workers, each executing a contiguous
// chunk of the iteration space, with a barrier at loop exit (runOnAll).
// On top of that, the pool offers a submit()/future API used by the
// driver and the evaluation harness to run independent analyses (the
// baseline/predicated pair, whole corpus programs) concurrently.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace padfa {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run fn(worker_index) on every worker (0..size-1) and wait for all.
  /// worker 0 runs on the calling thread. Exceptions thrown by workers
  /// are rethrown on the caller (first one wins).
  ///
  /// Re-entry guard: calling runOnAll from inside one of this pool's own
  /// workers would deadlock — the calling worker is busy and can never
  /// pick up the generation job assigned to it, so the barrier's
  /// remaining-count never reaches zero. Nested dispatch therefore throws
  /// std::logic_error instead of hanging. (Dispatching onto a *different*
  /// pool from a worker is fine and used by the bench harness: analysis
  /// workers run the interpreter, which owns its own pool.)
  void runOnAll(const std::function<void(unsigned)>& fn);

  /// Schedule `f` to run on some worker and get a future for its result.
  /// Exceptions propagate through the future. submit() from inside one of
  /// this pool's own workers executes `f` inline (same-pool nesting must
  /// not wait on queue capacity that the blocked worker itself provides);
  /// a pool with no extra workers (num_threads <= 1) also executes
  /// inline. Pending tasks are abandoned (futures broken) if the pool is
  /// destroyed first — keep the pool alive until every future is ready.
  template <class F>
  auto submit(F f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Is the calling thread one of this pool's worker threads?
  bool onWorkerThread() const;

  /// Cooperative cancellation: set automatically when any worker throws
  /// during the current runOnAll dispatch (and resettable by jobs that
  /// want to stop their siblings). Long-running jobs poll this between
  /// iterations and bail out early; the dispatch still rethrows the
  /// first error after the barrier.
  void requestCancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancelRequested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

 private:
  void workerLoop(unsigned index);
  /// Run `task` on some worker, or inline when called from one of this
  /// pool's workers / when the pool has no workers.
  void enqueue(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::deque<std::function<void()>> tasks_;
  uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  std::atomic<bool> cancel_{false};
};

/// The process-wide pool used for analysis-level task parallelism (the
/// baseline/predicated pair in compileSource, corpus fan-out in benches
/// and sweep tests). Sized by the PADFA_THREADS environment variable
/// (default: hardware concurrency). Constructed on first use; lives for
/// the process.
ThreadPool& analysisPool();

/// The thread count analysisPool() is (or will be) built with.
unsigned analysisThreadCount();

/// Split the inclusive iteration range [lo, hi] with stride `step` into
/// `parts` contiguous chunks. Returns per-part inclusive [first, last]
/// pairs; empty parts are marked first > last for a positive step and
/// first < last for a negative one (i.e. the marker runs against the
/// step direction). Supports negative steps (hi <= lo), ranges whose
/// trip count exceeds `parts`, and bounds anywhere in the int64 domain
/// (the trip count is computed in unsigned arithmetic, so e.g.
/// [INT64_MIN, INT64_MAX] does not overflow). A zero step yields all
/// empty parts.
std::vector<std::pair<int64_t, int64_t>> splitIterations(int64_t lo,
                                                         int64_t hi,
                                                         int64_t step,
                                                         unsigned parts);

}  // namespace padfa
