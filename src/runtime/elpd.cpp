#include "runtime/elpd.h"

namespace padfa {

void ElpdCollector::loopEnter(const ForStmt* loop) {
  auto it = instrumented_.find(loop);
  if (it == instrumented_.end()) return;
  it->second.cur_iter = -1;
  active_.push_back(&it->second);
}

void ElpdCollector::loopIterStart(const ForStmt* loop, int64_t iter) {
  auto it = instrumented_.find(loop);
  if (it == instrumented_.end()) return;
  it->second.cur_iter = iter;
  it->second.executed = true;
}

void ElpdCollector::loopExit(const ForStmt* loop) {
  auto it = instrumented_.find(loop);
  if (it == instrumented_.end()) return;
  if (!active_.empty() && active_.back() == &it->second) active_.pop_back();
  it->second.cur_iter = -1;
}

void ElpdCollector::recordAccess(const void* buffer, size_t flat_index,
                                 size_t buffer_size, bool is_write) {
  for (LoopState* ls : active_) {
    if (ls->cur_iter < 0) continue;
    ++ls->accesses;
    ++total_accesses_;
    Shadow& sh = ls->shadows[buffer];
    sh.ensure(buffer_size);
    int64_t it = ls->cur_iter;
    if (is_write) {
      if (sh.first_write[flat_index] == -1) {
        sh.first_write[flat_index] = it;
      } else if (sh.first_write[flat_index] != it ||
                 sh.last_write[flat_index] != it) {
        ls->conflict = true;
      }
      sh.last_write[flat_index] = it;
      // A write in a different iteration than a recorded read is a
      // conflict (anti/output dependence) — privatization may fix it.
      if (sh.any_read[flat_index] != -1 && sh.any_read[flat_index] != it)
        ls->conflict = true;
    } else {
      sh.any_read[flat_index] = it;
      int64_t lw = sh.last_write[flat_index];
      if (lw != -1 && lw != it) {
        ls->conflict = true;
        // Read of a value produced by an earlier iteration, and this
        // iteration has not (yet) written the element itself: flow.
        if (lw < it) ls->flow = true;
      }
    }
  }
}

ElpdCollector::Verdict ElpdCollector::verdict(const ForStmt* loop) const {
  Verdict v;
  auto it = instrumented_.find(loop);
  if (it == instrumented_.end()) return v;
  v.executed = it->second.executed;
  v.conflict = it->second.conflict;
  v.flow = it->second.flow;
  v.accesses = it->second.accesses;
  return v;
}

}  // namespace padfa
