#include "runtime/thread_pool.h"

#include <cstdlib>
#include <stdexcept>

namespace padfa {

namespace {
// Which pool (if any) owns the calling thread. Per-pool, not a plain
// bool: the bench harness runs the interpreter (which creates its own
// pool) from analysis-pool workers, and that cross-pool nesting is
// legal — only same-pool nesting is special-cased.
thread_local ThreadPool* t_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
  unsigned extra = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(extra);
  for (unsigned i = 0; i < extra; ++i)
    workers_.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::onWorkerThread() const { return t_worker_pool == this; }

void ThreadPool::workerLoop(unsigned index) {
  t_worker_pool = this;
  uint64_t seen = 0;
  while (true) {
    const std::function<void(unsigned)>* job = nullptr;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] {
        return stop_ || generation_ != seen || !tasks_.empty();
      });
      if (stop_) return;
      // Barrier dispatches take priority over queued tasks: runOnAll's
      // caller is blocked on every worker, while submit()ters hold a
      // future they can wait on.
      if (generation_ != seen) {
        seen = generation_;
        job = job_;
      } else {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
    }
    if (job) {
      try {
        (*job)(index);
      } catch (...) {
        requestCancel();  // tell sibling workers to stop early
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_all();
    } else {
      task();  // packaged_task: exceptions land in the caller's future
    }
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  // Same-pool submit from a worker runs inline: the submitting worker
  // may immediately wait on the future, and with every other worker
  // equally blocked the queued task could starve forever.
  if (t_worker_pool == this || workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_start_.notify_one();
}

void ThreadPool::runOnAll(const std::function<void(unsigned)>& fn) {
  if (onWorkerThread())
    throw std::logic_error(
        "ThreadPool::runOnAll: nested dispatch from this pool's own worker "
        "would deadlock (the calling worker can never run its share of the "
        "job); use a separate pool or submit()");
  cancel_.store(false, std::memory_order_relaxed);
  if (workers_.empty()) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    remaining_ = static_cast<unsigned>(workers_.size());
    error_ = nullptr;
    ++generation_;
  }
  cv_start_.notify_all();
  std::exception_ptr caller_error;
  try {
    fn(0);
  } catch (...) {
    requestCancel();
    caller_error = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
  }
  if (caller_error) std::rethrow_exception(caller_error);
  if (error_) std::rethrow_exception(error_);
}

unsigned analysisThreadCount() {
  static unsigned n = [] {
    if (const char* env = std::getenv("PADFA_THREADS")) {
      long v = std::strtol(env, nullptr, 10);
      if (v >= 1 && v <= 256) return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 4u;
  }();
  return n;
}

ThreadPool& analysisPool() {
  static ThreadPool pool(analysisThreadCount());
  return pool;
}

std::vector<std::pair<int64_t, int64_t>> splitIterations(int64_t lo,
                                                         int64_t hi,
                                                         int64_t step,
                                                         unsigned parts) {
  // Empty-part marker: one step "backwards", so first > last for a
  // positive step and first < last for a negative one.
  std::pair<int64_t, int64_t> empty =
      step >= 0 ? std::pair<int64_t, int64_t>{1, 0}
                : std::pair<int64_t, int64_t>{0, 1};
  std::vector<std::pair<int64_t, int64_t>> out(parts, empty);
  if (parts == 0 || step == 0) return out;
  if (step > 0 ? lo > hi : lo < hi) return out;
  // Trip count in unsigned arithmetic: |hi - lo| and |step| are computed
  // mod 2^64 (two's complement negation handles INT64_MIN), so ranges
  // near the int64 boundaries cannot overflow. The +1 can reach 2^64 for
  // the full-domain unit-stride range, hence the 128-bit widening.
  uint64_t span = step > 0
                      ? static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo)
                      : static_cast<uint64_t>(lo) - static_cast<uint64_t>(hi);
  uint64_t mag = step > 0 ? static_cast<uint64_t>(step)
                          : ~static_cast<uint64_t>(step) + 1;
  unsigned __int128 count =
      static_cast<unsigned __int128>(span / mag) + 1;
  unsigned __int128 base = count / parts;
  uint64_t rem = static_cast<uint64_t>(count % parts);
  unsigned __int128 start_idx = 0;
  for (unsigned p = 0; p < parts; ++p) {
    unsigned __int128 n = base + (p < rem ? 1 : 0);
    if (n == 0) continue;
    // lo + idx*step in wrapping uint64 arithmetic: the true value lies
    // in [min(lo,hi), max(lo,hi)], so the mod-2^64 result cast back to
    // int64 is exact.
    uint64_t s = static_cast<uint64_t>(start_idx);
    uint64_t e = static_cast<uint64_t>(start_idx + n - 1);
    int64_t first = static_cast<int64_t>(static_cast<uint64_t>(lo) +
                                         s * static_cast<uint64_t>(step));
    int64_t last = static_cast<int64_t>(static_cast<uint64_t>(lo) +
                                        e * static_cast<uint64_t>(step));
    out[p] = {first, last};
    start_idx += n;
  }
  return out;
}

}  // namespace padfa
