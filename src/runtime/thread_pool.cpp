#include "runtime/thread_pool.h"

namespace padfa {

ThreadPool::ThreadPool(unsigned num_threads) {
  unsigned extra = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(extra);
  for (unsigned i = 0; i < extra; ++i)
    workers_.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop(unsigned index) {
  uint64_t seen = 0;
  while (true) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    try {
      (*job)(index);
    } catch (...) {
      requestCancel();  // tell sibling workers to stop early
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::runOnAll(const std::function<void(unsigned)>& fn) {
  cancel_.store(false, std::memory_order_relaxed);
  if (workers_.empty()) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    remaining_ = static_cast<unsigned>(workers_.size());
    error_ = nullptr;
    ++generation_;
  }
  cv_start_.notify_all();
  std::exception_ptr caller_error;
  try {
    fn(0);
  } catch (...) {
    requestCancel();
    caller_error = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
  }
  if (caller_error) std::rethrow_exception(caller_error);
  if (error_) std::rethrow_exception(error_);
}

std::vector<std::pair<int64_t, int64_t>> splitIterations(int64_t lo,
                                                         int64_t hi,
                                                         int64_t step,
                                                         unsigned parts) {
  std::vector<std::pair<int64_t, int64_t>> out(parts, {1, 0});
  if (step <= 0 || lo > hi || parts == 0) return out;
  int64_t count = (hi - lo) / step + 1;
  int64_t base = count / parts;
  int64_t rem = count % parts;
  int64_t start_idx = 0;
  for (unsigned p = 0; p < parts; ++p) {
    int64_t n = base + (static_cast<int64_t>(p) < rem ? 1 : 0);
    if (n <= 0) continue;
    int64_t first = lo + start_idx * step;
    int64_t last = lo + (start_idx + n - 1) * step;
    out[p] = {first, last};
    start_idx += n;
  }
  return out;
}

}  // namespace padfa
