#include "dataflow/vra_promote.h"

#include "support/perf_stats.h"

namespace padfa {

size_t applyVraPromotions(const Program& program, AnalysisResult& result,
                          const vra::RangeAnalysis& ranges) {
  (void)program;
  if (!ranges.enabled()) return 0;
  size_t changed = 0;
  auto& vc = PerfStats::instance().vra;
  for (auto& [loop, plan] : result.plans) {
    if (plan.status != LoopStatus::RuntimeTest) continue;
    // Degraded plans are budget fallbacks, not analysis verdicts; their
    // test may be a truncated derivation, so leave them alone.
    if (plan.degraded) continue;
    switch (ranges.provePred(plan.loop, plan.runtime_test)) {
      case vra::Proof::True:
        plan.status = LoopStatus::Parallel;
        plan.vra_action = VraAction::PromotedParallel;
        vc.promotions.fetch_add(1, std::memory_order_relaxed);
        ++changed;
        break;
      case vra::Proof::False:
        plan.status = LoopStatus::Sequential;
        plan.vra_action = VraAction::DemotedSequential;
        plan.reason =
            "derived run-time test is provably false (value ranges)";
        vc.demotions.fetch_add(1, std::memory_order_relaxed);
        ++changed;
        break;
      case vra::Proof::Unknown:
        break;
    }
  }
  return changed;
}

}  // namespace padfa
