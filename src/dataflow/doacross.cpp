#include "dataflow/doacross.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <utility>

#include "audit/loop_conflicts.h"
#include "support/perf_stats.h"
#include "vra/vra.h"

namespace padfa {

namespace {

void walkOrder(const Stmt& s, int if_depth, int for_depth,
               SyncOrderInfo& info, int& next) {
  info.pos[&s] = next++;
  if (if_depth == 0 && for_depth == 0) info.unconditional.insert(&s);
  if (for_depth == 0) info.immediate_post.insert(&s);
  switch (s.kind) {
    case StmtKind::Block:
      for (const auto& c : static_cast<const BlockStmt&>(s).stmts)
        walkOrder(*c, if_depth, for_depth, info, next);
      break;
    case StmtKind::If: {
      const auto& is = static_cast<const IfStmt&>(s);
      walkOrder(*is.then_block, if_depth + 1, for_depth, info, next);
      if (is.else_block)
        walkOrder(*is.else_block, if_depth + 1, for_depth, info, next);
      break;
    }
    case StmtKind::For:
      // The inner loop's bounds run once per outer iteration (and anchor
      // accesses at the ForStmt itself, already mapped above); its body
      // runs zero or more times.
      walkOrder(*static_cast<const ForStmt&>(s).body, if_depth,
                for_depth + 1, info, next);
      break;
    default:
      break;
  }
}

int posOf(const SyncOrderInfo& info, const Stmt* s) {
  auto it = info.pos.find(s);
  return it == info.pos.end() ? -1 : it->second;
}

/// The profitability guard (DESIGN.md §15). A Doacross upgrade pays for
/// a post/wait window; it loses outright when
///   (a) the value ranges bound the trip count below 2 (nothing to
///       overlap), or
///   (b) some kept distance-1 requirement runs from the LAST statement
///       of the body to its FIRST (pure recurrence with no independent
///       prefix): iteration i+1 then waits at its very first statement
///       for all of iteration i, so the pipeline degenerates to
///       sequential execution plus sync overhead.
/// First/last are computed over real statements (blocks are structural).
bool doacrossAtALoss(const ForStmt& loop,
                     const std::vector<SyncRequirement>& reqs,
                     const SyncOrderInfo& info, int64_t step,
                     const vra::RangeAnalysis& ranges) {
  vra::Range lb = ranges.evalAt(&loop, *loop.lower);
  vra::Range ub = ranges.evalAt(&loop, *loop.upper);
  vra::Range span = vra::sub(ub, lb);
  if (span.hi && *span.hi < step) return true;  // at most one iteration

  int first = -1, last = -1;
  for (const auto& [s, p] : info.pos) {
    if (s->kind == StmtKind::Block) continue;
    if (first < 0 || p < first) first = p;
    if (p > last) last = p;
  }
  if (first < 0) return false;
  for (const auto& r : reqs) {
    if (r.eliminated || r.distance != 1) continue;
    if (!info.unconditional.count(r.sink)) continue;
    if (posOf(info, r.sink) <= first && posOf(info, r.source) >= last)
      return true;
  }
  return false;
}

}  // namespace

SyncOrderInfo buildSyncOrderInfo(const ForStmt& loop) {
  SyncOrderInfo info;
  int next = 0;
  walkOrder(*loop.body, 0, 0, info, next);
  return info;
}

std::optional<int64_t> doacrossConstStep(const ForStmt& loop) {
  if (!loop.step) return 1;
  if (loop.step->kind != ExprKind::IntLit) return std::nullopt;
  int64_t s = static_cast<const IntLitExpr&>(*loop.step).value;
  if (s < 1) return std::nullopt;
  return s;
}

// The happens-before search behind redundant-sync elimination. A state
// (s, o) asserts: in any execution containing the dependence instance,
// the release of s's wait at iteration offset o (offset 0 = the sink's
// iteration) happens-after the source access at offset -distance. From
// a state we may take a kept requirement k = (a, b, d) when the post of
// a at the state's offset is ordered after the state's event: always,
// if a's post is deferred to the end of the iteration; otherwise when
// pos(a) >= pos(s) (structured code, so later position = executes
// after — or is skipped, in which case the end-of-iteration backstop
// post is even later). The new state (b, o + d) may continue only when
// b is unconditional (its wait provably runs every iteration); it is
// accepting at offset 0 when b is the sink itself, or unconditional
// with pos(b) <= pos(sink) (program order carries the edge the rest of
// the way). Offsets only grow, so anything past 0 is a dead end.
bool syncRequirementCovered(const SyncRequirement& req,
                            const std::vector<SyncRequirement>& kept,
                            const SyncOrderInfo& info) {
  constexpr size_t kMaxStates = 4096;
  int sink_pos = posOf(info, req.sink);
  if (sink_pos < 0 || posOf(info, req.source) < 0) return false;
  std::set<std::pair<const Stmt*, int64_t>> seen;
  std::deque<std::pair<const Stmt*, int64_t>> queue;
  queue.push_back({req.source, -req.distance});
  seen.insert(queue.front());
  while (!queue.empty()) {
    auto [s, o] = queue.front();
    queue.pop_front();
    int s_pos = posOf(info, s);
    for (const auto& k : kept) {
      if (k.eliminated) continue;
      int64_t no = o + k.distance;
      if (no > 0) continue;
      int a_pos = posOf(info, k.source);
      if (a_pos < 0 || posOf(info, k.sink) < 0) continue;
      bool post_ordered =
          !info.immediate_post.count(k.source) || a_pos >= s_pos;
      if (!post_ordered) continue;
      if (no == 0) {
        if (k.sink == req.sink ||
            (info.unconditional.count(k.sink) &&
             posOf(info, k.sink) <= sink_pos))
          return true;
        continue;
      }
      if (!info.unconditional.count(k.sink)) continue;
      if (seen.size() >= kMaxStates) return false;
      if (seen.insert({k.sink, no}).second) queue.push_back({k.sink, no});
    }
  }
  return false;
}

bool classifyDoacross(const Program& program, LoopPlan& plan,
                      const vra::RangeAnalysis* ranges) {
  // Candidacy: the array dataflow phase gave up with a carried array
  // dependence, undegraded. The reason string round-trips through the
  // deep-plan codec, so replayed plans keep their candidacy and the
  // upgrade is warm/cold deterministic.
  static constexpr std::string_view kArrayReason =
      "loop-carried dependence on array";
  if (plan.status != LoopStatus::Sequential || plan.degraded) return false;
  if (!plan.loop || !plan.proc) return false;
  if (plan.reason.compare(0, kArrayReason.size(), kArrayReason) != 0)
    return false;

  std::optional<int64_t> step = doacrossConstStep(*plan.loop);
  if (!step) return false;

  LoopConflictScanner scanner(program, plan.loop, plan.proc);
  scanner.scan();
  if (scanner.overflow() || !scanner.loopExact()) return false;

  SyncOrderInfo info = buildSyncOrderInfo(*plan.loop);
  std::set<const VarDecl*> priv;
  for (const auto& p : plan.privatized) priv.insert(p.array);

  const auto& acc = scanner.accesses();
  std::vector<SyncRequirement> reqs;
  for (size_t i = 0; i < acc.size(); ++i) {
    for (size_t j = i; j < acc.size(); ++j) {
      const ConflictAccess& a = acc[i];
      const ConflictAccess& b = acc[j];
      if (a.root != b.root || (!a.write && !b.write)) continue;
      if (priv.count(a.root)) continue;
      auto eq = LoopConflictScanner::pairEq(a, b);
      std::pair<const ConflictAccess*, const ConflictAccess*> dirs[2] = {
          {&a, &b}, {&b, &a}};
      size_t ndirs = (j == i) ? 1 : 2;
      for (size_t d = 0; d < ndirs; ++d) {
        const ConflictAccess* x = dirs[d].first;
        const ConflictAccess* y = dirs[d].second;
        auto g = scanner.geometry(*x, *y, eq);
        if (!g.feasible) continue;
        // A carried dependence survives in this direction: it must have
        // an exactly-modeled, constant, positive distance or the loop
        // stays Sequential.
        if (!LoopConflictScanner::pairExactly(*x, *y, eq)) return false;
        // Geometry distances are in index space; store iteration
        // ordinals (index distance / step) — the post/wait runtime and
        // the race oracle both count ordinals.
        if (!g.distance || *g.distance < 1 || *g.distance % *step != 0)
          return false;
        if (!x->anchor || !y->anchor) return false;
        if (posOf(info, x->anchor) < 0 || posOf(info, y->anchor) < 0)
          return false;
        reqs.push_back({x->anchor, y->anchor, *g.distance / *step, false});
      }
    }
  }
  if (reqs.empty()) return false;  // scanner beat the analysis; stay safe

  // Deduplicate and order deterministically by statement position.
  std::sort(reqs.begin(), reqs.end(),
            [&](const SyncRequirement& l, const SyncRequirement& r) {
              int lp = posOf(info, l.source), rp = posOf(info, r.source);
              if (lp != rp) return lp < rp;
              int ls = posOf(info, l.sink), rs = posOf(info, r.sink);
              if (ls != rs) return ls < rs;
              return l.distance < r.distance;
            });
  reqs.erase(std::unique(reqs.begin(), reqs.end(),
                         [](const SyncRequirement& l,
                            const SyncRequirement& r) {
                           return l.source == r.source && l.sink == r.sink &&
                                  l.distance == r.distance;
                         }),
             reqs.end());

  // Redundant-sync elimination: greedily drop requirements implied by
  // the surviving set, largest distances first (those are the likeliest
  // to be transitive compositions of the smaller ones).
  std::vector<size_t> order(reqs.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t l, size_t r) {
    if (reqs[l].distance != reqs[r].distance)
      return reqs[l].distance > reqs[r].distance;
    return l < r;
  });
  for (size_t idx : order) {
    std::vector<SyncRequirement> kept;
    for (size_t k = 0; k < reqs.size(); ++k)
      if (k != idx && !reqs[k].eliminated) kept.push_back(reqs[k]);
    if (kept.empty()) continue;
    if (syncRequirementCovered(reqs[idx], kept, info))
      reqs[idx].eliminated = true;
  }

  // Profitability guard (only with a live range analysis, so plans under
  // PADFA_NO_VRA stay bit-identical to the ungated upgrade).
  if (ranges && ranges->enabled() &&
      doacrossAtALoss(*plan.loop, reqs, info, *step, *ranges)) {
    plan.vra_action = VraAction::DoacrossCost;
    PerfStats::instance().vra.doacross_demotions.fetch_add(
        1, std::memory_order_relaxed);
    return false;
  }

  plan.status = LoopStatus::Doacross;
  plan.syncs = std::move(reqs);
  return true;
}

void upgradeDoacrossPlans(const Program& program, AnalysisResult& result,
                          const vra::RangeAnalysis* ranges) {
  for (auto& [loop, plan] : result.plans)
    classifyDoacross(program, plan, ranges);
}

}  // namespace padfa
