#include "dataflow/summary.h"

namespace padfa {

void appendGuarded(GuardedList& dst, const GuardedList& o) {
  dst.insert(dst.end(), o.begin(), o.end());
}

void guardList(GuardedList& list, const Pred& p) {
  if (p.isTrue()) return;
  for (auto& g : list) g.guard = g.guard && p;
  // Pieces guarded by `false` can never contribute.
  std::erase_if(list, [](const GuardedSection& g) { return g.guard.isFalse(); });
}

void embedGuards(GuardedList& list, VarTable& vt) {
  for (auto& g : list) {
    if (g.guard.isTrue()) continue;
    pb::System aff = g.guard.affineUpperBound(vt);
    if (aff.trivial()) continue;
    g.section.constrain(aff);
  }
  std::erase_if(list,
                [](const GuardedSection& g) { return g.section.isEmpty(); });
}

pb::Set unguardedUnion(const GuardedList& list) {
  pb::Set out;
  for (const auto& g : list) out.unionWith(g.section);
  return out;
}

GuardedList predSubtract(const GuardedList& from, const GuardedList& cover,
                         VarTable& vt) {
  // The paper's PredSubtract: subtracting a must-write guarded by p from
  // an exposed read guarded by q yields
  //   (q => p)        : (q,      e − m)
  //   otherwise split : (q ∧ p,  e − m)  ∪  (q ∧ ¬p, e)
  // Splitting is capped; over the cap the piece is kept whole (sound: E
  // only gets bigger).
  constexpr size_t kMaxSplit = 32;
  GuardedList cur = from;
  for (const auto& c : cover) {
    GuardedList next;
    for (auto& f : cur) {
      if (f.section.isEmpty()) continue;
      if (f.guard.implies(c.guard, vt)) {
        pb::Set rem = f.section.subtract(c.section);
        if (!rem.isEmpty()) next.push_back({f.guard, std::move(rem)});
        continue;
      }
      Pred both = f.guard && c.guard;
      if (both.isFalse() || cur.size() + next.size() >= kMaxSplit) {
        next.push_back(std::move(f));
        continue;
      }
      pb::Set rem = f.section.subtract(c.section);
      if (!rem.isEmpty()) next.push_back({both, std::move(rem)});
      Pred other = f.guard && !c.guard;
      if (!other.isFalse()) next.push_back({std::move(other), f.section});
    }
    cur = std::move(next);
  }
  return cur;
}

namespace {

void killSections(GuardedList& list, const std::vector<const VarDecl*>& written,
                  VarTable& vt, bool is_must) {
  // VarIds of the written scalars that the table already knows about
  // (unknown ones cannot appear in any section).
  std::vector<pb::VarId> ids;
  for (const VarDecl* d : written)
    if (vt.hasId(d)) ids.push_back(vt.idFor(d));
  if (ids.empty() && written.empty()) return;

  for (auto& g : list) {
    g.guard = g.guard.weakenAtoms(written, /*toTrue=*/!is_must);
    if (ids.empty()) continue;
    bool mentions = false;
    for (const auto& piece : g.section.pieces()) {
      for (pb::VarId v : piece.usedVars()) {
        for (pb::VarId k : ids)
          if (v == k) mentions = true;
      }
    }
    if (!mentions) continue;
    if (is_must) {
      // Under-approximate: drop the piece entirely.
      g.section = pb::Set::empty();
    } else {
      // Over-approximate: existentially project the stale scalars away.
      g.section.projectOnto([&ids](pb::VarId v) {
        for (pb::VarId k : ids)
          if (v == k) return false;
        return true;
      });
    }
  }
  std::erase_if(list, [](const GuardedSection& g) {
    return g.guard.isFalse() || g.section.isEmpty();
  });
}

}  // namespace

void killScalarsMay(GuardedList& list,
                    const std::vector<const VarDecl*>& written, VarTable& vt) {
  killSections(list, written, vt, /*is_must=*/false);
}

void killScalarsMust(GuardedList& list,
                     const std::vector<const VarDecl*>& written,
                     VarTable& vt) {
  killSections(list, written, vt, /*is_must=*/true);
}

std::string guardedListStr(const GuardedList& list, const VarTable& vt,
                           const Interner& interner) {
  if (list.empty()) return "(empty)";
  std::string out;
  for (size_t i = 0; i < list.size(); ++i) {
    if (i) out += " ; ";
    if (!list[i].guard.isTrue())
      out += "[" + list[i].guard.str(interner) + "] ";
    out += list[i].section.str(vt.namer());
  }
  return out;
}

}  // namespace padfa
