// The (predicated) interprocedural array data-flow analysis.
//
// A single implementation covers both systems evaluated in the paper:
//  * the SUIF baseline = AnalysisConfig::baseline() (no predicates);
//  * predicated array data-flow analysis = AnalysisConfig::predicated().
// Feature flags also enable the ablations (embedding only, extraction
// only, no run-time tests) benchmarked in bench/.
#pragma once

#include <functional>
#include <memory>
#include <set>

#include "dataflow/loop_plan.h"
#include "dataflow/summary.h"
#include "lang/ast.h"
#include "support/budget.h"
#include "support/fault_injection.h"

namespace padfa {

/// Replay hook for incremental re-analysis (ipa/incremental.h). When
/// installed, a procedure in `replay` is not analyzed: its finalized
/// summary comes from `load`, which must recreate the summary's VarIds in
/// the analyzer's VarTable in cold-run creation order (the deep codec's
/// variable preamble does this). Loops of a successfully replayed
/// procedure receive no plans from the analyzer — the caller merges the
/// persisted plans afterwards. A `load` failure falls back to full
/// analysis of that procedure, so replay is never load-bearing for
/// soundness, only for speed.
struct SummaryPreload {
  std::set<const ProcDecl*> replay;
  std::function<bool(const ProcDecl*, VarTable&, RegionSummary&)> load;
  /// Out-param: the procedures whose summaries actually replayed.
  std::set<const ProcDecl*>* replayed = nullptr;
};

struct AnalysisConfig {
  /// Attach branch predicates to data-flow values (Section 4).
  bool predicates = true;
  /// Predicate embedding: absorb affine guard constraints into array
  /// section systems (Section 5.1).
  bool embedding = true;
  /// Predicate extraction: derive breaking conditions by projecting
  /// dependence systems onto symbolic parameters (Section 5.2).
  bool extraction = true;
  /// Emit two-version loops guarded by run-time tests (Section 5.3).
  bool runtime_tests = true;
  /// Allow privatization of arrays with upward-exposed reads by
  /// initializing private copies from shared memory. The base SUIF system
  /// is conservative here; the predicated system reasons about exactly
  /// which elements stay exposed, making copy-in privatization safe.
  bool copy_in_privatization = true;

  /// Resource governance. The analysis never crashes on exhaustion: loops
  /// whose analysis blows a budget are conservatively kept sequential and
  /// flagged `degraded` in their LoopPlan. Defaults are unlimited (plus a
  /// deep recursion backstop) and are refined by PADFA_BUDGET_* env vars.
  BudgetLimits budget = BudgetLimits::defaults();
  /// Optional fault injector forcing synthetic exhaustion at probe points
  /// (testing only; when null, PADFA_FAULT_RATE can configure one).
  FaultInjector* injector = nullptr;

  /// Optional summary-replay hook (see SummaryPreload). Not owned; must
  /// outlive the analyzeProgram() call.
  const SummaryPreload* preload = nullptr;
  /// Export finalized per-procedure summaries and the VarTable view into
  /// AnalysisResult (proc_summaries/vars) so the store can serialize
  /// them. Off by default: the export copies nothing but keeps the
  /// summaries alive past the analysis.
  bool export_summaries = false;

  static AnalysisConfig baseline() {
    return {false, false, false, false, false};
  }
  static AnalysisConfig predicated() { return {true, true, true, true, true}; }
  /// Predicates for compile-time analysis only — models the prior
  /// guarded-analysis work the paper compares against (Gu/Li/Lee).
  static AnalysisConfig compileTimeOnly() {
    return {true, true, true, false, true};
  }
};

/// Run the analysis over an analyzed program (Sema must have succeeded).
AnalysisResult analyzeProgram(Program& program, const AnalysisConfig& config);

}  // namespace padfa
