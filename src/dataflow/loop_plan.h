// Parallelization decisions per loop — the analysis output consumed by
// the interpreter/runtime and by the evaluation harness.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "dataflow/summary.h"
#include "lang/ast.h"
#include "predicate/pred.h"

namespace padfa {

enum class LoopStatus : uint8_t {
  Parallel,      // provably parallel at compile time
  RuntimeTest,   // two-version loop guarded by a derived run-time test
  Sequential,    // dependence (or un-analyzable) — stays sequential
  NotCandidate,  // I/O (sink), loop-variant bounds, non-positive step
  // Pipelined parallel: every residual carried dependence has a
  // provably-constant iteration distance, enforced at run time by
  // post/wait synchronization (LoopPlan::syncs). Deliberately ordered
  // after NotCandidate: the deep-plan store only ever persists
  // pre-upgrade plans, and its codec rejects any status beyond
  // NotCandidate, which keeps stored bytes upgrade-agnostic.
  Doacross,
};

std::string_view loopStatusName(LoopStatus s);

/// What the value-range promotion pass (dataflow/vra_promote.h) did to a
/// plan, if anything. Never serialized: promotions run post-persistence
/// (after store replay), exactly like the Doacross upgrade, so warm and
/// cold plans stay byte-identical.
enum class VraAction : uint8_t {
  None,
  /// RuntimeTest whose derived test is provably true under the inferred
  /// ranges: dispatched as Parallel. The test itself is RETAINED in
  /// `runtime_test` so the auditor, PDG certification, and the race
  /// oracle can each re-verify the discharge independently.
  PromotedParallel,
  /// RuntimeTest whose derived test is provably false: the parallel
  /// version is dead code, only the sequential version ships.
  DemotedSequential,
  /// Doacross candidate rejected by the profitability guard (pure
  /// recurrence with no independent prefix, or a provably short trip
  /// count): kept Sequential.
  DoacrossCost,
};

std::string_view vraActionName(VraAction a);

/// How an array must be handled in the parallel version of a loop.
struct PrivatizedArray {
  const VarDecl* array = nullptr;
  bool copy_in = false;   // exposed reads exist: initialize private copies
  bool copy_out = false;  // live after loop: last iteration writes back
};

enum class ReductionOp : uint8_t { Sum, Prod, Min, Max };

struct ScalarReduction {
  const VarDecl* scalar = nullptr;
  ReductionOp op = ReductionOp::Sum;
};

/// One post/wait obligation of a Doacross plan: before `sink` executes
/// in iteration i, `source` must have completed iteration i - distance.
/// Source and sink are the anchor statements of the conflicting access
/// pair; the distance is the constant value of the Presburger
/// projection onto i2 - i1 (always >= 1).
struct SyncRequirement {
  const Stmt* source = nullptr;
  const Stmt* sink = nullptr;
  int64_t distance = 0;
  /// Transitively implied by the kept requirements plus intra-iteration
  /// program order (the redundant-sync-elimination rule, DESIGN.md §14);
  /// recorded for reporting and auditing but not enforced at run time.
  bool eliminated = false;
};

struct LoopPlan {
  const ForStmt* loop = nullptr;
  const ProcDecl* proc = nullptr;
  LoopStatus status = LoopStatus::Sequential;

  /// Run-time independence/privatization test (status == RuntimeTest).
  /// True atoms evaluate against scalar values at loop entry.
  Pred runtime_test;

  /// Arrays privatized in the parallel version.
  std::vector<PrivatizedArray> privatized;
  /// Scalars privatized in the parallel version (loop index excluded;
  /// each entry may also need last-value copy-out).
  std::vector<const VarDecl*> private_scalars;
  std::vector<const VarDecl*> copy_out_scalars;
  std::vector<ScalarReduction> reductions;

  /// Human-readable reason when Sequential / NotCandidate. A Doacross
  /// plan keeps the Sequential reason it was upgraded from (it documents
  /// why the loop is not fully DOALL).
  std::string reason;

  /// Post/wait requirements (status == Doacross), deduplicated and
  /// ordered by (source position, sink position, distance). Entries
  /// marked `eliminated` are implied by the rest and not enforced.
  std::vector<SyncRequirement> syncs;

  /// Kept (non-eliminated) sync count, for reports.
  size_t keptSyncCount() const {
    size_t n = 0;
    for (const auto& s : syncs) n += s.eliminated ? 0 : 1;
    return n;
  }

  /// Value-range promotion applied to this plan (see VraAction). For
  /// PromotedParallel plans `runtime_test` still holds the discharged
  /// test — it documents the proof obligation and lets every
  /// verification leg re-derive the promotion.
  VraAction vra_action = VraAction::None;

  /// True when the plan is a fallback forced by resource budget
  /// exhaustion (or injected faults) rather than a full analysis verdict.
  /// The analysis itself only ever emits degraded plans as Sequential;
  /// the driver may substitute the (independently sound) baseline plan
  /// for a degraded predicated one, keeping this flag for telemetry.
  bool degraded = false;
  /// Which budget gave out (see budgetCauseName), when degraded.
  std::string degrade_cause;

  // Attribution flags for the evaluation's per-loop categories.
  bool used_predicates = false;   // guards were needed to pass a test
  bool used_embedding = false;    // guard constraints embedded in sections
  bool used_extraction = false;   // breaking condition from FM projection
  bool used_reshape = false;      // interprocedural reshape predicate
  bool priv_used = false;         // privatization was required
};

/// VarId-indexed view of the analyzer's VarTable, exported for the deep
/// summary codec (store/deep_codec.h) when
/// AnalysisConfig::export_summaries is set.
struct ExportedVarTable {
  /// VarId -> program decl; null for subscript dims and synthetic vars.
  std::vector<const VarDecl*> decls;
  /// Forward-substitution aliases installed during the analysis
  /// (VarTable::setAlias), needed to reproduce affine reasoning over a
  /// replayed procedure's guards in its callers.
  std::map<pb::VarId, pb::LinExpr> aliases;
};

/// Results of analyzing a whole program.
struct AnalysisResult {
  std::map<const ForStmt*, LoopPlan> plans;
  /// Wall-clock cost of the analysis itself (Experiment E6).
  double analysis_seconds = 0;

  /// Which callee summaries each procedure's analysis consumed (one entry
  /// per non-sink call target, deduplicated). Always recorded — it is a
  /// set insert per call statement — and consumed by the ipa layer
  /// (change-impact consistency checks, `mfc deps --callgraph`).
  std::map<const ProcDecl*, std::set<const ProcDecl*>> summary_deps;

  /// Finalized per-procedure summaries + the VarTable view needed to
  /// serialize them; filled only when AnalysisConfig::export_summaries.
  std::map<const ProcDecl*, RegionSummary> proc_summaries;
  ExportedVarTable vars;

  // --- degradation telemetry (resource governance) ---
  /// Exhaustion causes observed during this analysis, with counts.
  std::map<std::string, uint64_t> exhaustion_causes;
  /// True when a sticky (global) budget cause fired; the remainder of the
  /// analysis after that point is wholly conservative.
  bool degraded_globally = false;
  /// Budget meters at the end of the analysis (0 when no budget active).
  uint64_t fm_steps = 0;
  uint64_t constraints_built = 0;
  uint64_t pieces_touched = 0;

  const LoopPlan* planFor(const ForStmt* loop) const {
    auto it = plans.find(loop);
    return it == plans.end() ? nullptr : &it->second;
  }

  /// Number of plans carrying the `degraded` flag.
  size_t degradedCount() const;
};

}  // namespace padfa
