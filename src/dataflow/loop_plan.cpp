#include "dataflow/loop_plan.h"

namespace padfa {

std::string_view loopStatusName(LoopStatus s) {
  switch (s) {
    case LoopStatus::Parallel: return "parallel";
    case LoopStatus::RuntimeTest: return "runtime-test";
    case LoopStatus::Sequential: return "sequential";
    case LoopStatus::NotCandidate: return "not-candidate";
  }
  return "?";
}

}  // namespace padfa
