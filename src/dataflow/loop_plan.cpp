#include "dataflow/loop_plan.h"

namespace padfa {

std::string_view loopStatusName(LoopStatus s) {
  switch (s) {
    case LoopStatus::Parallel: return "parallel";
    case LoopStatus::RuntimeTest: return "runtime-test";
    case LoopStatus::Sequential: return "sequential";
    case LoopStatus::NotCandidate: return "not-candidate";
    case LoopStatus::Doacross: return "doacross";
  }
  return "?";
}

size_t AnalysisResult::degradedCount() const {
  size_t n = 0;
  for (const auto& [loop, plan] : plans)
    if (plan.degraded) ++n;
  return n;
}

}  // namespace padfa
