#include "dataflow/loop_plan.h"

namespace padfa {

std::string_view loopStatusName(LoopStatus s) {
  switch (s) {
    case LoopStatus::Parallel: return "parallel";
    case LoopStatus::RuntimeTest: return "runtime-test";
    case LoopStatus::Sequential: return "sequential";
    case LoopStatus::NotCandidate: return "not-candidate";
    case LoopStatus::Doacross: return "doacross";
  }
  return "?";
}

std::string_view vraActionName(VraAction a) {
  switch (a) {
    case VraAction::None: return "none";
    case VraAction::PromotedParallel: return "promoted-parallel";
    case VraAction::DemotedSequential: return "demoted-sequential";
    case VraAction::DoacrossCost: return "doacross-cost";
  }
  return "?";
}

size_t AnalysisResult::degradedCount() const {
  size_t n = 0;
  for (const auto& [loop, plan] : plans)
    if (plan.degraded) ++n;
  return n;
}

}  // namespace padfa
