// Doacross classification: the post-analysis upgrade pass that turns a
// Sequential plan into a pipelined-parallel (Doacross) plan when every
// residual carried dependence has a provably-constant iteration
// distance, following the post/wait synchronization model of
// "Optimizing Synchronization Algorithm for Auto-parallelizing
// Compiler" (arXiv:1211.4101). See DESIGN.md §14.
//
// The pass runs AFTER plan persistence (both in compileSource and in
// the incremental path), so the deep-plan store only ever sees
// pre-upgrade plans and warm replays stay byte-identical to cold runs:
// the upgrade is a deterministic function of the (replayed) plan's
// status + reason + AST, re-applied on every compile.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "dataflow/loop_plan.h"
#include "lang/ast.h"

namespace padfa {

namespace vra {
class RangeAnalysis;
}

/// Statement-order facts about one loop body, shared by the
/// redundant-sync-elimination rule and the PlanAuditor's independent
/// re-check of eliminated requirements.
struct SyncOrderInfo {
  /// Pre-order position of every statement in the loop body (the
  /// audited procedure only — inlined callee statements anchor to their
  /// call statement, which IS in this map).
  std::map<const Stmt*, int> pos;
  /// Statements guaranteed to execute exactly once per iteration (no If
  /// or For ancestor inside the body).
  std::set<const Stmt*> unconditional;
  /// Statements whose post fires immediately after each execution (no
  /// For ancestor inside the body; a statement nested in an inner loop
  /// executes many times per iteration, so its post is deferred to the
  /// end of the iteration).
  std::set<const Stmt*> immediate_post;
};

SyncOrderInfo buildSyncOrderInfo(const ForStmt& loop);

/// The loop's constant positive step, when it is a literal (or absent,
/// = 1). Nullopt for symbolic / non-positive steps — such loops are
/// never Doacross candidates. Sync distances are stored in ITERATION
/// ordinals; the conflict scanner's geometry works in INDEX space, so
/// an index distance D corresponds to ordinal distance D / step (and
/// must divide exactly — index values are lo + k*step, so it always
/// does for real dependences). The auditor and the PDG certifier apply
/// the same conversion before matching against plan.syncs.
std::optional<int64_t> doacrossConstStep(const ForStmt& loop);

/// Is requirement `req` implied by the non-eliminated requirements in
/// `kept` (excluding any entry identical to `req`) plus intra-iteration
/// program order? Exact rule in DESIGN.md §14; conservative — false
/// negatives only. Exported so the PlanAuditor can re-verify every
/// eliminated requirement independently of this pass.
bool syncRequirementCovered(const SyncRequirement& req,
                            const std::vector<SyncRequirement>& kept,
                            const SyncOrderInfo& info);

/// Try to upgrade one plan in place. Returns true when the plan became
/// Doacross (status rewritten, `syncs` filled, reason kept). Candidates
/// are non-degraded Sequential plans whose reason is the array-phase
/// "loop-carried dependence on array ..." verdict; everything else is
/// left untouched.
///
/// When `ranges` is a live value-range analysis, the profitability guard
/// (DESIGN.md §15) additionally rejects upgrades that pipeline at a
/// loss — a provably sub-2-trip loop, or a pure recurrence with no
/// independent prefix, where a distance-1 sync from the last statement
/// to the first serializes every iteration. Rejected plans stay
/// Sequential and are tagged VraAction::DoacrossCost. With `ranges`
/// null (VRA disabled) the guard is off and behavior is bit-identical
/// to the pre-VRA upgrade.
bool classifyDoacross(const Program& program, LoopPlan& plan,
                      const vra::RangeAnalysis* ranges = nullptr);

/// The driver post-pass: attempt the upgrade on every candidate plan of
/// a (predicated) analysis result.
void upgradeDoacrossPlans(const Program& program, AnalysisResult& result,
                          const vra::RangeAnalysis* ranges = nullptr);

}  // namespace padfa
