// Data-flow values of the (predicated) array data-flow analysis.
//
// For every program region and every array, the analysis maintains four
// lists of guarded array sections, mirroring the SUIF framework's
// {R, W, MW, E} components with the paper's predicate extension:
//
//   reads       R  — may-read sections        (over-approximate)
//   writes      W  — may-write sections       (over-approximate)
//   mustWrites  MW — must-write sections      (under-approximate)
//   exposed     E  — upward-exposed may-reads (over-approximate)
//
// Each entry is a GuardedSection ⟨p, S⟩: "accesses described by S occur
// only when predicate p holds" (for may components) / "if p holds, all of
// S is written" (for MW). The baseline (non-predicated) configuration
// simply keeps every guard at `true`.
//
// Sections are pb::Sets over the variable space of a VarTable: subscript
// dimension variables @d0..@d3, the indices of still-open enclosing
// loops, and symbolic scalar parameters.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "predicate/pred.h"
#include "presburger/set.h"
#include "symbolic/vartable.h"

namespace padfa {

struct GuardedSection {
  Pred guard;
  pb::Set section;
};

using GuardedList = std::vector<GuardedSection>;

/// Per-scalar effects of a region (the scalar half of the data-flow
/// value; sections are unnecessary for scalars).
struct ScalarEffect {
  bool may_write = false;
  bool must_write = false;
  bool exposed_read = false;  // read before any must-write in the region
  bool any_read = false;
};

/// Summary of one array's accesses within a region.
struct ArraySummary {
  const VarDecl* array = nullptr;
  GuardedList reads;
  GuardedList writes;
  GuardedList must_writes;
  GuardedList exposed;
  /// True when some access had a non-affine subscript: may components were
  /// widened to whole-array; MW contributions were dropped.
  bool approximate = false;
};

/// Deterministic ordering for decl-keyed maps: the sema-assigned
/// program-wide uid, not the pointer value. Iteration order over these
/// maps is observable (plan vectors, which array's dependence names the
/// Sequential reason), so it must not depend on heap layout — raw
/// pointer order varies with allocator state, e.g. between cached and
/// uncached analysis runs in the same process.
struct DeclUidLess {
  bool operator()(const VarDecl* a, const VarDecl* b) const {
    return a->uid < b->uid;
  }
};

/// Full data-flow value for a region.
struct RegionSummary {
  std::map<const VarDecl*, ArraySummary, DeclUidLess> arrays;
  std::map<const VarDecl*, ScalarEffect, DeclUidLess> scalars;
  /// Loops (in this region, any depth) that carry a sink() call.
  bool has_sink = false;
  /// True when a resource-budget exhaustion forced a conservative
  /// fallback somewhere inside this region (or a callee summarized under
  /// one). Any loop whose planning consumes a degraded summary is itself
  /// conservatively kept sequential — degradation only ever removes
  /// parallelism, preserving plan monotonicity.
  bool degraded = false;

  ArraySummary& arrayFor(const VarDecl* decl) {
    auto& s = arrays[decl];
    s.array = decl;
    return s;
  }
  ScalarEffect& scalarFor(const VarDecl* decl) { return scalars[decl]; }
};

/// Append o's pieces into dst (set union of guarded lists).
void appendGuarded(GuardedList& dst, const GuardedList& o);

/// Conjoin `p` onto every guard in the list.
void guardList(GuardedList& list, const Pred& p);

/// Predicate embedding (Section 5.1): move the affine upper bound of each
/// guard into the section's constraint system. The residual guard keeps
/// only what the affine domain could not absorb... conservatively we keep
/// the full guard (it is sound for the guard to be stronger than needed),
/// but embedding the constraints is what lets set subtraction cancel
/// covered regions.
void embedGuards(GuardedList& list, VarTable& vt);

/// Union of all sections in the list, ignoring guards (a sound
/// over-approximation for may components).
pb::Set unguardedUnion(const GuardedList& list);

/// PredSubtract (Section 5.2): subtract from every piece of `from` the
/// sections of every piece of `cover` whose guard is implied by the
/// piece's guard. Pieces that become empty are dropped.
GuardedList predSubtract(const GuardedList& from, const GuardedList& cover,
                         VarTable& vt);

/// Kill scalar references: `written` scalars' values change, so sections
/// referencing them are projected (may) or dropped (must), and guards are
/// weakened to true (may) or false (must).
void killScalarsMay(GuardedList& list, const std::vector<const VarDecl*>& written,
                    VarTable& vt);
void killScalarsMust(GuardedList& list,
                     const std::vector<const VarDecl*>& written, VarTable& vt);

std::string guardedListStr(const GuardedList& list, const VarTable& vt,
                           const Interner& interner);

}  // namespace padfa
