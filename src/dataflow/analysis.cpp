#include "dataflow/analysis.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>

#include "lang/sema.h"
#include "support/perf_stats.h"
#include "symbolic/affine.h"

namespace padfa {

namespace {

/// Extraction keep-filter state: which VarIds must be eliminated when
/// projecting a dependence system onto runtime-evaluable parameters.
struct ParamFilter {
  const VarTable* vt;
  std::set<pb::VarId> eliminate_always;  // i1, i2, step aux vars, loop index

  bool keep(pb::VarId v) const {
    if (eliminate_always.count(v)) return false;
    VarKind k = vt->kindOf(v);
    if (k == VarKind::Dim) return false;
    // Params and *outer* loop indices are loop-entry constants. Inner
    // indices were already projected out of body summaries when their
    // loops were promoted, so any surviving Index var is outer.
    return true;
  }
};

class Analyzer {
 public:
  Analyzer(Program& program, const AnalysisConfig& cfg)
      : program_(program), cfg_(cfg), vt_(&program.interner) {}

  AnalysisResult run() {
    auto t0 = std::chrono::steady_clock::now();

    // Resource governance: install the budget for this thread. The
    // injector comes from the config when set, else from the environment
    // (PADFA_FAULT_RATE / PADFA_FAULT_SEED).
    FaultInjector* injector = cfg_.injector;
    std::optional<FaultInjector> env_injector;
    if (!injector) {
      env_injector = FaultInjector::fromEnv();
      if (env_injector) injector = &*env_injector;
    }
    AnalysisBudget budget(BudgetLimits::fromEnv(cfg_.budget), injector);
    BudgetScope scope(budget);

    for (ProcDecl* proc : bottomUpProcOrder(program_)) {
      cur_proc_ = proc;
      // Incremental replay: an unchanged procedure's finalized summary is
      // loaded from the store instead of recomputed. The load callback
      // recreates the summary's VarIds in vt_ in cold-run order, so the
      // ids handed to later (re-analyzed) procedures line up with a cold
      // run of the same source. Replayed procedures get no plans here —
      // the incremental driver merges the persisted plans — so
      // degradeUnplannedLoops must not touch their loops.
      bool replayed = false;
      if (!degrade_rest_ && cfg_.preload && cfg_.preload->replay.count(proc)) {
        RegionSummary s;
        if (cfg_.preload->load(proc, vt_, s)) {
          proc_summaries_[proc] = std::move(s);
          if (cfg_.preload->replayed) cfg_.preload->replayed->insert(proc);
          replayed = true;
        }
      }
      if (!replayed) {
        if (degrade_rest_) {
          // A budget already gave out: stop spending work on analysis and
          // summarize every remaining procedure conservatively.
          proc_summaries_[proc] = conservativeProcSummary(*proc);
        } else {
          try {
            computeAliases(*proc);
            RegionSummary s = analyzeBlock(*proc->body);
            finalizeProcSummary(*proc, s);
            proc_summaries_[proc] = std::move(s);
          } catch (const BudgetExceeded& e) {
            recordExhaustion(e);
            proc_summaries_[proc] = conservativeProcSummary(*proc);
          }
        }
      }
      if (proc_summaries_[proc].has_sink) tree_sink_.insert(proc);
      // Loops skipped by a conservative fallback get degraded plans.
      if (!replayed) degradeUnplannedLoops(*proc->body);
    }

    if (cfg_.export_summaries) {
      result_.proc_summaries = std::move(proc_summaries_);
      result_.vars.decls.resize(vt_.size());
      for (pb::VarId v = 0; v < vt_.size(); ++v) {
        result_.vars.decls[v] = vt_.isDim(v) ? nullptr : vt_.declOf(v);
        if (const pb::LinExpr* a = vt_.aliasOf(v))
          result_.vars.aliases[v] = *a;
      }
    }

    result_.degraded_globally = budget.exhaustedGlobally();
    result_.fm_steps = budget.fmSteps();
    result_.constraints_built = budget.constraintsBuilt();
    result_.pieces_touched = budget.piecesTouched();
    auto t1 = std::chrono::steady_clock::now();
    result_.analysis_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    return std::move(result_);
  }

 private:
  // ---------------------------------------------------- small helpers --

  std::optional<pb::LinExpr> affineOf(const Expr& e) {
    return tryAffine(e, vt_);
  }

  Pred predOf(const Expr& cond) {
    return Pred::fromCondition(cond, program_.interner);
  }

  /// Section for one array access: dim_j == subscript_j for affine
  /// subscripts, plus 0 <= dim_j <= extent_j - 1 bounds where extents are
  /// affine. Returns (section, all_subscripts_affine).
  std::pair<pb::Set, bool> accessSection(const ArrayRefExpr& ref) {
    pb::System sys;
    bool all_affine = true;
    for (size_t j = 0; j < ref.indices.size(); ++j) {
      if (auto a = affineOf(*ref.indices[j])) {
        pb::LinExpr eq = *a;
        eq -= pb::LinExpr::var(vt_.dim(j));
        sys.addEQ0(std::move(eq));
      } else {
        all_affine = false;
      }
    }
    addArrayBounds(sys, *ref.decl);
    return {pb::Set(std::move(sys)), all_affine};
  }

  void addArrayBounds(pb::System& sys, const VarDecl& array) {
    for (size_t j = 0; j < array.rank(); ++j) {
      if (auto ext = affineOf(*array.dims[j])) {
        sys.addGE0(pb::LinExpr::var(vt_.dim(j)));  // d_j >= 0
        pb::LinExpr ub = *ext;
        ub -= pb::LinExpr::var(vt_.dim(j));
        ub.setConstant(ub.constant() - 1);  // extent - d_j - 1 >= 0
        sys.addGE0(std::move(ub));
      }
    }
  }

  /// Whole-array section (bounds only — used for non-affine accesses and
  /// reshape defaults).
  pb::Set wholeArray(const VarDecl& array) {
    pb::System sys;
    addArrayBounds(sys, array);
    return pb::Set(std::move(sys));
  }

  // --------------------------------------------- graceful degradation --
  //
  // Every BudgetExceeded is caught at one of three boundaries (loop,
  // procedure, whole program) and converted into conservative results.
  // After the first exhaustion the rest of the program is summarized
  // conservatively too: plans finalized before the event are identical to
  // the un-governed run, and every later plan is Sequential — so the
  // degraded parallel plan is always a subset of the full one.

  void recordExhaustion(const BudgetExceeded& e) {
    degrade_rest_ = true;
    last_cause_ = budgetCauseName(e.cause());
    result_.exhaustion_causes[last_cause_]++;
  }

  /// Conservative sequential plan for a loop whose analysis blew the
  /// budget. Never overwrites an already-finalized plan.
  void degradePlan(const ForStmt& loop) {
    if (result_.plans.count(&loop)) return;
    LoopPlan plan;
    plan.loop = &loop;
    plan.proc = cur_proc_;
    plan.status = LoopStatus::Sequential;
    plan.degraded = true;
    plan.degrade_cause = last_cause_;
    plan.reason = "analysis budget exhausted (" + last_cause_ + ")";
    result_.plans[&loop] = std::move(plan);
  }

  void degradeUnplannedLoops(const BlockStmt& block) {
    for (const auto& st : block.stmts) {
      switch (st->kind) {
        case StmtKind::For: {
          const auto& f = static_cast<const ForStmt&>(*st);
          degradePlan(f);
          degradeUnplannedLoops(*f.body);
          break;
        }
        case StmtKind::If: {
          const auto& i = static_cast<const IfStmt&>(*st);
          degradeUnplannedLoops(*i.then_block);
          if (i.else_block) degradeUnplannedLoops(*i.else_block);
          break;
        }
        case StmtKind::Block:
          degradeUnplannedLoops(static_cast<const BlockStmt&>(*st));
          break;
        default:
          break;
      }
    }
  }

  /// Sound whole-array/whole-scalar over-approximation of a region,
  /// built without any charged set operations so it cannot itself blow
  /// the budget: every referenced array may be read, written, and
  /// upward-exposed over its whole extent (no must-writes), every
  /// referenced scalar may be written and is exposed (no must-writes).
  RegionSummary conservativeBlockSummary(const BlockStmt& block,
                                         const VarDecl* skip_index) {
    RegionSummary out;
    out.degraded = true;
    collectConservative(block, out);
    if (skip_index) out.scalars.erase(skip_index);
    return out;
  }

  void noteConservativeVars(const Expr& e, RegionSummary& out) {
    std::vector<const VarDecl*> vs;
    collectVars(e, vs);
    for (const VarDecl* d : vs) {
      if (d->isArray()) {
        ArraySummary& as = out.arrayFor(d);
        if (as.approximate) continue;  // already widened
        pb::Set whole = wholeArray(*d);
        as.reads.push_back({Pred::always(), whole});
        as.writes.push_back({Pred::always(), whole});
        as.exposed.push_back({Pred::always(), std::move(whole)});
        as.approximate = true;
      } else {
        ScalarEffect& eff = out.scalarFor(d);
        eff.may_write = true;
        eff.any_read = true;
        eff.exposed_read = true;
        eff.must_write = false;
      }
    }
  }

  void collectConservative(const BlockStmt& block, RegionSummary& out) {
    for (const auto& st : block.stmts) {
      switch (st->kind) {
        case StmtKind::Assign: {
          const auto& as = static_cast<const AssignStmt&>(*st);
          noteConservativeVars(*as.target, out);
          noteConservativeVars(*as.value, out);
          break;
        }
        case StmtKind::If: {
          const auto& i = static_cast<const IfStmt&>(*st);
          noteConservativeVars(*i.cond, out);
          collectConservative(*i.then_block, out);
          if (i.else_block) collectConservative(*i.else_block, out);
          break;
        }
        case StmtKind::For: {
          const auto& f = static_cast<const ForStmt&>(*st);
          noteConservativeVars(*f.lower, out);
          noteConservativeVars(*f.upper, out);
          if (f.step) noteConservativeVars(*f.step, out);
          collectConservative(*f.body, out);
          break;
        }
        case StmtKind::Call: {
          const auto& c = static_cast<const CallStmt&>(*st);
          for (const auto& a : c.args) noteConservativeVars(*a, out);
          if (c.is_sink || tree_sink_.count(c.callee_proc))
            out.has_sink = true;
          auto it = proc_summaries_.find(c.callee_proc);
          if (it != proc_summaries_.end() && it->second.has_sink)
            out.has_sink = true;
          break;
        }
        case StmtKind::Block:
          collectConservative(static_cast<const BlockStmt&>(*st), out);
          break;
        default:
          break;
      }
    }
  }

  /// Caller-visible conservative summary of a procedure: whole-array
  /// effects on array formals only (by-value scalars and locals do not
  /// escape), flagged degraded.
  RegionSummary conservativeProcSummary(const ProcDecl& proc) {
    RegionSummary out = conservativeBlockSummary(*proc.body, nullptr);
    std::erase_if(out.arrays,
                  [](const auto& kv) { return !kv.first->is_param; });
    out.scalars.clear();
    return out;
  }

  // -------------------------------------------------------- traversal --

  RegionSummary analyzeBlock(const BlockStmt& block) {
    RegionSummary acc;
    for (const auto& s : block.stmts) {
      RegionSummary next = analyzeStmt(*s);
      seqCompose(acc, std::move(next));
    }
    closeScope(acc, block);
    return acc;
  }

  RegionSummary analyzeStmt(const Stmt& s) {
    RecursionGuard depth_guard;  // statement-nesting backstop
    switch (s.kind) {
      case StmtKind::Assign:
        return analyzeAssign(static_cast<const AssignStmt&>(s));
      case StmtKind::If:
        return analyzeIf(static_cast<const IfStmt&>(s));
      case StmtKind::For:
        return analyzeFor(static_cast<const ForStmt&>(s));
      case StmtKind::Call:
        return analyzeCall(static_cast<const CallStmt&>(s));
      case StmtKind::Block:
        return analyzeBlock(static_cast<const BlockStmt&>(s));
      case StmtKind::Return:
        return {};
    }
    return {};
  }

  /// Record all reads performed by evaluating `e` (array sections into
  /// reads+exposed, scalars into scalar effects).
  void collectReads(const Expr& e, RegionSummary& out) {
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::RealLit:
        return;
      case ExprKind::VarRef: {
        const auto& v = static_cast<const VarRefExpr&>(e);
        if (!v.decl || v.decl->isArray()) return;
        ScalarEffect& eff = out.scalarFor(v.decl);
        eff.any_read = true;
        if (!eff.must_write) eff.exposed_read = true;
        return;
      }
      case ExprKind::ArrayRef: {
        const auto& a = static_cast<const ArrayRefExpr&>(e);
        for (const auto& idx : a.indices) collectReads(*idx, out);
        auto [sec, affine] = accessSection(a);
        ArraySummary& as = out.arrayFor(a.decl);
        if (!affine) as.approximate = true;
        as.reads.push_back({Pred::always(), sec});
        as.exposed.push_back({Pred::always(), std::move(sec)});
        return;
      }
      case ExprKind::Unary:
        collectReads(*static_cast<const UnaryExpr&>(e).operand, out);
        return;
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        collectReads(*b.lhs, out);
        collectReads(*b.rhs, out);
        return;
      }
      case ExprKind::Intrinsic:
        for (const auto& a : static_cast<const IntrinsicExpr&>(e).args)
          collectReads(*a, out);
        return;
    }
  }

  RegionSummary analyzeAssign(const AssignStmt& s) {
    RegionSummary out;
    collectReads(*s.value, out);
    if (s.target->kind == ExprKind::ArrayRef) {
      const auto& ref = static_cast<const ArrayRefExpr&>(*s.target);
      for (const auto& idx : ref.indices) collectReads(*idx, out);
      auto [sec, affine] = accessSection(ref);
      ArraySummary& as = out.arrayFor(ref.decl);
      as.writes.push_back({Pred::always(), sec});
      if (affine) {
        as.must_writes.push_back({Pred::always(), std::move(sec)});
      } else {
        as.approximate = true;
      }
    } else {
      const auto& ref = static_cast<const VarRefExpr&>(*s.target);
      ScalarEffect& eff = out.scalarFor(ref.decl);
      eff.may_write = true;
      eff.must_write = true;
    }
    return out;
  }

  RegionSummary analyzeIf(const IfStmt& s) {
    RegionSummary out;
    collectReads(*s.cond, out);
    RegionSummary then_s = analyzeBlock(*s.then_block);
    RegionSummary else_s =
        s.else_block ? analyzeBlock(*s.else_block) : RegionSummary{};

    if (cfg_.predicates) {
      Pred p = predOf(*s.cond);
      guardSummary(then_s, p);
      guardSummary(else_s, !p);
      mergeBranches(out, std::move(then_s), std::move(else_s),
                    /*predicated_must=*/true);
    } else {
      mergeBranches(out, std::move(then_s), std::move(else_s),
                    /*predicated_must=*/false);
    }
    return out;
  }

  /// Conjoin `p` onto every guarded list of the summary, embedding affine
  /// constraints into the sections when enabled.
  void guardSummary(RegionSummary& s, const Pred& p) {
    for (auto& [decl, as] : s.arrays) {
      guardList(as.reads, p);
      guardList(as.writes, p);
      guardList(as.must_writes, p);
      guardList(as.exposed, p);
      if (cfg_.embedding) {
        embedGuards(as.reads, vt_);
        embedGuards(as.writes, vt_);
        embedGuards(as.must_writes, vt_);
        embedGuards(as.exposed, vt_);
      }
    }
    // Scalar effects under a predicate: writes become may-writes only.
    if (!p.isTrue()) {
      for (auto& [decl, eff] : s.scalars) eff.must_write = false;
    }
  }

  void mergeBranches(RegionSummary& out, RegionSummary&& a,
                     RegionSummary&& b, bool predicated_must) {
    // May components and exposed reads: plain union.
    for (RegionSummary* src : {&a, &b}) {
      for (auto& [decl, as] : src->arrays) {
        ArraySummary& dst = out.arrayFor(decl);
        appendGuarded(dst.reads, as.reads);
        appendGuarded(dst.writes, as.writes);
        appendGuarded(dst.exposed, as.exposed);
        dst.approximate |= as.approximate;
        if (predicated_must) appendGuarded(dst.must_writes, as.must_writes);
      }
      out.has_sink |= src->has_sink;
      out.degraded |= src->degraded;
    }
    if (!predicated_must) {
      // Baseline: must-written only if written on both paths.
      for (auto& [decl, as] : a.arrays) {
        auto it = b.arrays.find(decl);
        if (it == b.arrays.end()) continue;
        ArraySummary& dst = out.arrayFor(decl);
        for (const auto& ma : as.must_writes) {
          for (const auto& mb : it->second.must_writes) {
            pb::Set inter = ma.section.intersect(mb.section);
            if (!inter.isEmpty())
              dst.must_writes.push_back({Pred::always(), std::move(inter)});
          }
        }
      }
    }
    // Scalars: may = or, must = and, exposed = or.
    for (RegionSummary* src : {&a, &b}) {
      for (auto& [decl, eff] : src->scalars) {
        ScalarEffect& dst = out.scalarFor(decl);
        dst.may_write |= eff.may_write;
        dst.any_read |= eff.any_read;
        // exposure is refined below; keep or-accumulation here
        dst.exposed_read |= eff.exposed_read;
      }
    }
    // must_write = and over branches.
    for (auto& [decl, dst] : out.scalars) {
      bool am = a.scalars.count(decl) && a.scalars[decl].must_write;
      bool bm = b.scalars.count(decl) && b.scalars[decl].must_write;
      if (!(am && bm)) dst.must_write = dst.must_write && false;
      else dst.must_write = true;
    }
  }

  RegionSummary analyzeCall(const CallStmt& s) {
    RegionSummary out;
    if (s.is_sink) {
      for (const auto& a : s.args) collectReads(*a, out);
      out.has_sink = true;
      return out;
    }
    // Evaluating scalar argument expressions reads them at the call.
    const auto& params = s.callee_proc->params;
    for (size_t i = 0; i < s.args.size(); ++i) {
      if (!params[i]->isArray()) collectReads(*s.args[i], out);
    }
    // Summary-dependence relation: this procedure's analysis consumes the
    // callee's summary (change-impact analysis invalidates accordingly).
    result_.summary_deps[cur_proc_].insert(s.callee_proc);
    translateCallee(*s.callee_proc, s, out);
    if (tree_sink_.count(s.callee_proc)) out.has_sink = true;
    return out;
  }

  // ------------------------------------------- sequential composition --

  void seqCompose(RegionSummary& acc, RegionSummary&& next) {
    // Scalars (and arrays) written by `acc` invalidate references in
    // `next`'s guards and sections, which describe values at next-entry.
    std::vector<const VarDecl*> killed;      // weaken, no substitution
    std::vector<const VarDecl*> substable;   // single-assign with alias
    for (const auto& [decl, eff] : acc.scalars) {
      if (!eff.may_write) continue;
      if (alias_expr_.count(decl)) substable.push_back(decl);
      else killed.push_back(decl);
    }
    std::vector<const VarDecl*> written_arrays;
    for (const auto& [decl, as] : acc.arrays) {
      if (!as.writes.empty() || as.approximate) written_arrays.push_back(decl);
    }

    for (auto& [decl, as] : next.arrays) {
      applyKills(as.reads, killed, substable, written_arrays, false);
      applyKills(as.writes, killed, substable, written_arrays, false);
      applyKills(as.exposed, killed, substable, written_arrays, false);
      applyKills(as.must_writes, killed, substable, written_arrays, true);
    }

    // Compose: E := E1 ∪ (E2 ⊖ MW1).
    for (auto& [decl, as] : next.arrays) {
      ArraySummary& dst = acc.arrayFor(decl);
      GuardedList rem = as.exposed;
      if (!dst.must_writes.empty()) {
        rem = predSubtract(rem, dst.must_writes, vt_);
        if (cfg_.embedding) embedGuards(rem, vt_);
      }
      appendGuarded(dst.exposed, rem);
      appendGuarded(dst.reads, as.reads);
      appendGuarded(dst.writes, as.writes);
      appendGuarded(dst.must_writes, as.must_writes);
      dst.approximate |= as.approximate;
    }
    for (auto& [decl, eff] : next.scalars) {
      ScalarEffect& dst = acc.scalarFor(decl);
      if (eff.exposed_read && !dst.must_write) dst.exposed_read = true;
      dst.any_read |= eff.any_read;
      dst.may_write |= eff.may_write;
      dst.must_write |= eff.must_write;
    }
    acc.has_sink |= next.has_sink;
    acc.degraded |= next.degraded;
  }

  /// Kill stale references in one guarded list.
  void applyKills(GuardedList& list, const std::vector<const VarDecl*>& killed,
                  const std::vector<const VarDecl*>& substable,
                  const std::vector<const VarDecl*>& written_arrays,
                  bool is_must) {
    if (!substable.empty()) {
      for (auto& g : list) {
        if (!g.guard.mentionsAnyOf(substable)) continue;
        g.guard = g.guard.substitute(
            [this](const VarDecl* d) -> const Expr* {
              auto it = alias_expr_.find(d);
              return it == alias_expr_.end() ? nullptr : it->second;
            },
            program_.interner);
      }
      // Sections never mention aliased scalars (tryAffine inlines them).
    }
    std::vector<const VarDecl*> weaken = killed;
    weaken.insert(weaken.end(), written_arrays.begin(), written_arrays.end());
    if (weaken.empty()) return;
    if (is_must)
      killScalarsMust(list, killed, vt_);
    else
      killScalarsMay(list, killed, vt_);
    // Guards referencing written arrays (e.g. `if (a[i] > 0)`).
    for (auto& g : list) {
      if (g.guard.mentionsAnyOf(written_arrays))
        g.guard = g.guard.weakenAtoms(written_arrays, /*toTrue=*/!is_must);
    }
    std::erase_if(list, [](const GuardedSection& g) {
      return g.guard.isFalse() || g.section.isEmpty();
    });
  }

  /// Remove block-local declarations from a summary at scope exit: their
  /// storage is private to each execution of the block, so they cannot
  /// carry dependences upward; references to their values are killed.
  void closeScope(RegionSummary& s, const BlockStmt& block) {
    if (block.decls.empty()) return;
    std::vector<const VarDecl*> locals;
    for (const auto& d : block.decls) locals.push_back(d.get());

    for (const auto& d : block.decls) {
      s.arrays.erase(d.get());
      s.scalars.erase(d.get());
    }
    for (auto& [decl, as] : s.arrays) {
      // Sections/guards referencing out-of-scope scalars: aliased locals
      // are already inlined; the rest must be killed.
      std::vector<const VarDecl*> killed;
      for (const VarDecl* l : locals)
        if (!l->isArray() && !alias_expr_.count(l)) killed.push_back(l);
      if (killed.empty()) break;
      killScalarsMay(as.reads, killed, vt_);
      killScalarsMay(as.writes, killed, vt_);
      killScalarsMay(as.exposed, killed, vt_);
      killScalarsMust(as.must_writes, killed, vt_);
    }
  }

  /// Drop everything that is meaningless outside the procedure: local
  /// scalar effects and references to locals inside sections and guards
  /// (formals survive; aliased locals are already expressed via formals).
  void finalizeProcSummary(const ProcDecl& proc, RegionSummary& s) {
    std::vector<const VarDecl*> locals;
    for (const VarDecl* d : proc.all_vars) {
      if (!d->is_param && !d->isArray() && !alias_expr_.count(d))
        locals.push_back(d);
    }
    for (auto& [decl, as] : s.arrays) {
      killScalarsMay(as.reads, locals, vt_);
      killScalarsMay(as.writes, locals, vt_);
      killScalarsMay(as.exposed, locals, vt_);
      killScalarsMust(as.must_writes, locals, vt_);
    }
    // Scalar params are by-value: their effects do not escape.
    s.scalars.clear();
  }

  // -------------------------------------------------- alias detection --

  /// Forward-substitution pass: a scalar assigned exactly once, at the
  /// top level of the procedure body, before any read, with an affine
  /// RHS, becomes an alias (e.g. `m = n - 1`). Keeps sections expressed
  /// over procedure parameters.
  void computeAliases(const ProcDecl& proc) {
    alias_expr_.clear();
    std::map<const VarDecl*, int> assign_counts;
    countAssigns(*proc.body, assign_counts);
    std::set<const VarDecl*> read_so_far;
    for (const auto& st : proc.body->stmts) {
      if (st->kind != StmtKind::Assign) {
        markReads(*st, read_so_far);
        continue;
      }
      const auto& as = static_cast<const AssignStmt&>(*st);
      std::vector<const VarDecl*> value_reads;
      collectVars(*as.value, value_reads);
      if (as.target->kind == ExprKind::VarRef) {
        const VarDecl* t = static_cast<const VarRefExpr&>(*as.target).decl;
        if (t && !t->is_param && assign_counts[t] == 1 &&
            !read_so_far.count(t) && t->elem_type == Type::Int) {
          bool rhs_clean = true;
          for (const VarDecl* r : value_reads)
            if (r->isArray() || assign_counts[r] > 0) rhs_clean = false;
          if (rhs_clean) {
            if (auto aff = affineOf(*as.value)) {
              vt_.setAlias(vt_.idFor(t), *aff);
              alias_expr_[t] = as.value.get();
            }
          }
        }
      }
      markReads(*st, read_so_far);
    }
  }

  void countAssigns(const BlockStmt& b, std::map<const VarDecl*, int>& out) {
    for (const auto& st : b.stmts) {
      switch (st->kind) {
        case StmtKind::Assign: {
          const auto& as = static_cast<const AssignStmt&>(*st);
          if (as.target->kind == ExprKind::VarRef) {
            const VarDecl* t =
                static_cast<const VarRefExpr&>(*as.target).decl;
            if (t) out[t]++;
          }
          break;
        }
        case StmtKind::If: {
          const auto& i = static_cast<const IfStmt&>(*st);
          countAssigns(*i.then_block, out);
          if (i.else_block) countAssigns(*i.else_block, out);
          break;
        }
        case StmtKind::For:
          countAssigns(*static_cast<const ForStmt&>(*st).body, out);
          break;
        case StmtKind::Block:
          countAssigns(static_cast<const BlockStmt&>(*st), out);
          break;
        default:
          break;
      }
    }
  }

  void markReads(const Stmt& st, std::set<const VarDecl*>& reads) {
    auto addExpr = [&reads](const Expr& e) {
      std::vector<const VarDecl*> vs;
      collectVars(e, vs);
      reads.insert(vs.begin(), vs.end());
    };
    switch (st.kind) {
      case StmtKind::Assign: {
        const auto& as = static_cast<const AssignStmt&>(st);
        addExpr(*as.value);
        if (as.target->kind == ExprKind::ArrayRef) {
          for (const auto& idx :
               static_cast<const ArrayRefExpr&>(*as.target).indices)
            addExpr(*idx);
        }
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(st);
        addExpr(*i.cond);
        for (const auto& c : i.then_block->stmts) markReads(*c, reads);
        if (i.else_block)
          for (const auto& c : i.else_block->stmts) markReads(*c, reads);
        break;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(st);
        addExpr(*f.lower);
        addExpr(*f.upper);
        if (f.step) addExpr(*f.step);
        for (const auto& c : f.body->stmts) markReads(*c, reads);
        break;
      }
      case StmtKind::Call: {
        const auto& c = static_cast<const CallStmt&>(st);
        for (const auto& a : c.args) addExpr(*a);
        break;
      }
      case StmtKind::Block:
        for (const auto& c : static_cast<const BlockStmt&>(st).stmts)
          markReads(*c, reads);
        break;
      default:
        break;
    }
  }

  // --------------------------------------- interprocedural translation --

  void translateCallee(const ProcDecl& callee, const CallStmt& call,
                       RegionSummary& out);
  /// Append a cached translation delta (array components only) into the
  /// caller region's summary.
  static void mergeTranslated(const RegionSummary& delta, RegionSummary& out);
  void translateList(const GuardedList& src, GuardedList& dst,
                     const std::vector<std::pair<pb::VarId,
                                                 std::optional<pb::LinExpr>>>&
                         scalar_map,
                     const std::function<const Expr*(const VarDecl*)>& subst,
                     const std::vector<const VarDecl*>& unmapped,
                     bool is_must);
  void reshapeTranslate(const VarDecl& formal, const VarDecl& actual,
                        const ArraySummary& src, const CallStmt& call,
                        const std::function<const Expr*(const VarDecl*)>&
                            subst,
                        RegionSummary& out);

  // ----------------------------------------------------- loop analysis --

  RegionSummary analyzeFor(const ForStmt& loop);
  void planLoop(const ForStmt& loop, const RegionSummary& body);
  RegionSummary promoteLoop(const ForStmt& loop, const RegionSummary& body);

  /// Bounds constraints for an iteration variable standing for `loop`'s
  /// index; appends aux step variables to `aux` when step > 1.
  pb::System boundsFor(const ForStmt& loop, pb::VarId iter,
                       std::vector<pb::VarId>* aux);

  /// Weakened (loop-invariant) copy of a guarded list: guards and
  /// sections that reference body-modified scalars are killed; guards
  /// that reference the loop index are weakened.
  GuardedList loopInvariantList(const GuardedList& src, const ForStmt& loop,
                                const RegionSummary& body, bool is_must);

  bool liveAfterLoop(const VarDecl* decl, const ForStmt& loop);
  bool readsDeclOutside(const BlockStmt& block, const VarDecl* decl,
                        const Stmt* skip);

  std::map<const VarDecl*, ReductionOp> recognizeReductions(
      const ForStmt& loop);

  /// Render a conjunction of parameter constraints as a predicate; returns
  /// nullopt if a variable cannot be rendered back to a program scalar.
  std::optional<Pred> systemToPred(const pb::System& sys);

  bool evaluableAtLoopEntry(const Pred& p, const RegionSummary& body);

  // --- members ---
  Program& program_;
  AnalysisConfig cfg_;
  VarTable vt_;
  AnalysisResult result_;
  std::map<const ProcDecl*, RegionSummary> proc_summaries_;
  std::set<const ProcDecl*> tree_sink_;  // procs that transitively sink
  const ProcDecl* cur_proc_ = nullptr;
  std::map<const VarDecl*, const Expr*> alias_expr_;
  std::set<std::string> reshape_pred_keys_;
  /// Per-(callee, call-site-substitution) memo of translated summaries:
  /// hot callees are substituted once per distinct argument signature
  /// instead of once per call site. Keys are collision-free: the callee's
  /// symbol id plus each actual's structural key (scalars) or program-
  /// wide decl uid (arrays); callee summaries and the alias environment
  /// the actuals render under are fixed for the lifetime of one analyzer,
  /// so entries never need invalidation. Per-analyzer (single-threaded).
  std::map<std::string, RegionSummary> translate_cache_;
  /// Set at the first budget exhaustion; all later loops degrade to
  /// Sequential so the surviving parallel plan is exactly the prefix that
  /// was finalized before the event.
  bool degrade_rest_ = false;
  std::string last_cause_ = "budget";
  /// Bounds systems of the loops enclosing the region being analyzed
  /// (over their real index VarIds). Used to "gist" extracted conditions:
  /// a breaking condition implied by the context is vacuous.
  std::vector<pb::System> loop_ctx_;

  pb::System contextSystem() const {
    pb::System ctx;
    for (const auto& s : loop_ctx_) ctx.conjoin(s);
    return ctx;
  }

  /// Drop constraints that already follow from the enclosing-loop context
  /// (the gist of `sys` given the context).
  pb::System gistAgainstContext(const pb::System& sys) {
    pb::System ctx = contextSystem();
    pb::System out;
    for (const auto& c : sys.constraints()) {
      bool implied = false;
      if (c.kind == pb::CmpKind::GE0) {
        pb::System probe = ctx;
        probe.add(c.negatedGE());
        implied = !probe.feasible();
      } else {
        pb::System p1 = ctx;
        p1.add(pb::Constraint::ge0(c.expr).negatedGE());
        pb::System p2 = ctx;
        p2.add(pb::Constraint::ge0(c.expr.negated()).negatedGE());
        implied = !p1.feasible() && !p2.feasible();
      }
      if (!implied) out.add(c);
    }
    return out;
  }
};

// ======================================================================
// Interprocedural translation
// ======================================================================

void Analyzer::translateCallee(const ProcDecl& callee, const CallStmt& call,
                               RegionSummary& out) {
  auto summary_it = proc_summaries_.find(&callee);
  if (summary_it == proc_summaries_.end()) return;  // no summary: leaf w/o effects
  const RegionSummary& src = summary_it->second;

  // Record sink propagation.
  if (src.has_sink) tree_sink_.insert(&callee);
  // A degraded callee summary taints every caller region containing the
  // call: its whole-array sections are sound, but loops planned over them
  // must stay sequential.
  out.degraded |= src.degraded;

  // Scalar formal -> affine actual mapping (by VarId), plus the Expr-level
  // substitution for guards.
  std::vector<std::pair<pb::VarId, std::optional<pb::LinExpr>>> scalar_map;
  std::map<const VarDecl*, const Expr*> expr_map;
  std::map<const VarDecl*, const VarDecl*> array_map;
  std::vector<const VarDecl*> unmapped;  // formals w/o affine actuals
  for (size_t i = 0; i < callee.params.size(); ++i) {
    const VarDecl* formal = callee.params[i].get();
    const Expr* actual = call.args[i].get();
    if (formal->isArray()) {
      const auto& ref = static_cast<const VarRefExpr&>(*actual);
      array_map[formal] = ref.decl;
      continue;
    }
    expr_map[formal] = actual;
    if (formal->elem_type == Type::Int) {
      scalar_map.push_back({vt_.idFor(formal), affineOf(*actual)});
      if (!scalar_map.back().second) unmapped.push_back(formal);
    }
  }
  auto subst = [&expr_map](const VarDecl* d) -> const Expr* {
    auto it = expr_map.find(d);
    return it == expr_map.end() ? nullptr : it->second;
  };

  // Translated-summary memo. The scalar_map construction above stays
  // eager on purpose: its vt_.idFor/affineOf side effects must happen on
  // every call so a cache hit leaves VarId assignment order identical to
  // the uncached engine. Bypassed under a governed budget — translation
  // charge points are part of the degradation contract.
  bool use_cache = cachesEnabled();
  if (use_cache)
    if (AnalysisBudget* b = AnalysisBudget::current())
      use_cache = !b->governed();
  std::string ck;
  if (use_cache) {
    ck = std::to_string(callee.name.id);
    for (size_t i = 0; i < callee.params.size(); ++i) {
      ck += '(';
      if (callee.params[i]->isArray()) {
        const auto& ref = static_cast<const VarRefExpr&>(*call.args[i]);
        ck += 'a';
        ck += std::to_string(ref.decl ? ref.decl->uid : 0);
      } else {
        ck += 's';
        ck += exprStructuralKey(*call.args[i]);
      }
      ck += ')';
    }
    CacheStats& stats = PerfStats::instance().summary;
    auto hit = translate_cache_.find(ck);
    if (hit != translate_cache_.end()) {
      stats.hit();
      mergeTranslated(hit->second, out);
      return;
    }
    stats.miss();
  }

  RegionSummary delta;
  for (const auto& [formal, asum] : src.arrays) {
    auto am = array_map.find(formal);
    if (am == array_map.end()) continue;  // defensive
    const VarDecl* actual = am->second;
    if (formal->rank() == actual->rank()) {
      ArraySummary& dst = delta.arrayFor(actual);
      translateList(asum.reads, dst.reads, scalar_map, subst, unmapped, false);
      translateList(asum.writes, dst.writes, scalar_map, subst, unmapped,
                    false);
      translateList(asum.exposed, dst.exposed, scalar_map, subst, unmapped,
                    false);
      translateList(asum.must_writes, dst.must_writes, scalar_map, subst,
                    unmapped, true);
      dst.approximate |= asum.approximate;
    } else {
      reshapeTranslate(*formal, *actual, asum, call, subst, delta);
    }
  }
  if (use_cache) {
    PerfStats::instance().summary.insert();
    auto it = translate_cache_.emplace(std::move(ck), std::move(delta)).first;
    mergeTranslated(it->second, out);
  } else {
    mergeTranslated(delta, out);
  }
}

void Analyzer::mergeTranslated(const RegionSummary& delta,
                               RegionSummary& out) {
  for (const auto& [decl, asum] : delta.arrays) {
    ArraySummary& dst = out.arrayFor(decl);
    dst.reads.insert(dst.reads.end(), asum.reads.begin(), asum.reads.end());
    dst.writes.insert(dst.writes.end(), asum.writes.begin(),
                      asum.writes.end());
    dst.must_writes.insert(dst.must_writes.end(), asum.must_writes.begin(),
                           asum.must_writes.end());
    dst.exposed.insert(dst.exposed.end(), asum.exposed.begin(),
                       asum.exposed.end());
    dst.approximate |= asum.approximate;
  }
}

void Analyzer::translateList(
    const GuardedList& src, GuardedList& dst,
    const std::vector<std::pair<pb::VarId, std::optional<pb::LinExpr>>>&
        scalar_map,
    const std::function<const Expr*(const VarDecl*)>& subst,
    const std::vector<const VarDecl*>& unmapped, bool is_must) {
  for (const auto& g : src) {
    GuardedSection t;
    t.guard = g.guard.substitute(subst, program_.interner);
    if (!unmapped.empty())
      t.guard = t.guard.weakenAtoms(unmapped, /*toTrue=*/!is_must);
    if (t.guard.isFalse()) continue;
    t.section = g.section;
    bool dropped = false;
    for (const auto& [fid, repl] : scalar_map) {
      if (repl) {
        t.section.substitute(fid, *repl);
      } else {
        // Non-affine actual: kill the formal's id.
        bool mentions = false;
        for (const auto& piece : t.section.pieces())
          for (pb::VarId v : piece.usedVars())
            if (v == fid) mentions = true;
        if (!mentions) continue;
        if (is_must) {
          dropped = true;
          break;
        }
        t.section.projectOnto([fid](pb::VarId v) { return v != fid; });
      }
    }
    if (dropped) continue;
    t.section.simplify();
    if (t.section.isEmpty()) continue;
    dst.push_back(std::move(t));
  }
}

void Analyzer::reshapeTranslate(
    const VarDecl& formal, const VarDecl& actual, const ArraySummary& src,
    const CallStmt& call,
    const std::function<const Expr*(const VarDecl*)>& subst,
    RegionSummary& out) {
  (void)call;
  ArraySummary& dst = out.arrayFor(&actual);
  bool has_read = !src.reads.empty() || !src.exposed.empty();
  bool has_write = !src.writes.empty();
  pb::Set whole = wholeArray(actual);

  // Default (conservative) translation: whole-array may accesses.
  if (has_read) {
    dst.reads.push_back({Pred::always(), whole});
    dst.exposed.push_back({Pred::always(), whole});
  }
  if (has_write) dst.writes.push_back({Pred::always(), whole});
  dst.approximate = true;

  // Optimistic translation (the paper's Reshape): when the callee
  // must-writes its whole 1-D formal [0 .. len-1], the actual array is
  // entirely written iff len equals the actual's total element count.
  if (!cfg_.predicates || formal.rank() != 1 || !has_write) return;
  // Coverage check in the callee's space.
  auto len_aff = affineOf(*formal.dims[0]);
  if (!len_aff) return;
  pb::System full;
  full.addGE0(pb::LinExpr::var(vt_.dim(0)));
  pb::LinExpr ub = *len_aff;
  ub -= pb::LinExpr::var(vt_.dim(0));
  ub.setConstant(ub.constant() - 1);
  full.addGE0(std::move(ub));
  pb::Set full_set{std::move(full)};
  GuardedList unconditional;
  for (const auto& m : src.must_writes)
    if (m.guard.isTrue()) unconditional.push_back(m);
  if (unconditional.empty()) return;
  if (!full_set.isSubsetOf(unguardedUnion(unconditional))) return;

  // Build the divisibility/size predicate: translated_len == total(actual).
  ExprPtr len_expr = cloneExprSubst(*formal.dims[0], subst);
  ExprPtr total;
  for (const auto& dim : actual.dims) {
    ExprPtr d = cloneExpr(*dim);
    if (!total) {
      total = std::move(d);
    } else {
      auto mul = std::make_unique<BinaryExpr>(BinOp::Mul, std::move(total),
                                              std::move(d));
      mul->type = Type::Int;
      total = std::move(mul);
    }
  }
  Pred size_eq = Pred::atom(AtomOp::Eq, *len_expr, *total, false,
                            program_.interner);
  if (size_eq.isFalse()) return;
  reshape_pred_keys_.insert(size_eq.key());
  dst.must_writes.push_back({size_eq, whole});
}

// ======================================================================
// Loops
// ======================================================================

pb::System Analyzer::boundsFor(const ForStmt& loop, pb::VarId iter,
                               std::vector<pb::VarId>* aux) {
  pb::System sys;
  auto lb = affineOf(*loop.lower);
  auto ub = affineOf(*loop.upper);
  int64_t step = 1;
  if (loop.step) {
    auto s = tryConstInt(*loop.step);
    step = s.value_or(0);
  }
  if (lb) {
    pb::LinExpr ge = pb::LinExpr::var(iter);
    ge -= *lb;
    sys.addGE0(std::move(ge));  // iter >= lb
  }
  if (ub) {
    pb::LinExpr le = *ub;
    le -= pb::LinExpr::var(iter);
    sys.addGE0(std::move(le));  // iter <= ub
  }
  if (step > 1 && lb && aux) {
    pb::VarId k = vt_.fresh(VarKind::Index, "@k" + std::to_string(iter));
    aux->push_back(k);
    // iter == lb + step * k, k >= 0.
    pb::LinExpr eq = pb::LinExpr::var(iter);
    eq -= *lb;
    eq -= pb::LinExpr::var(k, step);
    sys.addEQ0(std::move(eq));
    sys.addGE0(pb::LinExpr::var(k));
  }
  return sys;
}

GuardedList Analyzer::loopInvariantList(const GuardedList& src,
                                        const ForStmt& loop,
                                        const RegionSummary& body,
                                        bool is_must) {
  std::vector<const VarDecl*> body_written;
  for (const auto& [decl, eff] : body.scalars)
    if (eff.may_write) body_written.push_back(decl);
  std::vector<const VarDecl*> body_written_arrays;
  for (const auto& [decl, as] : body.arrays)
    if (!as.writes.empty() || as.approximate)
      body_written_arrays.push_back(decl);

  GuardedList out = src;
  // Guards mentioning the loop index are not loop-entry-evaluable.
  std::vector<const VarDecl*> weaken_vars = body_written;
  weaken_vars.push_back(loop.index_decl);
  weaken_vars.insert(weaken_vars.end(), body_written_arrays.begin(),
                     body_written_arrays.end());
  for (auto& g : out)
    g.guard = g.guard.weakenAtoms(weaken_vars, /*toTrue=*/!is_must);
  // Sections referencing body-written scalars are stale across iterations.
  if (is_must)
    killScalarsMust(out, body_written, vt_);
  else
    killScalarsMay(out, body_written, vt_);
  std::erase_if(out, [](const GuardedSection& g) {
    return g.guard.isFalse() || g.section.isEmpty();
  });
  return out;
}

std::optional<Pred> Analyzer::systemToPred(const pb::System& sys) {
  Pred acc = Pred::always();
  for (const auto& c : sys.constraints()) {
    Pred p = Pred::fromAffineGE0(c.expr, vt_, program_.interner);
    if (p.isFalse() && !c.expr.isConstant()) return std::nullopt;  // unrenderable
    if (c.kind == pb::CmpKind::EQ0) {
      Pred q = Pred::fromAffineGE0(c.expr.negated(), vt_, program_.interner);
      if (q.isFalse() && !c.expr.isConstant()) return std::nullopt;
      p = p && q;
    }
    acc = acc && p;
  }
  return acc;
}

bool Analyzer::evaluableAtLoopEntry(const Pred& p, const RegionSummary& body) {
  std::vector<const VarDecl*> used;
  p.collectReferencedVars(used);
  for (const VarDecl* d : used) {
    if (d->isArray()) return false;  // array-valued atoms: not loop-entry safe
    auto it = body.scalars.find(d);
    if (it != body.scalars.end() && it->second.may_write) return false;
  }
  return true;
}

std::map<const VarDecl*, ReductionOp> Analyzer::recognizeReductions(
    const ForStmt& loop) {
  struct Cand {
    bool bad = false;
    bool seen = false;
    ReductionOp op = ReductionOp::Sum;
  };
  std::map<const VarDecl*, Cand> cands;

  // Does `e` reference `d` anywhere?
  auto refs = [](const Expr& e, const VarDecl* d) {
    std::vector<const VarDecl*> vs;
    collectVars(e, vs);
    return std::find(vs.begin(), vs.end(), d) != vs.end();
  };

  // Try to match `s = s op e1 op e2 op ...` (op-chain with exactly one
  // occurrence of s among the leaves) or `s = min|max(s, e)`.
  auto matchReduction = [&](const AssignStmt& as, const VarDecl* s)
      -> std::optional<std::pair<ReductionOp, const Expr*>> {
    const Expr& v = *as.value;
    if (v.kind == ExprKind::Binary) {
      const auto& b = static_cast<const BinaryExpr&>(v);
      if (b.op != BinOp::Add && b.op != BinOp::Mul) return std::nullopt;
      ReductionOp op = b.op == BinOp::Add ? ReductionOp::Sum : ReductionOp::Prod;
      // Flatten the same-op chain into leaves.
      std::vector<const Expr*> leaves;
      std::vector<const Expr*> work = {&v};
      while (!work.empty()) {
        const Expr* e = work.back();
        work.pop_back();
        if (e->kind == ExprKind::Binary &&
            static_cast<const BinaryExpr*>(e)->op == b.op) {
          work.push_back(static_cast<const BinaryExpr*>(e)->lhs.get());
          work.push_back(static_cast<const BinaryExpr*>(e)->rhs.get());
        } else {
          leaves.push_back(e);
        }
      }
      auto isS = [&](const Expr& e) {
        return e.kind == ExprKind::VarRef &&
               static_cast<const VarRefExpr&>(e).decl == s;
      };
      const Expr* other = nullptr;
      int s_count = 0;
      for (const Expr* leaf : leaves) {
        if (isS(*leaf)) {
          ++s_count;
        } else {
          if (refs(*leaf, s)) return std::nullopt;
          other = leaf;
        }
      }
      if (s_count != 1 || !other) return std::nullopt;
      return {{op, other}};
    }
    if (v.kind == ExprKind::Intrinsic) {
      const auto& c = static_cast<const IntrinsicExpr&>(v);
      if (c.fn != Intrinsic::Min && c.fn != Intrinsic::Max)
        return std::nullopt;
      if (c.args.size() != 2) return std::nullopt;
      ReductionOp op =
          c.fn == Intrinsic::Min ? ReductionOp::Min : ReductionOp::Max;
      auto isS = [&](const Expr& e) {
        return e.kind == ExprKind::VarRef &&
               static_cast<const VarRefExpr&>(e).decl == s;
      };
      if (isS(*c.args[0]) && !refs(*c.args[1], s))
        return {{op, c.args[1].get()}};
      if (isS(*c.args[1]) && !refs(*c.args[0], s))
        return {{op, c.args[0].get()}};
    }
    return std::nullopt;
  };

  std::function<void(const BlockStmt&)> walk = [&](const BlockStmt& b) {
    for (const auto& st : b.stmts) {
      switch (st->kind) {
        case StmtKind::Assign: {
          const auto& as = static_cast<const AssignStmt&>(*st);
          const VarDecl* target =
              as.target->kind == ExprKind::VarRef
                  ? static_cast<const VarRefExpr&>(*as.target).decl
                  : nullptr;
          if (target && !target->isArray() && !target->is_loop_index) {
            if (auto m = matchReduction(as, target)) {
              Cand& c = cands[target];
              if (c.seen && c.op != m->first) c.bad = true;
              c.seen = true;
              c.op = m->first;
              // The matched statement is the only allowed occurrence
              // shape; any reference to target elsewhere marks bad below,
              // so skip re-walking this statement for the target only.
              std::vector<const VarDecl*> vs;
              collectVars(*as.value, vs);
              for (const VarDecl* d : vs)
                if (d != target) cands[d].bad = true;
              continue;
            }
          }
          // Non-reduction statement: every referenced scalar is
          // disqualified; a written scalar is disqualified too.
          std::vector<const VarDecl*> vs;
          collectVars(*as.target, vs);
          collectVars(*as.value, vs);
          for (const VarDecl* d : vs) cands[d].bad = true;
          break;
        }
        case StmtKind::If: {
          const auto& i = static_cast<const IfStmt&>(*st);
          std::vector<const VarDecl*> vs;
          collectVars(*i.cond, vs);
          for (const VarDecl* d : vs) cands[d].bad = true;
          walk(*i.then_block);
          if (i.else_block) walk(*i.else_block);
          break;
        }
        case StmtKind::For: {
          const auto& f = static_cast<const ForStmt&>(*st);
          std::vector<const VarDecl*> vs;
          collectVars(*f.lower, vs);
          collectVars(*f.upper, vs);
          if (f.step) collectVars(*f.step, vs);
          for (const VarDecl* d : vs) cands[d].bad = true;
          walk(*f.body);
          break;
        }
        case StmtKind::Call: {
          const auto& c = static_cast<const CallStmt&>(*st);
          std::vector<const VarDecl*> vs;
          for (const auto& a : c.args) collectVars(*a, vs);
          for (const VarDecl* d : vs) cands[d].bad = true;
          break;
        }
        case StmtKind::Block:
          walk(static_cast<const BlockStmt&>(*st));
          break;
        default:
          break;
      }
    }
  };
  walk(*loop.body);

  std::map<const VarDecl*, ReductionOp> out;
  for (const auto& [decl, c] : cands)
    if (c.seen && !c.bad) out[decl] = c.op;
  return out;
}

bool Analyzer::readsDeclOutside(const BlockStmt& block, const VarDecl* decl,
                                const Stmt* skip) {
  auto exprReads = [decl](const Expr& e) {
    std::vector<const VarDecl*> vs;
    collectVars(e, vs);
    return std::find(vs.begin(), vs.end(), decl) != vs.end();
  };
  for (const auto& st : block.stmts) {
    if (st.get() == skip) continue;
    switch (st->kind) {
      case StmtKind::Assign: {
        const auto& as = static_cast<const AssignStmt&>(*st);
        if (exprReads(*as.value)) return true;
        if (as.target->kind == ExprKind::ArrayRef) {
          for (const auto& idx :
               static_cast<const ArrayRefExpr&>(*as.target).indices)
            if (exprReads(*idx)) return true;
        }
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*st);
        if (exprReads(*i.cond)) return true;
        if (readsDeclOutside(*i.then_block, decl, skip)) return true;
        if (i.else_block && readsDeclOutside(*i.else_block, decl, skip))
          return true;
        break;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(*st);
        if (exprReads(*f.lower) || exprReads(*f.upper)) return true;
        if (f.step && exprReads(*f.step)) return true;
        if (readsDeclOutside(*f.body, decl, skip)) return true;
        break;
      }
      case StmtKind::Call: {
        const auto& c = static_cast<const CallStmt&>(*st);
        for (const auto& a : c.args)
          if (exprReads(*a)) return true;  // whole-array args count as reads
        break;
      }
      case StmtKind::Block:
        if (readsDeclOutside(static_cast<const BlockStmt&>(*st), decl, skip))
          return true;
        break;
      default:
        break;
    }
  }
  return false;
}

bool Analyzer::liveAfterLoop(const VarDecl* decl, const ForStmt& loop) {
  if (decl->is_param) return true;
  return readsDeclOutside(*cur_proc_->body, decl, &loop);
}

void Analyzer::planLoop(const ForStmt& loop, const RegionSummary& body) {
  LoopPlan plan;
  plan.loop = &loop;
  plan.proc = cur_proc_;
  auto finish = [&](LoopStatus st, std::string reason = "") {
    plan.status = st;
    plan.reason = std::move(reason);
    result_.plans[&loop] = std::move(plan);
  };

  // ---------------- degradation ----------------
  // A degraded body summary is a sound over-approximation, but testing
  // dependence (or extracting run-time conditions) over it could still
  // promote the loop past Sequential in ways the un-degraded analysis
  // would not; keep every such loop sequential.
  if (body.degraded || degrade_rest_) {
    plan.degraded = true;
    plan.degrade_cause = last_cause_;
    return finish(LoopStatus::Sequential,
                  "analysis budget exhausted (" + last_cause_ + ")");
  }

  // ---------------- candidacy ----------------
  if (body.has_sink) {
    return finish(LoopStatus::NotCandidate, "contains I/O (sink)");
  }
  if (loop.step) {
    auto s = tryConstInt(*loop.step);
    if (!s || *s <= 0)
      return finish(LoopStatus::NotCandidate,
                    "non-constant or non-positive step");
  }
  {
    std::vector<const VarDecl*> bound_vars;
    collectVars(*loop.lower, bound_vars);
    collectVars(*loop.upper, bound_vars);
    if (loop.step) collectVars(*loop.step, bound_vars);
    for (const VarDecl* d : bound_vars) {
      auto it = body.scalars.find(d);
      if (it != body.scalars.end() && it->second.may_write)
        return finish(LoopStatus::NotCandidate, "loop-variant bounds");
      auto ita = body.arrays.find(d);
      if (ita != body.arrays.end() && !ita->second.writes.empty())
        return finish(LoopStatus::NotCandidate, "loop-variant bounds");
    }
  }

  // ---------------- scalars ----------------
  auto reductions = recognizeReductions(loop);
  for (const auto& [decl, eff] : body.scalars) {
    if (!eff.may_write) continue;
    auto rit = reductions.find(decl);
    if (rit != reductions.end()) {
      plan.reductions.push_back({decl, rit->second});
      continue;
    }
    if (!eff.exposed_read) {
      plan.private_scalars.push_back(decl);
      if (liveAfterLoop(decl, loop)) {
        if (eff.must_write) {
          plan.copy_out_scalars.push_back(decl);
        } else {
          return finish(
              LoopStatus::Sequential,
              "conditionally-written scalar live after loop");
        }
      }
      continue;
    }
    return finish(LoopStatus::Sequential, "scalar recurrence");
  }

  // ---------------- arrays ----------------
  pb::VarId i_var = vt_.idFor(loop.index_decl);
  std::vector<pb::VarId> aux1, aux2;
  pb::VarId i1 = vt_.fresh(VarKind::Index, "@i1");
  pb::VarId i2 = vt_.fresh(VarKind::Index, "@i2");
  pb::System b1 = boundsFor(loop, i1, &aux1);
  pb::System b2 = boundsFor(loop, i2, &aux2);
  pb::System order;
  {
    pb::LinExpr lt = pb::LinExpr::var(i2);
    lt -= pb::LinExpr::var(i1);
    lt.setConstant(lt.constant() - 1);
    order.addGE0(std::move(lt));  // i1 <= i2 - 1
  }
  ParamFilter pf{&vt_, {i_var, i1, i2}};
  for (pb::VarId a : aux1) pf.eliminate_always.insert(a);
  for (pb::VarId a : aux2) pf.eliminate_always.insert(a);

  struct TestResult {
    bool ct = true;        // compile-time independent
    Pred cond;             // run-time independence condition (default true)
    bool hopeless = false; // unconditional dependence found
  };

  // Cross-iteration emptiness test between guarded lists A (writes) and B.
  auto testPairs = [&](const GuardedList& A, const GuardedList& B,
                       bool flow_only) {
    TestResult res;
    for (const auto& a : A) {
      for (const auto& b : B) {
        int norders = flow_only ? 1 : 2;
        for (int ord = 0; ord < norders; ++ord) {
          pb::VarId ia = ord == 0 ? i1 : i2;
          pb::VarId ib = ord == 0 ? i2 : i1;
          for (const auto& pa : a.section.pieces()) {
            for (const auto& pb_ : b.section.pieces()) {
              pb::System sys = pa;
              sys.substitute(i_var, pb::LinExpr::var(ia));
              pb::System sysb = pb_;
              sysb.substitute(i_var, pb::LinExpr::var(ib));
              sys.conjoin(sysb);
              sys.conjoin(b1);
              sys.conjoin(b2);
              sys.conjoin(order);
              if (!sys.normalize() || !sys.feasible()) continue;
              // Dependence possible: assemble the independence condition.
              Pred g = a.guard && b.guard;
              if (g.isFalse()) continue;  // contradictory guards: no dep
              Pred piece_cond = Pred::never();
              if (!g.isTrue()) {
                piece_cond = piece_cond || !g;
                plan.used_predicates = true;
              }
              if (cfg_.extraction) {
                pb::System proj = sys;
                if (proj.projectOnto(
                        [&pf](pb::VarId v) { return pf.keep(v); })) {
                  proj = gistAgainstContext(proj);
                  if (auto cp = systemToPred(proj)) {
                    if (!cp->isTrue()) {
                      piece_cond = piece_cond || !(*cp);
                      plan.used_extraction = true;
                    }
                  }
                }
              }
              if (piece_cond.isTrue()) continue;  // tautology: no dep
              if (piece_cond.isFalse()) {
                res.hopeless = true;
                res.ct = false;
                res.cond = Pred::never();
                return res;
              }
              res.ct = false;
              res.cond = res.cond && piece_cond;
            }
          }
        }
      }
    }
    return res;
  };

  Pred total_test = Pred::always();
  bool needs_runtime = false;

  for (const auto& [decl, as] : body.arrays) {
    if (as.writes.empty() && !as.approximate) continue;  // read-only array

    GuardedList Wl = loopInvariantList(as.writes, loop, body, false);
    GuardedList Rl = loopInvariantList(as.reads, loop, body, false);
    GuardedList El = loopInvariantList(as.exposed, loop, body, false);
    GuardedList MWl = loopInvariantList(as.must_writes, loop, body, true);

    // Attribution for the evaluation's category labels: a test passing
    // over guarded pieces relied on predicated values (and, when
    // embedding is on, on their embedded constraints — an embedded
    // contradiction makes the dependence system infeasible before the
    // guard is ever inspected below).
    for (const GuardedList* l : {&Wl, &Rl, &El, &MWl}) {
      for (const auto& g : *l) {
        if (reshape_pred_keys_.count(g.guard.key())) plan.used_reshape = true;
        if (!g.guard.isTrue()) plan.used_predicates = true;
      }
    }

    GuardedList RWl = Rl;
    appendGuarded(RWl, Wl);
    TestResult indep = testPairs(Wl, RWl, /*flow_only=*/false);
    if (indep.ct) continue;  // independent at compile time

    // Try privatization: no cross-iteration flow into exposed reads.
    TestResult priv = testPairs(Wl, El, /*flow_only=*/true);
    bool copy_in = !El.empty();
    bool copy_out = false;
    bool copy_ok = true;
    // Exposed reads require copy-in privatization, which the baseline
    // configuration does not attempt.
    if (!cfg_.copy_in_privatization && !El.empty()) copy_ok = false;
    if (liveAfterLoop(decl, loop)) {
      copy_out = true;
      copy_in = true;  // whole-array write-back requires initialized copies
      // Every iteration must write the same, fully-covered region.
      bool mentions_i = false;
      for (const auto& g : Wl)
        for (const auto& piece : g.section.pieces())
          for (pb::VarId v : piece.usedVars())
            if (v == i_var) mentions_i = true;
      if (mentions_i) {
        copy_ok = false;
      } else {
        pb::Set wp = unguardedUnion(Wl);
        GuardedList mw_true;
        for (const auto& m : MWl)
          if (m.guard.isTrue()) mw_true.push_back(m);
        pb::Set mt = unguardedUnion(mw_true);
        pb::Set diff = wp.subtract(mt);
        if (!diff.exact() || !diff.isEmpty()) copy_ok = false;
      }
    }
    if (priv.ct && copy_ok) {
      plan.privatized.push_back({decl, copy_in, copy_out});
      plan.priv_used = true;
      plan.used_predicates |= cfg_.predicates;
      continue;
    }

    if (cfg_.runtime_tests) {
      if (!indep.hopeless && !indep.cond.isFalse() &&
          evaluableAtLoopEntry(indep.cond, body)) {
        total_test = total_test && indep.cond;
        needs_runtime = true;
        continue;
      }
      if (!priv.hopeless && copy_ok && !priv.cond.isFalse() &&
          evaluableAtLoopEntry(priv.cond, body)) {
        total_test = total_test && priv.cond;
        plan.privatized.push_back({decl, copy_in, copy_out});
        plan.priv_used = true;
        needs_runtime = true;
        continue;
      }
    }
    std::string name(program_.interner.str(decl->name));
    return finish(LoopStatus::Sequential,
                  "loop-carried dependence on array '" + name + "'");
  }

  plan.used_embedding = plan.used_predicates && cfg_.embedding;
  if (!needs_runtime || total_test.isTrue()) {
    return finish(LoopStatus::Parallel);
  }
  plan.runtime_test = total_test.simplify(vt_);
  if (plan.runtime_test.isTrue()) return finish(LoopStatus::Parallel);
  return finish(LoopStatus::RuntimeTest);
}

RegionSummary Analyzer::promoteLoop(const ForStmt& loop,
                                    const RegionSummary& body) {
  RegionSummary out;
  out.has_sink = body.has_sink;
  out.degraded = body.degraded;
  pb::VarId i_var = vt_.idFor(loop.index_decl);
  std::vector<pb::VarId> aux;
  pb::System bounds = boundsFor(loop, i_var, &aux);
  auto keepNotIter = [&](pb::VarId v) {
    if (v == i_var) return false;
    for (pb::VarId a : aux)
      if (v == a) return false;
    return true;
  };

  // Trip-count provability (for scalar must-writes; array must-write
  // sections self-guard through their lb <= i <= ub constraints, which
  // make the section empty exactly when the loop would not run).
  bool provably_executes = false;
  {
    auto lk = tryConstInt(*loop.lower);
    auto uk = tryConstInt(*loop.upper);
    if (lk && uk) {
      provably_executes = *lk <= *uk;
    } else {
      auto la = affineOf(*loop.lower);
      auto ua = affineOf(*loop.upper);
      if (la && ua) {
        pb::System gt;
        pb::LinExpr e = *la - *ua;
        e.setConstant(e.constant() - 1);
        gt.addGE0(std::move(e));  // lb >= ub + 1
        provably_executes = !gt.feasible();
      }
    }
  }

  // Per-loop iteration-instance variables for the exposed-read promotion.
  pb::VarId e_i2 = vt_.fresh(VarKind::Index, "@e2");
  pb::VarId e_i1 = vt_.fresh(VarKind::Index, "@e1");
  std::vector<pb::VarId> eaux1, eaux2;
  pb::System eb1 = boundsFor(loop, e_i1, &eaux1);
  pb::System eb2 = boundsFor(loop, e_i2, &eaux2);

  for (const auto& [decl, as] : body.arrays) {
    ArraySummary& dst = out.arrayFor(decl);
    dst.approximate = as.approximate;

    auto promoteMay = [&](const GuardedList& src, GuardedList& d,
                          bool is_must_dir) {
      GuardedList inv = loopInvariantList(src, loop, body, is_must_dir);
      for (auto& g : inv) {
        g.section.constrain(bounds);
        g.section.projectOnto(keepNotIter);
        if (g.section.isEmpty()) continue;
        d.push_back(std::move(g));
      }
    };
    promoteMay(as.reads, dst.reads, false);
    promoteMay(as.writes, dst.writes, false);

    // Must-writes: exact projection only. No trip-count guard is needed
    // on the section — the conjoined lb <= i <= ub constraints make the
    // projected section empty (as a parameterized set) whenever the loop
    // would execute zero iterations.
    GuardedList mw_inv = loopInvariantList(as.must_writes, loop, body, true);
    for (auto& g : mw_inv) {
      pb::Set s = g.section;
      s.constrain(bounds);
      bool was_exact = s.exact();
      s.projectOnto(keepNotIter);
      if (!was_exact || !s.exact() || s.isEmpty()) continue;
      dst.must_writes.push_back({g.guard, std::move(s)});
    }

    // Exposed reads: E(i2) minus must-writes of earlier iterations.
    GuardedList e_inv = loopInvariantList(as.exposed, loop, body, false);
    for (auto& g : e_inv) {
      pb::Set e2 = g.section;
      e2.substitute(i_var, pb::LinExpr::var(e_i2));
      e2.constrain(eb2);
      for (const auto& m : mw_inv) {
        if (e2.isEmpty()) break;
        if (!g.guard.implies(m.guard, vt_)) continue;
        pb::Set m1 = m.section;
        m1.substitute(i_var, pb::LinExpr::var(e_i1));
        pb::System before = eb1;
        pb::LinExpr lt = pb::LinExpr::var(e_i2);
        lt -= pb::LinExpr::var(e_i1);
        lt.setConstant(lt.constant() - 1);
        before.addGE0(std::move(lt));  // e_i1 < e_i2
        m1.constrain(before);
        bool was_exact = m1.exact();
        m1.projectOnto([&](pb::VarId v) {
          if (v == e_i1) return false;
          for (pb::VarId a : eaux1)
            if (v == a) return false;
          return true;
        });
        // Only subtract integer-exact projections (subtracting an
        // over-approximation would under-approximate E).
        if (!was_exact || !m1.exact()) continue;
        e2 = e2.subtract(m1);
      }
      if (e2.isEmpty()) continue;
      // Optional predicate extraction: under what parameter condition is
      // anything still exposed?
      Pred guard = g.guard;
      if (cfg_.extraction) {
        Pred cond = Pred::never();
        bool renderable = true;
        for (const auto& piece : e2.pieces()) {
          pb::System proj = piece;
          ParamFilter pf{&vt_, {i_var, e_i1, e_i2}};
          for (pb::VarId a : eaux1) pf.eliminate_always.insert(a);
          for (pb::VarId a : eaux2) pf.eliminate_always.insert(a);
          if (!proj.projectOnto([&pf](pb::VarId v) { return pf.keep(v); }))
            continue;  // piece infeasible after all
          proj = gistAgainstContext(proj);
          auto cp = systemToPred(proj);
          if (!cp) {
            renderable = false;
            break;
          }
          cond = cond || *cp;
        }
        if (renderable && !cond.isTrue()) guard = guard && cond;
      }
      e2.projectOnto([&](pb::VarId v) {
        if (v == e_i2) return false;
        for (pb::VarId a : eaux2)
          if (v == a) return false;
        return true;
      });
      if (e2.isEmpty()) continue;
      if (!cfg_.predicates && !guard.isTrue()) guard = Pred::always();
      dst.exposed.push_back({std::move(guard), std::move(e2)});
    }
  }

  // Scalars.
  for (const auto& [decl, eff] : body.scalars) {
    if (decl == loop.index_decl) continue;  // scoped to the loop
    ScalarEffect& dst = out.scalarFor(decl);
    dst.may_write |= eff.may_write;
    dst.any_read |= eff.any_read;
    dst.exposed_read |= eff.exposed_read;
    dst.must_write |= eff.must_write && provably_executes;
  }
  return out;
}

RegionSummary Analyzer::analyzeFor(const ForStmt& loop) {
  // After an earlier exhaustion, stop spending analysis work entirely:
  // plan the whole nest sequentially and summarize it conservatively.
  if (degrade_rest_) {
    degradePlan(loop);
    degradeUnplannedLoops(*loop.body);
    RegionSummary out = conservativeBlockSummary(*loop.body, nullptr);
    noteConservativeVars(*loop.lower, out);
    noteConservativeVars(*loop.upper, out);
    if (loop.step) noteConservativeVars(*loop.step, out);
    out.scalars.erase(loop.index_decl);
    return out;
  }

  if (AnalysisBudget* b = AnalysisBudget::current()) b->beginLoop();
  // Push this loop's bounds as context for the analysis of nested loops,
  // but pop before planning this loop itself (its own index is
  // substituted by iteration instances in the dependence systems).
  loop_ctx_.push_back(boundsFor(loop, vt_.idFor(loop.index_decl), nullptr));
  RegionSummary body;
  try {
    body = analyzeBlock(*loop.body);
  } catch (const BudgetExceeded& e) {
    recordExhaustion(e);
    body = conservativeBlockSummary(*loop.body, nullptr);
  }
  loop_ctx_.pop_back();

  // Fresh per-loop FM slice for planning this loop (the body's slice was
  // consumed by any nested loops).
  if (AnalysisBudget* b = AnalysisBudget::current()) b->beginLoop();
  try {
    planLoop(loop, body);
  } catch (const BudgetExceeded& e) {
    recordExhaustion(e);
    degradePlan(loop);
  }
  // Loops the conservative body fallback skipped also degrade.
  degradeUnplannedLoops(*loop.body);

  RegionSummary promoted;
  try {
    promoted = promoteLoop(loop, body);
  } catch (const BudgetExceeded& e) {
    recordExhaustion(e);
    promoted = conservativeBlockSummary(*loop.body, loop.index_decl);
  }
  // Bound expressions are read at loop entry.
  RegionSummary bounds_reads;
  collectReads(*loop.lower, bounds_reads);
  collectReads(*loop.upper, bounds_reads);
  if (loop.step) collectReads(*loop.step, bounds_reads);
  seqCompose(bounds_reads, std::move(promoted));
  return bounds_reads;
}

}  // namespace

AnalysisResult analyzeProgram(Program& program, const AnalysisConfig& config) {
  Analyzer analyzer(program, config);
  return analyzer.run();
}

}  // namespace padfa
