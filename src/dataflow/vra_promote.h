// Static runtime-test discharge (DESIGN.md §15).
//
// For every non-degraded RuntimeTest plan, ask the value-range analysis
// whether the derived independence/privatization test is decidable at
// the loop's entry environment:
//
//   provably TRUE  -> the parallel version is always taken: promote to
//                     Parallel (the dispatch stops paying the test);
//   provably FALSE -> the parallel version is dead code: demote to
//                     Sequential.
//
// Promoted plans RETAIN their runtime_test and are tagged
// VraAction::PromotedParallel so that PlanAuditor, PDG certification,
// and the race oracle can each re-derive the discharge independently —
// a forged promotion surfaces as Unsound / Disagree / a reported race,
// the same teeth discipline the audit tripod applies everywhere else.
//
// The pass runs post-persistence (after the deep-plan store replays),
// alongside upgradeDoacrossPlans, so stored bytes stay promotion-
// agnostic and warm plans equal cold plans.
#pragma once

#include "dataflow/loop_plan.h"
#include "vra/vra.h"

namespace padfa {

/// Rewrite `result`'s RuntimeTest plans in place as described above.
/// No-op when `ranges` is disabled. Returns the number of plans changed.
size_t applyVraPromotions(const Program& program, AnalysisResult& result,
                          const vra::RangeAnalysis& ranges);

}  // namespace padfa
