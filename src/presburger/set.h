// Unions of convex integer sets ("pieces"), the representation of array
// sections in the data-flow analysis.
//
// Each Set carries an `exact` flag. Operations that would exceed the piece
// cap degrade gracefully: may-sets are over-approximated (keep the
// unsubtracted piece), and the flag records the loss so must-style
// reasoning (coverage, privatization) can refuse to rely on inexact sets.
#pragma once

#include <string>
#include <vector>

#include "presburger/system.h"

namespace padfa::pb {

class Set {
 public:
  /// The empty set.
  Set() = default;

  /// A single convex piece.
  explicit Set(System piece) { pieces_.push_back(std::move(piece)); }

  static Set empty() { return Set(); }
  /// The universe (one unconstrained piece).
  static Set universe() { return Set(System()); }

  const std::vector<System>& pieces() const { return pieces_; }
  bool exact() const { return exact_; }
  void markInexact() { exact_ = false; }
  size_t numPieces() const { return pieces_.size(); }

  /// Remove infeasible pieces and structural duplicates.
  void simplify();

  bool isEmpty() const;

  /// this := this ∪ o (piece concatenation; cap-aware).
  void unionWith(const Set& o);

  /// this ∩ o (cross product of pieces).
  Set intersect(const Set& o) const;

  /// Exact integer subtraction this − o by constraint splitting. On piece
  /// blow-up past the cap the result keeps whole minuend pieces
  /// (over-approximation) and is marked inexact.
  Set subtract(const Set& o) const;

  /// true iff this ⊆ o can be *proven* (this − o is empty and exact).
  bool isSubsetOf(const Set& o) const;

  /// Conjoin a constraint system onto every piece.
  void constrain(const System& s);

  /// Eliminate all variables not accepted by `keep` in every piece
  /// (rational projection; a superset of the integer projection).
  /// Marks the set inexact when any piece's projection may be strict.
  void projectOnto(const VarFilter& keep);

  /// Substitute v := repl in every piece.
  void substitute(VarId v, const LinExpr& repl);

  /// Does the set contain this full integer assignment? (Exact on the
  /// stored pieces.)
  bool contains(const std::vector<int64_t>& values) const;

  std::string str(
      const std::function<std::string(VarId)>& name = nullptr) const;

  static constexpr size_t kMaxPieces = 24;

 private:
  std::vector<System> pieces_;
  bool exact_ = true;
};

}  // namespace padfa::pb
