#include "presburger/system.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "presburger/feasibility_cache.h"
#include "support/budget.h"
#include "support/perf_stats.h"

namespace padfa::pb {

namespace {

// Overflow-checked helpers: on (rare) overflow we saturate, which can only
// make feasibility answers more conservative because callers treat
// "couldn't decide" as feasible.
int64_t mulSat(int64_t a, int64_t b) {
  __int128 p = static_cast<__int128>(a) * b;
  if (p > INT64_MAX) return INT64_MAX;
  if (p < INT64_MIN) return INT64_MIN;
  return static_cast<int64_t>(p);
}

// Scale-combine: out = a*x + b*y computed with saturation on each term.
LinExpr combine(const LinExpr& x, int64_t a, const LinExpr& y, int64_t b) {
  LinExpr out;
  std::map<VarId, int64_t> acc;
  for (const auto& [v, c] : x.terms()) acc[v] += mulSat(c, a);
  for (const auto& [v, c] : y.terms()) acc[v] += mulSat(c, b);
  for (const auto& [v, c] : acc) out.addTerm(v, c);
  out.setConstant(mulSat(x.constant(), a) + mulSat(y.constant(), b));
  return out;
}

}  // namespace

Constraint Constraint::negatedGE() const {
  LinExpr e = expr.negated();
  e.setConstant(e.constant() - 1);
  return Constraint::ge0(std::move(e));
}

std::string Constraint::str(
    const std::function<std::string(VarId)>& name) const {
  return expr.str(name) + (kind == CmpKind::GE0 ? " >= 0" : " == 0");
}

void System::conjoin(const System& o) {
  constraints_.insert(constraints_.end(), o.constraints_.begin(),
                      o.constraints_.end());
}

bool System::normalize() {
  std::vector<Constraint> out;
  // Map from term-vector signature to index in `out` for parallel-GE merge.
  for (auto& c : constraints_) {
    // gcd reduction / constant-only checks.
    if (c.expr.isConstant()) {
      int64_t k = c.expr.constant();
      if (c.kind == CmpKind::EQ0 && k != 0) return false;
      if (c.kind == CmpKind::GE0 && k < 0) return false;
      continue;  // trivially true
    }
    int64_t g = c.expr.coeffGcd();
    if (g > 1) {
      if (c.kind == CmpKind::EQ0) {
        if (c.expr.constant() % g != 0) return false;  // no integer solution
        c.expr.divideExact(g);
      } else {
        c.expr.divideFloorConstant(g);  // integer tightening
      }
    }
    out.push_back(std::move(c));
  }

  // Merge parallel GE constraints (same term vector): keep the tightest
  // (smallest constant); detect EQ duplicates; detect e>=0 && -e+k>=0, k<0.
  struct Key {
    std::vector<std::pair<VarId, int64_t>> terms;
    bool eq;
    bool operator<(const Key& o) const {
      if (eq != o.eq) return eq < o.eq;
      return terms < o.terms;
    }
  };
  std::map<Key, int64_t> best;  // key -> tightest constant
  for (const auto& c : out) {
    Key k{c.expr.terms(), c.kind == CmpKind::EQ0};
    auto it = best.find(k);
    if (it == best.end()) {
      best.emplace(std::move(k), c.expr.constant());
    } else if (c.kind == CmpKind::GE0) {
      it->second = std::min(it->second, c.expr.constant());
    } else if (it->second != c.expr.constant()) {
      return false;  // e + a == 0 and e + b == 0 with a != b
    }
  }
  constraints_.clear();
  for (const auto& [k, cst] : best) {
    LinExpr e;
    for (const auto& [v, c] : k.terms) e.addTerm(v, c);
    e.setConstant(cst);
    constraints_.push_back({std::move(e), k.eq ? CmpKind::EQ0 : CmpKind::GE0});
  }
  return !quickInfeasible();
}

// Detect e >= 0 and -e + k >= 0 with -? bound conflict, plus eq/ge
// contradictions on identical term vectors. Cheap check before full FM.
bool System::quickInfeasible() const {
  // Index GE constraints by their term vector; compare against negation.
  std::map<std::vector<std::pair<VarId, int64_t>>, int64_t> ge;  // tightest
  std::map<std::vector<std::pair<VarId, int64_t>>, int64_t> eq;
  for (const auto& c : constraints_) {
    if (c.expr.isConstant()) {
      if (c.kind == CmpKind::EQ0 && c.expr.constant() != 0) return true;
      if (c.kind == CmpKind::GE0 && c.expr.constant() < 0) return true;
      continue;
    }
    if (c.kind == CmpKind::GE0) {
      auto [it, inserted] = ge.emplace(c.expr.terms(), c.expr.constant());
      if (!inserted) it->second = std::min(it->second, c.expr.constant());
    } else {
      auto [it, inserted] = eq.emplace(c.expr.terms(), c.expr.constant());
      if (!inserted && it->second != c.expr.constant()) return true;
    }
  }
  for (const auto& [terms, cst] : ge) {
    // Negated term vector.
    auto neg = terms;
    for (auto& [v, c] : neg) c = -c;
    auto it = ge.find(neg);
    if (it != ge.end()) {
      // e + cst >= 0 and -e + cst2 >= 0  =>  -cst <= e <= cst2.
      if (cst + it->second < 0) return true;
    }
    auto ie = eq.find(neg);
    if (ie != eq.end()) {
      // -e + k == 0 => e == k; need k + cst >= 0.
      if (ie->second + cst < 0) return true;
    }
  }
  return false;
}

namespace {
// Out-of-class shim so normalize can reuse quickInfeasible on *this.
}  // namespace

bool System::eliminate(VarId v) {
  bool exact = true;
  return eliminateTracked(v, exact);
}

bool System::eliminateTracked(VarId v, bool& exact) {
  // Cooperative budget check point: one FM elimination step, charged at
  // the current constraint count. No-op unless a BudgetScope is active.
  if (AnalysisBudget* budget = AnalysisBudget::current())
    budget->chargeFmStep(constraints_.size());
  // Prefer substitution using an equality with coefficient ±1 on v.
  for (size_t i = 0; i < constraints_.size(); ++i) {
    const Constraint& c = constraints_[i];
    if (c.kind != CmpKind::EQ0) continue;
    int64_t a = c.expr.coeff(v);
    if (a == 1 || a == -1) {
      // v = (-(expr - a*v)) / a
      LinExpr rest = c.expr;
      rest.addTerm(v, -a);
      LinExpr repl = rest.negated();
      if (a == -1) repl = repl.negated();
      constraints_.erase(constraints_.begin() + i);
      substitute(v, repl);
      return normalize();
    }
  }

  std::vector<Constraint> lower, upper, rest;
  std::vector<Constraint> eqs;
  for (auto& c : constraints_) {
    int64_t a = c.expr.coeff(v);
    if (a == 0) {
      rest.push_back(std::move(c));
    } else if (c.kind == CmpKind::EQ0) {
      eqs.push_back(std::move(c));
    } else if (a > 0) {
      lower.push_back(std::move(c));
    } else {
      upper.push_back(std::move(c));
    }
  }

  // An equality a*v + e == 0 with |a| > 1: treat as pair of inequalities
  // (conservative for elimination; gcd check already ran in normalize).
  for (auto& c : eqs) {
    int64_t a = c.expr.coeff(v);
    Constraint geq = Constraint::ge0(c.expr);
    Constraint leq = Constraint::ge0(c.expr.negated());
    if (a > 0) {
      lower.push_back(geq);
      upper.push_back(leq);
    } else {
      lower.push_back(leq);
      upper.push_back(geq);
    }
  }

  if (rest.size() + lower.size() * upper.size() > kMaxConstraints) {
    // Bail out: drop all constraints involving v (over-approximation).
    exact = false;
    constraints_ = std::move(rest);
    return normalize();
  }

  std::vector<Constraint> out = std::move(rest);
  for (const auto& lo : lower) {
    int64_t a = lo.expr.coeff(v);  // a > 0
    for (const auto& up : upper) {
      int64_t b = -up.expr.coeff(v);  // b > 0
      // a*v + e >= 0, -b*v + f >= 0  =>  b*e + a*f >= 0.
      // Integer-exact when min(a, b) == 1 (Pugh's exact-shadow condition).
      if (a > 1 && b > 1) exact = false;
      LinExpr comb = combine(lo.expr, b, up.expr, a);
      // coefficient of v: b*a + a*(-b) = 0 by construction.
      out.push_back(Constraint::ge0(std::move(comb)));
    }
  }
  constraints_ = std::move(out);
  return normalize() && !quickInfeasible();
}

bool System::projectOnto(const VarFilter& keep) {
  bool exact = true;
  return projectOntoTracked(keep, exact);
}

bool System::projectOntoTracked(const VarFilter& keep, bool& exact) {
  while (true) {
    // Prefer victims with a unit-coefficient equality (exact
    // substitution; preserves divisibility facts — see feasible()).
    VarId victim = kInvalidVar;
    bool victim_unit = false;
    for (VarId v : usedVars()) {
      if (keep(v)) continue;
      bool unit = false;
      for (const auto& c : constraints_) {
        if (c.kind != CmpKind::EQ0) continue;
        int64_t a = c.expr.coeff(v);
        if (a == 1 || a == -1) unit = true;
      }
      if (victim == kInvalidVar || (unit && !victim_unit)) {
        victim = v;
        victim_unit = unit;
        if (unit) break;
      }
    }
    if (victim == kInvalidVar) return true;
    if (!eliminateTracked(victim, exact)) return false;
  }
}

namespace {

/// The full elimination loop behind feasible(), over an already
/// normalized, not-quickly-infeasible system. Consumes `copy`.
Feasibility eliminateFeasibility(System copy) {
  // Eliminate all variables. Variables with a unit-coefficient equality
  // are substituted first: substitution is exact and, crucially,
  // propagates divisibility information (e.g. i == 3k) into the
  // remaining constraints where the gcd check can catch integer
  // infeasibility that pure Fourier–Motzkin would lose.
  while (true) {
    auto vars = copy.usedVars();
    if (vars.empty()) break;
    VarId best = vars[0];
    size_t bestCost = SIZE_MAX;
    bool bestUnit = false;
    for (VarId v : vars) {
      size_t lo = 0, up = 0, eq = 0;
      bool unit = false;
      for (const auto& c : copy.constraints()) {
        int64_t a = c.expr.coeff(v);
        if (a == 0) continue;
        if (c.kind == CmpKind::EQ0) {
          ++eq;
          if (a == 1 || a == -1) unit = true;
        } else if (a > 0) {
          ++lo;
        } else {
          ++up;
        }
      }
      size_t cost = (lo + eq) * (up + eq);
      if ((unit && !bestUnit) || (unit == bestUnit && cost < bestCost)) {
        bestCost = cost;
        best = v;
        bestUnit = unit;
      }
    }
    if (!copy.eliminate(best)) return Feasibility::Infeasible;
    if (copy.quickInfeasible()) return Feasibility::Infeasible;
    if (copy.size() > System::kMaxConstraints)
      return Feasibility::FeasibleInexact;  // give up: assume feasible
  }
  // Only constant constraints remain; normalize() already validated them.
  for (const auto& c : copy.constraints()) {
    if (c.expr.isConstant()) {
      if (c.kind == CmpKind::EQ0 && c.expr.constant() != 0)
        return Feasibility::Infeasible;
      if (c.kind == CmpKind::GE0 && c.expr.constant() < 0)
        return Feasibility::Infeasible;
    }
  }
  return Feasibility::Feasible;
}

/// The global feasibility memo, or null when it must not be consulted:
/// caches disabled process-wide, or a governed budget is installed (a
/// cache hit would skip the FM charge points a starved analysis is
/// contractually required to hit).
FeasibilityCache* usableFeasibilityCache() {
  if (!cachesEnabled()) return nullptr;
  if (AnalysisBudget* b = AnalysisBudget::current())
    if (b->governed()) return nullptr;
  return &FeasibilityCache::global();
}

}  // namespace

bool System::feasible() const {
  System copy = *this;
  if (!copy.normalize()) return false;
  if (copy.quickInfeasible()) return false;
  if (copy.trivial()) return true;
  FeasibilityCache* cache = usableFeasibilityCache();
  if (!cache)
    return eliminateFeasibility(std::move(copy)) != Feasibility::Infeasible;
  // Key the *normalized* system so structurally equal queries (up to
  // variable renaming) share one entry across programs and threads.
  std::string key = canonicalSystemKey(copy);
  CacheStats& stats = PerfStats::instance().feasibility;
  if (std::optional<Feasibility> hit = cache->lookup(key)) {
    stats.hit();
    return *hit != Feasibility::Infeasible;
  }
  stats.miss();
  Feasibility f = eliminateFeasibility(std::move(copy));
  cache->insert(key, f);
  stats.insert();
  return f != Feasibility::Infeasible;
}

std::vector<VarId> System::usedVars() const {
  std::vector<VarId> vars;
  for (const auto& c : constraints_)
    for (const auto& [v, coeff] : c.expr.terms()) vars.push_back(v);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

void System::substitute(VarId v, const LinExpr& repl) {
  for (auto& c : constraints_) c.expr.substitute(v, repl);
}

bool System::contains(const std::vector<int64_t>& values) const {
  for (const auto& c : constraints_) {
    int64_t val = c.expr.evaluate(values);
    if (c.kind == CmpKind::EQ0 && val != 0) return false;
    if (c.kind == CmpKind::GE0 && val < 0) return false;
  }
  return true;
}

std::string System::str(
    const std::function<std::string(VarId)>& name) const {
  if (constraints_.empty()) return "{ true }";
  std::string out = "{ ";
  for (size_t i = 0; i < constraints_.size(); ++i) {
    if (i) out += "  &&  ";
    out += constraints_[i].str(name);
  }
  out += " }";
  return out;
}

}  // namespace padfa::pb
