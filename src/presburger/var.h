// Variable identities for the linear-inequality domain.
//
// The presburger module is deliberately agnostic of what a variable *means*
// (array subscript dimension, loop index, or symbolic parameter) — that
// classification lives in symbolic::VarTable. Here a variable is just a
// dense id.
#pragma once

#include <cstdint>
#include <functional>

namespace padfa::pb {

using VarId = uint32_t;
inline constexpr VarId kInvalidVar = ~0u;

/// Predicate used when projecting: returns true for variables to KEEP.
using VarFilter = std::function<bool(VarId)>;

}  // namespace padfa::pb
