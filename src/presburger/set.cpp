#include "presburger/set.h"

#include <algorithm>

#include "support/budget.h"

namespace padfa::pb {

namespace {

// Cooperative budget check point for piece-level set operations; no-op
// unless a BudgetScope is active on this thread.
void chargePieces(size_t n) {
  if (AnalysisBudget* budget = AnalysisBudget::current())
    budget->chargePieces(n);
}

}  // namespace

void Set::simplify() {
  std::vector<System> out;
  for (auto& p : pieces_) {
    System q = p;
    if (!q.normalize()) continue;
    if (!q.feasible()) continue;
    if (std::find(out.begin(), out.end(), q) != out.end()) continue;
    out.push_back(std::move(q));
  }
  pieces_ = std::move(out);
}

bool Set::isEmpty() const {
  for (const auto& p : pieces_)
    if (p.feasible()) return false;
  return true;
}

void Set::unionWith(const Set& o) {
  chargePieces(o.pieces_.size());
  exact_ = exact_ && o.exact_;
  pieces_.insert(pieces_.end(), o.pieces_.begin(), o.pieces_.end());
  if (pieces_.size() > kMaxPieces) {
    simplify();
    // Still too many: keep everything (sound for may-sets) but mark
    // inexact so must-reasoning refuses to rely on this set.
    if (pieces_.size() > kMaxPieces) exact_ = false;
  }
}

Set Set::intersect(const Set& o) const {
  chargePieces(pieces_.size() * o.pieces_.size());
  Set out;
  out.exact_ = exact_ && o.exact_;
  for (const auto& a : pieces_) {
    for (const auto& b : o.pieces_) {
      System s = a;
      s.conjoin(b);
      if (!s.normalize()) continue;
      if (s.quickInfeasible()) continue;
      out.pieces_.push_back(std::move(s));
    }
  }
  out.simplify();
  return out;
}

Set Set::subtract(const Set& o) const {
  // Start with our pieces; subtract each piece of o in turn.
  std::vector<System> cur = pieces_;
  bool exact = exact_ && o.exact_;
  for (const auto& b : o.pieces_) {
    const auto& bcs = b.constraints();
    std::vector<System> next;
    bool overflowed = false;
    for (const auto& a : cur) {
      // Fast path: if a ∩ b infeasible, b removes nothing from a.
      {
        System probe = a;
        probe.conjoin(b);
        if (!probe.normalize() || !probe.feasible()) {
          next.push_back(a);
          continue;
        }
      }
      // Split: a − b = ∪_j (a ∧ c_1..c_{j−1} ∧ ¬c_j), integer-exact.
      // Equalities are expanded as two GE constraints for the split.
      std::vector<Constraint> ges;
      for (const auto& c : bcs) {
        if (c.kind == CmpKind::GE0) {
          ges.push_back(c);
        } else {
          ges.push_back(Constraint::ge0(c.expr));
          ges.push_back(Constraint::ge0(c.expr.negated()));
        }
      }
      chargePieces(ges.size());
      System prefix = a;
      for (size_t j = 0; j < ges.size(); ++j) {
        System piece = prefix;
        piece.add(ges[j].negatedGE());
        if (piece.normalize() && piece.feasible())
          next.push_back(std::move(piece));
        prefix.add(ges[j]);
        if (next.size() > 4 * kMaxPieces) break;
      }
      if (next.size() > 4 * kMaxPieces) {
        // Give up on this subtraction step: keep `a` whole (superset).
        next.push_back(a);
        overflowed = true;
      }
    }
    cur = std::move(next);
    if (overflowed) exact = false;
  }
  Set out;
  out.pieces_ = std::move(cur);
  out.exact_ = exact;
  out.simplify();
  if (out.pieces_.size() > kMaxPieces) out.exact_ = false;
  return out;
}

bool Set::isSubsetOf(const Set& o) const {
  if (isEmpty()) return true;
  Set diff = subtract(o);
  return diff.exact() && diff.isEmpty();
}

void Set::constrain(const System& s) {
  for (auto& p : pieces_) p.conjoin(s);
  simplify();
}

void Set::projectOnto(const VarFilter& keep) {
  std::vector<System> out;
  bool exact = true;
  for (auto& p : pieces_) {
    System q = std::move(p);
    if (!q.projectOntoTracked(keep, exact)) continue;  // infeasible piece
    out.push_back(std::move(q));
  }
  pieces_ = std::move(out);
  if (!exact) exact_ = false;
  simplify();
}

void Set::substitute(VarId v, const LinExpr& repl) {
  for (auto& p : pieces_) p.substitute(v, repl);
}

bool Set::contains(const std::vector<int64_t>& values) const {
  for (const auto& p : pieces_)
    if (p.contains(values)) return true;
  return false;
}

std::string Set::str(const std::function<std::string(VarId)>& name) const {
  if (pieces_.empty()) return "{}";
  std::string out;
  for (size_t i = 0; i < pieces_.size(); ++i) {
    if (i) out += " ∪ ";
    out += pieces_[i].str(name);
  }
  if (!exact_) out += " (approx)";
  return out;
}

}  // namespace padfa::pb
