#include "presburger/linexpr.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace padfa::pb {

LinExpr LinExpr::var(VarId v, int64_t coeff) {
  LinExpr e;
  if (coeff != 0) e.terms_.push_back({v, coeff});
  return e;
}

int64_t LinExpr::coeff(VarId v) const {
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), v,
      [](const auto& t, VarId key) { return t.first < key; });
  if (it != terms_.end() && it->first == v) return it->second;
  return 0;
}

void LinExpr::addTerm(VarId v, int64_t c) {
  if (c == 0) return;
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), v,
      [](const auto& t, VarId key) { return t.first < key; });
  if (it != terms_.end() && it->first == v) {
    it->second += c;
    if (it->second == 0) terms_.erase(it);
  } else {
    terms_.insert(it, {v, c});
  }
}

LinExpr& LinExpr::operator+=(const LinExpr& o) {
  for (const auto& [v, c] : o.terms_) addTerm(v, c);
  constant_ += o.constant_;
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& o) {
  for (const auto& [v, c] : o.terms_) addTerm(v, -c);
  constant_ -= o.constant_;
  return *this;
}

LinExpr& LinExpr::operator*=(int64_t k) {
  if (k == 0) {
    terms_.clear();
    constant_ = 0;
    return *this;
  }
  for (auto& [v, c] : terms_) c *= k;
  constant_ *= k;
  return *this;
}

LinExpr LinExpr::negated() const {
  LinExpr e = *this;
  e *= -1;
  return e;
}

void LinExpr::substitute(VarId v, const LinExpr& repl) {
  int64_t c = coeff(v);
  if (c == 0) return;
  addTerm(v, -c);
  LinExpr scaled = repl;
  scaled *= c;
  *this += scaled;
}

int64_t LinExpr::coeffGcd() const {
  int64_t g = 0;
  for (const auto& [v, c] : terms_) g = std::gcd(g, c < 0 ? -c : c);
  return g;
}

void LinExpr::divideExact(int64_t k) {
  for (auto& [v, c] : terms_) c /= k;
  constant_ /= k;
}

void LinExpr::divideFloorConstant(int64_t k) {
  for (auto& [v, c] : terms_) c /= k;
  // floor division for the constant (C++ division truncates toward zero).
  int64_t q = constant_ / k;
  int64_t r = constant_ % k;
  if (r != 0 && ((r < 0) != (k < 0))) --q;
  constant_ = q;
}

int64_t LinExpr::evaluate(const std::vector<int64_t>& values) const {
  int64_t sum = constant_;
  for (const auto& [v, c] : terms_) sum += c * values.at(v);
  return sum;
}

std::string LinExpr::str(
    const std::function<std::string(VarId)>& name) const {
  std::string out;
  bool first = true;
  for (const auto& [v, c] : terms_) {
    std::string vn = name ? name(v) : ("v" + std::to_string(v));
    if (first) {
      if (c == -1)
        out += "-";
      else if (c != 1)
        out += std::to_string(c) + "*";
      out += vn;
      first = false;
    } else {
      out += (c < 0) ? " - " : " + ";
      int64_t a = c < 0 ? -c : c;
      if (a != 1) out += std::to_string(a) + "*";
      out += vn;
    }
  }
  if (first) return std::to_string(constant_);
  if (constant_ > 0) out += " + " + std::to_string(constant_);
  if (constant_ < 0) out += " - " + std::to_string(-constant_);
  return out;
}

}  // namespace padfa::pb
