// Conjunctions of integer linear constraints (one convex piece), with
// Fourier–Motzkin elimination and rational feasibility testing.
//
// Soundness direction: feasible() may answer true for a system with no
// integer solutions (rational relaxation), but never answers false for a
// system that has integer points. Clients prove *independence* /
// *coverage* from infeasibility, so the relaxation is conservative.
// Equality gcd checks and GE-constraint tightening recover the common
// integer-only infeasibilities (e.g. 2i == 2j+1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "presburger/linexpr.h"

namespace padfa::pb {

enum class CmpKind : uint8_t {
  GE0,  // expr >= 0
  EQ0,  // expr == 0
};

struct Constraint {
  LinExpr expr;
  CmpKind kind = CmpKind::GE0;

  static Constraint ge0(LinExpr e) { return {std::move(e), CmpKind::GE0}; }
  static Constraint eq0(LinExpr e) { return {std::move(e), CmpKind::EQ0}; }

  /// Integer negation of a GE0 constraint: !(e >= 0)  ==  (-e - 1 >= 0).
  /// Only valid for GE0.
  Constraint negatedGE() const;

  bool operator==(const Constraint& o) const = default;
  std::string str(
      const std::function<std::string(VarId)>& name = nullptr) const;
};

/// A conjunction of constraints over integer-valued variables.
class System {
 public:
  System() = default;

  void add(Constraint c) { constraints_.push_back(std::move(c)); }
  void addGE0(LinExpr e) { add(Constraint::ge0(std::move(e))); }
  void addEQ0(LinExpr e) { add(Constraint::eq0(std::move(e))); }
  void conjoin(const System& o);

  const std::vector<Constraint>& constraints() const { return constraints_; }
  size_t size() const { return constraints_.size(); }
  bool trivial() const { return constraints_.empty(); }

  /// Normalize in place: gcd-reduce, tighten GE constants, drop trivially
  /// true constraints, dedupe, keep the tightest of parallel constraints.
  /// Returns false if a constraint is detected to be unsatisfiable (the
  /// system is then in an unspecified state and must be treated as empty).
  bool normalize();

  /// Eliminate `v` by Fourier–Motzkin (using equality substitution when an
  /// equality involving v exists). The result describes the rational shadow
  /// (superset of the integer projection). Returns false if infeasibility
  /// was detected during elimination.
  bool eliminate(VarId v);

  /// Like eliminate(), but clears `exact` when the projection may be a
  /// strict superset of the integer projection (some eliminated pair had
  /// both coefficients with |a| > 1 — the unit-coefficient FM exactness
  /// condition — or the work limit forced an over-approximation).
  bool eliminateTracked(VarId v, bool& exact);

  /// Eliminate every variable not accepted by `keep`.
  /// Returns false on detected infeasibility.
  bool projectOnto(const VarFilter& keep);

  /// Tracked variant of projectOnto (see eliminateTracked).
  bool projectOntoTracked(const VarFilter& keep, bool& exact);

  /// Rational feasibility (with integer gcd/tightening refinements).
  bool feasible() const;

  /// All VarIds appearing with nonzero coefficient, ascending.
  std::vector<VarId> usedVars() const;

  /// Substitute v := repl everywhere (exact, integer).
  void substitute(VarId v, const LinExpr& repl);

  /// Evaluate against a full assignment: true iff all constraints hold.
  bool contains(const std::vector<int64_t>& values) const;

  /// Detect a pair of constraints e >= 0 and -e + k >= 0 with k < 0, or
  /// normalize-detected contradictions. Cheap check used before full FM.
  bool quickInfeasible() const;

  std::string str(
      const std::function<std::string(VarId)>& name = nullptr) const;

  bool operator==(const System& o) const = default;

  /// Work limit for feasibility/elimination: when the constraint count
  /// would exceed this, elimination bails out and feasible() answers true
  /// (the conservative direction).
  static constexpr size_t kMaxConstraints = 2048;

 private:
  std::vector<Constraint> constraints_;
};

}  // namespace padfa::pb
