#include "presburger/feasibility_cache.h"

#include <algorithm>

namespace padfa::pb {

std::string canonicalSystemKey(const System& s) {
  // Order-preserving dense renaming of the used variables: usedVars() is
  // ascending, so term vectors (sorted by VarId) stay sorted after the
  // rename and two systems equal up to renaming encode identically.
  std::vector<VarId> vars = s.usedVars();
  std::vector<std::string> enc;
  enc.reserve(s.size());
  for (const auto& c : s.constraints()) {
    std::string e;
    e += (c.kind == CmpKind::EQ0) ? 'E' : 'G';
    e += std::to_string(c.expr.constant());
    for (const auto& [v, coeff] : c.expr.terms()) {
      size_t dense = static_cast<size_t>(
          std::lower_bound(vars.begin(), vars.end(), v) - vars.begin());
      e += ';';
      e += std::to_string(dense);
      e += '*';
      e += std::to_string(coeff);
    }
    enc.push_back(std::move(e));
  }
  // The constraint multiset is unordered: sort the encodings.
  std::sort(enc.begin(), enc.end());
  std::string key;
  size_t total = 0;
  for (const auto& e : enc) total += e.size() + 1;
  key.reserve(total);
  for (const auto& e : enc) {
    key += e;
    key += '|';
  }
  return key;
}

FeasibilityCache& FeasibilityCache::global() {
  static FeasibilityCache cache;
  return cache;
}

std::optional<Feasibility> FeasibilityCache::lookup(const std::string& key) {
  Shard& s = shardOf(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(key);
  if (it == s.map.end()) return std::nullopt;
  return it->second;
}

void FeasibilityCache::insert(const std::string& key, Feasibility f) {
  Shard& s = shardOf(key);
  std::lock_guard<std::mutex> lock(s.mu);
  s.map.emplace(key, f);
}

void FeasibilityCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
  }
}

std::vector<std::pair<std::string, Feasibility>> FeasibilityCache::snapshot() {
  std::vector<std::pair<std::string, Feasibility>> out;
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    out.insert(out.end(), s.map.begin(), s.map.end());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

size_t FeasibilityCache::size() {
  size_t n = 0;
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

}  // namespace padfa::pb
