// Sparse integer linear expressions: sum(coeff_i * var_i) + constant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "presburger/var.h"

namespace padfa::pb {

/// A linear expression with int64 coefficients over VarIds plus an int64
/// constant. Terms are kept sorted by VarId with no zero coefficients, so
/// structural equality is semantic equality.
class LinExpr {
 public:
  LinExpr() = default;
  explicit LinExpr(int64_t constant) : constant_(constant) {}

  static LinExpr var(VarId v, int64_t coeff = 1);

  int64_t constant() const { return constant_; }
  void setConstant(int64_t c) { constant_ = c; }

  const std::vector<std::pair<VarId, int64_t>>& terms() const {
    return terms_;
  }
  bool isConstant() const { return terms_.empty(); }
  size_t numTerms() const { return terms_.size(); }

  int64_t coeff(VarId v) const;
  void addTerm(VarId v, int64_t coeff);

  LinExpr& operator+=(const LinExpr& o);
  LinExpr& operator-=(const LinExpr& o);
  LinExpr& operator*=(int64_t k);
  friend LinExpr operator+(LinExpr a, const LinExpr& b) { return a += b; }
  friend LinExpr operator-(LinExpr a, const LinExpr& b) { return a -= b; }
  friend LinExpr operator*(LinExpr a, int64_t k) { return a *= k; }
  LinExpr negated() const;

  /// Replace `v` with `repl` (coefficient-scaled). The coefficient of `v`
  /// must be divisible by the implicit denominator of 1 — i.e. this is
  /// exact: result = this - coeff(v)*v + coeff(v)*repl.
  void substitute(VarId v, const LinExpr& repl);

  /// gcd of all term coefficients (0 if no terms).
  int64_t coeffGcd() const;

  /// Divide all coefficients and the constant exactly by k (caller must
  /// ensure divisibility of coefficients; constant uses floor division if
  /// floor_constant, else must divide exactly).
  void divideExact(int64_t k);
  void divideFloorConstant(int64_t k);

  int64_t evaluate(const std::vector<int64_t>& values) const;

  bool operator==(const LinExpr& o) const = default;

  std::string str(
      const std::function<std::string(VarId)>& name = nullptr) const;

 private:
  std::vector<std::pair<VarId, int64_t>> terms_;
  int64_t constant_ = 0;
};

}  // namespace padfa::pb
