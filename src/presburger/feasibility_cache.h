// Global memo for pb::System::feasible().
//
// Feasibility of a linear system is a purely structural property: it
// depends only on the constraint multiset up to a bijective renaming of
// variables, never on which VarTable the VarIds came from or what the
// variables mean in the program. canonicalSystemKey() quotients exactly
// that equivalence — constraints of the *normalized* system are encoded
// over an order-preserving dense renaming of its used variables and then
// sorted — so one process-wide cache is sound across programs, analyses,
// and threads. Entries are never invalidated: System values are
// immutable once queried (feasible() copies), so a key's answer cannot
// change ("invalidation by construction").
//
// The value is three-state per the elimination outcome: Infeasible,
// Feasible (proved by full elimination), or FeasibleInexact (elimination
// hit the kMaxConstraints work limit and gave up in the conservative
// direction). Clients of feasible() see both Feasible states as `true`;
// the distinction is kept so telemetry can report how often the limit
// bites.
//
// Concurrency: sharded mutexes — lookups from parallel analyses contend
// only within a shard. Callers must not use the cache under a governed
// AnalysisBudget (see perf_stats.h); System::feasible() enforces that.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "presburger/system.h"

namespace padfa::pb {

enum class Feasibility : uint8_t {
  Infeasible,
  Feasible,
  FeasibleInexact,  // work limit reached; "feasible" is the sound default
};

/// Canonical key of a *normalized* system (see file comment). Callers
/// must normalize first: normalization is what makes structurally equal
/// systems encode identically.
std::string canonicalSystemKey(const System& s);

class FeasibilityCache {
 public:
  static FeasibilityCache& global();

  std::optional<Feasibility> lookup(const std::string& key);
  void insert(const std::string& key, Feasibility f);
  void clear();
  size_t size();

  /// All entries, sorted by key — the deterministic export the
  /// persistent summary store serializes. Entries are immutable facts
  /// (see file comment), so a snapshot taken while other threads insert
  /// is still a set of individually-valid records.
  std::vector<std::pair<std::string, Feasibility>> snapshot();

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, Feasibility> map;
  };
  Shard& shardOf(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % kShards];
  }
  Shard shards_[kShards];
};

}  // namespace padfa::pb
