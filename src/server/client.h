// Client side of the mfcd protocol: one connect / one request line /
// one response line. Used by mfc's --daemon mode (with transparent
// fallback to in-process analysis when the round trip fails) and by the
// serving benchmark.
#pragma once

#include <string>

#include "server/protocol.h"

namespace padfa::server {

/// Send `request_line` (without trailing newline) to the daemon at
/// `socket_path` and read the one-line response into `response_line`
/// (newline stripped). Returns false and fills `err` on connect or I/O
/// failure — the caller's signal to fall back to in-process analysis.
/// A *protocol*-level failure (response with ok:false) still returns
/// true; inspect the response.
bool daemonRoundTrip(const std::string& socket_path,
                     const std::string& request_line,
                     std::string& response_line, std::string& err,
                     int timeout_seconds = 120);

/// Convenience: encode `req`, round-trip, parse the response. False +
/// err on transport failure or a response that is not valid JSON.
bool daemonCall(const std::string& socket_path, const Request& req,
                JsonValue& response, std::string& err,
                int timeout_seconds = 120);

}  // namespace padfa::server
