#include "server/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace padfa::server {

namespace {

struct FdCloser {
  int fd;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

bool daemonRoundTrip(const std::string& socket_path,
                     const std::string& request_line,
                     std::string& response_line, std::string& err,
                     int timeout_seconds) {
  response_line.clear();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    err = "bad socket path";
    return false;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  FdCloser closer{fd};
  struct timeval tv;
  tv.tv_sec = timeout_seconds;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    err = "connect " + socket_path + ": " + std::strerror(errno);
    return false;
  }
  std::string line = request_line;
  line += '\n';
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A shedding server answers and closes before reading the
      // request; the `overloaded` response is already buffered on our
      // side of the dead connection, so go read it.
      if (errno == EPIPE || errno == ECONNRESET) break;
      err = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  char buf[4096];
  while (response_line.find('\n') == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      err = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    response_line.append(buf, static_cast<size_t>(n));
  }
  size_t nl = response_line.find('\n');
  if (nl == std::string::npos) {
    err = "connection closed before a complete response";
    return false;
  }
  response_line.resize(nl);
  return true;
}

bool daemonCall(const std::string& socket_path, const Request& req,
                JsonValue& response, std::string& err, int timeout_seconds) {
  std::string line;
  if (!daemonRoundTrip(socket_path, encodeRequest(req), line, err,
                       timeout_seconds))
    return false;
  if (!parseJson(line, response, err)) {
    err = "malformed response: " + err;
    return false;
  }
  return true;
}

}  // namespace padfa::server
