#include "server/server.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "codegen/parallel_emit.h"
#include "corpus/corpus.h"
#include "driver/padfa.h"
#include "driver/plan_signature.h"
#include "ipa/incremental.h"
#include "support/hash.h"
#include "support/perf_stats.h"

namespace padfa::server {

namespace {

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t envU64(const char* name, uint64_t dflt) {
  const char* v = std::getenv(name);
  if (!v || !*v) return dflt;
  char* end = nullptr;
  unsigned long long n = std::strtoull(v, &end, 10);
  return (end && *end == '\0') ? n : dflt;
}

double envDouble(const char* name, double dflt) {
  const char* v = std::getenv(name);
  if (!v || !*v) return dflt;
  char* end = nullptr;
  double n = std::strtod(v, &end);
  return (end && *end == '\0') ? n : dflt;
}

// Self-pipe write end for the signal handler. Only one daemon instance
// installs handlers per process (mfcd / mfc serve); in-process test
// daemons run with install_signal_handlers=false.
std::atomic<int> g_signal_fd{-1};

void onTerminateSignal(int) {
  int fd = g_signal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    char b = 's';
    [[maybe_unused]] ssize_t n = ::write(fd, &b, 1);
  }
}

bool sendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

void setIoTimeouts(int fd, int seconds) {
  struct timeval tv;
  tv.tv_sec = seconds;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}


}  // namespace

std::string defaultSocketPath() {
  const char* v = std::getenv("PADFA_MFCD_SOCKET");
  if (v && *v) return v;
  return "/tmp/mfcd-" + std::to_string(static_cast<long>(::getuid())) +
         ".sock";
}

ServerOptions ServerOptions::fromEnv() {
  ServerOptions o;
  o.socket_path = defaultSocketPath();
  o.store_dir = store::SummaryStore::defaultDir();
  o.workers = static_cast<unsigned>(envU64("PADFA_MFCD_WORKERS", 2));
  if (o.workers == 0) o.workers = 1;
  o.queue_limit = envU64("PADFA_MFCD_QUEUE", 64);
  o.request_deadline_ms = envDouble("PADFA_MFCD_DEADLINE_MS", 0);
  o.flush_every =
      static_cast<unsigned>(envU64("PADFA_MFCD_FLUSH_EVERY", 4));
  if (o.flush_every == 0) o.flush_every = 1;
  return o;
}

MfcDaemon::MfcDaemon(ServerOptions opts) : opts_(std::move(opts)) {
  store_ = std::make_unique<store::SummaryStore>(opts_.store_dir);
}

MfcDaemon::~MfcDaemon() {
  if (started_) {
    requestStop();
    wait();
  }
}

bool MfcDaemon::start(std::string& err) {
  if (opts_.socket_path.empty()) {
    err = "no socket path configured";
    return false;
  }
  store_->open();  // quarantine-on-corruption happens here
  store_->installFeasibility();

  if (::pipe(stop_pipe_) != 0) {
    err = std::string("pipe: ") + std::strerror(errno);
    return false;
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    err = "socket path too long: " + opts_.socket_path;
    return false;
  }
  std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  // Refuse to steal a live daemon's socket; reclaim a stale one (a
  // previous SIGKILL leaves the inode behind).
  int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe >= 0) {
    if (::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      ::close(probe);
      err = "another mfcd is already serving " + opts_.socket_path;
      return false;
    }
    ::close(probe);
  }
  ::unlink(opts_.socket_path.c_str());

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    err = "bind " + opts_.socket_path + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    err = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  if (opts_.install_signal_handlers) {
    g_signal_fd.store(stop_pipe_[1], std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = onTerminateSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);
  }

  started_at_ = monotonicSeconds();
  started_ = true;
  stopping_ = false;
  accept_thread_ = std::thread([this] { acceptLoop(); });
  for (unsigned i = 0; i < opts_.workers; ++i)
    workers_.emplace_back([this] { workerLoop(); });
  return true;
}

void MfcDaemon::requestStop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  if (stop_pipe_[1] >= 0) {
    char b = 'q';
    [[maybe_unused]] ssize_t n = ::write(stop_pipe_[1], &b, 1);
  }
  cv_.notify_all();
}

int MfcDaemon::wait() {
  if (!started_) return 0;
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;  // accept loop may have exited on its own
  }
  cv_.notify_all();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(opts_.socket_path.c_str());
  if (opts_.install_signal_handlers)
    g_signal_fd.store(-1, std::memory_order_relaxed);
  for (int& fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  std::string err;
  if (!flushStore(err))
    std::fprintf(stderr, "mfcd: final store flush failed: %s\n", err.c_str());
  started_ = false;
  return 0;
}

int MfcDaemon::run(std::string& err) {
  if (!start(err)) return 1;
  std::fprintf(stderr,
               "mfcd: serving on %s (store: %s, %u worker(s), queue %zu)\n",
               opts_.socket_path.c_str(),
               store_->persistent() ? store_->dir().c_str() : "<ephemeral>",
               opts_.workers, opts_.queue_limit);
  return wait();
}

void MfcDaemon::acceptLoop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // drain requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_ || queue_.size() >= opts_.queue_limit) {
        shed = true;
      } else {
        queue_.push_back(fd);
      }
    }
    if (shed) {
      // Load shedding: an explicit, immediate answer instead of an
      // unbounded queue. The client decides whether to retry or fall
      // back to in-process analysis.
      stats_.shed.fetch_add(1, std::memory_order_relaxed);
      setIoTimeouts(fd, 5);
      sendAll(fd, errorResponse("overloaded", "request queue full").dump() +
                      "\n");
      ::close(fd);
    } else {
      cv_.notify_one();
    }
  }
}

void MfcDaemon::workerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;  // drained
        continue;
      }
      fd = queue_.front();
      queue_.pop_front();
    }
    serveConnection(fd);
  }
}

void MfcDaemon::serveConnection(int fd) {
  setIoTimeouts(fd, 60);
  std::string line;
  bool too_big = false;
  char buf[4096];
  while (line.find('\n') == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // EOF, timeout, or error — handle what we have
    line.append(buf, static_cast<size_t>(n));
    if (line.size() > opts_.max_request_bytes) {
      too_big = true;
      break;
    }
  }
  std::string response;
  if (too_big) {
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    response = errorResponse("request-too-large",
                             "request exceeds " +
                                 std::to_string(opts_.max_request_bytes) +
                                 " bytes")
                   .dump();
  } else {
    size_t nl = line.find('\n');
    if (nl == std::string::npos) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      response =
          errorResponse("parse-error", "connection closed mid-request")
              .dump();
    } else {
      response = handleLine(line.substr(0, nl));
    }
  }
  response += '\n';
  sendAll(fd, response);
  ::close(fd);
}

std::string MfcDaemon::handleLine(const std::string& line) {
  Request req;
  std::string err;
  if (!parseRequest(line, req, err)) {
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    return errorResponse("parse-error", err).dump();
  }
  JsonValue resp;
  try {
    resp = handleRequest(req);
  } catch (const std::exception& e) {
    // A request must never take the daemon down; the failure is the
    // client's answer, not the process's.
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    resp = errorResponse("internal", e.what());
  }
  if (resp.get("ok").asBool())
    stats_.served.fetch_add(1, std::memory_order_relaxed);
  else
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
  return resp.dump();
}

JsonValue MfcDaemon::handleRequest(const Request& r) {
  if (r.cmd == "ping") {
    JsonValue v = JsonValue::object();
    v.set("ok", JsonValue::of(true));
    v.set("pong", JsonValue::of(true));
    v.set("pid", JsonValue::of(int64_t{::getpid()}));
    return v;
  }
  if (r.cmd == "status") return statusJson();
  if (r.cmd == "flush") {
    std::string err;
    if (!flushStore(err)) return errorResponse("internal", err);
    JsonValue v = JsonValue::object();
    v.set("ok", JsonValue::of(true));
    v.set("saved", JsonValue::of(store_->persistent()));
    return v;
  }
  if (r.cmd == "shutdown") {
    requestStop();
    JsonValue v = JsonValue::object();
    v.set("ok", JsonValue::of(true));
    v.set("stopping", JsonValue::of(true));
    return v;
  }
  if (r.cmd == "sleep") {
    if (!opts_.enable_test_commands)
      return errorResponse("bad-request", "unknown command 'sleep'");
    std::this_thread::sleep_for(std::chrono::milliseconds(r.sleep_ms));
    JsonValue v = JsonValue::object();
    v.set("ok", JsonValue::of(true));
    return v;
  }
  if (r.cmd == "report" || r.cmd == "emit" || r.cmd == "analyze")
    return handleAnalysis(r);
  return errorResponse("bad-request", "unknown command '" + r.cmd + "'");
}

JsonValue MfcDaemon::handleAnalysis(const Request& r) {
  std::string source;
  if (!r.source.empty()) {
    source = r.source;
  } else if (r.spec.rfind("corpus:", 0) == 0) {
    const CorpusEntry* e = corpusEntry(r.spec.substr(7));
    if (!e)
      return errorResponse("bad-request",
                           "unknown corpus program '" + r.spec.substr(7) +
                               "'");
    source = instantiate(*e);
  } else if (!r.spec.empty()) {
    // The daemon deliberately reads no client paths: clients send the
    // bytes (content-hash keying depends on seeing the exact source).
    return errorResponse("bad-request",
                         "spec must be corpus:NAME; send file contents "
                         "inline as \"source\"");
  } else {
    return errorResponse("bad-request", "missing \"source\" or \"spec\"");
  }

  uint64_t hash = contentHash64(source);
  BudgetLimits limits = BudgetLimits::defaults();
  if (r.deadline_ms > 0)
    limits.deadline_seconds = r.deadline_ms / 1000.0;
  else if (opts_.request_deadline_ms > 0)
    limits.deadline_seconds = opts_.request_deadline_ms / 1000.0;
  if (r.fm_steps > 0) limits.max_fm_steps = r.fm_steps;
  bool governed = BudgetLimits::fromEnv(limits).governed();
  bool cacheable = !governed && cachesEnabled();

  JsonValue v = JsonValue::object();
  v.set("ok", JsonValue::of(true));
  v.set("cmd", JsonValue::of(r.cmd));
  v.set("source_hash", JsonValue::of(hashHex(hash)));

  // Warm path: serve from the persistent store when every needed record
  // is present. Records exist only for ungoverned, undegraded runs of
  // this exact source under this store-format version.
  if (cacheable) {
    auto sig = store_->assembleSignature(hash);
    if (sig) {
      std::optional<std::string> payload = std::make_optional(std::string());
      if (r.cmd != "analyze") payload = store_->getResponse(hash, r.cmd);
      if (payload) {
        stats_.warm_hits.fetch_add(1, std::memory_order_relaxed);
        v.set("cached", JsonValue::of(true));
        v.set("degraded", JsonValue::of(int64_t{0}));
        v.set("signature", JsonValue::of(*sig));
        if (r.cmd != "analyze") v.set(r.cmd, JsonValue::of(*payload));
        return v;
      }
    }
  }

  // Cold path — made as warm as possible: on a whole-source warm miss
  // the incremental engine still replays every procedure whose deep
  // fingerprint (canonical text + callee closure) is in the store, so an
  // edit re-analyzes only the change-impact set. Under a governed budget
  // or disabled caches this transparently degenerates to a plain cold
  // compile (compileSourceIncremental enforces the same guard).
  DiagEngine diags;
  ipa::IncrementalInfo inc;
  auto cp = cacheable
                ? ipa::compileSourceIncremental(source, diags, limits,
                                                *store_, &inc)
                : compileSource(source, diags, limits);
  if (!cp) {
    JsonValue e = errorResponse("compile-error", "source does not compile");
    e.set("diagnostics",
          JsonValue::of(renderDiagnostics(diags, source, "<request>")));
    return e;
  }
  stats_.cold_analyses.fetch_add(1, std::memory_order_relaxed);
  size_t degraded = cp->base.degradedCount() + cp->pred.degradedCount();
  if (degraded > 0)
    stats_.degraded_requests.fetch_add(1, std::memory_order_relaxed);
  std::string signature = planSignature(*cp);
  std::string payload;
  if (r.cmd == "report") payload = renderPlanReport(*cp);
  else if (r.cmd == "emit")
    payload = emitParallelProgram(*cp->program, cp->pred, nullptr);

  if (cacheable && degraded == 0) {
    std::string procs;
    for (const auto& p : cp->program->procs) {
      std::string name(cp->interner().str(p->name));
      store_->putProcPlan(hash, name, procPlanSignature(*cp, p.get()));
      procs += name;
      procs += '\n';
    }
    store_->putResponse(hash, "procs", std::move(procs));
    store_->putResponse(hash, "telemetry", planTelemetrySignature(*cp));
    if (r.cmd != "analyze") store_->putResponse(hash, r.cmd, payload);
    maybeFlush();
  }

  v.set("cached", JsonValue::of(false));
  v.set("degraded", JsonValue::of(static_cast<int64_t>(degraded)));
  v.set("governed", JsonValue::of(governed));
  v.set("signature", JsonValue::of(signature));
  if (inc.incremental) {
    v.set("procs_analyzed",
          JsonValue::of(static_cast<int64_t>(inc.procs_analyzed)));
    v.set("procs_replayed",
          JsonValue::of(static_cast<int64_t>(inc.procs_replayed)));
  }
  if (r.cmd != "analyze") v.set(r.cmd, JsonValue::of(payload));
  return v;
}

JsonValue MfcDaemon::statusJson() {
  JsonValue v = JsonValue::object();
  v.set("ok", JsonValue::of(true));
  v.set("uptime_s", JsonValue::of(monotonicSeconds() - started_at_));
  v.set("pid", JsonValue::of(int64_t{::getpid()}));
  v.set("workers", JsonValue::of(int64_t{opts_.workers}));
  {
    std::lock_guard<std::mutex> lock(mu_);
    v.set("queue_depth", JsonValue::of(static_cast<int64_t>(queue_.size())));
  }
  v.set("queue_limit",
        JsonValue::of(static_cast<int64_t>(opts_.queue_limit)));
  auto counter = [](const std::atomic<uint64_t>& c) {
    return JsonValue::of(
        static_cast<int64_t>(c.load(std::memory_order_relaxed)));
  };
  v.set("accepted", counter(stats_.accepted));
  v.set("served", counter(stats_.served));
  v.set("shed", counter(stats_.shed));
  v.set("warm_hits", counter(stats_.warm_hits));
  v.set("cold_analyses", counter(stats_.cold_analyses));
  v.set("degraded_requests", counter(stats_.degraded_requests));
  v.set("errors", counter(stats_.errors));

  store::StoreStats ss = store_->stats();
  JsonValue sv = JsonValue::object();
  sv.set("persistent", JsonValue::of(store_->persistent()));
  sv.set("dir", JsonValue::of(store_->dir()));
  sv.set("records", JsonValue::of(static_cast<int64_t>(
                        store_->recordCount())));
  sv.set("loaded", JsonValue::of(ss.loaded));
  sv.set("quarantined",
         JsonValue::of(static_cast<int64_t>(ss.quarantined)));
  sv.set("saves", JsonValue::of(static_cast<int64_t>(ss.saves)));
  if (!ss.load_error.empty())
    sv.set("load_error", JsonValue::of(ss.load_error));
  v.set("store", sv);

  v.set("cache", perfStatsToJson(PerfStats::instance()));
  v.set("incremental",
        incrementalCountersToJson(PerfStats::instance().incremental));
  return v;
}

void MfcDaemon::maybeFlush() {
  bool flush_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (++stored_since_flush_ >= opts_.flush_every) {
      stored_since_flush_ = 0;
      flush_now = true;
    }
  }
  if (flush_now) {
    std::string err;
    if (!flushStore(err))
      std::fprintf(stderr, "mfcd: store flush failed: %s\n", err.c_str());
  }
}

bool MfcDaemon::flushStore(std::string& err) {
  if (!store_->persistent()) return true;
  store_->captureFeasibility();
  return store_->save(err);
}

}  // namespace padfa::server
