// Wire protocol of the mfcd analysis daemon.
//
// Transport: a unix-domain stream socket; one request per connection.
// The client sends exactly one JSON object terminated by '\n', the
// server replies with exactly one JSON object terminated by '\n' and
// closes. JSON string escaping keeps embedded newlines (MF sources) on
// one line, so framing is trivial and a torn connection can never be
// confused with a complete request.
//
// Requests:
//   {"cmd":"ping"}
//   {"cmd":"status"}
//   {"cmd":"flush"}                     force a store snapshot save
//   {"cmd":"shutdown"}                  drain, flush, exit
//   {"cmd":"report"|"emit"|"analyze",
//    "source":"<mf text>" | "spec":"corpus:NAME",
//    "deadline_ms":N, "fm_steps":N}     budget overrides, both optional
//   {"cmd":"sleep","ms":N}              test builds only (see ServerOptions)
//
// Responses always carry "ok". Success responses for analysis commands
// carry "source_hash" (hex), "signature" (the canonical plan signature,
// driver/plan_signature.h), "cached" (served from the persistent store
// without re-analysis), "degraded" (count of budget-degraded plans),
// and the command payload ("report" or "emit" text). Failures carry
// "error" (stable code: bad-request, parse-error, compile-error,
// overloaded, request-too-large, internal) plus human "detail" and,
// for compile-error, rendered "diagnostics".
#pragma once

#include <cstdint>
#include <string>

#include "support/json.h"

namespace padfa::server {

struct Request {
  std::string cmd;
  std::string source;    ///< inline MF source (wins over spec)
  std::string spec;      ///< "corpus:NAME" or a path the *server* can read
  double deadline_ms = 0;   ///< per-request wall-clock budget (0 = server default)
  uint64_t fm_steps = 0;    ///< per-request FM-step budget (0 = unlimited)
  int sleep_ms = 0;         ///< test-only worker stall
};

/// Parse one request line. False + err on malformed JSON or a missing /
/// non-string "cmd".
bool parseRequest(const std::string& line, Request& out, std::string& err);

/// Serialize a request to its one-line JSON form (no trailing newline).
std::string encodeRequest(const Request& r);

/// {"ok":false,"error":code,"detail":detail} as a JsonValue.
JsonValue errorResponse(const std::string& code, const std::string& detail);

}  // namespace padfa::server
