#include "server/protocol.h"

namespace padfa::server {

bool parseRequest(const std::string& line, Request& out, std::string& err) {
  JsonValue v;
  if (!parseJson(line, v, err)) return false;
  if (v.kind() != JsonValue::Kind::Object) {
    err = "request is not a JSON object";
    return false;
  }
  if (v.get("cmd").kind() != JsonValue::Kind::String) {
    err = "missing \"cmd\"";
    return false;
  }
  out.cmd = v.get("cmd").asString();
  out.source = v.get("source").asString();
  out.spec = v.get("spec").asString();
  out.deadline_ms = v.get("deadline_ms").asNumber(0);
  out.fm_steps = static_cast<uint64_t>(v.get("fm_steps").asNumber(0));
  out.sleep_ms = static_cast<int>(v.get("ms").asNumber(0));
  return true;
}

std::string encodeRequest(const Request& r) {
  JsonValue v = JsonValue::object();
  v.set("cmd", JsonValue::of(r.cmd));
  if (!r.source.empty()) v.set("source", JsonValue::of(r.source));
  if (!r.spec.empty()) v.set("spec", JsonValue::of(r.spec));
  if (r.deadline_ms > 0) v.set("deadline_ms", JsonValue::of(r.deadline_ms));
  if (r.fm_steps > 0)
    v.set("fm_steps", JsonValue::of(static_cast<int64_t>(r.fm_steps)));
  if (r.sleep_ms > 0) v.set("ms", JsonValue::of(int64_t{r.sleep_ms}));
  return v.dump();
}

JsonValue errorResponse(const std::string& code, const std::string& detail) {
  JsonValue v = JsonValue::object();
  v.set("ok", JsonValue::of(false));
  v.set("error", JsonValue::of(code));
  if (!detail.empty()) v.set("detail", JsonValue::of(detail));
  return v;
}

}  // namespace padfa::server
