// mfcd — the long-lived analysis daemon.
//
// Architecture (see DESIGN.md §12):
//
//   accept thread --+--> bounded request queue --> worker threads
//                   |        (load shedding:          |
//                   |         queue full => an        v
//                   |         immediate `overloaded`  compile under a
//                   |         response, no analysis)  per-request
//                   |                                 AnalysisBudget
//   signal handler -+--> self-pipe --> drain: stop accepting, finish
//                                      queued requests, flush store,
//                                      unlink socket, exit 0
//
// Robustness posture, in order of priority:
//   1. Never a wrong plan. Warm responses come only from store records
//      keyed by the exact source content hash + format version, written
//      only by ungoverned, undegraded runs; per-record CRCs and
//      whole-snapshot quarantine keep disk corruption out of the
//      serving path entirely.
//   2. Never a hung queue. Every analysis runs under an AnalysisBudget
//      (server default and/or per-request deadline); exhaustion
//      degrades the affected loops to sound Sequential/baseline plans
//      and the response says so (`degraded`).
//   3. Never unbounded memory. Requests are size-capped, the queue is
//      depth-capped (excess connections are shed with `overloaded`),
//      and one response per connection bounds socket buffering.
//   4. Never a dirty exit. SIGTERM/SIGINT drain in-flight requests and
//      flush the store via the atomic snapshot path; a SIGKILL loses at
//      most the un-flushed tail — the next start serves cold for those
//      sources, warm for everything already snapshotted.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "store/summary_store.h"

namespace padfa::server {

struct ServerOptions {
  std::string socket_path;        ///< unix socket path (required)
  std::string store_dir;          ///< "" => ephemeral (no persistence)
  unsigned workers = 2;           ///< analysis worker threads
  size_t queue_limit = 64;        ///< max queued requests before shedding
  double request_deadline_ms = 0; ///< default per-request deadline (0 = none)
  unsigned flush_every = 4;       ///< store snapshot every N stored analyses
  size_t max_request_bytes = 8u << 20;
  bool enable_test_commands = false;  ///< allow {"cmd":"sleep"} (tests only)
  bool install_signal_handlers = true;

  /// Defaults refined by PADFA_MFCD_SOCKET, PADFA_STORE_DIR,
  /// PADFA_MFCD_WORKERS, PADFA_MFCD_QUEUE, PADFA_MFCD_DEADLINE_MS,
  /// PADFA_MFCD_FLUSH_EVERY.
  static ServerOptions fromEnv();
};

/// "/tmp/mfcd-<uid>.sock" unless PADFA_MFCD_SOCKET overrides it — the
/// address mfc's client mode and the daemon agree on by default.
std::string defaultSocketPath();

struct ServerStats {
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> warm_hits{0};
  std::atomic<uint64_t> cold_analyses{0};
  std::atomic<uint64_t> degraded_requests{0};
  std::atomic<uint64_t> errors{0};
};

class MfcDaemon {
 public:
  explicit MfcDaemon(ServerOptions opts);
  ~MfcDaemon();
  MfcDaemon(const MfcDaemon&) = delete;
  MfcDaemon& operator=(const MfcDaemon&) = delete;

  /// Bind + listen + load the store + spawn accept/worker threads.
  bool start(std::string& err);

  /// Begin a drain (idempotent, callable from any thread and from the
  /// signal path via the self-pipe).
  void requestStop();

  /// Block until a drain completes; joins all threads, flushes the
  /// store, unlinks the socket. Returns the process exit code.
  int wait();

  /// start() + wait() — the `mfcd` / `mfc serve` entry point.
  int run(std::string& err);

  /// Dispatch one request line to a response line (no sockets) — the
  /// unit-test seam; identical to what a worker does per connection.
  std::string handleLine(const std::string& line);

  const ServerOptions& options() const { return opts_; }
  const ServerStats& stats() const { return stats_; }
  store::SummaryStore& store() { return *store_; }

 private:
  void acceptLoop();
  void workerLoop();
  void serveConnection(int fd);
  JsonValue handleRequest(const Request& r);
  JsonValue handleAnalysis(const Request& r);
  JsonValue statusJson();
  void maybeFlush();
  bool flushStore(std::string& err);

  ServerOptions opts_;
  std::unique_ptr<store::SummaryStore> store_;
  ServerStats stats_;
  double started_at_ = 0;

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> queue_;
  bool stopping_ = false;
  bool started_ = false;
  uint64_t stored_since_flush_ = 0;
};

}  // namespace padfa::server
