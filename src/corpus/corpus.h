// The evaluation corpus: 33 MF programs standing in for the paper's
// benchmark suites (Specfp95, NAS, Perfect, plus additional programs —
// erlebacher and three pipelined-recurrence kernels for the Doacross
// evaluation).
//
// Substitution note (see DESIGN.md §2): the original Fortran sources are
// licensed and run on 1990s inputs; each corpus program instead distills
// the loop-nest patterns the paper's evaluation hinges on — doall loops,
// privatizable scratch arrays, conditionally-defined arrays with
// compile-time or run-time guards, boundary/distance breaking conditions,
// interprocedural reshape, index-array accesses only a run-time test can
// disambiguate, and genuine recurrences. Expected per-program outcomes
// are recorded here and asserted by tests/corpus_test.cpp.
#pragma once

#include <string>
#include <vector>

namespace padfa {

/// What kind of gain predicated analysis is designed to achieve on the
/// program's distinguished loop(s).
enum class GainKind {
  None,         // base SUIF already gets everything it can
  CompileTime,  // additional loops parallelized at compile time
  RuntimeTest,  // additional loops via derived run-time tests
};

struct CorpusEntry {
  std::string name;
  std::string suite;  // "Specfp95", "NAS", "Perfect", "other"
  /// MF source; occurrences of "$N$" are replaced by base_n * scale.
  std::string source;
  int base_n = 64;
  GainKind gain = GainKind::None;
  /// True for the programs whose predicated gains dominate coverage and
  /// therefore show whole-program speedup (the paper's 5 programs).
  bool speedup_expected = false;
};

/// The full 33-program corpus, stable order.
const std::vector<CorpusEntry>& corpus();

/// Look up by name (nullptr if absent).
const CorpusEntry* corpusEntry(const std::string& name);

/// Instantiate the program source at a given scale ("$N$" -> base_n*scale).
std::string instantiate(const CorpusEntry& entry, int scale = 1);

namespace corpus_detail {
std::vector<CorpusEntry> specfpPrograms();
std::vector<CorpusEntry> nasPrograms();
std::vector<CorpusEntry> perfectPrograms();
}  // namespace corpus_detail

}  // namespace padfa
