#include "corpus/corpus.h"

#include <map>

namespace padfa {

const std::vector<CorpusEntry>& corpus() {
  static const std::vector<CorpusEntry> all = [] {
    std::vector<CorpusEntry> v;
    auto add = [&v](std::vector<CorpusEntry> part) {
      for (auto& e : part) v.push_back(std::move(e));
    };
    add(corpus_detail::specfpPrograms());
    add(corpus_detail::nasPrograms());
    add(corpus_detail::perfectPrograms());
    return v;
  }();
  return all;
}

const CorpusEntry* corpusEntry(const std::string& name) {
  for (const auto& e : corpus())
    if (e.name == name) return &e;
  return nullptr;
}

std::string instantiate(const CorpusEntry& entry, int scale) {
  if (scale < 1) scale = 1;
  std::string n = std::to_string(entry.base_n * scale);
  std::string out;
  out.reserve(entry.source.size());
  const std::string& src = entry.source;
  size_t pos = 0;
  while (pos < src.size()) {
    size_t tok = src.find("$N$", pos);
    if (tok == std::string::npos) {
      out.append(src, pos, std::string::npos);
      break;
    }
    out.append(src, pos, tok - pos);
    out += n;
    pos = tok + 3;
  }
  return out;
}

}  // namespace padfa
