// Specfp95 stand-ins. Each program distills the loop patterns the paper's
// evaluation exercises in the corresponding benchmark; see corpus.h.
#include "corpus/corpus.h"

namespace padfa::corpus_detail {

std::vector<CorpusEntry> specfpPrograms() {
  std::vector<CorpusEntry> v;

  // tomcatv: mesh-generation style 2-D sweeps (doall), a scratch row
  // buffer (base privatization), and a genuine line recurrence.
  v.push_back({"tomcatv", "Specfp95", R"(
proc main() {
  int n; n = $N$;
  real x[$N$, $N$];
  real y[$N$, $N$];
  real rx[$N$, $N$];
  real row[$N$];
  for i = 0 to n - 1 {
    for j = 0 to n - 1 {
      x[i, j] = noise(i * n + j);
      y[i, j] = noise(i * n + j + 1000000);
    }
  }
  for i = 1 to n - 2 {
    for j = 1 to n - 2 {
      rx[i, j] = (x[i-1, j] + x[i+1, j] + x[i, j-1] + x[i, j+1]) * 0.25
               - y[i, j] * 0.125;
    }
  }
  for i = 0 to n - 1 {
    for j = 0 to n - 1 { row[j] = rx[i, j] * 0.5 + x[i, j]; }
    real s; s = 0.0;
    for j = 0 to n - 1 { s = s + row[j]; }
    y[i, 0] = s;
  }
  for j = 0 to n - 1 {
    for i = 1 to n - 1 {
      x[i, j] = x[i-1, j] * 0.25 + x[i, j];
    }
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + x[i, i] + y[i, 0]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // swim: shallow-water stencils, all doall, plus boundary-wrap loops.
  v.push_back({"swim", "Specfp95", R"(
proc main() {
  int n; n = $N$;
  real u[$N$, $N$];
  real vv[$N$, $N$];
  real p[$N$, $N$];
  real unew[$N$, $N$];
  for i = 0 to n - 1 {
    for j = 0 to n - 1 {
      u[i, j] = noise(i * n + j);
      vv[i, j] = noise(i * n + j + 7);
      p[i, j] = noise(i * n + j + 13) + 1.0;
    }
  }
  for i = 1 to n - 2 {
    for j = 1 to n - 2 {
      unew[i, j] = u[i, j]
        + 0.1 * (p[i+1, j] - p[i-1, j])
        + 0.05 * (vv[i, j+1] + vv[i, j-1]);
    }
  }
  for j = 0 to n - 1 {
    unew[0, j] = unew[n - 2, j];
    unew[n - 1, j] = unew[1, j];
  }
  for i = 0 to n - 1 {
    for j = 0 to n - 1 { u[i, j] = unew[i, j] * 0.99; }
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + u[i, i % n]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // su2cor: the paper-style win — a dominant outer loop whose scratch
  // array is conditionally defined and conditionally used under the SAME
  // run-time flag (Figure 1(a)). Predicated analysis proves coverage at
  // compile time and privatizes; base SUIF stays sequential.
  v.push_back({"su2cor", "Specfp95", R"(
proc main() {
  int n; n = $N$;
  int w; w = 96;
  int flag; flag = inoise(7, 2);
  real out[$N$];
  real help[96];
  for i = 0 to n - 1 {
    if (flag > 0) {
      for j = 0 to w - 1 { help[j] = noise(i * 96 + j) * 0.5 + 0.1; }
    }
    if (flag > 0) {
      real s; s = 0.0;
      for j = 0 to w - 1 { s = s + help[j] * help[j] + sqrt(help[j] + 1.0); }
      out[i] = s;
    } else {
      real s2; s2 = 0.0;
      for j = 0 to w - 1 { s2 = s2 + noise(i * 96 + j); }
      out[i] = s2;
    }
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + out[i]; }
  sink(chk);
}
)", 512, GainKind::CompileTime, true});

  // hydro2d: dominant outer loop needing predicate EMBEDDING
  // (Figure 1(c) family): the write of buf[i] is guarded by d >= 5 and
  // the shifted read buf[i-1] by d < 3 — affinely contradictory but not
  // structural complements. Only embedding the guard constraints into the
  // dependence system proves independence at compile time; without
  // embedding the analysis can merely derive a run-time test.
  v.push_back({"hydro2d", "Specfp95", R"(
proc main() {
  int n; n = $N$;
  int d; d = inoise(11, 10);
  real buf[$N$ + 64];
  real out[$N$];
  for q = 0 to n + 63 { buf[q] = noise(q) + 0.25; }
  for i = 1 to n - 1 {
    if (d >= 5) {
      buf[i] = noise(i) * 0.5;
    }
    if (d < 3) {
      out[i] = buf[i - 1] * 2.0;
    }
    real acc; acc = 0.0;
    for k = 0 to 63 { acc = acc + noise(i * 64 + k) * 0.001; }
    out[i] = out[i] + acc;
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + out[i]; }
  sink(chk);
}
)", 512, GainKind::CompileTime, true});

  // mgrid: multigrid smoothing sweeps (doall) plus one true recurrence.
  v.push_back({"mgrid", "Specfp95", R"(
proc smooth(real dst[n, n], real src[n, n], int n) {
  for i = 1 to n - 2 {
    for j = 1 to n - 2 {
      dst[i, j] = (src[i-1, j] + src[i+1, j] + src[i, j-1] + src[i, j+1]
                   + src[i, j]) * 0.2;
    }
  }
}
proc main() {
  int n; n = $N$;
  real a[$N$, $N$];
  real b[$N$, $N$];
  for i = 0 to n - 1 {
    for j = 0 to n - 1 { a[i, j] = noise(i * n + j); }
  }
  smooth(b, a, n);
  smooth(a, b, n);
  for i = 1 to n - 1 {
    a[i, 0] = a[i-1, 0] * 0.5 + a[i, 0];
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + a[i, 0] + b[i, i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // applu: SSOR-style sweeps; includes an index-array scatter that only a
  // run-time (inspector) test can disambiguate — part of the "remaining
  // inherently parallel" set that predicated analysis does NOT recover.
  v.push_back({"applu", "Specfp95", R"(
proc main() {
  int n; n = $N$;
  int perm[$N$];
  real a[$N$];
  real b[$N$];
  for q = 0 to n - 1 { perm[q] = (q * 7 + 3) % n; }
  for i = 0 to n - 1 { a[i] = noise(i); }
  for i = 0 to n - 1 { b[perm[i]] = a[i] * 2.0 + 1.0; }
  for i = 1 to n - 1 { a[i] = a[i-1] * 0.3 + b[i]; }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + b[i] + a[i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // turb3d: doall transforms plus an I/O (sink) loop that is not a
  // parallelization candidate.
  v.push_back({"turb3d", "Specfp95", R"(
proc main() {
  int n; n = $N$;
  real u[$N$, 8];
  for i = 0 to n - 1 {
    for c = 0 to 7 { u[i, c] = noise(i * 8 + c); }
  }
  for i = 0 to n - 1 {
    real e; e = 0.0;
    for c = 0 to 7 { e = e + u[i, c] * u[i, c]; }
    for c = 0 to 7 { u[i, c] = u[i, c] / (sqrt(e) + 1.0); }
  }
  for i = 0 to n - 1 { sink(u[i, 0]); }
}
)", 64, GainKind::None, false});

  // apsi: the paper-style run-time control-flow test (Figure 1(b)): a
  // write guarded by an input flag plus a shifted read. The dependence
  // exists only when the flag is set; on the reference input it is not,
  // so the two-version loop runs in parallel. Dominant coverage.
  v.push_back({"apsi", "Specfp95", R"(
proc main() {
  int n; n = $N$;
  int t; t = inoise(13, 2);
  real buf[$N$];
  real out[$N$];
  for j = 0 to n - 1 { buf[j] = noise(j) + 0.5; }
  for i = 1 to n - 1 {
    if (t > 0) {
      buf[i] = noise(i) * 2.0;
    }
    real acc; acc = buf[i - 1] * 0.5;
    for k = 0 to 127 { acc = acc + noise(i * 128 + k) * 0.01; }
    out[i] = acc;
  }
  real chk; chk = 0.0;
  for i = 1 to n - 1 { chk = chk + out[i]; }
  sink(chk);
}
)", 512, GainKind::RuntimeTest, true});

  // fpppp: mostly sequential two-electron-integral style recurrences —
  // little parallelism for anyone, matching the paper's hard cases.
  v.push_back({"fpppp", "Specfp95", R"(
proc main() {
  int n; n = $N$;
  real f[$N$];
  real g[$N$];
  f[0] = 1.0;
  g[0] = 0.5;
  for i = 1 to n - 1 { f[i] = f[i-1] * 0.9 + noise(i); }
  for i = 1 to n - 1 { g[i] = g[i-1] + f[i] * 0.1; }
  for i = 0 to n - 1 { f[i] = f[i] * 1.5; }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + f[i] + g[i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // wave5: minor predicated gain — a low-coverage loop with a symbolic
  // dependence distance (Figure 1(d) family). The extraction-derived
  // run-time test is discharged at compile time by the value-range
  // analysis (d is provably the singleton [n, n]), so the loop is
  // promoted straight to Parallel. Outer loops are already base-parallel.
  v.push_back({"wave5", "Specfp95", R"(
proc main() {
  int n; n = $N$;
  int d; d = inoise(17, 1) + n;
  real x[$N$ * 3];
  real p[$N$, 4];
  for j = 0 to 3 * n - 1 { x[j] = noise(j); }
  for i = n to 2 * n - 1 {
    x[i] = x[i - d] * 0.5 + 1.0;
  }
  for i = 0 to n - 1 {
    for c = 0 to 3 { p[i, c] = x[i + c] * 0.25; }
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + p[i, 1] + x[i]; }
  sink(chk);
}
)", 64, GainKind::CompileTime, false});

  return v;
}

}  // namespace padfa::corpus_detail
