// NAS sample-benchmark stand-ins; see corpus.h.
#include "corpus/corpus.h"

namespace padfa::corpus_detail {

std::vector<CorpusEntry> nasPrograms() {
  std::vector<CorpusEntry> v;

  // appbt: block-tridiagonal style — doall face loops plus a privatizable
  // block scratch (base gets everything it can).
  v.push_back({"appbt", "NAS", R"(
proc main() {
  int n; n = $N$;
  real rhs[$N$, 5];
  real lhs[$N$, 5];
  real blk[25];
  for i = 0 to n - 1 {
    for c = 0 to 4 { rhs[i, c] = noise(i * 5 + c); }
  }
  for i = 0 to n - 1 {
    for q = 0 to 24 { blk[q] = noise(i * 25 + q) * 0.1; }
    for c = 0 to 4 {
      real s; s = 0.0;
      for q = 0 to 4 { s = s + blk[c * 5 + q] * rhs[i, q]; }
      lhs[i, c] = s;
    }
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + lhs[i, 2]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // applu_nas: lower/upper sweeps with a wavefront recurrence that stays
  // sequential, plus doall RHS assembly.
  v.push_back({"applu_nas", "NAS", R"(
proc main() {
  int n; n = $N$;
  real f[$N$, $N$];
  real u[$N$, $N$];
  for i = 0 to n - 1 {
    for j = 0 to n - 1 { f[i, j] = noise(i * n + j); }
  }
  for i = 1 to n - 1 {
    for j = 1 to n - 1 {
      u[i, j] = u[i-1, j] * 0.25 + u[i, j-1] * 0.25 + f[i, j];
    }
  }
  for i = 0 to n - 1 {
    for j = 0 to n - 1 { f[i, j] = f[i, j] * 0.5 + u[i, j] * 0.1; }
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + u[i, n - 1 - i] + f[i, i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // appsp: the interprocedural RESHAPE gain — a callee fills its 1-D
  // formal view of the caller's 2-D array; whole-array coverage holds iff
  // the passed length equals the total size, a predicate the analysis
  // extracts during Reshape and tests at run time.
  v.push_back({"appsp", "NAS", R"(
proc fillv(real w[len], int len, int seed) {
  for q = 0 to len - 1 { w[q] = noise(seed * 1024 + q) * 0.5 + 0.25; }
}
proc main() {
  int n; n = $N$;
  int rows; rows = 8;
  int cols; cols = 12;
  int len; len = inoise(19, 2) + 96;
  real g[8, 12];
  real out[$N$];
  real fld[$N$, 32];
  for i = 0 to n - 1 {
    for j = 0 to 31 { fld[i, j] = noise(i * 32 + j) * 0.5; }
  }
  for i = 0 to n - 1 {
    real t; t = 0.0;
    for j = 0 to 31 { t = t + fld[i, j] * fld[i, j]; }
    out[i] = t;
  }
  int nsweep; nsweep = 16;
  for i = 0 to nsweep - 1 {
    fillv(g, len, i);
    real s; s = 0.0;
    for r = 0 to rows - 1 {
      for c = 0 to cols - 1 { s = s + g[r, c]; }
    }
    out[i] = out[i] + s * 0.001;
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + out[i]; }
  sink(chk);
}
)", 64, GainKind::RuntimeTest, false});

  // buk (bucket sort): rank/permute phases driven by index arrays — the
  // scatter is input-parallel (a permutation) but no compile-time or
  // predicated test can know; part of the uncaught ELPD remainder.
  v.push_back({"buk", "NAS", R"(
proc main() {
  int n; n = $N$;
  int key[$N$];
  int rank[$N$];
  real val[$N$];
  for i = 0 to n - 1 { key[i] = (i * 13 + 5) % n; }
  for i = 0 to n - 1 { val[i] = noise(i); }
  for i = 0 to n - 1 { rank[key[i]] = i; }
  for i = 0 to n - 1 { val[rank[i]] = val[rank[i]] * 1.0; }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + rank[i] + val[i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // cgm: sparse conjugate-gradient flavor — dense reductions are base
  // parallel; the indirect gather is fine (reads only); the indirect
  // scatter joins the uncaught remainder.
  v.push_back({"cgm", "NAS", R"(
proc main() {
  int n; n = $N$;
  int col[$N$];
  real x[$N$];
  real y[$N$];
  real z[$N$];
  for i = 0 to n - 1 { col[i] = (i * 5 + 2) % n; }
  for i = 0 to n - 1 { x[i] = noise(i) + 0.1; }
  for i = 0 to n - 1 { y[i] = x[col[i]] * 2.0; }
  real dot; dot = 0.0;
  for i = 0 to n - 1 { dot = dot + x[i] * y[i]; }
  for i = 0 to n - 1 { z[col[i]] = y[i] + dot; }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + z[i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // embar: embarrassingly parallel gaussian-pair counting — one large
  // reduction loop, fully base parallel.
  v.push_back({"embar", "NAS", R"(
proc main() {
  int n; n = $N$;
  real sx; sx = 0.0;
  real sy; sy = 0.0;
  for i = 0 to n - 1 {
    real t1; t1 = noise(2 * i);
    real t2; t2 = noise(2 * i + 1);
    sx = sx + t1 * t1;
    sy = sy + t2 * t2;
  }
  sink(sx);
  sink(sy);
}
)", 4096, GainKind::None, false});

  // fftpde: butterfly passes — strided doall loops (stride-2 disjointness
  // needs the gcd tightening) plus a bit-reversal permutation copy.
  v.push_back({"fftpde", "NAS", R"(
proc main() {
  int n; n = $N$;
  real re[$N$];
  real im[$N$];
  real tmp[$N$];
  for i = 0 to n - 1 {
    re[i] = noise(i);
    im[i] = noise(i + 424242);
  }
  for i = 0 to n - 1 step 2 {
    tmp[i] = re[i] + re[i + 1];
    tmp[i + 1] = re[i] - re[i + 1];
  }
  for i = 0 to n - 1 step 2 {
    re[i] = tmp[i] * 0.5 + im[i] * 0.1;
    re[i + 1] = tmp[i + 1] * 0.5 - im[i + 1] * 0.1;
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + re[i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // mgrid_nas: 1-D multigrid restriction/prolongation ladder, doall at
  // each level, with an interprocedural smoothing kernel.
  v.push_back({"mgrid_nas", "NAS", R"(
proc relax(real dst[n], real src[n], int n) {
  for i = 1 to n - 2 {
    dst[i] = (src[i-1] + src[i] * 2.0 + src[i+1]) * 0.25;
  }
}
proc main() {
  int n; n = $N$;
  real fine[$N$];
  real coarse[$N$];
  for i = 0 to n - 1 { fine[i] = noise(i); }
  relax(coarse, fine, n);
  for i = 0 to n / 2 - 1 { coarse[i] = coarse[2 * i] * 0.5; }
  relax(fine, coarse, n);
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + fine[i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  return v;
}

}  // namespace padfa::corpus_detail
