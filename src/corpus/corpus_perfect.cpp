// Perfect-club stand-ins plus the paper's one additional program.
#include "corpus/corpus.h"

namespace padfa::corpus_detail {

std::vector<CorpusEntry> perfectPrograms() {
  std::vector<CorpusEntry> v;

  // adm: pollutant transport sweeps — base-parallel stencils and a
  // vertical recurrence.
  v.push_back({"adm", "Perfect", R"(
proc main() {
  int n; n = $N$;
  real c[$N$, $N$];
  real w[$N$, $N$];
  for i = 0 to n - 1 {
    for j = 0 to n - 1 { c[i, j] = noise(i * n + j) * 0.5; }
  }
  for i = 1 to n - 2 {
    for j = 0 to n - 1 {
      w[i, j] = (c[i-1, j] + c[i+1, j]) * 0.5 - c[i, j] * 0.1;
    }
  }
  for j = 0 to n - 1 {
    for i = 1 to n - 1 { c[i, j] = c[i-1, j] * 0.2 + w[i, j]; }
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + c[i, 0]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // arc2d: implicit-solver sweeps with a privatizable pencil buffer.
  v.push_back({"arc2d", "Perfect", R"(
proc main() {
  int n; n = $N$;
  real q[$N$, $N$];
  real r[$N$, $N$];
  real pencil[$N$];
  for i = 0 to n - 1 {
    for j = 0 to n - 1 { q[i, j] = noise(i * n + j) + 0.5; }
  }
  for i = 0 to n - 1 {
    for j = 0 to n - 1 { pencil[j] = q[i, j] * 2.0; }
    for j = 1 to n - 2 {
      r[i, j] = (pencil[j-1] + pencil[j+1]) * 0.5 - pencil[j];
    }
    r[i, 0] = pencil[0];
    r[i, n - 1] = pencil[n - 1];
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + r[i, i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // bdna: molecular-dynamics style with a true accumulation recurrence
  // and base-parallel force loops.
  v.push_back({"bdna", "Perfect", R"(
proc main() {
  int n; n = $N$;
  real pos[$N$];
  real frc[$N$];
  real acc[$N$];
  for i = 0 to n - 1 { pos[i] = noise(i) * 10.0; }
  for i = 0 to n - 1 {
    real f; f = 0.0;
    for j = 0 to 31 { f = f + noise(i * 32 + j) - 0.5; }
    frc[i] = f;
  }
  acc[0] = frc[0];
  for i = 1 to n - 1 { acc[i] = acc[i-1] + frc[i]; }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + acc[i] * 0.001 + pos[i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // dyfesm: finite-element assembly — minor run-time control-flow gain:
  // an element-update loop writes a shared buffer only when a run-time
  // damping flag is on, with a shifted read (Figure 1(b) family).
  v.push_back({"dyfesm", "Perfect", R"(
proc main() {
  int n; n = $N$;
  int damp; damp = inoise(31, 2);
  real disp[$N$];
  real vel[$N$];
  real stiff[$N$, 16];
  for i = 0 to n - 1 { disp[i] = noise(i); vel[i] = noise(i + 555) * 0.1; }
  for i = 0 to n - 1 {
    real k; k = 0.0;
    for j = 0 to 15 {
      stiff[i, j] = noise(i * 16 + j) * 0.5;
      k = k + stiff[i, j];
    }
    disp[i] = disp[i] + k * 0.001;
  }
  for i = 1 to n - 1 {
    if (damp > 0) {
      disp[i] = disp[i] * 0.99;
    }
    vel[i] = vel[i] + disp[i - 1] * 0.01;
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + vel[i]; }
  sink(chk);
}
)", 64, GainKind::RuntimeTest, false});

  // flo52: transonic-flow sweeps, all base parallel, plus one
  // convergence recurrence.
  v.push_back({"flo52", "Perfect", R"(
proc main() {
  int n; n = $N$;
  real wgrid[$N$, $N$];
  real res[$N$, $N$];
  for i = 0 to n - 1 {
    for j = 0 to n - 1 { wgrid[i, j] = noise(i * n + j); }
  }
  for i = 1 to n - 2 {
    for j = 1 to n - 2 {
      res[i, j] = wgrid[i+1, j] - 2.0 * wgrid[i, j] + wgrid[i-1, j];
    }
  }
  real conv[$N$];
  conv[0] = 1.0;
  for i = 1 to n - 1 { conv[i] = conv[i-1] * 0.95 + res[i, 1] * 0.05; }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + conv[i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // mdg: water-molecule dynamics — the paper reports large predicated
  // gains. A dominant outer loop fills a neighbor scratch prefix of
  // run-time length d and reads fixed positions: the exposed remainder is
  // provably disjoint from the writes, so predicated analysis privatizes
  // with copy-in; base SUIF stays sequential.
  v.push_back({"mdg", "Perfect", R"(
proc main() {
  int n; n = $N$;
  int d; d = inoise(23, 1) + 24;
  real out[$N$];
  real nbr[64];
  for q = 0 to 63 { nbr[q] = noise(q) * 0.5; }
  for i = 0 to n - 1 {
    for j = 0 to d - 1 { nbr[j] = noise(i * 64 + j); }
    real e; e = nbr[0] * 0.5 + nbr[1] + nbr[40] * 0.25;
    for k = 0 to 95 { e = e + noise(i * 96 + k) * 0.001; }
    out[i] = e;
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + out[i]; }
  sink(chk);
}
)", 512, GainKind::CompileTime, true});

  // ocean: 2-D ocean simulation — minor extraction gain: a shift loop
  // with symbolic offset. The distance run-time test is provably true
  // (off is the singleton [n, n]), so the value-range pass promotes the
  // loop to compile-time Parallel.
  v.push_back({"ocean", "Perfect", R"(
proc main() {
  int n; n = $N$;
  int off; off = inoise(37, 1) + n;
  real psi[$N$ * 3];
  real zeta[$N$];
  for j = 0 to 3 * n - 1 { psi[j] = noise(j); }
  for i = n to 2 * n - 1 {
    psi[i] = psi[i - off] * 0.9 + 0.01;
  }
  for i = 0 to n - 1 { zeta[i] = psi[i + n] * 2.0; }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + zeta[i]; }
  sink(chk);
}
)", 64, GainKind::CompileTime, false});

  // qcd: lattice gauge updates through an indirection table — uncaught
  // ELPD-parallel remainder plus base-parallel link loops.
  v.push_back({"qcd", "Perfect", R"(
proc main() {
  int n; n = $N$;
  int site[$N$];
  real link[$N$];
  real stap[$N$];
  for i = 0 to n - 1 { site[i] = (i * 3 + 1) % n; }
  for i = 0 to n - 1 { link[i] = noise(i) + 1.0; }
  for i = 0 to n - 1 { stap[site[i]] = link[i] * 0.5; }
  for i = 0 to n - 1 { link[i] = link[i] * 0.9 + stap[i] * 0.1; }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + link[i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // spec77: spectral weather code — base-parallel transforms and a
  // latitude recurrence.
  v.push_back({"spec77", "Perfect", R"(
proc main() {
  int n; n = $N$;
  real sp[$N$, 4];
  real gr[$N$];
  for i = 0 to n - 1 {
    for m = 0 to 3 { sp[i, m] = noise(i * 4 + m); }
  }
  for i = 0 to n - 1 {
    real s; s = 0.0;
    for m = 0 to 3 { s = s + sp[i, m] * (m + 1); }
    gr[i] = s;
  }
  for i = 1 to n - 1 { gr[i] = gr[i] + gr[i-1] * 0.5; }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + gr[i] * 0.01; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // track: target tracking — hypothesis scatter through an index table
  // (uncaught remainder) and base-parallel smoothing.
  v.push_back({"track", "Perfect", R"(
proc main() {
  int n; n = $N$;
  int hyp[$N$];
  real trk[$N$];
  real obs[$N$];
  for i = 0 to n - 1 { hyp[i] = (i * 11 + 7) % n; }
  for i = 0 to n - 1 { obs[i] = noise(i); }
  for i = 0 to n - 1 { trk[hyp[i]] = obs[i] * 3.0; }
  for i = 0 to n - 1 { obs[i] = obs[i] * 0.5 + trk[i] * 0.5; }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + obs[i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // trfd: two-electron integral transformation — the paper's classic
  // privatization case: a dominant loop writes a run-time-length prefix
  // of a scratch array and reads the whole array; predicated analysis
  // proves the exposed suffix is never written and privatizes with
  // copy-in. Base SUIF stays sequential.
  v.push_back({"trfd", "Perfect", R"(
proc main() {
  int n; n = $N$;
  int m; m = inoise(29, 1) + 40;
  real xrsiq[64];
  real out[$N$];
  for q = 0 to 63 { xrsiq[q] = noise(q) * 0.25; }
  for i = 0 to n - 1 {
    for j = 0 to m - 1 { xrsiq[j] = noise(i * 64 + j) * 0.5; }
    real s; s = 0.0;
    for j = 0 to 63 { s = s + xrsiq[j]; }
    for k = 0 to 63 { s = s + noise(i * 64 + k) * 0.01; }
    out[i] = s;
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + out[i]; }
  sink(chk);
}
)", 512, GainKind::CompileTime, true});

  // erlebacher (the "one additional program"): ADI tridiagonal solver —
  // base-parallel sweeps in the parallel dimensions and sequential
  // forward/backward substitution in the pivot dimension.
  v.push_back({"erlebacher", "other", R"(
proc main() {
  int n; n = $N$;
  real rhs[$N$, $N$];
  real dgl[$N$];
  for i = 0 to n - 1 {
    for j = 0 to n - 1 { rhs[i, j] = noise(i * n + j); }
  }
  for j = 0 to n - 1 { dgl[j] = 1.0 + noise(j) * 0.1; }
  for j = 0 to n - 1 {
    for i = 1 to n - 1 {
      rhs[i, j] = rhs[i, j] - rhs[i-1, j] * 0.3 / dgl[j];
    }
  }
  for j = 0 to n - 1 {
    rhs[n - 1, j] = rhs[n - 1, j] / dgl[j];
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + rhs[i, i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // sor_pipe: successive over-relaxation pipeline — heavy independent
  // per-point work feeding a distance-1 recurrence. Neither analysis can
  // DOALL it, but every carried dependence has constant distance 1, so
  // the Doacross upgrade pipelines it with one post/wait pair.
  v.push_back({"sor_pipe", "other", R"(
proc main() {
  int n; n = $N$;
  real a[$N$];
  for i = 0 to n - 1 { a[i] = noise(i) * 0.5; }
  for i = 1 to n - 1 {
    real acc; acc = 0.0;
    for k = 0 to 255 { acc = acc + noise(i * 256 + k) * 0.01; }
    a[i] = a[i-1] * 0.5 + acc;
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + a[i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // lin_rec4: linear recurrence with lag 4 — the carried distance leaves
  // four iterations of slack, so the Doacross pipeline keeps four
  // chains in flight even before the heavy prefix overlaps.
  v.push_back({"lin_rec4", "other", R"(
proc main() {
  int n; n = $N$;
  real b[$N$];
  for i = 0 to n - 1 { b[i] = noise(i) + 1.0; }
  for i = 4 to n - 1 {
    real acc; acc = 0.0;
    for k = 0 to 255 { acc = acc + noise(i * 256 + k) * 0.01; }
    b[i] = b[i-4] * 0.9 + acc * 0.1;
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + b[i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  // wavefront_sync: two coupled recurrences with distances {1, 2} —
  // exercises redundant-sync elimination: the distance-2 requirement
  // u[i-2] -> u[i] is covered by chaining the distance-1 u-recurrence
  // twice plus intra-iteration program order, so only the two
  // distance-1 post/wait pairs survive.
  v.push_back({"wavefront_sync", "other", R"(
proc main() {
  int n; n = $N$;
  real u[$N$];
  real w[$N$];
  for i = 0 to n - 1 { u[i] = noise(i) * 0.5; w[i] = noise(i + 777) * 0.5; }
  for i = 2 to n - 1 {
    real acc; acc = 0.0;
    for k = 0 to 191 { acc = acc + noise(i * 192 + k) * 0.01; }
    u[i] = u[i-1] * 0.4 + acc;
    w[i] = u[i-2] * 0.3 + w[i-1] * 0.2;
  }
  real chk; chk = 0.0;
  for i = 0 to n - 1 { chk = chk + u[i] + w[i]; }
  sink(chk);
}
)", 64, GainKind::None, false});

  return v;
}

}  // namespace padfa::corpus_detail
