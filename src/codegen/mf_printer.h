// MF pretty-printer: renders an AST back to parseable MF source.
// Used by the parallel code generator (and handy for debugging).
#pragma once

#include <string>

#include "lang/ast.h"

namespace padfa {

/// Options controlling statement-level hooks during printing.
struct PrintHooks {
  /// Called before printing a ForStmt at its indentation level; whatever
  /// it returns is emitted verbatim (e.g. "// @parallel ...\n"). May be
  /// null.
  std::function<std::string(const ForStmt&, const std::string& indent)>
      before_loop;
  /// If set and returns true, the loop is printed by the caller-provided
  /// replacement instead of the default renderer.
  std::function<bool(const ForStmt&, const std::string& indent,
                     std::string& out)>
      replace_loop;
};

std::string printProgram(const Program& program,
                         const PrintHooks& hooks = {});
std::string printBlock(const BlockStmt& block, const Interner& interner,
                       const std::string& indent,
                       const PrintHooks& hooks = {});
std::string printStmt(const Stmt& stmt, const Interner& interner,
                      const std::string& indent,
                      const PrintHooks& hooks = {});

}  // namespace padfa
