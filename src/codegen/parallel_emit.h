// Source-to-source parallel code generation.
//
// The paper's system (like SUIF) emits transformed code: parallel loops
// become SPMD dispatch, and loops with derived run-time tests become
// two-version loops. This module renders the analysis result as
// annotated MF source:
//
//   * a loop planned Parallel gets an `// @parallel ...` annotation line
//     listing privatized arrays (with copy policies), private scalars,
//     and reductions;
//   * a loop planned RuntimeTest is EXPANDED into an explicit two-version
//     `if (<test>) { <annotated parallel copy> } else { <original> }`;
//   * everything else is printed unchanged.
//
// The emitted program is valid MF: re-parsing and executing it
// sequentially produces exactly the original behavior (the annotations
// are comments). This gives downstream consumers a human-auditable
// artifact of every transformation the analysis decided on.
#pragma once

#include <string>

#include "dataflow/loop_plan.h"
#include "lang/ast.h"

namespace padfa {

struct EmitStats {
  int parallel_annotations = 0;
  int two_version_loops = 0;
};

/// Emit the transformed program for `plans` (typically the predicated
/// analysis result).
std::string emitParallelProgram(const Program& program,
                                const AnalysisResult& plans,
                                EmitStats* stats = nullptr);

}  // namespace padfa
