#include "codegen/mf_printer.h"

namespace padfa {

namespace {

std::string printDecl(const VarDecl& d, const Interner& in) {
  std::string out(typeName(d.elem_type));
  out += ' ';
  out += in.str(d.name);
  if (d.isArray()) {
    out += '[';
    for (size_t i = 0; i < d.dims.size(); ++i) {
      if (i) out += ", ";
      out += exprToString(*d.dims[i], in);
    }
    out += ']';
  }
  return out;
}

}  // namespace

std::string printStmt(const Stmt& stmt, const Interner& in,
                      const std::string& indent, const PrintHooks& hooks) {
  switch (stmt.kind) {
    case StmtKind::Assign: {
      const auto& s = static_cast<const AssignStmt&>(stmt);
      return indent + exprToString(*s.target, in) + " = " +
             exprToString(*s.value, in) + ";\n";
    }
    case StmtKind::If: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      std::string out = indent + "if (" + exprToString(*s.cond, in) + ") {\n";
      out += printBlock(*s.then_block, in, indent + "  ", hooks);
      out += indent + "}";
      if (s.else_block) {
        out += " else {\n";
        out += printBlock(*s.else_block, in, indent + "  ", hooks);
        out += indent + "}";
      }
      out += '\n';
      return out;
    }
    case StmtKind::For: {
      const auto& s = static_cast<const ForStmt&>(stmt);
      std::string out;
      if (hooks.before_loop) out += hooks.before_loop(s, indent);
      if (hooks.replace_loop) {
        std::string replaced;
        if (hooks.replace_loop(s, indent, replaced)) return out + replaced;
      }
      out += indent + "for " + std::string(in.str(s.index_name)) + " = " +
             exprToString(*s.lower, in) + " to " +
             exprToString(*s.upper, in);
      if (s.step) out += " step " + exprToString(*s.step, in);
      out += " {\n";
      out += printBlock(*s.body, in, indent + "  ", hooks);
      out += indent + "}\n";
      return out;
    }
    case StmtKind::Call: {
      const auto& s = static_cast<const CallStmt&>(stmt);
      std::string out = indent + std::string(in.str(s.callee)) + "(";
      for (size_t i = 0; i < s.args.size(); ++i) {
        if (i) out += ", ";
        out += exprToString(*s.args[i], in);
      }
      out += ");\n";
      return out;
    }
    case StmtKind::Return:
      return indent + "return;\n";
    case StmtKind::Block: {
      const auto& s = static_cast<const BlockStmt&>(stmt);
      std::string out = indent + "{\n";
      out += printBlock(s, in, indent + "  ", hooks);
      out += indent + "}\n";
      return out;
    }
  }
  return "";
}

std::string printBlock(const BlockStmt& block, const Interner& in,
                       const std::string& indent, const PrintHooks& hooks) {
  std::string out;
  for (const auto& d : block.decls) {
    out += indent + printDecl(*d, in);
    if (d->init) out += " = " + exprToString(*d->init, in);
    out += ";\n";
  }
  for (const auto& s : block.stmts) out += printStmt(*s, in, indent, hooks);
  return out;
}

std::string printProgram(const Program& program, const PrintHooks& hooks) {
  std::string out;
  const Interner& in = program.interner;
  for (const auto& proc : program.procs) {
    out += "proc " + std::string(in.str(proc->name)) + "(";
    for (size_t i = 0; i < proc->params.size(); ++i) {
      if (i) out += ", ";
      out += printDecl(*proc->params[i], in);
    }
    out += ") {\n";
    out += printBlock(*proc->body, in, "  ", hooks);
    out += "}\n\n";
  }
  return out;
}

}  // namespace padfa
