#include "codegen/parallel_emit.h"

#include "codegen/mf_printer.h"

namespace padfa {

namespace {

std::string planAnnotation(const LoopPlan& plan, const Interner& in) {
  std::string note = "// @parallel";
  for (const auto& pa : plan.privatized) {
    note += " private(";
    note += in.str(pa.array->name);
    if (pa.copy_in) note += ",copyin";
    if (pa.copy_out) note += ",copyout";
    note += ")";
  }
  for (const VarDecl* sc : plan.private_scalars) {
    note += " private(";
    note += in.str(sc->name);
    note += ")";
  }
  for (const auto& red : plan.reductions) {
    const char* op = red.op == ReductionOp::Sum    ? "+"
                     : red.op == ReductionOp::Prod ? "*"
                     : red.op == ReductionOp::Min  ? "min"
                                                   : "max";
    note += " reduction(";
    note += op;
    note += ":";
    note += in.str(red.scalar->name);
    note += ")";
  }
  return note;
}

}  // namespace

std::string emitParallelProgram(const Program& program,
                                const AnalysisResult& plans,
                                EmitStats* stats) {
  EmitStats local;
  const Interner& in = program.interner;

  PrintHooks hooks;
  // Loops currently being expanded, so the recursive print of the same
  // ForStmt inside its own two-version expansion is rendered plainly.
  std::vector<const ForStmt*> expanding;

  hooks.before_loop = [&plans, &in, &local, &expanding](
                          const ForStmt& loop,
                          const std::string& indent) -> std::string {
    const LoopPlan* plan = plans.planFor(&loop);
    if (!plan || plan->status != LoopStatus::Parallel) return "";
    for (const ForStmt* f : expanding)
      if (f == &loop) return "";
    ++local.parallel_annotations;
    return indent + planAnnotation(*plan, in) + "\n";
  };

  // Two-version expansion. The hook prints:
  //   if (<test>) {
  //     // @parallel ...
  //     <loop>
  //   } else {
  //     <loop>
  //   }
  std::function<bool(const ForStmt&, const std::string&, std::string&)>
      replace = [&](const ForStmt& loop, const std::string& indent,
                    std::string& out) -> bool {
    const LoopPlan* plan = plans.planFor(&loop);
    if (!plan || plan->status != LoopStatus::RuntimeTest) return false;
    for (const ForStmt* f : expanding)
      if (f == &loop) return false;
    ++local.two_version_loops;
    expanding.push_back(&loop);
    std::string inner_indent = indent + "  ";
    out = indent + "if (" + plan->runtime_test.str(in) + ") {\n";
    out += inner_indent + planAnnotation(*plan, in) + "\n";
    out += printStmt(loop, in, inner_indent, hooks);
    out += indent + "} else {\n";
    out += printStmt(loop, in, inner_indent, hooks);
    out += indent + "}\n";
    expanding.pop_back();
    return true;
  };
  hooks.replace_loop = replace;

  std::string out =
      "// Parallelized by predicated array data-flow analysis.\n"
      "// @parallel annotations mark loops proven parallel; two-version\n"
      "// loops dispatch on the derived run-time test.\n\n" +
      printProgram(program, hooks);
  if (stats) *stats = local;
  return out;
}

}  // namespace padfa
