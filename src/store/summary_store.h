// Crash-safe persistence for the analysis caches.
//
// A SummaryStore owns one snapshot file (`summary.snap` inside its
// directory) holding the process's Presburger feasibility cache and the
// per-procedure plan summaries / rendered responses of every source the
// daemon has analyzed, keyed by source content hash. Durability
// contract:
//
//   save():  write-to-temp + fsync(file) + atomic rename + fsync(dir).
//            A crash at any instant leaves either the old snapshot or
//            the new one — never a torn file at the live name.
//   open():  load + decode the snapshot. ANY defect (bad magic, wrong
//            version, CRC mismatch, truncation, trailing bytes) moves
//            the file aside to `summary.snap.quarantine-<k>`, logs,
//            counts, and starts cold. Quarantined bytes are preserved
//            for post-mortem, and a later save() recreates a clean
//            snapshot at the live name.
//
// The store never *answers* anything the analysis could not recompute:
// feasibility entries are renaming-invariant facts keyed by the
// canonical system encoding, and plan/response records are keyed by the
// exact source bytes' content hash plus the store format version — so a
// loaded record can be stale only if the snapshot survived a format
// change, which the version check rejects wholesale. Corruption and
// staleness therefore cost re-analysis time, never a wrong plan.
//
// Thread safety: all public methods lock; the daemon's worker threads
// share one instance.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "store/snapshot.h"

namespace padfa::store {

struct StoreStats {
  bool load_attempted = false;
  bool loaded = false;          ///< a snapshot was read and decoded cleanly
  std::string load_error;       ///< decode failure detail, when quarantined
  uint64_t quarantined = 0;     ///< snapshots moved aside (lifetime of dir)
  uint64_t saves = 0;
  uint64_t loaded_feasibility = 0;
  uint64_t loaded_plans = 0;
  uint64_t loaded_responses = 0;
  uint64_t loaded_deep = 0;  ///< deep per-procedure records in the snapshot
};

class SummaryStore {
 public:
  /// `dir` empty => ephemeral store (no disk I/O; open/save are no-ops).
  explicit SummaryStore(std::string dir);

  /// Load the snapshot if one exists. Returns true iff a snapshot was
  /// decoded cleanly (absent file is not an error — cold start).
  bool open();

  /// Push loaded feasibility entries into the process-wide
  /// FeasibilityCache, and pull the cache's current contents back into
  /// the store (capture) before a save.
  void installFeasibility() const;
  void captureFeasibility();

  // --- per-source records (all keyed by content hash) ---
  void putResponse(uint64_t src_hash, const std::string& kind,
                   std::string body);
  std::optional<std::string> getResponse(uint64_t src_hash,
                                         const std::string& kind) const;
  void putProcPlan(uint64_t src_hash, const std::string& proc,
                   std::string signature);
  std::optional<std::string> getProcPlan(uint64_t src_hash,
                                         const std::string& proc) const;

  // --- deep per-procedure records (incremental re-analysis) ---
  // Keyed by (deep content fingerprint, analysis kind); the value is a
  // deep-codec record (store/deep_codec.h).
  void putDeepProc(uint64_t deep_fp, uint8_t kind, std::string bytes);
  std::optional<std::string> getDeepProc(uint64_t deep_fp,
                                         uint8_t kind) const;

  /// Reassemble the full plan signature for `src_hash` from the stored
  /// per-procedure slices ("procs" index + proc records + "telemetry"
  /// trailer). nullopt when any piece is missing.
  std::optional<std::string> assembleSignature(uint64_t src_hash) const;

  /// Atomic snapshot write (no-op for ephemeral stores). False + err on
  /// I/O failure; the previous snapshot is untouched in that case.
  bool save(std::string& err);

  StoreStats stats() const;
  size_t recordCount() const;
  const std::string& dir() const { return dir_; }
  bool persistent() const { return !dir_.empty(); }
  std::string snapshotPath() const;

  /// PADFA_STORE_DIR, or "" (ephemeral) when unset.
  static std::string defaultDir();

 private:
  std::string quarantineTarget() const;

  mutable std::mutex mu_;
  std::string dir_;
  StoreData data_;
  StoreStats stats_;
};

}  // namespace padfa::store
