#include "store/snapshot.h"

#include <cstring>

#include "support/hash.h"

namespace padfa::store {

namespace {

void putU16(std::string& out, uint16_t v) {
  out += static_cast<char>(v & 0xFF);
  out += static_cast<char>((v >> 8) & 0xFF);
}

void putU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void putU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void appendRecord(std::string& out, uint8_t type, const std::string& payload) {
  std::string head;
  head += static_cast<char>(type);
  putU32(head, static_cast<uint32_t>(payload.size()));
  uint32_t crc = crc32(head);
  crc = crc32(payload.data(), payload.size(), crc);
  out += head;
  out += payload;
  putU32(out, crc);
}

/// Bounds-checked little-endian cursor over the snapshot bytes.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : p_(bytes.data()), n_(bytes.size()) {}

  size_t remaining() const { return n_ - off_; }
  size_t offset() const { return off_; }

  bool bytes(size_t len, std::string_view& out) {
    if (remaining() < len) return false;
    out = std::string_view(p_ + off_, len);
    off_ += len;
    return true;
  }
  bool u8(uint8_t& out) {
    if (remaining() < 1) return false;
    out = static_cast<uint8_t>(p_[off_++]);
    return true;
  }
  bool u16(uint16_t& out) {
    std::string_view b;
    if (!bytes(2, b)) return false;
    out = static_cast<uint16_t>(
        static_cast<uint8_t>(b[0]) | (static_cast<uint8_t>(b[1]) << 8));
    return true;
  }
  bool u32(uint32_t& out) {
    std::string_view b;
    if (!bytes(4, b)) return false;
    out = 0;
    for (int i = 3; i >= 0; --i)
      out = (out << 8) | static_cast<uint8_t>(b[static_cast<size_t>(i)]);
    return true;
  }
  bool u64(uint64_t& out) {
    std::string_view b;
    if (!bytes(8, b)) return false;
    out = 0;
    for (int i = 7; i >= 0; --i)
      out = (out << 8) | static_cast<uint8_t>(b[static_cast<size_t>(i)]);
    return true;
  }

 private:
  const char* p_;
  size_t n_;
  size_t off_ = 0;
};

bool failDecode(StoreData& out, std::string& err, const std::string& msg) {
  out.clear();
  err = msg;
  return false;
}

}  // namespace

std::string encodeSnapshot(const StoreData& data) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  putU32(out, kFormatVersion);
  for (const auto& [key, value] : data.feasibility) {
    std::string payload;
    payload += static_cast<char>(value);
    payload += key;
    appendRecord(out, kFeasibilityRecord, payload);
  }
  for (const auto& [key, sig] : data.proc_plans) {
    std::string payload;
    putU64(payload, key.first);
    putU16(payload, static_cast<uint16_t>(key.second.size()));
    payload += key.second;
    payload += sig;
    appendRecord(out, kProcPlanRecord, payload);
  }
  for (const auto& [key, body] : data.responses) {
    std::string payload;
    putU64(payload, key.first);
    payload += static_cast<char>(key.second.size());
    payload += key.second;
    payload += body;
    appendRecord(out, kResponseRecord, payload);
  }
  for (const auto& [key, body] : data.deep_procs) {
    std::string payload;
    putU64(payload, key.first);
    payload += static_cast<char>(key.second);
    payload += body;
    appendRecord(out, kDeepProcRecord, payload);
  }
  appendRecord(out, kEndRecord, "");
  return out;
}

bool decodeSnapshot(std::string_view bytes, StoreData& out, std::string& err) {
  out.clear();
  err.clear();
  Cursor cur(bytes);
  std::string_view magic;
  if (!cur.bytes(sizeof(kMagic), magic) ||
      std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0)
    return failDecode(out, err, "bad magic");
  uint32_t version = 0;
  if (!cur.u32(version)) return failDecode(out, err, "truncated header");
  if (version != kFormatVersion)
    return failDecode(out, err,
                      "unsupported format version " + std::to_string(version) +
                          " (this build reads " +
                          std::to_string(kFormatVersion) + ")");

  bool saw_end = false;
  while (!saw_end) {
    size_t rec_off = cur.offset();
    uint8_t type = 0;
    uint32_t len = 0;
    if (!cur.u8(type) || !cur.u32(len))
      return failDecode(out, err,
                        "truncated record header at offset " +
                            std::to_string(rec_off));
    if (len > cur.remaining())
      return failDecode(out, err,
                        "truncated record payload at offset " +
                            std::to_string(rec_off));
    std::string_view payload;
    cur.bytes(len, payload);
    uint32_t stored_crc = 0;
    if (!cur.u32(stored_crc))
      return failDecode(out, err,
                        "truncated record crc at offset " +
                            std::to_string(rec_off));
    std::string head;
    head += static_cast<char>(type);
    putU32(head, len);
    uint32_t crc = crc32(head);
    crc = crc32(payload.data(), payload.size(), crc);
    if (crc != stored_crc)
      return failDecode(out, err,
                        "crc mismatch at offset " + std::to_string(rec_off));

    Cursor body(payload);
    switch (type) {
      case kFeasibilityRecord: {
        uint8_t value = 0;
        if (!body.u8(value))
          return failDecode(out, err, "short feasibility record");
        if (value > 2)
          return failDecode(out, err, "feasibility value out of range");
        std::string_view key;
        body.bytes(body.remaining(), key);
        if (key.empty())
          return failDecode(out, err, "empty feasibility key");
        if (!out.feasibility.emplace(std::string(key), value).second)
          return failDecode(out, err, "duplicate feasibility key");
        break;
      }
      case kProcPlanRecord: {
        uint64_t hash = 0;
        uint16_t name_len = 0;
        if (!body.u64(hash) || !body.u16(name_len))
          return failDecode(out, err, "short proc-plan record");
        std::string_view name;
        if (!body.bytes(name_len, name) || name.empty())
          return failDecode(out, err, "bad proc-plan name");
        std::string_view sig;
        body.bytes(body.remaining(), sig);
        auto key = std::make_pair(hash, std::string(name));
        if (!out.proc_plans.emplace(std::move(key), std::string(sig)).second)
          return failDecode(out, err, "duplicate proc-plan record");
        break;
      }
      case kResponseRecord: {
        uint64_t hash = 0;
        uint8_t kind_len = 0;
        if (!body.u64(hash) || !body.u8(kind_len))
          return failDecode(out, err, "short response record");
        std::string_view kind;
        if (!body.bytes(kind_len, kind) || kind.empty())
          return failDecode(out, err, "bad response kind");
        std::string_view value;
        body.bytes(body.remaining(), value);
        auto key = std::make_pair(hash, std::string(kind));
        if (!out.responses.emplace(std::move(key), std::string(value)).second)
          return failDecode(out, err, "duplicate response record");
        break;
      }
      case kDeepProcRecord: {
        uint64_t fp = 0;
        uint8_t kind = 0;
        if (!body.u64(fp) || !body.u8(kind))
          return failDecode(out, err, "short deep-proc record");
        std::string_view value;
        body.bytes(body.remaining(), value);
        if (value.empty())
          return failDecode(out, err, "empty deep-proc record");
        auto key = std::make_pair(fp, kind);
        if (!out.deep_procs.emplace(key, std::string(value)).second)
          return failDecode(out, err, "duplicate deep-proc record");
        break;
      }
      case kEndRecord:
        if (len != 0) return failDecode(out, err, "non-empty END record");
        saw_end = true;
        break;
      default:
        return failDecode(out, err,
                          "unknown record type " + std::to_string(type) +
                              " at offset " + std::to_string(rec_off));
    }
  }
  if (cur.remaining() != 0)
    return failDecode(out, err, "trailing bytes after END record");
  return true;
}

}  // namespace padfa::store
