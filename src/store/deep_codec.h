// Deep (de)serialization of finalized procedure analysis state — the
// RegionSummary and LoopPlans of one procedure under one analysis kind —
// so the interprocedural translate-cache itself survives restarts, not
// just rendered responses.
//
// Why "deep": plan-signature bytes embed interner symbol ids,
// program-wide VarDecl uids, and line-number loop_ids, all of which
// shift when an unrelated earlier procedure is edited. These records
// instead reference program entities by *rebindable* coordinates —
// declarations by local_id within the owning procedure, loops by
// pre-order ordinal within the procedure — and are decoded against the
// freshly parsed AST, after which re-rendered signatures match a cold
// run of the edited source byte for byte.
//
// The VarId preamble: Presburger LinExprs are sparse sorted term lists
// over dense VarIds whose *relative creation order* is observable
// (term order, elimination order). Each record opens with the owning
// procedure's id-carrying declarations in ascending cold-run VarId
// order (with their forward-substitution aliases); decode replays
// VarTable::idFor over that list at the replayed procedure's bottom-up
// slot, reproducing the cold run's relative id order exactly.
//
// Fail-soft contract: encodeDeepProc returns false (and encodes
// nothing) whenever the state is not safely rebindable — a degraded
// summary/plan, or a reference to a synthetic variable or a declaration
// not owned by the procedure. The incremental engine then simply keeps
// that procedure in the dirty set. decode* validates every byte; any
// violation returns false with a diagnostic, never a partial result.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dataflow/loop_plan.h"
#include "dataflow/summary.h"
#include "symbolic/vartable.h"

namespace padfa::store {

/// Bumped whenever the deep record layout changes. Independent of the
/// snapshot's kFormatVersion (which covers the record framing).
inline constexpr uint8_t kDeepCodecVersion = 1;

/// Analysis kind half of a deep record's key.
inline constexpr uint8_t kDeepKindBase = 0;
inline constexpr uint8_t kDeepKindPred = 1;

struct DeepEncodeInput {
  const Program* program = nullptr;
  const ProcDecl* proc = nullptr;
  /// The finalized (post-finalizeProcSummary) summary of `proc`.
  const RegionSummary* summary = nullptr;
  /// The analyzer's VarTable view (AnalysisResult::vars).
  const ExportedVarTable* vars = nullptr;
  /// Plans for the procedure's loops in procLoopsInOrder() order.
  std::vector<const LoopPlan*> plans;
};

/// Serialize one procedure's analysis state. Returns false (fail-soft,
/// `err` says why) when the state is not rebindable; `out` is then
/// untouched.
bool encodeDeepProc(const DeepEncodeInput& in, std::string& out,
                    std::string& err);

/// Decode the summary half against a freshly parsed program, creating
/// VarIds (and aliases) in `vt` in cold-run order. `proc` must be the
/// procedure the record was encoded from (same canonical content).
bool decodeDeepProcSummary(const Program& program, const ProcDecl& proc,
                           std::string_view bytes, VarTable& vt,
                           RegionSummary& out, std::string& err);

/// Decode the plan half, rebinding each plan to the procedure's loops by
/// pre-order ordinal. Does not touch any caller VarTable.
bool decodeDeepProcPlans(const Program& program, const ProcDecl& proc,
                         std::string_view bytes, std::vector<LoopPlan>& out,
                         std::string& err);

/// The procedure's loops in deterministic pre-order (the codec's loop
/// ordinal space).
std::vector<const ForStmt*> procLoopsInOrder(const ProcDecl& proc);

}  // namespace padfa::store
