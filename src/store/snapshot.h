// The on-disk snapshot format of the persistent summary store.
//
// Layout (all integers little-endian):
//
//   +0   magic   "PADFASNP"                               8 bytes
//   +8   version u32  (kFormatVersion)                    4 bytes
//   then a sequence of records:
//        type    u8
//        len     u32   payload length
//        payload len bytes
//        crc     u32   crc32 over type+len+payload bytes
//   terminated by an END record (type 0xEE, empty payload) which must
//   be the last bytes of the file.
//
// Record types:
//   0x01 Feasibility  payload = value u8 ++ canonical system key
//   0x02 ProcPlan     payload = src_hash u64 ++ name_len u16 ++ name
//                               ++ plan-signature bytes
//   0x03 Response     payload = src_hash u64 ++ kind_len u8 ++ kind
//                               ++ response bytes
//   0x04 DeepProc     payload = deep_fp u64 ++ kind u8
//                               ++ deep-codec record bytes
//                     (kind = analysis kind, store/deep_codec.h)
//   0xEE End          payload empty
//
// decodeSnapshot() is the trust boundary between disk bytes and the
// serving path: it validates the magic, rejects any version other than
// kFormatVersion (a FUTURE version is corruption from this build's point
// of view — the layout is unknown), checks every record's CRC, and
// refuses truncated records, duplicate keys, missing END, and trailing
// bytes after END. Any violation fails the whole load — the store layer
// then quarantines the file and starts cold. A corrupt snapshot can
// cost time (re-analysis), never correctness (a wrong plan).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace padfa::store {

inline constexpr char kMagic[8] = {'P', 'A', 'D', 'F', 'A', 'S', 'N', 'P'};
/// v2 added the DeepProc record (incremental re-analysis). A v1 snapshot
/// is quarantined on load — an acceptable one-time cold start.
inline constexpr uint32_t kFormatVersion = 2;

enum RecordType : uint8_t {
  kFeasibilityRecord = 0x01,
  kProcPlanRecord = 0x02,
  kResponseRecord = 0x03,
  kDeepProcRecord = 0x04,
  kEndRecord = 0xEE,
};

/// The store's in-memory contents. Maps keep encode order deterministic:
/// encode(decode(bytes)) == bytes for any snapshot this build wrote.
struct StoreData {
  /// Canonical Presburger system key -> pb::Feasibility (as raw u8).
  std::map<std::string, uint8_t> feasibility;
  /// (source content hash, procedure name) -> per-procedure plan
  /// signature (see driver/plan_signature.h).
  std::map<std::pair<uint64_t, std::string>, std::string> proc_plans;
  /// (source content hash, kind) -> stored response payload. Kinds in
  /// use: "report" (rendered table), "emit" (transformed source),
  /// "procs" (newline-joined procedure names in program order),
  /// "telemetry" (signature trailer).
  std::map<std::pair<uint64_t, std::string>, std::string> responses;
  /// (deep content fingerprint, analysis kind) -> deep-codec record bytes
  /// (one procedure's serialized RegionSummary + LoopPlans; see
  /// store/deep_codec.h). Keyed by the *deep* fingerprint — the hash of
  /// the procedure's canonical text plus its full callee closure — so a
  /// record can never be replayed against a program where any transitive
  /// callee changed.
  std::map<std::pair<uint64_t, uint8_t>, std::string> deep_procs;

  bool empty() const {
    return feasibility.empty() && proc_plans.empty() && responses.empty() &&
           deep_procs.empty();
  }
  size_t recordCount() const {
    return feasibility.size() + proc_plans.size() + responses.size() +
           deep_procs.size();
  }
  void clear() {
    feasibility.clear();
    proc_plans.clear();
    responses.clear();
    deep_procs.clear();
  }
};

/// Serialize `data` to snapshot bytes (header + records + END).
std::string encodeSnapshot(const StoreData& data);

/// Parse snapshot bytes. On success fills `out` and returns true; on any
/// structural violation clears `out`, fills `err`, and returns false.
/// Never throws, never reads out of bounds, never accepts a record whose
/// CRC does not match.
bool decodeSnapshot(std::string_view bytes, StoreData& out, std::string& err);

}  // namespace padfa::store
