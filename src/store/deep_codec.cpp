#include "store/deep_codec.h"

#include <cstring>
#include <set>

namespace padfa::store {

namespace {

constexpr size_t kMaxDepth = 256;  // crafted-bytes recursion backstop

// ------------------------------------------------------------- writer --

void putU8(std::string& out, uint8_t v) { out += static_cast<char>(v); }

void putU16(std::string& out, uint16_t v) {
  out += static_cast<char>(v & 0xFF);
  out += static_cast<char>((v >> 8) & 0xFF);
}

void putU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void putU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void putI64(std::string& out, int64_t v) {
  putU64(out, static_cast<uint64_t>(v));
}

void putStr32(std::string& out, std::string_view s) {
  putU32(out, static_cast<uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

// ------------------------------------------------------------- cursor --

class Cursor {
 public:
  explicit Cursor(std::string_view bytes)
      : p_(bytes.data()), n_(bytes.size()) {}

  size_t remaining() const { return n_ - off_; }

  bool bytes(size_t len, std::string_view& out) {
    if (remaining() < len) return false;
    out = std::string_view(p_ + off_, len);
    off_ += len;
    return true;
  }
  bool u8(uint8_t& out) {
    if (remaining() < 1) return false;
    out = static_cast<uint8_t>(p_[off_++]);
    return true;
  }
  bool u16(uint16_t& out) {
    std::string_view b;
    if (!bytes(2, b)) return false;
    out = static_cast<uint16_t>(static_cast<uint8_t>(b[0]) |
                                (static_cast<uint8_t>(b[1]) << 8));
    return true;
  }
  bool u32(uint32_t& out) {
    std::string_view b;
    if (!bytes(4, b)) return false;
    out = 0;
    for (int i = 3; i >= 0; --i)
      out = (out << 8) | static_cast<uint8_t>(b[static_cast<size_t>(i)]);
    return true;
  }
  bool u64(uint64_t& out) {
    std::string_view b;
    if (!bytes(8, b)) return false;
    out = 0;
    for (int i = 7; i >= 0; --i)
      out = (out << 8) | static_cast<uint8_t>(b[static_cast<size_t>(i)]);
    return true;
  }
  bool i64(int64_t& out) {
    uint64_t u = 0;
    if (!u64(u)) return false;
    out = static_cast<int64_t>(u);
    return true;
  }
  bool str32(std::string& out) {
    uint32_t len = 0;
    std::string_view b;
    if (!u32(len) || !bytes(len, b)) return false;
    out.assign(b.data(), b.size());
    return true;
  }

 private:
  const char* p_;
  size_t n_;
  size_t off_ = 0;
};

// ------------------------------------------------------------ encoder --

class Encoder {
 public:
  explicit Encoder(const DeepEncodeInput& in) : in_(in) {
    for (VarDecl* d : in.proc->all_vars) owned_[d] = d;
  }

  bool run(std::string& out, std::string& err) {
    if (!in_.program || !in_.proc || !in_.summary || !in_.vars)
      return fail("incomplete encode input");
    if (in_.summary->degraded) return fail("degraded summary");
    std::string name(in_.program->interner.str(in_.proc->name));

    putU8(buf_, kDeepCodecVersion);
    putU16(buf_, static_cast<uint16_t>(name.size()));
    buf_ += name;
    if (!encodePreamble()) {
      err = err_;
      return false;
    }
    putU8(buf_, in_.summary->has_sink ? 1 : 0);
    if (!encodeSummary() || !encodePlans()) {
      err = err_;
      return false;
    }
    out = std::move(buf_);
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    if (err_.empty()) err_ = msg;
    return false;
  }

  const VarDecl* ownedDecl(const VarDecl* d) {
    if (!d) return nullptr;
    auto it = owned_.find(d);
    return it == owned_.end() ? nullptr : it->second;
  }

  bool encodeVar(pb::VarId v) {
    if (v < VarTable::kMaxRank) {
      putU8(buf_, 0);
      putU8(buf_, static_cast<uint8_t>(v));
      return true;
    }
    const VarDecl* d =
        v < in_.vars->decls.size() ? in_.vars->decls[v] : nullptr;
    if (!d) return fail("reference to synthetic variable");
    if (!ownedDecl(d)) return fail("reference to foreign declaration");
    putU8(buf_, 1);
    putU32(buf_, d->local_id);
    return true;
  }

  bool encodeLinExpr(const pb::LinExpr& e) {
    putI64(buf_, e.constant());
    putU32(buf_, static_cast<uint32_t>(e.terms().size()));
    for (const auto& [v, coeff] : e.terms()) {
      if (!encodeVar(v)) return false;
      putI64(buf_, coeff);
    }
    return true;
  }

  bool encodeSystem(const pb::System& s) {
    putU32(buf_, static_cast<uint32_t>(s.constraints().size()));
    for (const auto& c : s.constraints()) {
      putU8(buf_, static_cast<uint8_t>(c.kind));
      if (!encodeLinExpr(c.expr)) return false;
    }
    return true;
  }

  bool encodeSet(const pb::Set& s) {
    putU8(buf_, s.exact() ? 1 : 0);
    putU32(buf_, static_cast<uint32_t>(s.pieces().size()));
    for (const auto& piece : s.pieces())
      if (!encodeSystem(piece)) return false;
    return true;
  }

  bool encodeExpr(const Expr& e) {
    putU8(buf_, static_cast<uint8_t>(e.kind));
    putU8(buf_, static_cast<uint8_t>(e.type));
    switch (e.kind) {
      case ExprKind::IntLit:
        putI64(buf_, static_cast<const IntLitExpr&>(e).value);
        return true;
      case ExprKind::RealLit: {
        uint64_t bits = 0;
        double d = static_cast<const RealLitExpr&>(e).value;
        std::memcpy(&bits, &d, sizeof bits);
        putU64(buf_, bits);
        return true;
      }
      case ExprKind::VarRef: {
        const VarDecl* d = ownedDecl(static_cast<const VarRefExpr&>(e).decl);
        if (!d) return fail("expr references foreign declaration");
        putU32(buf_, d->local_id);
        return true;
      }
      case ExprKind::ArrayRef: {
        const auto& r = static_cast<const ArrayRefExpr&>(e);
        const VarDecl* d = ownedDecl(r.decl);
        if (!d) return fail("expr references foreign declaration");
        putU32(buf_, d->local_id);
        putU8(buf_, static_cast<uint8_t>(r.indices.size()));
        for (const auto& idx : r.indices)
          if (!encodeExpr(*idx)) return false;
        return true;
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        putU8(buf_, static_cast<uint8_t>(u.op));
        return encodeExpr(*u.operand);
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        putU8(buf_, static_cast<uint8_t>(b.op));
        return encodeExpr(*b.lhs) && encodeExpr(*b.rhs);
      }
      case ExprKind::Intrinsic: {
        const auto& c = static_cast<const IntrinsicExpr&>(e);
        putU8(buf_, static_cast<uint8_t>(c.fn));
        putU8(buf_, static_cast<uint8_t>(c.args.size()));
        for (const auto& a : c.args)
          if (!encodeExpr(*a)) return false;
        return true;
      }
    }
    return fail("unknown expr kind");
  }

  bool encodePred(const Pred& p) {
    const PredNode& n = p.node();
    putU8(buf_, static_cast<uint8_t>(n.kind));
    switch (n.kind) {
      case PredKind::True:
      case PredKind::False:
        return true;
      case PredKind::Atom:
        putU8(buf_, static_cast<uint8_t>(n.op));
        putU8(buf_, n.negated ? 1 : 0);
        return encodeExpr(*n.lhs) && encodeExpr(*n.rhs);
      case PredKind::And:
      case PredKind::Or:
        putU32(buf_, static_cast<uint32_t>(n.children.size()));
        for (const Pred& c : n.children)
          if (!encodePred(c)) return false;
        return true;
    }
    return fail("unknown pred kind");
  }

  bool encodeGuardedList(const GuardedList& list) {
    putU32(buf_, static_cast<uint32_t>(list.size()));
    for (const auto& g : list) {
      if (!encodePred(g.guard)) return false;
      if (!encodeSet(g.section)) return false;
    }
    return true;
  }

  /// The owning procedure's id-carrying declarations in ascending
  /// cold-run VarId order, each with its forward-substitution alias.
  bool encodePreamble() {
    std::vector<std::pair<pb::VarId, const VarDecl*>> entries;
    for (pb::VarId v = VarTable::kMaxRank; v < in_.vars->decls.size(); ++v) {
      const VarDecl* d = in_.vars->decls[v];
      if (d && ownedDecl(d)) entries.emplace_back(v, d);
    }
    putU32(buf_, static_cast<uint32_t>(entries.size()));
    for (const auto& [v, d] : entries) {
      putU32(buf_, d->local_id);
      auto a = in_.vars->aliases.find(v);
      putU8(buf_, a != in_.vars->aliases.end() ? 1 : 0);
      if (a != in_.vars->aliases.end() && !encodeLinExpr(a->second))
        return false;
    }
    return true;
  }

  bool encodeSummary() {
    putU32(buf_, static_cast<uint32_t>(in_.summary->arrays.size()));
    for (const auto& [decl, as] : in_.summary->arrays) {
      const VarDecl* d = ownedDecl(decl);
      if (!d) return fail("summary array is a foreign declaration");
      putU32(buf_, d->local_id);
      if (!encodeGuardedList(as.reads) || !encodeGuardedList(as.writes) ||
          !encodeGuardedList(as.must_writes) ||
          !encodeGuardedList(as.exposed))
        return false;
      putU8(buf_, as.approximate ? 1 : 0);
    }
    // finalizeProcSummary() cleared scalar effects; a non-empty map means
    // this is not a finalized summary and must not be persisted.
    if (!in_.summary->scalars.empty())
      return fail("summary has unfinalized scalar effects");
    return true;
  }

  bool encodePlans() {
    putU32(buf_, static_cast<uint32_t>(in_.plans.size()));
    for (const LoopPlan* p : in_.plans) {
      if (!p) return fail("loop without a plan");
      if (p->degraded) return fail("degraded plan");
      putU8(buf_, static_cast<uint8_t>(p->status));
      if (!encodePred(p->runtime_test)) return false;
      putU32(buf_, static_cast<uint32_t>(p->privatized.size()));
      for (const auto& pa : p->privatized) {
        const VarDecl* d = ownedDecl(pa.array);
        if (!d) return fail("privatized array is a foreign declaration");
        putU32(buf_, d->local_id);
        putU8(buf_, static_cast<uint8_t>((pa.copy_in ? 1 : 0) |
                                         (pa.copy_out ? 2 : 0)));
      }
      for (const auto* decls : {&p->private_scalars, &p->copy_out_scalars}) {
        putU32(buf_, static_cast<uint32_t>(decls->size()));
        for (const VarDecl* s : *decls) {
          const VarDecl* d = ownedDecl(s);
          if (!d) return fail("plan scalar is a foreign declaration");
          putU32(buf_, d->local_id);
        }
      }
      putU32(buf_, static_cast<uint32_t>(p->reductions.size()));
      for (const auto& r : p->reductions) {
        const VarDecl* d = ownedDecl(r.scalar);
        if (!d) return fail("reduction scalar is a foreign declaration");
        putU32(buf_, d->local_id);
        putU8(buf_, static_cast<uint8_t>(r.op));
      }
      putStr32(buf_, p->reason);
      putU8(buf_, static_cast<uint8_t>((p->used_predicates ? 1 : 0) |
                                       (p->used_embedding ? 2 : 0) |
                                       (p->used_extraction ? 4 : 0) |
                                       (p->used_reshape ? 8 : 0) |
                                       (p->priv_used ? 16 : 0)));
    }
    return true;
  }

  const DeepEncodeInput& in_;
  std::map<const VarDecl*, const VarDecl*> owned_;
  std::string buf_;
  std::string err_;
};

// ------------------------------------------------------------ decoder --

class Decoder {
 public:
  Decoder(const Program& program, const ProcDecl& proc,
          std::string_view bytes, VarTable& vt)
      : program_(program), proc_(proc), cur_(bytes), vt_(vt) {
    for (VarDecl* d : proc.all_vars) by_local_[d->local_id] = d;
  }

  bool run(RegionSummary& summary, std::vector<LoopPlan>& plans,
           std::string& err) {
    bool ok = parse(summary, plans);
    if (!ok) {
      err = err_.empty() ? "malformed deep record" : err_;
      summary = RegionSummary();
      plans.clear();
    }
    return ok;
  }

 private:
  bool fail(const std::string& msg) {
    if (err_.empty()) err_ = msg;
    return false;
  }

  VarDecl* declFor(uint32_t local_id) {
    auto it = by_local_.find(local_id);
    return it == by_local_.end() ? nullptr : it->second;
  }

  bool parse(RegionSummary& summary, std::vector<LoopPlan>& plans) {
    uint8_t version = 0;
    if (!cur_.u8(version)) return fail("truncated record");
    if (version != kDeepCodecVersion)
      return fail("deep codec version mismatch");
    uint16_t name_len = 0;
    std::string_view name;
    if (!cur_.u16(name_len) || !cur_.bytes(name_len, name))
      return fail("truncated procedure name");
    if (name != program_.interner.str(proc_.name))
      return fail("record bound to a different procedure");
    if (!parsePreamble()) return false;
    uint8_t has_sink = 0;
    if (!cur_.u8(has_sink) || has_sink > 1) return fail("bad has_sink");
    summary.has_sink = has_sink != 0;
    if (!parseSummary(summary)) return false;
    if (!parsePlans(plans)) return false;
    if (cur_.remaining() != 0) return fail("trailing bytes in deep record");
    return true;
  }

  /// Recreate the procedure's VarIds (and aliases) in cold-run order.
  bool parsePreamble() {
    uint32_t n = 0;
    if (!cur_.u32(n)) return fail("truncated preamble");
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t local_id = 0;
      uint8_t has_alias = 0;
      if (!cur_.u32(local_id) || !cur_.u8(has_alias) || has_alias > 1)
        return fail("bad preamble entry");
      VarDecl* d = declFor(local_id);
      if (!d || d->isArray()) return fail("preamble names a non-scalar");
      pb::VarId v = vt_.idFor(d);
      preamble_.insert(d);
      if (has_alias) {
        pb::LinExpr repl;
        if (!parseLinExpr(repl)) return false;
        vt_.setAlias(v, std::move(repl));
      }
    }
    return true;
  }

  bool parseVar(pb::VarId& out) {
    uint8_t tag = 0;
    if (!cur_.u8(tag)) return fail("truncated var tag");
    if (tag == 0) {
      uint8_t k = 0;
      if (!cur_.u8(k) || k >= VarTable::kMaxRank) return fail("bad dim var");
      out = vt_.dim(k);
      return true;
    }
    if (tag != 1) return fail("bad var tag");
    uint32_t local_id = 0;
    if (!cur_.u32(local_id)) return fail("truncated var ref");
    VarDecl* d = declFor(local_id);
    // Every id-carrying decl must have been declared by the preamble:
    // creating one here would disturb cold-run id order.
    if (!d || !preamble_.count(d)) return fail("var ref outside preamble");
    out = vt_.idFor(d);
    return true;
  }

  bool parseLinExpr(pb::LinExpr& out) {
    int64_t constant = 0;
    uint32_t n = 0;
    if (!cur_.i64(constant) || !cur_.u32(n)) return fail("truncated linexpr");
    out = pb::LinExpr(constant);
    for (uint32_t i = 0; i < n; ++i) {
      pb::VarId v = 0;
      int64_t coeff = 0;
      if (!parseVar(v) || !cur_.i64(coeff)) return false;
      out.addTerm(v, coeff);
    }
    return true;
  }

  bool parseSystem(pb::System& out) {
    uint32_t n = 0;
    if (!cur_.u32(n)) return fail("truncated system");
    for (uint32_t i = 0; i < n; ++i) {
      uint8_t kind = 0;
      if (!cur_.u8(kind) || kind > 1) return fail("bad constraint kind");
      pb::LinExpr e;
      if (!parseLinExpr(e)) return false;
      out.add({std::move(e), static_cast<pb::CmpKind>(kind)});
    }
    return true;
  }

  bool parseSet(pb::Set& out) {
    uint8_t exact = 0;
    uint32_t n = 0;
    if (!cur_.u8(exact) || exact > 1 || !cur_.u32(n))
      return fail("truncated set");
    if (n > pb::Set::kMaxPieces) return fail("set piece count over cap");
    out = pb::Set();
    for (uint32_t i = 0; i < n; ++i) {
      pb::System piece;
      if (!parseSystem(piece)) return false;
      out.unionWith(pb::Set(std::move(piece)));
    }
    if (!exact) out.markInexact();
    return true;
  }

  bool parseExpr(ExprPtr& out, size_t depth) {
    if (depth > kMaxDepth) return fail("expr nesting over limit");
    uint8_t kind = 0, type = 0;
    if (!cur_.u8(kind) || !cur_.u8(type)) return fail("truncated expr");
    if (kind > static_cast<uint8_t>(ExprKind::Intrinsic) || type > 1)
      return fail("bad expr header");
    Type ty = static_cast<Type>(type);
    switch (static_cast<ExprKind>(kind)) {
      case ExprKind::IntLit: {
        int64_t v = 0;
        if (!cur_.i64(v)) return fail("truncated int literal");
        out = std::make_unique<IntLitExpr>(v);
        break;
      }
      case ExprKind::RealLit: {
        uint64_t bits = 0;
        if (!cur_.u64(bits)) return fail("truncated real literal");
        double d = 0;
        std::memcpy(&d, &bits, sizeof d);
        out = std::make_unique<RealLitExpr>(d);
        break;
      }
      case ExprKind::VarRef: {
        uint32_t local_id = 0;
        if (!cur_.u32(local_id)) return fail("truncated var ref expr");
        VarDecl* d = declFor(local_id);
        if (!d) return fail("var ref to unknown declaration");
        auto e = std::make_unique<VarRefExpr>(d->name);
        e->decl = d;
        out = std::move(e);
        break;
      }
      case ExprKind::ArrayRef: {
        uint32_t local_id = 0;
        uint8_t nidx = 0;
        if (!cur_.u32(local_id) || !cur_.u8(nidx))
          return fail("truncated array ref expr");
        VarDecl* d = declFor(local_id);
        if (!d || !d->isArray() || nidx != d->rank())
          return fail("array ref shape mismatch");
        auto e = std::make_unique<ArrayRefExpr>(d->name);
        e->decl = d;
        for (uint8_t i = 0; i < nidx; ++i) {
          ExprPtr idx;
          if (!parseExpr(idx, depth + 1)) return false;
          e->indices.push_back(std::move(idx));
        }
        out = std::move(e);
        break;
      }
      case ExprKind::Unary: {
        uint8_t op = 0;
        if (!cur_.u8(op) || op > static_cast<uint8_t>(UnOp::Not))
          return fail("bad unary op");
        ExprPtr operand;
        if (!parseExpr(operand, depth + 1)) return false;
        out = std::make_unique<UnaryExpr>(static_cast<UnOp>(op),
                                          std::move(operand));
        break;
      }
      case ExprKind::Binary: {
        uint8_t op = 0;
        if (!cur_.u8(op) || op > static_cast<uint8_t>(BinOp::Or))
          return fail("bad binary op");
        ExprPtr lhs, rhs;
        if (!parseExpr(lhs, depth + 1) || !parseExpr(rhs, depth + 1))
          return false;
        out = std::make_unique<BinaryExpr>(static_cast<BinOp>(op),
                                           std::move(lhs), std::move(rhs));
        break;
      }
      case ExprKind::Intrinsic: {
        uint8_t fn = 0, nargs = 0;
        if (!cur_.u8(fn) || fn > static_cast<uint8_t>(Intrinsic::INoise) ||
            !cur_.u8(nargs))
          return fail("bad intrinsic");
        auto e = std::make_unique<IntrinsicExpr>(static_cast<Intrinsic>(fn));
        for (uint8_t i = 0; i < nargs; ++i) {
          ExprPtr a;
          if (!parseExpr(a, depth + 1)) return false;
          e->args.push_back(std::move(a));
        }
        out = std::move(e);
        break;
      }
    }
    out->type = ty;
    return true;
  }

  bool parsePred(Pred& out, size_t depth) {
    if (depth > kMaxDepth) return fail("pred nesting over limit");
    uint8_t kind = 0;
    if (!cur_.u8(kind) || kind > static_cast<uint8_t>(PredKind::Or))
      return fail("bad pred kind");
    switch (static_cast<PredKind>(kind)) {
      case PredKind::True:
        out = Pred::always();
        return true;
      case PredKind::False:
        out = Pred::never();
        return true;
      case PredKind::Atom: {
        uint8_t op = 0, negated = 0;
        if (!cur_.u8(op) || op > static_cast<uint8_t>(AtomOp::Eq) ||
            !cur_.u8(negated) || negated > 1)
          return fail("bad atom header");
        ExprPtr lhs, rhs;
        if (!parseExpr(lhs, depth + 1) || !parseExpr(rhs, depth + 1))
          return false;
        out = Pred::atom(static_cast<AtomOp>(op), *lhs, *rhs, negated != 0,
                         program_.interner);
        return true;
      }
      case PredKind::And:
      case PredKind::Or: {
        uint32_t n = 0;
        if (!cur_.u32(n)) return fail("truncated pred combo");
        bool is_and = static_cast<PredKind>(kind) == PredKind::And;
        // Folding through &&/|| re-runs makeCombo's canonicalization
        // (flatten, sort by key, dedupe) against the new program, which
        // is exactly what a cold run of the same source would produce.
        Pred acc = is_and ? Pred::always() : Pred::never();
        for (uint32_t i = 0; i < n; ++i) {
          Pred c;
          if (!parsePred(c, depth + 1)) return false;
          acc = is_and ? (acc && c) : (acc || c);
        }
        out = std::move(acc);
        return true;
      }
    }
    return fail("bad pred kind");
  }

  bool parseGuardedList(GuardedList& out) {
    uint32_t n = 0;
    if (!cur_.u32(n)) return fail("truncated guarded list");
    for (uint32_t i = 0; i < n; ++i) {
      GuardedSection g;
      if (!parsePred(g.guard, 0) || !parseSet(g.section)) return false;
      out.push_back(std::move(g));
    }
    return true;
  }

  bool parseSummary(RegionSummary& summary) {
    uint32_t n = 0;
    if (!cur_.u32(n)) return fail("truncated summary");
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t local_id = 0;
      if (!cur_.u32(local_id)) return fail("truncated array entry");
      VarDecl* d = declFor(local_id);
      if (!d || !d->isArray()) return fail("summary array is not an array");
      if (summary.arrays.count(d)) return fail("duplicate summary array");
      ArraySummary& as = summary.arrayFor(d);
      uint8_t approx = 0;
      if (!parseGuardedList(as.reads) || !parseGuardedList(as.writes) ||
          !parseGuardedList(as.must_writes) ||
          !parseGuardedList(as.exposed) || !cur_.u8(approx) || approx > 1)
        return false;
      as.approximate = approx != 0;
    }
    return true;
  }

  bool parsePlans(std::vector<LoopPlan>& plans) {
    std::vector<const ForStmt*> loops = procLoopsInOrder(proc_);
    uint32_t n = 0;
    if (!cur_.u32(n)) return fail("truncated plans");
    if (n != loops.size()) return fail("plan count / loop count mismatch");
    for (uint32_t i = 0; i < n; ++i) {
      LoopPlan p;
      p.loop = loops[i];
      p.proc = &proc_;
      uint8_t status = 0;
      if (!cur_.u8(status) ||
          status > static_cast<uint8_t>(LoopStatus::NotCandidate))
        return fail("bad plan status");
      p.status = static_cast<LoopStatus>(status);
      if (!parsePred(p.runtime_test, 0)) return false;
      uint32_t npriv = 0;
      if (!cur_.u32(npriv)) return fail("truncated privatized list");
      for (uint32_t j = 0; j < npriv; ++j) {
        uint32_t local_id = 0;
        uint8_t flags = 0;
        if (!cur_.u32(local_id) || !cur_.u8(flags) || flags > 3)
          return fail("bad privatized entry");
        VarDecl* d = declFor(local_id);
        if (!d || !d->isArray()) return fail("privatized non-array");
        p.privatized.push_back({d, (flags & 1) != 0, (flags & 2) != 0});
      }
      for (auto* decls : {&p.private_scalars, &p.copy_out_scalars}) {
        uint32_t m = 0;
        if (!cur_.u32(m)) return fail("truncated plan scalar list");
        for (uint32_t j = 0; j < m; ++j) {
          uint32_t local_id = 0;
          if (!cur_.u32(local_id)) return fail("truncated plan scalar");
          VarDecl* d = declFor(local_id);
          if (!d || d->isArray()) return fail("plan scalar is not scalar");
          decls->push_back(d);
        }
      }
      uint32_t nred = 0;
      if (!cur_.u32(nred)) return fail("truncated reductions");
      for (uint32_t j = 0; j < nred; ++j) {
        uint32_t local_id = 0;
        uint8_t op = 0;
        if (!cur_.u32(local_id) || !cur_.u8(op) ||
            op > static_cast<uint8_t>(ReductionOp::Max))
          return fail("bad reduction entry");
        VarDecl* d = declFor(local_id);
        if (!d || d->isArray()) return fail("reduction on non-scalar");
        p.reductions.push_back({d, static_cast<ReductionOp>(op)});
      }
      uint8_t flags = 0;
      if (!cur_.str32(p.reason) || !cur_.u8(flags) || flags > 31)
        return fail("bad plan trailer");
      p.used_predicates = (flags & 1) != 0;
      p.used_embedding = (flags & 2) != 0;
      p.used_extraction = (flags & 4) != 0;
      p.used_reshape = (flags & 8) != 0;
      p.priv_used = (flags & 16) != 0;
      plans.push_back(std::move(p));
    }
    return true;
  }

  const Program& program_;
  const ProcDecl& proc_;
  Cursor cur_;
  VarTable& vt_;
  std::map<uint32_t, VarDecl*> by_local_;
  std::set<const VarDecl*> preamble_;
  std::string err_;
};

void collectLoops(const BlockStmt& block, std::vector<const ForStmt*>& out) {
  for (const auto& st : block.stmts) {
    switch (st->kind) {
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(*st);
        out.push_back(&f);
        collectLoops(*f.body, out);
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*st);
        collectLoops(*i.then_block, out);
        if (i.else_block) collectLoops(*i.else_block, out);
        break;
      }
      case StmtKind::Block:
        collectLoops(static_cast<const BlockStmt&>(*st), out);
        break;
      default:
        break;
    }
  }
}

}  // namespace

std::vector<const ForStmt*> procLoopsInOrder(const ProcDecl& proc) {
  std::vector<const ForStmt*> out;
  collectLoops(*proc.body, out);
  return out;
}

bool encodeDeepProc(const DeepEncodeInput& in, std::string& out,
                    std::string& err) {
  Encoder enc(in);
  return enc.run(out, err);
}

bool decodeDeepProcSummary(const Program& program, const ProcDecl& proc,
                           std::string_view bytes, VarTable& vt,
                           RegionSummary& out, std::string& err) {
  Decoder dec(program, proc, bytes, vt);
  std::vector<LoopPlan> plans;
  return dec.run(out, plans, err);
}

bool decodeDeepProcPlans(const Program& program, const ProcDecl& proc,
                         std::string_view bytes, std::vector<LoopPlan>& out,
                         std::string& err) {
  VarTable scratch(&program.interner);
  Decoder dec(program, proc, bytes, scratch);
  RegionSummary summary;
  return dec.run(summary, out, err);
}

}  // namespace padfa::store
