#include "store/summary_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "presburger/feasibility_cache.h"

namespace padfa::store {

namespace {

constexpr const char* kSnapshotName = "summary.snap";

bool readWholeFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return false;
  out = ss.str();
  return true;
}

}  // namespace

SummaryStore::SummaryStore(std::string dir) : dir_(std::move(dir)) {}

std::string SummaryStore::defaultDir() {
  const char* v = std::getenv("PADFA_STORE_DIR");
  return v ? std::string(v) : std::string();
}

std::string SummaryStore::snapshotPath() const {
  return dir_.empty() ? std::string() : dir_ + "/" + kSnapshotName;
}

std::string SummaryStore::quarantineTarget() const {
  // First free numbered slot; bounded so a pathological directory cannot
  // loop forever (slot 9999 is then overwritten — quarantine is a
  // best-effort post-mortem aid, not an archive).
  for (int k = 1; k < 10000; ++k) {
    std::string cand =
        snapshotPath() + ".quarantine-" + std::to_string(k);
    struct stat st;
    if (::stat(cand.c_str(), &st) != 0) return cand;
  }
  return snapshotPath() + ".quarantine-9999";
}

bool SummaryStore::open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) return false;
  ::mkdir(dir_.c_str(), 0777);  // EEXIST is fine; real failures surface below
  stats_.load_attempted = true;
  std::string path = snapshotPath();
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return false;  // cold start, no file
  std::string bytes;
  std::string err;
  if (!readWholeFile(path, bytes)) {
    err = "unreadable snapshot: " + std::string(std::strerror(errno));
  } else if (decodeSnapshot(bytes, data_, err)) {
    stats_.loaded = true;
    stats_.loaded_feasibility = data_.feasibility.size();
    stats_.loaded_plans = data_.proc_plans.size();
    stats_.loaded_responses = data_.responses.size();
    stats_.loaded_deep = data_.deep_procs.size();
    return true;
  }
  // Quarantine: move the corrupt snapshot aside so the next save starts
  // from a clean name and the bad bytes stay available for post-mortem.
  std::string target = quarantineTarget();
  if (::rename(path.c_str(), target.c_str()) != 0) {
    // Can't even rename (e.g. read-only dir): unlink as a fallback; if
    // that also fails the next save's rename will still replace it.
    ::unlink(path.c_str());
    target = "<unlinked>";
  }
  ++stats_.quarantined;
  stats_.load_error = err;
  data_.clear();
  std::fprintf(stderr,
               "padfa-store: quarantined corrupt snapshot %s -> %s (%s); "
               "starting cold\n",
               path.c_str(), target.c_str(), err.c_str());
  return false;
}

void SummaryStore::installFeasibility() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto& cache = pb::FeasibilityCache::global();
  for (const auto& [key, value] : data_.feasibility)
    cache.insert(key, static_cast<pb::Feasibility>(value));
}

void SummaryStore::captureFeasibility() {
  auto entries = pb::FeasibilityCache::global().snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, value] : entries)
    data_.feasibility[key] = static_cast<uint8_t>(value);
}

void SummaryStore::putResponse(uint64_t src_hash, const std::string& kind,
                               std::string body) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.responses[{src_hash, kind}] = std::move(body);
}

std::optional<std::string> SummaryStore::getResponse(
    uint64_t src_hash, const std::string& kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.responses.find({src_hash, kind});
  if (it == data_.responses.end()) return std::nullopt;
  return it->second;
}

void SummaryStore::putProcPlan(uint64_t src_hash, const std::string& proc,
                               std::string signature) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.proc_plans[{src_hash, proc}] = std::move(signature);
}

std::optional<std::string> SummaryStore::getProcPlan(
    uint64_t src_hash, const std::string& proc) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.proc_plans.find({src_hash, proc});
  if (it == data_.proc_plans.end()) return std::nullopt;
  return it->second;
}

void SummaryStore::putDeepProc(uint64_t deep_fp, uint8_t kind,
                               std::string bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.deep_procs[{deep_fp, kind}] = std::move(bytes);
}

std::optional<std::string> SummaryStore::getDeepProc(uint64_t deep_fp,
                                                     uint8_t kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.deep_procs.find({deep_fp, kind});
  if (it == data_.deep_procs.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> SummaryStore::assembleSignature(
    uint64_t src_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto procs_it = data_.responses.find({src_hash, "procs"});
  auto tel_it = data_.responses.find({src_hash, "telemetry"});
  if (procs_it == data_.responses.end() || tel_it == data_.responses.end())
    return std::nullopt;
  std::string sig;
  std::istringstream procs(procs_it->second);
  std::string proc;
  while (std::getline(procs, proc)) {
    if (proc.empty()) continue;
    auto it = data_.proc_plans.find({src_hash, proc});
    if (it == data_.proc_plans.end()) return std::nullopt;
    sig += it->second;
  }
  sig += tel_it->second;
  return sig;
}

bool SummaryStore::save(std::string& err) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) return true;
  std::string bytes = encodeSnapshot(data_);
  std::string tmp = snapshotPath() + ".tmp." +
                    std::to_string(static_cast<long>(::getpid()));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) {
    err = "open " + tmp + ": " + std::strerror(errno);
    return false;
  }
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      err = "write " + tmp + ": " + std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    err = "fsync " + tmp + ": " + std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), snapshotPath().c_str()) != 0) {
    err = "rename " + tmp + ": " + std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the rename itself durable: fsync the containing directory.
  int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  ++stats_.saves;
  return true;
}

StoreStats SummaryStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t SummaryStore::recordCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.recordCount();
}

}  // namespace padfa::store
