// VarTable: the bridge between program variables (AST VarDecls) and the
// integer variables of the presburger domain.
//
// Variable kinds mirror the roles in SUIF's array data-flow analysis:
//  * Dim     — placeholder for one subscript dimension of an array section
//              ("the section covers all points (d0, d1, ...) such that ...")
//  * Index   — an enclosing loop index; becomes existentially projected
//              when a summary is promoted past its loop, and instantiated
//              as i1/i2 pairs for cross-iteration dependence systems.
//  * Param   — a symbolic scalar (procedure parameter or local) whose value
//              at region entry parameterizes the section.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "lang/ast.h"
#include "presburger/linexpr.h"
#include "presburger/var.h"

namespace padfa {

enum class VarKind : uint8_t { Dim, Index, Param };

class VarTable {
 public:
  static constexpr size_t kMaxRank = 4;

  /// If `interner` is supplied, program scalars get readable names in
  /// str() dumps.
  explicit VarTable(const Interner* interner = nullptr);

  /// The VarId standing for subscript dimension `k` (k < kMaxRank).
  pb::VarId dim(size_t k) const { return static_cast<pb::VarId>(k); }
  bool isDim(pb::VarId v) const { return v < kMaxRank; }

  /// Id for a program scalar; created on first use. Loop indices get kind
  /// Index, other scalars Param.
  pb::VarId idFor(const VarDecl* decl);

  /// Whether this decl has been assigned an id already.
  bool hasId(const VarDecl* decl) const { return by_decl_.count(decl) > 0; }

  /// A fresh anonymous variable (used for iteration instances i1/i2 and
  /// translation temporaries).
  pb::VarId fresh(VarKind kind, const std::string& name);

  VarKind kindOf(pb::VarId v) const { return entries_.at(v).kind; }
  const std::string& nameOf(pb::VarId v) const { return entries_.at(v).name; }
  /// The program decl behind a Param/Index id, or null for synthetic vars.
  const VarDecl* declOf(pb::VarId v) const { return entries_.at(v).decl; }

  size_t size() const { return entries_.size(); }

  /// Install an affine alias for a single-assignment scalar: wherever the
  /// scalar would appear in an affine form, `repl` (over non-aliased ids)
  /// is inlined instead. This is the light forward-substitution pass that
  /// keeps sections expressed over procedure parameters.
  void setAlias(pb::VarId v, pb::LinExpr repl);
  const pb::LinExpr* aliasOf(pb::VarId v) const;

  /// Convenience name function for Set/System::str.
  std::function<std::string(pb::VarId)> namer() const;

  /// Process-unique id of this VarTable instance (from a monotone global
  /// counter, never reused). The predicate layer's per-analysis memo
  /// tables are invalidated by epoch change, which is immune to the
  /// address reuse a `VarTable*` key would suffer from.
  uint64_t epoch() const { return epoch_; }

 private:
  struct Entry {
    VarKind kind;
    std::string name;
    const VarDecl* decl = nullptr;
  };
  const Interner* interner_ = nullptr;
  uint64_t epoch_ = 0;
  std::vector<Entry> entries_;
  std::unordered_map<const VarDecl*, pb::VarId> by_decl_;
  std::unordered_map<pb::VarId, pb::LinExpr> aliases_;
};

}  // namespace padfa
