#include "symbolic/vartable.h"

#include <atomic>

namespace padfa {

namespace {
std::atomic<uint64_t> g_next_vartable_epoch{1};
}  // namespace

VarTable::VarTable(const Interner* interner)
    : interner_(interner),
      epoch_(g_next_vartable_epoch.fetch_add(1, std::memory_order_relaxed)) {
  for (size_t k = 0; k < kMaxRank; ++k)
    entries_.push_back({VarKind::Dim, "@d" + std::to_string(k), nullptr});
}

pb::VarId VarTable::idFor(const VarDecl* decl) {
  auto it = by_decl_.find(decl);
  if (it != by_decl_.end()) return it->second;
  pb::VarId id = static_cast<pb::VarId>(entries_.size());
  VarKind kind = decl->is_loop_index ? VarKind::Index : VarKind::Param;
  std::string name =
      interner_ ? std::string(interner_->str(decl->name)) : std::string();
  entries_.push_back({kind, std::move(name), decl});
  by_decl_[decl] = id;
  return id;
}

pb::VarId VarTable::fresh(VarKind kind, const std::string& name) {
  pb::VarId id = static_cast<pb::VarId>(entries_.size());
  entries_.push_back({kind, name, nullptr});
  return id;
}

void VarTable::setAlias(pb::VarId v, pb::LinExpr repl) {
  aliases_[v] = std::move(repl);
}

const pb::LinExpr* VarTable::aliasOf(pb::VarId v) const {
  auto it = aliases_.find(v);
  return it == aliases_.end() ? nullptr : &it->second;
}

std::function<std::string(pb::VarId)> VarTable::namer() const {
  return [this](pb::VarId v) -> std::string {
    if (v >= entries_.size()) return "v" + std::to_string(v);
    const Entry& e = entries_[v];
    if (!e.name.empty()) return e.name;
    if (e.decl) return "sym" + std::to_string(v);
    return "v" + std::to_string(v);
  };
}

}  // namespace padfa
