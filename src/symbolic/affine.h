// Affine-form extraction: turn MF integer expressions into LinExprs over
// VarTable ids when possible. Non-affine expressions (products of
// variables, division, noise(), ...) yield nullopt and force the analysis
// to fall back to conservative summaries or opaque predicates.
#pragma once

#include <optional>

#include "lang/ast.h"
#include "presburger/linexpr.h"
#include "symbolic/vartable.h"

namespace padfa {

/// Fold an integer-typed expression to a compile-time constant if possible.
std::optional<int64_t> tryConstInt(const Expr& e);

/// Extract a LinExpr for an integer-typed expression. Scalar int variables
/// become Param/Index terms via `vt`. Handles +, -, unary -, multiplication
/// with a constant side, and min/max only when both sides fold to
/// constants.
std::optional<pb::LinExpr> tryAffine(const Expr& e, VarTable& vt);

}  // namespace padfa
