#include "symbolic/affine.h"

#include <algorithm>

namespace padfa {

std::optional<int64_t> tryConstInt(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return static_cast<const IntLitExpr&>(e).value;
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      auto v = tryConstInt(*u.operand);
      if (!v) return std::nullopt;
      if (u.op == UnOp::Neg) return -*v;
      return *v == 0 ? 1 : 0;  // logical not
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      auto l = tryConstInt(*b.lhs);
      auto r = tryConstInt(*b.rhs);
      if (!l || !r) return std::nullopt;
      switch (b.op) {
        case BinOp::Add: return *l + *r;
        case BinOp::Sub: return *l - *r;
        case BinOp::Mul: return *l * *r;
        case BinOp::Div: return *r == 0 ? std::nullopt : std::optional(*l / *r);
        case BinOp::Rem: return *r == 0 ? std::nullopt : std::optional(*l % *r);
        case BinOp::Eq: return *l == *r ? 1 : 0;
        case BinOp::Ne: return *l != *r ? 1 : 0;
        case BinOp::Lt: return *l < *r ? 1 : 0;
        case BinOp::Le: return *l <= *r ? 1 : 0;
        case BinOp::Gt: return *l > *r ? 1 : 0;
        case BinOp::Ge: return *l >= *r ? 1 : 0;
        case BinOp::And: return (*l != 0 && *r != 0) ? 1 : 0;
        case BinOp::Or: return (*l != 0 || *r != 0) ? 1 : 0;
      }
      return std::nullopt;
    }
    case ExprKind::Intrinsic: {
      const auto& c = static_cast<const IntrinsicExpr&>(e);
      switch (c.fn) {
        case Intrinsic::Min:
        case Intrinsic::Max: {
          auto a = tryConstInt(*c.args[0]);
          auto b = tryConstInt(*c.args[1]);
          if (!a || !b) return std::nullopt;
          return c.fn == Intrinsic::Min ? std::min(*a, *b) : std::max(*a, *b);
        }
        case Intrinsic::Abs: {
          auto a = tryConstInt(*c.args[0]);
          if (!a) return std::nullopt;
          return *a < 0 ? -*a : *a;
        }
        default:
          return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

std::optional<pb::LinExpr> tryAffine(const Expr& e, VarTable& vt) {
  if (e.type != Type::Int) return std::nullopt;
  if (auto k = tryConstInt(e)) return pb::LinExpr(*k);
  switch (e.kind) {
    case ExprKind::VarRef: {
      const auto& v = static_cast<const VarRefExpr&>(e);
      if (!v.decl || v.decl->isArray()) return std::nullopt;
      pb::VarId id = vt.idFor(v.decl);
      if (const pb::LinExpr* alias = vt.aliasOf(id)) return *alias;
      return pb::LinExpr::var(id);
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op != UnOp::Neg) return std::nullopt;
      auto inner = tryAffine(*u.operand, vt);
      if (!inner) return std::nullopt;
      return inner->negated();
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      switch (b.op) {
        case BinOp::Add:
        case BinOp::Sub: {
          auto l = tryAffine(*b.lhs, vt);
          auto r = tryAffine(*b.rhs, vt);
          if (!l || !r) return std::nullopt;
          return b.op == BinOp::Add ? *l + *r : *l - *r;
        }
        case BinOp::Mul: {
          // One side must fold to a constant.
          if (auto k = tryConstInt(*b.lhs)) {
            auto r = tryAffine(*b.rhs, vt);
            if (!r) return std::nullopt;
            return *r * *k;
          }
          if (auto k = tryConstInt(*b.rhs)) {
            auto l = tryAffine(*b.lhs, vt);
            if (!l) return std::nullopt;
            return *l * *k;
          }
          return std::nullopt;
        }
        default:
          return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

}  // namespace padfa
