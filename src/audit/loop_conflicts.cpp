#include "audit/loop_conflicts.h"

#include <algorithm>
#include <cstdlib>

namespace padfa {

void collectAssignedScalars(const BlockStmt& block,
                            std::set<const VarDecl*>& out) {
  for (const auto& d : block.decls)
    if (!d->isArray() && d->init) out.insert(d.get());
  for (const auto& st : block.stmts) {
    switch (st->kind) {
      case StmtKind::Assign: {
        const auto& as = static_cast<const AssignStmt&>(*st);
        if (as.target->kind == ExprKind::VarRef)
          out.insert(static_cast<const VarRefExpr&>(*as.target).decl);
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*st);
        collectAssignedScalars(*i.then_block, out);
        if (i.else_block) collectAssignedScalars(*i.else_block, out);
        break;
      }
      case StmtKind::For:
        collectAssignedScalars(*static_cast<const ForStmt&>(*st).body, out);
        break;
      case StmtKind::Block:
        collectAssignedScalars(static_cast<const BlockStmt&>(*st), out);
        break;
      default:
        break;
    }
  }
}

void collectBodyReads(const BlockStmt& block, std::set<const VarDecl*>& out) {
  std::vector<const VarDecl*> vs;
  auto takeExpr = [&](const Expr& e) {
    vs.clear();
    collectVars(e, vs);
    out.insert(vs.begin(), vs.end());
  };
  for (const auto& d : block.decls) {
    for (const auto& dim : d->dims) takeExpr(*dim);
    if (d->init) takeExpr(*d->init);
  }
  for (const auto& st : block.stmts) {
    switch (st->kind) {
      case StmtKind::Assign: {
        const auto& as = static_cast<const AssignStmt&>(*st);
        takeExpr(*as.value);
        if (as.target->kind == ExprKind::ArrayRef)
          for (const auto& idx :
               static_cast<const ArrayRefExpr&>(*as.target).indices)
            takeExpr(*idx);
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*st);
        takeExpr(*i.cond);
        collectBodyReads(*i.then_block, out);
        if (i.else_block) collectBodyReads(*i.else_block, out);
        break;
      }
      case StmtKind::For: {
        const auto& fo = static_cast<const ForStmt&>(*st);
        takeExpr(*fo.lower);
        takeExpr(*fo.upper);
        if (fo.step) takeExpr(*fo.step);
        collectBodyReads(*fo.body, out);
        break;
      }
      case StmtKind::Call:
        for (const auto& a : static_cast<const CallStmt&>(*st).args)
          takeExpr(*a);
        break;
      case StmtKind::Block:
        collectBodyReads(static_cast<const BlockStmt&>(*st), out);
        break;
      default:
        break;
    }
  }
}

namespace {

/// All VarDecls declared inside `block` (storage re-created per entry).
void collectDeclared(const BlockStmt& block, std::set<const VarDecl*>& out) {
  for (const auto& d : block.decls) out.insert(d.get());
  for (const auto& st : block.stmts) {
    switch (st->kind) {
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*st);
        collectDeclared(*i.then_block, out);
        if (i.else_block) collectDeclared(*i.else_block, out);
        break;
      }
      case StmtKind::For:
        collectDeclared(*static_cast<const ForStmt&>(*st).body, out);
        break;
      case StmtKind::Block:
        collectDeclared(static_cast<const BlockStmt&>(*st), out);
        break;
      default:
        break;
    }
  }
}

}  // namespace

/// How a callee's array formal maps back to storage of the audited
/// procedure. `priv == true` means the storage is created afresh inside
/// the loop body (or a callee frame) and thus cannot carry values across
/// iterations — its accesses are excluded from the dependence model.
struct ArrayBinding {
  const VarDecl* root = nullptr;
  bool coarse = false;
  bool priv = false;
};

/// One lexical frame of the (virtually) inlined loop body.
struct FrameCtx {
  const FrameCtx* parent = nullptr;
  const ProcDecl* proc = nullptr;
  std::map<const VarDecl*, const Expr*> scalar_args;  // formal -> actual
  std::map<const VarDecl*, ArrayBinding> array_map;   // formal -> binding
  std::map<const VarDecl*, pb::VarId> index_ids;      // frame-local loops
  const std::set<const VarDecl*>* assigned = nullptr;
  bool exact = true;  // false past the inline-depth cap
};

/// The body walk: collects accesses into the scanner. Separate class so
/// the per-walk state (context levels, inline depth) is clearly scoped.
class LoopBodyWalk {
 public:
  explicit LoopBodyWalk(LoopConflictScanner& s) : s_(s) {}

  struct Level {
    pb::System sys;
    bool exact = true;
  };

  void run() {
    collectAssignedScalars(*s_.loop_->body, s_.body_assigned_);
    collectDeclared(*s_.loop_->body, s_.body_declared_);

    FrameCtx root;
    root.proc = s_.proc_;
    root.assigned = &s_.body_assigned_;

    // The audited iteration variable and its bounds form the outermost
    // context level; every access inherits it.
    s_.audited_idx_ = s_.vt_.idFor(s_.loop_->index_decl);
    s_.instance_.insert(s_.audited_idx_);
    anchor_ = s_.loop_;
    levels_.push_back(loopLevel(*s_.loop_, s_.audited_idx_, root));
    s_.loop_exact_ = levels_.back().exact;
    walkBlock(*s_.loop_->body, root);
    levels_.pop_back();
  }

 private:
  // ------------------------------------------------ affine extraction --

  /// Affine form of an int expression in frame `f`, expressed over the
  /// audited procedure's symbols: loop indices keep per-frame instance
  /// ids, callee scalar formals are inlined as their actual argument
  /// expressions, and scalars whose value changes inside the audited
  /// region are rejected (their id would conflate distinct values).
  std::optional<pb::LinExpr> affineOf(const Expr& e, const FrameCtx& f) {
    if (e.type != Type::Int) return std::nullopt;
    switch (e.kind) {
      case ExprKind::IntLit:
        return pb::LinExpr(static_cast<const IntLitExpr&>(e).value);
      case ExprKind::VarRef: {
        const VarDecl* d = static_cast<const VarRefExpr&>(e).decl;
        if (!d || d->isArray()) return std::nullopt;
        auto ii = f.index_ids.find(d);
        if (ii != f.index_ids.end()) return pb::LinExpr::var(ii->second);
        if (f.assigned->count(d)) return std::nullopt;
        auto si = f.scalar_args.find(d);
        if (si != f.scalar_args.end()) return affineOf(*si->second, *f.parent);
        // Root frame: a loop-invariant scalar of the audited procedure.
        if (!f.parent) return pb::LinExpr::var(s_.vt_.idFor(d));
        // Callee local that is never assigned: the zero fill.
        if (!d->is_param && !d->is_loop_index) return pb::LinExpr(0);
        return std::nullopt;
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        if (u.op != UnOp::Neg) return std::nullopt;
        auto a = affineOf(*u.operand, f);
        if (!a) return std::nullopt;
        return a->negated();
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        if (b.op != BinOp::Add && b.op != BinOp::Sub && b.op != BinOp::Mul)
          return std::nullopt;
        auto l = affineOf(*b.lhs, f);
        auto r = affineOf(*b.rhs, f);
        if (!l || !r) return std::nullopt;
        if (b.op == BinOp::Add) return *l + *r;
        if (b.op == BinOp::Sub) return *l - *r;
        if (l->isConstant()) return *r * l->constant();
        if (r->isConstant()) return *l * r->constant();
        return std::nullopt;
      }
      case ExprKind::Intrinsic: {
        const auto& c = static_cast<const IntrinsicExpr&>(e);
        if ((c.fn != Intrinsic::Min && c.fn != Intrinsic::Max) ||
            c.args.size() != 2)
          return std::nullopt;
        auto l = affineOf(*c.args[0], f);
        auto r = affineOf(*c.args[1], f);
        if (!l || !r || !l->isConstant() || !r->isConstant())
          return std::nullopt;
        int64_t v = c.fn == Intrinsic::Min
                        ? std::min(l->constant(), r->constant())
                        : std::max(l->constant(), r->constant());
        return pb::LinExpr(v);
      }
      default:
        return std::nullopt;
    }
  }

  // ------------------------------------------------- context building --

  /// Convert a branch condition (or its negation) into entailed affine
  /// constraints. Conjunctions convert exactly; disjunctions and
  /// non-affine atoms contribute nothing and clear `exact`.
  void convertCond(const Expr& e, const FrameCtx& f, bool neg, Level& lv) {
    if (e.kind == ExprKind::Unary) {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op == UnOp::Not) {
        convertCond(*u.operand, f, !neg, lv);
        return;
      }
    }
    if (e.kind == ExprKind::Binary) {
      const auto& b = static_cast<const BinaryExpr&>(e);
      if ((b.op == BinOp::And && !neg) || (b.op == BinOp::Or && neg)) {
        convertCond(*b.lhs, f, neg, lv);
        convertCond(*b.rhs, f, neg, lv);
        return;
      }
      if ((b.op == BinOp::Or && !neg) || (b.op == BinOp::And && neg)) {
        lv.exact = false;  // disjunctive: not one convex piece
        return;
      }
      if (isComparison(b.op)) {
        auto l = affineOf(*b.lhs, f);
        auto r = affineOf(*b.rhs, f);
        if (!l || !r) {
          lv.exact = false;
          return;
        }
        BinOp op = b.op;
        if (neg) {
          switch (op) {
            case BinOp::Eq: op = BinOp::Ne; break;
            case BinOp::Ne: op = BinOp::Eq; break;
            case BinOp::Lt: op = BinOp::Ge; break;
            case BinOp::Le: op = BinOp::Gt; break;
            case BinOp::Gt: op = BinOp::Le; break;
            case BinOp::Ge: op = BinOp::Lt; break;
            default: break;
          }
        }
        pb::LinExpr d = *l - *r;  // constraints over l - r
        switch (op) {
          case BinOp::Lt:  // l <= r - 1  ==  r - l - 1 >= 0
            lv.sys.addGE0(d.negated() - pb::LinExpr(1));
            break;
          case BinOp::Le:
            lv.sys.addGE0(d.negated());
            break;
          case BinOp::Gt:
            lv.sys.addGE0(d - pb::LinExpr(1));
            break;
          case BinOp::Ge:
            lv.sys.addGE0(d);
            break;
          case BinOp::Eq:
            lv.sys.addEQ0(d);
            break;
          case BinOp::Ne:
            lv.exact = false;  // a hole, not a convex constraint
            break;
          default:
            break;
        }
        return;
      }
    }
    // Truth-flag use of an int expression.
    auto a = affineOf(e, f);
    if (a && a->isConstant()) {
      bool holds = (a->constant() != 0) != neg;
      if (!holds) lv.sys.addGE0(pb::LinExpr(-1));  // branch unreachable
      return;
    }
    if (a && neg) {
      lv.sys.addEQ0(*a);  // !e  ==  e == 0
      return;
    }
    lv.exact = false;  // e != 0 (non-convex) or non-affine
  }

  /// Context level for one loop: bounds of its index, plus the stride
  /// congruence i == lb + step*q when the step is a known constant.
  Level loopLevel(const ForStmt& loop, pb::VarId idx, const FrameCtx& f) {
    Level lv;
    auto lb = affineOf(*loop.lower, f);
    auto ub = affineOf(*loop.upper, f);
    std::optional<int64_t> step = 1;
    if (loop.step) {
      auto s = affineOf(*loop.step, f);
      if (s && s->isConstant())
        step = s->constant();
      else
        step = std::nullopt;
    }
    pb::LinExpr iv = pb::LinExpr::var(idx);
    if (!step || *step == 0) {
      lv.exact = false;  // unknown direction: no bound is safe to assert
      return lv;
    }
    if (*step > 0) {
      if (lb) lv.sys.addGE0(iv - *lb);
      if (ub) lv.sys.addGE0(*ub - iv);
    } else {
      if (lb) lv.sys.addGE0(*lb - iv);
      if (ub) lv.sys.addGE0(iv - *ub);
    }
    if (std::abs(*step) > 1) {
      if (lb) {
        pb::VarId q = s_.vt_.fresh(VarKind::Index, "q");
        s_.instance_.insert(q);
        pb::LinExpr qe = pb::LinExpr::var(q, *step);
        lv.sys.addEQ0(iv - *lb - qe);  // i == lb + step*q
        lv.sys.addGE0(pb::LinExpr::var(q));
      } else {
        lv.exact = false;
      }
    }
    if (!lb || !ub) lv.exact = false;
    return lv;
  }

  pb::System currentCtx() const {
    pb::System sys;
    for (const auto& lv : levels_) sys.conjoin(lv.sys);
    return sys;
  }
  bool levelsExact() const {
    for (const auto& lv : levels_)
      if (!lv.exact) return false;
    return true;
  }

  // -------------------------------------------------- access recording --

  ArrayBinding resolveArray(const VarDecl* d, const FrameCtx& f) const {
    if (!f.parent) return {d, false, s_.body_declared_.count(d) > 0};
    auto it = f.array_map.find(d);
    if (it != f.array_map.end()) return it->second;
    return {d, false, true};  // callee-local array: fresh per call
  }

  void recordAccess(const ArrayRefExpr& ref, bool write, const FrameCtx& f) {
    if (!ref.decl) return;
    ArrayBinding bind = resolveArray(ref.decl, f);
    if (bind.priv) return;  // per-iteration storage cannot carry values
    if (s_.accesses_.size() >= LoopConflictScanner::kMaxAccesses) {
      s_.overflow_ = true;
      return;
    }
    ConflictAccess acc;
    acc.root = bind.root;
    acc.view = ref.decl;
    acc.write = write;
    acc.loc = ref.loc;
    acc.anchor = anchor_;
    acc.ctx = currentCtx();
    acc.exact = f.exact && levelsExact() && !bind.coarse;
    acc.exact_subs = acc.exact;
    if (!bind.coarse) {
      const size_t rank = ref.indices.size();
      acc.subs.resize(rank);
      std::vector<std::optional<pb::LinExpr>> ext(rank);
      bool subs_ok = true;
      for (size_t j = 0; j < rank; ++j) {
        acc.subs[j] = affineOf(*ref.indices[j], f);
        if (!acc.subs[j]) subs_ok = false;
        if (j < ref.decl->dims.size())
          ext[j] = affineOf(*ref.decl->dims[j], f);
        if (!ext[j]) {
          acc.exact = false;
          acc.exact_subs = false;
        }
      }
      // In-bounds constraints: a faulting access never completes, so a
      // conflict requiring an out-of-bounds subscript cannot happen.
      for (size_t j = 0; j < rank; ++j) {
        if (!acc.subs[j]) continue;
        acc.ctx.addGE0(*acc.subs[j]);
        if (ext[j]) acc.ctx.addGE0(*ext[j] - *acc.subs[j] - pb::LinExpr(1));
      }
      if (!subs_ok) acc.exact_subs = false;
      // Row-major linearization; strides need constant trailing extents.
      bool strides_const = true;
      for (size_t j = 1; j < rank; ++j)
        if (!ext[j] || !ext[j]->isConstant()) strides_const = false;
      if (subs_ok && strides_const && rank > 0) {
        pb::LinExpr flat = *acc.subs[0];
        for (size_t j = 1; j < rank; ++j) {
          flat *= ext[j]->constant();
          flat += *acc.subs[j];
        }
        acc.flat = std::move(flat);
      } else {
        acc.exact = false;
      }
    } else {
      acc.exact_subs = false;
    }
    s_.accesses_.push_back(std::move(acc));
  }

  // ------------------------------------------------------ body walk --

  void visitExpr(const Expr& e, const FrameCtx& f) {
    switch (e.kind) {
      case ExprKind::ArrayRef: {
        const auto& a = static_cast<const ArrayRefExpr&>(e);
        for (const auto& idx : a.indices) visitExpr(*idx, f);
        recordAccess(a, /*write=*/false, f);
        return;
      }
      case ExprKind::Unary:
        visitExpr(*static_cast<const UnaryExpr&>(e).operand, f);
        return;
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        visitExpr(*b.lhs, f);
        visitExpr(*b.rhs, f);
        return;
      }
      case ExprKind::Intrinsic:
        for (const auto& a : static_cast<const IntrinsicExpr&>(e).args)
          visitExpr(*a, f);
        return;
      default:
        return;
    }
  }

  void walkBlock(const BlockStmt& block, FrameCtx& f) {
    for (const auto& d : block.decls) {
      for (const auto& dim : d->dims) visitExpr(*dim, f);
      if (d->init) visitExpr(*d->init, f);
    }
    for (const auto& st : block.stmts) walkStmt(*st, f);
  }

  void walkStmt(const Stmt& s, FrameCtx& f) {
    if (!f.parent) anchor_ = &s;
    switch (s.kind) {
      case StmtKind::Assign: {
        const auto& as = static_cast<const AssignStmt&>(s);
        visitExpr(*as.value, f);
        if (as.target->kind == ExprKind::ArrayRef) {
          const auto& ref = static_cast<const ArrayRefExpr&>(*as.target);
          for (const auto& idx : ref.indices) visitExpr(*idx, f);
          recordAccess(ref, /*write=*/true, f);
        }
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        visitExpr(*i.cond, f);
        Level then_lv;
        convertCond(*i.cond, f, /*neg=*/false, then_lv);
        levels_.push_back(std::move(then_lv));
        walkBlock(*i.then_block, f);
        levels_.pop_back();
        if (i.else_block) {
          Level else_lv;
          convertCond(*i.cond, f, /*neg=*/true, else_lv);
          levels_.push_back(std::move(else_lv));
          walkBlock(*i.else_block, f);
          levels_.pop_back();
        }
        if (!f.parent) anchor_ = &s;
        break;
      }
      case StmtKind::For: {
        const auto& loop = static_cast<const ForStmt&>(s);
        visitExpr(*loop.lower, f);
        visitExpr(*loop.upper, f);
        if (loop.step) visitExpr(*loop.step, f);
        // Inner loop indices are per-call-site instances: a callee inlined
        // at two sites must not share constraint variables between them.
        pb::VarId idx =
            f.parent ? s_.vt_.fresh(VarKind::Index,
                                    std::string(s_.program_.interner.str(
                                        loop.index_decl->name)))
                     : s_.vt_.idFor(loop.index_decl);
        s_.instance_.insert(idx);
        f.index_ids[loop.index_decl] = idx;
        levels_.push_back(loopLevel(loop, idx, f));
        walkBlock(*loop.body, f);
        levels_.pop_back();
        f.index_ids.erase(loop.index_decl);
        if (!f.parent) anchor_ = &s;
        break;
      }
      case StmtKind::Call:
        walkCall(static_cast<const CallStmt&>(s), f);
        break;
      case StmtKind::Block:
        walkBlock(static_cast<const BlockStmt&>(s), f);
        break;
      case StmtKind::Return:
        break;
    }
  }

  void walkCall(const CallStmt& call, FrameCtx& f) {
    for (const auto& a : call.args) visitExpr(*a, f);
    if (call.is_sink) return;
    const ProcDecl* callee = call.callee_proc;
    if (!callee || depth_ >= LoopConflictScanner::kMaxInlineDepth) {
      // Conservative: the callee may read and write anything it was
      // handed, anywhere in the buffer.
      for (const auto& a : call.args) {
        if (a->kind != ExprKind::VarRef) continue;
        const auto& vr = static_cast<const VarRefExpr&>(*a);
        if (!vr.decl || !vr.decl->isArray()) continue;
        ArrayBinding bind = resolveArray(vr.decl, f);
        if (bind.priv ||
            s_.accesses_.size() >= LoopConflictScanner::kMaxAccesses) {
          s_.overflow_ |=
              s_.accesses_.size() >= LoopConflictScanner::kMaxAccesses;
          continue;
        }
        ConflictAccess acc;
        acc.root = bind.root;
        acc.write = true;
        acc.exact = false;
        acc.exact_subs = false;
        acc.loc = call.loc;
        acc.anchor = anchor_;
        acc.ctx = currentCtx();
        s_.accesses_.push_back(std::move(acc));
      }
      return;
    }
    FrameCtx cf;
    cf.parent = &f;
    cf.proc = callee;
    cf.exact = f.exact;
    cf.assigned = &assignedScalarsOf(*callee);
    for (size_t i = 0; i < call.args.size() && i < callee->params.size();
         ++i) {
      const VarDecl* formal = callee->params[i].get();
      if (formal->isArray()) {
        if (call.args[i]->kind == ExprKind::VarRef) {
          const auto& vr = static_cast<const VarRefExpr&>(*call.args[i]);
          cf.array_map[formal] = resolveArray(vr.decl, f);
        } else {
          cf.array_map[formal] = {nullptr, true, true};
        }
      } else {
        cf.scalar_args[formal] = call.args[i].get();
      }
    }
    ++depth_;
    walkBlock(*callee->body, cf);
    --depth_;
  }

  const std::set<const VarDecl*>& assignedScalarsOf(const ProcDecl& proc) {
    auto it = proc_assigned_.find(&proc);
    if (it != proc_assigned_.end()) return it->second;
    std::set<const VarDecl*> s;
    collectAssignedScalars(*proc.body, s);
    return proc_assigned_.emplace(&proc, std::move(s)).first->second;
  }

  LoopConflictScanner& s_;
  std::vector<Level> levels_;
  std::map<const ProcDecl*, std::set<const VarDecl*>> proc_assigned_;
  const Stmt* anchor_ = nullptr;
  int depth_ = 0;
};

// ------------------------------------------------------------------------

LoopConflictScanner::LoopConflictScanner(const Program& program,
                                         const ForStmt* loop,
                                         const ProcDecl* proc)
    : program_(program), loop_(loop), proc_(proc), vt_(&program.interner) {}

void LoopConflictScanner::scan() {
  if (scanned_) return;
  scanned_ = true;
  LoopBodyWalk walk(*this);
  walk.run();
}

LoopConflictScanner::PairEq LoopConflictScanner::pairEq(
    const ConflictAccess& a, const ConflictAccess& b) {
  if (a.flat && b.flat) return PairEq::Flat;
  if (a.view && a.view == b.view && a.subs.size() == b.subs.size() &&
      !a.subs.empty()) {
    for (size_t j = 0; j < a.subs.size(); ++j)
      if (!a.subs[j] || !b.subs[j]) return PairEq::None;
    return PairEq::Subs;
  }
  return PairEq::None;
}

bool LoopConflictScanner::pairExactly(const ConflictAccess& a,
                                      const ConflictAccess& b, PairEq eq) {
  switch (eq) {
    case PairEq::Flat: return a.exact && b.exact;
    case PairEq::Subs: return a.exact_subs && b.exact_subs;
    case PairEq::None: return false;
  }
  return false;
}

LoopConflictScanner::Copy LoopConflictScanner::instantiate(
    const ConflictAccess& a, int which) {
  std::map<pb::VarId, pb::VarId> ren;
  auto renamed = [&](pb::VarId v) {
    auto it = ren.find(v);
    if (it != ren.end()) return it->second;
    pb::VarId nv =
        vt_.fresh(VarKind::Index, vt_.nameOf(v) + (which == 1 ? "'" : "''"));
    ren.emplace(v, nv);
    return nv;
  };
  auto renameExpr = [&](const pb::LinExpr& e) {
    pb::LinExpr out = e;
    for (const auto& [v, coeff] : e.terms())
      if (instance_.count(v)) out.substitute(v, pb::LinExpr::var(renamed(v)));
    return out;
  };
  Copy c;
  c.idx = renamed(audited_idx_);
  c.ctx = a.ctx;
  for (pb::VarId v : a.ctx.usedVars())
    if (instance_.count(v)) c.ctx.substitute(v, pb::LinExpr::var(renamed(v)));
  if (a.flat) c.flat = renameExpr(*a.flat);
  for (const auto& s : a.subs)
    c.subs.push_back(s ? std::optional<pb::LinExpr>(renameExpr(*s))
                       : std::nullopt);
  return c;
}

bool LoopConflictScanner::orderFeasible(const Copy& lo, const Copy& hi,
                                        PairEq eq, const pb::System* extra,
                                        pb::System* out) {
  pb::System sys;
  sys.conjoin(lo.ctx);
  sys.conjoin(hi.ctx);
  if (eq == PairEq::Flat) {
    sys.addEQ0(*lo.flat - *hi.flat);
  } else if (eq == PairEq::Subs) {
    for (size_t j = 0; j < lo.subs.size(); ++j)
      sys.addEQ0(*lo.subs[j] - *hi.subs[j]);
  }
  if (extra) sys.conjoin(*extra);
  pb::LinExpr ord = pb::LinExpr::var(hi.idx) - pb::LinExpr::var(lo.idx);
  ord.setConstant(-1);  // hi - lo - 1 >= 0, i.e. lo < hi
  sys.addGE0(std::move(ord));
  if (!sys.normalize() || !sys.feasible()) return false;
  if (out) *out = std::move(sys);
  return true;
}

bool LoopConflictScanner::conflictExists(const ConflictAccess& a,
                                         const ConflictAccess& b, PairEq eq,
                                         const pb::System* extra) {
  Copy c1 = instantiate(a, 1);
  Copy c2 = instantiate(b, 2);
  return orderFeasible(c1, c2, eq, extra) || orderFeasible(c2, c1, eq, extra);
}

bool LoopConflictScanner::conflictInOrder(const ConflictAccess& a,
                                          const ConflictAccess& b, PairEq eq,
                                          const pb::System* extra) {
  Copy c1 = instantiate(a, 1);
  Copy c2 = instantiate(b, 2);
  return orderFeasible(c1, c2, eq, extra);
}

LoopConflictScanner::DepGeometry LoopConflictScanner::geometry(
    const ConflictAccess& a, const ConflictAccess& b, PairEq eq) {
  DepGeometry g;
  Copy c1 = instantiate(a, 1);
  Copy c2 = instantiate(b, 2);
  pb::System sys;
  if (!orderFeasible(c1, c2, eq, nullptr, &sys)) return g;
  g.feasible = true;
  // Project the conflict system onto d = i2 - i1 and read off a forced
  // constant distance, if any. The projection is a rational shadow
  // (superset), so a forced equality there is forced in the integer
  // system too — safe to report.
  pb::VarId d = vt_.fresh(VarKind::Index, "d");
  pb::LinExpr def = pb::LinExpr::var(d);
  def -= pb::LinExpr::var(c2.idx);
  def += pb::LinExpr::var(c1.idx);
  sys.addEQ0(std::move(def));  // d == i2 - i1
  if (!sys.projectOnto([d](pb::VarId v) { return v == d; })) return g;
  if (!sys.normalize()) return g;
  for (const auto& c : sys.constraints()) {
    if (c.kind != pb::CmpKind::EQ0) continue;
    if (c.expr.numTerms() == 1 && c.expr.terms()[0].first == d) {
      int64_t k = c.expr.terms()[0].second;
      if (k != 0 && c.expr.constant() % k == 0) {
        g.distance = -c.expr.constant() / k;  // k*d + c == 0
        return g;
      }
    }
  }
  return g;
}

}  // namespace padfa
